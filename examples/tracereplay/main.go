// Trace replay: a production-shaped month (Venus-like) replayed under Lucid
// and Tiresias, reporting the Table 4/Table 5 metrics plus Lucid's
// packing and debugging-feedback statistics — the paper's core claim in one
// runnable scenario.
//
//	go run ./examples/tracereplay [-scale 0.15]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	scale := flag.Float64("scale", 0.25, "fraction of the full Venus month to replay")
	flag.Parse()

	w, err := lab.BuildWorld(trace.Venus(), *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Venus-like month: %d jobs, %d GPUs, %d VCs\n\n",
		len(w.Eval.Jobs), w.Eval.Cluster.TotalGPUs(), len(w.Eval.Cluster.VCs))

	var lucid, tiresias *sim.Result
	for _, nr := range w.Schedulers() {
		switch nr.Name {
		case "Lucid":
			lucid = w.Run(nr)
		case "Tiresias":
			tiresias = w.Run(nr)
		}
	}
	fmt.Println(tiresias.Summary())
	fmt.Println(lucid.Summary())

	fmt.Printf("\nJCT improvement over Tiresias: %.2f× (paper: 1.1–1.3×)\n",
		tiresias.AvgJCTSec/lucid.AvgJCTSec)
	if lucid.AvgQueueSec > 0 {
		fmt.Printf("queuing-delay improvement:     %.2f× (paper: 1.8–9.1×)\n",
			tiresias.AvgQueueSec/lucid.AvgQueueSec)
	}

	// Table 5 breakdown.
	lj, lq, sj, sq := lucid.ScaleStats()
	tj, tq, tsj, tsq := tiresias.ScaleStats()
	fmt.Println("\nscale breakdown (hours):")
	fmt.Printf("  %-10s %-12s %-12s %-12s %-12s\n", "", "large JCT", "large queue", "small JCT", "small queue")
	fmt.Printf("  %-10s %-12.2f %-12.2f %-12.2f %-12.2f\n", "Tiresias", tj/3600, tq/3600, tsj/3600, tsq/3600)
	fmt.Printf("  %-10s %-12.2f %-12.2f %-12.2f %-12.2f\n", "Lucid", lj/3600, lq/3600, sj/3600, sq/3600)

	// Debugging feedback (§4.3): short jobs stuck in queues.
	fmt.Printf("\nshort jobs (≤60 s) that waited longer than their own runtime:\n")
	fmt.Printf("  Tiresias: %d   Lucid: %d (paper: 4.1–24.8× fewer under Lucid)\n",
		tiresias.ShortJobQueuedCount(60), lucid.ShortJobQueuedCount(60))

	fmt.Printf("\nLucid packed %d job placements (avg %.1f GPUs shared at a time)\n",
		lucid.SharedStarts, lucid.AvgSharedGPUs)
}
