// What-if capacity planning: because Lucid is data-driven and the simulator
// is cheap, an operator can answer "how many nodes does next month need?"
// by replaying the expected workload against candidate cluster sizes — the
// same simulate-to-decide loop the System Tuner uses for its own knobs
// (§3.6.1), pointed at procurement instead.
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// The workload we expect: a Venus-flavoured month, fixed across
	// candidate clusters.
	baseNodes := 24
	mkSpec := func(nodes int) trace.GenSpec {
		return trace.GenSpec{
			Name:        "whatif",
			Nodes:       nodes,
			NumVCs:      4,
			NumJobs:     5000,
			AvgDuration: 5419,
			Days:        30,
			Seed:        99,
		}
	}

	// Train models once on history at the base size (the models depend on
	// the workload, not the cluster size).
	gen := trace.NewGenerator(mkSpec(baseNodes))
	hist := gen.Emit(0)
	cfg := core.DefaultConfig()
	models, err := core.TrainModels(hist, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// One fixed workload month; only the cluster changes between candidates.
	eval := gen.Emit(0)

	// A VC can never shrink below what its largest job needs, or that job
	// would be unschedulable at any load.
	minNodes := map[string]int{}
	for _, j := range eval.Jobs {
		need := (j.GPUs + 7) / 8
		if need > minNodes[j.VC] {
			minNodes[j.VC] = need
		}
	}

	fmt.Println("nodes  GPUs  avgJCT(h)  avgQueue(h)  p99.9Queue(h)  util%")
	for _, nodes := range []int{16, 20, 24, 28, 32} {
		candidate := *eval
		candidate.Cluster = resize(eval.Cluster, nodes, baseNodes, minNodes)

		res := sim.New(&candidate, core.New(models, cfg), sim.Options{
			Tick: 60, SchedulerEvery: 60, ProfilerNodes: 1,
		}).Run()
		fmt.Printf("%5d %5d  %9.2f  %11.2f  %13.2f  %5.1f  unfinished=%d\n",
			nodes, candidate.Cluster.TotalGPUs(),
			res.AvgJCTHours(), res.AvgQueueHours(), res.P999QueueHours(),
			res.AvgGPUUtilPct, res.Unfinished)
	}
	fmt.Println("\nPick the smallest cluster whose tail queueing is acceptable;")
	fmt.Println("the knee of the p99.9 column is the capacity cliff.")
}

// resize scales every VC's node count to a new cluster total by largest-
// remainder apportionment, keeping the jobs' VC names valid and per-VC
// shares as close to proportional as integers allow.
func resize(spec cluster.Spec, nodes, baseNodes int, minNodes map[string]int) cluster.Spec {
	out := spec
	out.VCs = append([]cluster.VCSpec(nil), spec.VCs...)
	factor := float64(nodes) / float64(baseNodes)
	type rem struct {
		idx  int
		frac float64
	}
	var rems []rem
	total := 0
	for i := range out.VCs {
		exact := float64(out.VCs[i].Nodes) * factor
		n := int(exact)
		if min := minNodes[out.VCs[i].Name]; n < min {
			n = min
		}
		if n < 1 {
			n = 1
		}
		out.VCs[i].Nodes = n
		total += n
		rems = append(rems, rem{i, exact - float64(n)})
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; total < nodes && k < len(rems); k++ {
		out.VCs[rems[k].idx].Nodes++
		total++
	}
	return out
}
