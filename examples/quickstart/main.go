// Quickstart: the smallest end-to-end use of the library.
//
// It builds an 8-node GPU cluster with a tiny workload, trains Lucid's
// interpretable models on one month of synthetic history, then replays the
// next month under both FIFO and Lucid and prints the comparison — the
// minimal version of the paper's headline experiment.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// A small Venus-flavoured cluster: 8 nodes × 8 GPUs, 2 VCs, 1500 jobs a
	// month.
	spec := trace.GenSpec{
		Name:        "quickstart",
		Nodes:       8,
		NumVCs:      2,
		NumJobs:     1500,
		AvgDuration: 4000,
		Days:        14,
		Seed:        42,
	}
	gen := trace.NewGenerator(spec)
	history := gen.Emit(0) // month 1: training data
	eval := gen.Emit(0)    // month 2: what we schedule

	fmt.Printf("cluster: %d GPUs in %d VCs; evaluating %d jobs over %d days\n\n",
		eval.Cluster.TotalGPUs(), len(eval.Cluster.VCs), len(eval.Jobs), eval.Days)

	// Train the three interpretable models from history (§3.5).
	cfg := core.DefaultConfig()
	models, err := core.TrainModels(history, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Packing Analyze Model accuracy: %.1f%%\n", models.Analyzer.Accuracy()*100)
	fmt.Printf("Workload Estimate Model features: %v\n\n", models.Estimator.FeatureNames())

	// Replay the same month under FIFO and under Lucid.
	fifoRes := sim.New(eval, sched.NewFIFO(), sim.Options{Tick: 30, SchedulerEvery: 60}).Run()
	lucidRes := sim.New(eval, core.New(models, cfg), sim.Options{
		Tick: 30, SchedulerEvery: 60, ProfilerNodes: 1,
	}).Run()

	fmt.Println(fifoRes.Summary())
	fmt.Println(lucidRes.Summary())
	if lucidRes.AvgJCTSec > 0 {
		fmt.Printf("\nLucid improves average JCT by %.1f× and queuing delay by %.1f×\n",
			fifoRes.AvgJCTSec/lucidRes.AvgJCTSec,
			safeRatio(fifoRes.AvgQueueSec, lucidRes.AvgQueueSec))
	}
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
