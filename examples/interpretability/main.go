// Interpretability walkthrough: trains Lucid's three interpretable models
// and prints exactly what a cluster operator would inspect — the decision
// tree behind packing decisions (Figure 6), the throughput model's learned
// diurnal shape (Figure 7a/b), and a local explanation of one duration
// prediction (Figure 7c).
//
//	go run ./examples/interpretability
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// --- Packing Analyze Model (decision tree).
	analyzer, err := core.TrainPackingAnalyzer(workload.DefaultThresholds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Packing Analyze Model (Figure 6) ==")
	fmt.Print(analyzer.Render())
	fmt.Println("feature importances:")
	for i, name := range analyzer.FeatureNames() {
		fmt.Printf("  %-36s %.3f\n", name, analyzer.FeatureImportances()[i])
	}
	fmt.Printf("accuracy on the characterization sweep: %.1f%%\n\n", analyzer.Accuracy()*100)

	// --- Throughput Predict Model on a Saturn-like history.
	spec := trace.Saturn()
	spec.NumJobs = 8000
	hist := trace.NewGenerator(spec).Emit(0)
	tp, err := core.TrainThroughputModel(hist.Jobs, hist.Days)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Throughput Predict Model (Figure 7a/7b) ==")
	fmt.Println("global importance (mean |score| per feature):")
	for i, name := range tp.FeatureNames() {
		fmt.Printf("  %-16s %.3f\n", name, tp.GlobalImportance()[i])
	}
	fmt.Println("\nlearned shape of `hour` (diurnal pattern):")
	for _, pt := range tp.HourShape() {
		bars := int(math.Max(0, pt.Score+4))
		fmt.Printf("  ≤%5.1f %+7.2f %s\n", pt.UpperEdge, pt.Score, bar(bars))
	}

	// --- Workload Estimate Model local explanation.
	vSpec := trace.Venus()
	vSpec.NumJobs = 5000
	vg := trace.NewGenerator(vSpec)
	vHist := vg.Emit(0)
	est, err := core.TrainWorkloadEstimator(vHist.Jobs)
	if err != nil {
		log.Fatal(err)
	}
	probe := vg.Emit(20).Jobs[0]
	core.EnsureProfiles([]*job.Job{probe})
	fmt.Println("\n== Workload Estimate Model (Figure 7c) ==")
	fmt.Printf("job %s (user %s, %d GPUs): predicted %.0f s, true %d s\n",
		probe.Name, probe.User, probe.GPUs, est.EstimateSec(probe), probe.Duration)
	intercept, contribs := est.Explain(probe)
	fmt.Printf("  %-14s %+10.1f\n", "intercept", intercept)
	for _, c := range contribs {
		fmt.Printf("  %-14s %+10.1f\n", c.Name, c.Score)
	}
}

func bar(n int) string {
	if n < 0 {
		n = 0
	}
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
