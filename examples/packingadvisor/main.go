// Packing advisor: a standalone use of the Packing Analyze Model + Indolent
// Packing rules outside the scheduler — given a set of jobs a user wants to
// run, report each job's Sharing Score and which pairs Lucid would colocate
// (and at what predicted cost), versus the pairs it refuses.
//
//	go run ./examples/packingadvisor
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	analyzer, err := core.TrainPackingAnalyzer(workload.DefaultThresholds)
	if err != nil {
		log.Fatal(err)
	}

	// A user's pending jobs (Table 1 configurations).
	pending := []struct {
		name  string
		batch int
		amp   bool
	}{
		{"ResNet-18", 64, false},
		{"PointNet", 64, false},
		{"PPO", 64, false},
		{"BERT", 32, false},
		{"EfficientNet", 128, true},
		{"LSTM", 64, false},
	}

	var cfgs []workload.Config
	fmt.Println("Sharing Scores (Tiny packs freely, Jumbo packs never):")
	for _, p := range pending {
		cfg, ok := workload.ConfigByName(p.name, p.batch, p.amp)
		if !ok {
			log.Fatalf("unknown config %v", p)
		}
		cfgs = append(cfgs, cfg)
		prof := cfg.Profile()
		score := analyzer.Score(prof)
		fmt.Printf("  %-38s util=%4.1f%% mem=%5.0fMB → %s\n", cfg, prof.GPUUtil, prof.GPUMemMB, score)
	}

	const gss = 2
	fmt.Printf("\nIndolent Packing verdicts (GSS=%d, OOM guard, measured pair speeds):\n", gss)
	for i := 0; i < len(cfgs); i++ {
		for j := i + 1; j < len(cfgs); j++ {
			a, b := cfgs[i], cfgs[j]
			pa, pb := a.Profile(), b.Profile()
			sa := analyzer.Score(pa)
			sb := analyzer.Score(pb)
			speedA, speedB := workload.PairSpeed(a, b)
			verdict := "PACK"
			switch {
			case int(sa)+int(sb) > gss:
				verdict = "skip (sharing-score budget)"
			case pa.GPUMemMB+pb.GPUMemMB > workload.GPUMemMBCap*0.92:
				verdict = "skip (OOM guard)"
			}
			fmt.Printf("  %-24s + %-24s → %-28s (speeds %.2f / %.2f)\n",
				a.Model.Name(), b.Model.Name(), verdict, speedA, speedB)
		}
	}
}
