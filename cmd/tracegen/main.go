// Command tracegen emits a synthetic production trace as CSV on stdout.
//
// Usage:
//
//	tracegen -trace saturn -jobs 5000 > saturn.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/trace"
)

func main() {
	traceName := flag.String("trace", "venus", "trace: venus | saturn | philly")
	jobs := flag.Int("jobs", 0, "job count (0 = the Table 2 count)")
	months := flag.Int("months", 1, "months to emit (later months recur on the same templates)")
	flag.Parse()

	var spec trace.GenSpec
	switch strings.ToLower(*traceName) {
	case "venus":
		spec = trace.Venus()
	case "saturn":
		spec = trace.Saturn()
	case "philly":
		spec = trace.Philly()
	default:
		fmt.Fprintf(os.Stderr, "unknown trace %q\n", *traceName)
		os.Exit(2)
	}

	g := trace.NewGenerator(spec)
	for m := 0; m < *months; m++ {
		tr := g.Emit(*jobs)
		if err := tr.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
