// Command lucidsim runs one (trace, scheduler) simulation and prints the
// aggregate metrics — the quick way to poke at the system.
//
// Usage:
//
//	lucidsim -trace venus -sched lucid -scale 0.2
//	lucidsim -trace philly -sched all
//	lucidsim -trace venus -sched lucid -decision-trace out.jsonl -invariants
//	lucidsim -trace venus -sched fifo -chaos "nodefail=0.5,jobcrash=1,retries=3"
//	lucidsim -trace venus -sched all -engine event
//	lucidsim -summarize out.jsonl
//
// -engine selects the advancement strategy: "tick" replays every fixed tick
// (the reference engine), "event" jumps between wake-up events and produces
// bit-identical results orders of magnitude faster on large worlds.
//
// -chaos arms deterministic fault injection (node crashes, GPU faults, job
// crashes, stragglers) from a comma-separated key=value spec; "default"
// selects Hu et al.-calibrated rates and "off" disables every fault. Each
// scheduler run gets its own injector, so -sched all replays the identical
// fault schedule against every scheduler.
//
// With -decision-trace, every scheduling decision is streamed as JSONL to
// the given path (one file per scheduler when -sched all; the scheduler
// name is inserted before the extension) and a trace summary with the
// deterministic digest is printed. -summarize replays a previously written
// trace and prints the same summary without running a simulation.
//
// With -metrics-out, each run records engine metrics (tick phase timings,
// scheduler decision latency, queue depth) and dumps them in Prometheus text
// format (again one file per scheduler when -sched all). Metrics never
// influence the run: digests are identical with or without them.
//
// Snapshot / resume / time-travel (all require a single -sched, and the
// world flags — trace, scale, util, chaos — must match the original run;
// a fingerprint in the snapshot enforces it):
//
//	lucidsim -trace venus -sched lucid -snapshot-at 86400 -snapshot-out day1.snap
//	lucidsim -trace venus -sched lucid -resume day1.snap
//	lucidsim -trace venus -sched fifo -resume-at 86400 -with-scheduler sjf
//
// -snapshot-at writes the complete world state at the given simulated second
// and then finishes the run; -resume restores it into a fresh scheduler and
// continues — bit-identical to never having stopped. -resume-at forks the
// world mid-run into a different scheduler (a what-if replay) and reports
// both outcomes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/dtrace"
	"repro/internal/lab"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	traceName := flag.String("trace", "venus", "trace: venus | saturn | philly")
	schedName := flag.String("sched", "all", "scheduler: fifo | sjf | qssf | horus | tiresias | lucid | all")
	scale := flag.Float64("scale", 0.2, "fraction of the Table 2 job count to replay (0 < s ≤ 1)")
	util := flag.String("util", "M", "workload utilization mix: L | M | H (Figure 12a)")
	decisionTrace := flag.String("decision-trace", "", "write a JSONL decision trace to this path and print its summary")
	invariants := flag.Bool("invariants", false, "check engine invariants every tick and report violations")
	summarize := flag.String("summarize", "", "summarize an existing JSONL decision trace and exit")
	metricsOut := flag.String("metrics-out", "", "write each run's engine metrics (tick phase timings, scheduler decision latency) to this path in Prometheus text format")
	chaosSpec := flag.String("chaos", "", `fault-injection spec, e.g. "nodefail=0.5,jobcrash=1" ("default" | "off" | key=value,...)`)
	snapshotAt := flag.Int64("snapshot-at", 0, "run the selected scheduler to this simulated second, write a world snapshot, then finish the run")
	snapshotOut := flag.String("snapshot-out", "world.snap", "snapshot path written by -snapshot-at")
	resumeFrom := flag.String("resume", "", "restore a -snapshot-at world snapshot and run it to completion")
	resumeAt := flag.Int64("resume-at", 0, "time-travel fork: run the base scheduler to this simulated second, then fork into -with-scheduler")
	withSched := flag.String("with-scheduler", "", "scheduler the -resume-at fork continues with")
	engineName := flag.String("engine", "tick", "advancement engine: tick (classic fixed-tick loop) | event (discrete-event, bit-identical results)")
	flag.Parse()

	engine, err := sim.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var faultSpec chaos.Spec
	if *chaosSpec != "" {
		var err error
		faultSpec, err = chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -chaos spec: %v\n", err)
			os.Exit(2)
		}
	}

	if *summarize != "" {
		if err := summarizeFile(*summarize); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	spec, ok := specByName(*traceName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown trace %q\n", *traceName)
		os.Exit(2)
	}
	switch strings.ToUpper(*util) {
	case "L":
		spec.Util = trace.UtilLow
	case "H":
		spec.Util = trace.UtilHigh
	default:
		spec.Util = trace.UtilMedium
	}

	fmt.Printf("building %s world at scale %.2f (training models on a history month)...\n", spec.Name, *scale)
	w, err := lab.BuildWorld(spec, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("evaluation month: %d jobs on %d GPUs across %d VCs\n\n",
		len(w.Eval.Jobs), w.Eval.Cluster.TotalGPUs(), len(w.Eval.Cluster.VCs))
	if *chaosSpec != "" {
		if faultSpec.Enabled() {
			fmt.Printf("chaos armed: %s\n\n", faultSpec.String())
		} else {
			fmt.Print("chaos spec disables every fault — running clean\n\n")
		}
	}

	// Snapshot / resume / fork modes operate on one explicit scheduler.
	if *snapshotAt > 0 || *resumeFrom != "" || *resumeAt > 0 {
		if err := runDurable(w, durableFlags{
			sched:      *schedName,
			snapshotAt: *snapshotAt,
			out:        *snapshotOut,
			resumeFrom: *resumeFrom,
			resumeAt:   *resumeAt,
			withSched:  *withSched,
			invariants: *invariants,
			fault:      faultSpec,
			engine:     engine,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	want := strings.ToLower(*schedName)
	ran := false
	for _, nr := range w.Schedulers() {
		if want != "all" && strings.ToLower(nr.Name) != want {
			continue
		}
		ran = true
		nr.Opts.Engine = engine
		if *invariants {
			nr.Opts.Invariants = sim.NewInvariantChecker(false)
		}
		if *chaosSpec != "" && faultSpec.Enabled() {
			// One injector per run: injectors carry per-run repair state, and
			// a fresh one per scheduler replays the identical fault schedule.
			nr.Opts.Chaos = chaos.NewInjector(faultSpec)
		}
		var rec *dtrace.Recorder
		var closeTrace func() error
		if *decisionTrace != "" {
			rec = dtrace.New()
			rec.SetKeep(0) // summary counters only; the sink holds the trace
			path := tracePath(*decisionTrace, nr.Name, want == "all")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			bw := bufio.NewWriter(f)
			rec.SetSink(bw)
			closeTrace = func() error {
				if err := bw.Flush(); err != nil {
					f.Close()
					return err
				}
				return f.Close()
			}
			nr.Opts.DecisionTrace = rec
			fmt.Printf("decision trace → %s\n", path)
		}
		var reg *metrics.Registry
		if *metricsOut != "" {
			reg = metrics.New()
			nr.Opts.Metrics = reg
		}
		t0 := time.Now()
		res := w.Run(nr)
		fmt.Printf("%s  (wall %.1fs)\n", res.Summary(), time.Since(t0).Seconds())
		if reg != nil {
			path := tracePath(*metricsOut, nr.Name, want == "all")
			if err := os.WriteFile(path, []byte(reg.Render()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("engine metrics → %s\n", path)
		}
		if res.Violations > 0 {
			for _, v := range res.ViolationSamples {
				fmt.Printf("  violation: %s\n", v)
			}
		}
		if rec != nil {
			if err := closeTrace(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := rec.SinkErr(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(rec.Summary().String())
			fmt.Println()
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}
}

// durableFlags bundles the snapshot/resume/fork mode parameters.
type durableFlags struct {
	sched      string
	snapshotAt int64
	out        string
	resumeFrom string
	resumeAt   int64
	withSched  string
	invariants bool
	fault      chaos.Spec
	engine     sim.EngineKind
}

// pickRun resolves one scheduler by name, applying the invariants and chaos
// flags exactly as the normal run loop does.
func pickRun(w *lab.World, name string, f durableFlags) (lab.NamedRun, error) {
	if strings.ToLower(name) == "all" || name == "" {
		return lab.NamedRun{}, fmt.Errorf("snapshot/resume modes need one explicit scheduler, not %q", name)
	}
	for _, nr := range w.Schedulers() {
		if !strings.EqualFold(nr.Name, name) {
			continue
		}
		nr.Opts.Engine = f.engine
		if f.invariants {
			nr.Opts.Invariants = sim.NewInvariantChecker(false)
		}
		if f.fault.Enabled() {
			nr.Opts.Chaos = chaos.NewInjector(f.fault)
		}
		return nr, nil
	}
	return lab.NamedRun{}, fmt.Errorf("unknown scheduler %q", name)
}

// runDurable dispatches the snapshot-at / resume / time-travel-fork modes.
func runDurable(w *lab.World, f durableFlags) error {
	switch {
	case f.resumeFrom != "":
		nr, err := pickRun(w, f.sched, f)
		if err != nil {
			return err
		}
		file, err := os.Open(f.resumeFrom)
		if err != nil {
			return err
		}
		defer file.Close()
		s, err := sim.Resume(w.Eval, nr.Sched, nr.Opts, bufio.NewReader(file))
		if err != nil {
			return fmt.Errorf("resume %s: %w", f.resumeFrom, err)
		}
		fmt.Printf("resumed %s world from %s\n", nr.Name, f.resumeFrom)
		t0 := time.Now()
		res := s.Run()
		fmt.Printf("%s  (wall %.1fs)\n", res.Summary(), time.Since(t0).Seconds())
		return nil

	case f.snapshotAt > 0:
		nr, err := pickRun(w, f.sched, f)
		if err != nil {
			return err
		}
		s := sim.New(w.Eval, nr.Sched, nr.Opts)
		if done := s.RunUntil(f.snapshotAt); done {
			fmt.Printf("note: run completed before t=%d; snapshotting the finished world\n", f.snapshotAt)
		}
		file, err := os.Create(f.out)
		if err != nil {
			return err
		}
		bw := bufio.NewWriter(file)
		if err := s.Snapshot(bw); err != nil {
			file.Close()
			return err
		}
		if err := bw.Flush(); err != nil {
			file.Close()
			return err
		}
		if err := file.Close(); err != nil {
			return err
		}
		fmt.Printf("snapshot at t=%d → %s\n", f.snapshotAt, f.out)
		res := s.Run() // snapshots are read-only; finish the run as normal
		fmt.Printf("%s\n", res.Summary())
		return nil

	default: // resumeAt > 0: in-process time-travel fork
		if f.withSched == "" {
			return fmt.Errorf("-resume-at needs -with-scheduler")
		}
		base, err := pickRun(w, f.sched, f)
		if err != nil {
			return err
		}
		alt, err := pickRun(w, f.withSched, f)
		if err != nil {
			return err
		}
		s := sim.New(w.Eval, base.Sched, base.Opts)
		if done := s.RunUntil(f.resumeAt); done {
			return fmt.Errorf("base %s run completed before t=%d — nothing to fork", base.Name, f.resumeAt)
		}
		forked, err := s.Fork(alt.Sched, alt.Opts)
		if err != nil {
			return fmt.Errorf("fork into %s: %w", alt.Name, err)
		}
		fmt.Printf("forked %s world at t=%d into %s\n", base.Name, f.resumeAt, alt.Name)
		altRes := forked.Run()
		baseRes := s.Run()
		fmt.Printf("%s\n", baseRes.Summary())
		fmt.Printf("%s  (what-if from t=%d)\n", altRes.Summary(), f.resumeAt)
		return nil
	}
}

// tracePath inserts the scheduler name before the extension when several
// schedulers share one -decision-trace flag.
func tracePath(base, sched string, multi bool) string {
	if !multi {
		return base
	}
	ext := filepath.Ext(base)
	return strings.TrimSuffix(base, ext) + "." + strings.ToLower(sched) + ext
}

// summarizeFile replays a JSONL decision trace and prints its summary.
func summarizeFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := dtrace.ReadJSONL(bufio.NewReader(f))
	if err != nil {
		return err
	}
	fmt.Print(dtrace.SummarizeEvents(events).String())
	return nil
}

func specByName(name string) (trace.GenSpec, bool) {
	switch strings.ToLower(name) {
	case "venus":
		return trace.Venus(), true
	case "saturn":
		return trace.Saturn(), true
	case "philly":
		return trace.Philly(), true
	default:
		return trace.GenSpec{}, false
	}
}
