// Command lucidsim runs one (trace, scheduler) simulation and prints the
// aggregate metrics — the quick way to poke at the system.
//
// Usage:
//
//	lucidsim -trace venus -sched lucid -scale 0.2
//	lucidsim -trace philly -sched all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/lab"
	"repro/internal/trace"
)

func main() {
	traceName := flag.String("trace", "venus", "trace: venus | saturn | philly")
	schedName := flag.String("sched", "all", "scheduler: fifo | sjf | qssf | horus | tiresias | lucid | all")
	scale := flag.Float64("scale", 0.2, "fraction of the Table 2 job count to replay (0 < s ≤ 1)")
	util := flag.String("util", "M", "workload utilization mix: L | M | H (Figure 12a)")
	flag.Parse()

	spec, ok := specByName(*traceName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown trace %q\n", *traceName)
		os.Exit(2)
	}
	switch strings.ToUpper(*util) {
	case "L":
		spec.Util = trace.UtilLow
	case "H":
		spec.Util = trace.UtilHigh
	default:
		spec.Util = trace.UtilMedium
	}

	fmt.Printf("building %s world at scale %.2f (training models on a history month)...\n", spec.Name, *scale)
	w, err := lab.BuildWorld(spec, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("evaluation month: %d jobs on %d GPUs across %d VCs\n\n",
		len(w.Eval.Jobs), w.Eval.Cluster.TotalGPUs(), len(w.Eval.Cluster.VCs))

	want := strings.ToLower(*schedName)
	ran := false
	for _, nr := range w.Schedulers() {
		if want != "all" && strings.ToLower(nr.Name) != want {
			continue
		}
		ran = true
		t0 := time.Now()
		res := w.Run(nr)
		fmt.Printf("%s  (wall %.1fs)\n", res.Summary(), time.Since(t0).Seconds())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}
}

func specByName(name string) (trace.GenSpec, bool) {
	switch strings.ToLower(name) {
	case "venus":
		return trace.Venus(), true
	case "saturn":
		return trace.Saturn(), true
	case "philly":
		return trace.Philly(), true
	default:
		return trace.GenSpec{}, false
	}
}
