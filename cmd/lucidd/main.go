// Command lucidd is a miniature non-intrusive control plane demonstrating
// deployment properties A1/A2: jobs are registered with plain metadata (no
// user-code hooks), resource metrics arrive as NVIDIA-SMI-style samples
// pushed by node agents, and the scheduler's view — Sharing Scores, duration
// estimates, priority order — is served over plain HTTP. Nothing here
// touches the training process.
//
//	go run ./cmd/lucidd -addr :8080
//	curl -XPOST localhost:8080/jobs -d '{"name":"train-v1","user":"alice","vc":"vc0","gpus":2}'
//	curl -XPOST localhost:8080/metrics -d '{"job":1,"gpu_util":55,"gpu_mem_mb":2600,"gpu_mem_util":38}'
//	curl -XPOST localhost:8080/agents -d '{"name":"agent-0","node":0}'
//	curl localhost:8080/schedule
//	curl localhost:8080/metrics        # GET: Prometheus scrape of the daemon itself
//
// The process is hardened against failing clients: request bodies are
// capped, slow-loris connections hit read/write deadlines, agents that stop
// heartbeating are evicted, and SIGINT/SIGTERM drain in-flight requests
// before the listener closes. -chaos additionally mounts POST /chaos for
// fault-injection during integration tests.
//
// With -shards N the control plane is partitioned into per-VC shards: each
// shard owns its slice of the job/agent tables behind its own mutex, VCs are
// hash-routed to shards, cluster-wide reads fan out and merge, and GET
// /metrics//healthz never touch a shard lock. With -state-dir the daemon is
// additionally durable: every mutating request is logged to a write-ahead
// log under <state-dir>/shard-<i>/ (job submissions fsynced before the ack),
// periodically compacted into a snapshot, and recovered shard-by-shard on
// boot — a SIGKILL loses nothing that was acknowledged, a torn WAL tail on
// one shard never touches a sibling — and snapshotted once more after a
// clean SIGTERM drain. A state dir is bound to the shard count that created
// it. Drive it with cmd/lucidload to measure sustained req/s and latency.
//
// With -ingest-queue N telemetry ingest (POST /metrics, POST /agents) turns
// asynchronous: each shard buffers up to N acked ops in a bounded queue
// drained by a shard-owned applier that coalesces WAL appends into batched
// fsyncs; full queues shed load with 429 + Retry-After instead of blocking.
// Job submissions stay synchronous (fsynced before the 201). Reads barrier on
// the queue first, so /jobs, /schedule and /agents still observe every acked
// sample.
//
// GET /metrics serves the daemon's own instruments (request latency and
// status codes per endpoint, WAL append/fsync latency, snapshot cost, queue
// depth, agent count, recovery stats) in Prometheus text format; -pprof-addr
// mounts net/http/pprof on a separate listener — keep it loopback-only.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/lucidd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.Int("shards", 1, "per-VC state shards (VCs are hash-routed; a state dir is bound to its shard count)")
	chaos := flag.Bool("chaos", false, "mount the POST /chaos fault-injection endpoint (testing only)")
	stale := flag.Duration("agent-stale-after", 90*time.Second, "evict agents silent for longer than this")
	maxBody := flag.Int64("max-body-bytes", 1<<20, "reject request bodies larger than this")
	drain := flag.Duration("drain-timeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	stateDir := flag.String("state-dir", "", "directory for WAL + snapshot durability (empty = in-memory only)")
	ingestQueue := flag.Int("ingest-queue", 0, "per-shard async telemetry queue depth; 0 = synchronous ingest, >0 acks samples/heartbeats with 202 and sheds overload with 429+Retry-After")
	ingestBatch := flag.Int("ingest-batch", 0, "max telemetry ops coalesced per apply+fsync batch (0 = default; only with -ingest-queue)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled); keep it private")
	flag.Parse()

	srv, err := lucidd.NewServerWith(lucidd.Options{
		Shards:          *shards,
		MaxBodyBytes:    *maxBody,
		AgentStaleAfter: *stale,
		EnableChaos:     *chaos,
		StateDir:        *stateDir,
		IngestQueue:     *ingestQueue,
		IngestBatch:     *ingestBatch,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *stateDir != "" {
		records, torn, fromSnap := srv.Recovery()
		log.Printf("lucidd state dir %s: recovered %d WAL records across %d shard(s) (snapshot=%v, torn tail=%d bytes)",
			*stateDir, records, srv.Shards(), fromSnap, torn)
		for _, r := range srv.ShardRecoveries() {
			if r.Records > 0 || r.TornBytes > 0 || r.FromSnapshot {
				log.Printf("lucidd shard %d: %d WAL records (snapshot=%v, torn tail=%d bytes)",
					r.Shard, r.Records, r.FromSnapshot, r.TornBytes)
			}
		}
	}

	if *ingestQueue > 0 {
		log.Printf("lucidd async telemetry ingest: per-shard queue %d (batched apply+fsync; overload answers 429)", *ingestQueue)
	}

	if *pprofAddr != "" {
		// pprof gets its own listener (typically loopback-only), never the
		// public mux: profiles leak source paths and heap contents. The
		// handlers are mounted explicitly on a fresh mux rather than via the
		// net/http/pprof import side effect on DefaultServeMux.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("lucidd pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("lucidd draining (up to %s)", *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Drain the application first (new requests 503, in-flight finish),
		// then close the listener and idle connections.
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()

	if *chaos {
		log.Printf("lucidd listening on %s (CHAOS ENDPOINT ENABLED)", *addr)
	} else {
		log.Printf("lucidd listening on %s", *addr)
	}
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Print("lucidd stopped")
}
