// Command lucidd is a miniature non-intrusive control plane demonstrating
// deployment properties A1/A2: jobs are registered with plain metadata (no
// user-code hooks), resource metrics arrive as NVIDIA-SMI-style samples
// pushed by node agents, and the scheduler's view — Sharing Scores, duration
// estimates, priority order — is served over plain HTTP. Nothing here
// touches the training process.
//
//	go run ./cmd/lucidd -addr :8080
//	curl -XPOST localhost:8080/jobs -d '{"name":"train-v1","user":"alice","vc":"vc0","gpus":2}'
//	curl -XPOST localhost:8080/metrics -d '{"job":1,"gpu_util":55,"gpu_mem_mb":2600,"gpu_mem_util":38}'
//	curl localhost:8080/schedule
package main

import (
	"flag"
	"log"
	"net/http"

	"repro/internal/lucidd"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()

	srv, err := lucidd.NewServer()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("lucidd listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
