// Command lucidload drives load against a lucidd control plane and reports
// sustained req/s and latency quantiles. It has two modes:
//
// Network mode hammers a live daemon:
//
//	lucidd -addr :8080 -shards 8 &
//	lucidload -addr http://localhost:8080 -agents 1024 -vcs 8 -duration 10s
//
// Self-benchmark mode builds two in-process servers — one shard versus
// -shards N — runs the identical deterministic workload through each with no
// network in the way, and writes the comparison to -out (BENCH_lucidd.json).
// This is the repeatable artifact behind the sharding numbers in
// EXPERIMENTS.md:
//
//	lucidload -selfbench -shards 8 -agents 4096 -vcs 8 -duration 5s
//
// The workload simulates node agents heartbeating and pushing GPU samples
// across virtual clusters, plus job submissions and tenant-scoped schedule
// and agent queries — the traffic shape sharding exists to serve. Both sides
// of the self-benchmark replay the same seeded op streams, so the comparison
// isolates the server's per-op cost.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/loadgen"
	"repro/internal/lucidd"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running lucidd (network mode)")
	selfbench := flag.Bool("selfbench", false, "run the in-process 1-shard vs -shards comparison instead of network mode")
	shards := flag.Int("shards", 8, "shard count for the sharded side of -selfbench")
	agents := flag.Int("agents", 2048, "simulated node agents")
	vcs := flag.Int("vcs", 8, "virtual clusters the agents and jobs spread across")
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	duration := flag.Duration("duration", 5*time.Second, "measured run length")
	ramp := flag.Duration("ramp", 0, "stagger worker starts across this window")
	ops := flag.Int("ops", 0, "per-worker op budget (0 = run for -duration)")
	seed := flag.Int64("seed", 1, "workload seed (same seed, same per-worker op streams)")
	mixSpec := flag.String("mix", loadgen.DefaultMix().String(), "op mix weights, e.g. heartbeat=8,sample=4,submit=1,schedule=1,agents=2")
	out := flag.String("out", "BENCH_lucidd.json", "where -selfbench writes its JSON comparison")
	flag.Parse()

	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	base := loadgen.Options{
		Agents: *agents, VCs: *vcs, Workers: *workers,
		Duration: *duration, Ramp: *ramp, OpsPerWorker: *ops,
		Seed: *seed, Mix: mix,
	}

	switch {
	case *selfbench:
		if err := runSelfbench(base, *shards, *out); err != nil {
			log.Fatal(err)
		}
	case *addr != "":
		opts := base
		opts.BaseURL = *addr
		res, err := loadgen.Run(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Summary())
		printPerOp(res)
	default:
		log.Fatal("lucidload: need -addr (network mode) or -selfbench")
	}
}

func printPerOp(res *loadgen.Result) {
	for op, st := range res.PerOp {
		fmt.Printf("  %-10s count=%-8d p50=%.3fms p99=%.3fms p999=%.3fms errors=%d\n",
			op, st.Count, st.P50ms, st.P99ms, st.P999ms, st.Errors)
	}
}

// benchReport is the BENCH_lucidd.json schema.
type benchReport struct {
	Bench  string `json:"bench"`
	Config struct {
		Shards      int     `json:"shards"`
		Agents      int     `json:"agents"`
		VCs         int     `json:"vcs"`
		Workers     int     `json:"workers"`
		DurationSec float64 `json:"duration_sec"`
		Seed        int64   `json:"seed"`
		Mix         string  `json:"mix"`
	} `json:"config"`
	SingleShard *loadgen.Result `json:"single_shard"`
	Sharded     *loadgen.Result `json:"sharded"`
	Speedup     float64         `json:"speedup_req_per_sec"`
	P99Ratio    float64         `json:"p99_ratio_sharded_over_single"`
}

// runSelfbench runs the identical workload against an in-memory 1-shard
// server and an in-memory N-shard server, prefilling each with the full
// agent fleet and a seed queue first so the measured window is steady-state
// (per-op cost dominated by shard population, not by ramp-up).
func runSelfbench(base loadgen.Options, shards int, out string) error {
	if shards < 2 {
		return fmt.Errorf("lucidload: -selfbench needs -shards >= 2 (got %d)", shards)
	}
	run := func(n int) (*loadgen.Result, error) {
		srv, err := lucidd.NewServerWith(lucidd.Options{Shards: n})
		if err != nil {
			return nil, err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()

		// Prefill: register every agent (one heartbeat each) and seed each VC
		// with a handful of jobs, deterministically.
		pre := base
		pre.Handler = srv
		pre.Duration = 0
		pre.Ramp = 0
		pre.Mix = loadgen.Mix{Heartbeat: 1}
		pre.OpsPerWorker = (base.Agents + base.Workers - 1) / base.Workers
		if _, err := loadgen.Run(pre); err != nil {
			return nil, err
		}
		pre.Mix = loadgen.Mix{Submit: 1}
		pre.OpsPerWorker = 4 * ((base.VCs + base.Workers - 1) / base.Workers)
		if _, err := loadgen.Run(pre); err != nil {
			return nil, err
		}

		opts := base
		opts.Handler = srv
		res, err := loadgen.Run(opts)
		if err != nil {
			return nil, err
		}
		if res.Errors > 0 {
			return nil, fmt.Errorf("selfbench (%d shards): %d request errors — benchmark invalid", n, res.Errors)
		}
		return res, nil
	}

	log.Printf("selfbench: single shard, %d agents, %d VCs, %d workers, %s ...",
		base.Agents, base.VCs, base.Workers, base.Duration)
	single, err := run(1)
	if err != nil {
		return err
	}
	fmt.Printf("single shard: %s\n", single.Summary())

	log.Printf("selfbench: %d shards ...", shards)
	sharded, err := run(shards)
	if err != nil {
		return err
	}
	fmt.Printf("%d shards:     %s\n", shards, sharded.Summary())

	var rep benchReport
	rep.Bench = "lucidd_shard_scaling"
	rep.Config.Shards = shards
	rep.Config.Agents = base.Agents
	rep.Config.VCs = base.VCs
	rep.Config.Workers = base.Workers
	rep.Config.DurationSec = base.Duration.Seconds()
	rep.Config.Seed = base.Seed
	rep.Config.Mix = base.Mix.String()
	rep.SingleShard = single
	rep.Sharded = sharded
	if single.ReqPerSec > 0 {
		rep.Speedup = sharded.ReqPerSec / single.ReqPerSec
	}
	if single.P99ms > 0 {
		rep.P99Ratio = sharded.P99ms / single.P99ms
	}
	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("speedup: %.2fx req/s (p99 ratio %.2f); wrote %s\n", rep.Speedup, rep.P99Ratio, out)
	return nil
}
