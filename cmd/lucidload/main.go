// Command lucidload drives load against a lucidd control plane and reports
// sustained req/s and latency quantiles. It has two modes:
//
// Network mode hammers a live daemon:
//
//	lucidd -addr :8080 -shards 8 &
//	lucidload -addr http://localhost:8080 -agents 1024 -vcs 8 -duration 10s
//
// Self-benchmark mode builds two in-process servers — one shard versus
// -shards N — runs the identical deterministic workload through each with no
// network in the way, and writes the comparison to -out (BENCH_lucidd.json).
// This is the repeatable artifact behind the sharding numbers in
// EXPERIMENTS.md:
//
//	lucidload -selfbench -shards 8 -agents 4096 -vcs 8 -duration 5s
//
// The workload simulates node agents heartbeating and pushing GPU samples
// across virtual clusters, plus job submissions and tenant-scoped schedule
// and agent queries — the traffic shape sharding exists to serve. Both sides
// of the self-benchmark replay the same seeded op streams, so the comparison
// isolates the server's per-op cost.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime/pprof"
	"time"

	"repro/internal/loadgen"
	"repro/internal/lucidd"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running lucidd (network mode)")
	selfbench := flag.Bool("selfbench", false, "run the in-process 1-shard vs -shards comparison instead of network mode")
	shards := flag.Int("shards", 8, "shard count for the sharded side of -selfbench")
	agents := flag.Int("agents", 2048, "simulated node agents")
	vcs := flag.Int("vcs", 8, "virtual clusters the agents and jobs spread across")
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	duration := flag.Duration("duration", 5*time.Second, "measured run length")
	ramp := flag.Duration("ramp", 0, "stagger worker starts across this window")
	ops := flag.Int("ops", 0, "per-worker op budget (0 = run for -duration)")
	seed := flag.Int64("seed", 1, "workload seed (same seed, same per-worker op streams)")
	mixSpec := flag.String("mix", loadgen.DefaultMix().String(), "op mix weights, e.g. heartbeat=8,sample=4,submit=1,schedule=1,agents=2")
	out := flag.String("out", "BENCH_lucidd.json", "where -selfbench writes its JSON comparison")
	ingestQueue := flag.Int("ingest-queue", 0, "per-shard async ingest queue for the -selfbench servers (0 = synchronous)")
	ingestBatch := flag.Int("ingest-batch", 0, "apply+fsync batch size for the -selfbench servers (0 = server default)")
	verifyAcks := flag.Bool("verify-acks", false, "network mode: after the run, GET /jobs and fail unless every 201-acked job is present")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	mix, err := loadgen.ParseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	base := loadgen.Options{
		Agents: *agents, VCs: *vcs, Workers: *workers,
		Duration: *duration, Ramp: *ramp, OpsPerWorker: *ops,
		Seed: *seed, Mix: mix,
	}

	switch {
	case *selfbench:
		if err := runSelfbench(base, *shards, *ingestQueue, *ingestBatch, *out); err != nil {
			log.Fatal(err)
		}
	case *addr != "":
		opts := base
		opts.BaseURL = *addr
		res, err := loadgen.Run(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Summary())
		printPerOp(res)
		if *verifyAcks {
			if err := runVerifyAcks(*addr, res.AckedJobs); err != nil {
				log.Fatal(err)
			}
		}
	default:
		log.Fatal("lucidload: need -addr (network mode) or -selfbench")
	}
}

// runVerifyAcks audits the server's ledger against the client's: every job ID
// the server 201-acknowledged during the run must appear in GET /jobs. The
// GET is itself a flush barrier on an async-ingest server, so this also
// proves the drain/visibility contract end to end over the network.
func runVerifyAcks(addr string, acked []int) error {
	resp, err := http.Get(addr + "/jobs")
	if err != nil {
		return fmt.Errorf("verify-acks: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("verify-acks: GET /jobs returned %s", resp.Status)
	}
	var jobs []struct {
		ID int `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return fmt.Errorf("verify-acks: decoding /jobs: %w", err)
	}
	have := make(map[int]bool, len(jobs))
	for _, j := range jobs {
		have[j.ID] = true
	}
	dropped := 0
	for _, id := range acked {
		if !have[id] {
			dropped++
		}
	}
	fmt.Printf("verify-acks: acked=%d dropped=%d\n", len(acked), dropped)
	if dropped > 0 {
		return fmt.Errorf("verify-acks: %d acknowledged job(s) missing from /jobs", dropped)
	}
	return nil
}

func printPerOp(res *loadgen.Result) {
	for op, st := range res.PerOp {
		fmt.Printf("  %-10s count=%-8d p50=%.3fms p99=%.3fms p999=%.3fms errors=%d\n",
			op, st.Count, st.P50ms, st.P99ms, st.P999ms, st.Errors)
	}
}

// benchReport is the BENCH_lucidd.json schema.
type benchReport struct {
	Bench  string `json:"bench"`
	Config struct {
		Shards      int     `json:"shards"`
		Agents      int     `json:"agents"`
		VCs         int     `json:"vcs"`
		Workers     int     `json:"workers"`
		DurationSec float64 `json:"duration_sec"`
		Seed        int64   `json:"seed"`
		Mix         string  `json:"mix"`
		IngestQueue int     `json:"ingest_queue"`
		IngestBatch int     `json:"ingest_batch"`
	} `json:"config"`
	SingleShard *loadgen.Result `json:"single_shard"`
	Sharded     *loadgen.Result `json:"sharded"`
	Speedup     float64         `json:"speedup_req_per_sec"`
	P99Ratio    float64         `json:"p99_ratio_sharded_over_single"`
}

// runSelfbench runs the identical workload against an in-memory 1-shard
// server and an in-memory N-shard server, prefilling each with the full
// agent fleet and a seed queue first so the measured window is steady-state
// (per-op cost dominated by shard population, not by ramp-up).
func runSelfbench(base loadgen.Options, shards, ingestQueue, ingestBatch int, out string) error {
	if shards < 2 {
		return fmt.Errorf("lucidload: -selfbench needs -shards >= 2 (got %d)", shards)
	}
	run := func(n int) (*loadgen.Result, error) {
		srv, err := lucidd.NewServerWith(lucidd.Options{Shards: n,
			IngestQueue: ingestQueue, IngestBatch: ingestBatch})
		if err != nil {
			return nil, err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Shutdown(ctx)
		}()

		// Prefill: register every agent (one heartbeat each) and seed each VC
		// with a handful of jobs, deterministically.
		pre := base
		pre.Handler = srv
		pre.Duration = 0
		pre.Ramp = 0
		pre.Mix = loadgen.Mix{Heartbeat: 1}
		pre.OpsPerWorker = (base.Agents + base.Workers - 1) / base.Workers
		if _, err := loadgen.Run(pre); err != nil {
			return nil, err
		}
		pre.Mix = loadgen.Mix{Submit: 1}
		pre.OpsPerWorker = 4 * ((base.VCs + base.Workers - 1) / base.Workers)
		if _, err := loadgen.Run(pre); err != nil {
			return nil, err
		}

		opts := base
		opts.Handler = srv
		res, err := loadgen.Run(opts)
		if err != nil {
			return nil, err
		}
		if res.Errors > 0 {
			return nil, fmt.Errorf("selfbench (%d shards): %d request errors — benchmark invalid", n, res.Errors)
		}
		return res, nil
	}

	log.Printf("selfbench: single shard, %d agents, %d VCs, %d workers, %s ...",
		base.Agents, base.VCs, base.Workers, base.Duration)
	single, err := run(1)
	if err != nil {
		return err
	}
	fmt.Printf("single shard: %s\n", single.Summary())

	log.Printf("selfbench: %d shards ...", shards)
	sharded, err := run(shards)
	if err != nil {
		return err
	}
	fmt.Printf("%d shards:     %s\n", shards, sharded.Summary())

	var rep benchReport
	rep.Bench = "lucidd_shard_scaling"
	rep.Config.Shards = shards
	rep.Config.Agents = base.Agents
	rep.Config.VCs = base.VCs
	rep.Config.Workers = base.Workers
	rep.Config.DurationSec = base.Duration.Seconds()
	rep.Config.Seed = base.Seed
	rep.Config.Mix = base.Mix.String()
	rep.Config.IngestQueue = ingestQueue
	rep.Config.IngestBatch = ingestBatch
	rep.SingleShard = single
	rep.Sharded = sharded
	if single.ReqPerSec > 0 {
		rep.Speedup = sharded.ReqPerSec / single.ReqPerSec
	}
	if single.P99ms > 0 {
		rep.P99Ratio = sharded.P99ms / single.P99ms
	}
	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("speedup: %.2fx req/s (p99 ratio %.2f); wrote %s\n", rep.Speedup, rep.P99Ratio, out)
	return nil
}
