// Command lucidbench regenerates every table and figure of the Lucid
// paper's evaluation section from this repository's substrates. Each
// experiment is addressable by id; -exp all runs the full suite except the
// benchmarks flagged as excluded (run those by id). -list and -help
// enumerate every registered experiment.
//
// Usage:
//
//	lucidbench -exp tab4 -scale 0.2
//	lucidbench -exp all -scale 0.1 -parallel 8
//	lucidbench -exp evolve -scale 0.05 -evolve-spec strategy=evo,seed=1
//	lucidbench -list
//
// Independent simulation runs within each experiment fan out across a
// bounded worker pool (-parallel, default GOMAXPROCS); -parallel 1 forces
// serial execution. Worlds (traces + trained models) are memoized
// process-wide, so experiments sharing a (cluster, scale) pair train once.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/evolve"
	"repro/internal/lab"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// experiment maps an id to a runner.
type experiment struct {
	id, desc string
	run      func(scale float64) (string, error)
}

// excludedFromAll keeps an experiment out of -exp all (it still runs when
// named by id) and documents why in -list/-help output.
var excludedFromAll = map[string]string{
	"scale":  "wall-clock benchmark with deliberately slow tick-engine baselines, not a paper artifact",
	"evolve": "multi-generation search over full suite runs; orders of magnitude costlier than one experiment",
}

func experiments() []experiment {
	return []experiment{
		{"fig2a", "pair speed vs accumulated GPU utilization + fit", func(float64) (string, error) {
			_, rep := lab.Fig2a()
			return rep, nil
		}},
		{"fig2b", "batch size & AMP effect on packing speed", func(float64) (string, error) {
			_, rep := lab.Fig2b()
			return rep, nil
		}},
		{"fig3", "packing examples (ResNet-18 pairs; multi-GPU scales)", func(float64) (string, error) {
			_, repA := lab.Fig3a()
			_, repB := lab.Fig3b()
			return repA + "\n" + repB, nil
		}},
		{"fig5", "indolent packing decision quality", func(float64) (string, error) {
			_, rep, err := lab.Fig5()
			return rep, err
		}},
		{"fig6", "Packing Analyze Model tree + importances", func(float64) (string, error) {
			return lab.Fig6()
		}},
		{"fig7", "GA²M interpretations (global, shape, local)", lab.Fig7},
		{"tab3", "physical-vs-simulation fidelity on the 32-GPU testbed", func(float64) (string, error) {
			_, rep, err := lab.Table3(1)
			return rep, err
		}},
		{"tab4", "end-to-end: 3 clusters × 6 schedulers (also fig8, fig9, tab5)", runTab4},
		{"tab5", "large vs small jobs on Venus", runTab5},
		{"fig8", "JCT CDF checkpoints", runFig8},
		{"fig9", "per-VC queuing delay", runFig9},
		{"fig10a", "scheduling latency vs queue size", runFig10a},
		{"fig10b", "model training time per cluster", func(scale float64) (string, error) {
			return lab.Fig10b(allSpecs(), scale)
		}},
		{"fig11a", "component ablations on Venus", func(scale float64) (string, error) {
			_, rep, err := lab.Fig11a(scale)
			return rep, err
		}},
		{"fig11b", "space-aware profiling vs naive", func(scale float64) (string, error) {
			return lab.Fig11b(allSpecs(), scale)
		}},
		{"fig12", "workload-distribution sensitivity (Venus-L/M/H)", lab.Fig12},
		{"fig13", "prediction visualization (throughput, durations)", lab.Fig13},
		{"fig14a", "Lucid vs Pollux vs Tiresias under intensity", func(float64) (string, error) {
			return lab.Fig14a([]float64{0.5, 1.0, 1.5, 2.0, 2.5}, 5)
		}},
		{"fig14b", "validation accuracy with/without adaptive training", func(float64) (string, error) {
			_, _, rep := lab.Fig14b(7)
			return rep, nil
		}},
		{"tab6", "Tprof sensitivity", lab.Table6},
		{"tab7", "interpretable vs black-box model comparison", func(scale float64) (string, error) {
			_, rep, err := lab.Table7(scale)
			return rep, err
		}},
		{"update", "model update interval study (§4.5(3))", lab.UpdateIntervalStudy},
		{"thresholds", "binder threshold sensitivity (§4.5(2))", func(scale float64) (string, error) {
			_, rep, err := lab.BinderThresholdStudy(scale)
			return rep, err
		}},
		{"tuning", "guided system tuning (§4.6)", lab.GuidedTuningStudy},
		{"monotonic", "monotonic constraint study (§4.6)", lab.MonotonicConstraintStudy},
		{"fairness", "fairness extension: priority aging (§6)", lab.FairnessStudy},
		{"hetero", "heterogeneous GPU generations extension (§6)", lab.HeterogeneityStudy},
		{"figr", "goodput & JCT under failure-rate sweep (chaos extension)", lab.FigR},
		{"warmstart", "warm-started what-if sweep via in-memory world forks", lab.WarmStartStudy},
		{"scale", "tick vs event engine wall-clock + 10k-GPU/1M-job run (writes BENCH_scale.json)", lab.BenchScale},
		{"evolve", "closed-loop knob tuning against the simulator (writes BENCH_evolve.json)", func(scale float64) (string, error) {
			return evolve.Bench(*evolveSpec, scale, *evolveCheckpoint)
		}},
	}
}

// evolve-specific flags (read by the evolve experiment's runner, which is
// built in experiments() after flag.Parse).
var (
	evolveSpec = flag.String("evolve-spec", "default",
		"evolve search spec, comma-separated key=value (strategy=evo|coord, seed, pop, gens, budget, worlds=venus+saturn+philly, chaos=0+1); 'default' = "+evolve.DefaultSpec().String())
	evolveCheckpoint = flag.String("evolve-checkpoint", "",
		"evolve: snap-envelope checkpoint path, written after every search step and resumed from when the file already exists")
)

// listExperiments enumerates every registered experiment (the -list and
// -help body), flagging the ones -exp all skips and why.
func listExperiments() string {
	var sb strings.Builder
	for _, e := range experiments() {
		fmt.Fprintf(&sb, "  %-8s %s\n", e.id, e.desc)
		if why := excludedFromAll[e.id]; why != "" {
			fmt.Fprintf(&sb, "  %-8s   excluded from -exp all: %s\n", "", why)
		}
	}
	return sb.String()
}

func allSpecs() []trace.GenSpec {
	return []trace.GenSpec{trace.Venus(), trace.Saturn(), trace.Philly()}
}

func runTab4(scale float64) (string, error) {
	_, results, rep, err := lab.Table4(allSpecs(), scale)
	if err != nil {
		return "", err
	}
	out := rep + "\n" + lab.Fig8(results) + "\n" + lab.Fig9(results)
	if venus, ok := results["Venus"]; ok {
		out += "\n" + lab.Table5(venus)
	}
	return out, nil
}

func runTab5(scale float64) (string, error) {
	_, results, _, err := lab.Table4([]trace.GenSpec{trace.Venus()}, scale)
	if err != nil {
		return "", err
	}
	return lab.Table5(results["Venus"]), nil
}

func runFig8(scale float64) (string, error) {
	_, results, _, err := lab.Table4(allSpecs(), scale)
	if err != nil {
		return "", err
	}
	return lab.Fig8(results), nil
}

func runFig9(scale float64) (string, error) {
	_, results, _, err := lab.Table4(allSpecs(), scale)
	if err != nil {
		return "", err
	}
	return lab.Fig9(results), nil
}

func runFig10a(scale float64) (string, error) {
	w, err := lab.GetWorld(trace.Venus(), scale)
	if err != nil {
		return "", err
	}
	_, rep, err := lab.Fig10a(w, []int{128, 256, 512, 1024, 2048})
	return rep, err
}

func main() {
	expID := flag.String("exp", "all", "experiment id (see -list)")
	scale := flag.Float64("scale", 0.2, "trace scale for end-to-end experiments")
	parallel := flag.Int("parallel", 0, "max concurrent simulation runs (0 = GOMAXPROCS, 1 = serial)")
	list := flag.Bool("list", false, "list experiment ids")
	metricsOut := flag.String("metrics-out", "", "write suite metrics (per-experiment wall-clock, world-cache stats) to this path in Prometheus text format")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage: lucidbench [flags]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nExperiments (-exp id, comma-separated for several):\n%s", listExperiments())
	}
	flag.Parse()

	lab.SetParallelism(*parallel)
	exps := experiments()
	if *list {
		fmt.Print(listExperiments())
		return
	}

	ids := strings.Split(strings.ToLower(*expID), ",")
	want := map[string]bool{}
	for _, id := range ids {
		want[strings.TrimSpace(id)] = true
	}
	// The suite registry makes a benchmark run scrape-compatible with the
	// rest of the system: per-experiment wall-clock and world-cache hit
	// rates land in the same text format lucidd serves, so CI archives one
	// artifact kind for both.
	reg := metrics.New()
	expSeconds := reg.GaugeVec("lucidbench_experiment_seconds",
		"Wall-clock seconds per experiment.", "exp")
	expRuns := reg.Counter("lucidbench_experiments_total", "Experiments executed.")

	ran := 0
	suiteStart := time.Now()
	for _, e := range exps {
		// Experiments in excludedFromAll only run when asked for by id.
		if !want[e.id] && !(want["all"] && excludedFromAll[e.id] == "") {
			continue
		}
		ran++
		fmt.Printf("=== %s — %s ===\n", e.id, e.desc)
		t0 := time.Now()
		rep, err := e.run(*scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		elapsed := time.Since(t0).Seconds()
		expSeconds.With(e.id).Set(elapsed)
		expRuns.Inc()
		fmt.Println(rep)
		fmt.Printf("(%.1fs)\n\n", elapsed)
	}
	builds, hits := lab.WorldCacheStats()
	if ran > 1 {
		fmt.Printf("suite wall-clock: %.1fs (parallelism %d; worlds built %d, cache hits %d)\n",
			time.Since(suiteStart).Seconds(), lab.Parallelism(), builds, hits)
	}
	if *metricsOut != "" && ran > 0 {
		reg.Gauge("lucidbench_suite_seconds", "Suite wall-clock seconds.").
			Set(time.Since(suiteStart).Seconds())
		reg.Gauge("lucidbench_worlds_built", "Worlds (trace + trained models) built.").
			Set(float64(builds))
		reg.Gauge("lucidbench_world_cache_hits", "World cache hits.").
			Set(float64(hits))
		reg.Gauge("lucidbench_parallelism", "Concurrent simulation-run cap.").
			Set(float64(lab.Parallelism()))
		if err := os.WriteFile(*metricsOut, []byte(reg.Render()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write metrics dump: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("suite metrics → %s\n", *metricsOut)
	}
	if ran == 0 {
		known := make([]string, 0, len(exps))
		for _, e := range exps {
			known = append(known, e.id)
		}
		sort.Strings(known)
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", *expID, strings.Join(known, " "))
		os.Exit(2)
	}
}
