// Package mlmodel holds the shared dataset representation and evaluation
// metrics used by every model family in this repository (decision tree,
// random forest, gradient boosting, GA²M, MLP). Table 7 of the Lucid paper
// compares those families with MAE and R²; the packing analyzer is scored
// with classification accuracy.
package mlmodel

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Dataset is a dense supervised-learning table: row-major features plus one
// target per row. Feature names travel with the data so interpretable models
// can render human-readable explanations.
type Dataset struct {
	X     [][]float64
	Y     []float64
	Names []string
}

// NewDataset validates shapes and wraps the slices (no copy).
func NewDataset(x [][]float64, y []float64, names []string) (*Dataset, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("mlmodel: %d feature rows vs %d targets", len(x), len(y))
	}
	if len(x) > 0 {
		w := len(x[0])
		for i, row := range x {
			if len(row) != w {
				return nil, fmt.Errorf("mlmodel: row %d has %d features, want %d", i, len(row), w)
			}
		}
		if names != nil && len(names) != w {
			return nil, fmt.Errorf("mlmodel: %d names for %d features", len(names), w)
		}
	}
	return &Dataset{X: x, Y: y, Names: names}, nil
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// NumFeatures returns the feature dimensionality (0 for an empty set).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// FeatureName returns the name of feature i, or "f<i>" if unnamed.
func (d *Dataset) FeatureName(i int) string {
	if d.Names != nil && i < len(d.Names) {
		return d.Names[i]
	}
	return fmt.Sprintf("f%d", i)
}

// Split partitions the dataset into train and test halves: the first
// floor(trainFrac·n) rows train, the rest test. Rows are NOT shuffled —
// time-series data (the throughput model) must split chronologically, which
// is also how the paper splits (train on April–August, test on September).
// Shuffle first with ShuffledCopy for i.i.d. data.
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	n := len(d.X)
	cut := int(float64(n) * trainFrac)
	if cut < 0 {
		cut = 0
	}
	if cut > n {
		cut = n
	}
	train = &Dataset{X: d.X[:cut], Y: d.Y[:cut], Names: d.Names}
	test = &Dataset{X: d.X[cut:], Y: d.Y[cut:], Names: d.Names}
	return train, test
}

// ShuffledCopy returns a row-shuffled copy of the dataset.
func (d *Dataset) ShuffledCopy(rng *xrand.RNG) *Dataset {
	n := len(d.X)
	perm := rng.Perm(n)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i, p := range perm {
		x[i] = d.X[p]
		y[i] = d.Y[p]
	}
	return &Dataset{X: x, Y: y, Names: d.Names}
}

// Subset returns the dataset restricted to the given row indices (views, no
// copies of rows).
func (d *Dataset) Subset(idx []int) *Dataset {
	x := make([][]float64, len(idx))
	y := make([]float64, len(idx))
	for i, p := range idx {
		x[i] = d.X[p]
		y[i] = d.Y[p]
	}
	return &Dataset{X: x, Y: y, Names: d.Names}
}

// Regressor is a trained model that predicts a real value per feature row.
type Regressor interface {
	Predict(x []float64) float64
}

// Classifier is a trained model that predicts a class label per feature row.
type Classifier interface {
	PredictClass(x []float64) int
}

// PredictAll applies a regressor row-wise.
func PredictAll(m Regressor, x [][]float64) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = m.Predict(row)
	}
	return out
}

// MAE is the mean absolute error (Table 7's throughput metric; lower is
// better).
func MAE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// MSE is the mean squared error.
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// RMSE is the root mean squared error.
func RMSE(pred, truth []float64) float64 { return math.Sqrt(MSE(pred, truth)) }

// R2 is the coefficient of determination (Table 7's duration metric; higher
// is better, 1 is perfect, ≤0 means no better than predicting the mean).
func R2(pred, truth []float64) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		d := truth[i] - pred[i]
		ssRes += d * d
		m := truth[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Accuracy is the fraction of exact label matches.
func Accuracy(pred, truth []int) float64 {
	if len(pred) != len(truth) || len(pred) == 0 {
		return math.NaN()
	}
	hit := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred))
}

// Mean returns the arithmetic mean (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance (0 for fewer than 2 elements).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}
