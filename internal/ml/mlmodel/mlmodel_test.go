package mlmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset([][]float64{{1}}, []float64{1, 2}, nil); err == nil {
		t.Fatal("row/target mismatch accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}, {3}}, []float64{1, 2}, nil); err == nil {
		t.Fatal("ragged rows accepted")
	}
	if _, err := NewDataset([][]float64{{1, 2}}, []float64{1}, []string{"only-one"}); err == nil {
		t.Fatal("name count mismatch accepted")
	}
	ds, err := NewDataset([][]float64{{1, 2}}, []float64{3}, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumFeatures() != 2 || ds.Len() != 1 {
		t.Fatal("shape accessors wrong")
	}
	if ds.FeatureName(0) != "a" {
		t.Fatal("feature name lookup wrong")
	}
}

func TestFeatureNameFallback(t *testing.T) {
	ds := &Dataset{X: [][]float64{{1, 2}}, Y: []float64{0}}
	if got := ds.FeatureName(1); got != "f1" {
		t.Fatalf("fallback name = %q", got)
	}
}

func TestSplitChronological(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}, {4}}
	y := []float64{0, 1, 2, 3, 4}
	ds := &Dataset{X: x, Y: y}
	train, test := ds.Split(0.6)
	if train.Len() != 3 || test.Len() != 2 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if train.Y[0] != 0 || test.Y[0] != 3 {
		t.Fatal("split shuffled rows; must be chronological")
	}
	// Degenerate fractions clamp.
	tr, te := ds.Split(-1)
	if tr.Len() != 0 || te.Len() != 5 {
		t.Fatal("negative fraction not clamped")
	}
	tr, te = ds.Split(2)
	if tr.Len() != 5 || te.Len() != 0 {
		t.Fatal("fraction >1 not clamped")
	}
}

func TestShuffledCopyPreservesPairs(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}, {3}, {4}}
	y := []float64{0, 10, 20, 30, 40}
	ds := &Dataset{X: x, Y: y}
	sh := ds.ShuffledCopy(xrand.New(5))
	if sh.Len() != 5 {
		t.Fatal("length changed")
	}
	for i := range sh.X {
		if sh.Y[i] != sh.X[i][0]*10 {
			t.Fatal("row/target pairing broken by shuffle")
		}
	}
}

func TestSubset(t *testing.T) {
	ds := &Dataset{X: [][]float64{{0}, {1}, {2}}, Y: []float64{0, 1, 2}}
	s := ds.Subset([]int{2, 0})
	if s.Len() != 2 || s.Y[0] != 2 || s.Y[1] != 0 {
		t.Fatalf("subset wrong: %+v", s)
	}
}

func TestMetricsKnownValues(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{2, 2, 5}
	if got := MAE(pred, truth); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("MAE = %v", got)
	}
	if got := MSE(pred, truth); math.Abs(got-5.0/3) > 1e-12 {
		t.Fatalf("MSE = %v", got)
	}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %v", got)
	}
}

func TestR2PerfectAndMeanBaseline(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	if got := R2(truth, truth); got != 1 {
		t.Fatalf("perfect R2 = %v", got)
	}
	meanPred := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(meanPred, truth); math.Abs(got) > 1e-12 {
		t.Fatalf("mean-baseline R2 = %v, want 0", got)
	}
	// Worse than the mean → negative.
	bad := []float64{4, 3, 2, 1}
	if got := R2(bad, truth); got >= 0 {
		t.Fatalf("anti-correlated R2 = %v, want <0", got)
	}
}

func TestR2ConstantTruth(t *testing.T) {
	truth := []float64{7, 7, 7}
	if got := R2([]float64{7, 7, 7}, truth); got != 1 {
		t.Fatalf("constant exact R2 = %v", got)
	}
	if got := R2([]float64{7, 8, 7}, truth); got != 0 {
		t.Fatalf("constant miss R2 = %v", got)
	}
}

func TestMetricsEmptyNaN(t *testing.T) {
	if !math.IsNaN(MAE(nil, nil)) || !math.IsNaN(R2(nil, nil)) {
		t.Fatal("empty metrics should be NaN")
	}
	if !math.IsNaN(MAE([]float64{1}, []float64{1, 2})) {
		t.Fatal("length mismatch should be NaN")
	}
	if !math.IsNaN(Accuracy(nil, nil)) {
		t.Fatal("empty accuracy should be NaN")
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); math.Abs(got-5) > 1e-12 {
		t.Fatalf("mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-4) > 1e-12 {
		t.Fatalf("variance = %v", got)
	}
	if Variance([]float64{1}) != 0 || Mean(nil) != 0 {
		t.Fatal("degenerate stats wrong")
	}
}

func TestMAENonNegativeProperty(t *testing.T) {
	check := func(a, b []float64) bool {
		if len(a) != len(b) {
			n := len(a)
			if len(b) < n {
				n = len(b)
			}
			a, b = a[:n], b[:n]
		}
		if len(a) == 0 {
			return true
		}
		for i := range a {
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) || math.IsInf(a[i], 0) || math.IsInf(b[i], 0) {
				return true
			}
		}
		return MAE(a, b) >= 0 && MSE(a, b) >= 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
