// Package affprop implements Affinity Propagation clustering (Frey & Dueck
// 2007, the paper's citation [27]). Lucid uses it to bucketize job names
// whose pairwise Levenshtein similarities are known (§3.5.3): the algorithm
// picks exemplar names by message passing and assigns every other name to
// its nearest exemplar, with no need to choose the cluster count up front.
package affprop

// Params controls the message-passing loop.
type Params struct {
	Damping    float64 // responsibility/availability damping (default 0.7)
	MaxIter    int     // iteration cap (default 200)
	Stable     int     // stop after this many iterations without exemplar change (default 20)
	Preference float64 // self-similarity; 0 means "use the median similarity"
	HasPref    bool    // set true to honor Preference (0 is a legal value)
}

func (p Params) normalized() Params {
	if p.Damping <= 0 || p.Damping >= 1 {
		p.Damping = 0.7
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 200
	}
	if p.Stable <= 0 {
		p.Stable = 20
	}
	return p
}

// Cluster runs affinity propagation over a dense similarity matrix
// (s[i][j] = similarity of i to j; higher is more similar) and returns the
// exemplar index assigned to each point. Points that end up their own
// exemplar are cluster centers. An empty input yields an empty result.
func Cluster(s [][]float64, p Params) []int {
	n := len(s)
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	p = p.normalized()

	// Working copy with preferences on the diagonal.
	pref := p.Preference
	if !p.HasPref {
		pref = medianOffDiagonal(s)
	}
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		copy(sim[i], s[i])
		sim[i][i] = pref
	}
	// Degeneracy breaker (Frey & Dueck's standard fix): perfectly symmetric
	// similarities make message passing oscillate between equally good
	// exemplars. A tiny deterministic jitter removes the ties without
	// affecting real structure.
	for i := range sim {
		for j := range sim[i] {
			h := uint64(i*2654435761) ^ uint64(j*40503)
			h = (h ^ (h >> 13)) * 0x9e3779b97f4a7c15
			sim[i][j] += (float64(h%1000)/1000 - 0.5) * 1e-7
		}
	}

	r := newMatrix(n) // responsibilities
	a := newMatrix(n) // availabilities

	assign := func() []int {
		out := make([]int, n)
		for i := 0; i < n; i++ {
			best, bi := negInf, i
			for k := 0; k < n; k++ {
				if v := a[i][k] + r[i][k]; v > best {
					best, bi = v, k
				}
			}
			out[i] = bi
		}
		// Make assignments consistent: points assigned to a non-exemplar get
		// re-pointed at that point's own exemplar choice; exemplars point at
		// themselves.
		for i := 0; i < n; i++ {
			e := out[i]
			if out[e] != e {
				// e declined to be an exemplar; fall back to self or e's
				// exemplar.
				out[i] = out[e]
			}
		}
		return out
	}

	var prev []int
	stable := 0
	for iter := 0; iter < p.MaxIter; iter++ {
		// Update responsibilities.
		for i := 0; i < n; i++ {
			// Find the top-2 values of a[i][k] + s[i][k].
			max1, max2 := negInf, negInf
			arg1 := -1
			for k := 0; k < n; k++ {
				v := a[i][k] + sim[i][k]
				if v > max1 {
					max2 = max1
					max1, arg1 = v, k
				} else if v > max2 {
					max2 = v
				}
			}
			for k := 0; k < n; k++ {
				cmp := max1
				if k == arg1 {
					cmp = max2
				}
				nv := sim[i][k] - cmp
				r[i][k] = p.Damping*r[i][k] + (1-p.Damping)*nv
			}
		}
		// Update availabilities.
		for k := 0; k < n; k++ {
			sumPos := 0.0
			for i := 0; i < n; i++ {
				if i != k && r[i][k] > 0 {
					sumPos += r[i][k]
				}
			}
			for i := 0; i < n; i++ {
				var nv float64
				if i == k {
					nv = sumPos
				} else {
					v := r[k][k] + sumPos
					if r[i][k] > 0 {
						v -= r[i][k]
					}
					if v > 0 {
						v = 0
					}
					nv = v
				}
				a[i][k] = p.Damping*a[i][k] + (1-p.Damping)*nv
			}
		}

		cur := assign()
		if prev != nil && equal(cur, prev) {
			stable++
			if stable >= p.Stable {
				return cur
			}
		} else {
			stable = 0
		}
		prev = cur
	}
	return assign()
}

const negInf = -1e300

func newMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range m {
		m[i] = buf[i*n : (i+1)*n]
	}
	return m
}

func medianOffDiagonal(s [][]float64) float64 {
	var vals []float64
	for i := range s {
		for j := range s[i] {
			if i != j {
				vals = append(vals, s[i][j])
			}
		}
	}
	if len(vals) == 0 {
		return 0
	}
	// Insertion-sort-free selection: simple sort is fine at these sizes.
	sortFloats(vals)
	return vals[len(vals)/2]
}

func sortFloats(v []float64) {
	// Shell sort: no dependency on package sort for a tiny helper, and
	// stable behaviour on the small slices we feed it.
	for gap := len(v) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(v); i++ {
			t := v[i]
			j := i
			for ; j >= gap && v[j-gap] > t; j -= gap {
				v[j] = v[j-gap]
			}
			v[j] = t
		}
	}
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// NumClusters counts distinct exemplars in an assignment.
func NumClusters(assign []int) int {
	seen := map[int]bool{}
	for _, e := range assign {
		seen[e] = true
	}
	return len(seen)
}
