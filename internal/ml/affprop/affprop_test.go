package affprop

import (
	"testing"

	"repro/internal/ml/textdist"
)

// twoBlobSimilarity builds a similarity matrix with two obvious groups.
func twoBlobSimilarity() [][]float64 {
	// Points 0-2 are one blob, 3-5 the other.
	coords := []float64{0, 0.1, 0.2, 10, 10.1, 10.2}
	n := len(coords)
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			d := coords[i] - coords[j]
			s[i][j] = -d * d // negative squared distance, the standard choice
		}
	}
	return s
}

func TestTwoBlobsTwoClusters(t *testing.T) {
	assign := Cluster(twoBlobSimilarity(), Params{})
	if len(assign) != 6 {
		t.Fatalf("assignment length %d", len(assign))
	}
	if NumClusters(assign) != 2 {
		t.Fatalf("expected 2 clusters, got %d (%v)", NumClusters(assign), assign)
	}
	// Group membership must respect the blobs.
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("first blob split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Fatalf("second blob split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Fatalf("blobs merged: %v", assign)
	}
}

func TestDegenerateInputs(t *testing.T) {
	if got := Cluster(nil, Params{}); got != nil {
		t.Fatal("nil input should yield nil")
	}
	if got := Cluster([][]float64{{0}}, Params{}); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single point: %v", got)
	}
}

func TestJobNameBucketization(t *testing.T) {
	// The §3.5.3 use case: recurring job names cluster together.
	names := []string{
		"train_resnet_v1", "train_resnet_v2", "train_resnet_v3",
		"bert_finetune_a", "bert_finetune_b",
		"dbg",
	}
	n := len(names)
	s := make([][]float64, n)
	for i := range s {
		s[i] = make([]float64, n)
		for j := range s[i] {
			s[i][j] = textdist.Similarity(names[i], names[j])
		}
	}
	assign := Cluster(s, Params{})
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Fatalf("resnet names split: %v", assign)
	}
	if assign[3] != assign[4] {
		t.Fatalf("bert names split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Fatalf("resnet and bert merged: %v", assign)
	}
}

func TestPreferenceControlsGranularity(t *testing.T) {
	s := twoBlobSimilarity()
	// A very high preference makes every point its own exemplar.
	fine := Cluster(s, Params{Preference: 10, HasPref: true})
	if NumClusters(fine) != len(s) {
		t.Fatalf("high preference should give singleton clusters, got %d", NumClusters(fine))
	}
	// A very low preference collapses everything.
	coarse := Cluster(s, Params{Preference: -1e6, HasPref: true})
	if NumClusters(coarse) != 1 {
		t.Fatalf("low preference should give one cluster, got %d", NumClusters(coarse))
	}
}

func TestExemplarsAreSelfAssigned(t *testing.T) {
	assign := Cluster(twoBlobSimilarity(), Params{})
	for i, e := range assign {
		if assign[e] != e {
			t.Fatalf("point %d assigned to non-exemplar %d (%v)", i, e, assign)
		}
	}
}
