package textdist

import (
	"testing"
	"testing/quick"
)

func TestKnownDistances(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"", "abc", 3},
		{"abc", "", 3},
		{"train_v1", "train_v2", 1},
		{"resnet50_imagenet", "resnet18_imagenet", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestUnicode(t *testing.T) {
	if got := Levenshtein("héllo", "hello"); got != 1 {
		t.Fatalf("unicode distance = %d, want 1", got)
	}
}

func TestSymmetryProperty(t *testing.T) {
	check := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityProperty(t *testing.T) {
	check := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	check := func(a, b, c string) bool {
		if len(a) > 30 || len(b) > 30 || len(c) > 30 {
			return true
		}
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSimilarityBounds(t *testing.T) {
	if s := Similarity("abc", "abc"); s != 1 {
		t.Fatalf("identical similarity = %v", s)
	}
	if s := Similarity("", ""); s != 1 {
		t.Fatalf("empty similarity = %v", s)
	}
	if s := Similarity("abc", "xyz"); s != 0 {
		t.Fatalf("disjoint similarity = %v", s)
	}
	if s := Similarity("train_v1", "train_v2"); s < 0.8 {
		t.Fatalf("recurring names should be similar: %v", s)
	}
}
