// Package textdist implements the Levenshtein edit distance (Navarro 2001,
// the paper's citation [68]). Lucid's Workload Estimate Model uses it to
// convert "extremely sparse and high-dimensional features like job names" to
// dense numerical values before bucketizing them with affinity propagation
// (§3.5.3) — recurring jobs get near-identical names ("train_v1",
// "train_v2"), so edit distance clusters them.
package textdist

// Levenshtein returns the edit distance between a and b (insertions,
// deletions, substitutions all cost 1). Runs in O(len(a)·len(b)) time and
// O(min) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Similarity maps distance to [0, 1]: 1 for identical strings, approaching 0
// as the distance reaches the longer length.
func Similarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	longest := la
	if lb > longest {
		longest = lb
	}
	if longest == 0 {
		return 1
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
