// Package forest implements random forests (Breiman 2001, the paper's
// citation [13]) — one of the black-box baselines Lucid's interpretable
// models are compared against in Table 7. Bootstrap-sampled CART trees with
// per-split feature subsampling; regression averages the trees, and
// classification takes a majority vote.
package forest

import (
	"fmt"
	"math"

	"repro/internal/ml/dtree"
	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

// Params configures forest training.
type Params struct {
	NumTrees       int // default 100
	MaxDepth       int // per-tree depth cap (0 = unlimited)
	MinSamplesLeaf int
	MaxFeatures    int // per-split feature subsample; 0 → sqrt(d) for
	// classification, d/3 for regression
	Seed uint64
}

func (p Params) normalized(nf int, classification bool) Params {
	if p.NumTrees <= 0 {
		p.NumTrees = 100
	}
	if p.MaxFeatures <= 0 {
		if classification {
			p.MaxFeatures = int(math.Sqrt(float64(nf)))
		} else {
			p.MaxFeatures = nf / 3
		}
		if p.MaxFeatures < 1 {
			p.MaxFeatures = 1
		}
	}
	return p
}

// Forest is a trained random forest.
type Forest struct {
	trees      []*dtree.Tree
	numClasses int // 0 → regression
}

// FitRegressor trains a regression forest.
func FitRegressor(ds *mlmodel.Dataset, p Params) (*Forest, error) {
	return fit(ds, 0, p)
}

// FitClassifier trains a classification forest on labels in [0, numClasses).
func FitClassifier(ds *mlmodel.Dataset, numClasses int, p Params) (*Forest, error) {
	if numClasses < 2 {
		return nil, fmt.Errorf("forest: need ≥2 classes")
	}
	return fit(ds, numClasses, p)
}

func fit(ds *mlmodel.Dataset, numClasses int, p Params) (*Forest, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("forest: empty dataset")
	}
	p = p.normalized(ds.NumFeatures(), numClasses > 0)
	rng := xrand.New(p.Seed + 0x5eed)
	f := &Forest{numClasses: numClasses}
	n := ds.Len()
	for t := 0; t < p.NumTrees; t++ {
		treeRNG := rng.Fork()
		// Bootstrap sample with replacement.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = treeRNG.Intn(n)
		}
		boot := ds.Subset(idx)
		tp := dtree.Params{
			MaxDepth:       p.MaxDepth,
			MinSamplesLeaf: p.MinSamplesLeaf,
			MaxFeatures:    p.MaxFeatures,
			RNG:            treeRNG,
		}
		var tr *dtree.Tree
		var err error
		if numClasses > 0 {
			tr, err = dtree.FitClassifier(boot, numClasses, tp)
		} else {
			tr, err = dtree.FitRegressor(boot, tp)
		}
		if err != nil {
			return nil, err
		}
		f.trees = append(f.trees, tr)
	}
	return f, nil
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }

// Predict averages tree predictions (regression) or returns the majority
// class as a float (classification).
func (f *Forest) Predict(x []float64) float64 {
	if f.numClasses > 0 {
		return float64(f.PredictClass(x))
	}
	s := 0.0
	for _, t := range f.trees {
		s += t.Predict(x)
	}
	return s / float64(len(f.trees))
}

// PredictClass returns the majority vote across trees.
func (f *Forest) PredictClass(x []float64) int {
	votes := make([]float64, f.numClasses)
	for _, t := range f.trees {
		votes[t.PredictClass(x)]++
	}
	best, bi := -1.0, 0
	for i, v := range votes {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

var _ mlmodel.Regressor = (*Forest)(nil)
var _ mlmodel.Classifier = (*Forest)(nil)
