package forest

import (
	"math"
	"testing"

	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

func friedmanData(n int, seed uint64) *mlmodel.Dataset {
	// A classic nonlinear regression benchmark (subset of Friedman #1).
	rng := xrand.New(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b, c := rng.Float64(), rng.Float64(), rng.Float64()
		x[i] = []float64{a, b, c}
		y[i] = 10*math.Sin(math.Pi*a*b) + 20*(c-0.5)*(c-0.5) + rng.Norm(0, 0.3)
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	return ds
}

func TestRegressorBeatsMeanBaseline(t *testing.T) {
	train := friedmanData(600, 1)
	test := friedmanData(200, 2)
	f, err := FitRegressor(train, Params{NumTrees: 50, MaxDepth: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := mlmodel.PredictAll(f, test.X)
	if r2 := mlmodel.R2(pred, test.Y); r2 < 0.7 {
		t.Fatalf("forest R2 = %v, want ≥0.7", r2)
	}
}

func TestClassifierMajorityVote(t *testing.T) {
	rng := xrand.New(4)
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		label := 0.0
		if a+b > 1 {
			label = 1
		}
		y = append(y, label)
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	f, err := FitClassifier(ds, 2, Params{NumTrees: 30, MaxDepth: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range ds.X {
		if f.PredictClass(row) == int(ds.Y[i]) {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.95 {
		t.Fatalf("forest accuracy %v", acc)
	}
	// Predict() on a classifier returns the class as float.
	if p := f.Predict([]float64{0.9, 0.9}); p != 1 {
		t.Fatalf("Predict = %v, want 1", p)
	}
}

func TestForestValidation(t *testing.T) {
	if _, err := FitRegressor(&mlmodel.Dataset{}, Params{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	ds, _ := mlmodel.NewDataset([][]float64{{1}}, []float64{0}, nil)
	if _, err := FitClassifier(ds, 1, Params{}); err == nil {
		t.Fatal("single-class accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	ds := friedmanData(200, 6)
	a, _ := FitRegressor(ds, Params{NumTrees: 10, Seed: 7})
	b, _ := FitRegressor(ds, Params{NumTrees: 10, Seed: 7})
	for i := 0; i < 20; i++ {
		row := ds.X[i]
		if a.Predict(row) != b.Predict(row) {
			t.Fatal("same seed produced different forests")
		}
	}
}

func TestNumTreesDefault(t *testing.T) {
	ds := friedmanData(50, 8)
	f, _ := FitRegressor(ds, Params{NumTrees: 5})
	if f.NumTrees() != 5 {
		t.Fatalf("NumTrees = %d", f.NumTrees())
	}
}
