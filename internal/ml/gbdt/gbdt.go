// Package gbdt implements gradient-boosted regression trees — the stand-in
// for the LightGBM [50] and XGBoost [18] baselines of Table 7. Squared-loss
// boosting with shrinkage and optional row subsampling (stochastic gradient
// boosting), over shallow CART regression trees.
//
// Two preset constructors mirror the paper's two baselines: LightGBMStyle
// (more, shallower, subsampled trees) and XGBoostStyle (fewer, deeper,
// full-sample trees). They are the same algorithm with different defaults,
// which is also true of the originals at the granularity this repository
// needs.
package gbdt

import (
	"fmt"

	"repro/internal/ml/dtree"
	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

// Params configures boosting.
type Params struct {
	NumRounds    int     // boosting iterations (default 100)
	LearningRate float64 // shrinkage (default 0.1)
	MaxDepth     int     // per-tree depth (default 3)
	MinLeaf      int     // min samples per leaf (default 5)
	Subsample    float64 // row-sampling fraction per round (default 1.0)
	Seed         uint64
}

func (p Params) normalized() Params {
	if p.NumRounds <= 0 {
		p.NumRounds = 100
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.1
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 3
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 5
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		p.Subsample = 1
	}
	return p
}

// LightGBMStyle mimics LightGBM defaults: many shallow trees, leaf-biased,
// stochastic rows.
func LightGBMStyle() Params {
	return Params{NumRounds: 150, LearningRate: 0.1, MaxDepth: 4, MinLeaf: 20, Subsample: 0.8}
}

// XGBoostStyle mimics XGBoost defaults: fewer, deeper, deterministic trees.
func XGBoostStyle() Params {
	return Params{NumRounds: 100, LearningRate: 0.3, MaxDepth: 6, MinLeaf: 1, Subsample: 1}
}

// Model is a trained gradient-boosted ensemble.
type Model struct {
	base  float64
	trees []*dtree.Tree
	lr    float64
}

// Fit trains squared-loss gradient boosting: each round fits a regression
// tree to the current residuals and adds it with shrinkage.
func Fit(ds *mlmodel.Dataset, p Params) (*Model, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("gbdt: empty dataset")
	}
	p = p.normalized()
	rng := xrand.New(p.Seed + 0xb005)

	m := &Model{base: mlmodel.Mean(ds.Y), lr: p.LearningRate}
	pred := make([]float64, ds.Len())
	for i := range pred {
		pred[i] = m.base
	}
	resid := make([]float64, ds.Len())

	for round := 0; round < p.NumRounds; round++ {
		for i := range resid {
			resid[i] = ds.Y[i] - pred[i]
		}
		rds := &mlmodel.Dataset{X: ds.X, Y: resid, Names: ds.Names}
		if p.Subsample < 1 {
			k := int(float64(ds.Len()) * p.Subsample)
			if k < 1 {
				k = 1
			}
			idx := rng.Perm(ds.Len())[:k]
			rds = rds.Subset(idx)
		}
		tr, err := dtree.FitRegressor(rds, dtree.Params{MaxDepth: p.MaxDepth, MinSamplesLeaf: p.MinLeaf})
		if err != nil {
			return nil, err
		}
		m.trees = append(m.trees, tr)
		for i, row := range ds.X {
			pred[i] += p.LearningRate * tr.Predict(row)
		}
	}
	return m, nil
}

// Predict evaluates the ensemble on one row.
func (m *Model) Predict(x []float64) float64 {
	s := m.base
	for _, t := range m.trees {
		s += m.lr * t.Predict(x)
	}
	return s
}

// NumTrees returns the ensemble size.
func (m *Model) NumTrees() int { return len(m.trees) }

var _ mlmodel.Regressor = (*Model)(nil)
