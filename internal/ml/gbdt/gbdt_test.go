package gbdt

import (
	"math"
	"testing"

	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

func nonlinearData(n int, seed uint64) *mlmodel.Dataset {
	rng := xrand.New(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*4, rng.Float64()*4
		x[i] = []float64{a, b}
		y[i] = math.Sin(a)*3 + b*b*0.5 + rng.Norm(0, 0.1)
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	return ds
}

func TestBoostingFitsNonlinear(t *testing.T) {
	train := nonlinearData(800, 1)
	test := nonlinearData(200, 2)
	m, err := Fit(train, Params{NumRounds: 120, LearningRate: 0.1, MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	pred := mlmodel.PredictAll(m, test.X)
	if r2 := mlmodel.R2(pred, test.Y); r2 < 0.9 {
		t.Fatalf("gbdt R2 = %v, want ≥0.9", r2)
	}
}

func TestMoreRoundsReduceTrainError(t *testing.T) {
	ds := nonlinearData(400, 3)
	few, _ := Fit(ds, Params{NumRounds: 5})
	many, _ := Fit(ds, Params{NumRounds: 80})
	errFew := mlmodel.MSE(mlmodel.PredictAll(few, ds.X), ds.Y)
	errMany := mlmodel.MSE(mlmodel.PredictAll(many, ds.X), ds.Y)
	if errMany >= errFew {
		t.Fatalf("boosting did not improve: %v → %v", errFew, errMany)
	}
}

func TestPresets(t *testing.T) {
	ds := nonlinearData(300, 4)
	for _, p := range []Params{LightGBMStyle(), XGBoostStyle()} {
		m, err := Fit(ds, p)
		if err != nil {
			t.Fatal(err)
		}
		pred := mlmodel.PredictAll(m, ds.X)
		if r2 := mlmodel.R2(pred, ds.Y); r2 < 0.8 {
			t.Fatalf("preset %+v R2 = %v", p, r2)
		}
	}
}

func TestEmptyRejected(t *testing.T) {
	if _, err := Fit(&mlmodel.Dataset{}, Params{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestConstantTarget(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	m, err := Fit(ds, Params{NumRounds: 10})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2}); math.Abs(p-7) > 1e-9 {
		t.Fatalf("constant prediction = %v", p)
	}
}

func TestSubsampleStillLearns(t *testing.T) {
	ds := nonlinearData(500, 5)
	m, err := Fit(ds, Params{NumRounds: 100, Subsample: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pred := mlmodel.PredictAll(m, ds.X)
	if r2 := mlmodel.R2(pred, ds.Y); r2 < 0.85 {
		t.Fatalf("subsampled gbdt R2 = %v", r2)
	}
	if m.NumTrees() != 100 {
		t.Fatalf("NumTrees = %d", m.NumTrees())
	}
}
