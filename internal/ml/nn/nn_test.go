package nn

import (
	"math"
	"testing"

	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

func linearData(n int, seed uint64) *mlmodel.Dataset {
	rng := xrand.New(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x[i] = []float64{a, b}
		y[i] = 3*a - 2*b + 5 + rng.Norm(0, 0.05)
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	return ds
}

func TestFitsLinearFunction(t *testing.T) {
	train := linearData(500, 1)
	test := linearData(100, 2)
	m, err := Fit(train, Params{Epochs: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := mlmodel.PredictAll(m, test.X)
	if r2 := mlmodel.R2(pred, test.Y); r2 < 0.95 {
		t.Fatalf("MLP R2 on linear data = %v", r2)
	}
}

func TestFitsNonlinear(t *testing.T) {
	rng := xrand.New(4)
	n := 800
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		x[i] = []float64{a}
		y[i] = a * a
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	m, err := Fit(ds, Params{Epochs: 120, Hidden1: 32, Hidden2: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred := mlmodel.PredictAll(m, ds.X)
	if r2 := mlmodel.R2(pred, ds.Y); r2 < 0.9 {
		t.Fatalf("MLP R2 on x² = %v", r2)
	}
}

func TestEmptyRejected(t *testing.T) {
	if _, err := Fit(&mlmodel.Dataset{}, Params{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	ds := linearData(100, 6)
	a, _ := Fit(ds, Params{Epochs: 5, Seed: 7})
	b, _ := Fit(ds, Params{Epochs: 5, Seed: 7})
	for i := 0; i < 10; i++ {
		if a.Predict(ds.X[i]) != b.Predict(ds.X[i]) {
			t.Fatal("same seed produced different networks")
		}
	}
}

func TestConstantFeatureNoNaN(t *testing.T) {
	// Zero-variance features must not divide by zero during standardization.
	x := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{1, 2, 3, 4}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	m, err := Fit(ds, Params{Epochs: 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p := m.Predict([]float64{2.5, 5}); math.IsNaN(p) || math.IsInf(p, 0) {
		t.Fatalf("prediction = %v", p)
	}
}
