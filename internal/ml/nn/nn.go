// Package nn implements a small fully-connected neural network regressor —
// the "DNN" baseline of Table 7 in the Lucid paper. Two hidden ReLU layers
// trained with Adam on mini-batches of squared loss, with per-feature input
// standardization so raw trace features (seconds, GPU counts, hour-of-day)
// coexist.
package nn

import (
	"fmt"
	"math"

	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

// Params configures the MLP.
type Params struct {
	Hidden1   int     // first hidden width (default 64)
	Hidden2   int     // second hidden width (default 32)
	Epochs    int     // passes over the data (default 50)
	BatchSize int     // mini-batch size (default 32)
	LR        float64 // Adam learning rate (default 1e-3)
	Seed      uint64
}

func (p Params) normalized() Params {
	if p.Hidden1 <= 0 {
		p.Hidden1 = 64
	}
	if p.Hidden2 <= 0 {
		p.Hidden2 = 32
	}
	if p.Epochs <= 0 {
		p.Epochs = 50
	}
	if p.BatchSize <= 0 {
		p.BatchSize = 32
	}
	if p.LR <= 0 {
		p.LR = 1e-3
	}
	return p
}

// Model is a trained MLP regressor.
type Model struct {
	w1, w2, w3  []float64 // weight matrices, row-major
	b1, b2, b3  []float64
	d, h1, h2   int
	mean, std   []float64 // input standardization
	yMean, yStd float64   // target standardization
}

// adam holds optimizer state for one parameter vector.
type adam struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adam { return &adam{m: make([]float64, n), v: make([]float64, n)} }

func (a *adam) step(w, g []float64, lr float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	a.t++
	bc1 := 1 - math.Pow(beta1, float64(a.t))
	bc2 := 1 - math.Pow(beta2, float64(a.t))
	for i := range w {
		a.m[i] = beta1*a.m[i] + (1-beta1)*g[i]
		a.v[i] = beta2*a.v[i] + (1-beta2)*g[i]*g[i]
		w[i] -= lr * (a.m[i] / bc1) / (math.Sqrt(a.v[i]/bc2) + eps)
	}
}

// Fit trains the MLP.
func Fit(ds *mlmodel.Dataset, p Params) (*Model, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("nn: empty dataset")
	}
	p = p.normalized()
	rng := xrand.New(p.Seed + 0xd33d)
	d := ds.NumFeatures()
	m := &Model{d: d, h1: p.Hidden1, h2: p.Hidden2}
	m.standardize(ds)

	// He initialization.
	initLayer := func(fanIn, fanOut int) []float64 {
		w := make([]float64, fanIn*fanOut)
		s := math.Sqrt(2 / float64(fanIn))
		for i := range w {
			w[i] = rng.Norm(0, s)
		}
		return w
	}
	m.w1 = initLayer(d, m.h1)
	m.b1 = make([]float64, m.h1)
	m.w2 = initLayer(m.h1, m.h2)
	m.b2 = make([]float64, m.h2)
	m.w3 = initLayer(m.h2, 1)
	m.b3 = make([]float64, 1)

	optW1, optB1 := newAdam(len(m.w1)), newAdam(len(m.b1))
	optW2, optB2 := newAdam(len(m.w2)), newAdam(len(m.b2))
	optW3, optB3 := newAdam(len(m.w3)), newAdam(len(m.b3))

	gw1 := make([]float64, len(m.w1))
	gb1 := make([]float64, len(m.b1))
	gw2 := make([]float64, len(m.w2))
	gb2 := make([]float64, len(m.b2))
	gw3 := make([]float64, len(m.w3))
	gb3 := make([]float64, len(m.b3))

	x := make([]float64, d)
	z1 := make([]float64, m.h1)
	a1 := make([]float64, m.h1)
	z2 := make([]float64, m.h2)
	a2 := make([]float64, m.h2)
	d1 := make([]float64, m.h1)
	d2 := make([]float64, m.h2)

	n := ds.Len()
	for epoch := 0; epoch < p.Epochs; epoch++ {
		perm := rng.Perm(n)
		for start := 0; start < n; start += p.BatchSize {
			end := start + p.BatchSize
			if end > n {
				end = n
			}
			bs := float64(end - start)
			zero(gw1)
			zero(gb1)
			zero(gw2)
			zero(gb2)
			zero(gw3)
			zero(gb3)
			for _, pi := range perm[start:end] {
				m.normIn(ds.X[pi], x)
				yTrue := (ds.Y[pi] - m.yMean) / m.yStd

				// Forward.
				matVec(m.w1, x, m.b1, z1, m.h1, d)
				relu(z1, a1)
				matVec(m.w2, a1, m.b2, z2, m.h2, m.h1)
				relu(z2, a2)
				out := m.b3[0]
				for j := 0; j < m.h2; j++ {
					out += m.w3[j] * a2[j]
				}

				// Backward (squared loss).
				dOut := 2 * (out - yTrue) / bs
				gb3[0] += dOut
				for j := 0; j < m.h2; j++ {
					gw3[j] += dOut * a2[j]
					d2[j] = dOut * m.w3[j]
					if z2[j] <= 0 {
						d2[j] = 0
					}
				}
				for j := 0; j < m.h2; j++ {
					gb2[j] += d2[j]
					for k := 0; k < m.h1; k++ {
						gw2[j*m.h1+k] += d2[j] * a1[k]
					}
				}
				for k := 0; k < m.h1; k++ {
					s := 0.0
					for j := 0; j < m.h2; j++ {
						s += d2[j] * m.w2[j*m.h1+k]
					}
					if z1[k] <= 0 {
						s = 0
					}
					d1[k] = s
				}
				for k := 0; k < m.h1; k++ {
					gb1[k] += d1[k]
					for q := 0; q < d; q++ {
						gw1[k*d+q] += d1[k] * x[q]
					}
				}
			}
			optW1.step(m.w1, gw1, p.LR)
			optB1.step(m.b1, gb1, p.LR)
			optW2.step(m.w2, gw2, p.LR)
			optB2.step(m.b2, gb2, p.LR)
			optW3.step(m.w3, gw3, p.LR)
			optB3.step(m.b3, gb3, p.LR)
		}
	}
	return m, nil
}

func (m *Model) standardize(ds *mlmodel.Dataset) {
	d := m.d
	m.mean = make([]float64, d)
	m.std = make([]float64, d)
	n := float64(ds.Len())
	for _, row := range ds.X {
		for j, v := range row {
			m.mean[j] += v
		}
	}
	for j := range m.mean {
		m.mean[j] /= n
	}
	for _, row := range ds.X {
		for j, v := range row {
			dv := v - m.mean[j]
			m.std[j] += dv * dv
		}
	}
	for j := range m.std {
		m.std[j] = math.Sqrt(m.std[j] / n)
		if m.std[j] < 1e-9 {
			m.std[j] = 1
		}
	}
	m.yMean = mlmodel.Mean(ds.Y)
	m.yStd = math.Sqrt(mlmodel.Variance(ds.Y))
	if m.yStd < 1e-9 {
		m.yStd = 1
	}
}

func (m *Model) normIn(raw, out []float64) {
	for j := range out {
		out[j] = (raw[j] - m.mean[j]) / m.std[j]
	}
}

func matVec(w, x, b, out []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		s := b[r]
		base := r * cols
		for c := 0; c < cols; c++ {
			s += w[base+c] * x[c]
		}
		out[r] = s
	}
}

func relu(in, out []float64) {
	for i, v := range in {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

func zero(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}

// Predict evaluates the network on one raw feature row.
func (m *Model) Predict(raw []float64) float64 {
	x := make([]float64, m.d)
	m.normIn(raw, x)
	z1 := make([]float64, m.h1)
	matVec(m.w1, x, m.b1, z1, m.h1, m.d)
	relu(z1, z1)
	z2 := make([]float64, m.h2)
	matVec(m.w2, z1, m.b2, z2, m.h2, m.h1)
	relu(z2, z2)
	out := m.b3[0]
	for j := 0; j < m.h2; j++ {
		out += m.w3[j] * z2[j]
	}
	return out*m.yStd + m.yMean
}

var _ mlmodel.Regressor = (*Model)(nil)
