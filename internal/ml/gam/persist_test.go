package gam

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	n := 600
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*4, rng.Float64()*4
		x[i] = []float64{a, b}
		y[i] = 2*a - b + a*b
	}
	ds, _ := mlmodel.NewDataset(x, y, []string{"a", "b"})
	m, err := Fit(ds, Params{Rounds: 100, Interactions: 1})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if got, want := loaded.Predict(ds.X[i]), m.Predict(ds.X[i]); got != want {
			t.Fatalf("prediction drift after round trip: %v vs %v", got, want)
		}
	}
	if loaded.NumPairs() != m.NumPairs() {
		t.Fatal("pair terms lost")
	}
	if loaded.FeatureName(0) != "a" {
		t.Fatal("feature names lost")
	}
	// Explanations still work.
	i1, c1 := m.Explain(ds.X[0])
	i2, c2 := loaded.Explain(ds.X[0])
	if i1 != i2 || len(c1) != len(c2) {
		t.Fatal("explanations differ after round trip")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Inconsistent bin counts.
	bad := `{"intercept":1,"features":[{"name":"x","edges":[1,2],"score":[0.1],"count":[5]}]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("inconsistent feature accepted")
	}
	// Pair referencing unknown feature.
	bad2 := `{"intercept":1,"features":[{"name":"x","edges":[],"score":[0],"count":[1]}],` +
		`"pairs":[{"i":0,"j":5,"score":[[0]]}]}`
	if _, err := Load(strings.NewReader(bad2)); err == nil {
		t.Fatal("dangling pair accepted")
	}
}
