package gam

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON persistence: a trained GA²M is just its intercept plus lookup tables,
// so it serializes losslessly — the deployment story behind Lucid's A2
// property (ship a trained model to the cluster manager; no retraining, no
// framework dependency).

// featureDTO mirrors feature for encoding.
type featureDTO struct {
	Name  string    `json:"name"`
	Edges []float64 `json:"edges"`
	Score []float64 `json:"score"`
	Count []int     `json:"count"`
}

// modelDTO is the on-disk layout.
type modelDTO struct {
	Intercept float64      `json:"intercept"`
	Features  []featureDTO `json:"features"`
	Pairs     []struct {
		I     int         `json:"i"`
		J     int         `json:"j"`
		Score [][]float64 `json:"score"`
	} `json:"pairs,omitempty"`
}

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	dto := modelDTO{Intercept: m.intercept}
	for _, f := range m.feats {
		dto.Features = append(dto.Features, featureDTO{
			Name: f.name, Edges: f.edges, Score: f.score, Count: f.count,
		})
	}
	for _, p := range m.pairs {
		dto.Pairs = append(dto.Pairs, struct {
			I     int         `json:"i"`
			J     int         `json:"j"`
			Score [][]float64 `json:"score"`
		}{p.i, p.j, p.score})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(dto)
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var dto modelDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("gam: load: %w", err)
	}
	m := &Model{intercept: dto.Intercept}
	for i, fd := range dto.Features {
		if len(fd.Score) != len(fd.Edges)+1 || len(fd.Count) != len(fd.Score) {
			return nil, fmt.Errorf("gam: load: feature %d has inconsistent bin counts", i)
		}
		m.feats = append(m.feats, &feature{
			name: fd.Name, edges: fd.Edges, score: fd.Score, count: fd.Count,
		})
	}
	for k, pd := range dto.Pairs {
		if pd.I < 0 || pd.I >= len(m.feats) || pd.J < 0 || pd.J >= len(m.feats) {
			return nil, fmt.Errorf("gam: load: pair %d references unknown feature", k)
		}
		if len(pd.Score) != m.feats[pd.I].numBins() {
			return nil, fmt.Errorf("gam: load: pair %d table shape mismatch", k)
		}
		for _, row := range pd.Score {
			if len(row) != m.feats[pd.J].numBins() {
				return nil, fmt.Errorf("gam: load: pair %d table shape mismatch", k)
			}
		}
		m.pairs = append(m.pairs, &pairTerm{i: pd.I, j: pd.J, score: pd.Score})
	}
	return m, nil
}
