package gam

import (
	"math"
	"testing"

	"repro/internal/ml/isotonic"
	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

func additiveData(n int, seed uint64) *mlmodel.Dataset {
	// y = 2·sin(x0) + x1² − 3·x2 + noise: purely additive, a GAM's home turf.
	rng := xrand.New(seed)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 6
		b := rng.Float64()*4 - 2
		c := rng.Float64()
		x[i] = []float64{a, b, c}
		y[i] = 2*math.Sin(a) + b*b - 3*c + rng.Norm(0, 0.1)
	}
	ds, _ := mlmodel.NewDataset(x, y, []string{"angle", "quad", "lin"})
	return ds
}

func TestFitsAdditiveFunction(t *testing.T) {
	train := additiveData(1500, 1)
	test := additiveData(400, 2)
	m, err := Fit(train, Params{Rounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	pred := mlmodel.PredictAll(m, test.X)
	if r2 := mlmodel.R2(pred, test.Y); r2 < 0.95 {
		t.Fatalf("GA2M R2 on additive data = %v", r2)
	}
}

func TestInteractionDetection(t *testing.T) {
	// y = x0·x1 is invisible to pure main effects; the pair term must pick
	// the (0,1) interaction over the decoy feature 2.
	rng := xrand.New(3)
	n := 2000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		c := rng.Float64()
		x[i] = []float64{a, b, c}
		y[i] = a * b
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)

	noPair, _ := Fit(ds, Params{Rounds: 150})
	withPair, err := Fit(ds, Params{Rounds: 150, Interactions: 1, PairRounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	if withPair.NumPairs() != 1 {
		t.Fatalf("learned %d pairs, want 1", withPair.NumPairs())
	}
	if pf := withPair.PairFeatures()[0]; pf != [2]int{0, 1} {
		t.Fatalf("picked pair %v, want {0,1}", pf)
	}
	r2No := mlmodel.R2(mlmodel.PredictAll(noPair, ds.X), ds.Y)
	r2Yes := mlmodel.R2(mlmodel.PredictAll(withPair, ds.X), ds.Y)
	if r2Yes < r2No+0.3 {
		t.Fatalf("pair term did not help: %v → %v", r2No, r2Yes)
	}
}

func TestExplainSumsToPrediction(t *testing.T) {
	ds := additiveData(500, 4)
	m, _ := Fit(ds, Params{Rounds: 100, Interactions: 1})
	for i := 0; i < 20; i++ {
		x := ds.X[i]
		intercept, contribs := m.Explain(x)
		sum := intercept
		for _, c := range contribs {
			sum += c.Score
		}
		if math.Abs(sum-m.Predict(x)) > 1e-9 {
			t.Fatalf("explanation sums to %v, prediction is %v", sum, m.Predict(x))
		}
	}
}

func TestGlobalImportanceIdentifiesSignal(t *testing.T) {
	// Feature 0 carries all the signal; 1 is noise.
	rng := xrand.New(5)
	n := 1000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		x[i] = []float64{a, b}
		y[i] = 4 * a
	}
	ds, _ := mlmodel.NewDataset(x, y, []string{"signal", "noise"})
	m, _ := Fit(ds, Params{Rounds: 150})
	imp := m.GlobalImportance()
	if imp[0] < 10*imp[1] {
		t.Fatalf("importance signal=%v noise=%v", imp[0], imp[1])
	}
	if m.FeatureName(0) != "signal" {
		t.Fatal("feature name lost")
	}
}

func TestShapeFunctionRecoversLinearSlope(t *testing.T) {
	rng := xrand.New(6)
	n := 2000
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 10
		x[i] = []float64{a}
		y[i] = 2 * a
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	m, _ := Fit(ds, Params{Rounds: 300})
	shape := m.ShapeFunction(0)
	if len(shape) < 8 {
		t.Fatalf("too few bins: %d", len(shape))
	}
	// Scores must increase across bins (up to small noise at the ends).
	first, last := shape[0].Score, shape[len(shape)-1].Score
	if last-first < 10 {
		t.Fatalf("shape range %v..%v too flat for slope-2 over [0,10]", first, last)
	}
	// Intercept + mid-bin score ≈ y at the middle.
	if math.Abs(m.Predict([]float64{5})-10) > 1.0 {
		t.Fatalf("predict(5) = %v, want ≈10", m.Predict([]float64{5}))
	}
}

func TestMonotonicConstraint(t *testing.T) {
	// Noisy increasing relationship; PAV must make the shape monotone
	// without wrecking accuracy (§3.6.1).
	rng := xrand.New(7)
	n := 800
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a := rng.Float64() * 10
		x[i] = []float64{a}
		y[i] = a + rng.Norm(0, 2)
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	m, _ := Fit(ds, Params{Rounds: 200})
	m.ApplyMonotonic(0, true)
	shape := m.ShapeFunction(0)
	scores := make([]float64, len(shape))
	for i, s := range shape {
		scores[i] = s.Score
	}
	if !isotonic.IsMonotoneNonDecreasing(scores) {
		t.Fatalf("shape not monotone after constraint: %v", scores)
	}
	pred := mlmodel.PredictAll(m, ds.X)
	if r2 := mlmodel.R2(pred, ds.Y); r2 < 0.5 {
		t.Fatalf("monotonic constraint destroyed fit: R2=%v", r2)
	}
}

func TestLowCardinalityFeatureBins(t *testing.T) {
	// A binary feature gets exactly 2 bins.
	x := [][]float64{{0}, {1}, {0}, {1}}
	y := []float64{1, 5, 1, 5}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	m, _ := Fit(ds, Params{Rounds: 200})
	if got := len(m.ShapeFunction(0)); got != 2 {
		t.Fatalf("binary feature has %d bins, want 2", got)
	}
	if math.Abs(m.Predict([]float64{0})-1) > 0.3 || math.Abs(m.Predict([]float64{1})-5) > 0.3 {
		t.Fatalf("binary fit wrong: %v %v", m.Predict([]float64{0}), m.Predict([]float64{1}))
	}
}

func TestConstantFeatureHandled(t *testing.T) {
	x := [][]float64{{3, 1}, {3, 2}, {3, 3}}
	y := []float64{1, 2, 3}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	m, err := Fit(ds, Params{Rounds: 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.ShapeFunction(0)); got != 1 {
		t.Fatalf("constant feature has %d bins, want 1", got)
	}
	if p := m.Predict([]float64{3, 2}); math.Abs(p-2) > 0.3 {
		t.Fatalf("prediction %v", p)
	}
}

func TestEmptyRejected(t *testing.T) {
	if _, err := Fit(&mlmodel.Dataset{}, Params{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestCenteredShapes(t *testing.T) {
	// After centering, the count-weighted mean score of every unary term is
	// ~0, so the intercept equals the target mean on balanced data.
	ds := additiveData(800, 8)
	m, _ := Fit(ds, Params{Rounds: 150})
	for j := 0; j < m.NumFeatures(); j++ {
		shape := m.ShapeFunction(j)
		var wsum, n float64
		for _, s := range shape {
			wsum += s.Score * float64(s.Count)
			n += float64(s.Count)
		}
		if math.Abs(wsum/n) > 1e-6 {
			t.Fatalf("term %d not centered: weighted mean %v", j, wsum/n)
		}
	}
}
