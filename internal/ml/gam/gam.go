// Package gam implements GA²M — a Generalized Additive Model with pairwise
// interactions (Lou et al. 2013 [59]; Nori et al. 2021 [69]) — the
// interpretable model family behind Lucid's Throughput Predict Model and
// Workload Estimate Model (§3.5.2–3.5.3):
//
//	y = μ + Σ f_i(x_i) + Σ f_ij(x_i, x_j)
//
// Each unary shape function f_i is a per-bin additive score table learned by
// cyclic gradient boosting (the Explainable Boosting Machine recipe: tiny
// per-feature updates, round-robin over features, so correlated features
// share credit). Pairwise terms are detected FAST-style — score every
// candidate pair by the residual variance a one-shot 2-D fit removes, keep
// the top K — then boosted the same way.
//
// Because every term is a lookup table over one or two features, the model
// is exactly as interpretable as the paper requires: global importance is
// the mean absolute score of a term (Figure 7a), a shape function is the
// table itself (Figure 7b), and a local explanation is the list of per-term
// contributions that sum to the prediction (Figure 7c).
package gam

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml/isotonic"
	"repro/internal/ml/mlmodel"
)

// Params configures training.
type Params struct {
	MaxBins      int     // per-feature bins (default 32)
	Rounds       int     // boosting rounds over all features (default 300)
	LearningRate float64 // per-update shrinkage (default 0.05)
	Interactions int     // number of pairwise terms to learn (default 0)
	PairRounds   int     // boosting rounds for pairwise terms (default Rounds/2)
}

func (p Params) normalized() Params {
	if p.MaxBins <= 1 {
		p.MaxBins = 32
	}
	if p.Rounds <= 0 {
		p.Rounds = 300
	}
	if p.LearningRate <= 0 {
		p.LearningRate = 0.05
	}
	if p.PairRounds <= 0 {
		p.PairRounds = p.Rounds / 2
	}
	return p
}

// feature holds the learned state for one input dimension.
type feature struct {
	name  string
	edges []float64 // ascending bin upper edges; len(edges)+1 bins
	score []float64 // additive score per bin
	count []int     // training rows per bin (for importance & PAV weights)
}

// bin maps a raw value to its bin index.
func (f *feature) bin(v float64) int {
	// First bin whose edge >= v; values beyond the last edge use the last
	// bin.
	lo, hi := 0, len(f.edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= f.edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func (f *feature) numBins() int { return len(f.edges) + 1 }

// pairTerm is one learned interaction f_ij.
type pairTerm struct {
	i, j  int
	score [][]float64 // [bin_i][bin_j]
}

// Model is a trained GA²M.
type Model struct {
	intercept float64
	feats     []*feature
	pairs     []*pairTerm
}

// Fit trains a GA²M on the dataset.
func Fit(ds *mlmodel.Dataset, p Params) (*Model, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("gam: empty dataset")
	}
	p = p.normalized()
	n := ds.Len()
	d := ds.NumFeatures()

	m := &Model{intercept: mlmodel.Mean(ds.Y)}
	m.feats = make([]*feature, d)

	// Precompute bin assignment per row per feature.
	binIdx := make([][]int, d)
	for j := 0; j < d; j++ {
		f := &feature{name: ds.FeatureName(j)}
		f.edges = quantileEdges(column(ds.X, j), p.MaxBins)
		f.score = make([]float64, f.numBins())
		f.count = make([]int, f.numBins())
		idx := make([]int, n)
		for i := 0; i < n; i++ {
			b := f.bin(ds.X[i][j])
			idx[i] = b
			f.count[b]++
		}
		binIdx[j] = idx
		m.feats[j] = f
	}

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = m.intercept
	}

	// Cyclic boosting over unary terms.
	binSum := make([]float64, 0, p.MaxBins+1)
	for round := 0; round < p.Rounds; round++ {
		for j := 0; j < d; j++ {
			f := m.feats[j]
			nb := f.numBins()
			binSum = binSum[:0]
			for b := 0; b < nb; b++ {
				binSum = append(binSum, 0)
			}
			for i := 0; i < n; i++ {
				binSum[binIdx[j][i]] += ds.Y[i] - pred[i]
			}
			for b := 0; b < nb; b++ {
				if f.count[b] == 0 {
					continue
				}
				f.score[b] += p.LearningRate * binSum[b] / float64(f.count[b])
			}
			// Apply the same deltas to the cached predictions.
			for i := 0; i < n; i++ {
				b := binIdx[j][i]
				if f.count[b] != 0 {
					pred[i] += p.LearningRate * binSum[b] / float64(f.count[b])
				}
			}
		}
	}

	// Pairwise interactions.
	if p.Interactions > 0 && d >= 2 {
		pairs := detectPairs(ds, m, binIdx, pred, p.Interactions)
		for _, pr := range pairs {
			pt := &pairTerm{i: pr[0], j: pr[1]}
			ni := m.feats[pr[0]].numBins()
			nj := m.feats[pr[1]].numBins()
			pt.score = make([][]float64, ni)
			for a := range pt.score {
				pt.score[a] = make([]float64, nj)
			}
			m.pairs = append(m.pairs, pt)
		}
		cnt := make([][]int, len(m.pairs))
		for k, pt := range m.pairs {
			c := make([]int, m.feats[pt.i].numBins()*m.feats[pt.j].numBins())
			for i := 0; i < n; i++ {
				c[binIdx[pt.i][i]*m.feats[pt.j].numBins()+binIdx[pt.j][i]]++
			}
			cnt[k] = c
		}
		for round := 0; round < p.PairRounds; round++ {
			for k, pt := range m.pairs {
				nj := m.feats[pt.j].numBins()
				sums := make([]float64, m.feats[pt.i].numBins()*nj)
				for i := 0; i < n; i++ {
					cell := binIdx[pt.i][i]*nj + binIdx[pt.j][i]
					sums[cell] += ds.Y[i] - pred[i]
				}
				for cell, s := range sums {
					if cnt[k][cell] == 0 {
						continue
					}
					delta := p.LearningRate * s / float64(cnt[k][cell])
					pt.score[cell/nj][cell%nj] += delta
				}
				for i := 0; i < n; i++ {
					cell := binIdx[pt.i][i]*nj + binIdx[pt.j][i]
					if cnt[k][cell] != 0 {
						pred[i] += p.LearningRate * sums[cell] / float64(cnt[k][cell])
					}
				}
			}
		}
	}

	m.center()
	return m, nil
}

// detectPairs scores all feature pairs by the one-shot 2-D residual fit
// (FAST heuristic) and returns the top-k index pairs.
func detectPairs(ds *mlmodel.Dataset, m *Model, binIdx [][]int, pred []float64, k int) [][2]int {
	d := len(m.feats)
	n := ds.Len()
	type cand struct {
		i, j int
		gain float64
	}
	var cands []cand
	resid := make([]float64, n)
	for i := 0; i < n; i++ {
		resid[i] = ds.Y[i] - pred[i]
	}
	base := 0.0
	for _, r := range resid {
		base += r * r
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			nj := m.feats[j].numBins()
			cells := m.feats[i].numBins() * nj
			sum := make([]float64, cells)
			cnt := make([]int, cells)
			for r := 0; r < n; r++ {
				cell := binIdx[i][r]*nj + binIdx[j][r]
				sum[cell] += resid[r]
				cnt[cell]++
			}
			// Variance removed by predicting each cell's mean.
			removed := 0.0
			for c := range sum {
				if cnt[c] > 0 {
					removed += sum[c] * sum[c] / float64(cnt[c])
				}
			}
			cands = append(cands, cand{i, j, removed})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].gain > cands[b].gain })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([][2]int, 0, k)
	for _, c := range cands[:k] {
		out = append(out, [2]int{c.i, c.j})
	}
	return out
}

// center shifts every term to zero weighted mean and folds the offsets into
// the intercept, the canonical EBM normalization that makes term scores
// comparable.
func (m *Model) center() {
	for _, f := range m.feats {
		total := 0
		wsum := 0.0
		for b, c := range f.count {
			total += c
			wsum += f.score[b] * float64(c)
		}
		if total == 0 {
			continue
		}
		off := wsum / float64(total)
		for b := range f.score {
			f.score[b] -= off
		}
		m.intercept += off
	}
}

// Predict evaluates the model on one row.
func (m *Model) Predict(x []float64) float64 {
	s := m.intercept
	for j, f := range m.feats {
		s += f.score[f.bin(x[j])]
	}
	for _, pt := range m.pairs {
		bi := m.feats[pt.i].bin(x[pt.i])
		bj := m.feats[pt.j].bin(x[pt.j])
		s += pt.score[bi][bj]
	}
	return s
}

// Intercept returns μ.
func (m *Model) Intercept() float64 { return m.intercept }

// NumPairs returns the number of learned interaction terms.
func (m *Model) NumPairs() int { return len(m.pairs) }

// PairFeatures returns the feature-index pairs of the learned interactions.
func (m *Model) PairFeatures() [][2]int {
	out := make([][2]int, len(m.pairs))
	for k, pt := range m.pairs {
		out[k] = [2]int{pt.i, pt.j}
	}
	return out
}

// GlobalImportance returns the mean absolute score of each unary term over
// the training distribution — the Figure 7a "Average Absolute Score" bars.
func (m *Model) GlobalImportance() []float64 {
	out := make([]float64, len(m.feats))
	for j, f := range m.feats {
		total := 0
		s := 0.0
		for b, c := range f.count {
			total += c
			s += math.Abs(f.score[b]) * float64(c)
		}
		if total > 0 {
			out[j] = s / float64(total)
		}
	}
	return out
}

// FeatureName returns the name of unary term j.
func (m *Model) FeatureName(j int) string { return m.feats[j].name }

// NumFeatures returns the input dimensionality.
func (m *Model) NumFeatures() int { return len(m.feats) }

// ShapePoint is one bin of a shape function: the upper edge of the bin (or
// +Inf for the last) and its additive score.
type ShapePoint struct {
	UpperEdge float64
	Score     float64
	Count     int
}

// ShapeFunction returns the learned shape of unary term j — the Figure 7b
// plot.
func (m *Model) ShapeFunction(j int) []ShapePoint {
	f := m.feats[j]
	out := make([]ShapePoint, f.numBins())
	for b := range out {
		edge := math.Inf(1)
		if b < len(f.edges) {
			edge = f.edges[b]
		}
		out[b] = ShapePoint{UpperEdge: edge, Score: f.score[b], Count: f.count[b]}
	}
	return out
}

// Contribution is one term's share of a single prediction.
type Contribution struct {
	Name  string
	Value float64 // raw feature value (NaN for pair terms)
	Score float64
}

// Explain decomposes one prediction into intercept + per-term contributions
// — the Figure 7c local interpretation. The scores plus the intercept sum
// exactly to Predict(x).
func (m *Model) Explain(x []float64) (intercept float64, contribs []Contribution) {
	intercept = m.intercept
	for j, f := range m.feats {
		contribs = append(contribs, Contribution{
			Name:  f.name,
			Value: x[j],
			Score: f.score[f.bin(x[j])],
		})
	}
	for _, pt := range m.pairs {
		bi := m.feats[pt.i].bin(x[pt.i])
		bj := m.feats[pt.j].bin(x[pt.j])
		contribs = append(contribs, Contribution{
			Name:  m.feats[pt.i].name + " x " + m.feats[pt.j].name,
			Value: math.NaN(),
			Score: pt.score[bi][bj],
		})
	}
	return intercept, contribs
}

// ApplyMonotonic replaces unary term j's shape with its isotonic (PAV)
// projection, weighted by bin populations — §3.6.1's monotonic constraint.
// increasing=false forces a non-increasing shape.
func (m *Model) ApplyMonotonic(j int, increasing bool) {
	f := m.feats[j]
	w := make([]float64, f.numBins())
	for b, c := range f.count {
		w[b] = float64(c)
		if c == 0 {
			w[b] = 1e-9 // keep empty bins from pinning the fit
		}
	}
	if increasing {
		f.score = isotonic.Regression(f.score, w)
	} else {
		f.score = isotonic.Decreasing(f.score, w)
	}
}

// quantileEdges computes ≤ maxBins-1 ascending cut points from the value
// distribution; duplicate quantiles collapse, so low-cardinality features
// get one bin per distinct value.
func quantileEdges(vals []float64, maxBins int) []float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	uniq := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) <= 1 {
		return nil // single bin
	}
	if len(uniq) <= maxBins {
		// One bin per distinct value: edges halfway between neighbours.
		edges := make([]float64, len(uniq)-1)
		for i := 0; i+1 < len(uniq); i++ {
			edges[i] = (uniq[i] + uniq[i+1]) / 2
		}
		return edges
	}
	edges := make([]float64, 0, maxBins-1)
	for b := 1; b < maxBins; b++ {
		q := float64(b) / float64(maxBins)
		v := sorted[int(q*float64(len(sorted)-1))]
		if len(edges) == 0 || v > edges[len(edges)-1] {
			edges = append(edges, v)
		}
	}
	return edges
}

func column(x [][]float64, j int) []float64 {
	out := make([]float64, len(x))
	for i, row := range x {
		out[i] = row[j]
	}
	return out
}

var _ mlmodel.Regressor = (*Model)(nil)
