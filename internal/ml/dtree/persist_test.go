package dtree

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ml/mlmodel"
)

func TestTreeSaveLoadRoundTrip(t *testing.T) {
	ds := xorDataset()
	tr, err := FitClassifier(ds, 2, Params{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range ds.X {
		if loaded.PredictClass(row) != tr.PredictClass(row) {
			t.Fatalf("row %d prediction drift", i)
		}
	}
	if loaded.NumLeaves() != tr.NumLeaves() || loaded.Depth() != tr.Depth() {
		t.Fatal("structure changed")
	}
	// Importances and rendering survive (they use stored statistics).
	a, b := tr.FeatureImportances(), loaded.FeatureImportances()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("importances drifted")
		}
	}
	if tr.Render(nil) != loaded.Render(nil) {
		t.Fatal("rendering drifted")
	}
}

func TestTreeLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(strings.NewReader("{}")); err == nil {
		t.Fatal("missing root accepted")
	}
	// Internal node without children.
	bad := `{"num_classes":2,"total_rows":1,"root":{"feature":0,"threshold":1,"n":1,"impurity":0,"value":0}}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Fatal("truncated tree accepted")
	}
}

func TestRegressionTreeRoundTrip(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x = append(x, []float64{float64(i)})
		y = append(y, float64(i%7))
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	tr, err := FitRegressor(ds, Params{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range x {
		if loaded.Predict(row) != tr.Predict(row) {
			t.Fatal("regression prediction drift")
		}
	}
}
