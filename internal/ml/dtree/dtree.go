// Package dtree implements CART decision trees — the model behind Lucid's
// Packing Analyze Model (§3.5.1, Figure 6). Classification trees split on
// Gini impurity, regression trees on variance. Minimal cost-complexity
// pruning (Breiman et al. 1984, the paper's citation [14]) compacts the
// learned tree, Gini feature importances reproduce the right panel of
// Figure 6, and Render prints the tree itself — the interpretability story.
package dtree

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

// Params controls tree growth.
type Params struct {
	MaxDepth       int // 0 means unlimited
	MinSamplesLeaf int // minimum rows per leaf (≥1)
	MinSamplesplit int // minimum rows to attempt a split (≥2)

	// MaxFeatures, when >0, samples that many candidate features per split
	// (random-forest style). Requires RNG.
	MaxFeatures int
	RNG         *xrand.RNG
}

func (p Params) normalized() Params {
	if p.MinSamplesLeaf < 1 {
		p.MinSamplesLeaf = 1
	}
	if p.MinSamplesplit < 2 {
		p.MinSamplesplit = 2
	}
	return p
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      *node
	right     *node

	// Leaf payload / node statistics.
	nSamples int
	impurity float64   // Gini (classification) or variance (regression)
	value    float64   // regression mean
	counts   []float64 // classification class histogram (nil for regression)
	class    int       // majority class
}

func (n *node) isLeaf() bool { return n.feature < 0 }

// Tree is a trained CART tree usable as a classifier or regressor depending
// on how it was fit.
type Tree struct {
	root       *node
	numClasses int // 0 for regression
	names      []string
	totalRows  int
}

// FitClassifier grows a classification tree on integer labels in
// [0, numClasses).
func FitClassifier(ds *mlmodel.Dataset, numClasses int, p Params) (*Tree, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("dtree: empty dataset")
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("dtree: need ≥2 classes, got %d", numClasses)
	}
	for i, y := range ds.Y {
		c := int(y)
		if float64(c) != y || c < 0 || c >= numClasses {
			return nil, fmt.Errorf("dtree: row %d label %v not an int in [0,%d)", i, y, numClasses)
		}
	}
	b := &builder{ds: ds, p: p.normalized(), numClasses: numClasses}
	t := &Tree{root: b.build(allIdx(ds.Len()), 0), numClasses: numClasses, names: ds.Names, totalRows: ds.Len()}
	return t, nil
}

// FitRegressor grows a regression tree.
func FitRegressor(ds *mlmodel.Dataset, p Params) (*Tree, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("dtree: empty dataset")
	}
	b := &builder{ds: ds, p: p.normalized()}
	t := &Tree{root: b.build(allIdx(ds.Len()), 0), names: ds.Names, totalRows: ds.Len()}
	return t, nil
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

type builder struct {
	ds         *mlmodel.Dataset
	p          Params
	numClasses int // 0 → regression
}

func (b *builder) leaf(idx []int) *node {
	n := &node{feature: -1, nSamples: len(idx)}
	if b.numClasses > 0 {
		n.counts = make([]float64, b.numClasses)
		for _, i := range idx {
			n.counts[int(b.ds.Y[i])]++
		}
		n.impurity = gini(n.counts, float64(len(idx)))
		n.class = argmax(n.counts)
		n.value = float64(n.class)
	} else {
		sum := 0.0
		for _, i := range idx {
			sum += b.ds.Y[i]
		}
		mean := sum / float64(len(idx))
		v := 0.0
		for _, i := range idx {
			d := b.ds.Y[i] - mean
			v += d * d
		}
		n.value = mean
		n.impurity = v / float64(len(idx))
	}
	return n
}

func (b *builder) build(idx []int, depth int) *node {
	n := b.leaf(idx)
	if len(idx) < b.p.MinSamplesplit || n.impurity == 0 {
		return n
	}
	if b.p.MaxDepth > 0 && depth >= b.p.MaxDepth {
		return n
	}
	feat, thr, gain := b.bestSplit(idx, n.impurity)
	if feat < 0 || gain <= 1e-12 {
		return n
	}
	var li, ri []int
	for _, i := range idx {
		if b.ds.X[i][feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < b.p.MinSamplesLeaf || len(ri) < b.p.MinSamplesLeaf {
		return n
	}
	n.feature = feat
	n.threshold = thr
	n.left = b.build(li, depth+1)
	n.right = b.build(ri, depth+1)
	return n
}

// bestSplit scans candidate features for the impurity-minimizing threshold.
func (b *builder) bestSplit(idx []int, parentImp float64) (feat int, thr, gain float64) {
	nf := b.ds.NumFeatures()
	feats := make([]int, nf)
	for i := range feats {
		feats[i] = i
	}
	if b.p.MaxFeatures > 0 && b.p.MaxFeatures < nf && b.p.RNG != nil {
		b.p.RNG.Shuffle(nf, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:b.p.MaxFeatures]
	}

	feat = -1
	order := make([]int, len(idx))
	for _, f := range feats {
		copy(order, idx)
		sort.Slice(order, func(i, j int) bool { return b.ds.X[order[i]][f] < b.ds.X[order[j]][f] })
		g, t, ok := b.scanFeature(order, f, parentImp)
		if ok && g > gain {
			gain, thr, feat = g, t, f
		}
	}
	return feat, thr, gain
}

func (b *builder) scanFeature(order []int, f int, parentImp float64) (bestGain, bestThr float64, ok bool) {
	n := len(order)
	if b.numClasses > 0 {
		left := make([]float64, b.numClasses)
		right := make([]float64, b.numClasses)
		for _, i := range order {
			right[int(b.ds.Y[i])]++
		}
		for i := 0; i < n-1; i++ {
			c := int(b.ds.Y[order[i]])
			left[c]++
			right[c]--
			if b.ds.X[order[i]][f] == b.ds.X[order[i+1]][f] {
				continue // cannot split between equal values
			}
			nl, nr := float64(i+1), float64(n-i-1)
			if int(nl) < b.p.MinSamplesLeaf || int(nr) < b.p.MinSamplesLeaf {
				continue
			}
			imp := (nl*gini(left, nl) + nr*gini(right, nr)) / float64(n)
			if g := parentImp - imp; g > bestGain {
				bestGain = g
				bestThr = (b.ds.X[order[i]][f] + b.ds.X[order[i+1]][f]) / 2
				ok = true
			}
		}
		return bestGain, bestThr, ok
	}

	// Regression: running sums for O(1) variance updates.
	var sumL, sumSqL, sumR, sumSqR float64
	for _, i := range order {
		y := b.ds.Y[i]
		sumR += y
		sumSqR += y * y
	}
	for i := 0; i < n-1; i++ {
		y := b.ds.Y[order[i]]
		sumL += y
		sumSqL += y * y
		sumR -= y
		sumSqR -= y * y
		if b.ds.X[order[i]][f] == b.ds.X[order[i+1]][f] {
			continue
		}
		nl, nr := float64(i+1), float64(n-i-1)
		if int(nl) < b.p.MinSamplesLeaf || int(nr) < b.p.MinSamplesLeaf {
			continue
		}
		varL := sumSqL/nl - (sumL/nl)*(sumL/nl)
		varR := sumSqR/nr - (sumR/nr)*(sumR/nr)
		imp := (nl*varL + nr*varR) / float64(n)
		if g := parentImp - imp; g > bestGain {
			bestGain = g
			bestThr = (b.ds.X[order[i]][f] + b.ds.X[order[i+1]][f]) / 2
			ok = true
		}
	}
	return bestGain, bestThr, ok
}

func gini(counts []float64, total float64) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / total
		g -= p * p
	}
	return g
}

func argmax(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range xs {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// Predict returns the regression prediction (or the majority class as a
// float for classification trees).
func (t *Tree) Predict(x []float64) float64 {
	n := t.descend(x)
	if t.numClasses > 0 {
		return float64(n.class)
	}
	return n.value
}

// PredictClass returns the majority class at the reached leaf.
func (t *Tree) PredictClass(x []float64) int { return t.descend(x).class }

// PredictProba returns per-class probabilities at the reached leaf
// (classification trees only; nil otherwise).
func (t *Tree) PredictProba(x []float64) []float64 {
	if t.numClasses == 0 {
		return nil
	}
	n := t.descend(x)
	out := make([]float64, t.numClasses)
	total := 0.0
	for _, c := range n.counts {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range n.counts {
		out[i] = c / total
	}
	return out
}

func (t *Tree) descend(x []float64) *node {
	n := t.root
	for !n.isLeaf() {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n
}

// NumLeaves returns the leaf count.
func (t *Tree) NumLeaves() int { return countLeaves(t.root) }

// Depth returns the maximum depth (a lone root counts as 0).
func (t *Tree) Depth() int { return depth(t.root) - 1 }

func countLeaves(n *node) int {
	if n.isLeaf() {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

func depth(n *node) int {
	if n.isLeaf() {
		return 1
	}
	l, r := depth(n.left), depth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// FeatureImportances returns normalized Gini/variance importances (they sum
// to 1 unless the tree is a single leaf) — the right panel of Figure 6.
func (t *Tree) FeatureImportances() []float64 {
	nf := 0
	if t.names != nil {
		nf = len(t.names)
	} else {
		nf = maxFeature(t.root) + 1
	}
	imp := make([]float64, nf)
	total := float64(t.totalRows)
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			return
		}
		nd := float64(n.nSamples)
		if n.nSamples == 0 {
			nd = float64(n.left.nSamples + n.right.nSamples)
		}
		nl, nr := float64(n.left.nSamples), float64(n.right.nSamples)
		gain := nd*n.impurity - nl*n.left.impurity - nr*n.right.impurity
		if gain > 0 {
			imp[n.feature] += gain / total
		}
		walk(n.left)
		walk(n.right)
	}
	// Root nSamples was set by leaf(); internal nodes keep their stats
	// because build() mutates the leaf node into an internal one.
	walk(t.root)
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if sum > 0 {
		for i := range imp {
			imp[i] /= sum
		}
	}
	return imp
}

func maxFeature(n *node) int {
	if n.isLeaf() {
		return -1
	}
	m := n.feature
	if l := maxFeature(n.left); l > m {
		m = l
	}
	if r := maxFeature(n.right); r > m {
		m = r
	}
	return m
}

// PruneCCP applies minimal cost-complexity pruning: every internal node
// whose effective alpha g(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1) is at
// most alpha collapses to a leaf, weakest links first. R uses
// sample-weighted impurity. alpha = 0 only removes splits that do not reduce
// risk at all.
func (t *Tree) PruneCCP(alpha float64) {
	for {
		weakest, g := weakestLink(t.root, float64(t.totalRows))
		if weakest == nil || g > alpha {
			return
		}
		collapse(weakest)
	}
}

// weakestLink finds the internal node with the smallest effective alpha.
func weakestLink(root *node, total float64) (*node, float64) {
	var best *node
	bestG := math.Inf(1)
	var walk func(n *node)
	walk = func(n *node) {
		if n.isLeaf() {
			return
		}
		rNode := float64(n.nSamples) / total * n.impurity
		rSub, leaves := subtreeRisk(n, total)
		if leaves > 1 {
			g := (rNode - rSub) / float64(leaves-1)
			if g < bestG {
				bestG, best = g, n
			}
		}
		walk(n.left)
		walk(n.right)
	}
	walk(root)
	return best, bestG
}

func subtreeRisk(n *node, total float64) (risk float64, leaves int) {
	if n.isLeaf() {
		return float64(n.nSamples) / total * n.impurity, 1
	}
	rl, ll := subtreeRisk(n.left, total)
	rr, lr := subtreeRisk(n.right, total)
	return rl + rr, ll + lr
}

// collapse turns an internal node into a leaf using its stored statistics.
func collapse(n *node) {
	if n.isLeaf() {
		return
	}
	if n.counts == nil && n.left.counts != nil {
		// Classification: merge child histograms.
		n.counts = make([]float64, len(n.left.counts))
	}
	if n.counts != nil {
		mergeCounts(n)
		n.class = argmax(n.counts)
		n.value = float64(n.class)
	}
	n.feature = -1
	n.left, n.right = nil, nil
}

func mergeCounts(n *node) {
	for i := range n.counts {
		n.counts[i] = 0
	}
	var add func(c *node)
	add = func(c *node) {
		if c == nil {
			return
		}
		if c.isLeaf() {
			for i, v := range c.counts {
				n.counts[i] += v
			}
			return
		}
		add(c.left)
		add(c.right)
	}
	add(n.left)
	add(n.right)
}

// Render prints the tree in the style of Figure 6: one line per node,
// internal nodes show "feature ≤ threshold", leaves show the class (or
// value) with sample counts.
func (t *Tree) Render(classNames []string) string {
	var sb strings.Builder
	var walk func(n *node, prefix string, isLast bool)
	walk = func(n *node, prefix string, isLast bool) {
		connector := "├─ "
		childPrefix := prefix + "│  "
		if isLast {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if prefix == "" {
			connector = ""
			childPrefix = ""
		}
		if n.isLeaf() {
			label := fmt.Sprintf("%.3f", n.value)
			if t.numClasses > 0 {
				if classNames != nil && n.class < len(classNames) {
					label = classNames[n.class]
				} else {
					label = fmt.Sprintf("class %d", n.class)
				}
			}
			fmt.Fprintf(&sb, "%s%s→ %s (n=%d, impurity=%.3f)\n", prefix, connector, label, n.nSamples, n.impurity)
			return
		}
		name := fmt.Sprintf("f%d", n.feature)
		if t.names != nil && n.feature < len(t.names) {
			name = t.names[n.feature]
		}
		fmt.Fprintf(&sb, "%s%s%s ≤ %.2f? (n=%d)\n", prefix, connector, name, n.threshold, n.nSamples)
		walk(n.left, childPrefix, false)
		walk(n.right, childPrefix, true)
	}
	walk(t.root, "", true)
	return sb.String()
}

var _ mlmodel.Regressor = (*Tree)(nil)
var _ mlmodel.Classifier = (*Tree)(nil)
