package dtree

import (
	"math"
	"strings"
	"testing"

	"repro/internal/ml/mlmodel"
	"repro/internal/xrand"
)

func xorDataset() *mlmodel.Dataset {
	// XOR-ish pattern a depth-2 tree must solve exactly.
	var x [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		a := float64(i%2) + float64(i%7)*0.01
		b := float64((i/2)%2) + float64(i%5)*0.01
		x = append(x, []float64{a, b})
		label := 0.0
		if (a > 0.5) != (b > 0.5) {
			label = 1
		}
		y = append(y, label)
	}
	ds, _ := mlmodel.NewDataset(x, y, []string{"a", "b"})
	return ds
}

func TestClassifierLearnsXOR(t *testing.T) {
	ds := xorDataset()
	tr, err := FitClassifier(ds, 2, Params{MaxDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range ds.X {
		if tr.PredictClass(row) == int(ds.Y[i]) {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.99 {
		t.Fatalf("XOR accuracy %v, want ~1.0", acc)
	}
}

func TestClassifierRejectsBadLabels(t *testing.T) {
	x := [][]float64{{1}, {2}}
	if _, err := FitClassifier(&mlmodel.Dataset{X: x, Y: []float64{0, 2}}, 2, Params{}); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := FitClassifier(&mlmodel.Dataset{X: x, Y: []float64{0, 0.5}}, 2, Params{}); err == nil {
		t.Fatal("non-integer label accepted")
	}
	if _, err := FitClassifier(&mlmodel.Dataset{}, 2, Params{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := FitClassifier(&mlmodel.Dataset{X: x, Y: []float64{0, 1}}, 1, Params{}); err == nil {
		t.Fatal("single-class problem accepted")
	}
}

func TestRegressorFitsStep(t *testing.T) {
	var x [][]float64
	var y []float64
	for i := 0; i < 100; i++ {
		v := float64(i)
		x = append(x, []float64{v})
		if v < 50 {
			y = append(y, 10)
		} else {
			y = append(y, 20)
		}
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	tr, err := FitRegressor(ds, Params{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := tr.Predict([]float64{10}); math.Abs(p-10) > 1e-9 {
		t.Fatalf("predict(10) = %v", p)
	}
	if p := tr.Predict([]float64{90}); math.Abs(p-20) > 1e-9 {
		t.Fatalf("predict(90) = %v", p)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	ds := xorDataset()
	tr, _ := FitClassifier(ds, 2, Params{MaxDepth: 1})
	if d := tr.Depth(); d > 1 {
		t.Fatalf("depth %d exceeds MaxDepth 1", d)
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	rng := xrand.New(1)
	var x [][]float64
	var y []float64
	for i := 0; i < 64; i++ {
		x = append(x, []float64{rng.Float64()})
		y = append(y, rng.Float64())
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	tr, _ := FitRegressor(ds, Params{MinSamplesLeaf: 10})
	// With ≥10 samples per leaf and 64 rows, at most 6 leaves.
	if l := tr.NumLeaves(); l > 6 {
		t.Fatalf("too many leaves %d for MinSamplesLeaf=10", l)
	}
}

func TestPruningShrinksTree(t *testing.T) {
	rng := xrand.New(2)
	var x [][]float64
	var y []float64
	for i := 0; i < 400; i++ {
		a := rng.Float64()
		x = append(x, []float64{a, rng.Float64()})
		label := 0.0
		if a > 0.5 {
			label = 1
		}
		// 10 % label noise induces spurious splits.
		if rng.Bool(0.1) {
			label = 1 - label
		}
		y = append(y, label)
	}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	tr, _ := FitClassifier(ds, 2, Params{})
	before := tr.NumLeaves()
	tr.PruneCCP(0.01)
	after := tr.NumLeaves()
	if after >= before {
		t.Fatalf("pruning did not shrink: %d → %d", before, after)
	}
	// The dominant signal must survive.
	if tr.PredictClass([]float64{0.9, 0.5}) != 1 || tr.PredictClass([]float64{0.1, 0.5}) != 0 {
		t.Fatal("pruning destroyed the main split")
	}
}

func TestPruneToRootWithHugeAlpha(t *testing.T) {
	ds := xorDataset()
	tr, _ := FitClassifier(ds, 2, Params{})
	tr.PruneCCP(1e9)
	if tr.NumLeaves() != 1 {
		t.Fatalf("alpha=∞ should collapse to a single leaf, got %d leaves", tr.NumLeaves())
	}
}

func TestFeatureImportances(t *testing.T) {
	// Only feature 0 carries signal.
	rng := xrand.New(3)
	var x [][]float64
	var y []float64
	for i := 0; i < 500; i++ {
		a, b := rng.Float64(), rng.Float64()
		x = append(x, []float64{a, b})
		if a > 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 0)
		}
	}
	ds, _ := mlmodel.NewDataset(x, y, []string{"signal", "noise"})
	tr, _ := FitClassifier(ds, 2, Params{MaxDepth: 4})
	imp := tr.FeatureImportances()
	if len(imp) != 2 {
		t.Fatalf("importances length %d", len(imp))
	}
	if imp[0] < 0.9 {
		t.Fatalf("signal feature importance %v, want ≥0.9 (noise=%v)", imp[0], imp[1])
	}
	if s := imp[0] + imp[1]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("importances sum to %v", s)
	}
}

func TestPredictProba(t *testing.T) {
	ds := xorDataset()
	tr, _ := FitClassifier(ds, 2, Params{MaxDepth: 4})
	p := tr.PredictProba(ds.X[0])
	if len(p) != 2 {
		t.Fatalf("proba length %d", len(p))
	}
	if s := p[0] + p[1]; math.Abs(s-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", s)
	}
	// Regression trees return nil.
	reg, _ := FitRegressor(ds, Params{MaxDepth: 2})
	if reg.PredictProba(ds.X[0]) != nil {
		t.Fatal("regression tree returned probabilities")
	}
}

func TestRenderContainsFeatureNames(t *testing.T) {
	ds := xorDataset()
	tr, _ := FitClassifier(ds, 2, Params{MaxDepth: 3})
	out := tr.Render([]string{"No", "Yes"})
	if !strings.Contains(out, "a ≤") && !strings.Contains(out, "b ≤") {
		t.Fatalf("render missing feature names:\n%s", out)
	}
	if !strings.Contains(out, "Yes") || !strings.Contains(out, "No") {
		t.Fatalf("render missing class names:\n%s", out)
	}
}

func TestRandomFeatureSubsetStillLearns(t *testing.T) {
	ds := xorDataset()
	tr, err := FitClassifier(ds, 2, Params{MaxDepth: 6, MaxFeatures: 1, RNG: xrand.New(7)})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, row := range ds.X {
		if tr.PredictClass(row) == int(ds.Y[i]) {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.9 {
		t.Fatalf("feature-subset tree accuracy %v", acc)
	}
}

func TestConstantTargetSingleLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	ds, _ := mlmodel.NewDataset(x, y, nil)
	tr, _ := FitRegressor(ds, Params{})
	if tr.NumLeaves() != 1 {
		t.Fatalf("constant target should be a single leaf, got %d", tr.NumLeaves())
	}
	if p := tr.Predict([]float64{99}); p != 5 {
		t.Fatalf("predict = %v, want 5", p)
	}
}
