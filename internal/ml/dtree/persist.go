package dtree

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON persistence for trained trees — with cost-complexity-pruned trees a
// few dozen nodes deep, the serialized Packing Analyze Model is a
// human-skimmable artifact in itself.

// nodeDTO flattens one node; leaves omit children.
type nodeDTO struct {
	Feature   int       `json:"feature"` // -1 for leaves
	Threshold float64   `json:"threshold,omitempty"`
	Left      *nodeDTO  `json:"left,omitempty"`
	Right     *nodeDTO  `json:"right,omitempty"`
	NSamples  int       `json:"n"`
	Impurity  float64   `json:"impurity"`
	Value     float64   `json:"value"`
	Counts    []float64 `json:"counts,omitempty"`
	Class     int       `json:"class,omitempty"`
}

// treeDTO is the on-disk layout.
type treeDTO struct {
	NumClasses int      `json:"num_classes"`
	Names      []string `json:"names,omitempty"`
	TotalRows  int      `json:"total_rows"`
	Root       *nodeDTO `json:"root"`
}

func toDTO(n *node) *nodeDTO {
	if n == nil {
		return nil
	}
	return &nodeDTO{
		Feature:   n.feature,
		Threshold: n.threshold,
		Left:      toDTO(n.left),
		Right:     toDTO(n.right),
		NSamples:  n.nSamples,
		Impurity:  n.impurity,
		Value:     n.value,
		Counts:    n.counts,
		Class:     n.class,
	}
}

func fromDTO(d *nodeDTO) (*node, error) {
	if d == nil {
		return nil, nil
	}
	n := &node{
		feature:   d.Feature,
		threshold: d.Threshold,
		nSamples:  d.NSamples,
		impurity:  d.Impurity,
		value:     d.Value,
		counts:    d.Counts,
		class:     d.Class,
	}
	if d.Feature >= 0 {
		if d.Left == nil || d.Right == nil {
			return nil, fmt.Errorf("dtree: load: internal node missing children")
		}
		var err error
		if n.left, err = fromDTO(d.Left); err != nil {
			return nil, err
		}
		if n.right, err = fromDTO(d.Right); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Save writes the tree as JSON.
func (t *Tree) Save(w io.Writer) error {
	dto := treeDTO{
		NumClasses: t.numClasses,
		Names:      t.names,
		TotalRows:  t.totalRows,
		Root:       toDTO(t.root),
	}
	return json.NewEncoder(w).Encode(dto)
}

// Load reads a tree previously written by Save.
func Load(r io.Reader) (*Tree, error) {
	var dto treeDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("dtree: load: %w", err)
	}
	if dto.Root == nil {
		return nil, fmt.Errorf("dtree: load: missing root")
	}
	root, err := fromDTO(dto.Root)
	if err != nil {
		return nil, err
	}
	return &Tree{
		root:       root,
		numClasses: dto.NumClasses,
		names:      dto.Names,
		totalRows:  dto.TotalRows,
	}, nil
}
