package isotonic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAlreadyMonotoneUnchanged(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	got := Regression(y, nil)
	for i := range y {
		if got[i] != y[i] {
			t.Fatalf("monotone input modified: %v", got)
		}
	}
}

func TestSingleViolatorPooled(t *testing.T) {
	y := []float64{1, 3, 2, 4}
	got := Regression(y, nil)
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestFullyReversedPoolsToMean(t *testing.T) {
	y := []float64{4, 3, 2, 1}
	got := Regression(y, nil)
	for _, v := range got {
		if math.Abs(v-2.5) > 1e-12 {
			t.Fatalf("reversed input should pool to the mean: %v", got)
		}
	}
}

func TestWeightsShiftPooledMean(t *testing.T) {
	y := []float64{2, 0}
	w := []float64{3, 1}
	got := Regression(y, w)
	// Pooled weighted mean = (2·3 + 0·1)/4 = 1.5.
	for _, v := range got {
		if math.Abs(v-1.5) > 1e-12 {
			t.Fatalf("weighted pool wrong: %v", got)
		}
	}
}

func TestOutputAlwaysMonotone(t *testing.T) {
	check := func(ys []float64) bool {
		for _, v := range ys {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		return IsMonotoneNonDecreasing(Regression(ys, nil))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanPreserved(t *testing.T) {
	// Unweighted PAV preserves the total sum.
	y := []float64{5, 1, 4, 2, 8, 3}
	got := Regression(y, nil)
	var sy, sg float64
	for i := range y {
		sy += y[i]
		sg += got[i]
	}
	if math.Abs(sy-sg) > 1e-9 {
		t.Fatalf("sum changed: %v → %v", sy, sg)
	}
}

func TestDecreasing(t *testing.T) {
	y := []float64{1, 5, 2, 0}
	got := Decreasing(y, nil)
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1]+1e-12 {
			t.Fatalf("Decreasing output increases: %v", got)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if got := Regression(nil, nil); len(got) != 0 {
		t.Fatal("empty input should give empty output")
	}
	if got := Regression([]float64{7}, nil); len(got) != 1 || got[0] != 7 {
		t.Fatalf("single element mangled: %v", got)
	}
}

func TestIsMonotoneHelper(t *testing.T) {
	if !IsMonotoneNonDecreasing([]float64{1, 1, 2}) {
		t.Fatal("flat steps are monotone")
	}
	if IsMonotoneNonDecreasing([]float64{2, 1}) {
		t.Fatal("decreasing flagged monotone")
	}
}
