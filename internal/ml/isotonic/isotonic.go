// Package isotonic implements the Pool Adjacent Violators (PAV) algorithm
// (Ayer et al. 1955, the paper's citation [8]). Lucid's System Tuner uses it
// to pose monotonic constraints on learned GA²M shape functions (§3.6.1):
// e.g. forcing the gpu_num contribution to job duration to be
// non-decreasing, which the paper reports buys +2.6 % R² and −3.9 % queuing
// delay.
package isotonic

// Regression returns the weighted least-squares non-decreasing fit to y.
// weights may be nil (all ones). The output has the same length as y.
func Regression(y, weights []float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	w := weights
	if w == nil {
		w = make([]float64, n)
		for i := range w {
			w[i] = 1
		}
	}

	// Blocks of pooled values: value, weight, count.
	type block struct {
		sum, weight float64
		count       int
	}
	blocks := make([]block, 0, n)
	for i := 0; i < n; i++ {
		blocks = append(blocks, block{sum: y[i] * w[i], weight: w[i], count: 1})
		// Pool while the new block violates monotonicity with its
		// predecessor.
		for len(blocks) > 1 {
			last := len(blocks) - 1
			a, b := blocks[last-1], blocks[last]
			if mean(a) <= mean(b) {
				break
			}
			blocks[last-1] = block{sum: a.sum + b.sum, weight: a.weight + b.weight, count: a.count + b.count}
			blocks = blocks[:last]
		}
	}

	i := 0
	for _, b := range blocks {
		v := mean(b)
		for k := 0; k < b.count; k++ {
			out[i] = v
			i++
		}
	}
	return out
}

func mean(b struct {
	sum, weight float64
	count       int
}) float64 {
	if b.weight == 0 {
		return 0
	}
	return b.sum / b.weight
}

// Decreasing returns the non-increasing fit (PAV on the negated series).
func Decreasing(y, weights []float64) []float64 {
	neg := make([]float64, len(y))
	for i, v := range y {
		neg[i] = -v
	}
	fit := Regression(neg, weights)
	for i := range fit {
		fit[i] = -fit[i]
	}
	return fit
}

// IsMonotoneNonDecreasing reports whether xs never decreases.
func IsMonotoneNonDecreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}
