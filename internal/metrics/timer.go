package metrics

import "time"

// Timer measures one interval into a histogram of seconds. It is a small
// value type — starting and stopping a timer allocates nothing — and both
// halves are nil-safe: StartTimer on a nil registry (or with a nil
// histogram) returns an inert Timer whose Stop is a no-op, so callers keep
// the one-nil-check contract without guarding every site.
type Timer struct {
	h     *Histogram
	now   func() time.Time
	start time.Time
}

// StartTimer begins timing into h using the registry's clock (swappable via
// SetClock for deterministic tests).
func (r *Registry) StartTimer(h *Histogram) Timer {
	if r == nil || h == nil {
		return Timer{}
	}
	now := r.clock()
	return Timer{h: h, now: now, start: now()}
}

// Stop observes the elapsed interval in seconds and returns it. Inert timers
// return 0 without observing.
func (t Timer) Stop() float64 {
	if t.h == nil {
		return 0
	}
	d := t.now().Sub(t.start).Seconds()
	if d < 0 {
		d = 0 // a clock stepping backwards must not poison the histogram
	}
	t.h.Observe(d)
	return d
}

// Time runs fn and records its duration into h — sugar for the
// StartTimer/Stop pair around a closed block.
func (r *Registry) Time(h *Histogram, fn func()) {
	t := r.StartTimer(h)
	fn()
	t.Stop()
}
