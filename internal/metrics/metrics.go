// Package metrics is a stdlib-only, concurrency-safe metrics registry with
// Prometheus text exposition — the observability substrate behind lucidd's
// GET /metrics endpoint, the simulator's per-tick phase timings, and the
// lucidbench artifact dump. It supports the three classic instrument kinds
// (monotonic counters, settable gauges, histograms with fixed bucket
// boundaries), each optionally fanned out into a labeled family.
//
// Design constraints, in priority order:
//
//   - Zero overhead when disabled: every instrument method is nil-safe, so a
//     component holding a nil *Registry (or a nil *Counter looked up from
//     one) pays exactly one nil check on its hot path. This is the same
//     contract Options.DecisionTrace and Options.Chaos already honor in the
//     simulator.
//   - Lock-free hot path: counters, gauges and histogram cells are atomics
//     (float64 bits CAS-folded), so concurrent HTTP handlers and the WAL
//     never serialize on a metrics mutex. Registry locks are taken only at
//     registration and exposition time.
//   - Deterministic exposition: families and series render in sorted order,
//     so two scrapes of identical state are byte-identical (tests diff them).
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the instrument families.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry holds metric families. The zero value is not usable; construct
// with New. A nil *Registry is valid everywhere and makes every derived
// instrument a no-op.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
	now  func() time.Time
}

// New returns an empty registry using the wall clock for timers.
func New() *Registry {
	return &Registry{fams: map[string]*family{}, now: time.Now}
}

// SetClock substitutes the time source used by StartTimer, making latency
// tests deterministic. No-op on a nil registry or nil clock.
func (r *Registry) SetClock(now func() time.Time) {
	if r == nil || now == nil {
		return
	}
	r.mu.Lock()
	r.now = now
	r.mu.Unlock()
}

func (r *Registry) clock() func() time.Time {
	r.mu.RLock()
	now := r.now
	r.mu.RUnlock()
	return now
}

// family is one named metric with a fixed kind, label schema and (for
// histograms) bucket boundaries. Unlabeled instruments are a family with a
// single series under the empty key.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, +Inf implicit

	mu     sync.RWMutex
	series map[string]any // key = label values joined by '\xff'
	vals   map[string][]string
}

// registerFamily fetches or creates a family, enforcing schema consistency.
// Re-registering an identical (name, kind, labels, buckets) is idempotent —
// the natural pattern when several components share a registry — while a
// conflicting re-registration panics: silently returning a mismatched family
// would corrupt the exposition.
func (r *Registry) registerFamily(name, help string, k kind, labels []string, buckets []float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		ok := f.kind == k && sameStrings(f.labels, labels)
		if ok && k == histogramKind {
			ok = sameFloats(f.buckets, normalizeBuckets(buckets))
		}
		if !ok {
			panic(fmt.Sprintf("metrics: conflicting re-registration of %q", name))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k,
		labels: append([]string(nil), labels...),
		series: map[string]any{}, vals: map[string][]string{}}
	if k == histogramKind {
		f.buckets = normalizeBuckets(buckets)
	}
	r.fams[name] = f
	return f
}

// normalizeBuckets sorts, dedupes and strips a trailing +Inf (re-added at
// exposition). Empty input falls back to DefBuckets.
func normalizeBuckets(b []float64) []float64 {
	if len(b) == 0 {
		b = DefBuckets()
	}
	out := append([]float64(nil), b...)
	sort.Float64s(out)
	dedup := out[:0]
	for i, v := range out {
		if math.IsInf(v, +1) {
			continue
		}
		if i > 0 && v == out[i-1] {
			continue
		}
		dedup = append(dedup, v)
	}
	return dedup
}

// DefBuckets is a general-purpose latency range: 10µs to ~80s in
// power-of-two steps — wide enough for both an fsync and a full scheduler
// sweep over a deep queue.
func DefBuckets() []float64 { return ExpBuckets(1e-5, 2, 24) }

// ExpBuckets returns n exponential bucket upper bounds: start, start×factor,
// start×factor², … Panics on a non-positive start, factor ≤ 1 or n < 1 —
// these are programmer errors, not runtime conditions.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// ---------------------------------------------------------------------------
// Instruments

// atomicFloat is a float64 folded into an atomic word.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

func (a *atomicFloat) set(v float64) { a.bits.Store(math.Float64bits(v)) }
func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

// Counter is a monotonically increasing value. All methods are nil-safe.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter. Negative deltas are ignored (counters are
// monotonic by definition; a decrement is always a caller bug).
func (c *Counter) Add(v float64) {
	if c == nil || v <= 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a value that can go up and down. All methods are nil-safe.
type Gauge struct{ v atomicFloat }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.set(v)
}

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.add(v)
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram counts observations into fixed buckets. All methods are
// nil-safe. Buckets are cumulative only at exposition; internally each cell
// counts its own interval so Observe touches exactly one cell.
type Histogram struct {
	upper  []float64 // ascending, no +Inf
	counts []atomic.Uint64
	sum    atomicFloat
	n      atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is ≥ v; the final overflow cell is +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts,
// attributing each bucket's mass to its upper bound — the same conservative
// estimate Prometheus' histogram_quantile makes at the bucket grain. Returns
// 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.upper) {
				return h.upper[i]
			}
			return math.Inf(+1)
		}
	}
	return math.Inf(+1)
}

// ---------------------------------------------------------------------------
// Registry constructors (all nil-safe: a nil registry yields nil instruments)

// Counter returns the named unlabeled counter, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.registerFamily(name, help, counterKind, nil, nil)
	return f.counter()
}

// Gauge returns the named unlabeled gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.registerFamily(name, help, gaugeKind, nil, nil)
	return f.gauge()
}

// Histogram returns the named unlabeled histogram, creating it if needed.
// Nil/empty buckets select DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.registerFamily(name, help, histogramKind, nil, buckets)
	return f.histogram()
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec returns the named labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.registerFamily(name, help, counterKind, labels, nil)}
}

// With returns the counter for one label-value combination.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.seriesFor(values).(*Counter)
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec returns the named labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.registerFamily(name, help, gaugeKind, labels, nil)}
}

// With returns the gauge for one label-value combination.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.seriesFor(values).(*Gauge)
}

// HistogramVec is a labeled histogram family (every series shares the
// family's buckets).
type HistogramVec struct{ f *family }

// HistogramVec returns the named labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{f: r.registerFamily(name, help, histogramKind, labels, buckets)}
}

// With returns the histogram for one label-value combination.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.seriesFor(values).(*Histogram)
}

// counter/gauge/histogram fetch the unlabeled singleton series.
func (f *family) counter() *Counter     { return f.seriesFor(nil).(*Counter) }
func (f *family) gauge() *Gauge         { return f.seriesFor(nil).(*Gauge) }
func (f *family) histogram() *Histogram { return f.seriesFor(nil).(*Histogram) }

// seriesFor fetches or creates the series for one label-value tuple. The
// double-checked read lock keeps repeated lookups (the common case once a
// component cached nothing) cheap.
func (f *family) seriesFor(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	switch f.kind {
	case counterKind:
		s = &Counter{}
	case gaugeKind:
		s = &Gauge{}
	default:
		s = newHistogram(f.buckets)
	}
	f.series[key] = s
	f.vals[key] = append([]string(nil), values...)
	return s
}

// ---------------------------------------------------------------------------
// Exposition

// TextContentType is the Content-Type of the exposition format.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders the registry in Prometheus text exposition format 0.0.4.
// Families and series are emitted in sorted order, so identical state yields
// byte-identical output. A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.RUnlock()

	var sb strings.Builder
	for _, f := range fams {
		f.writeText(&sb)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Render returns the exposition as a string ("" on nil).
func (r *Registry) Render() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	_ = r.WriteText(&sb)
	return sb.String()
}

func (f *family) writeText(sb *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		vals []string
		s    any
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, row{vals: f.vals[k], s: f.series[k]})
	}
	f.mu.RUnlock()
	if len(rows) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(sb, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(sb, "# TYPE %s %s\n", f.name, f.kind)
	for _, rw := range rows {
		switch s := rw.s.(type) {
		case *Counter:
			writeSample(sb, f.name, f.labels, rw.vals, "", "", s.Value())
		case *Gauge:
			writeSample(sb, f.name, f.labels, rw.vals, "", "", s.Value())
		case *Histogram:
			var cum uint64
			for i, ub := range s.upper {
				cum += s.counts[i].Load()
				writeSample(sb, f.name+"_bucket", f.labels, rw.vals,
					"le", formatFloat(ub), float64(cum))
			}
			cum += s.counts[len(s.upper)].Load()
			writeSample(sb, f.name+"_bucket", f.labels, rw.vals, "le", "+Inf", float64(cum))
			writeSample(sb, f.name+"_sum", f.labels, rw.vals, "", "", s.Sum())
			writeSample(sb, f.name+"_count", f.labels, rw.vals, "", "", float64(s.Count()))
		}
	}
}

// writeSample emits one line: name{labels...} value. extraK/extraV append a
// synthetic label (the histogram "le" bound).
func writeSample(sb *strings.Builder, name string, labels, vals []string, extraK, extraV string, v float64) {
	sb.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		sb.WriteByte('{')
		first := true
		for i, l := range labels {
			if !first {
				sb.WriteByte(',')
			}
			first = false
			sb.WriteString(l)
			sb.WriteString(`="`)
			sb.WriteString(escapeLabel(vals[i]))
			sb.WriteByte('"')
		}
		if extraK != "" {
			if !first {
				sb.WriteByte(',')
			}
			sb.WriteString(extraK)
			sb.WriteString(`="`)
			sb.WriteString(extraV)
			sb.WriteByte('"')
		}
		sb.WriteByte('}')
	}
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(v))
	sb.WriteByte('\n')
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double-quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var sb strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string: backslash and newline only (quotes are
// legal there).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// validName checks the [a-zA-Z_:][a-zA-Z0-9_:]* metric/label grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
