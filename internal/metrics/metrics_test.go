package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("jobs_total", "jobs seen")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("depth", "queue depth")
	g.Set(10)
	g.Dec()
	g.Add(-2.5)
	if got := g.Value(); got != 6.5 {
		t.Fatalf("gauge = %v, want 6.5", got)
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.SetClock(time.Now)
	c := r.Counter("x", "")
	c.Inc()
	g := r.Gauge("y", "")
	g.Set(1)
	h := r.Histogram("z", "", nil)
	h.Observe(1)
	cv := r.CounterVec("cv", "", "l")
	cv.With("a").Inc()
	gv := r.GaugeVec("gv", "", "l")
	gv.With("a").Set(1)
	hv := r.HistogramVec("hv", "", nil, "l")
	hv.With("a").Observe(1)
	tm := r.StartTimer(h)
	if d := tm.Stop(); d != 0 {
		t.Fatalf("inert timer observed %v", d)
	}
	r.Time(h, func() {})
	if out := r.Render(); out != "" {
		t.Fatalf("nil registry rendered %q", out)
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := New()
	h := r.Histogram("lat", "latency", []float64{1, 2, 4})
	for _, tc := range []struct {
		v    float64
		cell int // index of the interval cell the observation must land in
	}{
		{0.5, 0}, // below first bound
		{1, 0},   // le is inclusive
		{1.5, 1},
		{2, 1},
		{3, 2},
		{4, 2},
		{5, 3}, // overflow → +Inf cell
		{math.Inf(+1), 3},
	} {
		before := make([]uint64, len(h.counts))
		for i := range h.counts {
			before[i] = h.counts[i].Load()
		}
		h.Observe(tc.v)
		for i := range h.counts {
			want := before[i]
			if i == tc.cell {
				want++
			}
			if got := h.counts[i].Load(); got != want {
				t.Fatalf("Observe(%v): cell %d = %d, want %d", tc.v, i, got, want)
			}
		}
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d, want 8", h.Count())
	}
	// Cumulative rendering: bucket{le="2"} must include the le="1" mass.
	out := r.Render()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 4`,
		`lat_bucket{le="4"} 6`,
		`lat_bucket{le="+Inf"} 8`,
		`lat_count 8`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("q", "", []float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5) // le=1
	}
	for i := 0; i < 9; i++ {
		h.Observe(5) // le=10
	}
	h.Observe(50) // le=100
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.95); got != 10 {
		t.Fatalf("p95 = %v, want 10", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v, want 100", got)
	}
	var empty *Histogram
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("len = %d", len(b))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0,2,3) did not panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

func TestLabelEscaping(t *testing.T) {
	r := New()
	cv := r.CounterVec("req_total", "requests", "path")
	cv.With(`/a"b\c` + "\n").Inc()
	out := r.Render()
	want := `req_total{path="/a\"b\\c\n"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := New()
	r.Counter("b_total", "second family").Add(2)
	av := r.GaugeVec("a_val", "first\nfamily", "k")
	av.With("z").Set(1)
	av.With("a").Set(2)
	out := r.Render()

	// Families sorted by name, series sorted by label values, HELP newline
	// escaped, TYPE lines present.
	wantOrder := []string{
		"# HELP a_val first\\nfamily",
		"# TYPE a_val gauge",
		`a_val{k="a"} 2`,
		`a_val{k="z"} 1`,
		"# HELP b_total second family",
		"# TYPE b_total counter",
		"b_total 2",
	}
	idx := -1
	for _, w := range wantOrder {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
		if i < idx {
			t.Fatalf("exposition out of order at %q:\n%s", w, out)
		}
		idx = i
	}
	// Two scrapes of identical state must be byte-identical.
	if out2 := r.Render(); out2 != out {
		t.Fatal("exposition is not deterministic")
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := New()
	c1 := r.Counter("same", "h")
	c2 := r.Counter("same", "h")
	if c1 != c2 {
		t.Fatal("re-registration returned a different counter")
	}
	h1 := r.Histogram("hist", "", []float64{1, 2})
	h2 := r.Histogram("hist", "", []float64{2, 1}) // normalizes equal
	if h1 != h2 {
		t.Fatal("re-registration returned a different histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting kind did not panic")
		}
	}()
	r.Gauge("same", "h")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, name := range []string{"", "1abc", "a-b", "a b", "a{b}"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestTimerWithFakeClock(t *testing.T) {
	r := New()
	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })
	h := r.Histogram("t_seconds", "", []float64{0.1, 1, 10})
	tm := r.StartTimer(h)
	now = now.Add(500 * time.Millisecond)
	if d := tm.Stop(); d != 0.5 {
		t.Fatalf("timer = %v, want 0.5", d)
	}
	if h.Count() != 1 || h.Sum() != 0.5 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	// Backwards clock: observed as 0, never negative.
	tm = r.StartTimer(h)
	now = now.Add(-time.Hour)
	if d := tm.Stop(); d != 0 {
		t.Fatalf("backwards timer = %v", d)
	}
	if got := h.Sum(); got != 0.5 {
		t.Fatalf("sum after backwards timer = %v", got)
	}
}

// TestConcurrentIncrements hammers one counter, one labeled family and one
// histogram from many goroutines; run under -race in CI. Totals must be
// exact — atomics, not racy read-modify-write.
func TestConcurrentIncrements(t *testing.T) {
	r := New()
	c := r.Counter("conc_total", "")
	hv := r.HistogramVec("conc_seconds", "", []float64{0.5, 1.5, 2.5}, "worker")
	gv := r.GaugeVec("conc_gauge", "", "worker")
	const workers, iters = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w%8))
			for i := 0; i < iters; i++ {
				c.Inc()
				hv.With(name).Observe(float64(i % 3))
				gv.With(name).Add(1)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent scrapes must be safe too
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Render()
			}
		}
	}()
	wg.Wait()
	close(done)
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %v, want %d", got, workers*iters)
	}
	var hTotal uint64
	for w := 0; w < 8; w++ {
		hTotal += hv.With(string(rune('a' + w))).Count()
	}
	if hTotal != workers*iters {
		t.Fatalf("histogram count = %d, want %d", hTotal, workers*iters)
	}
}

func TestWrongLabelCardinalityPanics(t *testing.T) {
	r := New()
	cv := r.CounterVec("v_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label count did not panic")
		}
	}()
	cv.With("only-one")
}
