package lucidd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/snap"
)

// Durability layer. When Options.StateDir is set, every mutating request is
// logged to an append-only WAL (internal/snap framing) after it is applied,
// and the WAL is periodically compacted into a snapshot envelope. On boot the
// server loads the snapshot, replays the WAL through the exact same apply
// functions the HTTP handlers use, and truncates any torn tail — so a
// SIGKILLed daemon recovers every acknowledged submission.
//
// Durability classes:
//
//   - job submissions are fsynced before the HTTP response is written: an
//     acknowledged job survives any crash;
//   - metric samples, heartbeats and chaos ops are batched (WAL.SyncEvery):
//     losing the last few seconds of telemetry on a crash is harmless — the
//     agents re-send — while fsyncing each sample would serialize the hot
//     ingest path on disk latency.
//
// Deliberately NOT persisted: the decision-trace recorder (a per-process
// flight recorder; /trace documents the current incarnation), the chaos
// delay knob, and the derived Score/EstSec fields (recomputed from the
// recovered profiles by the same deterministic models).
const (
	snapFileName = "state.snap"
	walFileName  = "wal.log"
	// snapKind is the envelope kind for lucidd state snapshots.
	snapKind = "lucidd-state"
	// defaultCompactEvery bounds WAL growth: once this many records
	// accumulate past the last snapshot, the state is re-snapshotted and the
	// WAL reset.
	defaultCompactEvery = 1024
)

// walOp is one logged mutation. Op selects the variant; unused fields stay
// at their zero value and are omitted from the JSON.
type walOp struct {
	Op string `json:"op"` // "job", "metrics", "agent", "evict-agent", "fail-job"

	// job: the registration with its server-assigned ID, so replay
	// reproduces the same ID sequence the clients were told.
	ID   int    `json:"id,omitempty"`
	Name string `json:"name,omitempty"` // job name, or agent name for agent ops
	User string `json:"user,omitempty"`
	VC   string `json:"vc,omitempty"`
	GPUs int    `json:"gpus,omitempty"`
	AMP  bool   `json:"amp,omitempty"`

	// metrics: one sample for job ID.
	GPUUtil    float64 `json:"gpu_util,omitempty"`
	GPUMemMB   float64 `json:"gpu_mem_mb,omitempty"`
	GPUMemUtil float64 `json:"gpu_mem_util,omitempty"`

	// agent: registration/heartbeat; UnixNano is the heartbeat time so the
	// staleness detector works across restarts.
	Node     int   `json:"node,omitempty"`
	UnixNano int64 `json:"unix_nano,omitempty"`
}

// persistedJob is a jobState minus the derived fields (Score, EstSec), which
// the recovery path recomputes through refreshLocked.
type persistedJob struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	User     string  `json:"user"`
	VC       string  `json:"vc,omitempty"`
	GPUs     int     `json:"gpus"`
	AMP      bool    `json:"amp,omitempty"`
	Samples  int     `json:"samples,omitempty"`
	Profile  profile `json:"profile"`
	Restarts int     `json:"restarts,omitempty"`
}

// persistedAgent is an agentState with the heartbeat as unix nanos.
type persistedAgent struct {
	Name     string `json:"name"`
	Node     int    `json:"node"`
	UnixNano int64  `json:"unix_nano"`
}

// serverSnap is the snapshot payload: the full durable state at compaction.
type serverSnap struct {
	NextID int              `json:"next_id"`
	Jobs   []persistedJob   `json:"jobs"`
	Agents []persistedAgent `json:"agents"`
}

// store binds the server to its state directory. All methods are called with
// the server's mu held, which also serializes WAL appends with the state
// mutations they describe.
type store struct {
	dir          string
	wal          *snap.WAL
	compactEvery int64
	compactions  int64
	snapTime     time.Time // last snapshot write (or boot, if none yet)
	recovered    snap.RecoverStats
	hadSnapshot  bool
}

// openStore loads the snapshot (if any), replays the WAL, and leaves the
// server ready to log. Called from NewServerWith before the server is shared.
func (s *Server) openStore(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lucidd: state dir: %w", err)
	}
	st := &store{dir: dir, compactEvery: s.opts.CompactEvery, snapTime: s.opts.Clock()}
	if st.compactEvery <= 0 {
		st.compactEvery = defaultCompactEvery
	}

	snapPath := filepath.Join(dir, snapFileName)
	if raw, err := os.ReadFile(snapPath); err == nil {
		kind, payload, rerr := snap.ReadEnvelope(bytes.NewReader(raw))
		if rerr != nil {
			return fmt.Errorf("lucidd: read snapshot %s: %w", snapPath, rerr)
		}
		if kind != snapKind {
			return fmt.Errorf("lucidd: snapshot %s has kind %q, want %q", snapPath, kind, snapKind)
		}
		var ss serverSnap
		if jerr := json.Unmarshal(payload, &ss); jerr != nil {
			return fmt.Errorf("lucidd: decode snapshot: %w", jerr)
		}
		s.loadSnapLocked(ss)
		st.hadSnapshot = true
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("lucidd: read snapshot: %w", err)
	}

	wal, stats, err := snap.OpenWAL(filepath.Join(dir, walFileName), func(payload []byte) error {
		var op walOp
		if jerr := json.Unmarshal(payload, &op); jerr != nil {
			return fmt.Errorf("decode wal op: %w", jerr)
		}
		s.applyOpLocked(op)
		return nil
	})
	if err != nil {
		return err
	}
	wal.OnSync = func(d time.Duration) { s.met.walFsync.Observe(d.Seconds()) }
	st.wal = wal
	st.recovered = stats
	s.store = st
	s.met.recRecords.Set(float64(stats.Records))
	s.met.recTorn.Set(float64(stats.TornBytes))
	if st.hadSnapshot {
		s.met.recSnap.Set(1)
	}
	return nil
}

// loadSnapLocked overwrites the server state from a snapshot payload,
// recomputing the derived score/estimate fields.
func (s *Server) loadSnapLocked(ss serverSnap) {
	s.nextID = ss.NextID
	if s.nextID < 1 {
		s.nextID = 1
	}
	s.jobs = make(map[int]*jobState, len(ss.Jobs))
	for _, pj := range ss.Jobs {
		js := &jobState{ID: pj.ID, Name: pj.Name, User: pj.User, VC: pj.VC,
			GPUs: pj.GPUs, AMP: pj.AMP, Samples: pj.Samples, Profile: pj.Profile,
			Restarts: pj.Restarts}
		s.jobs[js.ID] = js
		s.refreshLocked(js)
		if js.ID >= s.nextID {
			s.nextID = js.ID + 1
		}
	}
	s.agents = make(map[string]*agentState, len(ss.Agents))
	for _, pa := range ss.Agents {
		s.agents[pa.Name] = &agentState{Name: pa.Name, Node: pa.Node,
			LastSeen: time.Unix(0, pa.UnixNano)}
	}
}

// applyOpLocked replays one WAL op through the same mutation paths the
// handlers use. Replay is lenient about dangling references (a metrics op for
// a job evicted by a later compaction cannot happen — the WAL resets at every
// snapshot — but leniency costs nothing and keeps recovery total).
func (s *Server) applyOpLocked(op walOp) {
	switch op.Op {
	case "job":
		js := &jobState{ID: op.ID, Name: op.Name, User: op.User, VC: op.VC,
			GPUs: op.GPUs, AMP: op.AMP}
		s.applyJobLocked(js)
	case "metrics":
		if js, ok := s.jobs[op.ID]; ok {
			s.applySampleLocked(js, op.GPUUtil, op.GPUMemMB, op.GPUMemUtil)
		}
	case "agent":
		s.applyAgentLocked(op.Name, op.Node, time.Unix(0, op.UnixNano))
	case "evict-agent":
		delete(s.agents, op.Name)
	case "fail-job":
		if js, ok := s.jobs[op.ID]; ok {
			s.applyFailJobLocked(js)
		}
	}
}

// logOpLocked appends op to the WAL (if durability is on). sync forces an
// inline fsync — used for ops that must survive a crash once acknowledged.
// After the append it compacts if the WAL has outgrown the threshold.
func (s *Server) logOpLocked(op walOp, sync bool) error {
	if s.store == nil {
		return nil
	}
	payload, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("lucidd: encode wal op: %w", err)
	}
	t := s.met.reg.StartTimer(s.met.walAppend)
	err = s.store.wal.Append(payload, sync)
	t.Stop()
	if err != nil {
		return err
	}
	if s.store.wal.Records() >= s.store.compactEvery {
		if err := s.compactLocked(); err != nil {
			return err
		}
		s.store.compactions++
	}
	return nil
}

// compactLocked writes a fresh snapshot (atomic tmp+rename) and resets the
// WAL. On any error the old snapshot and WAL are left intact — recovery
// simply replays a longer log.
func (s *Server) compactLocked() error {
	if s.store == nil {
		return nil
	}
	t := s.met.reg.StartTimer(s.met.snapshot)
	defer t.Stop()
	ss := serverSnap{NextID: s.nextID}
	for _, js := range s.snapshotLocked() {
		ss.Jobs = append(ss.Jobs, persistedJob{ID: js.ID, Name: js.Name,
			User: js.User, VC: js.VC, GPUs: js.GPUs, AMP: js.AMP,
			Samples: js.Samples, Profile: js.Profile, Restarts: js.Restarts})
	}
	for _, name := range sortedAgentNames(s.agents) {
		a := s.agents[name]
		ss.Agents = append(ss.Agents, persistedAgent{Name: a.Name, Node: a.Node,
			UnixNano: a.LastSeen.UnixNano()})
	}
	payload, err := json.Marshal(ss)
	if err != nil {
		return fmt.Errorf("lucidd: encode snapshot: %w", err)
	}
	var buf bytes.Buffer
	if err := snap.WriteEnvelope(&buf, snapKind, payload); err != nil {
		return err
	}
	final := filepath.Join(s.store.dir, snapFileName)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf.Bytes()); err != nil {
		return fmt.Errorf("lucidd: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("lucidd: install snapshot: %w", err)
	}
	if err := s.store.wal.Reset(); err != nil {
		return fmt.Errorf("lucidd: reset wal after compaction: %w", err)
	}
	s.store.snapTime = s.opts.Clock()
	s.store.hadSnapshot = true
	s.met.compacts.Inc()
	return nil
}

// closeStoreLocked snapshots once more (so restart replays nothing) and
// closes the WAL. Called from Shutdown after the drain completes.
func (s *Server) closeStoreLocked() error {
	if s.store == nil {
		return nil
	}
	err := s.compactLocked()
	if cerr := s.store.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileSync writes data and fsyncs before closing, so the following
// rename publishes fully-durable bytes.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortedAgentNames(agents map[string]*agentState) []string {
	names := make([]string, 0, len(agents))
	for name := range agents {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
