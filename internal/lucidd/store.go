package lucidd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/snap"
)

// Durability layer. When Options.StateDir is set, every mutating request is
// logged to an append-only WAL (internal/snap framing) after it is applied,
// and the WAL is periodically compacted into a snapshot envelope. State is
// sharded, and so is durability: shard i keeps its WAL and snapshot under
// <StateDir>/shard-<i>/, appends under its own mutex only, and recovers
// independently at boot — a torn tail on one shard's WAL never delays or
// damages a sibling shard's recovery. On boot each shard loads its snapshot,
// replays its WAL through the exact same apply functions the HTTP handlers
// use, and truncates any torn tail — so a SIGKILLed daemon recovers every
// acknowledged submission on every shard.
//
// Durability classes:
//
//   - job submissions are fsynced before the HTTP response is written: an
//     acknowledged job survives any crash;
//   - metric samples, heartbeats and chaos ops are batched (WAL.SyncEvery):
//     losing the last few seconds of telemetry on a crash is harmless — the
//     agents re-send — while fsyncing each sample would serialize the hot
//     ingest path on disk latency.
//
// Deliberately NOT persisted: the decision-trace recorder (a per-process
// flight recorder; /trace documents the current incarnation), the chaos
// delay knob, and the derived Score/EstSec fields (recomputed from the
// recovered profiles by the same deterministic models).
const (
	snapFileName = "state.snap"
	walFileName  = "wal.log"
	// snapKind is the envelope kind for lucidd state snapshots.
	snapKind = "lucidd-state"
	// defaultCompactEvery bounds per-shard WAL growth: once this many
	// records accumulate past the last snapshot, the shard is
	// re-snapshotted and its WAL reset.
	defaultCompactEvery = 1024
)

// walOp is one logged mutation. Op selects the variant; unused fields stay
// at their zero value and are omitted from the JSON.
type walOp struct {
	Op string `json:"op"` // "job", "metrics", "agent", "evict-agent", "fail-job"

	// job: the registration with its server-assigned ID, so replay
	// reproduces the same ID sequence the clients were told.
	ID   int    `json:"id,omitempty"`
	Name string `json:"name,omitempty"` // job name, or agent name for agent ops
	User string `json:"user,omitempty"`
	VC   string `json:"vc,omitempty"` // job VC, or agent VC for agent ops
	GPUs int    `json:"gpus,omitempty"`
	AMP  bool   `json:"amp,omitempty"`

	// metrics: one sample for job ID.
	GPUUtil    float64 `json:"gpu_util,omitempty"`
	GPUMemMB   float64 `json:"gpu_mem_mb,omitempty"`
	GPUMemUtil float64 `json:"gpu_mem_util,omitempty"`

	// agent: registration/heartbeat; UnixNano is the heartbeat time so the
	// staleness detector works across restarts.
	Node     int   `json:"node,omitempty"`
	UnixNano int64 `json:"unix_nano,omitempty"`
}

// persistedJob is a jobState minus the derived fields (Score, EstSec), which
// the recovery path recomputes through refreshLocked.
type persistedJob struct {
	ID       int     `json:"id"`
	Name     string  `json:"name"`
	User     string  `json:"user"`
	VC       string  `json:"vc,omitempty"`
	GPUs     int     `json:"gpus"`
	AMP      bool    `json:"amp,omitempty"`
	Samples  int     `json:"samples,omitempty"`
	Profile  profile `json:"profile"`
	Restarts int     `json:"restarts,omitempty"`
}

// persistedAgent is an agentState with the heartbeat as unix nanos.
type persistedAgent struct {
	Name     string `json:"name"`
	VC       string `json:"vc,omitempty"`
	Node     int    `json:"node"`
	UnixNano int64  `json:"unix_nano"`
}

// shardSnap is the snapshot payload: one shard's full durable state at
// compaction. NextID records the global allocator's high-water mark as seen
// at snapshot time, so a boot never re-issues an ID any shard handed out.
type shardSnap struct {
	NextID int              `json:"next_id"`
	Jobs   []persistedJob   `json:"jobs"`
	Agents []persistedAgent `json:"agents"`
}

// store binds one shard to its state directory. All methods are called with
// the shard's mu held, which also serializes WAL appends with the state
// mutations they describe.
type store struct {
	dir          string
	wal          *snap.WAL
	compactEvery int64
	compactions  int64
	snapTime     time.Time // last snapshot write (or boot, if none yet)
	recovered    snap.RecoverStats
	hadSnapshot  bool
}

// shardDirName returns the per-shard state subdirectory name.
func shardDirName(idx int) string { return fmt.Sprintf("shard-%d", idx) }

// openStores prepares the sharded state directory and recovers every shard.
// A state dir is bound to the shard count that created it: VC→shard routing
// is a hash mod the count, so booting the same directory with a different
// count would silently misroute recovered tenants — refuse instead.
func (s *Server) openStores(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("lucidd: state dir: %w", err)
	}
	existing := 0
	for {
		if _, err := os.Stat(filepath.Join(dir, shardDirName(existing))); err != nil {
			break
		}
		existing++
	}
	if existing > 0 && existing != len(s.shards) {
		return fmt.Errorf("lucidd: state dir %s holds %d shard(s) but -shards is %d; "+
			"a state dir is bound to the shard count that created it", dir, existing, len(s.shards))
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.openStore(filepath.Join(dir, shardDirName(sh.idx)))
		sh.mu.Unlock()
		if err != nil {
			return fmt.Errorf("lucidd: shard %d: %w", sh.idx, err)
		}
	}
	// Publish aggregate recovery stats to the metrics registry.
	records, torn, _ := s.Recovery()
	fromSnap := 0
	for _, r := range s.ShardRecoveries() {
		if r.FromSnapshot {
			fromSnap++
		}
	}
	s.met.recRecords.Set(float64(records))
	s.met.recTorn.Set(float64(torn))
	s.met.recSnap.Set(float64(fromSnap))
	return nil
}

// openStore loads this shard's snapshot (if any), replays its WAL, and
// leaves the shard ready to log. Called with sh.mu held from openStores,
// before the server is shared.
func (sh *shard) openStore(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("state dir: %w", err)
	}
	st := &store{dir: dir, compactEvery: sh.srv.opts.CompactEvery, snapTime: sh.srv.opts.Clock()}
	if st.compactEvery <= 0 {
		st.compactEvery = defaultCompactEvery
	}

	snapPath := filepath.Join(dir, snapFileName)
	if raw, err := os.ReadFile(snapPath); err == nil {
		kind, payload, rerr := snap.ReadEnvelope(bytes.NewReader(raw))
		if rerr != nil {
			return fmt.Errorf("read snapshot %s: %w", snapPath, rerr)
		}
		if kind != snapKind {
			return fmt.Errorf("snapshot %s has kind %q, want %q", snapPath, kind, snapKind)
		}
		var ss shardSnap
		if jerr := json.Unmarshal(payload, &ss); jerr != nil {
			return fmt.Errorf("decode snapshot: %w", jerr)
		}
		sh.loadSnapLocked(ss)
		st.hadSnapshot = true
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("read snapshot: %w", err)
	}

	wal, stats, err := snap.OpenWAL(filepath.Join(dir, walFileName), func(payload []byte) error {
		var op walOp
		if jerr := json.Unmarshal(payload, &op); jerr != nil {
			return fmt.Errorf("decode wal op: %w", jerr)
		}
		sh.applyOpLocked(op)
		return nil
	})
	if err != nil {
		return err
	}
	wal.OnSync = func(d time.Duration) { sh.srv.met.walFsync.Observe(d.Seconds()) }
	st.wal = wal
	st.recovered = stats
	sh.store = st
	return nil
}

// loadSnapLocked overwrites the shard state from a snapshot payload,
// recomputing the derived score/estimate fields.
func (sh *shard) loadSnapLocked(ss shardSnap) {
	sh.srv.bumpNextID(ss.NextID - 1)
	sh.jobs = make(map[int]*jobState, len(ss.Jobs))
	sh.order = make([]*jobState, 0, len(ss.Jobs))
	profiled := 0
	for _, pj := range ss.Jobs {
		js := &jobState{ID: pj.ID, Name: pj.Name, User: pj.User, VC: pj.VC,
			GPUs: pj.GPUs, AMP: pj.AMP, Samples: pj.Samples, Profile: pj.Profile,
			Restarts: pj.Restarts}
		sh.jobs[js.ID] = js
		sh.srv.jobShard.Store(js.ID, sh)
		sh.srv.bumpNextID(js.ID)
		sh.refreshLocked(js)
		js.prio = float64(js.GPUs) * js.EstSec
		sh.order = append(sh.order, js)
		if js.Samples >= minSamples {
			profiled++
		}
	}
	// One O(n log n) rebuild at snapshot load; incremental from here on.
	sort.Slice(sh.order, func(i, j int) bool { return queueLess(sh.order[i], sh.order[j]) })
	sh.agents = make(map[string]*agentState, len(ss.Agents))
	sh.aorder = make([]*agentState, 0, len(ss.Agents))
	sh.lruHead, sh.lruTail = nil, nil
	for _, pa := range ss.Agents {
		a := &agentState{Name: pa.Name, VC: pa.VC, Node: pa.Node,
			LastSeen: time.Unix(0, pa.UnixNano)}
		a.refreshFrag()
		sh.agents[pa.Name] = a
		sh.aorder = append(sh.aorder, a)
	}
	sort.Slice(sh.aorder, func(i, j int) bool { return agentLess(sh.aorder[i], sh.aorder[j]) })
	// Rebuild the heartbeat-order list oldest-first (name as the
	// deterministic tie-break for equal stamps) so the prefix invariant the
	// O(evicted) sweep relies on holds from the first post-boot request.
	byBeat := make([]*agentState, len(sh.aorder))
	copy(byBeat, sh.aorder)
	sort.SliceStable(byBeat, func(i, j int) bool { return byBeat[i].LastSeen.Before(byBeat[j].LastSeen) })
	for _, a := range byBeat {
		sh.lruPushBackLocked(a)
	}
	sh.nJobs.Store(int64(len(sh.jobs)))
	sh.nProfiled.Store(int64(profiled))
	sh.nAgents.Store(int64(len(sh.agents)))
}

// applyOpLocked replays one WAL op through the same mutation paths the
// handlers use. Replay is lenient about dangling references (a metrics op for
// a job evicted by a later compaction cannot happen — the WAL resets at every
// snapshot — but leniency costs nothing and keeps recovery total).
func (sh *shard) applyOpLocked(op walOp) {
	switch op.Op {
	case "job":
		js := &jobState{ID: op.ID, Name: op.Name, User: op.User, VC: op.VC,
			GPUs: op.GPUs, AMP: op.AMP}
		sh.applyJobLocked(js)
	case "metrics":
		if js, ok := sh.jobs[op.ID]; ok {
			sh.applySampleLocked(js, op.GPUUtil, op.GPUMemMB, op.GPUMemUtil)
		}
	case "agent":
		sh.applyAgentLocked(op.Name, op.VC, op.Node, time.Unix(0, op.UnixNano))
	case "evict-agent":
		delete(sh.agents, op.Name)
		sh.nAgents.Store(int64(len(sh.agents)))
	case "fail-job":
		if js, ok := sh.jobs[op.ID]; ok {
			sh.applyFailJobLocked(js)
		}
	}
}

// logOpLocked appends op to this shard's WAL (if durability is on). sync
// forces an inline fsync — used for ops that must survive a crash once
// acknowledged. After the append it compacts if the WAL has outgrown the
// threshold.
func (sh *shard) logOpLocked(op walOp, sync bool) error {
	if sh.store == nil {
		return nil
	}
	payload, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("lucidd: encode wal op: %w", err)
	}
	t := sh.srv.met.reg.StartTimer(sh.srv.met.walAppend)
	err = sh.store.wal.Append(payload, sync)
	t.Stop()
	if err != nil {
		return err
	}
	if sh.store.wal.Records() >= sh.store.compactEvery {
		if err := sh.compactLocked(); err != nil {
			return err
		}
		sh.store.compactions++
	}
	return nil
}

// compactLocked writes a fresh shard snapshot (atomic tmp+rename) and resets
// the shard's WAL. On any error the old snapshot and WAL are left intact —
// recovery simply replays a longer log.
func (sh *shard) compactLocked() error {
	if sh.store == nil {
		return nil
	}
	t := sh.srv.met.reg.StartTimer(sh.srv.met.snapshot)
	defer t.Stop()
	ss := shardSnap{NextID: int(sh.srv.nextID.Load()) + 1}
	for _, js := range sh.snapshotLocked() {
		ss.Jobs = append(ss.Jobs, persistedJob{ID: js.ID, Name: js.Name,
			User: js.User, VC: js.VC, GPUs: js.GPUs, AMP: js.AMP,
			Samples: js.Samples, Profile: js.Profile, Restarts: js.Restarts})
	}
	for _, name := range sortedAgentNames(sh.agents) {
		a := sh.agents[name]
		ss.Agents = append(ss.Agents, persistedAgent{Name: a.Name, VC: a.VC,
			Node: a.Node, UnixNano: a.LastSeen.UnixNano()})
	}
	payload, err := json.Marshal(ss)
	if err != nil {
		return fmt.Errorf("lucidd: encode snapshot: %w", err)
	}
	var buf bytes.Buffer
	if err := snap.WriteEnvelope(&buf, snapKind, payload); err != nil {
		return err
	}
	final := filepath.Join(sh.store.dir, snapFileName)
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, buf.Bytes()); err != nil {
		return fmt.Errorf("lucidd: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("lucidd: install snapshot: %w", err)
	}
	if err := sh.store.wal.Reset(); err != nil {
		return fmt.Errorf("lucidd: reset wal after compaction: %w", err)
	}
	sh.store.snapTime = sh.srv.opts.Clock()
	sh.store.hadSnapshot = true
	sh.srv.met.compacts.Inc()
	return nil
}

// closeStoreLocked snapshots this shard once more (so restart replays
// nothing) and closes its WAL. Called from Shutdown after the drain
// completes.
func (sh *shard) closeStoreLocked() error {
	if sh.store == nil {
		return nil
	}
	err := sh.compactLocked()
	if cerr := sh.store.wal.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFileSync writes data and fsyncs before closing, so the following
// rename publishes fully-durable bytes.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func sortedAgentNames(agents map[string]*agentState) []string {
	names := make([]string, 0, len(agents))
	for name := range agents {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
