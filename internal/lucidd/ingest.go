package lucidd

import (
	"context"
	"time"

	"repro/internal/dtrace"
)

// Async telemetry ingest. When Options.IngestQueue > 0, POST /metrics
// samples and POST /agents heartbeats stop applying state under the shard
// mutex on the request path. Instead the handler validates, builds the
// walOp, and enqueues it on the owning shard's bounded queue; a single
// applier goroutine per shard drains the queue in batches, applying ops
// under one mutex acquisition and coalescing their WAL appends into one
// fsync per batch. The request is acknowledged with 202 Accepted at enqueue
// time — or refused with 429 + Retry-After when the queue is full
// (backpressure), so an overloaded shard sheds telemetry load explicitly
// instead of queueing unboundedly.
//
// Ordering and visibility contract:
//
//   - Per-shard FIFO: ops are applied in exact enqueue order, so a job's
//     samples fold into its running-mean profile in the same order the
//     server acknowledged them — bit-identical to synchronous ingest.
//   - Flush barriers: a barrier enqueued behind the acked ops blocks until
//     the applier has applied AND fsynced everything ahead of it. Read
//     paths (/jobs, /schedule, /agents), /chaos mutations and Shutdown all
//     barrier first, so every acknowledged sample is observable there and
//     no chaos op can overtake telemetry it arrived after.
//   - Durability: an acked-but-still-queued op is in memory only, same
//     class as sync mode's unsynced WAL tail (telemetry the agents re-send
//     anyway); an op a barrier has flushed is on disk. Recovery replays
//     exactly the flushed set per shard.
//
// The throughput win on the request path is O(1) enqueue instead of
// lock + apply + WAL append, and on the apply path one fsync and one stale
// sweep per batch instead of per heartbeat.

// ingestItem is one queue entry: either a telemetry op or a flush barrier
// (barrier != nil), never both.
type ingestItem struct {
	op      walOp
	barrier chan struct{}
}

// defaultIngestBatch caps ops applied per mutex acquisition / WAL fsync.
const defaultIngestBatch = 256

// startApplier arms the shard's ingest queue and starts its applier.
func (sh *shard) startApplier(queue, batch int) {
	sh.ingestQ = make(chan ingestItem, queue)
	sh.applierDone = make(chan struct{})
	sh.batchMax = batch
	go sh.applier()
}

// enqueue attempts a non-blocking put; false means the queue is at its
// high-water mark and the caller must refuse the request with 429.
func (sh *shard) enqueue(op walOp) bool {
	select {
	case sh.ingestQ <- ingestItem{op: op}:
		return true
	default:
		return false
	}
}

// flush enqueues a barrier and blocks until the applier has applied and
// fsynced every op acknowledged before it. No-op in sync mode. Must not be
// called after Shutdown has closed the queue (request paths cannot get
// here then — the drain gate refuses them before the handler runs).
func (sh *shard) flush() {
	if sh.ingestQ == nil {
		return
	}
	done := make(chan struct{})
	sh.ingestQ <- ingestItem{barrier: done}
	<-done
}

// Flush blocks until every telemetry op acknowledged before the call is
// applied and durable on every shard — the explicit cluster-wide barrier
// (parity tests use it before comparing bodies). No-op in sync mode; must
// not be called concurrently with or after Shutdown.
func (s *Server) Flush() {
	for _, sh := range s.shards {
		sh.flush()
	}
}

// applier is the shard's ingest loop: block for one item, then opportunistically
// collect up to batchMax-1 more without blocking, apply the batch under one
// mutex acquisition with one fsync, and signal any barrier that ended the
// batch. Exits when the queue is closed and fully drained (Shutdown), so a
// graceful drain never drops an acknowledged op.
func (sh *shard) applier() {
	defer close(sh.applierDone)
	batch := make([]walOp, 0, sh.batchMax)
	for {
		item, ok := <-sh.ingestQ
		if !ok {
			return
		}
		batch = batch[:0]
		var barrier chan struct{}
		closed := false
		if item.barrier != nil {
			barrier = item.barrier
		} else {
			batch = append(batch, item.op)
		}
		for barrier == nil && len(batch) < sh.batchMax {
			select {
			case next, more := <-sh.ingestQ:
				if !more {
					closed = true
				} else if next.barrier != nil {
					barrier = next.barrier
				} else {
					batch = append(batch, next.op)
					continue
				}
			default:
			}
			break
		}
		sh.applyBatch(batch)
		if barrier != nil {
			close(barrier)
		}
		if closed {
			// ok=false is only observable once the closed queue is empty,
			// so everything acknowledged has been applied and fsynced.
			return
		}
	}
}

// applyBatch applies queued ops under one mutex acquisition: per op the
// same apply/log mutators the sync path uses (WAL appends unsynced), one
// stale-agent sweep for the whole batch, then a single fsync covering every
// append. A bare barrier (empty batch) still fsyncs, upgrading previously
// applied-but-unsynced ops to durable before the barrier releases.
func (sh *shard) applyBatch(ops []walOp) {
	now := sh.srv.opts.Clock()
	met := sh.srv.met
	var events []dtrace.Event
	sh.mu.Lock()
	swept := false
	for _, op := range ops {
		switch op.Op {
		case "metrics":
			js, ok := sh.jobs[op.ID]
			if !ok {
				continue // job evicted between ack and apply
			}
			crossed := sh.applySampleLocked(js, op.GPUUtil, op.GPUMemMB, op.GPUMemUtil)
			if err := sh.logOpLocked(op, false); err != nil {
				met.ingestErrors.Inc()
			}
			if crossed {
				events = append(events, dtrace.Event{Job: js.ID,
					Action: dtrace.ActProfileStop, Reason: "min-samples-reached",
					VC: js.VC, GPUs: js.GPUs, Score: js.Profile.GPUUtil})
			}
		case "agent":
			// One sweep per batch is plenty (and it is O(evicted) anyway —
			// the heartbeat-order list keeps the stale set a poppable
			// prefix, so sweeping costs nothing at any fleet size).
			if !swept {
				sh.sweepStaleLocked(now)
				swept = true
			}
			_, known := sh.applyAgentLocked(op.Name, op.VC, op.Node, time.Unix(0, op.UnixNano))
			if err := sh.logOpLocked(op, false); err != nil {
				met.ingestErrors.Inc()
			}
			if !known {
				events = append(events, dtrace.Event{Action: dtrace.ActNodeRepair,
					Reason: "agent-online", Node: op.Node + 1})
			}
		}
	}
	if sh.store != nil {
		if err := sh.store.wal.Sync(); err != nil {
			met.ingestErrors.Inc()
		}
	}
	sh.mu.Unlock()
	// The recorder is internally synchronized; keep it outside the shard lock
	// like the sync handlers do.
	for i := range events {
		sh.srv.rec.Record(events[i])
	}
	if len(ops) > 0 {
		met.ingestApplied.Add(float64(len(ops)))
		met.ingestBatch.Observe(float64(len(ops)))
	}
}

// stopAppliers closes every ingest queue and waits for the appliers to
// drain them (apply + fsync every acknowledged op). Called from Shutdown
// after the in-flight drain: no producer can exist anymore. Idempotent.
func (s *Server) stopAppliers(ctx context.Context) error {
	if !s.appliersStopped.CompareAndSwap(false, true) {
		return nil
	}
	for _, sh := range s.shards {
		if sh.ingestQ != nil {
			close(sh.ingestQ)
		}
	}
	for _, sh := range s.shards {
		if sh.applierDone == nil {
			continue
		}
		select {
		case <-sh.applierDone:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
