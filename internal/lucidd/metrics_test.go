package lucidd

import (
	"net/http"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestMetricsScrapeRoundTrip drives a scripted submit → sample → schedule
// sequence against a durable server, then scrapes GET /metrics and checks
// the Prometheus text covers the three instrumented layers: per-endpoint
// request latency and status codes, WAL append+fsync latency, and the
// population gauges.
func TestMetricsScrapeRoundTrip(t *testing.T) {
	s, err := NewServerWith(Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s, http.MethodPost, "/jobs",
		`{"name":"train-v1","user":"alice","vc":"vc0","gpus":2}`); rec.Code != http.StatusCreated {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body)
	}
	for i := 0; i < 3; i++ {
		if rec := do(t, s, http.MethodPost, "/metrics",
			`{"job":1,"gpu_util":55,"gpu_mem_mb":2600,"gpu_mem_util":38}`); rec.Code != http.StatusOK {
			t.Fatalf("sample %d: %d %s", i, rec.Code, rec.Body)
		}
	}
	if rec := do(t, s, http.MethodPost, "/agents", `{"name":"agent-0","node":0}`); rec.Code != http.StatusOK {
		t.Fatalf("agent: %d %s", rec.Code, rec.Body)
	}
	if rec := do(t, s, http.MethodGet, "/schedule", ""); rec.Code != http.StatusOK {
		t.Fatalf("schedule: %d %s", rec.Code, rec.Body)
	}
	// One deliberate 404 to check error codes are counted too.
	if rec := do(t, s, http.MethodPost, "/metrics", `{"job":99}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job: %d", rec.Code)
	}

	rec := do(t, s, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("scrape: %d %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("content type = %q", ct)
	}
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE lucidd_http_requests_total counter",
		`lucidd_http_requests_total{path="/jobs",method="POST",code="201"} 1`,
		`lucidd_http_requests_total{path="/metrics",method="POST",code="200"} 3`,
		`lucidd_http_requests_total{path="/metrics",method="POST",code="404"} 1`,
		`lucidd_http_requests_total{path="/schedule",method="GET",code="200"} 1`,
		`lucidd_http_request_seconds_bucket{path="/jobs",le="+Inf"} 1`,
		"# TYPE lucidd_wal_append_seconds histogram",
		"# TYPE lucidd_wal_fsync_seconds histogram",
		"lucidd_queue_depth 1",
		"lucidd_jobs_profiled 1",
		"lucidd_agents 1",
		"lucidd_recovered_wal_records 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Submit + 3 samples + heartbeat + failed-sample-404 (not logged) = 5
	// appends; the submit fsyncs inline.
	appends := s.met.walAppend.Count()
	if appends != 5 {
		t.Errorf("wal append observations = %d, want 5", appends)
	}
	if s.met.walFsync.Count() == 0 {
		t.Error("no wal fsync observed despite synced job submission")
	}
}

// TestMetricsPathLabelBounded collapses unknown paths into "other" so
// scanners cannot explode the label cardinality.
func TestMetricsPathLabelBounded(t *testing.T) {
	s := testServer(t)
	do(t, s, http.MethodGet, "/favicon.ico", "")
	do(t, s, http.MethodGet, "/secret/../../etc/passwd", "")
	out := s.Metrics().Render()
	if !strings.Contains(out, `path="other"`) {
		t.Fatal("unknown paths not collapsed into \"other\"")
	}
	for _, leak := range []string{"favicon", "passwd"} {
		if strings.Contains(out, leak) {
			t.Fatalf("raw path %q leaked into exposition", leak)
		}
	}
}
