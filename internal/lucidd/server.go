// Package lucidd implements the HTTP control plane behind cmd/lucidd: a
// deployable skeleton of Lucid's non-intrusive workflow. Users submit job
// metadata, node agents push NVIDIA-SMI-style metric samples, and the
// server maintains profiles, Sharing Scores, duration estimates and a
// priority-ordered queue — all without ever touching user training code,
// which is the paper's A1/A2 deployment story.
package lucidd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/trace"
	"repro/internal/workload"
)

// jobState is the server's view of one registered job.
type jobState struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	User    string  `json:"user"`
	VC      string  `json:"vc"`
	GPUs    int     `json:"gpus"`
	AMP     bool    `json:"amp"`
	Samples int     `json:"samples"`
	Profile profile `json:"profile"`
	Score   string  `json:"score"`
	EstSec  float64 `json:"estimate_sec"`
}

// profile mirrors the three non-intrusive metrics.
type profile struct {
	GPUUtil    float64 `json:"gpu_util"`
	GPUMemMB   float64 `json:"gpu_mem_mb"`
	GPUMemUtil float64 `json:"gpu_mem_util"`
}

// minSamples before a job is considered profiled.
const minSamples = 3

// traceKeep bounds the in-memory decision-trace window the /trace endpoint
// serves; summary counters still cover the server's whole lifetime.
const traceKeep = 4096

// Server is the HTTP control plane.
type Server struct {
	mu       sync.Mutex
	nextID   int
	jobs     map[int]*jobState
	analyzer *core.PackingAnalyzer
	est      *core.WorkloadEstimator
	mux      *http.ServeMux
	// rec is the decision-trace flight recorder behind /trace: job
	// registrations, profile completions and every /schedule ordering
	// decision are recorded with their reasoning. The recorder is
	// internally synchronized; it is used outside s.mu.
	rec *dtrace.Recorder
}

// NewServer trains the interpretable models (on a synthetic history month,
// standing in for the operator's real logs) and wires the routes.
func NewServer() (*Server, error) {
	analyzer, err := core.TrainPackingAnalyzer(workload.DefaultThresholds)
	if err != nil {
		return nil, err
	}
	spec := trace.Venus()
	spec.NumJobs = 3000
	hist := trace.NewGenerator(spec).Emit(0)
	est, err := core.TrainWorkloadEstimator(hist.Jobs)
	if err != nil {
		return nil, err
	}
	rec := dtrace.New()
	rec.SetKeep(traceKeep)
	s := &Server{
		nextID:   1,
		jobs:     map[int]*jobState{},
		analyzer: analyzer,
		est:      est,
		mux:      http.NewServeMux(),
		rec:      rec,
	}
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/schedule", s.handleSchedule)
	s.mux.HandleFunc("/models/packing", s.handlePackingModel)
	s.mux.HandleFunc("/trace", s.handleTrace)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// handleJobs registers a job (POST) or lists jobs (GET).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			User string `json:"user"`
			VC   string `json:"vc"`
			GPUs int    `json:"gpus"`
			AMP  bool   `json:"amp"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if req.Name == "" || req.GPUs <= 0 {
			http.Error(w, "name and positive gpus required", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		id := s.nextID
		s.nextID++
		js := &jobState{ID: id, Name: req.Name, User: req.User, VC: req.VC,
			GPUs: req.GPUs, AMP: req.AMP, Score: workload.Jumbo.String()}
		s.jobs[id] = js
		s.refreshLocked(js)
		s.mu.Unlock()
		s.rec.Record(dtrace.Event{Job: id, Action: dtrace.ActRelease,
			Reason: "registered", VC: js.VC, GPUs: js.GPUs})
		writeJSON(w, http.StatusCreated, js)
	case http.MethodGet:
		s.mu.Lock()
		out := s.snapshotLocked()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleMetrics ingests one NVIDIA-SMI-style sample.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Job        int     `json:"job"`
		GPUUtil    float64 `json:"gpu_util"`
		GPUMemMB   float64 `json:"gpu_mem_mb"`
		GPUMemUtil float64 `json:"gpu_mem_util"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[req.Job]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
		return
	}
	// Running mean over samples — what a DCGM poller would maintain.
	n := float64(js.Samples)
	js.Profile.GPUUtil = (js.Profile.GPUUtil*n + req.GPUUtil) / (n + 1)
	js.Profile.GPUMemMB = (js.Profile.GPUMemMB*n + req.GPUMemMB) / (n + 1)
	js.Profile.GPUMemUtil = (js.Profile.GPUMemUtil*n + req.GPUMemUtil) / (n + 1)
	js.Samples++
	s.refreshLocked(js)
	if js.Samples == minSamples {
		// The job just crossed the profiling threshold: from here on the
		// analyzer scores it from real metrics instead of the Jumbo prior.
		s.rec.Record(dtrace.Event{Job: js.ID, Action: dtrace.ActProfileStop,
			Reason: "min-samples-reached", VC: js.VC, GPUs: js.GPUs,
			Score: js.Profile.GPUUtil})
	}
	writeJSON(w, http.StatusOK, js)
}

// refreshLocked recomputes score and estimate from the current state.
func (s *Server) refreshLocked(js *jobState) {
	j := job.New(js.ID, js.Name, js.User, js.VC, js.GPUs, 0, 0, workload.Config{})
	j.AMP = js.AMP
	if js.Samples >= minSamples {
		j.Profiled = true
		j.Profile = workload.Profile{
			GPUUtil:    js.Profile.GPUUtil,
			GPUMemMB:   js.Profile.GPUMemMB,
			GPUMemUtil: js.Profile.GPUMemUtil,
			AMP:        js.AMP,
		}
	}
	js.Score = s.analyzer.ScoreJob(j).String()
	s.est.Invalidate(j.ID)
	js.EstSec = s.est.EstimateSec(j)
}

// handleSchedule returns the queue in Lucid priority order
// (GPUs × estimated duration, ascending — Algorithm 2).
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	out := s.snapshotLocked()
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		pi := float64(out[i].GPUs) * out[i].EstSec
		pj := float64(out[j].GPUs) * out[j].EstSec
		if pi != pj {
			return pi < pj
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > 0 {
		// Record the ordering decision: who leads the queue and why, plus
		// the runners-up with their priority keys as counterfactuals.
		head := out[0]
		ev := dtrace.Event{Job: head.ID, Action: dtrace.ActOrder,
			Reason: "min-gpu-demand-x-estimate", VC: head.VC, GPUs: head.GPUs,
			Score: float64(head.GPUs) * head.EstSec}
		for _, js := range out[1:] {
			if len(ev.Alternatives) >= s.rec.TopK() {
				break
			}
			ev.Alternatives = append(ev.Alternatives, dtrace.Alternative{
				Job: js.ID, Score: float64(js.GPUs) * js.EstSec,
				Reason: "behind-in-queue"})
		}
		s.rec.Record(ev)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTrace serves the decision-trace flight recorder: a JSON document
// with the deterministic digest, the lifetime summary and the retained
// event window, or the raw retained events as JSONL with ?format=jsonl.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.rec.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Digest  string         `json:"digest"`
		Count   int64          `json:"count"`
		Summary dtrace.Summary `json:"summary"`
		Events  []dtrace.Event `json:"events"`
	}{
		Digest:  s.rec.Digest(),
		Count:   s.rec.Summary().Total,
		Summary: s.rec.Summary(),
		Events:  s.rec.Events(),
	})
}

// handlePackingModel renders the decision tree (system transparency, A5).
func (s *Server) handlePackingModel(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.analyzer.Render())
	imp := s.analyzer.FeatureImportances()
	for i, name := range s.analyzer.FeatureNames() {
		fmt.Fprintf(w, "importance %-36s %.3f\n", name, imp[i])
	}
}

func (s *Server) snapshotLocked() []*jobState {
	out := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		cp := *js
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
