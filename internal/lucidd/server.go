// Package lucidd implements the HTTP control plane behind cmd/lucidd: a
// deployable skeleton of Lucid's non-intrusive workflow. Users submit job
// metadata, node agents push NVIDIA-SMI-style metric samples, and the
// server maintains profiles, Sharing Scores, duration estimates and a
// priority-ordered queue — all without ever touching user training code,
// which is the paper's A1/A2 deployment story.
//
// The control plane is sharded for multi-tenant scale: state is partitioned
// into per-VC shards (Options.Shards), each with its own mutex, estimator
// clone and — when durability is on — its own WAL and snapshot directory.
// A routing front door maps each mutating request to exactly one shard,
// fans out and merges for cluster-wide reads, and serves read-mostly paths
// (GET /metrics, /healthz) from atomics without touching any shard lock.
package lucidd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// jobState is the server's view of one registered job.
type jobState struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	User    string  `json:"user"`
	VC      string  `json:"vc"`
	GPUs    int     `json:"gpus"`
	AMP     bool    `json:"amp"`
	Samples int     `json:"samples"`
	Profile profile `json:"profile"`
	Score   string  `json:"score"`
	EstSec  float64 `json:"estimate_sec"`
	// Restarts counts fault-injected kills (/chaos fail-job). A killed job
	// loses its profile — the next samples rebuild it from scratch, exactly
	// like a requeued job re-entering the simulator's profiler.
	Restarts int `json:"restarts"`

	// prio caches the job's position key in its shard's incremental priority
	// index (GPUs × EstSec at the last reposition). Unexported: it is an
	// index implementation detail, never serialized, and only read or
	// written under the owning shard's mutex.
	prio float64
}

// agentState is one registered node agent, kept alive by heartbeats. The VC
// is the agent's routing key: it decides which shard owns the agent.
type agentState struct {
	Name     string    `json:"name"`
	VC       string    `json:"vc,omitempty"`
	Node     int       `json:"node"` // 0-based node index the agent reports for
	LastSeen time.Time `json:"last_seen"`

	// frag is the agent's pre-marshaled listing fragment, refreshed by
	// refreshFrag on every mutation (shard mutex held). Replaced wholesale,
	// never mutated in place, so readers may retain it after unlock.
	frag []byte
	// Intrusive heartbeat-order list links (shard mutex held). Heartbeats
	// stamp a monotone clock, so the shard's agents in list order are in
	// LastSeen order and the stale set is always a prefix — the staleness
	// sweep pops the front instead of scanning the whole table.
	lruPrev, lruNext *agentState
}

// profile mirrors the three non-intrusive metrics.
type profile struct {
	GPUUtil    float64 `json:"gpu_util"`
	GPUMemMB   float64 `json:"gpu_mem_mb"`
	GPUMemUtil float64 `json:"gpu_mem_util"`
}

// minSamples before a job is considered profiled.
const minSamples = 3

// traceKeep bounds the in-memory decision-trace window the /trace endpoint
// serves; summary counters still cover the server's whole lifetime.
const traceKeep = 4096

// Options hardens the server against hostile or failing clients. The zero
// value selects production defaults.
type Options struct {
	// Shards is the number of per-VC state shards. VCs are routed to shards
	// by stable hash, so with Shards >= the number of VCs each VC owns a
	// shard. 0 or 1 selects the single-shard (fully serialized) layout.
	// A state dir, once created, is bound to its shard count.
	Shards int
	// MaxBodyBytes caps every request body; larger payloads get 413.
	// Defaults to 1 MiB.
	MaxBodyBytes int64
	// AgentStaleAfter is the heartbeat-staleness window: agents silent for
	// longer are evicted (their node is presumed failed). Defaults to 90s.
	AgentStaleAfter time.Duration
	// EnableChaos mounts the POST /chaos fault-injection endpoint used by
	// integration tests. Off by default — never expose it in production.
	EnableChaos bool
	// StateDir enables durability: mutating requests are WAL-logged there
	// and compacted into snapshots, and the server recovers the directory's
	// state on construction. Each shard keeps its own WAL and snapshot under
	// <StateDir>/shard-<idx>/ and recovers independently. Empty means
	// in-memory only.
	StateDir string
	// CompactEvery overrides the per-shard WAL-records-per-snapshot
	// compaction threshold (tests use tiny values). 0 selects the default.
	CompactEvery int64
	// IngestQueue > 0 enables batched async telemetry ingest: POST /metrics
	// samples and POST /agents heartbeats are acknowledged with 202 after
	// landing on a per-shard bounded queue of this capacity, drained by a
	// shard-owned applier that coalesces WAL appends into batched fsyncs.
	// A full queue refuses the POST with 429 + Retry-After (backpressure).
	// Read paths and Shutdown insert flush barriers, so every acknowledged
	// sample is observed there — see ingest.go for the full contract.
	// 0 (default) selects synchronous ingest.
	IngestQueue int
	// IngestBatch caps how many queued ops the applier applies per mutex
	// acquisition and fsync. 0 selects the default (256). Only meaningful
	// with IngestQueue > 0.
	IngestBatch int
	// Clock substitutes time.Now so staleness tests are deterministic.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.AgentStaleAfter == 0 {
		o.AgentStaleAfter = 90 * time.Second
	}
	if o.IngestQueue > 0 && o.IngestBatch <= 0 {
		o.IngestBatch = defaultIngestBatch
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Server is the HTTP control plane: a routing front door over per-VC shards.
type Server struct {
	opts Options
	// shards holds the per-VC state machines; shardFor routes a VC here.
	// The slice is immutable after construction.
	shards []*shard
	// nextID is the global job-ID allocator (last allocated ID): IDs are
	// cluster-unique regardless of which shard owns the job, and — because
	// allocation is a single atomic increment — a given request sequence
	// yields the same IDs at any shard count (the shard-parity contract).
	nextID atomic.Int64
	// jobShard routes a job ID to the shard owning it (int -> *shard);
	// maintained on submit, WAL replay and snapshot load. Sample ingest is
	// the hot path that needs it: agents report per-job, not per-VC.
	jobShard sync.Map
	analyzer *core.PackingAnalyzer
	mux      *http.ServeMux
	// rec is the decision-trace flight recorder behind /trace: job
	// registrations, profile completions and every /schedule ordering
	// decision are recorded with their reasoning. The recorder is
	// internally synchronized; it is used outside shard locks.
	rec *dtrace.Recorder
	// met is the server's own observability: GET /metrics serves it as
	// Prometheus text. Always non-nil; instruments are internally
	// synchronized and never require a shard lock.
	met     *serverMetrics
	started time.Time

	// Graceful-shutdown state: once draining flips, new requests are refused
	// with 503 while in-flight ones (tracked by inflight) run to completion.
	draining atomic.Bool
	inflight atomic.Int64
	// delayMS is a chaos knob: artificial per-request latency, letting tests
	// hold requests in flight deterministically while Shutdown drains.
	delayMS atomic.Int64
	// appliersStopped guards the one-shot close of the ingest queues (a
	// second Shutdown must not close them again).
	appliersStopped atomic.Bool
}

// Model training is deterministic and expensive, so every server shares one
// pass: the packing analyzer is immutable at inference and shared outright;
// the estimator caches per-job state, so each shard gets its own Clone.
var training struct {
	sync.Once
	analyzer *core.PackingAnalyzer
	est      *core.WorkloadEstimator
	err      error
}

func trainShared() error {
	training.Do(func() {
		training.analyzer, training.err = core.TrainPackingAnalyzer(workload.DefaultThresholds)
		if training.err != nil {
			return
		}
		spec := trace.Venus()
		spec.NumJobs = 3000
		hist := trace.NewGenerator(spec).Emit(0)
		training.est, training.err = core.TrainWorkloadEstimator(hist.Jobs)
	})
	return training.err
}

// NewServer builds a server with default hardening options.
func NewServer() (*Server, error) { return NewServerWith(Options{}) }

// NewServerWith trains the interpretable models (once per process, on a
// synthetic history month standing in for the operator's real logs), builds
// the shard set and wires the routes.
func NewServerWith(opts Options) (*Server, error) {
	if err := trainShared(); err != nil {
		return nil, err
	}
	rec := dtrace.New()
	rec.SetKeep(traceKeep)
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		analyzer: training.analyzer,
		mux:      http.NewServeMux(),
		rec:      rec,
	}
	s.met = newServerMetrics(opts.Clock, opts.Shards)
	s.shards = make([]*shard, opts.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(i, s)
	}
	s.started = s.opts.Clock()
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/schedule", s.handleSchedule)
	s.mux.HandleFunc("/agents", s.handleAgents)
	s.mux.HandleFunc("/models/packing", s.handlePackingModel)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	if s.opts.EnableChaos {
		s.mux.HandleFunc("/chaos", s.handleChaos)
	}
	if s.opts.StateDir != "" {
		// No concurrency yet — the server isn't serving — but each shard's
		// openStore routes through the same *Locked apply functions the
		// handlers use, and each shard recovers independently: one shard's
		// torn WAL tail never touches a sibling's state.
		if err := s.openStores(s.opts.StateDir); err != nil {
			return nil, err
		}
	}
	if s.opts.IngestQueue > 0 {
		// After recovery: the appliers must never race WAL replay.
		for _, sh := range s.shards {
			sh.startApplier(s.opts.IngestQueue, s.opts.IngestBatch)
		}
	}
	return s, nil
}

// ShardRecovery reports what one shard's durability layer found on boot.
type ShardRecovery struct {
	Shard        int   `json:"shard"`
	Records      int   `json:"records"`
	TornBytes    int64 `json:"torn_bytes"`
	FromSnapshot bool  `json:"from_snapshot"`
}

// ShardRecoveries reports per-shard boot recovery stats (empty when
// durability is off).
func (s *Server) ShardRecoveries() []ShardRecovery {
	var out []ShardRecovery
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.store != nil {
			out = append(out, ShardRecovery{Shard: sh.idx,
				Records:      sh.store.recovered.Records,
				TornBytes:    sh.store.recovered.TornBytes,
				FromSnapshot: sh.store.hadSnapshot})
		}
		sh.mu.Unlock()
	}
	return out
}

// Recovery aggregates boot recovery across shards: total WAL records
// replayed, total torn bytes truncated, and whether any shard loaded a
// snapshot. Zero values when durability is off.
func (s *Server) Recovery() (records int, tornBytes int64, fromSnapshot bool) {
	for _, r := range s.ShardRecoveries() {
		records += r.Records
		tornBytes += r.TornBytes
		fromSnapshot = fromSnapshot || r.FromSnapshot
	}
	return records, tornBytes, fromSnapshot
}

// Shards reports the configured shard count.
func (s *Server) Shards() int { return len(s.shards) }

// ServeHTTP implements http.Handler. It is the hardening choke point: every
// request is counted for drain tracking, refused while draining, optionally
// delayed (chaos), and body-capped before reaching a handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	// Instrument at the choke point so every outcome — drain 503s, body-cap
	// 413s, handler errors — is counted under a bounded path label.
	path := normalizePath(r.URL.Path)
	sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	t := s.met.reg.StartTimer(s.met.httpLatency.With(path))
	defer func() {
		t.Stop()
		s.met.httpReqs.With(path, r.Method, strconv.Itoa(sr.code)).Inc()
	}()
	// Liveness probes bypass the drain gate (and the chaos delay): an
	// orchestrator must be able to see "draining" as a distinct state, not
	// just a refused connection.
	if r.URL.Path == "/healthz" {
		s.handleHealthz(sr, r)
		return
	}
	// Increment-then-check: a request that sneaks past a concurrent
	// Shutdown's Store either sees draining here and bounces, or was already
	// counted and Shutdown waits for it. Either way nothing is dropped
	// mid-handler.
	if s.draining.Load() {
		// Retry-After tells well-behaved clients (and loadgen) this is a
		// retryable refusal, not a failure — the same contract as the
		// ingest-backpressure 429s.
		sr.Header().Set("Retry-After", "1")
		http.Error(sr, "server draining", http.StatusServiceUnavailable)
		return
	}
	if d := s.delayMS.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	if s.opts.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(sr, r.Body, s.opts.MaxBodyBytes)
	}
	s.mux.ServeHTTP(sr, r)
}

// Shutdown drains the server: new requests get 503 immediately, and the call
// blocks until every in-flight request has completed or ctx expires. With
// async ingest on, the ingest queues are then closed and their appliers
// drain every acknowledged op (applied + fsynced) before the stores close.
// After a clean drain every shard's durable state (if any) is snapshotted
// and its WAL closed, so the next boot restores from the snapshots alone.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			// Drain expired with requests still in flight: leave the WALs as
			// the source of truth rather than snapshotting a moving state.
			return ctx.Err()
		case <-tick.C:
		}
	}
	// In-flight handlers are done, so no producer can touch a queue again:
	// safe to close them and wait for the drain.
	if err := s.stopAppliers(ctx); err != nil {
		return err
	}
	var err error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if cerr := sh.closeStoreLocked(); err == nil {
			err = cerr
		}
		sh.store = nil
		sh.mu.Unlock()
	}
	return err
}

// rejectOverload refuses a telemetry POST whose shard queue is at its
// high-water mark: 429 + Retry-After, the explicit backpressure signal.
// Clients treat it like the drain-gate 503 — back off and resend — and
// loadgen counts it as Rejected, not an error.
func (s *Server) rejectOverload(w http.ResponseWriter) {
	s.met.ingestRejected.Inc()
	w.Header().Set("Retry-After", "1")
	http.Error(w, "ingest queue full", http.StatusTooManyRequests)
}

// decode parses a JSON request body, translating the body-cap error into 413
// and anything else into 400. Returns false after writing the error.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return false
	}
	return true
}

// handleJobs registers a job (POST, routed to its VC's shard) or lists jobs
// (GET; ?vc= scopes the listing to one tenant's shard, otherwise the front
// door fans out and merges).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			User string `json:"user"`
			VC   string `json:"vc"`
			GPUs int    `json:"gpus"`
			AMP  bool   `json:"amp"`
		}
		if !s.decode(w, r, &req) {
			return
		}
		if req.Name == "" || req.GPUs <= 0 {
			http.Error(w, "name and positive gpus required", http.StatusBadRequest)
			return
		}
		id := int(s.nextID.Add(1))
		sh := s.shardFor(req.VC)
		js := &jobState{ID: id, Name: req.Name, User: req.User, VC: req.VC,
			GPUs: req.GPUs, AMP: req.AMP}
		sh.mu.Lock()
		sh.applyJobLocked(js)
		// The record is fsynced (sync=true) before the 201 is written: an
		// acknowledged submission is durable. Apply-then-log order matters —
		// if the append lands on the compaction threshold, the snapshot that
		// replaces the WAL must already contain this job.
		if err := sh.logOpLocked(walOp{Op: "job", ID: id, Name: req.Name,
			User: req.User, VC: req.VC, GPUs: req.GPUs, AMP: req.AMP}, true); err != nil {
			sh.dropJobLocked(id)
			sh.mu.Unlock()
			http.Error(w, fmt.Sprintf("persist job: %v", err), http.StatusInternalServerError)
			return
		}
		cp := *js
		sh.mu.Unlock()
		s.rec.Record(dtrace.Event{Job: id, Action: dtrace.ActRelease,
			Reason: "registered", VC: cp.VC, GPUs: cp.GPUs})
		writeJSON(w, http.StatusCreated, cp)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.collectJobs(r.URL.Query().Get("vc")))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// collectJobs gathers job copies: from the one shard owning vc when scoped,
// else from every shard in turn (at most one shard lock held at a time),
// merged in ID order. Each shard is flushed before its copy, so the listing
// reflects every sample acknowledged before the read arrived.
func (s *Server) collectJobs(vc string) []*jobState {
	if vc != "" {
		sh := s.shardFor(vc)
		sh.flush()
		out := make([]*jobState, 0)
		for _, js := range sh.copyJobs() {
			if js.VC == vc {
				out = append(out, js)
			}
		}
		return out
	}
	out := make([]*jobState, 0)
	for _, sh := range s.shards {
		sh.flush()
		out = append(out, sh.copyJobs()...)
	}
	sortJobsByID(out)
	return out
}

func sortJobsByID(out []*jobState) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}

// mergeQueues K-way merges per-shard queue views, each already sorted by
// queueLess. The comparator's global-job-ID tie-break makes the merge
// deterministic even when two shards hold jobs with equal priority keys.
// Shard counts are small (≤ dozens), so a linear scan per pop beats heap
// overhead.
func mergeQueues(views [][]*jobState) []*jobState {
	total := 0
	for _, v := range views {
		total += len(v)
	}
	out := make([]*jobState, 0, total)
	heads := make([]int, len(views))
	for len(out) < total {
		best := -1
		for i, v := range views {
			if heads[i] >= len(v) {
				continue
			}
			if best < 0 || queueLess(v[heads[i]], views[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, views[best][heads[best]])
		heads[best]++
	}
	return out
}

// handleMetrics is two endpoints sharing a path, split by method: POST
// ingests one NVIDIA-SMI-style sample from a node agent (routed to the shard
// owning the job); GET serves the server's own instruments in Prometheus
// text exposition format without touching any shard lock.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		s.serveMetrics(w)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Job        int     `json:"job"`
		GPUUtil    float64 `json:"gpu_util"`
		GPUMemMB   float64 `json:"gpu_mem_mb"`
		GPUMemUtil float64 `json:"gpu_mem_util"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	sh, ok := s.shardOfJob(req.Job)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
		return
	}
	if sh.ingestQ != nil {
		// Async ingest: O(1) enqueue, no shard lock on the request path.
		// 202 = acknowledged, will be applied in FIFO order; 429 = shard at
		// its high-water mark, client should back off and resend.
		if !sh.enqueue(walOp{Op: "metrics", ID: req.Job, GPUUtil: req.GPUUtil,
			GPUMemMB: req.GPUMemMB, GPUMemUtil: req.GPUMemUtil}) {
			s.rejectOverload(w)
			return
		}
		// Hand-rolled body: this is the hottest response in async mode and
		// an encoder pass per sample is measurable at benchmark rates.
		buf := make([]byte, 0, 40)
		buf = append(buf, `{"job":`...)
		buf = strconv.AppendInt(buf, int64(req.Job), 10)
		buf = append(buf, `,"queued":true}`+"\n"...)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_, _ = w.Write(buf)
		return
	}
	sh.mu.Lock()
	js, ok := sh.jobs[req.Job]
	if !ok {
		sh.mu.Unlock()
		http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
		return
	}
	crossed := sh.applySampleLocked(js, req.GPUUtil, req.GPUMemMB, req.GPUMemUtil)
	// Samples are logged unsynced: losing the last batch in a crash only
	// costs telemetry the agents re-send anyway.
	if err := sh.logOpLocked(walOp{Op: "metrics", ID: js.ID, GPUUtil: req.GPUUtil,
		GPUMemMB: req.GPUMemMB, GPUMemUtil: req.GPUMemUtil}, false); err != nil {
		sh.mu.Unlock()
		http.Error(w, fmt.Sprintf("persist sample: %v", err), http.StatusInternalServerError)
		return
	}
	cp := *js
	sh.mu.Unlock()
	if crossed {
		// The job just crossed the profiling threshold: from here on the
		// analyzer scores it from real metrics instead of the Jumbo prior.
		s.rec.Record(dtrace.Event{Job: cp.ID, Action: dtrace.ActProfileStop,
			Reason: "min-samples-reached", VC: cp.VC, GPUs: cp.GPUs,
			Score: cp.Profile.GPUUtil})
	}
	writeJSON(w, http.StatusOK, cp)
}

// serveMetrics renders the Prometheus scrape. Population gauges are
// refreshed from the shards' atomic counters — no shard lock is taken, so a
// scrape always completes even when a shard is wedged or slow.
func (s *Server) serveMetrics(w http.ResponseWriter) {
	s.observePopulation()
	w.Header().Set("Content-Type", metrics.TextContentType)
	_ = s.met.reg.WriteText(w)
}

// Metrics exposes the server's registry (for embedding servers that merge
// instruments or tests that assert on them).
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

// handleSchedule returns the queue in Lucid priority order
// (GPUs × estimated duration, ascending — Algorithm 2). ?vc= scopes the
// queue to one tenant's shard; otherwise every shard contributes its
// pre-sorted incremental index and the front door K-way merges — no
// per-request re-sort. Ties across shards break on global job ID
// (queueLess), so the merged order is identical at any shard count.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	vc := r.URL.Query().Get("vc")
	var out []*jobState
	if vc != "" {
		sh := s.shardFor(vc)
		sh.flush()
		out = sh.copyQueue(vc)
	} else {
		views := make([][]*jobState, 0, len(s.shards))
		for _, sh := range s.shards {
			sh.flush()
			views = append(views, sh.copyQueue(""))
		}
		out = mergeQueues(views)
	}
	if len(out) > 0 {
		// Record the ordering decision: who leads the queue and why, plus
		// the runners-up with their priority keys as counterfactuals.
		head := out[0]
		ev := dtrace.Event{Job: head.ID, Action: dtrace.ActOrder,
			Reason: "min-gpu-demand-x-estimate", VC: head.VC, GPUs: head.GPUs,
			Score: float64(head.GPUs) * head.EstSec}
		for _, js := range out[1:] {
			if len(ev.Alternatives) >= s.rec.TopK() {
				break
			}
			ev.Alternatives = append(ev.Alternatives, dtrace.Alternative{
				Job: js.ID, Score: float64(js.GPUs) * js.EstSec,
				Reason: "behind-in-queue"})
		}
		s.rec.Record(ev)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAgents registers or heartbeats a node agent (POST, routed to its
// VC's shard) and lists live agents (GET; ?vc= scopes to one shard). Both
// paths first evict agents whose heartbeat went stale — the non-intrusive
// analogue of a node failure detector: the scheduler never reaches into the
// node, it just stops trusting silence. The sweep is strictly shard-local,
// so one tenant's eviction storm never stalls another tenant's heartbeats.
func (s *Server) handleAgents(w http.ResponseWriter, r *http.Request) {
	now := s.opts.Clock()
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			VC   string `json:"vc"`
			Node int    `json:"node"`
		}
		if !s.decode(w, r, &req) {
			return
		}
		if req.Name == "" || req.Node < 0 {
			http.Error(w, "name and non-negative node required", http.StatusBadRequest)
			return
		}
		sh := s.shardFor(req.VC)
		if sh.ingestQ != nil {
			if !sh.enqueue(walOp{Op: "agent", Name: req.Name, VC: req.VC,
				Node: req.Node, UnixNano: now.UnixNano()}) {
				s.rejectOverload(w)
				return
			}
			// Hand-rolled like the sample ack: heartbeats are ~3/4 of the
			// default mix. Agent names are validated non-empty JSON strings
			// already decoded from the request, so re-marshal is the only
			// correct quoting path — strconv.Quote matches encoding/json for
			// the names loadgen and real agents use, but not for all inputs,
			// so quote via json.Marshal (cheap for a short string).
			nameJSON, _ := json.Marshal(req.Name)
			buf := make([]byte, 0, len(nameJSON)+32)
			buf = append(buf, `{"agent":`...)
			buf = append(buf, nameJSON...)
			buf = append(buf, `,"queued":true}`+"\n"...)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusAccepted)
			_, _ = w.Write(buf)
			return
		}
		sh.mu.Lock()
		sh.sweepStaleLocked(now)
		cp, known := sh.applyAgentLocked(req.Name, req.VC, req.Node, now)
		if err := sh.logOpLocked(walOp{Op: "agent", Name: req.Name, VC: req.VC,
			Node: req.Node, UnixNano: now.UnixNano()}, false); err != nil {
			sh.mu.Unlock()
			http.Error(w, fmt.Sprintf("persist heartbeat: %v", err), http.StatusInternalServerError)
			return
		}
		sh.mu.Unlock()
		if !known {
			s.rec.Record(dtrace.Event{Action: dtrace.ActNodeRepair,
				Reason: "agent-online", Node: cp.Node + 1})
		}
		writeJSON(w, http.StatusOK, cp)
	case http.MethodGet:
		// The listing is served from the per-shard (Name, VC, Node) indexes:
		// a scoped read copies one pre-sorted, pre-serialized view, the
		// cluster-wide read K-way-merges them — no per-request sort, no
		// per-request struct marshal. agentLess documents why the full key
		// (not Name alone) orders every possible cross-shard duplicate.
		vc := r.URL.Query().Get("vc")
		if vc != "" {
			sh := s.shardFor(vc)
			sh.flush()
			body := sh.agentListBody(now, vc)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			_, _ = w.Write(body)
			sh.putListBuf(body)
			return
		}
		per := make([][]agentRef, len(s.shards))
		for i, sh := range s.shards {
			sh.flush()
			per[i] = sh.copyAgentRefs(now)
		}
		writeJSONRefs(w, mergeAgentRefs(per))
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleChaos injects faults for integration tests (mounted only when
// Options.EnableChaos is set):
//
//	{"action":"evict-agent","agent":NAME}  — drop an agent as if its node died
//	{"action":"fail-job","job":ID}         — kill a job: profile reset, requeued
//	{"action":"delay","delay_ms":N}        — add per-request latency (0 clears)
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Action  string `json:"action"`
		Agent   string `json:"agent"`
		Job     int    `json:"job"`
		DelayMS int64  `json:"delay_ms"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	switch req.Action {
	case "evict-agent":
		// Agent names carry no shard hint, so the front door scans shards
		// (one lock at a time) for the victim — fine for a test-only path.
		// Each shard is flushed first so an eviction cannot overtake a
		// heartbeat the server acknowledged before it.
		var victim *agentState
		for _, sh := range s.shards {
			sh.flush()
			sh.mu.Lock()
			if a, ok := sh.agents[req.Agent]; ok {
				cp := *a
				victim = &cp
				sh.lruUnlinkLocked(a)
				sh.aorderRemoveLocked(a)
				delete(sh.agents, req.Agent)
				sh.nAgents.Store(int64(len(sh.agents)))
				_ = sh.logOpLocked(walOp{Op: "evict-agent", Name: req.Agent}, false)
			}
			sh.mu.Unlock()
			if victim != nil {
				break
			}
		}
		if victim == nil {
			http.Error(w, fmt.Sprintf("unknown agent %q", req.Agent), http.StatusNotFound)
			return
		}
		s.rec.Record(dtrace.Event{Action: dtrace.ActNodeFail,
			Reason: "chaos-evict", Node: victim.Node + 1})
		writeJSON(w, http.StatusOK, victim)
	case "fail-job":
		sh, ok := s.shardOfJob(req.Job)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
			return
		}
		// Barrier before the kill: samples acknowledged before this request
		// must fold into the profile the kill then resets — the op order the
		// parity contract fixes, regardless of ingest mode.
		sh.flush()
		sh.mu.Lock()
		js, ok := sh.jobs[req.Job]
		if !ok {
			sh.mu.Unlock()
			http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
			return
		}
		sh.applyFailJobLocked(js)
		_ = sh.logOpLocked(walOp{Op: "fail-job", ID: js.ID}, false)
		cp := *js
		sh.mu.Unlock()
		s.rec.Record(dtrace.Event{Job: cp.ID, Action: dtrace.ActRequeue,
			Reason: "chaos-kill", VC: cp.VC, GPUs: cp.GPUs})
		writeJSON(w, http.StatusOK, cp)
	case "delay":
		if req.DelayMS < 0 {
			http.Error(w, "delay_ms must be non-negative", http.StatusBadRequest)
			return
		}
		s.delayMS.Store(req.DelayMS)
		writeJSON(w, http.StatusOK, map[string]int64{"delay_ms": req.DelayMS})
	default:
		http.Error(w, fmt.Sprintf("unknown action %q", req.Action), http.StatusBadRequest)
	}
}

// handleTrace serves the decision-trace flight recorder: a JSON document
// with the deterministic digest, the lifetime summary and the retained
// event window, or the raw retained events as JSONL with ?format=jsonl.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.rec.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Digest  string         `json:"digest"`
		Count   int64          `json:"count"`
		Summary dtrace.Summary `json:"summary"`
		Events  []dtrace.Event `json:"events"`
	}{
		Digest:  s.rec.Digest(),
		Count:   s.rec.Summary().Total,
		Summary: s.rec.Summary(),
		Events:  s.rec.Events(),
	})
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503 with
// "draining" once Shutdown has begun. It is routed ahead of the drain gate in
// ServeHTTP so orchestrators can observe the drain instead of a bare refusal,
// and it touches no shard lock — a wedged shard cannot fail the probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// durableStatus is the /statusz view of one durability layer (or, at the top
// level, the aggregate across shards).
type durableStatus struct {
	StateDir           string  `json:"state_dir"`
	WALRecords         int64   `json:"wal_records"` // records since the last snapshot
	WALBytes           int64   `json:"wal_bytes"`
	HasSnapshot        bool    `json:"has_snapshot"`
	SnapshotAgeSec     float64 `json:"snapshot_age_sec"`
	Compactions        int64   `json:"compactions"`
	RecoveredRecords   int     `json:"recovered_records"`
	RecoveredTornBytes int64   `json:"recovered_torn_bytes"`
}

// shardStatus is the /statusz view of one shard.
type shardStatus struct {
	Shard   int            `json:"shard"`
	Jobs    int            `json:"jobs"`
	Agents  int            `json:"agents"`
	Durable *durableStatus `json:"durable,omitempty"`
}

// handleStatusz reports operational state: uptime, population counts, drain
// state and — when durability is on — per-shard WAL/snapshot lag plus the
// aggregate. Population counts come from the shards' atomics; the durable
// detail is a fan-out that holds one shard lock at a time.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	now := s.opts.Clock()
	out := struct {
		Status    string         `json:"status"`
		UptimeSec float64        `json:"uptime_sec"`
		Jobs      int            `json:"jobs"`
		Agents    int            `json:"agents"`
		Shards    int            `json:"shards"`
		Draining  bool           `json:"draining"`
		Durable   *durableStatus `json:"durable,omitempty"`
		ByShard   []shardStatus  `json:"by_shard,omitempty"`
	}{Status: "ok", Shards: len(s.shards), Draining: s.draining.Load()}
	if out.Draining {
		out.Status = "draining"
	}
	out.UptimeSec = now.Sub(s.started).Seconds()
	durable := false
	for _, sh := range s.shards {
		st := shardStatus{Shard: sh.idx,
			Jobs:   int(sh.nJobs.Load()),
			Agents: int(sh.nAgents.Load())}
		out.Jobs += st.Jobs
		out.Agents += st.Agents
		sh.mu.Lock()
		if d := sh.store; d != nil {
			st.Durable = &durableStatus{
				StateDir:           d.dir,
				WALRecords:         d.wal.Records(),
				WALBytes:           d.wal.Bytes(),
				HasSnapshot:        d.hadSnapshot,
				SnapshotAgeSec:     now.Sub(d.snapTime).Seconds(),
				Compactions:        d.compactions,
				RecoveredRecords:   d.recovered.Records,
				RecoveredTornBytes: d.recovered.TornBytes,
			}
			durable = true
		}
		sh.mu.Unlock()
		out.ByShard = append(out.ByShard, st)
	}
	if durable {
		agg := &durableStatus{StateDir: s.opts.StateDir}
		for _, st := range out.ByShard {
			if st.Durable == nil {
				continue
			}
			agg.WALRecords += st.Durable.WALRecords
			agg.WALBytes += st.Durable.WALBytes
			agg.HasSnapshot = agg.HasSnapshot || st.Durable.HasSnapshot
			if st.Durable.SnapshotAgeSec > agg.SnapshotAgeSec {
				agg.SnapshotAgeSec = st.Durable.SnapshotAgeSec
			}
			agg.Compactions += st.Durable.Compactions
			agg.RecoveredRecords += st.Durable.RecoveredRecords
			agg.RecoveredTornBytes += st.Durable.RecoveredTornBytes
		}
		out.Durable = agg
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePackingModel renders the decision tree (system transparency, A5).
func (s *Server) handlePackingModel(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.analyzer.Render())
	imp := s.analyzer.FeatureImportances()
	for i, name := range s.analyzer.FeatureNames() {
		fmt.Fprintf(w, "importance %-36s %.3f\n", name, imp[i])
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeJSONRefs composes a 200 JSON array response from pre-marshaled agent
// fragments — byte-identical to writeJSON of the equivalent []agentState,
// including the encoder's trailing newline.
func writeJSONRefs(w http.ResponseWriter, refs []agentRef) {
	total := 3 + len(refs) // '[', ']', '\n', one ',' per gap (one spare)
	for _, r := range refs {
		total += len(r.frag)
	}
	buf := make([]byte, 0, total)
	buf = append(buf, '[')
	for i, r := range refs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, r.frag...)
	}
	buf = append(buf, ']', '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}
