// Package lucidd implements the HTTP control plane behind cmd/lucidd: a
// deployable skeleton of Lucid's non-intrusive workflow. Users submit job
// metadata, node agents push NVIDIA-SMI-style metric samples, and the
// server maintains profiles, Sharing Scores, duration estimates and a
// priority-ordered queue — all without ever touching user training code,
// which is the paper's A1/A2 deployment story.
package lucidd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/trace"
	"repro/internal/workload"
)

// jobState is the server's view of one registered job.
type jobState struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	User    string  `json:"user"`
	VC      string  `json:"vc"`
	GPUs    int     `json:"gpus"`
	AMP     bool    `json:"amp"`
	Samples int     `json:"samples"`
	Profile profile `json:"profile"`
	Score   string  `json:"score"`
	EstSec  float64 `json:"estimate_sec"`
	// Restarts counts fault-injected kills (/chaos fail-job). A killed job
	// loses its profile — the next samples rebuild it from scratch, exactly
	// like a requeued job re-entering the simulator's profiler.
	Restarts int `json:"restarts"`
}

// agentState is one registered node agent, kept alive by heartbeats.
type agentState struct {
	Name     string    `json:"name"`
	Node     int       `json:"node"` // 0-based node index the agent reports for
	LastSeen time.Time `json:"last_seen"`
}

// profile mirrors the three non-intrusive metrics.
type profile struct {
	GPUUtil    float64 `json:"gpu_util"`
	GPUMemMB   float64 `json:"gpu_mem_mb"`
	GPUMemUtil float64 `json:"gpu_mem_util"`
}

// minSamples before a job is considered profiled.
const minSamples = 3

// traceKeep bounds the in-memory decision-trace window the /trace endpoint
// serves; summary counters still cover the server's whole lifetime.
const traceKeep = 4096

// Options hardens the server against hostile or failing clients. The zero
// value selects production defaults.
type Options struct {
	// MaxBodyBytes caps every request body; larger payloads get 413.
	// Defaults to 1 MiB.
	MaxBodyBytes int64
	// AgentStaleAfter is the heartbeat-staleness window: agents silent for
	// longer are evicted (their node is presumed failed). Defaults to 90s.
	AgentStaleAfter time.Duration
	// EnableChaos mounts the POST /chaos fault-injection endpoint used by
	// integration tests. Off by default — never expose it in production.
	EnableChaos bool
	// Clock substitutes time.Now so staleness tests are deterministic.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.AgentStaleAfter == 0 {
		o.AgentStaleAfter = 90 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Server is the HTTP control plane.
type Server struct {
	opts     Options
	mu       sync.Mutex
	nextID   int
	jobs     map[int]*jobState
	agents   map[string]*agentState
	analyzer *core.PackingAnalyzer
	est      *core.WorkloadEstimator
	mux      *http.ServeMux
	// rec is the decision-trace flight recorder behind /trace: job
	// registrations, profile completions and every /schedule ordering
	// decision are recorded with their reasoning. The recorder is
	// internally synchronized; it is used outside s.mu.
	rec *dtrace.Recorder

	// Graceful-shutdown state: once draining flips, new requests are refused
	// with 503 while in-flight ones (tracked by inflight) run to completion.
	draining atomic.Bool
	inflight atomic.Int64
	// delayMS is a chaos knob: artificial per-request latency, letting tests
	// hold requests in flight deterministically while Shutdown drains.
	delayMS atomic.Int64
}

// Model training is deterministic and expensive, so every server shares one
// pass: the packing analyzer is immutable at inference and shared outright;
// the estimator caches per-job state, so each server gets its own Clone.
var training struct {
	sync.Once
	analyzer *core.PackingAnalyzer
	est      *core.WorkloadEstimator
	err      error
}

func trainShared() error {
	training.Do(func() {
		training.analyzer, training.err = core.TrainPackingAnalyzer(workload.DefaultThresholds)
		if training.err != nil {
			return
		}
		spec := trace.Venus()
		spec.NumJobs = 3000
		hist := trace.NewGenerator(spec).Emit(0)
		training.est, training.err = core.TrainWorkloadEstimator(hist.Jobs)
	})
	return training.err
}

// NewServer builds a server with default hardening options.
func NewServer() (*Server, error) { return NewServerWith(Options{}) }

// NewServerWith trains the interpretable models (once per process, on a
// synthetic history month standing in for the operator's real logs) and
// wires the routes.
func NewServerWith(opts Options) (*Server, error) {
	if err := trainShared(); err != nil {
		return nil, err
	}
	rec := dtrace.New()
	rec.SetKeep(traceKeep)
	s := &Server{
		opts:     opts.withDefaults(),
		nextID:   1,
		jobs:     map[int]*jobState{},
		agents:   map[string]*agentState{},
		analyzer: training.analyzer,
		est:      training.est.Clone(),
		mux:      http.NewServeMux(),
		rec:      rec,
	}
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/schedule", s.handleSchedule)
	s.mux.HandleFunc("/agents", s.handleAgents)
	s.mux.HandleFunc("/models/packing", s.handlePackingModel)
	s.mux.HandleFunc("/trace", s.handleTrace)
	if s.opts.EnableChaos {
		s.mux.HandleFunc("/chaos", s.handleChaos)
	}
	return s, nil
}

// ServeHTTP implements http.Handler. It is the hardening choke point: every
// request is counted for drain tracking, refused while draining, optionally
// delayed (chaos), and body-capped before reaching a handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	// Increment-then-check: a request that sneaks past a concurrent
	// Shutdown's Store either sees draining here and bounces, or was already
	// counted and Shutdown waits for it. Either way nothing is dropped
	// mid-handler.
	if s.draining.Load() {
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	}
	if d := s.delayMS.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	if s.opts.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: new requests get 503 immediately, and the call
// blocks until every in-flight request has completed or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		if s.inflight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// decode parses a JSON request body, translating the body-cap error into 413
// and anything else into 400. Returns false after writing the error.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return false
	}
	return true
}

// handleJobs registers a job (POST) or lists jobs (GET).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			User string `json:"user"`
			VC   string `json:"vc"`
			GPUs int    `json:"gpus"`
			AMP  bool   `json:"amp"`
		}
		if !s.decode(w, r, &req) {
			return
		}
		if req.Name == "" || req.GPUs <= 0 {
			http.Error(w, "name and positive gpus required", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		id := s.nextID
		s.nextID++
		js := &jobState{ID: id, Name: req.Name, User: req.User, VC: req.VC,
			GPUs: req.GPUs, AMP: req.AMP, Score: workload.Jumbo.String()}
		s.jobs[id] = js
		s.refreshLocked(js)
		s.mu.Unlock()
		s.rec.Record(dtrace.Event{Job: id, Action: dtrace.ActRelease,
			Reason: "registered", VC: js.VC, GPUs: js.GPUs})
		writeJSON(w, http.StatusCreated, js)
	case http.MethodGet:
		s.mu.Lock()
		out := s.snapshotLocked()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleMetrics ingests one NVIDIA-SMI-style sample.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Job        int     `json:"job"`
		GPUUtil    float64 `json:"gpu_util"`
		GPUMemMB   float64 `json:"gpu_mem_mb"`
		GPUMemUtil float64 `json:"gpu_mem_util"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[req.Job]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
		return
	}
	// Running mean over samples — what a DCGM poller would maintain.
	n := float64(js.Samples)
	js.Profile.GPUUtil = (js.Profile.GPUUtil*n + req.GPUUtil) / (n + 1)
	js.Profile.GPUMemMB = (js.Profile.GPUMemMB*n + req.GPUMemMB) / (n + 1)
	js.Profile.GPUMemUtil = (js.Profile.GPUMemUtil*n + req.GPUMemUtil) / (n + 1)
	js.Samples++
	s.refreshLocked(js)
	if js.Samples == minSamples {
		// The job just crossed the profiling threshold: from here on the
		// analyzer scores it from real metrics instead of the Jumbo prior.
		s.rec.Record(dtrace.Event{Job: js.ID, Action: dtrace.ActProfileStop,
			Reason: "min-samples-reached", VC: js.VC, GPUs: js.GPUs,
			Score: js.Profile.GPUUtil})
	}
	writeJSON(w, http.StatusOK, js)
}

// refreshLocked recomputes score and estimate from the current state.
func (s *Server) refreshLocked(js *jobState) {
	j := job.New(js.ID, js.Name, js.User, js.VC, js.GPUs, 0, 0, workload.Config{})
	j.AMP = js.AMP
	if js.Samples >= minSamples {
		j.Profiled = true
		j.Profile = workload.Profile{
			GPUUtil:    js.Profile.GPUUtil,
			GPUMemMB:   js.Profile.GPUMemMB,
			GPUMemUtil: js.Profile.GPUMemUtil,
			AMP:        js.AMP,
		}
	}
	js.Score = s.analyzer.ScoreJob(j).String()
	s.est.Invalidate(j.ID)
	js.EstSec = s.est.EstimateSec(j)
}

// handleSchedule returns the queue in Lucid priority order
// (GPUs × estimated duration, ascending — Algorithm 2).
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	out := s.snapshotLocked()
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		pi := float64(out[i].GPUs) * out[i].EstSec
		pj := float64(out[j].GPUs) * out[j].EstSec
		if pi != pj {
			return pi < pj
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > 0 {
		// Record the ordering decision: who leads the queue and why, plus
		// the runners-up with their priority keys as counterfactuals.
		head := out[0]
		ev := dtrace.Event{Job: head.ID, Action: dtrace.ActOrder,
			Reason: "min-gpu-demand-x-estimate", VC: head.VC, GPUs: head.GPUs,
			Score: float64(head.GPUs) * head.EstSec}
		for _, js := range out[1:] {
			if len(ev.Alternatives) >= s.rec.TopK() {
				break
			}
			ev.Alternatives = append(ev.Alternatives, dtrace.Alternative{
				Job: js.ID, Score: float64(js.GPUs) * js.EstSec,
				Reason: "behind-in-queue"})
		}
		s.rec.Record(ev)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAgents registers or heartbeats a node agent (POST) and lists live
// agents (GET). Both paths first evict agents whose heartbeat went stale —
// the non-intrusive analogue of a node failure detector: the scheduler never
// reaches into the node, it just stops trusting silence.
func (s *Server) handleAgents(w http.ResponseWriter, r *http.Request) {
	now := s.opts.Clock()
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			Node int    `json:"node"`
		}
		if !s.decode(w, r, &req) {
			return
		}
		if req.Name == "" || req.Node < 0 {
			http.Error(w, "name and non-negative node required", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.sweepStaleLocked(now)
		a, known := s.agents[req.Name]
		if !known {
			a = &agentState{Name: req.Name, Node: req.Node}
			s.agents[req.Name] = a
		}
		a.Node = req.Node
		a.LastSeen = now
		cp := *a
		s.mu.Unlock()
		if !known {
			s.rec.Record(dtrace.Event{Action: dtrace.ActNodeRepair,
				Reason: "agent-online", Node: cp.Node + 1})
		}
		writeJSON(w, http.StatusOK, cp)
	case http.MethodGet:
		s.mu.Lock()
		s.sweepStaleLocked(now)
		out := make([]agentState, 0, len(s.agents))
		for _, a := range s.agents {
			out = append(out, *a)
		}
		s.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		writeJSON(w, http.StatusOK, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// sweepStaleLocked evicts agents whose last heartbeat predates the staleness
// window, recording each eviction as a presumed node failure.
func (s *Server) sweepStaleLocked(now time.Time) {
	for name, a := range s.agents {
		if now.Sub(a.LastSeen) > s.opts.AgentStaleAfter {
			delete(s.agents, name)
			s.rec.Record(dtrace.Event{Action: dtrace.ActNodeFail,
				Reason: "heartbeat-stale", Node: a.Node + 1})
		}
	}
}

// handleChaos injects faults for integration tests (mounted only when
// Options.EnableChaos is set):
//
//	{"action":"evict-agent","agent":NAME}  — drop an agent as if its node died
//	{"action":"fail-job","job":ID}         — kill a job: profile reset, requeued
//	{"action":"delay","delay_ms":N}        — add per-request latency (0 clears)
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Action  string `json:"action"`
		Agent   string `json:"agent"`
		Job     int    `json:"job"`
		DelayMS int64  `json:"delay_ms"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	switch req.Action {
	case "evict-agent":
		s.mu.Lock()
		a, ok := s.agents[req.Agent]
		if ok {
			delete(s.agents, req.Agent)
		}
		s.mu.Unlock()
		if !ok {
			http.Error(w, fmt.Sprintf("unknown agent %q", req.Agent), http.StatusNotFound)
			return
		}
		s.rec.Record(dtrace.Event{Action: dtrace.ActNodeFail,
			Reason: "chaos-evict", Node: a.Node + 1})
		writeJSON(w, http.StatusOK, a)
	case "fail-job":
		s.mu.Lock()
		js, ok := s.jobs[req.Job]
		if !ok {
			s.mu.Unlock()
			http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
			return
		}
		// The kill loses the in-memory profile: the job re-enters the system
		// unprofiled, scored by the conservative Jumbo prior until fresh
		// samples arrive — mirroring the simulator's requeue-through-profiler
		// path.
		js.Restarts++
		js.Samples = 0
		js.Profile = profile{}
		s.refreshLocked(js)
		cp := *js
		s.mu.Unlock()
		s.rec.Record(dtrace.Event{Job: cp.ID, Action: dtrace.ActRequeue,
			Reason: "chaos-kill", VC: cp.VC, GPUs: cp.GPUs})
		writeJSON(w, http.StatusOK, cp)
	case "delay":
		if req.DelayMS < 0 {
			http.Error(w, "delay_ms must be non-negative", http.StatusBadRequest)
			return
		}
		s.delayMS.Store(req.DelayMS)
		writeJSON(w, http.StatusOK, map[string]int64{"delay_ms": req.DelayMS})
	default:
		http.Error(w, fmt.Sprintf("unknown action %q", req.Action), http.StatusBadRequest)
	}
}

// handleTrace serves the decision-trace flight recorder: a JSON document
// with the deterministic digest, the lifetime summary and the retained
// event window, or the raw retained events as JSONL with ?format=jsonl.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.rec.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Digest  string         `json:"digest"`
		Count   int64          `json:"count"`
		Summary dtrace.Summary `json:"summary"`
		Events  []dtrace.Event `json:"events"`
	}{
		Digest:  s.rec.Digest(),
		Count:   s.rec.Summary().Total,
		Summary: s.rec.Summary(),
		Events:  s.rec.Events(),
	})
}

// handlePackingModel renders the decision tree (system transparency, A5).
func (s *Server) handlePackingModel(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.analyzer.Render())
	imp := s.analyzer.FeatureImportances()
	for i, name := range s.analyzer.FeatureNames() {
		fmt.Fprintf(w, "importance %-36s %.3f\n", name, imp[i])
	}
}

func (s *Server) snapshotLocked() []*jobState {
	out := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		cp := *js
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
