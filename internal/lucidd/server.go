// Package lucidd implements the HTTP control plane behind cmd/lucidd: a
// deployable skeleton of Lucid's non-intrusive workflow. Users submit job
// metadata, node agents push NVIDIA-SMI-style metric samples, and the
// server maintains profiles, Sharing Scores, duration estimates and a
// priority-ordered queue — all without ever touching user training code,
// which is the paper's A1/A2 deployment story.
package lucidd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// jobState is the server's view of one registered job.
type jobState struct {
	ID      int     `json:"id"`
	Name    string  `json:"name"`
	User    string  `json:"user"`
	VC      string  `json:"vc"`
	GPUs    int     `json:"gpus"`
	AMP     bool    `json:"amp"`
	Samples int     `json:"samples"`
	Profile profile `json:"profile"`
	Score   string  `json:"score"`
	EstSec  float64 `json:"estimate_sec"`
	// Restarts counts fault-injected kills (/chaos fail-job). A killed job
	// loses its profile — the next samples rebuild it from scratch, exactly
	// like a requeued job re-entering the simulator's profiler.
	Restarts int `json:"restarts"`
}

// agentState is one registered node agent, kept alive by heartbeats.
type agentState struct {
	Name     string    `json:"name"`
	Node     int       `json:"node"` // 0-based node index the agent reports for
	LastSeen time.Time `json:"last_seen"`
}

// profile mirrors the three non-intrusive metrics.
type profile struct {
	GPUUtil    float64 `json:"gpu_util"`
	GPUMemMB   float64 `json:"gpu_mem_mb"`
	GPUMemUtil float64 `json:"gpu_mem_util"`
}

// minSamples before a job is considered profiled.
const minSamples = 3

// traceKeep bounds the in-memory decision-trace window the /trace endpoint
// serves; summary counters still cover the server's whole lifetime.
const traceKeep = 4096

// Options hardens the server against hostile or failing clients. The zero
// value selects production defaults.
type Options struct {
	// MaxBodyBytes caps every request body; larger payloads get 413.
	// Defaults to 1 MiB.
	MaxBodyBytes int64
	// AgentStaleAfter is the heartbeat-staleness window: agents silent for
	// longer are evicted (their node is presumed failed). Defaults to 90s.
	AgentStaleAfter time.Duration
	// EnableChaos mounts the POST /chaos fault-injection endpoint used by
	// integration tests. Off by default — never expose it in production.
	EnableChaos bool
	// StateDir enables durability: mutating requests are WAL-logged there
	// and compacted into snapshots, and the server recovers the directory's
	// state on construction. Empty means in-memory only.
	StateDir string
	// CompactEvery overrides the WAL-records-per-snapshot compaction
	// threshold (tests use tiny values). 0 selects the default.
	CompactEvery int64
	// Clock substitutes time.Now so staleness tests are deterministic.
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.AgentStaleAfter == 0 {
		o.AgentStaleAfter = 90 * time.Second
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Server is the HTTP control plane.
type Server struct {
	opts     Options
	mu       sync.Mutex
	nextID   int
	jobs     map[int]*jobState
	agents   map[string]*agentState
	analyzer *core.PackingAnalyzer
	est      *core.WorkloadEstimator
	mux      *http.ServeMux
	// rec is the decision-trace flight recorder behind /trace: job
	// registrations, profile completions and every /schedule ordering
	// decision are recorded with their reasoning. The recorder is
	// internally synchronized; it is used outside s.mu.
	rec *dtrace.Recorder
	// store is the durability layer (nil when Options.StateDir is empty).
	// Its methods are called with mu held, which keeps WAL order consistent
	// with the state mutations the records describe.
	store *store
	// met is the server's own observability: GET /metrics serves it as
	// Prometheus text. Always non-nil; instruments are internally
	// synchronized and used both inside and outside s.mu.
	met     *serverMetrics
	started time.Time

	// Graceful-shutdown state: once draining flips, new requests are refused
	// with 503 while in-flight ones (tracked by inflight) run to completion.
	draining atomic.Bool
	inflight atomic.Int64
	// delayMS is a chaos knob: artificial per-request latency, letting tests
	// hold requests in flight deterministically while Shutdown drains.
	delayMS atomic.Int64
}

// Model training is deterministic and expensive, so every server shares one
// pass: the packing analyzer is immutable at inference and shared outright;
// the estimator caches per-job state, so each server gets its own Clone.
var training struct {
	sync.Once
	analyzer *core.PackingAnalyzer
	est      *core.WorkloadEstimator
	err      error
}

func trainShared() error {
	training.Do(func() {
		training.analyzer, training.err = core.TrainPackingAnalyzer(workload.DefaultThresholds)
		if training.err != nil {
			return
		}
		spec := trace.Venus()
		spec.NumJobs = 3000
		hist := trace.NewGenerator(spec).Emit(0)
		training.est, training.err = core.TrainWorkloadEstimator(hist.Jobs)
	})
	return training.err
}

// NewServer builds a server with default hardening options.
func NewServer() (*Server, error) { return NewServerWith(Options{}) }

// NewServerWith trains the interpretable models (once per process, on a
// synthetic history month standing in for the operator's real logs) and
// wires the routes.
func NewServerWith(opts Options) (*Server, error) {
	if err := trainShared(); err != nil {
		return nil, err
	}
	rec := dtrace.New()
	rec.SetKeep(traceKeep)
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		met:      newServerMetrics(opts.Clock),
		nextID:   1,
		jobs:     map[int]*jobState{},
		agents:   map[string]*agentState{},
		analyzer: training.analyzer,
		est:      training.est.Clone(),
		mux:      http.NewServeMux(),
		rec:      rec,
	}
	s.started = s.opts.Clock()
	s.mux.HandleFunc("/jobs", s.handleJobs)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/schedule", s.handleSchedule)
	s.mux.HandleFunc("/agents", s.handleAgents)
	s.mux.HandleFunc("/models/packing", s.handlePackingModel)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	if s.opts.EnableChaos {
		s.mux.HandleFunc("/chaos", s.handleChaos)
	}
	if s.opts.StateDir != "" {
		// No concurrency yet — the server isn't serving — but openStore
		// routes through the same *Locked apply functions the handlers use.
		s.mu.Lock()
		err := s.openStore(s.opts.StateDir)
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Recovery reports what the durability layer found on boot: how many WAL
// records were replayed, whether a snapshot was loaded, and how many torn
// bytes were truncated. Zero values when durability is off.
func (s *Server) Recovery() (records int, tornBytes int64, fromSnapshot bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.store == nil {
		return 0, 0, false
	}
	return s.store.recovered.Records, s.store.recovered.TornBytes, s.store.hadSnapshot
}

// ServeHTTP implements http.Handler. It is the hardening choke point: every
// request is counted for drain tracking, refused while draining, optionally
// delayed (chaos), and body-capped before reaching a handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	// Instrument at the choke point so every outcome — drain 503s, body-cap
	// 413s, handler errors — is counted under a bounded path label.
	path := normalizePath(r.URL.Path)
	sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	t := s.met.reg.StartTimer(s.met.httpLatency.With(path))
	defer func() {
		t.Stop()
		s.met.httpReqs.With(path, r.Method, strconv.Itoa(sr.code)).Inc()
	}()
	// Liveness probes bypass the drain gate (and the chaos delay): an
	// orchestrator must be able to see "draining" as a distinct state, not
	// just a refused connection.
	if r.URL.Path == "/healthz" {
		s.handleHealthz(sr, r)
		return
	}
	// Increment-then-check: a request that sneaks past a concurrent
	// Shutdown's Store either sees draining here and bounces, or was already
	// counted and Shutdown waits for it. Either way nothing is dropped
	// mid-handler.
	if s.draining.Load() {
		http.Error(sr, "server draining", http.StatusServiceUnavailable)
		return
	}
	if d := s.delayMS.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Millisecond)
	}
	if s.opts.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(sr, r.Body, s.opts.MaxBodyBytes)
	}
	s.mux.ServeHTTP(sr, r)
}

// Shutdown drains the server: new requests get 503 immediately, and the call
// blocks until every in-flight request has completed or ctx expires. After a
// clean drain the durable state (if any) is snapshotted and the WAL closed,
// so the next boot restores from the snapshot alone.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.inflight.Load() != 0 {
		select {
		case <-ctx.Done():
			// Drain expired with requests still in flight: leave the WAL as
			// the source of truth rather than snapshotting a moving state.
			return ctx.Err()
		case <-tick.C:
		}
	}
	s.mu.Lock()
	err := s.closeStoreLocked()
	s.store = nil
	s.mu.Unlock()
	return err
}

// decode parses a JSON request body, translating the body-cap error into 413
// and anything else into 400. Returns false after writing the error.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return false
	}
	return true
}

// handleJobs registers a job (POST) or lists jobs (GET).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			User string `json:"user"`
			VC   string `json:"vc"`
			GPUs int    `json:"gpus"`
			AMP  bool   `json:"amp"`
		}
		if !s.decode(w, r, &req) {
			return
		}
		if req.Name == "" || req.GPUs <= 0 {
			http.Error(w, "name and positive gpus required", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		id := s.nextID
		js := &jobState{ID: id, Name: req.Name, User: req.User, VC: req.VC,
			GPUs: req.GPUs, AMP: req.AMP}
		s.applyJobLocked(js)
		// The record is fsynced (sync=true) before the 201 is written: an
		// acknowledged submission is durable. Apply-then-log order matters —
		// if the append lands on the compaction threshold, the snapshot that
		// replaces the WAL must already contain this job.
		if err := s.logOpLocked(walOp{Op: "job", ID: id, Name: req.Name,
			User: req.User, VC: req.VC, GPUs: req.GPUs, AMP: req.AMP}, true); err != nil {
			delete(s.jobs, id)
			s.nextID = id
			s.mu.Unlock()
			http.Error(w, fmt.Sprintf("persist job: %v", err), http.StatusInternalServerError)
			return
		}
		s.mu.Unlock()
		s.rec.Record(dtrace.Event{Job: id, Action: dtrace.ActRelease,
			Reason: "registered", VC: js.VC, GPUs: js.GPUs})
		writeJSON(w, http.StatusCreated, js)
	case http.MethodGet:
		s.mu.Lock()
		out := s.snapshotLocked()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// handleMetrics is two endpoints sharing a path, split by method: POST
// ingests one NVIDIA-SMI-style sample from a node agent; GET serves the
// server's own instruments in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		s.serveMetrics(w)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Job        int     `json:"job"`
		GPUUtil    float64 `json:"gpu_util"`
		GPUMemMB   float64 `json:"gpu_mem_mb"`
		GPUMemUtil float64 `json:"gpu_mem_util"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[req.Job]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
		return
	}
	crossed := s.applySampleLocked(js, req.GPUUtil, req.GPUMemMB, req.GPUMemUtil)
	// Samples are logged unsynced: losing the last batch in a crash only
	// costs telemetry the agents re-send anyway.
	if err := s.logOpLocked(walOp{Op: "metrics", ID: js.ID, GPUUtil: req.GPUUtil,
		GPUMemMB: req.GPUMemMB, GPUMemUtil: req.GPUMemUtil}, false); err != nil {
		http.Error(w, fmt.Sprintf("persist sample: %v", err), http.StatusInternalServerError)
		return
	}
	if crossed {
		// The job just crossed the profiling threshold: from here on the
		// analyzer scores it from real metrics instead of the Jumbo prior.
		s.rec.Record(dtrace.Event{Job: js.ID, Action: dtrace.ActProfileStop,
			Reason: "min-samples-reached", VC: js.VC, GPUs: js.GPUs,
			Score: js.Profile.GPUUtil})
	}
	writeJSON(w, http.StatusOK, js)
}

// serveMetrics renders the Prometheus scrape. Population gauges are
// refreshed under the lock first, so each scrape is a consistent snapshot of
// queue depth, profiled-job count and live agents.
func (s *Server) serveMetrics(w http.ResponseWriter) {
	s.mu.Lock()
	s.observePopulationLocked()
	s.mu.Unlock()
	w.Header().Set("Content-Type", metrics.TextContentType)
	_ = s.met.reg.WriteText(w)
}

// Metrics exposes the server's registry (for embedding servers that merge
// instruments or tests that assert on them).
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

// applyJobLocked installs a registered job (live submit and WAL replay share
// this path) and recomputes its derived fields.
func (s *Server) applyJobLocked(js *jobState) {
	js.Score = workload.Jumbo.String()
	s.jobs[js.ID] = js
	if js.ID >= s.nextID {
		s.nextID = js.ID + 1
	}
	s.refreshLocked(js)
}

// applySampleLocked folds one NVIDIA-SMI-style sample into the job's running
// mean — what a DCGM poller would maintain — and reports whether this sample
// crossed the profiling threshold.
func (s *Server) applySampleLocked(js *jobState, util, memMB, memUtil float64) bool {
	n := float64(js.Samples)
	js.Profile.GPUUtil = (js.Profile.GPUUtil*n + util) / (n + 1)
	js.Profile.GPUMemMB = (js.Profile.GPUMemMB*n + memMB) / (n + 1)
	js.Profile.GPUMemUtil = (js.Profile.GPUMemUtil*n + memUtil) / (n + 1)
	js.Samples++
	s.refreshLocked(js)
	return js.Samples == minSamples
}

// applyAgentLocked registers or heartbeats an agent, reporting whether it was
// already known.
func (s *Server) applyAgentLocked(name string, node int, now time.Time) (agentState, bool) {
	a, known := s.agents[name]
	if !known {
		a = &agentState{Name: name, Node: node}
		s.agents[name] = a
	}
	a.Node = node
	a.LastSeen = now
	return *a, known
}

// applyFailJobLocked kills a job: the in-memory profile is lost and the job
// re-enters the system unprofiled, scored by the conservative Jumbo prior
// until fresh samples arrive — mirroring the simulator's
// requeue-through-profiler path.
func (s *Server) applyFailJobLocked(js *jobState) {
	js.Restarts++
	js.Samples = 0
	js.Profile = profile{}
	s.refreshLocked(js)
}

// refreshLocked recomputes score and estimate from the current state.
func (s *Server) refreshLocked(js *jobState) {
	j := job.New(js.ID, js.Name, js.User, js.VC, js.GPUs, 0, 0, workload.Config{})
	j.AMP = js.AMP
	if js.Samples >= minSamples {
		j.Profiled = true
		j.Profile = workload.Profile{
			GPUUtil:    js.Profile.GPUUtil,
			GPUMemMB:   js.Profile.GPUMemMB,
			GPUMemUtil: js.Profile.GPUMemUtil,
			AMP:        js.AMP,
		}
	}
	js.Score = s.analyzer.ScoreJob(j).String()
	s.est.Invalidate(j.ID)
	js.EstSec = s.est.EstimateSec(j)
}

// handleSchedule returns the queue in Lucid priority order
// (GPUs × estimated duration, ascending — Algorithm 2).
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	out := s.snapshotLocked()
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		pi := float64(out[i].GPUs) * out[i].EstSec
		pj := float64(out[j].GPUs) * out[j].EstSec
		if pi != pj {
			return pi < pj
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > 0 {
		// Record the ordering decision: who leads the queue and why, plus
		// the runners-up with their priority keys as counterfactuals.
		head := out[0]
		ev := dtrace.Event{Job: head.ID, Action: dtrace.ActOrder,
			Reason: "min-gpu-demand-x-estimate", VC: head.VC, GPUs: head.GPUs,
			Score: float64(head.GPUs) * head.EstSec}
		for _, js := range out[1:] {
			if len(ev.Alternatives) >= s.rec.TopK() {
				break
			}
			ev.Alternatives = append(ev.Alternatives, dtrace.Alternative{
				Job: js.ID, Score: float64(js.GPUs) * js.EstSec,
				Reason: "behind-in-queue"})
		}
		s.rec.Record(ev)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleAgents registers or heartbeats a node agent (POST) and lists live
// agents (GET). Both paths first evict agents whose heartbeat went stale —
// the non-intrusive analogue of a node failure detector: the scheduler never
// reaches into the node, it just stops trusting silence.
func (s *Server) handleAgents(w http.ResponseWriter, r *http.Request) {
	now := s.opts.Clock()
	switch r.Method {
	case http.MethodPost:
		var req struct {
			Name string `json:"name"`
			Node int    `json:"node"`
		}
		if !s.decode(w, r, &req) {
			return
		}
		if req.Name == "" || req.Node < 0 {
			http.Error(w, "name and non-negative node required", http.StatusBadRequest)
			return
		}
		s.mu.Lock()
		s.sweepStaleLocked(now)
		cp, known := s.applyAgentLocked(req.Name, req.Node, now)
		if err := s.logOpLocked(walOp{Op: "agent", Name: req.Name, Node: req.Node,
			UnixNano: now.UnixNano()}, false); err != nil {
			s.mu.Unlock()
			http.Error(w, fmt.Sprintf("persist heartbeat: %v", err), http.StatusInternalServerError)
			return
		}
		s.mu.Unlock()
		if !known {
			s.rec.Record(dtrace.Event{Action: dtrace.ActNodeRepair,
				Reason: "agent-online", Node: cp.Node + 1})
		}
		writeJSON(w, http.StatusOK, cp)
	case http.MethodGet:
		s.mu.Lock()
		s.sweepStaleLocked(now)
		out := make([]agentState, 0, len(s.agents))
		for _, a := range s.agents {
			out = append(out, *a)
		}
		s.mu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		writeJSON(w, http.StatusOK, out)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// sweepStaleLocked evicts agents whose last heartbeat predates the staleness
// window, recording each eviction as a presumed node failure.
func (s *Server) sweepStaleLocked(now time.Time) {
	for name, a := range s.agents {
		if now.Sub(a.LastSeen) > s.opts.AgentStaleAfter {
			delete(s.agents, name)
			s.rec.Record(dtrace.Event{Action: dtrace.ActNodeFail,
				Reason: "heartbeat-stale", Node: a.Node + 1})
		}
	}
}

// handleChaos injects faults for integration tests (mounted only when
// Options.EnableChaos is set):
//
//	{"action":"evict-agent","agent":NAME}  — drop an agent as if its node died
//	{"action":"fail-job","job":ID}         — kill a job: profile reset, requeued
//	{"action":"delay","delay_ms":N}        — add per-request latency (0 clears)
func (s *Server) handleChaos(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Action  string `json:"action"`
		Agent   string `json:"agent"`
		Job     int    `json:"job"`
		DelayMS int64  `json:"delay_ms"`
	}
	if !s.decode(w, r, &req) {
		return
	}
	switch req.Action {
	case "evict-agent":
		s.mu.Lock()
		a, ok := s.agents[req.Agent]
		if ok {
			delete(s.agents, req.Agent)
			_ = s.logOpLocked(walOp{Op: "evict-agent", Name: req.Agent}, false)
		}
		s.mu.Unlock()
		if !ok {
			http.Error(w, fmt.Sprintf("unknown agent %q", req.Agent), http.StatusNotFound)
			return
		}
		s.rec.Record(dtrace.Event{Action: dtrace.ActNodeFail,
			Reason: "chaos-evict", Node: a.Node + 1})
		writeJSON(w, http.StatusOK, a)
	case "fail-job":
		s.mu.Lock()
		js, ok := s.jobs[req.Job]
		if !ok {
			s.mu.Unlock()
			http.Error(w, fmt.Sprintf("unknown job %d", req.Job), http.StatusNotFound)
			return
		}
		s.applyFailJobLocked(js)
		_ = s.logOpLocked(walOp{Op: "fail-job", ID: js.ID}, false)
		cp := *js
		s.mu.Unlock()
		s.rec.Record(dtrace.Event{Job: cp.ID, Action: dtrace.ActRequeue,
			Reason: "chaos-kill", VC: cp.VC, GPUs: cp.GPUs})
		writeJSON(w, http.StatusOK, cp)
	case "delay":
		if req.DelayMS < 0 {
			http.Error(w, "delay_ms must be non-negative", http.StatusBadRequest)
			return
		}
		s.delayMS.Store(req.DelayMS)
		writeJSON(w, http.StatusOK, map[string]int64{"delay_ms": req.DelayMS})
	default:
		http.Error(w, fmt.Sprintf("unknown action %q", req.Action), http.StatusBadRequest)
	}
}

// handleTrace serves the decision-trace flight recorder: a JSON document
// with the deterministic digest, the lifetime summary and the retained
// event window, or the raw retained events as JSONL with ?format=jsonl.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := s.rec.WriteJSONL(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Digest  string         `json:"digest"`
		Count   int64          `json:"count"`
		Summary dtrace.Summary `json:"summary"`
		Events  []dtrace.Event `json:"events"`
	}{
		Digest:  s.rec.Digest(),
		Count:   s.rec.Summary().Total,
		Summary: s.rec.Summary(),
		Events:  s.rec.Events(),
	})
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503 with
// "draining" once Shutdown has begun. It is routed ahead of the drain gate in
// ServeHTTP so orchestrators can observe the drain instead of a bare refusal.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// durableStatus is the /statusz view of the durability layer.
type durableStatus struct {
	StateDir           string  `json:"state_dir"`
	WALRecords         int64   `json:"wal_records"` // records since the last snapshot
	WALBytes           int64   `json:"wal_bytes"`
	HasSnapshot        bool    `json:"has_snapshot"`
	SnapshotAgeSec     float64 `json:"snapshot_age_sec"`
	Compactions        int64   `json:"compactions"`
	RecoveredRecords   int     `json:"recovered_records"`
	RecoveredTornBytes int64   `json:"recovered_torn_bytes"`
}

// handleStatusz reports operational state: uptime, population counts, drain
// state and — when durability is on — WAL/snapshot lag.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	now := s.opts.Clock()
	out := struct {
		Status    string         `json:"status"`
		UptimeSec float64        `json:"uptime_sec"`
		Jobs      int            `json:"jobs"`
		Agents    int            `json:"agents"`
		Draining  bool           `json:"draining"`
		Durable   *durableStatus `json:"durable,omitempty"`
	}{Status: "ok", Draining: s.draining.Load()}
	if out.Draining {
		out.Status = "draining"
	}
	s.mu.Lock()
	out.UptimeSec = now.Sub(s.started).Seconds()
	out.Jobs = len(s.jobs)
	out.Agents = len(s.agents)
	if st := s.store; st != nil {
		out.Durable = &durableStatus{
			StateDir:           st.dir,
			WALRecords:         st.wal.Records(),
			WALBytes:           st.wal.Bytes(),
			HasSnapshot:        st.hadSnapshot,
			SnapshotAgeSec:     now.Sub(st.snapTime).Seconds(),
			Compactions:        st.compactions,
			RecoveredRecords:   st.recovered.Records,
			RecoveredTornBytes: st.recovered.TornBytes,
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handlePackingModel renders the decision tree (system transparency, A5).
func (s *Server) handlePackingModel(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, s.analyzer.Render())
	imp := s.analyzer.FeatureImportances()
	for i, name := range s.analyzer.FeatureNames() {
		fmt.Fprintf(w, "importance %-36s %.3f\n", name, imp[i])
	}
}

func (s *Server) snapshotLocked() []*jobState {
	out := make([]*jobState, 0, len(s.jobs))
	for _, js := range s.jobs {
		cp := *js
		out = append(out, &cp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
