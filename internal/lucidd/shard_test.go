package lucidd

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// parityClock pins the server clock so heartbeat timestamps (and therefore
// /agents bodies) are identical across the servers under comparison.
func parityClock() func() time.Time {
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return fixed }
}

// parityOps generates one seeded, randomized op sequence — submissions,
// samples, heartbeats and chaos kills spread across VCs — and applies it to
// srv. Ops are issued sequentially so the sequence (including which job IDs
// get sampled and killed) is identical for every server it is replayed on.
// Telemetry POSTs accept 200 (sync ingest) or 202 (async ingest); anything
// else — in particular a 429, which would silently thin the op sequence —
// fails the run, so parity servers must be built with a queue large enough
// to never hit its high-water mark.
func parityOps(t *testing.T, srv *Server, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var acked []int
	for i := 0; i < n; i++ {
		vc := fmt.Sprintf("vc-%d", rng.Intn(5))
		switch roll := rng.Intn(10); {
		case roll < 3: // submit
			body := fmt.Sprintf(`{"name":"par-%d","user":"u%d","vc":"%s","gpus":%d}`,
				i, rng.Intn(3), vc, 1+rng.Intn(8))
			rec := do(t, srv, http.MethodPost, "/jobs", body)
			if rec.Code != http.StatusCreated {
				t.Fatalf("op %d submit: %d: %s", i, rec.Code, rec.Body)
			}
			var js jobState
			if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
				t.Fatal(err)
			}
			acked = append(acked, js.ID)
		case roll < 7: // sample a previously acked job
			if len(acked) == 0 {
				continue
			}
			id := acked[rng.Intn(len(acked))]
			body := fmt.Sprintf(`{"job":%d,"gpu_util":%d,"gpu_mem_mb":%d,"gpu_mem_util":%d}`,
				id, 10+rng.Intn(80), 1000+rng.Intn(12000), 5+rng.Intn(50))
			if rec := do(t, srv, http.MethodPost, "/metrics", body); rec.Code != http.StatusOK && rec.Code != http.StatusAccepted {
				t.Fatalf("op %d sample: %d: %s", i, rec.Code, rec.Body)
			}
		case roll < 9: // heartbeat — an agent's VC is a stable function of its
			// name: an agent that flaps between VCs migrates shards, leaving a
			// stale twin behind until the sweep (a documented non-goal).
			a := rng.Intn(24)
			body := fmt.Sprintf(`{"name":"agent-%d","vc":"vc-%d","node":%d}`, a, a%5, a)
			if rec := do(t, srv, http.MethodPost, "/agents", body); rec.Code != http.StatusOK && rec.Code != http.StatusAccepted {
				t.Fatalf("op %d heartbeat: %d: %s", i, rec.Code, rec.Body)
			}
		default: // chaos kill
			if len(acked) == 0 {
				continue
			}
			body := fmt.Sprintf(`{"action":"fail-job","job":%d}`, acked[rng.Intn(len(acked))])
			if rec := do(t, srv, http.MethodPost, "/chaos", body); rec.Code != http.StatusOK {
				t.Fatalf("op %d fail-job: %d: %s", i, rec.Code, rec.Body)
			}
		}
	}
}

// get fetches a path and returns the body, failing on non-200.
func get(t *testing.T, s *Server, path string) string {
	t.Helper()
	rec := do(t, s, http.MethodGet, path, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: %d: %s", path, rec.Code, rec.Body)
	}
	return rec.Body.String()
}

// TestShardParity is the sharding AND ingest-mode correctness contract: the
// identical randomized op sequence pushed through {1,8} shards × {sync,async
// ingest} must yield byte-identical observable state after a flush barrier —
// job listings, schedule order, per-tenant views, agent listings and
// population counts. Job IDs come from the global allocator, estimates from
// per-shard clones of one fitted model, and async ingest preserves per-shard
// FIFO apply order with chaos ops barriered behind acknowledged telemetry —
// so nothing may depend on the shard count or the ingest mode. The CI race
// step runs this package under -race.
func TestShardParity(t *testing.T) {
	build := func(shards int, async bool) *Server {
		opts := Options{Shards: shards, EnableChaos: true, Clock: parityClock()}
		if async {
			// Large enough that the sequential op stream can never trip
			// backpressure (parityOps fails on any 429); a small batch keeps
			// many flush barriers landing mid-batch.
			opts.IngestQueue = 4096
			opts.IngestBatch = 32
		}
		s, err := NewServerWith(opts)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	variants := []struct {
		name   string
		shards int
		async  bool
	}{
		{"1-sync", 1, false},
		{"8-sync", 8, false},
		{"1-async", 1, true},
		{"8-async", 8, true},
	}
	servers := make([]*Server, len(variants))
	for i, v := range variants {
		servers[i] = build(v.shards, v.async)
		if got := servers[i].Shards(); got != v.shards {
			t.Fatalf("%s: shard count = %d", v.name, got)
		}
		parityOps(t, servers[i], 1234, 400)
		// The explicit barrier: every acknowledged telemetry op must be
		// applied before the bodies below are compared.
		servers[i].Flush()
	}

	paths := []string{"/jobs", "/schedule", "/agents"}
	for i := 0; i < 5; i++ {
		vc := fmt.Sprintf("vc-%d", i)
		paths = append(paths, "/jobs?vc="+vc, "/schedule?vc="+vc, "/agents?vc="+vc)
	}
	ref := servers[0]
	for _, p := range paths {
		want := get(t, ref, p)
		for i := 1; i < len(servers); i++ {
			if got := get(t, servers[i], p); got != want {
				t.Errorf("GET %s diverges between %s and %s:\n %s: %s\n %s: %s",
					p, variants[0].name, variants[i].name,
					variants[0].name, want, variants[i].name, got)
			}
		}
	}

	type counts struct {
		Jobs   int `json:"jobs"`
		Agents int `json:"agents"`
	}
	var stRef counts
	if err := json.Unmarshal([]byte(get(t, ref, "/statusz")), &stRef); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(servers); i++ {
		var st counts
		if err := json.Unmarshal([]byte(get(t, servers[i], "/statusz")), &st); err != nil {
			t.Fatal(err)
		}
		if st != stRef {
			t.Errorf("statusz counts diverge: %s %+v, %s %+v",
				variants[0].name, stRef, variants[i].name, st)
		}
	}
	if stRef.Jobs == 0 || stRef.Agents == 0 {
		t.Errorf("degenerate parity run (no population): %+v", stRef)
	}
}

// twoVCsOnDistinctShards finds two VC names routed to different shards.
func twoVCsOnDistinctShards(t *testing.T, s *Server) (string, string) {
	t.Helper()
	first := "vc-0"
	a := s.shardFor(first)
	for i := 1; i < 64; i++ {
		vc := fmt.Sprintf("vc-%d", i)
		if s.shardFor(vc) != a {
			return first, vc
		}
	}
	t.Fatal("no VC pair hashing to distinct shards in 64 tries")
	return "", ""
}

// TestSlowShardDoesNotBlockSibling is the satellite-fix regression test: with
// one shard's mutex held (a wedged or slow tenant), a sibling shard's
// heartbeat path, its tenant-scoped agent listing, and the lock-free
// Prometheus scrape must all still complete. Before the sharding refactor a
// single mutex serialized all of these behind the stall.
func TestSlowShardDoesNotBlockSibling(t *testing.T) {
	s, err := NewServerWith(Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	vcSlow, vcLive := twoVCsOnDistinctShards(t, s)

	// Wedge vcSlow's shard the hard way: grab its mutex and sit on it.
	slow := s.shardFor(vcSlow)
	slow.mu.Lock()
	released := make(chan struct{})
	defer func() { <-released }()
	defer slow.mu.Unlock()

	type outcome struct {
		what string
		code int
	}
	results := make(chan outcome, 3)
	go func() {
		defer close(released)
		rec := do(t, s, http.MethodPost, "/agents",
			fmt.Sprintf(`{"name":"live-1","vc":"%s","node":1}`, vcLive))
		results <- outcome{"heartbeat " + vcLive, rec.Code}
		rec = do(t, s, http.MethodGet, "/agents?vc="+vcLive, "")
		results <- outcome{"agents?vc=" + vcLive, rec.Code}
		rec = do(t, s, http.MethodGet, "/metrics", "")
		results <- outcome{"metrics scrape", rec.Code}
	}()
	for i := 0; i < 3; i++ {
		select {
		case r := <-results:
			if r.code != http.StatusOK {
				t.Errorf("%s returned %d with a sibling shard wedged", r.what, r.code)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("sibling-shard request blocked behind a wedged shard (%d/3 completed)", i)
		}
	}
}

// TestShardRecoveryEdgeCases boots one server over a state dir where the two
// shards crashed in different, independently-nasty states: shard A has a
// snapshot plus a torn WAL tail, shard B has no snapshot at all (WAL-only).
// Both must recover in the same boot, each reporting its own stats, with the
// aggregate summing them.
func TestShardRecoveryEdgeCases(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewServerWith(Options{Shards: 2, StateDir: dir, CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	vcA, vcB := twoVCsOnDistinctShards(t, s1)
	shardA, shardB := s1.shardFor(vcA).idx, s1.shardFor(vcB).idx

	// Shard A: four submits — crosses CompactEvery=3, so it has a snapshot
	// and a short post-compaction WAL.
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"name":"a-%d","vc":"%s","gpus":1}`, i, vcA)
		if rec := do(t, s1, http.MethodPost, "/jobs", body); rec.Code != http.StatusCreated {
			t.Fatalf("submit a-%d: %d: %s", i, rec.Code, rec.Body)
		}
	}
	// Shard B: two submits — never compacts, recovery is pure WAL replay.
	for i := 0; i < 2; i++ {
		body := fmt.Sprintf(`{"name":"b-%d","vc":"%s","gpus":2}`, i, vcB)
		if rec := do(t, s1, http.MethodPost, "/jobs", body); rec.Code != http.StatusCreated {
			t.Fatalf("submit b-%d: %d: %s", i, rec.Code, rec.Body)
		}
	}
	want := jobsBody(t, s1)
	// Crash without Shutdown, then tear shard A's WAL tail.
	torn := []byte{0xba, 0xad, 0xf0, 0x0d}
	walA := filepath.Join(dir, shardDirName(shardA), walFileName)
	f, err := os.OpenFile(walA, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := NewServerWith(Options{Shards: 2, StateDir: dir, CompactEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := jobsBody(t, s2); got != want {
		t.Errorf("multi-shard recovery lost state:\n got %s\nwant %s", got, want)
	}
	recs := s2.ShardRecoveries()
	if len(recs) != 2 {
		t.Fatalf("ShardRecoveries = %d entries, want 2", len(recs))
	}
	byShard := map[int]ShardRecovery{}
	for _, r := range recs {
		byShard[r.Shard] = r
	}
	a, b := byShard[shardA], byShard[shardB]
	if !a.FromSnapshot || a.TornBytes != int64(len(torn)) || a.Records != 1 {
		t.Errorf("shard %d (snapshot+torn tail) recovery = %+v, want snapshot, 1 record, %d torn bytes",
			shardA, a, len(torn))
	}
	if b.FromSnapshot || b.TornBytes != 0 || b.Records != 2 {
		t.Errorf("shard %d (WAL-only) recovery = %+v, want no snapshot, 2 records, 0 torn", shardB, b)
	}
	records, tornBytes, fromSnap := s2.Recovery()
	if records != a.Records+b.Records || tornBytes != a.TornBytes || !fromSnap {
		t.Errorf("aggregate Recovery() = (%d, %d, %v), want (%d, %d, true)",
			records, tornBytes, fromSnap, a.Records+b.Records, a.TornBytes)
	}
	// New submissions must not collide with IDs either shard recovered.
	rec := do(t, s2, http.MethodPost, "/jobs", fmt.Sprintf(`{"name":"post","vc":"%s","gpus":1}`, vcB))
	var js jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if js.ID != 7 {
		t.Errorf("post-recovery ID = %d, want 7 (6 jobs acknowledged before the crash)", js.ID)
	}
}

// TestStateDirShardCountBinding: VC→shard routing is a hash mod the shard
// count, so reopening a state dir with a different count would silently send
// recovered tenants to the wrong shard. Boot must refuse instead.
func TestStateDirShardCountBinding(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewServerWith(Options{Shards: 2, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if rec := do(t, s1, http.MethodPost, "/jobs", `{"name":"j","vc":"vc-0","gpus":1}`); rec.Code != http.StatusCreated {
		t.Fatalf("submit: %d", rec.Code)
	}
	if _, err := NewServerWith(Options{Shards: 3, StateDir: dir}); err == nil {
		t.Fatal("reopening a 2-shard state dir with -shards 3 succeeded; want refusal")
	}
	// The matching count still works.
	if _, err := NewServerWith(Options{Shards: 2, StateDir: dir}); err != nil {
		t.Fatalf("reopening with the original shard count failed: %v", err)
	}
}
