package lucidd

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/loadgen"
)

// soakStatus is the slice of /statusz the soak test watches.
type soakStatus struct {
	Jobs    int `json:"jobs"`
	Shards  int `json:"shards"`
	ByShard []struct {
		Shard   int `json:"shard"`
		Durable *struct {
			WALRecords  int64 `json:"wal_records"`
			Compactions int64 `json:"compactions"`
		} `json:"durable"`
	} `json:"by_shard"`
}

// TestSoakShardedDrainRecover is the concurrency soak: a loadgen fleet
// hammers a durable 4-shard server from many goroutines with the full mixed
// workload, a SIGTERM-style drain lands mid-run while requests are still in
// flight, and then the state dir is rebooted. The contract being soaked:
//
//   - zero dropped acks — every job the server 201-acknowledged, at any point
//     up to and including the drain, is present after recovery;
//   - monotonic WAL — sampled per shard throughout the run, a shard's WAL
//     record count only moves backwards when its compaction count moved
//     forwards (a reset without a snapshot would be data loss);
//   - clean recovery on every shard — the post-drain boot replays nothing and
//     finds no torn bytes on any shard.
//
// The run under -race in CI is what exercises the lock discipline: workers,
// the statusz poller and the drain all race against the shard mutexes.
func TestSoakShardedDrainRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	dir := t.TempDir()
	const shards = 4
	// Async ingest with a deliberately small queue: the soak also exercises
	// the applier goroutines (batched apply/fsync, barrier handling, drain
	// on Shutdown) under -race, and lets real 429 backpressure land — which
	// loadgen must classify as Rejected, never as an error.
	srv, err := NewServerWith(Options{Shards: shards, StateDir: dir, CompactEvery: 32,
		IngestQueue: 64, IngestBatch: 16})
	if err != nil {
		t.Fatal(err)
	}

	// Poll /statusz concurrently with the load, recording per-shard
	// (wal_records, compactions) pairs for the monotonicity check.
	type walSample struct{ records, compactions int64 }
	var (
		pollMu  sync.Mutex
		history = map[int][]walSample{}
	)
	pollDone := make(chan struct{})
	stopPoll := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-stopPoll:
				return
			case <-time.After(5 * time.Millisecond):
			}
			req := httptest.NewRequest(http.MethodGet, "/statusz", nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return // draining — the run is over
			}
			var st soakStatus
			if json.Unmarshal(rec.Body.Bytes(), &st) != nil {
				continue
			}
			pollMu.Lock()
			for _, sh := range st.ByShard {
				if sh.Durable != nil {
					history[sh.Shard] = append(history[sh.Shard],
						walSample{sh.Durable.WALRecords, sh.Durable.Compactions})
				}
			}
			pollMu.Unlock()
		}
	}()

	// The load: mixed ops from 6 workers. Stop is closed after the drain, so
	// workers spend the tail of the run observing 503s (counted as Rejected).
	stopLoad := make(chan struct{})
	resCh := make(chan *loadgen.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := loadgen.Run(loadgen.Options{
			Handler: srv, Agents: 96, VCs: 6, Workers: 6,
			Duration: 30 * time.Second, // backstop; Stop ends the run first
			Seed:     99, Stop: stopLoad,
		})
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()

	// Let the fleet run, then drain mid-flight.
	time.Sleep(600 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("mid-run drain failed: %v", err)
	}
	close(stopLoad)
	close(stopPoll)
	<-pollDone

	var res *loadgen.Result
	select {
	case res = <-resCh:
	case err := <-errCh:
		t.Fatal(err)
	case <-time.After(15 * time.Second):
		t.Fatal("load workers did not stop after drain")
	}
	if res.Errors != 0 {
		t.Fatalf("soak run saw %d hard errors (per-op: %+v)", res.Errors, res.PerOp)
	}
	if len(res.AckedJobs) == 0 {
		t.Fatal("soak run acknowledged no jobs — nothing was soaked")
	}
	if res.Rejected == 0 {
		t.Log("note: no 503s observed — drain landed after the last request")
	}

	// Monotonic WAL: per shard, records may only drop when compactions rose.
	pollMu.Lock()
	for shard, samples := range history {
		for i := 1; i < len(samples); i++ {
			prev, cur := samples[i-1], samples[i]
			if cur.records < prev.records && cur.compactions <= prev.compactions {
				t.Errorf("shard %d WAL went backwards without a compaction: %+v -> %+v",
					shard, prev, cur)
			}
			if cur.compactions < prev.compactions {
				t.Errorf("shard %d compaction count went backwards: %+v -> %+v", shard, prev, cur)
			}
		}
	}
	pollMu.Unlock()

	// Reboot and audit the ledger: every acked job recovered, on every shard
	// a clean (snapshot-only, zero-torn) recovery after the clean drain.
	srv2, err := NewServerWith(Options{Shards: shards, StateDir: dir, CompactEvery: 32})
	if err != nil {
		t.Fatalf("post-drain reboot: %v", err)
	}
	recs := srv2.ShardRecoveries()
	if len(recs) != shards {
		t.Fatalf("recovered %d shards, want %d", len(recs), shards)
	}
	for _, r := range recs {
		if r.Records != 0 || r.TornBytes != 0 {
			t.Errorf("shard %d dirty after clean drain: %+v", r.Shard, r)
		}
	}
	var jobs []jobState
	if err := json.Unmarshal([]byte(jobsBody(t, srv2)), &jobs); err != nil {
		t.Fatal(err)
	}
	have := make(map[int]bool, len(jobs))
	for _, js := range jobs {
		have[js.ID] = true
	}
	dropped := 0
	for _, id := range res.AckedJobs {
		if !have[id] {
			dropped++
			t.Errorf("job %d was 201-acknowledged but missing after recovery", id)
		}
	}
	if dropped == 0 {
		t.Logf("soak: %d reqs (%d acked jobs, %d rejected during drain) — zero dropped acks across %d shards",
			res.Requests, len(res.AckedJobs), res.Rejected, shards)
	}
}
