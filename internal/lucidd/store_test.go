package lucidd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// durableServer builds a server persisting into dir. Model training is
// shared process-wide, so this is cheap after the first test.
func durableServer(t *testing.T, dir string, compactEvery int64) *Server {
	t.Helper()
	s, err := NewServerWith(Options{StateDir: dir, CompactEvery: compactEvery, EnableChaos: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// jobsBody fetches GET /jobs and returns the raw JSON (IDs are sorted, so
// equal state yields equal bodies).
func jobsBody(t *testing.T, s *Server) string {
	t.Helper()
	rec := do(t, s, http.MethodGet, "/jobs", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /jobs: %d: %s", rec.Code, rec.Body)
	}
	return rec.Body.String()
}

// TestRecoverFromWAL is the crash-recovery acceptance test: a server that is
// abandoned without Shutdown (the in-process analogue of SIGKILL — no final
// snapshot, only the WAL) must come back with every acknowledged mutation.
func TestRecoverFromWAL(t *testing.T) {
	dir := t.TempDir()
	s1 := durableServer(t, dir, 0)
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"name":"job-%d","user":"alice","vc":"vc0","gpus":%d}`, i, i+1)
		if rec := do(t, s1, http.MethodPost, "/jobs", body); rec.Code != http.StatusCreated {
			t.Fatalf("submit %d: %d: %s", i, rec.Code, rec.Body)
		}
	}
	for i := 0; i < minSamples; i++ {
		// Near-idle PPO-like samples: the analyzer scores these Tiny, so the
		// test can tell a recovered profile from the unprofiled Jumbo prior.
		body := `{"job":1,"gpu_util":11,"gpu_mem_mb":1200,"gpu_mem_util":7}`
		if rec := do(t, s1, http.MethodPost, "/metrics", body); rec.Code != http.StatusOK {
			t.Fatalf("metrics: %d: %s", rec.Code, rec.Body)
		}
	}
	if rec := do(t, s1, http.MethodPost, "/agents", `{"name":"agent-0","node":0}`); rec.Code != http.StatusOK {
		t.Fatalf("agent: %d: %s", rec.Code, rec.Body)
	}
	if rec := do(t, s1, http.MethodPost, "/chaos", `{"action":"fail-job","job":2}`); rec.Code != http.StatusOK {
		t.Fatalf("fail-job: %d: %s", rec.Code, rec.Body)
	}
	want := jobsBody(t, s1)
	// s1 is dropped here without Shutdown: no snapshot was ever written, so
	// the second server rebuilds purely from WAL replay.

	s2 := durableServer(t, dir, 0)
	if got := jobsBody(t, s2); got != want {
		t.Errorf("recovered jobs differ:\n got %s\nwant %s", got, want)
	}
	records, torn, fromSnap := s2.Recovery()
	if records == 0 || torn != 0 || fromSnap {
		t.Errorf("recovery = (%d records, %d torn, snapshot=%v), want WAL-only replay",
			records, torn, fromSnap)
	}
	var recovered []jobState
	if err := json.Unmarshal([]byte(jobsBody(t, s2)), &recovered); err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(recovered))
	}
	if j := recovered[0]; j.Samples != minSamples || j.Score == "Jumbo" {
		t.Errorf("job 1 lost its profile across the crash: %+v", j)
	}
	if j := recovered[1]; j.Restarts != 1 || j.Samples != 0 {
		t.Errorf("job 2 lost its chaos kill across the crash: %+v", j)
	}
	// ID allocation must continue, never reuse.
	rec := do(t, s2, http.MethodPost, "/jobs", `{"name":"after-crash","gpus":1}`)
	var js jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if js.ID != 4 {
		t.Errorf("post-recovery job got ID %d, want 4", js.ID)
	}
	// The recovered agent heartbeat survives too (it is fresh enough not to
	// be swept).
	arec := do(t, s2, http.MethodGet, "/agents", "")
	var agents []agentState
	if err := json.Unmarshal(arec.Body.Bytes(), &agents); err != nil {
		t.Fatal(err)
	}
	if len(agents) != 1 || agents[0].Name != "agent-0" {
		t.Errorf("recovered agents = %+v, want [agent-0]", agents)
	}
}

// TestRecoverTornTail crashes mid-append: garbage after the last valid record
// must be truncated, everything before it recovered.
func TestRecoverTornTail(t *testing.T) {
	dir := t.TempDir()
	s1 := durableServer(t, dir, 0)
	if rec := do(t, s1, http.MethodPost, "/jobs", `{"name":"survivor","gpus":2}`); rec.Code != http.StatusCreated {
		t.Fatalf("submit: %d: %s", rec.Code, rec.Body)
	}
	want := jobsBody(t, s1)

	walPath := filepath.Join(dir, shardDirName(0), walFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := durableServer(t, dir, 0)
	records, torn, _ := s2.Recovery()
	if records != 1 || torn != 5 {
		t.Errorf("recovery = (%d records, %d torn), want (1, 5)", records, torn)
	}
	if got := jobsBody(t, s2); got != want {
		t.Errorf("torn-tail recovery lost state:\n got %s\nwant %s", got, want)
	}
}

// TestCompactionAndShutdown drives the WAL past the compaction threshold,
// checks /statusz reflects the snapshot, then shuts down cleanly and verifies
// the next boot restores from the snapshot with an empty WAL.
func TestCompactionAndShutdown(t *testing.T) {
	dir := t.TempDir()
	s1 := durableServer(t, dir, 4)
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"name":"job-%d","gpus":1}`, i)
		if rec := do(t, s1, http.MethodPost, "/jobs", body); rec.Code != http.StatusCreated {
			t.Fatalf("submit %d: %d: %s", i, rec.Code, rec.Body)
		}
	}
	var status struct {
		Durable *durableStatus `json:"durable"`
	}
	if err := json.Unmarshal(do(t, s1, http.MethodGet, "/statusz", "").Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.Durable == nil {
		t.Fatal("durable server reports no durable status")
	}
	if status.Durable.Compactions < 1 || !status.Durable.HasSnapshot {
		t.Errorf("expected a compaction after 6 submits with threshold 4: %+v", status.Durable)
	}
	if status.Durable.WALRecords >= 6 {
		t.Errorf("WAL was not reset by compaction: %d records", status.Durable.WALRecords)
	}
	want := jobsBody(t, s1)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	s2 := durableServer(t, dir, 4)
	records, torn, fromSnap := s2.Recovery()
	if records != 0 || torn != 0 || !fromSnap {
		t.Errorf("post-shutdown recovery = (%d records, %d torn, snapshot=%v), want snapshot-only",
			records, torn, fromSnap)
	}
	if got := jobsBody(t, s2); got != want {
		t.Errorf("snapshot recovery lost state:\n got %s\nwant %s", got, want)
	}
}

// TestHealthz covers the probe contract: 200 while serving, 503 "draining"
// after Shutdown begins (served past the drain gate).
func TestHealthz(t *testing.T) {
	s, err := NewServer()
	if err != nil {
		t.Fatal(err)
	}
	rec := do(t, s, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d: %s", rec.Code, rec.Body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rec = do(t, s, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "draining" {
		t.Fatalf("healthz body = %v, want status=draining", body)
	}
}

// TestStatusz checks the operational report on a plain in-memory server.
func TestStatusz(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodGet, "/statusz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("statusz: %d: %s", rec.Code, rec.Body)
	}
	var status struct {
		Status    string         `json:"status"`
		UptimeSec float64        `json:"uptime_sec"`
		Durable   *durableStatus `json:"durable"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &status); err != nil {
		t.Fatal(err)
	}
	if status.Status != "ok" || status.UptimeSec < 0 {
		t.Errorf("statusz = %+v", status)
	}
	if status.Durable != nil {
		t.Errorf("in-memory server reports durable status: %+v", status.Durable)
	}
}
