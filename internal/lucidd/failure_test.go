package lucidd

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable, manually-advanced clock for staleness tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// newHardenedServer builds a private server instance (training is shared
// process-wide, so this is cheap after the first test).
func newHardenedServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s, err := NewServerWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOversizedPayloadRejected(t *testing.T) {
	s := newHardenedServer(t, Options{MaxBodyBytes: 256})
	big := `{"name":"` + strings.Repeat("a", 1024) + `","gpus":1}`
	if rec := do(t, s, http.MethodPost, "/jobs", big); rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", rec.Code)
	}
	// A body under the cap still works.
	if rec := do(t, s, http.MethodPost, "/jobs", `{"name":"ok","gpus":1}`); rec.Code != http.StatusCreated {
		t.Fatalf("normal body after cap: status %d: %s", rec.Code, rec.Body)
	}
}

func TestMalformedBodiesRejected(t *testing.T) {
	s := newHardenedServer(t, Options{EnableChaos: true})
	for _, c := range []struct{ path, body string }{
		{"/jobs", `{"name":`},
		{"/metrics", `not-json`},
		{"/agents", `[1,2,3`},
		{"/chaos", `{{`},
	} {
		if rec := do(t, s, http.MethodPost, c.path, c.body); rec.Code != http.StatusBadRequest {
			t.Errorf("POST %s with %q: status %d, want 400", c.path, c.body, rec.Code)
		}
	}
}

func TestAgentHeartbeatAndStaleEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	s := newHardenedServer(t, Options{AgentStaleAfter: 60 * time.Second, Clock: clk.Now})

	for _, body := range []string{
		`{"name":"agent-0","node":0}`,
		`{"name":"agent-1","node":1}`,
	} {
		if rec := do(t, s, http.MethodPost, "/agents", body); rec.Code != http.StatusOK {
			t.Fatalf("register: status %d: %s", rec.Code, rec.Body)
		}
	}
	if rec := do(t, s, http.MethodPost, "/agents", `{"name":"","node":0}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("nameless agent accepted: %d", rec.Code)
	}

	list := func() []agentState {
		rec := do(t, s, http.MethodGet, "/agents", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("list agents: %d", rec.Code)
		}
		var out []agentState
		if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if got := list(); len(got) != 2 {
		t.Fatalf("agents = %d, want 2", len(got))
	}

	// 45s in, agent-1 heartbeats; agent-0 stays silent. At 45+40s agent-0 is
	// 85s stale (evicted) while agent-1 is only 40s stale (alive).
	clk.Advance(45 * time.Second)
	if rec := do(t, s, http.MethodPost, "/agents", `{"name":"agent-1","node":1}`); rec.Code != http.StatusOK {
		t.Fatalf("heartbeat: %d", rec.Code)
	}
	clk.Advance(40 * time.Second)
	got := list()
	if len(got) != 1 || got[0].Name != "agent-1" {
		t.Fatalf("after staleness sweep: %+v, want only agent-1", got)
	}

	// The eviction is recorded as a presumed node failure.
	rec := do(t, s, http.MethodGet, "/trace", "")
	var tr struct {
		Summary struct {
			Actions map[string]int64 `json:"actions"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Summary.Actions["node-fail"] == 0 {
		t.Fatalf("stale eviction not traced: %v", tr.Summary.Actions)
	}
	// A returning agent re-registers cleanly.
	if rec := do(t, s, http.MethodPost, "/agents", `{"name":"agent-0","node":0}`); rec.Code != http.StatusOK {
		t.Fatalf("re-register after eviction: %d", rec.Code)
	}
	if got := list(); len(got) != 2 {
		t.Fatalf("agents after return = %d, want 2", len(got))
	}
}

func TestChaosEndpointGatedByOption(t *testing.T) {
	s := newHardenedServer(t, Options{}) // chaos off
	if rec := do(t, s, http.MethodPost, "/chaos", `{"action":"delay","delay_ms":1}`); rec.Code != http.StatusNotFound {
		t.Fatalf("/chaos mounted without EnableChaos: %d", rec.Code)
	}
}

func TestChaosFailJobResetsProfile(t *testing.T) {
	s := newHardenedServer(t, Options{EnableChaos: true})
	rec := do(t, s, http.MethodPost, "/jobs", `{"name":"victim","user":"v","vc":"vc0","gpus":1}`)
	var js jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	profileTiny := func() jobState {
		var last jobState
		for i := 0; i < minSamples; i++ {
			rec := do(t, s, http.MethodPost, "/metrics",
				`{"job":`+itoa(js.ID)+`,"gpu_util":11,"gpu_mem_mb":1200,"gpu_mem_util":7}`)
			if rec.Code != http.StatusOK {
				t.Fatalf("metrics: %d %s", rec.Code, rec.Body)
			}
			json.Unmarshal(rec.Body.Bytes(), &last)
		}
		return last
	}
	if got := profileTiny(); got.Score != "Tiny" {
		t.Fatalf("profiled score %q, want Tiny", got.Score)
	}

	rec = do(t, s, http.MethodPost, "/chaos", `{"action":"fail-job","job":`+itoa(js.ID)+`}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("fail-job: %d %s", rec.Code, rec.Body)
	}
	var killed jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &killed); err != nil {
		t.Fatal(err)
	}
	if killed.Restarts != 1 || killed.Samples != 0 || killed.Score != "Jumbo" {
		t.Fatalf("kill must void the profile back to the Jumbo prior: %+v", killed)
	}
	// Recovery: fresh samples rebuild the profile from scratch.
	if got := profileTiny(); got.Score != "Tiny" || got.Restarts != 1 {
		t.Fatalf("post-kill reprofiling: %+v", got)
	}

	if rec := do(t, s, http.MethodPost, "/chaos", `{"action":"fail-job","job":99999}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job killed: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/chaos", `{"action":"evict-agent","agent":"ghost"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown agent evicted: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/chaos", `{"action":"frobnicate"}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown action accepted: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/chaos", `{"action":"delay","delay_ms":-5}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("negative delay accepted: %d", rec.Code)
	}
}

func TestChaosEvictAgent(t *testing.T) {
	s := newHardenedServer(t, Options{EnableChaos: true})
	do(t, s, http.MethodPost, "/agents", `{"name":"doomed","node":3}`)
	if rec := do(t, s, http.MethodPost, "/chaos", `{"action":"evict-agent","agent":"doomed"}`); rec.Code != http.StatusOK {
		t.Fatalf("evict: %d %s", rec.Code, rec.Body)
	}
	rec := do(t, s, http.MethodGet, "/agents", "")
	var out []agentState
	json.Unmarshal(rec.Body.Bytes(), &out)
	if len(out) != 0 {
		t.Fatalf("agent survived eviction: %+v", out)
	}
}

// TestGracefulShutdownDrains: a request in flight when Shutdown begins runs
// to completion while new requests are refused with 503.
func TestGracefulShutdownDrains(t *testing.T) {
	s := newHardenedServer(t, Options{EnableChaos: true})
	// Hold every request for 50ms so "in flight" is a concrete window.
	if rec := do(t, s, http.MethodPost, "/chaos", `{"action":"delay","delay_ms":50}`); rec.Code != http.StatusOK {
		t.Fatalf("arming delay: %d", rec.Code)
	}

	inflightDone := make(chan int, 1)
	go func() {
		rec := do(t, s, http.MethodGet, "/schedule", "")
		inflightDone <- rec.Code
	}()
	// Wait until the request is actually inside ServeHTTP.
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never arrived")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if code := <-inflightDone; code != http.StatusOK {
		t.Fatalf("in-flight request got %d, want 200", code)
	}
	if rec := do(t, s, http.MethodGet, "/schedule", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request got %d, want 503", rec.Code)
	}
}

// TestConcurrentChaosAndSchedule interleaves /chaos kills with /schedule,
// /metrics and /agents traffic — meaningful under -race, where it catches
// unsynchronized access to the job table, agent table or chaos knobs.
func TestConcurrentChaosAndSchedule(t *testing.T) {
	s := newHardenedServer(t, Options{EnableChaos: true})
	rec := do(t, s, http.MethodPost, "/jobs", `{"name":"chaos-racer","user":"r","vc":"vc0","gpus":1}`)
	var js jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	do(t, s, http.MethodPost, "/agents", `{"name":"agent-r","node":0}`)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 4 {
				case 0:
					do(t, s, http.MethodPost, "/chaos", `{"action":"fail-job","job":`+itoa(js.ID)+`}`)
				case 1:
					do(t, s, http.MethodPost, "/metrics",
						`{"job":`+itoa(js.ID)+`,"gpu_util":40,"gpu_mem_mb":3000,"gpu_mem_util":12}`)
				case 2:
					do(t, s, http.MethodGet, "/schedule", "")
				case 3:
					do(t, s, http.MethodPost, "/agents", `{"name":"agent-r","node":0}`)
				}
			}
		}(g)
	}
	wg.Wait()

	rec = do(t, s, http.MethodGet, "/schedule", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule after chaos hammering: %d", rec.Code)
	}
	var out []jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Restarts == 0 {
		t.Fatalf("job table corrupted under chaos: %+v", out)
	}
}
