package lucidd

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// Server observability. Every server owns a metrics registry: GET /metrics
// serves it in Prometheus text exposition format, so the same scrape
// infrastructure that watches the node agents' GPUs can watch the control
// plane itself. The instruments cover the three layers an operator debugs in
// practice — the HTTP surface (per-endpoint latency and status codes), the
// durability layer (WAL append and fsync latency, snapshot/compaction cost),
// and the scheduler's population (queue depth, profiled jobs, live agents,
// per shard and in aggregate).
//
// The scrape path is deliberately lock-free with respect to the shards: the
// population gauges are refreshed from each shard's atomic counters, never
// by taking a shard mutex. A wedged or slow shard therefore cannot block
// monitoring — exactly when the operator needs the scrape most.

// serverMetrics bundles the pre-registered instruments.
type serverMetrics struct {
	reg *metrics.Registry

	httpReqs    *metrics.CounterVec   // lucidd_http_requests_total{path,method,code}
	httpLatency *metrics.HistogramVec // lucidd_http_request_seconds{path}

	walAppend *metrics.Histogram // lucidd_wal_append_seconds
	walFsync  *metrics.Histogram // lucidd_wal_fsync_seconds
	snapshot  *metrics.Histogram // lucidd_snapshot_seconds
	compacts  *metrics.Counter   // lucidd_compactions_total

	ingestApplied  *metrics.Counter   // lucidd_ingest_applied_total
	ingestRejected *metrics.Counter   // lucidd_ingest_rejected_total (429 backpressure)
	ingestErrors   *metrics.Counter   // lucidd_ingest_errors_total
	ingestBatch    *metrics.Histogram // lucidd_ingest_batch_ops
	ingestDepth    *metrics.GaugeVec  // lucidd_ingest_queue_depth{shard}

	recRecords *metrics.Gauge // lucidd_recovered_wal_records
	recTorn    *metrics.Gauge // lucidd_recovered_torn_bytes
	recSnap    *metrics.Gauge // lucidd_recovered_from_snapshot (shards recovered from snapshot)

	queueDepth *metrics.Gauge // lucidd_queue_depth
	profiled   *metrics.Gauge // lucidd_jobs_profiled
	agents     *metrics.Gauge // lucidd_agents

	shards      *metrics.Gauge    // lucidd_shards
	shardJobs   *metrics.GaugeVec // lucidd_shard_jobs{shard}
	shardAgents *metrics.GaugeVec // lucidd_shard_agents{shard}
}

// latencyBuckets spans 10µs–~80s: local WAL fsyncs sit at the bottom,
// chaos-delayed or drain-blocked requests at the top.
func latencyBuckets() []float64 { return metrics.ExpBuckets(1e-5, 2, 24) }

func newServerMetrics(clock func() time.Time, shards int) *serverMetrics {
	reg := metrics.New()
	reg.SetClock(clock)
	m := &serverMetrics{
		reg: reg,
		httpReqs: reg.CounterVec("lucidd_http_requests_total",
			"HTTP requests by endpoint, method and status code.",
			"path", "method", "code"),
		httpLatency: reg.HistogramVec("lucidd_http_request_seconds",
			"HTTP request latency by endpoint.", latencyBuckets(), "path"),
		walAppend: reg.Histogram("lucidd_wal_append_seconds",
			"WAL record append latency (including inline fsync when requested).",
			latencyBuckets()),
		walFsync: reg.Histogram("lucidd_wal_fsync_seconds",
			"WAL fsync latency.", latencyBuckets()),
		snapshot: reg.Histogram("lucidd_snapshot_seconds",
			"Snapshot write + WAL reset (compaction) duration.", latencyBuckets()),
		compacts: reg.Counter("lucidd_compactions_total",
			"Snapshot compactions performed."),
		ingestApplied: reg.Counter("lucidd_ingest_applied_total",
			"Telemetry ops applied by the async ingest appliers."),
		ingestRejected: reg.Counter("lucidd_ingest_rejected_total",
			"Telemetry POSTs refused with 429 (ingest queue at high-water mark)."),
		ingestErrors: reg.Counter("lucidd_ingest_errors_total",
			"WAL append/fsync errors inside the async ingest appliers."),
		ingestBatch: reg.Histogram("lucidd_ingest_batch_ops",
			"Ops applied per async ingest batch (one mutex hold, one fsync).",
			metrics.ExpBuckets(1, 2, 12)),
		ingestDepth: reg.GaugeVec("lucidd_ingest_queue_depth",
			"Queued telemetry ops per shard ingest queue.", "shard"),
		recRecords: reg.Gauge("lucidd_recovered_wal_records",
			"WAL records replayed at boot, summed across shards."),
		recTorn: reg.Gauge("lucidd_recovered_torn_bytes",
			"Torn WAL tail bytes truncated at boot, summed across shards."),
		recSnap: reg.Gauge("lucidd_recovered_from_snapshot",
			"Shards whose boot state was loaded from a snapshot."),
		queueDepth: reg.Gauge("lucidd_queue_depth",
			"Registered jobs awaiting scheduling."),
		profiled: reg.Gauge("lucidd_jobs_profiled",
			"Jobs whose profile has reached the minimum sample count."),
		agents: reg.Gauge("lucidd_agents", "Live node agents."),
		shards: reg.Gauge("lucidd_shards", "Configured state shards."),
		shardJobs: reg.GaugeVec("lucidd_shard_jobs",
			"Registered jobs per state shard.", "shard"),
		shardAgents: reg.GaugeVec("lucidd_shard_agents",
			"Live node agents per state shard.", "shard"),
	}
	m.shards.Set(float64(shards))
	return m
}

// metricsPaths are the routes ServeHTTP labels individually; anything else
// (404s, probes for /favicon.ico, scanners) collapses into "other" so a
// hostile client cannot explode the label cardinality.
var metricsPaths = map[string]bool{
	"/jobs": true, "/metrics": true, "/schedule": true, "/agents": true,
	"/models/packing": true, "/trace": true, "/healthz": true,
	"/statusz": true, "/chaos": true,
}

func normalizePath(p string) string {
	if metricsPaths[p] {
		return p
	}
	return "other"
}

// statusRecorder captures the status code a handler writes so ServeHTTP can
// label the request counter. Handlers that never call WriteHeader implicitly
// send 200.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// observePopulation refreshes the population gauges from the shards' atomic
// counters — no shard lock is taken, so a scrape reflects a near-instant
// view and always completes, even mid-incident with a shard wedged.
func (s *Server) observePopulation() {
	m := s.met
	var jobs, profiled, agents int64
	for _, sh := range s.shards {
		j, a := sh.nJobs.Load(), sh.nAgents.Load()
		jobs += j
		profiled += sh.nProfiled.Load()
		agents += a
		label := strconv.Itoa(sh.idx)
		m.shardJobs.With(label).Set(float64(j))
		m.shardAgents.With(label).Set(float64(a))
		if sh.ingestQ != nil {
			// len() on a channel is safe concurrently — the scrape stays
			// lock-free even with the applier mid-batch.
			m.ingestDepth.With(label).Set(float64(len(sh.ingestQ)))
		}
	}
	m.queueDepth.Set(float64(jobs))
	m.profiled.Set(float64(profiled))
	m.agents.Set(float64(agents))
}
