package lucidd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"testing"
)

// asyncServer builds a chaos-enabled async-ingest server with a pinned clock.
func asyncServer(t *testing.T, shards, queue, batch int) *Server {
	t.Helper()
	s, err := NewServerWith(Options{Shards: shards, EnableChaos: true,
		IngestQueue: queue, IngestBatch: batch, Clock: parityClock()})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// submitJob registers one job and returns its ID.
func submitJob(t *testing.T, s *Server, name, vc string, gpus int) int {
	t.Helper()
	body := fmt.Sprintf(`{"name":%q,"user":"u","vc":%q,"gpus":%d}`, name, vc, gpus)
	rec := do(t, s, http.MethodPost, "/jobs", body)
	if rec.Code != http.StatusCreated {
		t.Fatalf("submit %s: %d: %s", name, rec.Code, rec.Body)
	}
	var js jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	return js.ID
}

// postSample pushes one metric sample and returns the status code.
func postSample(t *testing.T, s *Server, id int) int {
	t.Helper()
	body := fmt.Sprintf(`{"job":%d,"gpu_util":42,"gpu_mem_mb":2000,"gpu_mem_util":21}`, id)
	return do(t, s, http.MethodPost, "/metrics", body).Code
}

// samplesOf reads a job's applied sample count through the public API (the
// GET itself is a flush barrier).
func samplesOf(t *testing.T, s *Server, id int) int {
	t.Helper()
	var jobs []jobState
	if err := json.Unmarshal([]byte(get(t, s, "/jobs")), &jobs); err != nil {
		t.Fatal(err)
	}
	for _, js := range jobs {
		if js.ID == id {
			return js.Samples
		}
	}
	t.Fatalf("job %d not in /jobs", id)
	return -1
}

// TestIngestBackpressure wedges a shard's applier (by holding the shard
// mutex) and fills its tiny queue: the server must refuse further telemetry
// with 429 + Retry-After instead of queueing unboundedly or blocking the
// request path — and after the wedge lifts, exactly the acknowledged
// samples (every 202, no 429) must be applied.
func TestIngestBackpressure(t *testing.T) {
	s := asyncServer(t, 1, 2, 8)
	id := submitJob(t, s, "bp", "vc-0", 1)
	s.Flush() // applier idle, queue empty

	sh := s.shards[0]
	sh.mu.Lock()
	accepted, rejected := 0, 0
	// Capacity 2 plus at most one item the applier pulled into its batch
	// before blocking on the mutex: a 429 must appear by the 4th POST.
	for i := 0; i < 10 && rejected == 0; i++ {
		rec := do(t, s, http.MethodPost, "/metrics",
			fmt.Sprintf(`{"job":%d,"gpu_util":10,"gpu_mem_mb":100,"gpu_mem_util":5}`, id))
		switch rec.Code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected++
			if ra := rec.Header().Get("Retry-After"); ra == "" {
				t.Error("429 without a Retry-After header")
			}
		default:
			t.Fatalf("sample POST %d: unexpected status %d: %s", i, rec.Code, rec.Body)
		}
	}
	if rejected == 0 {
		t.Fatalf("no 429 after %d accepted samples on a queue of 2", accepted)
	}
	if accepted > 3 {
		t.Errorf("queue of 2 accepted %d samples before backpressure (max 3: capacity + 1 in applier hand)", accepted)
	}
	sh.mu.Unlock()

	// Everything acknowledged — and only that — is applied once.
	if got := samplesOf(t, s, id); got != accepted {
		t.Errorf("applied %d samples, want exactly the %d acknowledged", got, accepted)
	}
	if got := s.met.ingestRejected.Value(); got != float64(rejected) {
		t.Errorf("lucidd_ingest_rejected_total = %v, want %d", got, rejected)
	}
}

// TestFlushBarrierReadYourWrites: read paths barrier implicitly, so a
// client that saw its telemetry acknowledged observes it in the very next
// GET — no explicit Flush needed.
func TestFlushBarrierReadYourWrites(t *testing.T) {
	s := asyncServer(t, 4, 1024, 64)
	id := submitJob(t, s, "ryw", "vc-0", 2)
	const n = 5
	for i := 0; i < n; i++ {
		if code := postSample(t, s, id); code != http.StatusAccepted {
			t.Fatalf("sample %d: status %d", i, code)
		}
	}
	if got := samplesOf(t, s, id); got != n {
		t.Errorf("GET /jobs after %d acked samples sees %d", n, got)
	}
	// Heartbeats too: the agent must be visible to the GET that follows its 202.
	rec := do(t, s, http.MethodPost, "/agents", `{"name":"hb-agent","vc":"vc-0","node":3}`)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("heartbeat: status %d", rec.Code)
	}
	var agents []agentState
	if err := json.Unmarshal([]byte(get(t, s, "/agents")), &agents); err != nil {
		t.Fatal(err)
	}
	if len(agents) != 1 || agents[0].Name != "hb-agent" {
		t.Errorf("agent not visible after acked heartbeat: %+v", agents)
	}
}

// TestCrashDuringAsyncIngest is the kill -9 analogue for the async
// pipeline, per shard: samples acknowledged AND flushed (a barrier passed
// behind them) must be recovered exactly; samples acknowledged but still
// queued when the process dies are in-memory only and may be lost — the
// same durability class as sync mode's unsynced WAL tail. The crash is
// simulated by wedging both shard mutexes (the appliers can never reach
// the WAL again) and booting a second server over the same state dir.
func TestCrashDuringAsyncIngest(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Shards: 2, StateDir: dir, IngestQueue: 64, IngestBatch: 8}
	s1, err := NewServerWith(opts)
	if err != nil {
		t.Fatal(err)
	}
	vcA, vcB := twoVCsOnDistinctShards(t, s1)
	idA := submitJob(t, s1, "crash-a", vcA, 1)
	idB := submitJob(t, s1, "crash-b", vcB, 2)

	// Acked-and-flushed: 3 samples on shard A, 2 on shard B, then a barrier.
	for i := 0; i < 3; i++ {
		if code := postSample(t, s1, idA); code != http.StatusAccepted {
			t.Fatalf("flushed sample A%d: status %d", i, code)
		}
	}
	for i := 0; i < 2; i++ {
		if code := postSample(t, s1, idB); code != http.StatusAccepted {
			t.Fatalf("flushed sample B%d: status %d", i, code)
		}
	}
	s1.Flush()

	// Wedge both shards, then ack more samples that can never reach disk.
	shA, shB := s1.shardFor(vcA), s1.shardFor(vcB)
	shA.mu.Lock()
	shB.mu.Lock()
	defer shB.mu.Unlock()
	defer shA.mu.Unlock()
	for i := 0; i < 4; i++ {
		if code := postSample(t, s1, idA); code != http.StatusAccepted {
			t.Fatalf("queued sample A%d: status %d", i, code)
		}
	}
	for i := 0; i < 5; i++ {
		if code := postSample(t, s1, idB); code != http.StatusAccepted {
			t.Fatalf("queued sample B%d: status %d", i, code)
		}
	}

	// Kill -9 analogue: no Shutdown, no final snapshot — a fresh server
	// recovers each shard independently from its own WAL.
	s2, err := NewServerWith(opts)
	if err != nil {
		t.Fatalf("post-crash boot: %v", err)
	}
	if got := samplesOf(t, s2, idA); got != 3 {
		t.Errorf("shard A recovered %d samples, want exactly the 3 flushed", got)
	}
	if got := samplesOf(t, s2, idB); got != 2 {
		t.Errorf("shard B recovered %d samples, want exactly the 2 flushed", got)
	}
	wantRecs := map[int]int{shA.idx: 4, shB.idx: 3} // 1 submit + flushed samples each
	for _, r := range s2.ShardRecoveries() {
		if r.Records != wantRecs[r.Shard] {
			t.Errorf("shard %d replayed %d WAL records, want %d", r.Shard, r.Records, wantRecs[r.Shard])
		}
		if r.TornBytes != 0 {
			t.Errorf("shard %d found %d torn bytes (batched fsync must land whole records)", r.Shard, r.TornBytes)
		}
	}
}

// TestIncrementalOrderMatchesFullSort is the index-integrity property test:
// after a randomized op sequence (submits, samples, kills — each of which
// repositions jobs), every shard's incremental order must equal a
// from-scratch sort of its job table, every cached prio must equal the live
// key, and the merged /schedule must equal a brute-force global sort.
func TestIncrementalOrderMatchesFullSort(t *testing.T) {
	s := asyncServer(t, 4, 4096, 32)
	parityOps(t, s, 777, 300)
	s.Flush()

	for _, sh := range s.shards {
		sh.mu.Lock()
		if len(sh.order) != len(sh.jobs) {
			t.Errorf("shard %d: index holds %d jobs, table holds %d", sh.idx, len(sh.order), len(sh.jobs))
		}
		want := make([]*jobState, 0, len(sh.jobs))
		for _, js := range sh.jobs {
			want = append(want, js)
		}
		sort.Slice(want, func(i, j int) bool { return queueLess(want[i], want[j]) })
		for i := range want {
			if i < len(sh.order) && sh.order[i] != want[i] {
				t.Errorf("shard %d: index[%d] = job %d, full sort says job %d",
					sh.idx, i, sh.order[i].ID, want[i].ID)
				break
			}
		}
		for _, js := range sh.order {
			if live := float64(js.GPUs) * js.EstSec; js.prio != live {
				t.Errorf("shard %d job %d: cached prio %v != live key %v", sh.idx, js.ID, js.prio, live)
			}
		}
		sh.mu.Unlock()
	}

	// Brute force the global order from /jobs and compare with /schedule.
	var all, sched []jobState
	if err := json.Unmarshal([]byte(get(t, s, "/jobs")), &all); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(get(t, s, "/schedule")), &sched); err != nil {
		t.Fatal(err)
	}
	sort.Slice(all, func(i, j int) bool {
		pi, pj := float64(all[i].GPUs)*all[i].EstSec, float64(all[j].GPUs)*all[j].EstSec
		if pi != pj {
			return pi < pj
		}
		return all[i].ID < all[j].ID
	})
	if len(all) != len(sched) {
		t.Fatalf("/schedule returned %d jobs, /jobs %d", len(sched), len(all))
	}
	for i := range all {
		if all[i].ID != sched[i].ID {
			t.Errorf("/schedule[%d] = job %d, brute-force sort says job %d", i, sched[i].ID, all[i].ID)
			break
		}
	}
}

// TestCrossShardScheduleTieBreak locks in the fan-out tie-break rule: jobs
// with byte-identical priority keys living on DIFFERENT shards (same name,
// user and GPU demand — the estimator does not use the VC, so their
// estimates are equal) must merge in global job-ID order, and the merged
// body must match the single-shard server fed the same sequence.
func TestCrossShardScheduleTieBreak(t *testing.T) {
	multi := asyncServer(t, 4, 1024, 32)
	single := asyncServer(t, 1, 1024, 32)
	vcA, vcB := twoVCsOnDistinctShards(t, multi)
	for i := 0; i < 6; i++ {
		vc := vcA
		if i%2 == 1 {
			vc = vcB
		}
		idM := submitJob(t, multi, "tie", vc, 2)
		idS := submitJob(t, single, "tie", vc, 2)
		if idM != idS {
			t.Fatalf("ID divergence: %d vs %d", idM, idS)
		}
	}
	bodyM, bodyS := get(t, multi, "/schedule"), get(t, single, "/schedule")
	if bodyM != bodyS {
		t.Errorf("equal-key /schedule diverges across shard counts:\n 4: %s\n 1: %s", bodyM, bodyS)
	}
	var sched []jobState
	if err := json.Unmarshal([]byte(bodyM), &sched); err != nil {
		t.Fatal(err)
	}
	if len(sched) != 6 {
		t.Fatalf("want 6 tied jobs, got %d", len(sched))
	}
	for i := 1; i < len(sched); i++ {
		if sched[i].ID <= sched[i-1].ID {
			t.Errorf("equal keys not in global ID order: position %d holds job %d after job %d",
				i, sched[i].ID, sched[i-1].ID)
		}
	}
}

// TestAgentListDeterministicTieBreak: two shards can each hold an agent with
// the same name (VCs hash apart), and the fan-out /agents listing must order
// the duplicates by the full (Name, VC, Node) key, not shard iteration luck.
func TestAgentListDeterministicTieBreak(t *testing.T) {
	s := asyncServer(t, 4, 64, 8)
	vcA, vcB := twoVCsOnDistinctShards(t, s)
	for _, hb := range []string{
		fmt.Sprintf(`{"name":"dup","vc":%q,"node":7}`, vcA),
		fmt.Sprintf(`{"name":"dup","vc":%q,"node":3}`, vcB),
	} {
		if rec := do(t, s, http.MethodPost, "/agents", hb); rec.Code != http.StatusAccepted {
			t.Fatalf("heartbeat: %d: %s", rec.Code, rec.Body)
		}
	}
	var agents []agentState
	if err := json.Unmarshal([]byte(get(t, s, "/agents")), &agents); err != nil {
		t.Fatal(err)
	}
	if len(agents) != 2 {
		t.Fatalf("want 2 same-named agents, got %d", len(agents))
	}
	wantFirstVC := vcA
	if vcB < vcA {
		wantFirstVC = vcB
	}
	if agents[0].VC != wantFirstVC {
		t.Errorf("duplicate-name agents ordered %q before %q; want VC tie-break (%q first)",
			agents[0].VC, agents[1].VC, wantFirstVC)
	}
}
