package lucidd

import (
	"encoding/json"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/workload"
)

// shard is one tenant-scoped state machine: its own job table, agent table,
// duration-estimator clone, mutex and (when durability is on) its own WAL and
// snapshot under <state-dir>/shard-<idx>/. Every mutating request touches
// exactly one shard, so the paper's 15–20 VCs never serialize on a shared
// lock: a heartbeat for Venus VC "vc3" and a sample for Saturn VC "vc17"
// proceed independently. The routing front door (Server.shardFor) maps a VC
// name onto a shard by stable hash; with Shards >= the number of VCs each VC
// effectively owns a shard, and Shards=1 reproduces the old single-mutex
// server exactly.
//
// Lock discipline: a request path may hold AT MOST ONE shard mutex at a time.
// Fan-out reads (/jobs, /schedule, /agents without ?vc=) visit shards
// sequentially — lock, copy, unlock, next — so a stalled shard delays only
// requests that need it, never a sibling's mutating path. The population
// atomics (nJobs, nProfiled, nAgents) exist so read-mostly paths
// (GET /metrics, /statusz counts) can observe the shard without its lock.
type shard struct {
	idx int
	srv *Server

	mu     sync.Mutex
	jobs   map[int]*jobState
	agents map[string]*agentState
	// order is the shard's incremental priority index: every job, kept
	// sorted by (GPUs × EstSec, global ID) at all times. Mutators reposition
	// the touched job with two binary searches instead of /schedule
	// re-sorting the whole merged queue per request; cluster-wide reads
	// K-way-merge these pre-sorted views.
	order []*jobState
	// aorder is the same idea for agents: every live agent, sorted by the
	// full listing key (Name, VC, Node), each carrying a pre-marshaled JSON
	// fragment refreshed on mutation. GET /agents becomes a filter/merge of
	// pre-sorted, pre-serialized views instead of an O(n log n) sort plus an
	// O(n) struct marshal per request — the difference between a listing
	// that costs microseconds and one that dominates the benchmark at
	// 10k+ agents per shard.
	aorder []*agentState
	// lruHead/lruTail anchor the intrusive heartbeat-order list (oldest
	// first): LastSeen stamps a monotone clock, so stale agents are always
	// a prefix and sweepStaleLocked is O(evicted), not O(shard-agents) —
	// cheap enough to run on every heartbeat and every read at any fleet
	// size.
	lruHead, lruTail *agentState
	// listBufs is the shard's free list of listing response buffers — see
	// getListBufLocked for why this beats a sync.Pool here.
	listBufs [][]byte
	// est is this shard's clone of the shared workload estimator: same
	// fitted model, private per-job cache, so refreshLocked never crosses
	// shard boundaries. Estimates are a pure function of the job, so clones
	// agree bit-for-bit — the shard-parity guarantee.
	est *core.WorkloadEstimator
	// store is this shard's durability layer (nil when StateDir is empty).
	// Its methods are called with mu held, keeping WAL order consistent with
	// the state mutations the records describe.
	store *store

	// Async ingest pipeline (nil/unused when Options.IngestQueue is 0; see
	// ingest.go). ingestQ is the shard's bounded telemetry queue, drained by
	// one applier goroutine per shard; applierDone closes when the applier
	// has drained the closed queue. batchMax caps ops per critical section.
	ingestQ     chan ingestItem
	applierDone chan struct{}
	batchMax    int

	// Population counters published outside mu for lock-free observation:
	// GET /metrics and the /statusz counts read these without touching the
	// shard mutex, so a slow or wedged shard can still be observed.
	nJobs     atomic.Int64
	nProfiled atomic.Int64
	nAgents   atomic.Int64
}

func newShard(idx int, srv *Server) *shard {
	return &shard{
		idx:    idx,
		srv:    srv,
		jobs:   map[int]*jobState{},
		agents: map[string]*agentState{},
		est:    training.est.Clone(),
	}
}

// shardFor routes a VC name to its shard: FNV-1a over the name, mod the shard
// count. The hash is stable across boots — required because each shard
// recovers its own WAL/snapshot, so a VC must land on the same shard every
// run (NewServerWith refuses a state dir created with a different count).
func (s *Server) shardFor(vc string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(vc))
	return s.shards[int(h.Sum32()%uint32(len(s.shards)))]
}

// shardOfJob resolves the shard holding a job ID via the front door's
// routing index (maintained on submit, replay and snapshot load).
func (s *Server) shardOfJob(id int) (*shard, bool) {
	v, ok := s.jobShard.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*shard), true
}

// bumpNextID raises the global ID allocator to at least id (CAS max) —
// recovery replays per-shard WALs in shard order, and the allocator must end
// past every ID any shard ever acknowledged.
func (s *Server) bumpNextID(id int) {
	for {
		cur := s.nextID.Load()
		if int64(id) <= cur || s.nextID.CompareAndSwap(cur, int64(id)) {
			return
		}
	}
}

// applyJobLocked installs a registered job (live submit and WAL replay share
// this path) and recomputes its derived fields.
func (sh *shard) applyJobLocked(js *jobState) {
	js.Score = workload.Jumbo.String()
	sh.jobs[js.ID] = js
	sh.srv.jobShard.Store(js.ID, sh)
	sh.srv.bumpNextID(js.ID)
	sh.refreshLocked(js)
	sh.orderInsertLocked(js)
	sh.nJobs.Store(int64(len(sh.jobs)))
}

// dropJobLocked rolls back a submit whose WAL append failed: the client got
// an error, so the job must not exist. The allocated ID is not reused — a
// gap is harmless, a reused ID is not.
func (sh *shard) dropJobLocked(id int) {
	if js, ok := sh.jobs[id]; ok {
		sh.orderRemoveLocked(js)
	}
	delete(sh.jobs, id)
	sh.srv.jobShard.Delete(id)
	sh.nJobs.Store(int64(len(sh.jobs)))
}

// applySampleLocked folds one NVIDIA-SMI-style sample into the job's running
// mean — what a DCGM poller would maintain — and reports whether this sample
// crossed the profiling threshold.
func (sh *shard) applySampleLocked(js *jobState, util, memMB, memUtil float64) bool {
	sh.orderRemoveLocked(js)
	n := float64(js.Samples)
	js.Profile.GPUUtil = (js.Profile.GPUUtil*n + util) / (n + 1)
	js.Profile.GPUMemMB = (js.Profile.GPUMemMB*n + memMB) / (n + 1)
	js.Profile.GPUMemUtil = (js.Profile.GPUMemUtil*n + memUtil) / (n + 1)
	js.Samples++
	sh.refreshLocked(js)
	sh.orderInsertLocked(js)
	crossed := js.Samples == minSamples
	if crossed {
		sh.nProfiled.Add(1)
	}
	return crossed
}

// applyAgentLocked registers or heartbeats an agent, reporting whether it was
// already known. The listing index and the agent's JSON fragment are
// maintained here — the single choke point every mutation (live, replay,
// async apply) goes through.
func (sh *shard) applyAgentLocked(name, vc string, node int, now time.Time) (agentState, bool) {
	a, known := sh.agents[name]
	switch {
	case !known:
		a = &agentState{Name: name, VC: vc, Node: node, LastSeen: now}
		sh.agents[name] = a
		a.refreshFrag()
		sh.aorderInsertLocked(a)
		sh.lruPushBackLocked(a)
	case a.VC != vc || a.Node != node:
		// The listing key changed: reposition under the old key first, the
		// same remove-before-mutate discipline the job index uses.
		sh.aorderRemoveLocked(a)
		a.VC, a.Node, a.LastSeen = vc, node, now
		a.refreshFrag()
		sh.aorderInsertLocked(a)
		sh.lruUnlinkLocked(a)
		sh.lruPushBackLocked(a)
	default:
		a.LastSeen = now
		a.refreshFrag()
		sh.lruUnlinkLocked(a)
		sh.lruPushBackLocked(a)
	}
	sh.nAgents.Store(int64(len(sh.agents)))
	return *a, known
}

// lruPushBackLocked appends a (not currently linked) agent at the
// freshest end of the heartbeat-order list.
func (sh *shard) lruPushBackLocked(a *agentState) {
	a.lruPrev, a.lruNext = sh.lruTail, nil
	if sh.lruTail != nil {
		sh.lruTail.lruNext = a
	} else {
		sh.lruHead = a
	}
	sh.lruTail = a
}

// lruUnlinkLocked removes a linked agent from the heartbeat-order list.
func (sh *shard) lruUnlinkLocked(a *agentState) {
	if a.lruPrev != nil {
		a.lruPrev.lruNext = a.lruNext
	} else {
		sh.lruHead = a.lruNext
	}
	if a.lruNext != nil {
		a.lruNext.lruPrev = a.lruPrev
	} else {
		sh.lruTail = a.lruPrev
	}
	a.lruPrev, a.lruNext = nil, nil
}

// applyFailJobLocked kills a job: the in-memory profile is lost and the job
// re-enters the system unprofiled, scored by the conservative Jumbo prior
// until fresh samples arrive — mirroring the simulator's
// requeue-through-profiler path.
func (sh *shard) applyFailJobLocked(js *jobState) {
	sh.orderRemoveLocked(js)
	if js.Samples >= minSamples {
		sh.nProfiled.Add(-1)
	}
	js.Restarts++
	js.Samples = 0
	js.Profile = profile{}
	sh.refreshLocked(js)
	sh.orderInsertLocked(js)
}

// queueLess is THE priority comparator (Algorithm 2: GPU demand × estimated
// duration, ascending, global job ID as the total-order tie-break). The
// per-shard index, the K-way fan-out merge and the tie-break tests all call
// this one function, so the order is identical at any shard count.
func queueLess(a, b *jobState) bool {
	pa, pb := float64(a.GPUs)*a.EstSec, float64(b.GPUs)*b.EstSec
	if pa != pb {
		return pa < pb
	}
	return a.ID < b.ID
}

// orderRankLocked binary-searches the index position for a (prio, ID) key.
func (sh *shard) orderRankLocked(prio float64, id int) int {
	return sort.Search(len(sh.order), func(i int) bool {
		o := sh.order[i]
		if o.prio != prio {
			return o.prio > prio
		}
		return o.ID >= id
	})
}

// orderInsertLocked stamps the job's current priority key and inserts it at
// its rank. Every job in the index carries the prio it was inserted under,
// so lookups against the cached keys are exact.
func (sh *shard) orderInsertLocked(js *jobState) {
	js.prio = float64(js.GPUs) * js.EstSec
	i := sh.orderRankLocked(js.prio, js.ID)
	sh.order = append(sh.order, nil)
	copy(sh.order[i+1:], sh.order[i:])
	sh.order[i] = js
}

// orderRemoveLocked removes the job at its cached key (no-op if absent —
// e.g. a replayed sample for a job the snapshot already dropped).
func (sh *shard) orderRemoveLocked(js *jobState) {
	i := sh.orderRankLocked(js.prio, js.ID)
	if i < len(sh.order) && sh.order[i] == js {
		sh.order = append(sh.order[:i], sh.order[i+1:]...)
	}
}

// copyQueue snapshots the shard's priority order (optionally scoped to one
// VC), already sorted — the unit step of the incremental /schedule fan-out.
func (sh *shard) copyQueue(vc string) []*jobState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]*jobState, 0, len(sh.order))
	for _, js := range sh.order {
		if vc != "" && js.VC != vc {
			continue
		}
		cp := *js
		out = append(out, &cp)
	}
	return out
}

// agentLess is THE listing comparator: full (Name, VC, Node) key, because two
// shards can hold same-named agents (different VCs hash apart) and Name alone
// would leave their relative order to shard iteration — the fan-out
// nondeterminism class PR 1 fixed for jobs. The per-shard index, the fan-out
// merge and the tie-break tests all use this one function.
func agentLess(a, b *agentState) bool {
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.VC != b.VC {
		return a.VC < b.VC
	}
	return a.Node < b.Node
}

// jsonPlain reports whether s encodes as itself inside a JSON string under
// encoding/json's default escaping (no control chars, quotes, backslashes,
// HTML-escaped characters, or non-ASCII needing UTF-8 validation).
func jsonPlain(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// refreshFrag rewrites the agent's cached listing fragment IN PLACE (shard
// mutex held — every reader of frag also holds it, or deep-copies under it).
// Reusing the buffer matters: heartbeats dominate the workload, and a fresh
// marshal allocation per heartbeat makes the collector the top CPU consumer.
// The fast path hand-appends the encoding for plain ASCII names/VCs; anything
// needing real escaping falls back to encoding/json. Both produce exactly the
// bytes an element of []agentState encodes to, so a listing composed from
// fragments matches writeJSON of the slice.
func (a *agentState) refreshFrag() {
	if jsonPlain(a.Name) && jsonPlain(a.VC) {
		b := append(a.frag[:0], `{"name":"`...)
		b = append(b, a.Name...)
		if a.VC != "" {
			b = append(b, `","vc":"`...)
			b = append(b, a.VC...)
		}
		b = append(b, `","node":`...)
		b = strconv.AppendInt(b, int64(a.Node), 10)
		b = append(b, `,"last_seen":"`...)
		b = a.LastSeen.AppendFormat(b, time.RFC3339Nano)
		a.frag = append(b, '"', '}')
		return
	}
	b, err := json.Marshal(a)
	if err != nil {
		b = nil // unreachable for this struct; never serve a stale fragment
	}
	a.frag = append(a.frag[:0], b...)
}

// aorderRankLocked binary-searches the listing index for an agent's key.
func (sh *shard) aorderRankLocked(a *agentState) int {
	return sort.Search(len(sh.aorder), func(i int) bool {
		return !agentLess(sh.aorder[i], a)
	})
}

func (sh *shard) aorderInsertLocked(a *agentState) {
	i := sh.aorderRankLocked(a)
	sh.aorder = append(sh.aorder, nil)
	copy(sh.aorder[i+1:], sh.aorder[i:])
	sh.aorder[i] = a
}

// aorderRemoveLocked removes the agent at its current key; callers must
// remove BEFORE mutating key fields.
func (sh *shard) aorderRemoveLocked(a *agentState) {
	i := sh.aorderRankLocked(a)
	if i < len(sh.aorder) && sh.aorder[i] == a {
		sh.aorder = append(sh.aorder[:i], sh.aorder[i+1:]...)
	}
}

// agentRef pairs a listing sort key with a copy of the agent's JSON fragment —
// what a fan-out read copies out of a shard. The copy is mandatory: fragments
// are rewritten in place on heartbeat, so a ref held after the shard unlocks
// must own its bytes.
type agentRef struct {
	name, vc string
	node     int
	frag     []byte
}

func agentRefLess(a, b agentRef) bool {
	if a.name != b.name {
		return a.name < b.name
	}
	if a.vc != b.vc {
		return a.vc < b.vc
	}
	return a.node < b.node
}

// copyAgentRefs force-sweeps stale agents and snapshots the shard's listing
// view — already sorted, already serialized, fragments copied into one arena
// allocation (they are rewritten in place on heartbeat, so the refs must own
// their bytes once the lock drops). The unit step of the fan-out
// (cluster-wide) listing merge.
func (sh *shard) copyAgentRefs(now time.Time) []agentRef {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sweepStaleLocked(now)
	total := 0
	for _, a := range sh.aorder {
		total += len(a.frag)
	}
	arena := make([]byte, 0, total)
	out := make([]agentRef, 0, len(sh.aorder))
	for _, a := range sh.aorder {
		start := len(arena)
		arena = append(arena, a.frag...)
		out = append(out, agentRef{a.Name, a.VC, a.Node, arena[start:len(arena):len(arena)]})
	}
	return out
}

// getListBufLocked hands out a listing response buffer from the shard's own
// free list. At large fleets a scoped GET /agents body runs to megabytes;
// allocating one per request made the garbage collector the top CPU consumer
// on the read path, and a sync.Pool barely helped because GC empties it (and
// re-zeroing megabyte buffers IS the cost being avoided). Shard-owned slices
// are never collected, so after the first few requests the read path is
// allocation-free. Handlers return the buffer via putListBuf after the
// response write (every writer — socket or recorder — copies, never retains).
func (sh *shard) getListBufLocked() []byte {
	if n := len(sh.listBufs); n > 0 {
		b := sh.listBufs[n-1]
		sh.listBufs = sh.listBufs[:n-1]
		return b[:0]
	}
	return nil
}

// putListBuf returns a listing buffer for reuse, keeping at most a handful so
// a burst of concurrent reads cannot pin unbounded memory.
func (sh *shard) putListBuf(b []byte) {
	sh.mu.Lock()
	if len(sh.listBufs) < 4 {
		sh.listBufs = append(sh.listBufs, b)
	}
	sh.mu.Unlock()
}

// agentListBody composes the complete vc-scoped GET /agents response body
// (byte-identical to encoding the equivalent []agentState, trailing newline
// included) in one pass over the pre-sorted, pre-serialized index — no
// intermediate copies, no per-request sort or marshal. The returned buffer
// must go back via putListBuf once written.
func (sh *shard) agentListBody(now time.Time, vc string) []byte {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sweepStaleLocked(now)
	buf := append(sh.getListBufLocked(), '[')
	for _, a := range sh.aorder {
		if a.VC != vc {
			continue
		}
		if len(buf) > 1 {
			buf = append(buf, ',')
		}
		buf = append(buf, a.frag...)
	}
	return append(buf, ']', '\n')
}

// mergeAgentRefs K-way-merges per-shard listing views, each pre-sorted by
// agentLess, into one globally ordered listing — the agent-side twin of
// mergeQueues.
func mergeAgentRefs(per [][]agentRef) []agentRef {
	total, live := 0, 0
	for _, p := range per {
		total += len(p)
		if len(p) > 0 {
			live++
		}
	}
	if live == 1 {
		for _, p := range per {
			if len(p) > 0 {
				return p
			}
		}
	}
	out := make([]agentRef, 0, total)
	heads := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || agentRefLess(p[heads[i]], per[best][heads[best]]) {
				best = i
			}
		}
		out = append(out, per[best][heads[best]])
		heads[best]++
	}
	return out
}

// refreshLocked recomputes score and estimate from the current state.
func (sh *shard) refreshLocked(js *jobState) {
	j := job.New(js.ID, js.Name, js.User, js.VC, js.GPUs, 0, 0, workload.Config{})
	j.AMP = js.AMP
	if js.Samples >= minSamples {
		j.Profiled = true
		j.Profile = workload.Profile{
			GPUUtil:    js.Profile.GPUUtil,
			GPUMemMB:   js.Profile.GPUMemMB,
			GPUMemUtil: js.Profile.GPUMemUtil,
			AMP:        js.AMP,
		}
	}
	js.Score = sh.srv.analyzer.ScoreJob(j).String()
	sh.est.Invalidate(j.ID)
	js.EstSec = sh.est.EstimateSec(j)
}

// sweepStaleLocked evicts THIS shard's agents whose last heartbeat predates
// the staleness window, recording each eviction as a presumed node failure.
// The sweep is shard-local by construction: it touches only sh.agents and
// holds only sh.mu, so a slow sibling shard can neither delay it nor be
// delayed by it (the satellite-fix contract, regression-tested by
// TestSlowShardDoesNotBlockSibling). The heartbeat-order list makes it
// O(evicted): the stale set is always the list's front prefix.
func (sh *shard) sweepStaleLocked(now time.Time) {
	for a := sh.lruHead; a != nil && now.Sub(a.LastSeen) > sh.srv.opts.AgentStaleAfter; a = sh.lruHead {
		sh.lruUnlinkLocked(a)
		sh.aorderRemoveLocked(a)
		delete(sh.agents, a.Name)
		sh.srv.rec.Record(dtrace.Event{Action: dtrace.ActNodeFail,
			Reason: "heartbeat-stale", Node: a.Node + 1})
	}
	sh.nAgents.Store(int64(len(sh.agents)))
}

// snapshotLocked copies the shard's job table, sorted by ID.
func (sh *shard) snapshotLocked() []*jobState {
	out := make([]*jobState, 0, len(sh.jobs))
	for _, js := range sh.jobs {
		cp := *js
		out = append(out, &cp)
	}
	sortJobsByID(out)
	return out
}

// copyJobs locks the shard, copies its jobs, and unlocks — the unit step of
// every fan-out read. Holding the lock only for the copy keeps fan-out reads
// from pinning more than one shard at a time.
func (sh *shard) copyJobs() []*jobState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.snapshotLocked()
}
