package lucidd

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/workload"
)

// shard is one tenant-scoped state machine: its own job table, agent table,
// duration-estimator clone, mutex and (when durability is on) its own WAL and
// snapshot under <state-dir>/shard-<idx>/. Every mutating request touches
// exactly one shard, so the paper's 15–20 VCs never serialize on a shared
// lock: a heartbeat for Venus VC "vc3" and a sample for Saturn VC "vc17"
// proceed independently. The routing front door (Server.shardFor) maps a VC
// name onto a shard by stable hash; with Shards >= the number of VCs each VC
// effectively owns a shard, and Shards=1 reproduces the old single-mutex
// server exactly.
//
// Lock discipline: a request path may hold AT MOST ONE shard mutex at a time.
// Fan-out reads (/jobs, /schedule, /agents without ?vc=) visit shards
// sequentially — lock, copy, unlock, next — so a stalled shard delays only
// requests that need it, never a sibling's mutating path. The population
// atomics (nJobs, nProfiled, nAgents) exist so read-mostly paths
// (GET /metrics, /statusz counts) can observe the shard without its lock.
type shard struct {
	idx int
	srv *Server

	mu     sync.Mutex
	jobs   map[int]*jobState
	agents map[string]*agentState
	// est is this shard's clone of the shared workload estimator: same
	// fitted model, private per-job cache, so refreshLocked never crosses
	// shard boundaries. Estimates are a pure function of the job, so clones
	// agree bit-for-bit — the shard-parity guarantee.
	est *core.WorkloadEstimator
	// store is this shard's durability layer (nil when StateDir is empty).
	// Its methods are called with mu held, keeping WAL order consistent with
	// the state mutations the records describe.
	store *store

	// Population counters published outside mu for lock-free observation:
	// GET /metrics and the /statusz counts read these without touching the
	// shard mutex, so a slow or wedged shard can still be observed.
	nJobs     atomic.Int64
	nProfiled atomic.Int64
	nAgents   atomic.Int64
}

func newShard(idx int, srv *Server) *shard {
	return &shard{
		idx:    idx,
		srv:    srv,
		jobs:   map[int]*jobState{},
		agents: map[string]*agentState{},
		est:    training.est.Clone(),
	}
}

// shardFor routes a VC name to its shard: FNV-1a over the name, mod the shard
// count. The hash is stable across boots — required because each shard
// recovers its own WAL/snapshot, so a VC must land on the same shard every
// run (NewServerWith refuses a state dir created with a different count).
func (s *Server) shardFor(vc string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(vc))
	return s.shards[int(h.Sum32()%uint32(len(s.shards)))]
}

// shardOfJob resolves the shard holding a job ID via the front door's
// routing index (maintained on submit, replay and snapshot load).
func (s *Server) shardOfJob(id int) (*shard, bool) {
	v, ok := s.jobShard.Load(id)
	if !ok {
		return nil, false
	}
	return v.(*shard), true
}

// bumpNextID raises the global ID allocator to at least id (CAS max) —
// recovery replays per-shard WALs in shard order, and the allocator must end
// past every ID any shard ever acknowledged.
func (s *Server) bumpNextID(id int) {
	for {
		cur := s.nextID.Load()
		if int64(id) <= cur || s.nextID.CompareAndSwap(cur, int64(id)) {
			return
		}
	}
}

// applyJobLocked installs a registered job (live submit and WAL replay share
// this path) and recomputes its derived fields.
func (sh *shard) applyJobLocked(js *jobState) {
	js.Score = workload.Jumbo.String()
	sh.jobs[js.ID] = js
	sh.srv.jobShard.Store(js.ID, sh)
	sh.srv.bumpNextID(js.ID)
	sh.refreshLocked(js)
	sh.nJobs.Store(int64(len(sh.jobs)))
}

// dropJobLocked rolls back a submit whose WAL append failed: the client got
// an error, so the job must not exist. The allocated ID is not reused — a
// gap is harmless, a reused ID is not.
func (sh *shard) dropJobLocked(id int) {
	delete(sh.jobs, id)
	sh.srv.jobShard.Delete(id)
	sh.nJobs.Store(int64(len(sh.jobs)))
}

// applySampleLocked folds one NVIDIA-SMI-style sample into the job's running
// mean — what a DCGM poller would maintain — and reports whether this sample
// crossed the profiling threshold.
func (sh *shard) applySampleLocked(js *jobState, util, memMB, memUtil float64) bool {
	n := float64(js.Samples)
	js.Profile.GPUUtil = (js.Profile.GPUUtil*n + util) / (n + 1)
	js.Profile.GPUMemMB = (js.Profile.GPUMemMB*n + memMB) / (n + 1)
	js.Profile.GPUMemUtil = (js.Profile.GPUMemUtil*n + memUtil) / (n + 1)
	js.Samples++
	sh.refreshLocked(js)
	crossed := js.Samples == minSamples
	if crossed {
		sh.nProfiled.Add(1)
	}
	return crossed
}

// applyAgentLocked registers or heartbeats an agent, reporting whether it was
// already known.
func (sh *shard) applyAgentLocked(name, vc string, node int, now time.Time) (agentState, bool) {
	a, known := sh.agents[name]
	if !known {
		a = &agentState{Name: name, VC: vc, Node: node}
		sh.agents[name] = a
	}
	a.VC = vc
	a.Node = node
	a.LastSeen = now
	sh.nAgents.Store(int64(len(sh.agents)))
	return *a, known
}

// applyFailJobLocked kills a job: the in-memory profile is lost and the job
// re-enters the system unprofiled, scored by the conservative Jumbo prior
// until fresh samples arrive — mirroring the simulator's
// requeue-through-profiler path.
func (sh *shard) applyFailJobLocked(js *jobState) {
	if js.Samples >= minSamples {
		sh.nProfiled.Add(-1)
	}
	js.Restarts++
	js.Samples = 0
	js.Profile = profile{}
	sh.refreshLocked(js)
}

// refreshLocked recomputes score and estimate from the current state.
func (sh *shard) refreshLocked(js *jobState) {
	j := job.New(js.ID, js.Name, js.User, js.VC, js.GPUs, 0, 0, workload.Config{})
	j.AMP = js.AMP
	if js.Samples >= minSamples {
		j.Profiled = true
		j.Profile = workload.Profile{
			GPUUtil:    js.Profile.GPUUtil,
			GPUMemMB:   js.Profile.GPUMemMB,
			GPUMemUtil: js.Profile.GPUMemUtil,
			AMP:        js.AMP,
		}
	}
	js.Score = sh.srv.analyzer.ScoreJob(j).String()
	sh.est.Invalidate(j.ID)
	js.EstSec = sh.est.EstimateSec(j)
}

// sweepStaleLocked evicts THIS shard's agents whose last heartbeat predates
// the staleness window, recording each eviction as a presumed node failure.
// The sweep is shard-local by construction: it iterates only sh.agents and
// holds only sh.mu, so a slow sibling shard can neither delay it nor be
// delayed by it (the satellite-fix contract, regression-tested by
// TestSlowShardDoesNotBlockSibling).
func (sh *shard) sweepStaleLocked(now time.Time) {
	for name, a := range sh.agents {
		if now.Sub(a.LastSeen) > sh.srv.opts.AgentStaleAfter {
			delete(sh.agents, name)
			sh.srv.rec.Record(dtrace.Event{Action: dtrace.ActNodeFail,
				Reason: "heartbeat-stale", Node: a.Node + 1})
		}
	}
	sh.nAgents.Store(int64(len(sh.agents)))
}

// snapshotLocked copies the shard's job table, sorted by ID.
func (sh *shard) snapshotLocked() []*jobState {
	out := make([]*jobState, 0, len(sh.jobs))
	for _, js := range sh.jobs {
		cp := *js
		out = append(out, &cp)
	}
	sortJobsByID(out)
	return out
}

// copyJobs locks the shard, copies its jobs, and unlocks — the unit step of
// every fan-out read. Holding the lock only for the copy keeps fan-out reads
// from pinning more than one shard at a time.
func (sh *shard) copyJobs() []*jobState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.snapshotLocked()
}

// copyAgents sweeps stale agents and copies the survivors (lock held only for
// the sweep + copy).
func (sh *shard) copyAgents(now time.Time) []agentState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.sweepStaleLocked(now)
	out := make([]agentState, 0, len(sh.agents))
	for _, a := range sh.agents {
		out = append(out, *a)
	}
	return out
}
