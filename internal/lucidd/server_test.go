package lucidd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// newTestServer shares one trained server across tests (training is the
// slow part).
var (
	once    sync.Once
	shared  *Server
	initErr error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	once.Do(func() { shared, initErr = NewServer() })
	if initErr != nil {
		t.Fatal(initErr)
	}
	return shared
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestJobRegistration(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodPost, "/jobs", `{"name":"train-v1","user":"alice","vc":"vc0","gpus":2}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var js jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if js.ID == 0 || js.Score != "Jumbo" {
		t.Fatalf("new job should be conservatively Jumbo: %+v", js)
	}
	if js.EstSec <= 0 {
		t.Fatalf("estimate missing: %+v", js)
	}
}

func TestJobValidation(t *testing.T) {
	s := testServer(t)
	if rec := do(t, s, http.MethodPost, "/jobs", `{"name":"","gpus":0}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty job accepted: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/jobs", `not-json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage accepted: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodDelete, "/jobs", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE allowed: %d", rec.Code)
	}
}

func TestMetricsIngestionFlipsScore(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodPost, "/jobs", `{"name":"ppo-run","user":"bob","vc":"vc0","gpus":1}`)
	var js jobState
	json.Unmarshal(rec.Body.Bytes(), &js)

	// Three PPO-like samples (near idle): score must become Tiny.
	for i := 0; i < 3; i++ {
		rec = do(t, s, http.MethodPost, "/metrics",
			`{"job":`+itoa(js.ID)+`,"gpu_util":11,"gpu_mem_mb":1200,"gpu_mem_util":7}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("metrics rejected: %d %s", rec.Code, rec.Body)
		}
	}
	var updated jobState
	json.Unmarshal(rec.Body.Bytes(), &updated)
	if updated.Samples != 3 {
		t.Fatalf("samples = %d", updated.Samples)
	}
	if updated.Score != "Tiny" {
		t.Fatalf("near-idle job scored %q, want Tiny", updated.Score)
	}
}

func TestMetricsUnknownJob(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodPost, "/metrics", `{"job":99999,"gpu_util":50}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job accepted: %d", rec.Code)
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodGet, "/schedule", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule status %d", rec.Code)
	}
	var jobs []jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &jobs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(jobs); i++ {
		pi := float64(jobs[i-1].GPUs) * jobs[i-1].EstSec
		pj := float64(jobs[i].GPUs) * jobs[i].EstSec
		if pi > pj {
			t.Fatalf("schedule not priority-ordered at %d: %v > %v", i, pi, pj)
		}
	}
}

func TestPackingModelEndpoint(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodGet, "/models/packing", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "GPU Utilization") || !strings.Contains(body, "importance") {
		t.Fatalf("model rendering missing content:\n%s", body)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
