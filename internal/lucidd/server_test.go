package lucidd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// newTestServer shares one trained server across tests (training is the
// slow part).
var (
	once    sync.Once
	shared  *Server
	initErr error
)

func testServer(t *testing.T) *Server {
	t.Helper()
	once.Do(func() { shared, initErr = NewServer() })
	if initErr != nil {
		t.Fatal(initErr)
	}
	return shared
}

func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewBufferString(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestJobRegistration(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodPost, "/jobs", `{"name":"train-v1","user":"alice","vc":"vc0","gpus":2}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var js jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}
	if js.ID == 0 || js.Score != "Jumbo" {
		t.Fatalf("new job should be conservatively Jumbo: %+v", js)
	}
	if js.EstSec <= 0 {
		t.Fatalf("estimate missing: %+v", js)
	}
}

func TestJobValidation(t *testing.T) {
	s := testServer(t)
	if rec := do(t, s, http.MethodPost, "/jobs", `{"name":"","gpus":0}`); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty job accepted: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/jobs", `not-json`); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage accepted: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodDelete, "/jobs", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE allowed: %d", rec.Code)
	}
}

func TestMetricsIngestionFlipsScore(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodPost, "/jobs", `{"name":"ppo-run","user":"bob","vc":"vc0","gpus":1}`)
	var js jobState
	json.Unmarshal(rec.Body.Bytes(), &js)

	// Three PPO-like samples (near idle): score must become Tiny.
	for i := 0; i < 3; i++ {
		rec = do(t, s, http.MethodPost, "/metrics",
			`{"job":`+itoa(js.ID)+`,"gpu_util":11,"gpu_mem_mb":1200,"gpu_mem_util":7}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("metrics rejected: %d %s", rec.Code, rec.Body)
		}
	}
	var updated jobState
	json.Unmarshal(rec.Body.Bytes(), &updated)
	if updated.Samples != 3 {
		t.Fatalf("samples = %d", updated.Samples)
	}
	if updated.Score != "Tiny" {
		t.Fatalf("near-idle job scored %q, want Tiny", updated.Score)
	}
}

func TestMetricsUnknownJob(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodPost, "/metrics", `{"job":99999,"gpu_util":50}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job accepted: %d", rec.Code)
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodGet, "/schedule", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("schedule status %d", rec.Code)
	}
	var jobs []jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &jobs); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(jobs); i++ {
		pi := float64(jobs[i-1].GPUs) * jobs[i-1].EstSec
		pj := float64(jobs[i].GPUs) * jobs[i].EstSec
		if pi > pj {
			t.Fatalf("schedule not priority-ordered at %d: %v > %v", i, pi, pj)
		}
	}
}

func TestPackingModelEndpoint(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodGet, "/models/packing", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "GPU Utilization") || !strings.Contains(body, "importance") {
		t.Fatalf("model rendering missing content:\n%s", body)
	}
}

func TestTraceEndpoint(t *testing.T) {
	s := testServer(t)
	// Make sure at least one decision exists: register a job and take a
	// schedule snapshot.
	do(t, s, http.MethodPost, "/jobs", `{"name":"traced","user":"eve","vc":"vc1","gpus":1}`)
	do(t, s, http.MethodGet, "/schedule", "")

	rec := do(t, s, http.MethodGet, "/trace", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("trace status %d", rec.Code)
	}
	var out struct {
		Digest  string `json:"digest"`
		Count   int64  `json:"count"`
		Summary struct {
			Actions map[string]int64 `json:"actions"`
		} `json:"summary"`
		Events []map[string]any `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Digest) != 16 || out.Count == 0 || len(out.Events) == 0 {
		t.Fatalf("trace payload: digest=%q count=%d events=%d", out.Digest, out.Count, len(out.Events))
	}
	if out.Summary.Actions["release"] == 0 {
		t.Fatalf("no registration decisions recorded: %v", out.Summary.Actions)
	}
	if out.Summary.Actions["order"] == 0 {
		t.Fatalf("no ordering decisions recorded: %v", out.Summary.Actions)
	}

	// JSONL form: one valid JSON object per line.
	rec = do(t, s, http.MethodGet, "/trace?format=jsonl", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("jsonl status %d", rec.Code)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("empty jsonl trace")
	}
	for i, ln := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v: %q", i+1, err, ln)
		}
	}

	if rec := do(t, s, http.MethodPost, "/trace", ""); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /trace allowed: %d", rec.Code)
	}
}

// TestConcurrentRequests hammers every endpoint from parallel goroutines —
// meaningful under `go test -race`, where it catches any unsynchronized
// access to the job table or the flight recorder.
func TestConcurrentRequests(t *testing.T) {
	s := testServer(t)
	rec := do(t, s, http.MethodPost, "/jobs", `{"name":"racer","user":"r","vc":"vc0","gpus":1}`)
	var js jobState
	if err := json.Unmarshal(rec.Body.Bytes(), &js); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (g + i) % 4 {
				case 0:
					do(t, s, http.MethodPost, "/jobs", `{"name":"race-burst","user":"r","vc":"vc0","gpus":2}`)
				case 1:
					do(t, s, http.MethodPost, "/metrics",
						`{"job":`+itoa(js.ID)+`,"gpu_util":40,"gpu_mem_mb":3000,"gpu_mem_util":12}`)
				case 2:
					do(t, s, http.MethodGet, "/schedule", "")
				case 3:
					do(t, s, http.MethodGet, "/trace", "")
				}
			}
		}(g)
	}
	wg.Wait()

	if rec := do(t, s, http.MethodGet, "/trace", ""); rec.Code != http.StatusOK {
		t.Fatalf("trace after hammering: %d", rec.Code)
	}
}

func itoa(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
