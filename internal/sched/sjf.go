package sched

import (
	"repro/internal/job"
	"repro/internal/sim"
)

// SJF is Shortest-Job-First with perfect duration information (§4.1
// baseline 2): "an ideal policy … impractical as it requires perfect job
// information which is impossible to attain." Non-preemptive; shorter jobs
// jump the queue, which dissolves HOL blocking.
type SJF struct{}

// NewSJF returns the oracle policy.
func NewSJF() *SJF { return &SJF{} }

// Name implements sim.Scheduler.
func (*SJF) Name() string { return "SJF" }

// Tick drains each VC queue in true-duration order, skipping jobs that do
// not fit.
func (*SJF) Tick(env *sim.Env) {
	groups := byVC(env.Pending())
	for _, vc := range sortedVCs(groups) {
		jobs := groups[vc]
		stableSortBy(jobs, func(j *job.Job) float64 { return float64(j.Duration) })
		placeGreedy(env, jobs)
	}
}
