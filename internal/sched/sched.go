// Package sched implements the baseline schedulers Lucid is evaluated
// against (§4.1): FIFO, the SJF oracle, the prediction-driven QSSF, the
// intrusive packing scheduler Horus, the preemptive Tiresias, and an
// elastic Pollux-style scheduler for §4.7. Lucid itself lives in
// internal/core; everything here shares the sim.Scheduler interface.
package sched

import (
	"sort"

	"repro/internal/job"
	"repro/internal/sim"
)

// Estimator predicts a job's duration in seconds from non-intrusive
// metadata. QSSF and Lucid plug different models into this.
type Estimator interface {
	EstimateSec(j *job.Job) float64
}

// OracleEstimator returns the ground-truth duration (SJF's "impossible to
// attain" perfect information).
type OracleEstimator struct{}

// EstimateSec returns the true duration.
func (OracleEstimator) EstimateSec(j *job.Job) float64 { return float64(j.Duration) }

// byVC groups jobs per virtual cluster preserving input order.
func byVC(jobs []*job.Job) map[string][]*job.Job {
	m := map[string][]*job.Job{}
	for _, j := range jobs {
		m[j.VC] = append(m[j.VC], j)
	}
	return m
}

// sortedVCs returns the group keys in deterministic order.
func sortedVCs(m map[string][]*job.Job) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// placeGreedy walks jobs in the given order, starting every one that fits
// (skipping those that don't) — the standard non-blocking queue drain.
func placeGreedy(env *sim.Env, jobs []*job.Job) {
	for _, j := range jobs {
		env.StartExclusive(j)
	}
}

// placeStrict walks jobs in order and stops at the first that cannot be
// placed — true head-of-line blocking, the behaviour that makes FIFO so
// costly on heavy-tailed workloads.
func placeStrict(env *sim.Env, jobs []*job.Job) {
	for _, j := range jobs {
		if !env.StartExclusive(j) {
			return
		}
	}
}

// stableSortBy sorts jobs by the key ascending with (submit, id) tiebreaks
// for determinism.
func stableSortBy(jobs []*job.Job, key func(*job.Job) float64) {
	sort.SliceStable(jobs, func(a, b int) bool {
		ka, kb := key(jobs[a]), key(jobs[b])
		if ka != kb {
			return ka < kb
		}
		if jobs[a].Submit != jobs[b].Submit {
			return jobs[a].Submit < jobs[b].Submit
		}
		return jobs[a].ID < jobs[b].ID
	})
}
