package sched

import (
	"math"

	"repro/internal/job"
	"repro/internal/sim"
)

// sim.EventAware implementations. The contract (see internal/sim/engine.go):
// with no external change, Tick strictly before the returned time is a
// provable no-op — no placement, no preemption, no internal-state or RNG
// drift — so the event engine may elide the round entirely.
//
// FIFO, SJF, QSSF and Horus are time-independent: their orderings derive
// from static job attributes (submit time, true/estimated duration, cached
// noisy predictions), so with an unchanged queue and cluster a re-run places
// nothing new. They never need a time-driven wake-up.

// NextWake implements sim.EventAware.
func (*FIFO) NextWake(*sim.Env) int64 { return sim.NoWake }

// NextWake implements sim.EventAware.
func (*SJF) NextWake(*sim.Env) int64 { return sim.NoWake }

// NextWake implements sim.EventAware.
func (*QSSF) NextWake(*sim.Env) int64 { return sim.NoWake }

// NextWake implements sim.EventAware. Horus's noisy predictions are drawn
// once per job on first sight and cached, so an elided round (which by
// definition sees no new jobs) draws nothing and the RNG position is
// preserved.
func (*Horus) NextWake(*sim.Env) int64 { return sim.NoWake }

// NextWake implements sim.EventAware. Tiresias is time-driven three ways,
// each a predictable clock crossing:
//
//   - attained-service demotion: a running job's AttainedGPUT grows at
//     exactly GPUs/sec (cold-start ticks accrue service too), so the tick
//     it crosses a queue threshold is computable;
//   - PROMOTE anti-starvation: a waiting job is lifted to the top queue
//     once it has waited PromoteIntervalSec (strict >, hence the +1);
//   - the MinRunQuantum preemption shield expiring on a running job, which
//     can unblock an eviction that was desired but suppressed.
//
// Over-waking is safe (a round that finds nothing to do is a no-op), so
// each crossing is reported without checking whether it will actually
// change a decision. With no waiting jobs none of the three can change the
// placement — every running job stays desired — so no wake is needed at
// all.
func (t *Tiresias) NextWake(env *sim.Env) int64 {
	now := env.Now()
	pending := env.Pending()
	if len(pending) == 0 {
		return sim.NoWake
	}
	// A crossing is pending until a scheduler round has run at or after it —
	// not until the clock has passed it. The engine can execute ticks between
	// cadence points (sampling, arrivals elsewhere) without a round running;
	// a quantum that expired during such a gap must still force the next
	// round, or the eviction it unblocks slips to a later event.
	lastRound := env.LastSchedulerRun()
	next := int64(math.MaxInt64)
	consider := func(at int64) {
		if at > lastRound && at < next {
			next = at
		}
	}
	for _, j := range env.Running() {
		// Report every threshold's crossing time, crossed ones included:
		// attained service grows at GPUs/sec, so the crossing of thr is at
		// now + (thr−attained)/GPUs — negative offset when already crossed.
		// A crossing that happened after the last round is a pending
		// demotion no round has seen yet; the filter above keeps exactly
		// those (ceil rounds up, so a computed time is never earlier than
		// the true crossing — a pending one cannot slip under lastRound).
		// Future crossings beyond the nearest are reported too; consider
		// takes the minimum, so they cost nothing.
		for _, thr := range t.QueueThresholdsGPUSec {
			consider(now + int64(math.Ceil((thr-j.AttainedGPUT)/float64(j.GPUs))))
		}
		if started, ok := t.startedAt[j.ID]; ok {
			consider(started + int64(math.Ceil(t.MinRunQuantumSec)))
		}
	}
	for _, j := range pending {
		if j.State == job.Running {
			continue
		}
		if j.FirstStart < 0 {
			consider(j.Submit + t.PromoteIntervalSec + 1)
		}
		if stopped, ok := t.stoppedAt[j.ID]; ok {
			consider(stopped + t.PromoteIntervalSec + 1)
		}
	}
	if next == math.MaxInt64 {
		return sim.NoWake
	}
	return next
}
