package sched

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestTiresiasPromoteRescuesStarvedJob(t *testing.T) {
	// A demoted long job under a constant stream of short arrivals: without
	// PROMOTE it would starve all day; with it, the job finishes within the
	// promote interval plus its remaining runtime.
	var jobs []*job.Job
	jobs = append(jobs, mk(1, 8, 0, 3*3600)) // demotes after 3600 GPU-s (8 GPUs → 450 s)
	id := 2
	for s := int64(500); s < 4*3600; s += 240 {
		jobs = append(jobs, mk(id, 8, s, 200))
		id++
	}
	tr := &trace.Trace{Name: "starve", Cluster: specOneNode(), Jobs: jobs, Days: 1}
	tir := NewTiresias()
	tir.PromoteIntervalSec = 2 * 3600
	res := sim.New(tr, tir, sim.Options{Tick: 10, SchedulerEvery: 30}).Run()
	long := res.Jobs[0]
	if long.Finish < 0 {
		t.Fatal("long job never finished")
	}
	if long.Preemptions == 0 {
		t.Fatal("long job was never demoted/preempted — scenario broken")
	}
	// The stream ends at 4 h; the long job must finish within its remaining
	// runtime plus bounded thrash after that (LAS grinds under contention —
	// that is Tiresias's documented weakness — but must not starve forever).
	if long.JCT() > 9*3600 {
		t.Fatalf("long job took %d s; starvation guard failed", long.JCT())
	}
}

func TestTiresiasDeterministic(t *testing.T) {
	run := func() float64 {
		return sim.New(holTrace(), NewTiresias(), sim.Options{Tick: 10, SchedulerEvery: 30}).Run().AvgJCTSec
	}
	if run() != run() {
		t.Fatal("Tiresias runs are not deterministic")
	}
}

func TestHorusRespectsMemoryGuard(t *testing.T) {
	// Two BERT-sized jobs (16.5 GB each) cannot pack on 24 GB GPUs even
	// with optimistic predictions.
	cfg := workload.Config{Model: workload.BERT, BatchSize: 32}
	j1 := job.New(1, "b1", "u", "vc", 8, 0, 4000, cfg)
	j2 := job.New(2, "b2", "u", "vc", 8, 0, 4000, cfg)
	tr := &trace.Trace{Name: "mem", Cluster: specOneNode(), Jobs: []*job.Job{j1, j2}, Days: 1}
	res := sim.New(tr, NewHorus(OracleEstimator{}, 3), sim.Options{Tick: 10, SchedulerEvery: 30}).Run()
	if res.SharedStarts != 0 {
		t.Fatalf("Horus packed %d OOM pairs", res.SharedStarts)
	}
	if res.Unfinished != 0 {
		t.Fatal("jobs did not finish")
	}
}

func TestOracleEstimator(t *testing.T) {
	j := mk(1, 2, 0, 1234)
	if got := (OracleEstimator{}).EstimateSec(j); got != 1234 {
		t.Fatalf("oracle estimate = %v", got)
	}
}

func TestPolluxBatchInflation(t *testing.T) {
	if BatchInflation(8, 8) != 1 || BatchInflation(4, 8) != 1 {
		t.Fatal("no inflation at or below demand")
	}
	if BatchInflation(16, 8) != 2 {
		t.Fatal("2× inflation expected")
	}
	if BatchInflation(0, 8) != 1 || BatchInflation(8, 0) != 1 {
		t.Fatal("degenerate inputs must be neutral")
	}
}

func TestSortHelpersDeterministic(t *testing.T) {
	a := []*job.Job{mk(3, 1, 5, 10), mk(1, 1, 5, 10), mk(2, 1, 3, 10)}
	stableSortBy(a, func(j *job.Job) float64 { return 0 }) // all equal keys
	if a[0].ID != 2 || a[1].ID != 1 || a[2].ID != 3 {
		t.Fatalf("tie-break order wrong: %d %d %d", a[0].ID, a[1].ID, a[2].ID)
	}
}
