package sched

import (
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Horus (Yeung et al., TPDS '22 — §4.1 baseline 4) is the intrusive
// packing-and-prediction baseline: it converts the user's model into an
// ONNX graph to *predict* GPU utilization before the job ever runs, then
// packs jobs whose predicted combined utilization fits. Being a static
// prediction from the graph rather than a measurement, the estimate carries
// error — we model it as multiplicative noise on the true profile, which is
// exactly why Horus sometimes packs jobs that interfere (its weak tail
// behaviour in Table 4).
type Horus struct {
	est Estimator
	rng *xrand.RNG
	// predicted caches the noisy utilization prediction per job so the
	// decision is consistent across ticks.
	predicted map[int]workload.Profile
	// PredNoise is the relative std-dev of the graph-based prediction error.
	PredNoise float64
	// UtilBudget is the packing acceptance threshold on predicted combined
	// utilization.
	UtilBudget float64
}

// NewHorus builds the policy around a duration estimator (Horus is also
// data-driven for ordering) and a seed for its prediction noise.
func NewHorus(est Estimator, seed uint64) *Horus {
	return &Horus{
		est:        est,
		rng:        xrand.New(seed ^ 0x40e05),
		predicted:  make(map[int]workload.Profile),
		PredNoise:  0.22,
		UtilBudget: 105,
	}
}

// Name implements sim.Scheduler.
func (*Horus) Name() string { return "Horus" }

// predict returns the (noisy, cached) profile prediction for a job. This is
// the intrusive step: Horus sees the model graph at submission, so the
// prediction exists before any run.
func (h *Horus) predict(j *job.Job) workload.Profile {
	if p, ok := h.predicted[j.ID]; ok {
		return p
	}
	truth := j.Config.Profile()
	noise := func(v float64) float64 {
		n := v * (1 + h.rng.Norm(0, h.PredNoise))
		if n < 1 {
			n = 1
		}
		return n
	}
	p := workload.Profile{
		GPUUtil:    noise(truth.GPUUtil),
		GPUMemMB:   noise(truth.GPUMemMB),
		GPUMemUtil: noise(truth.GPUMemUtil),
		AMP:        truth.AMP,
	}
	h.predicted[j.ID] = p
	return p
}

// Tick drains each VC by predicted service, packing when exclusive
// placement fails.
func (h *Horus) Tick(env *sim.Env) {
	groups := byVC(env.Pending())
	running := env.Running()
	for _, vc := range sortedVCs(groups) {
		jobs := groups[vc]
		stableSortBy(jobs, func(j *job.Job) float64 {
			return h.est.EstimateSec(j) * float64(j.GPUs)
		})
		for _, j := range jobs {
			if env.StartExclusive(j) {
				running = append(running, j)
				continue
			}
			h.tryPack(env, j, running)
		}
	}
}

// tryPack colocates j with the running job minimizing predicted combined
// utilization, subject to the budget and a predicted-memory guard.
func (h *Horus) tryPack(env *sim.Env, j *job.Job, running []*job.Job) {
	pj := h.predict(j)
	var best *job.Job
	bestSum := h.UtilBudget
	for _, r := range running {
		if r.VC != j.VC || r.GPUs != j.GPUs || r.State != job.Running {
			continue
		}
		if env.Cluster().PartnerOf(r.ID) >= 0 {
			continue
		}
		pr := h.predict(r)
		if pj.GPUMemMB+pr.GPUMemMB > workload.GPUMemMBCap {
			continue
		}
		if sum := pj.GPUUtil + pr.GPUUtil; sum < bestSum {
			bestSum, best = sum, r
		}
	}
	if best != nil {
		env.StartShared(j, best)
	}
}
