package sched

import (
	"repro/internal/job"
	"repro/internal/sim"
)

// Pollux (Qiao et al., OSDI '21 — compared in §4.7) is the state-of-the-art
// elastic scheduler: it co-adapts each job's GPU allocation and batch size
// to maximize cluster goodput. Our stand-in keeps the two behaviours the
// paper's comparison hinges on:
//
//   - Elasticity: every active job gets at least one GPU when possible, and
//     leftover GPUs flow to the jobs with the best marginal speedup, so at
//     light load Pollux shines (nothing queues) while at heavy load every
//     job crawls along on a sliver of its demand — the Figure 14a crossover.
//   - Adaptive training: growing a job's allocation inflates its effective
//     batch size, which degrades final model accuracy (Figure 14b,
//     workload.AdaptiveBatchPenalty).
//
// Resizes are intrusive and charged sim.ElasticResizeOverheadSec each.
type Pollux struct {
	// ReallocEverySec bounds how often the allocation is re-optimized
	// (Pollux schedules in rounds).
	ReallocEverySec int64
	lastRealloc     int64
}

// NewPollux returns the policy with Pollux's 60 s scheduling round.
func NewPollux() *Pollux { return &Pollux{ReallocEverySec: 60} }

// Name implements sim.Scheduler.
func (*Pollux) Name() string { return "Pollux" }

// Tick admits every waiting job at minimum size, then rebalances GPUs
// toward the jobs with the largest marginal goodput gain.
func (p *Pollux) Tick(env *sim.Env) {
	// Admit: every pending job tries to start with 1 GPU (or its full demand
	// when the cluster is idle enough). If not even one GPU is free, shrink
	// the fattest running job to make room — Pollux's defining move.
	for _, j := range env.Pending() {
		if env.Cluster().FreeGPUs(j.VC) >= j.GPUs {
			if env.StartElastic(j, j.GPUs) {
				continue
			}
		}
		if env.StartElastic(j, 1) {
			continue
		}
		if p.shrinkFattest(env, j.VC) {
			env.StartElastic(j, 1)
		}
	}

	if env.Now()-p.lastRealloc < p.ReallocEverySec {
		return
	}
	p.lastRealloc = env.Now()

	// Rebalance per VC: shrink over-allocated jobs when others starve, grow
	// under-allocated jobs into free capacity.
	running := env.Running()
	groups := byVC(running)
	for _, vc := range sortedVCs(groups) {
		jobs := groups[vc]
		// Starvation pass: if any job is far below fair share, shrink the
		// most over-allocated job one step.
		p.rebalance(env, jobs)
		// Growth pass: hand out free GPUs to the hungriest jobs.
		for _, j := range orderByHunger(env, jobs) {
			alloc := env.ElasticAlloc(j)
			if alloc == 0 || alloc >= j.GPUs {
				continue
			}
			next := alloc * 2
			if next > j.GPUs {
				next = j.GPUs
			}
			if env.Cluster().FreeGPUs(vc) >= next-alloc {
				env.ResizeElastic(j, next)
			}
		}
	}
}

// shrinkFattest halves the allocation of the VC's most over-allocated
// running job; returns true if any capacity was released.
func (p *Pollux) shrinkFattest(env *sim.Env, vc string) bool {
	var fat *job.Job
	best := 0
	for _, r := range env.Running() {
		if r.VC != vc {
			continue
		}
		if a := env.ElasticAlloc(r); a > best {
			best, fat = a, r
		}
	}
	if fat == nil || best <= 1 {
		return false
	}
	return env.ResizeElastic(fat, best/2)
}

// rebalance shrinks the largest allocation when the smallest is starving.
func (p *Pollux) rebalance(env *sim.Env, jobs []*job.Job) {
	var minJ, maxJ *job.Job
	minFrac, maxFrac := 2.0, -1.0
	for _, j := range jobs {
		alloc := env.ElasticAlloc(j)
		if alloc == 0 {
			continue
		}
		frac := float64(alloc) / float64(j.GPUs)
		if frac < minFrac {
			minFrac, minJ = frac, j
		}
		if frac > maxFrac {
			maxFrac, maxJ = frac, j
		}
	}
	if minJ == nil || maxJ == nil || minJ == maxJ {
		return
	}
	// Squeeze only when the gap is material.
	if maxFrac > 2.5*minFrac && env.ElasticAlloc(maxJ) > 1 {
		env.ResizeElastic(maxJ, env.ElasticAlloc(maxJ)/2)
	}
}

// orderByHunger sorts by allocation fraction ascending (hungriest first).
func orderByHunger(env *sim.Env, jobs []*job.Job) []*job.Job {
	out := append([]*job.Job(nil), jobs...)
	stableSortBy(out, func(j *job.Job) float64 {
		alloc := env.ElasticAlloc(j)
		if alloc == 0 {
			return 2
		}
		return float64(alloc) / float64(j.GPUs)
	})
	return out
}

// BatchInflation reports the effective batch-size inflation Pollux applied
// to a finished job — the input to workload.AdaptiveBatchPenalty in the
// Figure 14b experiment. Jobs that ever ran at full allocation under load
// get their batch scaled up roughly with allocation.
func BatchInflation(alloc, demand int) float64 {
	if alloc <= 0 || demand <= 0 {
		return 1
	}
	f := float64(alloc) / float64(demand)
	if f < 1 {
		return 1
	}
	return f
}
