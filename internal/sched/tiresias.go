package sched

import (
	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
)

// Tiresias (Gu et al., NSDI '19 — §4.1 baseline 5) is the paper's strongest
// intrusive baseline: two-dimensional discretized Least-Attained-Service.
// Jobs are binned into priority queues by attained GPU-time; within a queue
// the order is FIFO (runtime-agnostic, as §4.8 points out). It is
// preemptive: a higher-priority waiting job evicts lower-priority running
// jobs, each preemption costing the checkpoint-restore overhead the paper
// measures at 62 s.
type Tiresias struct {
	// QueueThresholdsGPUSec are the discretization boundaries; attained
	// service below thresholds[i] lands in queue i.
	QueueThresholdsGPUSec []float64
	// PreemptOverheadSec is charged per preemption.
	PreemptOverheadSec float64
	// PromoteIntervalSec starves-proofs long jobs: a job waiting longer than
	// this is promoted to the top queue (Tiresias's PROMOTE knob).
	PromoteIntervalSec int64
	// MinRunQuantumSec protects a freshly (re)started job from immediate
	// re-preemption — Tiresias schedules in coarse rounds, so victims always
	// get a useful quantum.
	MinRunQuantumSec float64

	startedAt map[int]int64
	stoppedAt map[int]int64
}

// NewTiresias returns the policy with defaults in the range Gu et al.
// explore: two queues split at 1 GPU-hour of attained service, 62 s
// preemption cost (the per-preemption overhead §4.8 cites).
func NewTiresias() *Tiresias {
	return &Tiresias{
		QueueThresholdsGPUSec: []float64{3600},
		PreemptOverheadSec:    62,
		PromoteIntervalSec:    24 * 3600,
		MinRunQuantumSec:      120,
		startedAt:             map[int]int64{},
		stoppedAt:             map[int]int64{},
	}
}

// Name implements sim.Scheduler.
func (*Tiresias) Name() string { return "Tiresias" }

// queueOf discretizes attained service.
func (t *Tiresias) queueOf(j *job.Job, now int64) int {
	// PROMOTE: a starved waiting job — never started, or evicted long ago —
	// is lifted back to the top queue (Tiresias's anti-starvation knob).
	if j.State != job.Running {
		if j.FirstStart < 0 && now-j.Submit > t.PromoteIntervalSec {
			return 0
		}
		if stopped, ok := t.stoppedAt[j.ID]; ok && now-stopped > t.PromoteIntervalSec {
			return 0
		}
	}
	for i, thr := range t.QueueThresholdsGPUSec {
		if j.AttainedGPUT < thr {
			return i
		}
	}
	return len(t.QueueThresholdsGPUSec)
}

// Tick recomputes the desired running set per VC and preempts/starts to
// realize it.
func (t *Tiresias) Tick(env *sim.Env) {
	now := env.Now()
	pending := env.Pending()
	running := env.Running()

	all := append(append([]*job.Job(nil), pending...), running...)
	groups := byVC(all)
	cl := env.Cluster()

	for _, vc := range sortedVCs(groups) {
		jobs := groups[vc]
		// Priority order: (queue, submit).
		stableSortBy(jobs, func(j *job.Job) float64 {
			return float64(t.queueOf(j, now))*1e12 + float64(j.Submit)
		})

		// Capacity-greedy desired set.
		capacity := vcGPUs(cl, vc)
		desired := map[int]bool{}
		for _, j := range jobs {
			if j.GPUs <= capacity {
				desired[j.ID] = true
				capacity -= j.GPUs
			}
		}

		// The LAS preemption invariant: a running job is only evicted for
		// jobs from a strictly higher-priority queue — same-queue arrivals
		// wait (FIFO within a queue), which is what keeps Tiresias from
		// thrashing.
		minUnplaced := 1 << 30
		for _, j := range jobs {
			if desired[j.ID] && j.State != job.Running {
				if q := t.queueOf(j, now); q < minUnplaced {
					minUnplaced = q
				}
			}
		}
		for _, j := range jobs {
			if j.State == job.Running && !desired[j.ID] {
				if t.queueOf(j, now) <= minUnplaced {
					continue
				}
				if started, ok := t.startedAt[j.ID]; ok && float64(now-started) < t.MinRunQuantumSec {
					continue
				}
				if env.Preempt(j, t.PreemptOverheadSec) {
					t.stoppedAt[j.ID] = now
				}
			}
		}
		// Start desired waiting jobs in priority order (placement may still
		// fail on fragmentation; those wait for the next round).
		for _, j := range jobs {
			if j.State != job.Running && desired[j.ID] {
				if env.StartExclusive(j) {
					t.startedAt[j.ID] = now
				}
			}
		}
	}
}

// vcGPUs counts the total GPUs a VC owns.
func vcGPUs(cl *cluster.Cluster, vc string) int {
	spec := cl.Spec()
	for _, v := range spec.VCs {
		if v.Name == vc {
			return v.Nodes * spec.GPUsPerNode
		}
	}
	return 0
}
