package sched

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func specOneNode() cluster.Spec {
	return cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "vc", Nodes: 1}}}
}

func mk(id, gpus int, submit, dur int64) *job.Job {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	return job.New(id, "j", "u", "vc", gpus, submit, dur, cfg)
}

// holTrace: a long job arrives first, then a burst of short jobs — the HOL
// blocking scenario.
func holTrace() *trace.Trace {
	jobs := []*job.Job{mk(1, 8, 0, 20000)}
	for i := 2; i <= 11; i++ {
		jobs = append(jobs, mk(i, 8, 10, 200))
	}
	return &trace.Trace{Name: "hol", Cluster: specOneNode(), Jobs: jobs, Days: 1}
}

func run(t *testing.T, tr *trace.Trace, s sim.Scheduler) *sim.Result {
	t.Helper()
	res := sim.New(tr, s, sim.Options{Tick: 10, SchedulerEvery: 30}).Run()
	if res.Unfinished != 0 {
		t.Fatalf("%s left %d unfinished", s.Name(), res.Unfinished)
	}
	return res
}

func TestSJFBeatsFIFOUnderHOL(t *testing.T) {
	fifo := run(t, holTrace(), NewFIFO())
	sjf := run(t, holTrace(), NewSJF())
	if sjf.AvgJCTSec*2 > fifo.AvgJCTSec {
		t.Fatalf("SJF (%.0fs) should crush FIFO (%.0fs) under HOL blocking",
			sjf.AvgJCTSec, fifo.AvgJCTSec)
	}
}

func TestQSSFWithOracleMatchesSJF(t *testing.T) {
	sjf := run(t, holTrace(), NewSJF())
	qssf := run(t, holTrace(), NewQSSF(OracleEstimator{}))
	// Same information → near-identical outcome (priority adds a ×GPUs
	// factor that is constant here).
	if diff := qssf.AvgJCTSec - sjf.AvgJCTSec; diff > sjf.AvgJCTSec*0.05 || diff < -sjf.AvgJCTSec*0.05 {
		t.Fatalf("QSSF(oracle)=%.0fs vs SJF=%.0fs", qssf.AvgJCTSec, sjf.AvgJCTSec)
	}
}

func TestTiresiasPreemptsLongForShort(t *testing.T) {
	fifo := run(t, holTrace(), NewFIFO())
	tir := run(t, holTrace(), NewTiresias())
	// Tiresias evicts the long job, so short jobs finish orders of magnitude
	// sooner than under FIFO.
	if tir.AvgJCTSec*3 > fifo.AvgJCTSec {
		t.Fatalf("Tiresias (%.0fs) should beat FIFO (%.0fs)", tir.AvgJCTSec, fifo.AvgJCTSec)
	}
	// And it must actually have preempted.
	preempts := 0
	for _, j := range tir.Jobs {
		preempts += j.Preemptions
	}
	if preempts == 0 {
		t.Fatal("Tiresias never preempted in a HOL scenario")
	}
}

func TestTiresiasOverheadVisible(t *testing.T) {
	// The preempted long job pays the 62 s cold start at least once.
	tir := run(t, holTrace(), NewTiresias())
	long := tir.Jobs[0]
	if long.JCT() < long.Duration+62 {
		t.Fatalf("long job JCT %d shows no preemption overhead (duration %d)",
			long.JCT(), long.Duration)
	}
}

// packableTrace: pairs of low-utilization jobs that profit from sharing.
func packableTrace() *trace.Trace {
	cfgLight := workload.Config{Model: workload.PointNet, BatchSize: 64}
	var jobs []*job.Job
	for i := 1; i <= 8; i++ {
		j := job.New(i, "light", "u", "vc", 4, 0, 2000, cfgLight)
		jobs = append(jobs, j)
	}
	return &trace.Trace{Name: "packable", Cluster: specOneNode(), Jobs: jobs, Days: 1}
}

func TestHorusPacksWhenBeneficial(t *testing.T) {
	// 8 × 4-GPU jobs on 8 GPUs: exclusively they run 2 at a time (4
	// rounds); packed they run 4 at a time at ~full speed.
	fifo := run(t, packableTrace(), NewFIFO())
	horus := run(t, packableTrace(), NewHorus(OracleEstimator{}, 1))
	if horus.AvgJCTSec >= fifo.AvgJCTSec*0.8 {
		t.Fatalf("Horus (%.0fs) should pack and beat FIFO (%.0fs)", horus.AvgJCTSec, fifo.AvgJCTSec)
	}
}

func TestPolluxElasticityAvoidsQueueing(t *testing.T) {
	// More 8-GPU jobs than the cluster can run exclusively: Pollux shrinks
	// allocations so everyone runs; queue delay stays near zero.
	var jobs []*job.Job
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, job.New(i, "e", "u", "vc", 8, 0, 1000, cfg))
	}
	tr := &trace.Trace{Name: "elastic", Cluster: specOneNode(), Jobs: jobs, Days: 1}
	pollux := run(t, tr, NewPollux())
	if pollux.AvgQueueSec > 120 {
		t.Fatalf("Pollux avg queue %.0fs; elasticity should admit everyone", pollux.AvgQueueSec)
	}
	fifo := run(t, tr, NewFIFO())
	if fifo.AvgQueueSec < pollux.AvgQueueSec {
		t.Fatal("FIFO cannot queue less than Pollux here")
	}
}

func TestPolluxLightLoadRunsFullSize(t *testing.T) {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	jobs := []*job.Job{job.New(1, "e", "u", "vc", 8, 0, 1000, cfg)}
	tr := &trace.Trace{Name: "light", Cluster: specOneNode(), Jobs: jobs, Days: 1}
	res := run(t, tr, NewPollux())
	// Alone on the cluster → full allocation → JCT ≈ duration.
	if jct := res.Jobs[0].JCT(); jct > 1100 {
		t.Fatalf("solo elastic job JCT = %d, want ≈1000", jct)
	}
}

func TestSchedulersRespectVCBoundaries(t *testing.T) {
	spec := cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "a", Nodes: 1}, {Name: "b", Nodes: 1}}}
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	jobs := []*job.Job{
		job.New(1, "x", "u", "a", 8, 0, 5000, cfg),
		job.New(2, "y", "u", "a", 8, 0, 100, cfg), // must wait despite b idle
		job.New(3, "z", "u", "b", 1, 0, 100, cfg),
	}
	tr := &trace.Trace{Name: "vc", Cluster: spec, Jobs: jobs, Days: 1}
	for _, s := range []sim.Scheduler{NewFIFO(), NewSJF(), NewQSSF(OracleEstimator{}), NewTiresias()} {
		res := sim.New(tr, s, sim.Options{Tick: 10, SchedulerEvery: 30}).Run()
		j3 := res.Jobs[2]
		if j3.QueueDelay() > 60 {
			t.Fatalf("%s: job in idle VC b queued %ds", s.Name(), j3.QueueDelay())
		}
	}
}

func TestHorusPredictionNoiseDeterministic(t *testing.T) {
	h1 := NewHorus(OracleEstimator{}, 42)
	h2 := NewHorus(OracleEstimator{}, 42)
	j := mk(1, 1, 0, 100)
	p1 := h1.predict(j)
	p2 := h2.predict(j)
	if p1 != p2 {
		t.Fatal("Horus prediction not deterministic for equal seeds")
	}
	// Cached across calls.
	if h1.predict(j) != p1 {
		t.Fatal("Horus prediction not cached")
	}
}
