package sched

import (
	"repro/internal/job"
	"repro/internal/sim"
)

// QSSF is Quasi-Shortest-Service-First from Helios (§4.1 baseline 3, the
// paper's citation [42]): prioritize by *predicted service* — estimated
// duration × GPU demand — from a black-box ML model trained on historical
// logs. Non-preemptive and non-intrusive, but opaque (the paper's critique)
// and profile-blind: unlike Lucid it cannot fold profiled features into the
// estimate or pack jobs.
type QSSF struct {
	est Estimator
}

// NewQSSF builds the policy around a duration estimator (typically the GBDT
// stand-in for Helios's LightGBM).
func NewQSSF(est Estimator) *QSSF { return &QSSF{est: est} }

// Name implements sim.Scheduler.
func (*QSSF) Name() string { return "QSSF" }

// Tick drains each VC queue in predicted-service order.
func (q *QSSF) Tick(env *sim.Env) {
	groups := byVC(env.Pending())
	for _, vc := range sortedVCs(groups) {
		jobs := groups[vc]
		stableSortBy(jobs, func(j *job.Job) float64 {
			return q.est.EstimateSec(j) * float64(j.GPUs)
		})
		placeGreedy(env, jobs)
	}
}
