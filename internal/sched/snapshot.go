package sched

import (
	"encoding/json"
	"fmt"

	"repro/internal/workload"
)

// SchedulerState implementations (see sim.SchedulerState) for the stateful
// baselines. FIFO, SJF and QSSF are stateless across ticks and deliberately
// do not implement the interface — a snapshot of them is just the world.

// tiresiasState captures the LAS bookkeeping clocks.
type tiresiasState struct {
	StartedAt map[int]int64 `json:"started_at,omitempty"`
	StoppedAt map[int]int64 `json:"stopped_at,omitempty"`
}

// SnapshotState implements sim.SchedulerState.
func (t *Tiresias) SnapshotState() ([]byte, error) {
	return json.Marshal(tiresiasState{StartedAt: t.startedAt, StoppedAt: t.stoppedAt})
}

// RestoreState implements sim.SchedulerState.
func (t *Tiresias) RestoreState(blob []byte) error {
	var st tiresiasState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("tiresias: decode state: %w", err)
	}
	t.startedAt = map[int]int64{}
	for id, v := range st.StartedAt {
		t.startedAt[id] = v
	}
	t.stoppedAt = map[int]int64{}
	for id, v := range st.StoppedAt {
		t.stoppedAt[id] = v
	}
	return nil
}

// horusState captures the prediction-noise RNG position and the per-job
// prediction cache (the cache is state, not memoization: predictions are
// drawn from the RNG, so an uncached re-prediction would consume different
// randomness than the interrupted run).
type horusState struct {
	RNG       uint64                   `json:"rng"`
	Predicted map[int]workload.Profile `json:"predicted,omitempty"`
}

// SnapshotState implements sim.SchedulerState.
func (h *Horus) SnapshotState() ([]byte, error) {
	return json.Marshal(horusState{RNG: h.rng.State(), Predicted: h.predicted})
}

// RestoreState implements sim.SchedulerState.
func (h *Horus) RestoreState(blob []byte) error {
	var st horusState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("horus: decode state: %w", err)
	}
	h.rng.SetState(st.RNG)
	h.predicted = make(map[int]workload.Profile, len(st.Predicted))
	for id, p := range st.Predicted {
		h.predicted[id] = p
	}
	return nil
}

// polluxState captures the scheduling-round clock.
type polluxState struct {
	LastRealloc int64 `json:"last_realloc"`
}

// SnapshotState implements sim.SchedulerState.
func (p *Pollux) SnapshotState() ([]byte, error) {
	return json.Marshal(polluxState{LastRealloc: p.lastRealloc})
}

// RestoreState implements sim.SchedulerState.
func (p *Pollux) RestoreState(blob []byte) error {
	var st polluxState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("pollux: decode state: %w", err)
	}
	p.lastRealloc = st.LastRealloc
	return nil
}
