package sched

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestTiresiasDemotionCrossingWakesEngine pins the pending-decision rule for
// LAS demotions. One GPU, two jobs: A runs, B waits in the same queue. When
// A's attained service crosses the demotion threshold, the next scheduler
// round must evict A for B. The trap: a sampling wake-up lands between the
// crossing and that round, and at that instant A is already past the
// threshold — a NextWake that only reports *future* crossings (or filters
// against Now instead of the last scheduler round) returns nothing, the
// engine sleeps to the next sample, and B starts thousands of seconds late.
func TestTiresiasDemotionCrossingWakesEngine(t *testing.T) {
	spec := cluster.Spec{GPUsPerNode: 1, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "vc", Nodes: 1}}}
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	mkTrace := func() *trace.Trace {
		return &trace.Trace{Name: "demote", Cluster: spec, Days: 1, Jobs: []*job.Job{
			job.New(1, "a", "u", "vc", 1, 0, 20000, cfg),
			job.New(2, "b", "u", "vc", 1, 10, 5000, cfg),
		}}
	}
	mkSched := func() *Tiresias {
		tir := NewTiresias()
		tir.QueueThresholdsGPUSec = []float64{3650}
		return tir
	}
	// SampleEvery is chosen to land a wake-up just after the crossing but
	// before the round that consumes it.
	opts := sim.Options{Tick: 1, SchedulerEvery: 100, SampleEvery: 3660}

	starts := map[sim.EngineKind]int64{}
	for _, eng := range []sim.EngineKind{sim.EngineTick, sim.EngineEvent} {
		o := opts
		o.Engine = eng
		res := sim.New(mkTrace(), mkSched(), o).Run()
		if res.Unfinished != 0 {
			t.Fatalf("%v: %d unfinished", eng, res.Unfinished)
		}
		a, b := res.Jobs[0], res.Jobs[1]
		if a.Preemptions != 1 {
			t.Fatalf("%v: A preempted %d times, want 1 (demotion eviction)", eng, a.Preemptions)
		}
		// A starts by the first round, crosses at start+3650; the eviction
		// round follows within one cadence interval.
		if b.FirstStart > a.FirstStart+3650+opts.SchedulerEvery+opts.Tick {
			t.Fatalf("%v: B started at %d (A at %d) — demotion round missed",
				eng, b.FirstStart, a.FirstStart)
		}
		starts[eng] = b.FirstStart
	}
	if starts[sim.EngineTick] != starts[sim.EngineEvent] {
		t.Fatalf("engines disagree on B's start: tick=%d event=%d",
			starts[sim.EngineTick], starts[sim.EngineEvent])
	}
}
