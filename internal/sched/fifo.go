package sched

import "repro/internal/sim"

// FIFO is the conventional first-in-first-out policy of Yarn/Kubernetes
// default queues (§4.1 baseline 1): per-VC arrival order with strict
// head-of-line blocking and no backfill. "Simple but typically performs
// poorly due to its runtime-agnostic scheduling paradigm."
type FIFO struct{}

// NewFIFO returns the policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Name implements sim.Scheduler.
func (*FIFO) Name() string { return "FIFO" }

// Tick places each VC's queue head; a blocked head blocks its whole VC.
func (*FIFO) Tick(env *sim.Env) {
	groups := byVC(env.Pending())
	for _, vc := range sortedVCs(groups) {
		placeStrict(env, groups[vc]) // Pending() is already submit-ordered
	}
}
