package snap

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte(`{"now":3600,"jobs":[1,2,3]}`)
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "sim-world", payload); err != nil {
		t.Fatal(err)
	}
	kind, got, err := ReadEnvelope(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if kind != "sim-world" || !bytes.Equal(got, payload) {
		t.Fatalf("round trip mismatch: kind=%q payload=%q", kind, got)
	}
}

func TestEnvelopeDeterministic(t *testing.T) {
	payload := []byte("same state twice")
	var a, b bytes.Buffer
	if err := WriteEnvelope(&a, "k", payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteEnvelope(&b, "k", payload); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical payloads produced different envelope bytes")
	}
}

func TestEnvelopeRejectsTruncationAndCorruption(t *testing.T) {
	payload := []byte("the complete simulator world")
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "sim-world", payload); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Every proper prefix must fail loudly, never parse as empty state.
	for cut := 0; cut < len(whole); cut++ {
		if _, _, err := ReadEnvelope(bytes.NewReader(whole[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(whole))
		}
	}
	// Any single flipped payload byte must fail the digest.
	for i := len(whole) - len(payload); i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0x40
		if _, _, err := ReadEnvelope(bytes.NewReader(mut)); err == nil {
			t.Fatalf("flipped payload byte %d accepted", i)
		}
	}
	// Wrong magic.
	mut := append([]byte(nil), whole...)
	mut[0] = 'X'
	if _, _, err := ReadEnvelope(bytes.NewReader(mut)); err == nil ||
		!strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic not rejected: %v", err)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("a"), {}, []byte("third record with more bytes")}
	for _, p := range payloads {
		if err := AppendRecord(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf.Bytes())
	for i, want := range payloads {
		got, err := ReadRecord(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %q want %q", i, got, want)
		}
	}
	if _, err := ReadRecord(r); err != io.EOF {
		t.Fatalf("want clean EOF after last record, got %v", err)
	}
}

func TestReadRecordCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := AppendRecord(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	// Torn tail: every strict prefix (except empty = clean EOF) is corrupt.
	for cut := 1; cut < len(whole); cut++ {
		_, err := ReadRecord(bytes.NewReader(whole[:cut]))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d/%d: want ErrCorrupt, got %v", cut, len(whole), err)
		}
	}
	// Flipped payload byte: CRC catches it.
	mut := append([]byte(nil), whole...)
	mut[len(mut)-1] ^= 0x01
	if _, err := ReadRecord(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped byte: want ErrCorrupt, got %v", err)
	}
}

func TestWALRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal")

	w, stats, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || stats.TornBytes != 0 {
		t.Fatalf("fresh wal reported prior state: %+v", stats)
	}
	for _, p := range []string{"op-1", "op-2", "op-3"} {
		if err := w.Append([]byte(p), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the last record.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed []string
	w2, stats, err := OpenWAL(path, func(p []byte) error {
		replayed = append(replayed, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"op-1", "op-2"}; len(replayed) != 2 || replayed[0] != want[0] || replayed[1] != want[1] {
		t.Fatalf("replayed %v, want %v", replayed, want)
	}
	if stats.TornBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The log must be append-clean after truncation.
	if err := w2.Append([]byte("op-4"), true); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	replayed = nil
	w3, _, err := OpenWAL(path, func(p []byte) error {
		replayed = append(replayed, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if want := []string{"op-1", "op-2", "op-4"}; len(replayed) != 3 || replayed[2] != "op-4" {
		t.Fatalf("after re-append replayed %v, want %v", replayed, want)
	}
	if w3.Records() != 3 {
		t.Fatalf("Records() = %d, want 3", w3.Records())
	}
}

func TestWALReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte("record"), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 0 || w.Bytes() != 0 {
		t.Fatalf("after reset: records=%d bytes=%d", w.Records(), w.Bytes())
	}
	if err := w.Append([]byte("fresh"), true); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []string
	w2, _, err := OpenWAL(path, func(p []byte) error { got = append(got, string(p)); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 1 || got[0] != "fresh" {
		t.Fatalf("after reset+append replay = %v", got)
	}
}

func TestWALBatchedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _, err := OpenWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SyncEvery = 3
	for i := 0; i < 2; i++ {
		if err := w.Append([]byte("x"), false); err != nil {
			t.Fatal(err)
		}
	}
	if w.unsynced != 2 {
		t.Fatalf("unsynced = %d before threshold, want 2", w.unsynced)
	}
	if err := w.Append([]byte("x"), false); err != nil {
		t.Fatal(err)
	}
	if w.unsynced != 0 {
		t.Fatalf("unsynced = %d after threshold append, want 0", w.unsynced)
	}
}
