package snap

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWALRecord throws arbitrary bytes at the record parser and checks the
// contract: every outcome is clean EOF, a valid record, or ErrCorrupt —
// never a panic, never a huge allocation, and a parsed record re-frames to
// the exact prefix it was read from.
func FuzzWALRecord(f *testing.F) {
	seed := func(payloads ...[]byte) []byte {
		var buf bytes.Buffer
		for _, p := range payloads {
			if err := AppendRecord(&buf, p); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add(seed([]byte("hello")))
	f.Add(seed([]byte(""), []byte(`{"op":"job","name":"resnet50"}`)))
	f.Add(seed([]byte("a"))[:5]) // torn tail
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		consumed := 0
		for {
			before := len(data) - r.Len()
			payload, err := ReadRecord(r)
			if err == io.EOF {
				if before != len(data) {
					t.Fatalf("clean EOF with %d unconsumed bytes", len(data)-before)
				}
				break
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("error is neither EOF nor ErrCorrupt: %v", err)
				}
				break
			}
			// A valid record must re-encode to the exact bytes it came from.
			after := len(data) - r.Len()
			var re bytes.Buffer
			if aerr := AppendRecord(&re, payload); aerr != nil {
				t.Fatalf("re-frame: %v", aerr)
			}
			if !bytes.Equal(re.Bytes(), data[before:after]) {
				t.Fatalf("re-framed record differs from source frame at %d..%d", before, after)
			}
			consumed = after
		}
		_ = consumed
	})
}
