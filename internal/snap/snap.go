// Package snap is the durable-state substrate: versioned, self-describing
// snapshot envelopes and a CRC-framed write-ahead log, both stdlib-only and
// deterministic. Two higher layers build on it:
//
//   - the simulator (internal/sim) serializes its complete world — clock,
//     clusters, job runtime state, chaos state, recorder digest, scheduler
//     policy state — into one envelope, enabling crash-consistent resume and
//     time-travel forks that are bit-identical to an uninterrupted run;
//   - the lucidd control plane (internal/lucidd) logs every mutating request
//     to a WAL and periodically compacts it into a snapshot, so a SIGKILLed
//     daemon recovers every acknowledged submission on restart.
//
// Determinism is load-bearing: an envelope's payload is canonical JSON
// (struct fields in declaration order, map keys sorted by encoding/json),
// so snapshotting the same state twice yields byte-identical files and the
// FNV-1a digest in the header doubles as a state fingerprint.
package snap

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Envelope header layout (little-endian):
//
//	magic   [8]byte  "LUCSNAP1"
//	version uint32   format version (CurrentVersion)
//	kindLen uint16   length of the kind string
//	kind    []byte   payload kind, e.g. "sim-world", "lucidd-state"
//	payLen  uint64   payload length in bytes
//	digest  uint64   FNV-1a over the payload
//	payload []byte
const (
	magic = "LUCSNAP1"
	// CurrentVersion is the envelope format version. Readers reject other
	// versions loudly instead of misparsing.
	CurrentVersion = 1
	// maxKindLen bounds the kind string so a corrupted header cannot force
	// a large allocation.
	maxKindLen = 255
)

// FNV-1a 64-bit parameters (shared with internal/dtrace's trace digest).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Digest returns the FNV-1a hash of b.
func Digest(b []byte) uint64 {
	h := fnvOffset
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// DigestString renders a digest the way the decision-trace recorder does:
// 16 hex digits.
func DigestString(d uint64) string { return fmt.Sprintf("%016x", d) }

// WriteEnvelope frames payload as a versioned, digest-protected snapshot of
// the given kind.
func WriteEnvelope(w io.Writer, kind string, payload []byte) error {
	if len(kind) == 0 || len(kind) > maxKindLen {
		return fmt.Errorf("snap: kind %q must be 1..%d bytes", kind, maxKindLen)
	}
	hdr := make([]byte, 0, len(magic)+4+2+len(kind)+8+8)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, CurrentVersion)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(kind)))
	hdr = append(hdr, kind...)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))
	hdr = binary.LittleEndian.AppendUint64(hdr, Digest(payload))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("snap: write header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("snap: write payload: %w", err)
	}
	return nil
}

// ReadEnvelope parses an envelope, verifying magic, version and payload
// digest. Truncated or corrupted input fails with a descriptive error —
// never with a silently zero-valued payload.
func ReadEnvelope(r io.Reader) (kind string, payload []byte, err error) {
	fixed := make([]byte, len(magic)+4+2)
	if _, err := io.ReadFull(r, fixed); err != nil {
		return "", nil, fmt.Errorf("snap: truncated header: %w", err)
	}
	if string(fixed[:len(magic)]) != magic {
		return "", nil, fmt.Errorf("snap: bad magic %q", fixed[:len(magic)])
	}
	ver := binary.LittleEndian.Uint32(fixed[len(magic):])
	if ver != CurrentVersion {
		return "", nil, fmt.Errorf("snap: unsupported version %d (want %d)", ver, CurrentVersion)
	}
	kindLen := int(binary.LittleEndian.Uint16(fixed[len(magic)+4:]))
	if kindLen == 0 || kindLen > maxKindLen {
		return "", nil, fmt.Errorf("snap: bad kind length %d", kindLen)
	}
	rest := make([]byte, kindLen+8+8)
	if _, err := io.ReadFull(r, rest); err != nil {
		return "", nil, fmt.Errorf("snap: truncated header: %w", err)
	}
	kind = string(rest[:kindLen])
	payLen := binary.LittleEndian.Uint64(rest[kindLen:])
	wantDigest := binary.LittleEndian.Uint64(rest[kindLen+8:])
	if payLen > 1<<33 {
		return "", nil, fmt.Errorf("snap: implausible payload length %d", payLen)
	}
	payload = make([]byte, payLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return "", nil, fmt.Errorf("snap: truncated payload (%d of %d bytes): %w",
			0, payLen, err)
	}
	if got := Digest(payload); got != wantDigest {
		return "", nil, fmt.Errorf("snap: payload digest mismatch: got %s want %s",
			DigestString(got), DigestString(wantDigest))
	}
	return kind, payload, nil
}
