package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// WAL record framing (little-endian):
//
//	length uint32   payload length in bytes
//	crc    uint32   CRC-32 (IEEE) over the payload
//	payload []byte
//
// Recovery semantics: a record is valid only if the full frame is present
// AND the CRC matches. Replay stops at the first invalid frame and reports
// its offset; everything before it is intact (a prefix property the CRC
// framing guarantees for torn tails from crashes mid-write). OpenWAL
// truncates the torn tail so the log is append-clean again.
const (
	recHeaderLen = 8
	// MaxRecordLen bounds a single WAL record. A corrupted length field
	// otherwise turns replay into a multi-gigabyte allocation.
	MaxRecordLen = 16 << 20
)

// ErrCorrupt marks a frame that is present but fails validation (bad CRC or
// implausible length). Callers distinguish it from clean EOF.
var ErrCorrupt = errors.New("snap: corrupt WAL record")

// AppendRecord frames payload into w as a single contiguous write.
func AppendRecord(w io.Writer, payload []byte) error {
	if len(payload) > MaxRecordLen {
		return fmt.Errorf("snap: record of %d bytes exceeds max %d", len(payload), MaxRecordLen)
	}
	buf := make([]byte, recHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(buf, uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderLen:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadRecord reads one framed record. It returns io.EOF on a clean end
// (zero bytes before the next frame), and an error wrapping ErrCorrupt for
// a torn or damaged frame.
func ReadRecord(r io.Reader) ([]byte, error) {
	hdr := make([]byte, recHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean boundary
		}
		return nil, fmt.Errorf("%w: torn header: %v", ErrCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(hdr)
	want := binary.LittleEndian.Uint32(hdr[4:])
	if n > MaxRecordLen {
		return nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: torn payload: %v", ErrCorrupt, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("%w: crc mismatch (got %08x want %08x)", ErrCorrupt, got, want)
	}
	return payload, nil
}

// WAL is an append-only, CRC-framed log backed by one file. Appends are
// durable after Sync; Append(sync=true) syncs inline (used for operations
// that must survive a crash once acknowledged), while sync=false batches
// fsyncs every SyncEvery records (heartbeats, metrics — cheap to lose,
// expensive to sync one by one).
type WAL struct {
	f         *os.File
	path      string
	SyncEvery int // batched-fsync threshold for Append(sync=false); 0 = every append
	// OnSync, when set, observes the wall-clock duration of each fsync —
	// an instrumentation hook (fsync latency is the WAL's dominant cost and
	// the first thing to watch on a struggling disk). Must not call back
	// into the WAL.
	OnSync   func(d time.Duration)
	unsynced int
	records  int64
	bytes    int64
}

// RecoverStats describes what OpenWAL found on disk.
type RecoverStats struct {
	Records   int   // valid records replayed
	TornBytes int64 // bytes truncated from a damaged tail
}

// OpenWAL opens (creating if absent) the log at path, replays every valid
// record through apply, truncates any torn tail, and leaves the file
// positioned for appending. apply may be nil to skip replay consumption
// (the scan still validates and truncates).
func OpenWAL(path string, apply func(payload []byte) error) (*WAL, RecoverStats, error) {
	var stats RecoverStats
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, stats, fmt.Errorf("snap: open wal: %w", err)
	}
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, stats, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, stats, err
	}
	var off int64
	br := newCountingReader(f)
	for {
		payload, rerr := ReadRecord(br)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			if !errors.Is(rerr, ErrCorrupt) {
				f.Close()
				return nil, stats, rerr
			}
			// Torn or damaged tail: drop everything from the bad frame on.
			stats.TornBytes = size - off
			if terr := f.Truncate(off); terr != nil {
				f.Close()
				return nil, stats, fmt.Errorf("snap: truncate torn wal tail: %w", terr)
			}
			break
		}
		if apply != nil {
			if aerr := apply(payload); aerr != nil {
				f.Close()
				return nil, stats, fmt.Errorf("snap: wal replay at offset %d: %w", off, aerr)
			}
		}
		stats.Records++
		off = br.n
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, stats, err
	}
	w := &WAL{f: f, path: path, SyncEvery: 64, records: int64(stats.Records), bytes: off}
	return w, stats, nil
}

// Append frames payload onto the log. With sync=true the record is fsynced
// before Append returns; with sync=false durability is deferred to the
// batching threshold, an explicit Sync, or Close.
func (w *WAL) Append(payload []byte, sync bool) error {
	if err := AppendRecord(w.f, payload); err != nil {
		return fmt.Errorf("snap: wal append: %w", err)
	}
	w.records++
	w.bytes += int64(recHeaderLen + len(payload))
	w.unsynced++
	if sync || (w.SyncEvery > 0 && w.unsynced >= w.SyncEvery) || w.SyncEvery == 0 {
		return w.Sync()
	}
	return nil
}

// Sync flushes pending records to stable storage.
func (w *WAL) Sync() error {
	if w.unsynced == 0 {
		return nil
	}
	start := time.Time{}
	if w.OnSync != nil {
		start = time.Now()
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("snap: wal sync: %w", err)
	}
	if w.OnSync != nil {
		w.OnSync(time.Since(start))
	}
	w.unsynced = 0
	return nil
}

// Records reports how many valid records the log holds (replayed + appended).
func (w *WAL) Records() int64 { return w.records }

// Bytes reports the log's valid length in bytes.
func (w *WAL) Bytes() int64 { return w.bytes }

// Reset truncates the log to empty after a successful snapshot compaction.
func (w *WAL) Reset() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.records, w.bytes, w.unsynced = 0, 0, 0
	return nil
}

// Close syncs and closes the log file.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// countingReader tracks the byte offset consumed so replay knows where the
// last valid record ended.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
