// Package evolve closes the loop the ROADMAP calls "policy optimization
// driven by decision-trace regret": it treats Lucid's operator-tunable knobs
// (core.Config — the Table 6 / §4.5 surface) as a bounded genome, scores
// candidate genomes on a multi-objective simulation suite (several worlds ×
// chaos levels, reusing the lab world cache and worker pool), and searches
// the knob space with deterministic, seedable strategies. The winner stays
// fully interpretable: it IS a core.Config, and the explain layer reports
// per-knob sensitivity (what each tuned knob buys, measured by reverting it)
// plus the decision-trace regret delta versus the paper defaults — so the
// output is a story about why the tuned schedule is better, not a weight
// blob.
//
// Determinism is the same contract as the rest of the harness: a fitness
// evaluation is a pure function of (genome, suite), per-individual mutation
// streams are derived statelessly from (seed, generation, index) via
// splitmix64 — never from a shared sequential RNG — and results land in
// index-addressed slots, so the same seed and budget produce byte-identical
// best genomes and fitness logs whether the population evaluates serially
// or across N workers, and a search checkpointed mid-flight (internal/snap
// envelopes) resumes into the exact uninterrupted trajectory.
package evolve

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Gene indices into a Genome vector. The order is canonical: String renders
// genes in this order and the sensitivity report walks it.
const (
	GeneTprof   = iota // profiling time limit, seconds (Table 6)
	GeneNprof          // profiling job-scale limit, GPUs
	GeneGSS            // GPU sharing capacity
	GeneMedium         // classifier Medium threshold (§3.5.1)
	GeneTiny           // classifier Tiny threshold
	GeneUpdate         // Update Engine refit period, seconds
	GeneAging          // fairness aging credit, sec/sec waited (§6)
	GeneFastJob        // heterogeneity fast-node steering cut, seconds (§6)
	NumGenes
)

// GeneDef bounds one knob. Bounds are the operator-plausible ranges around
// the paper's Table 6 defaults — wide enough for the search to matter,
// narrow enough that every point in the box is a sane production config
// (and passes core.Config.Validate by construction).
type GeneDef struct {
	Key     string  // spec key, e.g. "tprof"
	Min     float64 // inclusive lower bound
	Max     float64 // inclusive upper bound
	Default float64 // the paper default
	Integer bool    // values are rounded to integers
}

// Genes is the canonical gene table (indexed by the Gene* constants).
var Genes = [NumGenes]GeneDef{
	{Key: "tprof", Min: 30, Max: 900, Default: 200, Integer: true},
	{Key: "nprof", Min: 1, Max: 32, Default: 8, Integer: true},
	{Key: "gss", Min: 1, Max: 4, Default: 2, Integer: true},
	{Key: "medium", Min: 0.5, Max: 1, Default: 0.85},
	{Key: "tiny", Min: 0.5, Max: 1, Default: 0.95},
	{Key: "update", Min: 43200, Max: 2419200, Default: 604800, Integer: true},
	{Key: "aging", Min: 0, Max: 4, Default: 0},
	{Key: "fastjob", Min: 600, Max: 28800, Default: 7200},
}

// Genome is one point in the knob box: a bounded, validated parameter
// vector over core.Config's tunables. Integer genes hold exact integral
// float64 values, so Genome is directly comparable and String/ParseGenomeSpec
// round-trip exactly.
type Genome [NumGenes]float64

// DefaultGenome returns the paper-default point.
func DefaultGenome() Genome {
	var g Genome
	for i, d := range Genes {
		g[i] = d.Default
	}
	return g
}

// Validate reports the first out-of-bounds gene (or ordering violation) as a
// named error, or nil.
func (g Genome) Validate() error {
	for i, d := range Genes {
		v := g[i]
		if math.IsNaN(v) || v < d.Min || v > d.Max {
			return fmt.Errorf("evolve: gene %s=%g outside [%g,%g]", d.Key, v, d.Min, d.Max)
		}
		if d.Integer && v != math.Trunc(v) {
			return fmt.Errorf("evolve: gene %s=%g is not integral", d.Key, v)
		}
	}
	if g[GeneMedium] > g[GeneTiny] {
		return fmt.Errorf("evolve: gene medium=%g > tiny=%g", g[GeneMedium], g[GeneTiny])
	}
	return nil
}

// repair clamps every gene into bounds, rounds integer genes, and restores
// the medium ≤ tiny ordering (by swapping — both values stay in range). The
// search applies it after every mutation/crossover so candidates are valid
// by construction.
func (g Genome) repair() Genome {
	for i, d := range Genes {
		v := g[i]
		if math.IsNaN(v) {
			v = d.Default
		}
		if d.Integer {
			v = math.Round(v)
		}
		if v < d.Min {
			v = d.Min
		}
		if v > d.Max {
			v = d.Max
		}
		g[i] = v
	}
	if g[GeneMedium] > g[GeneTiny] {
		g[GeneMedium], g[GeneTiny] = g[GeneTiny], g[GeneMedium]
	}
	return g
}

// Config maps the genome onto core.Config, leaving the ablation switches at
// their defaults (the search tunes knobs, it does not ablate subsystems).
func (g Genome) Config() core.Config {
	c := core.DefaultConfig()
	c.TprofSec = int64(g[GeneTprof])
	c.Nprof = int(g[GeneNprof])
	c.GSS = int(g[GeneGSS])
	c.Thresholds = workload.Thresholds{Medium: g[GeneMedium], Tiny: g[GeneTiny]}
	c.UpdateIntervalSec = int64(g[GeneUpdate])
	c.FairnessAgingSec = g[GeneAging]
	c.FastJobThresholdSec = g[GeneFastJob]
	return c
}

// String renders the genome in the canonical key=value form ParseGenomeSpec
// accepts, omitting nothing, so ParseGenomeSpec(g.String()) round-trips
// exactly (the same contract as chaos.Spec.String).
func (g Genome) String() string {
	parts := make([]string, NumGenes)
	for i, d := range Genes {
		if d.Integer {
			parts[i] = fmt.Sprintf("%s=%d", d.Key, int64(g[i]))
		} else {
			parts[i] = fmt.Sprintf("%s=%s", d.Key, ftoa(g[i]))
		}
	}
	return strings.Join(parts, ",")
}

func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ParseGenomeSpec parses a comma-separated key=value genome, e.g.
//
//	"tprof=120,gss=3,aging=0.5"
//
// Unset keys keep their paper defaults. The literal "default" (or "") yields
// DefaultGenome. The result is validated against the gene bounds — an
// out-of-range or non-integral value is an error, never silently clamped.
func ParseGenomeSpec(text string) (Genome, error) {
	g := DefaultGenome()
	text = strings.TrimSpace(text)
	if text == "" || text == "default" {
		return g, nil
	}
	byKey := map[string]int{}
	for i, d := range Genes {
		byKey[d.Key] = i
	}
	for _, kv := range strings.Split(text, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Genome{}, fmt.Errorf("evolve: %q is not key=value", kv)
		}
		i, known := byKey[strings.TrimSpace(key)]
		if !known {
			return Genome{}, fmt.Errorf("evolve: unknown gene %q", strings.TrimSpace(key))
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return Genome{}, fmt.Errorf("evolve: bad value for %s: %v", Genes[i].Key, err)
		}
		g[i] = f
	}
	if err := g.Validate(); err != nil {
		return Genome{}, err
	}
	return g, nil
}

// mix64 is the splitmix64 output function (same constants as internal/xrand
// and internal/chaos), used as a stateless hash for stream derivation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rngFor derives the private random stream for individual idx of generation
// gen under the search seed. Streams are independent functions of their
// coordinates — not positions in a shared sequence — so populations can be
// produced and mutated in any order (or in parallel) without changing a
// single draw: the same property internal/chaos relies on for fault
// schedules.
func rngFor(seed uint64, gen, idx int) *xrand.RNG {
	h := mix64(seed + 0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(gen)*0xbf58476d1ce4e5b9)
	h = mix64(h ^ uint64(idx)*0x94d049bb133111eb)
	return xrand.New(h)
}

// randomGenome draws a uniform point in the gene box (used to seed the
// initial population around the default individual).
func randomGenome(rng *xrand.RNG) Genome {
	var g Genome
	for i, d := range Genes {
		g[i] = rng.Range(d.Min, d.Max)
	}
	return g.repair()
}

// mutate perturbs each gene with probability mutProb by a normal step scaled
// to mutScale of its range, then repairs.
func (g Genome) mutate(rng *xrand.RNG, mutProb, mutScale float64) Genome {
	for i, d := range Genes {
		if rng.Float64() < mutProb {
			g[i] += rng.Norm(0, (d.Max-d.Min)*mutScale)
		}
	}
	return g.repair()
}

// crossover mixes two parents gene-wise (uniform crossover), then repairs.
func crossover(rng *xrand.RNG, a, b Genome) Genome {
	var g Genome
	for i := range g {
		if rng.Bool(0.5) {
			g[i] = a[i]
		} else {
			g[i] = b[i]
		}
	}
	return g.repair()
}
