package evolve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/snap"
	"repro/internal/xrand"
)

// The search layer walks the genome box with two deterministic, seedable
// strategies:
//
//   - "evo": a (μ+λ)-style population search — elitism, tournament
//     selection, uniform crossover, Gaussian mutation — whose every random
//     draw comes from a stream derived statelessly from (seed, generation,
//     individual), so breeding order and worker interleaving cannot change
//     the trajectory;
//   - "coord": coordinate descent over one knob at a time (a grid of
//     candidates per gene, keep the best), the cheap interpretable baseline
//     the evolutionary strategy must beat to justify its budget.
//
// Both strategies advance in discrete Steps and serialize their complete
// state into an internal/snap envelope after each one, so a long search
// survives interruption: resuming from a checkpoint replays the exact
// trajectory an uninterrupted run would have taken (byte-identical log and
// best genome — the snapshot/resume test locks this in).

// Strategy names.
const (
	StrategyEvo   = "evo"
	StrategyCoord = "coord"
)

// Spec configures one search: strategy, seed, budget and the fitness suite.
type Spec struct {
	Strategy string
	// Seed keys every random draw of the search.
	Seed uint64
	// Pop is the population size (evo) or the per-gene candidate count
	// (coord).
	Pop int
	// Gens bounds the generations (evo) or full passes over the genes
	// (coord).
	Gens int
	// Budget soft-caps fitness evaluations: the search stops at the first
	// step boundary at or past it (0 = unlimited). Counted per evaluated
	// population slot — a pure function of the trajectory, so budget stops
	// are identical across serial, parallel and resumed runs.
	Budget int
	// Worlds and ChaosMults define the fitness suite (see fitness.go).
	Worlds     []string
	ChaosMults []float64
}

// DefaultSpec is the committed-benchmark search: the full Table 4 world set,
// clean and at the calibrated fault rates, under a compact evolutionary
// budget.
func DefaultSpec() Spec {
	return Spec{
		Strategy:   StrategyEvo,
		Seed:       1,
		Pop:        8,
		Gens:       8,
		Budget:     0,
		Worlds:     []string{"venus", "saturn", "philly"},
		ChaosMults: []float64{0, 1},
	}
}

// Validate reports the first bad field, or nil.
func (s Spec) Validate() error {
	switch {
	case s.Strategy != StrategyEvo && s.Strategy != StrategyCoord:
		return fmt.Errorf("evolve: unknown strategy %q (want %s or %s)", s.Strategy, StrategyEvo, StrategyCoord)
	case s.Pop < 2:
		return fmt.Errorf("evolve: pop %d < 2", s.Pop)
	case s.Gens < 1:
		return fmt.Errorf("evolve: gens %d < 1", s.Gens)
	case s.Budget < 0:
		return fmt.Errorf("evolve: budget %d < 0", s.Budget)
	case len(s.Worlds) == 0:
		return fmt.Errorf("evolve: no worlds")
	case len(s.ChaosMults) == 0:
		return fmt.Errorf("evolve: no chaos levels")
	}
	for _, w := range s.Worlds {
		if _, err := worldSpec(w); err != nil {
			return err
		}
	}
	for _, m := range s.ChaosMults {
		if m < 0 || m != m {
			return fmt.Errorf("evolve: chaos multiplier %g < 0", m)
		}
	}
	return nil
}

// String renders the spec in the canonical key=value form ParseSpec accepts,
// omitting nothing, so ParseSpec(s.String()) round-trips exactly.
func (s Spec) String() string {
	mults := make([]string, len(s.ChaosMults))
	for i, m := range s.ChaosMults {
		mults[i] = ftoa(m)
	}
	return fmt.Sprintf("strategy=%s,seed=%d,pop=%d,gens=%d,budget=%d,worlds=%s,chaos=%s",
		s.Strategy, s.Seed, s.Pop, s.Gens, s.Budget,
		strings.Join(s.Worlds, "+"), strings.Join(mults, "+"))
}

// ParseSpec parses a comma-separated key=value search spec, e.g.
//
//	"strategy=coord,seed=7,pop=5,gens=3,worlds=venus,chaos=0+1"
//
// Unset keys keep their DefaultSpec values; "default" (or "") yields
// DefaultSpec unchanged. List-valued keys use '+' as the separator.
func ParseSpec(text string) (Spec, error) {
	s := DefaultSpec()
	text = strings.TrimSpace(text)
	if text == "" || text == "default" {
		return s, nil
	}
	for _, kv := range strings.Split(text, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("evolve: %q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "strategy":
			s.Strategy = val
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		case "pop":
			s.Pop, err = strconv.Atoi(val)
		case "gens":
			s.Gens, err = strconv.Atoi(val)
		case "budget":
			s.Budget, err = strconv.Atoi(val)
		case "worlds":
			s.Worlds, err = splitWorlds(val)
		case "chaos":
			s.ChaosMults, err = splitMults(val)
		default:
			return Spec{}, fmt.Errorf("evolve: unknown key %q", key)
		}
		if err != nil {
			return Spec{}, fmt.Errorf("evolve: bad value for %s: %v", key, err)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func splitWorlds(val string) ([]string, error) {
	var out []string
	for _, w := range strings.Split(val, "+") {
		w = strings.ToLower(strings.TrimSpace(w))
		if w == "" {
			continue
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty world list")
	}
	return out, nil
}

func splitMults(val string) ([]float64, error) {
	var out []float64
	for _, m := range strings.Split(val, "+") {
		m = strings.TrimSpace(m)
		if m == "" {
			continue
		}
		f, err := strconv.ParseFloat(m, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty chaos list")
	}
	return out, nil
}

// Search is a resumable optimization run. All exported state is part of the
// checkpoint; Step advances one generation (evo) or one gene move (coord).
type Search struct {
	Spec Spec
	ev   *Evaluator

	// Gen is the next generation (evo) or completed-pass counter (coord).
	Gen int
	// Pop/Fits are the evo population; Fits[i] == nil means not yet
	// evaluated (elites carry their fitness across generations).
	Pop  []Genome
	Fits []*Fitness
	// Cur/CurFit/GeneCursor/Improved are the coord cursor state.
	Cur        Genome
	CurFit     *Fitness
	GeneCursor int
	Improved   bool

	Best     Genome
	BestFit  Fitness
	haveBest bool

	// Log is the fitness log: one canonical line per evaluated slot, in
	// (step, slot) order — never completion order.
	Log   []string
	Evals int
	Done  bool
}

// NewSearch initializes a fresh search over an evaluator built for the same
// spec suite.
func NewSearch(spec Spec, ev *Evaluator) *Search {
	s := &Search{Spec: spec, ev: ev}
	switch spec.Strategy {
	case StrategyEvo:
		s.Pop = make([]Genome, spec.Pop)
		s.Fits = make([]*Fitness, spec.Pop)
		// Individual 0 is the paper default — the search must never lose to
		// it — and the rest scatter uniformly over the box, each from its own
		// derived stream.
		s.Pop[0] = DefaultGenome()
		for i := 1; i < spec.Pop; i++ {
			s.Pop[i] = randomGenome(rngFor(spec.Seed, 0, i))
		}
	case StrategyCoord:
		s.Cur = DefaultGenome()
	}
	return s
}

// Step runs one unit of search (a generation or a gene move) and reports
// whether the search is complete.
func (s *Search) Step() (bool, error) {
	if s.Done {
		return true, nil
	}
	if s.Spec.Budget > 0 && s.Evals >= s.Spec.Budget {
		s.Done = true
		return true, nil
	}
	var err error
	switch s.Spec.Strategy {
	case StrategyEvo:
		err = s.stepEvo()
	case StrategyCoord:
		err = s.stepCoord()
	default:
		err = fmt.Errorf("evolve: unknown strategy %q", s.Spec.Strategy)
	}
	if err != nil {
		return false, err
	}
	return s.Done, nil
}

// Run steps the search to completion, writing a checkpoint after every step
// when checkpointPath is non-empty.
func (s *Search) Run(checkpointPath string) error {
	for {
		done, err := s.Step()
		if err != nil {
			return err
		}
		if checkpointPath != "" {
			if err := s.checkpointFile(checkpointPath); err != nil {
				return err
			}
		}
		if done {
			return nil
		}
	}
}

// logLine renders one evaluated slot canonically. %.9g keeps every digit
// that matters while staying stable across platforms (the floats themselves
// are deterministic).
func logLine(step string, idx int, g Genome, f Fitness) string {
	return fmt.Sprintf("%s idx=%d score=%.9g jct=%.9gh queue=%.9gh p999=%.9gh goodput=%.9g%% genome=%s",
		step, idx, f.Score, f.AvgJCTHours, f.AvgQueueHours, f.P999QueueHours, f.GoodputPct, g)
}

// better orders fitnesses with a total, deterministic tiebreak: score, then
// the canonical genome string.
func better(ga Genome, fa Fitness, gb Genome, fb Fitness) bool {
	if fa.Score != fb.Score {
		return fa.Score < fb.Score
	}
	return ga.String() < gb.String()
}

// noteBest folds one evaluated genome into the incumbent.
func (s *Search) noteBest(g Genome, f Fitness) {
	if !s.haveBest || better(g, f, s.Best, s.BestFit) {
		s.Best, s.BestFit, s.haveBest = g, f, true
	}
}

// stepEvo evaluates the current population and breeds the next one.
func (s *Search) stepEvo() error {
	// Evaluate every slot that doesn't carry fitness from the previous
	// generation. Budget counts slots, not cache misses, so accounting is a
	// pure function of the trajectory (resume-exact).
	var need []Genome
	for i, f := range s.Fits {
		if f == nil {
			need = append(need, s.Pop[i])
		}
	}
	fits, err := s.ev.EvaluateAll(need)
	if err != nil {
		return err
	}
	k := 0
	for i := range s.Fits {
		if s.Fits[i] == nil {
			f := fits[k]
			k++
			s.Fits[i] = &f
			s.Evals++
		}
		s.Log = append(s.Log, logLine(fmt.Sprintf("gen=%d", s.Gen), i, s.Pop[i], *s.Fits[i]))
		s.noteBest(s.Pop[i], *s.Fits[i])
	}

	s.Gen++
	if s.Gen >= s.Spec.Gens || (s.Spec.Budget > 0 && s.Evals >= s.Spec.Budget) {
		s.Done = true
		return nil
	}

	// Rank by (score, canonical string) — a total order, so the elite set
	// and tournament outcomes are unambiguous.
	order := make([]int, len(s.Pop))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return better(s.Pop[order[a]], *s.Fits[order[a]], s.Pop[order[b]], *s.Fits[order[b]])
	})

	elite := 2
	if elite > len(s.Pop) {
		elite = len(s.Pop)
	}
	nextPop := make([]Genome, len(s.Pop))
	nextFits := make([]*Fitness, len(s.Pop))
	for i := 0; i < elite; i++ {
		nextPop[i] = s.Pop[order[i]]
		nextFits[i] = s.Fits[order[i]] // carried fitness: elites are not re-scored
	}
	pick := func(rng *xrand.RNG) Genome {
		// Tournament of two over the ranked population: a uniform pair,
		// better rank wins.
		a, b := rng.Intn(len(order)), rng.Intn(len(order))
		if a > b {
			a = b
		}
		return s.Pop[order[a]]
	}
	for i := elite; i < len(s.Pop); i++ {
		rng := rngFor(s.Spec.Seed, s.Gen, i)
		child := crossover(rng, pick(rng), pick(rng)).mutate(rng, 0.5, 0.12)
		nextPop[i] = child
	}
	s.Pop, s.Fits = nextPop, nextFits
	return nil
}

// geneCandidates builds the coord candidate list for one gene: an even grid
// of Pop points across its range plus the current value and the paper
// default, deduplicated in value order, each clamped so only this gene
// moves (the medium/tiny ordering is preserved by clamping, not swapping).
func (s *Search) geneCandidates(gene int) []Genome {
	d := Genes[gene]
	vals := []float64{s.Cur[gene], d.Default}
	steps := s.Spec.Pop
	for k := 0; k < steps; k++ {
		v := d.Min + (d.Max-d.Min)*float64(k)/float64(steps-1)
		vals = append(vals, v)
	}
	var out []Genome
	seen := map[float64]bool{}
	sort.Float64s(vals)
	for _, v := range vals {
		if d.Integer {
			v = float64(int64(v + 0.5))
		}
		// Clamp into the ordering constraint instead of letting repair swap
		// genes: a coord move must change exactly one coordinate.
		if gene == GeneMedium && v > s.Cur[GeneTiny] {
			v = s.Cur[GeneTiny]
		}
		if gene == GeneTiny && v < s.Cur[GeneMedium] {
			v = s.Cur[GeneMedium]
		}
		if v < d.Min {
			v = d.Min
		}
		if v > d.Max {
			v = d.Max
		}
		if seen[v] {
			continue
		}
		seen[v] = true
		g := s.Cur
		g[gene] = v
		out = append(out, g)
	}
	return out
}

// stepCoord evaluates one gene's candidate grid and moves the cursor.
func (s *Search) stepCoord() error {
	if s.CurFit == nil {
		f, err := s.ev.Evaluate(s.Cur)
		if err != nil {
			return err
		}
		s.CurFit = &f
		s.Evals++
		s.Log = append(s.Log, logLine("pass=0 gene=start", 0, s.Cur, f))
		s.noteBest(s.Cur, f)
		return nil
	}

	gene := s.GeneCursor
	cands := s.geneCandidates(gene)
	fits, err := s.ev.EvaluateAll(cands)
	if err != nil {
		return err
	}
	step := fmt.Sprintf("pass=%d gene=%s", s.Gen, Genes[gene].Key)
	bestIdx := -1
	for i, g := range cands {
		s.Evals++
		s.Log = append(s.Log, logLine(step, i, g, fits[i]))
		s.noteBest(g, fits[i])
		if bestIdx < 0 || better(g, fits[i], cands[bestIdx], fits[bestIdx]) {
			bestIdx = i
		}
	}
	// Move only on strict improvement; ties keep the incumbent, so a flat
	// gene never causes drift.
	if fits[bestIdx].Score < s.CurFit.Score {
		s.Cur = cands[bestIdx]
		f := fits[bestIdx]
		s.CurFit = &f
		s.Improved = true
	}

	s.GeneCursor++
	if s.GeneCursor >= NumGenes {
		s.GeneCursor = 0
		s.Gen++
		improved := s.Improved
		s.Improved = false
		if s.Gen >= s.Spec.Gens || !improved {
			s.Done = true
		}
	}
	if s.Spec.Budget > 0 && s.Evals >= s.Spec.Budget {
		s.Done = true
	}
	return nil
}

// --- checkpointing ---

// searchStateKind is the snap envelope kind for search checkpoints.
const searchStateKind = "evolve-search"

// searchState is the serialized form of a Search. Genomes travel as their
// canonical specs (exact float round-trip via strconv 'g' -1); fitness
// floats survive encoding/json exactly, so a resumed search is
// bit-identical to an uninterrupted one.
type searchState struct {
	Spec       string     `json:"spec"`
	Gen        int        `json:"gen"`
	Pop        []string   `json:"pop,omitempty"`
	Fits       []*Fitness `json:"fits,omitempty"`
	Cur        string     `json:"cur,omitempty"`
	CurFit     *Fitness   `json:"cur_fit,omitempty"`
	GeneCursor int        `json:"gene_cursor"`
	Improved   bool       `json:"improved"`
	Best       string     `json:"best,omitempty"`
	BestFit    Fitness    `json:"best_fit"`
	HaveBest   bool       `json:"have_best"`
	Log        []string   `json:"log,omitempty"`
	Evals      int        `json:"evals"`
	Done       bool       `json:"done"`
}

// Checkpoint serializes the complete search state into a snap envelope.
func (s *Search) Checkpoint(w *bytes.Buffer) error {
	st := searchState{
		Spec: s.Spec.String(), Gen: s.Gen, Fits: s.Fits,
		CurFit: s.CurFit, GeneCursor: s.GeneCursor, Improved: s.Improved,
		BestFit: s.BestFit, HaveBest: s.haveBest,
		Log: s.Log, Evals: s.Evals, Done: s.Done,
	}
	for _, g := range s.Pop {
		st.Pop = append(st.Pop, g.String())
	}
	if s.Spec.Strategy == StrategyCoord {
		st.Cur = s.Cur.String()
	}
	if s.haveBest {
		st.Best = s.Best.String()
	}
	payload, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return snap.WriteEnvelope(w, searchStateKind, payload)
}

// checkpointFile writes the checkpoint atomically (tmp + rename), so an
// interrupt mid-write leaves the previous checkpoint intact.
func (s *Search) checkpointFile(path string) error {
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadSearch restores a checkpointed search. The checkpoint's spec must
// match the requested one — resuming a search under different parameters
// would silently change the trajectory.
func LoadSearch(data []byte, spec Spec, ev *Evaluator) (*Search, error) {
	kind, payload, err := snap.ReadEnvelope(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	if kind != searchStateKind {
		return nil, fmt.Errorf("evolve: checkpoint kind %q (want %s)", kind, searchStateKind)
	}
	var st searchState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("evolve: checkpoint payload: %w", err)
	}
	if st.Spec != spec.String() {
		return nil, fmt.Errorf("evolve: checkpoint spec %q does not match %q", st.Spec, spec.String())
	}
	s := &Search{
		Spec: spec, ev: ev, Gen: st.Gen, Fits: st.Fits,
		CurFit: st.CurFit, GeneCursor: st.GeneCursor, Improved: st.Improved,
		BestFit: st.BestFit, haveBest: st.HaveBest,
		Log: st.Log, Evals: st.Evals, Done: st.Done,
	}
	for _, gs := range st.Pop {
		g, err := ParseGenomeSpec(gs)
		if err != nil {
			return nil, fmt.Errorf("evolve: checkpoint population: %w", err)
		}
		s.Pop = append(s.Pop, g)
	}
	if st.Cur != "" {
		if s.Cur, err = ParseGenomeSpec(st.Cur); err != nil {
			return nil, fmt.Errorf("evolve: checkpoint cursor: %w", err)
		}
	}
	if st.Best != "" {
		if s.Best, err = ParseGenomeSpec(st.Best); err != nil {
			return nil, fmt.Errorf("evolve: checkpoint best: %w", err)
		}
	}
	if len(s.Pop) != len(s.Fits) {
		return nil, fmt.Errorf("evolve: checkpoint population/fitness length mismatch (%d vs %d)", len(s.Pop), len(s.Fits))
	}
	return s, nil
}
