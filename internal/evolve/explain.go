package evolve

import (
	"fmt"
	"strings"

	"repro/internal/dtrace"
	"repro/internal/lab"
	"repro/internal/sim"
)

// The explain layer turns a tuned genome into a story: which knobs moved off
// the paper defaults, what each move individually buys (sensitivity — the
// winner re-scored with that one gene reverted), and how the tuned schedule's
// decision quality compares to the default's on the decision trace (regret
// over the recorded placement/packing choices). Interpretability is the
// paper's selling point; the tuner must not erode it.

// KnobReport is one tuned knob's contribution.
type KnobReport struct {
	Key     string  `json:"key"`
	Default float64 `json:"default"`
	Tuned   float64 `json:"tuned"`
	// RevertScore is the winner's fitness with only this gene put back to
	// its paper default (the other tuned knobs kept). RevertScore minus the
	// winner's score is what this knob alone is worth: positive means
	// reverting it hurts, i.e. the knob carries real improvement.
	RevertScore float64 `json:"revert_score"`
	Delta       float64 `json:"delta"`
}

// RegretReport compares decision-trace regret between the paper-default and
// tuned configs on one world.
type RegretReport struct {
	World             string  `json:"world"`
	DefaultRegretMean float64 `json:"default_regret_mean"`
	DefaultRegretMax  float64 `json:"default_regret_max"`
	DefaultRegretN    int64   `json:"default_regret_n"`
	TunedRegretMean   float64 `json:"tuned_regret_mean"`
	TunedRegretMax    float64 `json:"tuned_regret_max"`
	TunedRegretN      int64   `json:"tuned_regret_n"`
}

// Explanation is the full report for a winning genome.
type Explanation struct {
	Genome    string       `json:"genome"`
	Score     float64      `json:"score"`
	Knobs     []KnobReport `json:"knobs,omitempty"`
	Regret    RegretReport `json:"regret"`
	Unchanged []string     `json:"unchanged,omitempty"`
}

// revertGene puts one gene of the winner back to its paper default, clamping
// the medium/tiny partner so the ordering constraint holds without moving a
// second knob past it.
func revertGene(g Genome, i int) Genome {
	g[i] = Genes[i].Default
	if g[GeneMedium] > g[GeneTiny] {
		if i == GeneMedium {
			g[GeneMedium] = g[GeneTiny]
		} else {
			g[GeneTiny] = g[GeneMedium]
		}
	}
	return g
}

// Explain builds the sensitivity and regret report for a winner against the
// evaluator's suite. Sensitivity re-evaluates the winner once per tuned knob
// (cached cells make this cheap when reverts collide with seen genomes); the
// regret comparison replays the first suite world with a decision-trace
// recorder under both configs.
func Explain(best Genome, bestFit Fitness, ev *Evaluator) (*Explanation, error) {
	ex := &Explanation{Genome: best.String(), Score: bestFit.Score}
	def := DefaultGenome()

	for i, d := range Genes {
		if best[i] == def[i] {
			ex.Unchanged = append(ex.Unchanged, d.Key)
			continue
		}
		rf, err := ev.Evaluate(revertGene(best, i))
		if err != nil {
			return nil, err
		}
		ex.Knobs = append(ex.Knobs, KnobReport{
			Key:         d.Key,
			Default:     d.Default,
			Tuned:       best[i],
			RevertScore: rf.Score,
			Delta:       rf.Score - bestFit.Score,
		})
	}

	// Decision-trace regret: default vs tuned on the suite's first world,
	// clean (no chaos), each run with its own recorder.
	w := ev.Worlds()[0]
	run := func(g Genome) (dtrace.Summary, error) {
		rec := dtrace.New()
		opts := lab.LucidOpts(w.Spec)
		opts.Engine = sim.EngineEvent
		opts.DecisionTrace = rec
		sched, err := w.NewLucidTuned(g.Config())
		if err != nil {
			return dtrace.Summary{}, err
		}
		sim.New(w.Eval, sched, opts).Run()
		return rec.Summary(), nil
	}
	ds, err := run(def)
	if err != nil {
		return nil, err
	}
	ts, err := run(best)
	if err != nil {
		return nil, err
	}
	ex.Regret = RegretReport{
		World:             w.Spec.Name,
		DefaultRegretMean: ds.RegretMean, DefaultRegretMax: ds.RegretMax, DefaultRegretN: ds.RegretN,
		TunedRegretMean: ts.RegretMean, TunedRegretMax: ts.RegretMax, TunedRegretN: ts.RegretN,
	}
	return ex, nil
}

// Render formats the explanation as the human report lucidbench prints.
func (ex *Explanation) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Winner: %s\n", ex.Genome)
	fmt.Fprintf(&sb, "Score: %.6g (1.0 = paper-default Lucid; lower is better)\n\n", ex.Score)
	if len(ex.Knobs) > 0 {
		sb.WriteString("Per-knob sensitivity (winner re-scored with each knob reverted to its paper default;\n")
		sb.WriteString("positive delta = reverting hurts, so the tuned value carries real improvement):\n")
		for _, k := range ex.Knobs {
			fmt.Fprintf(&sb, "  %-8s %12g -> %-12g revert-score %.6g  delta %+.6g\n",
				k.Key, k.Default, k.Tuned, k.RevertScore, k.Delta)
		}
		sb.WriteString("\n")
	}
	if len(ex.Unchanged) > 0 {
		fmt.Fprintf(&sb, "Knobs left at paper defaults: %s\n\n", strings.Join(ex.Unchanged, ", "))
	}
	r := ex.Regret
	fmt.Fprintf(&sb, "Decision-trace regret on %s (clean run):\n", r.World)
	fmt.Fprintf(&sb, "  default: mean %.4g  max %.4g  (n=%d)\n", r.DefaultRegretMean, r.DefaultRegretMax, r.DefaultRegretN)
	fmt.Fprintf(&sb, "  tuned:   mean %.4g  max %.4g  (n=%d)\n", r.TunedRegretMean, r.TunedRegretMax, r.TunedRegretN)
	fmt.Fprintf(&sb, "  delta:   mean %+.4g  max %+.4g\n", r.TunedRegretMean-r.DefaultRegretMean, r.TunedRegretMax-r.DefaultRegretMax)
	return sb.String()
}
