package evolve

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/lab"
)

// testScale keeps search tests at the 500-job trace floor: large enough for
// real queueing, small enough that a full search runs in seconds.
const testScale = 0.02

func testSpec(strategy string) Spec {
	s := DefaultSpec()
	s.Strategy = strategy
	s.Seed = 7
	s.Pop = 4
	s.Gens = 2
	s.Worlds = []string{"philly"}
	s.ChaosMults = []float64{0}
	if strategy == StrategyCoord {
		// Coord visits ~pop candidates per gene; a small budget keeps the
		// test short while still crossing several step boundaries.
		s.Budget = 10
	}
	return s
}

func newTestEvaluator(t *testing.T, spec Spec) *Evaluator {
	t.Helper()
	ev, err := NewEvaluator(spec.Worlds, spec.ChaosMults, testScale)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func runSearch(t *testing.T, spec Spec) *Search {
	t.Helper()
	s := NewSearch(spec, newTestEvaluator(t, spec))
	if err := s.Run(""); err != nil {
		t.Fatal(err)
	}
	return s
}

// fingerprint captures everything the determinism contract promises:
// the best genome, its full fitness, and the complete fitness log.
func fingerprint(s *Search) string {
	return s.Best.String() + "\n" + fmt.Sprintf("%v", s.BestFit) + "\n" + strings.Join(s.Log, "\n")
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		DefaultSpec(),
		testSpec(StrategyEvo),
		testSpec(StrategyCoord),
		{Strategy: StrategyCoord, Seed: 18446744073709551615, Pop: 3, Gens: 9,
			Budget: 77, Worlds: []string{"saturn", "venus"}, ChaosMults: []float64{0, 0.5, 16}},
	}
	for _, s := range specs {
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", s.String(), err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip diverged: %q != %q", back.String(), s.String())
		}
	}
	if s, err := ParseSpec(""); err != nil || s.String() != DefaultSpec().String() {
		t.Fatalf("empty spec = %v, %v; want default", s, err)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct{ text, wantSub string }{
		{"strategy=magic", "unknown strategy"},
		{"pop=1", "pop"},
		{"gens=0", "gens"},
		{"budget=-1", "budget"},
		{"worlds=mars", "unknown world"},
		{"chaos=-2", "chaos"},
		{"seed", "not key=value"},
		{"turbo=1", "unknown key"},
		{"seed=abc", "bad value"},
	}
	for _, c := range cases {
		if _, err := ParseSpec(c.text); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSpec(%q) err = %v, want substring %q", c.text, err, c.wantSub)
		}
	}
}

// TestSearchDeterministic: the same seed and budget produce a byte-identical
// best genome and fitness log across independent runs (fresh evaluators —
// the memo cache must be a pure optimization).
func TestSearchDeterministic(t *testing.T) {
	for _, strat := range []string{StrategyEvo, StrategyCoord} {
		t.Run(strat, func(t *testing.T) {
			spec := testSpec(strat)
			a, b := runSearch(t, spec), runSearch(t, spec)
			if fingerprint(a) != fingerprint(b) {
				t.Fatalf("same seed diverged:\n--- run A ---\n%s\n--- run B ---\n%s", fingerprint(a), fingerprint(b))
			}
			if a.Evals != b.Evals {
				t.Fatalf("eval counts diverged: %d vs %d", a.Evals, b.Evals)
			}
		})
	}
	// Different seeds must actually move the search (guards against the RNG
	// being ignored).
	specA, specB := testSpec(StrategyEvo), testSpec(StrategyEvo)
	specB.Seed = 8
	if fingerprint(runSearch(t, specA)) == fingerprint(runSearch(t, specB)) {
		t.Fatal("different seeds produced identical trajectories")
	}
}

// TestSerialVsParallelIdentical: the population fan-out over the lab worker
// pool must not perturb a single bit of the log or winner.
func TestSerialVsParallelIdentical(t *testing.T) {
	defer lab.SetParallelism(0)
	spec := testSpec(StrategyEvo)

	lab.SetParallelism(1)
	serial := runSearch(t, spec)
	lab.SetParallelism(4)
	par := runSearch(t, spec)

	if fingerprint(serial) != fingerprint(par) {
		t.Fatalf("serial vs parallel diverged:\n--- serial ---\n%s\n--- parallel ---\n%s",
			fingerprint(serial), fingerprint(par))
	}
}

// TestSnapshotResume: a search checkpointed mid-flight and resumed (into a
// fresh evaluator — no warm cache) must finish with a byte-identical final
// checkpoint to the uninterrupted run.
func TestSnapshotResume(t *testing.T) {
	for _, strat := range []string{StrategyEvo, StrategyCoord} {
		t.Run(strat, func(t *testing.T) {
			spec := testSpec(strat)

			// Uninterrupted run, capturing the checkpoint after every step.
			full := NewSearch(spec, newTestEvaluator(t, spec))
			var mid []byte
			steps := 0
			for {
				done, err := full.Step()
				if err != nil {
					t.Fatal(err)
				}
				steps++
				if steps == 1 {
					var buf bytes.Buffer
					if err := full.Checkpoint(&buf); err != nil {
						t.Fatal(err)
					}
					mid = buf.Bytes()
				}
				if done {
					break
				}
			}
			if steps < 2 {
				t.Fatalf("search finished in %d step(s); resume not exercised", steps)
			}

			resumed, err := LoadSearch(mid, spec, newTestEvaluator(t, spec))
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.Run(""); err != nil {
				t.Fatal(err)
			}

			var wantBuf, gotBuf bytes.Buffer
			if err := full.Checkpoint(&wantBuf); err != nil {
				t.Fatal(err)
			}
			if err := resumed.Checkpoint(&gotBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
				t.Fatalf("resumed run's final checkpoint diverged from uninterrupted run\nfull:    %s\nresumed: %s",
					fingerprint(full), fingerprint(resumed))
			}
		})
	}
}

func TestLoadSearchRejectsMismatchedSpec(t *testing.T) {
	spec := testSpec(StrategyCoord)
	ev := newTestEvaluator(t, spec)
	s := NewSearch(spec, ev)
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Seed++
	if _, err := LoadSearch(buf.Bytes(), other, ev); err == nil {
		t.Fatal("LoadSearch accepted a checkpoint from a different spec")
	}
}

// sharedEv lazily builds one evaluator for the cheap cache/ordering tests.
var (
	sharedEvOnce sync.Once
	sharedEv     *Evaluator
	sharedEvErr  error
)

func getSharedEv(t *testing.T) *Evaluator {
	t.Helper()
	sharedEvOnce.Do(func() {
		sharedEv, sharedEvErr = NewEvaluator([]string{"philly"}, []float64{0}, testScale)
	})
	if sharedEvErr != nil {
		t.Fatal(sharedEvErr)
	}
	return sharedEv
}

func TestEvaluatorBaselineScoresOne(t *testing.T) {
	ev := getSharedEv(t)
	if got := ev.Baseline().Score; got != 1 {
		t.Fatalf("baseline score = %v, want exactly 1", got)
	}
	f, err := ev.Evaluate(DefaultGenome())
	if err != nil {
		t.Fatal(err)
	}
	if f.Score != 1 {
		t.Fatalf("default genome re-evaluated to %v, want 1", f.Score)
	}
}

func TestEvaluateAllOrderAndDuplicates(t *testing.T) {
	ev := getSharedEv(t)
	g1 := DefaultGenome()
	g2 := g1
	g2[GeneTprof] = 120
	fits, err := ev.EvaluateAll([]Genome{g2, g1, g2, g1})
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 4 {
		t.Fatalf("got %d fitnesses, want 4", len(fits))
	}
	if fits[0].Score != fits[2].Score || fits[1].Score != fits[3].Score {
		t.Fatal("duplicate genomes scored differently")
	}
	if fits[1].Score != 1 {
		t.Fatalf("default genome in batch scored %v, want 1", fits[1].Score)
	}
}
