package evolve

import (
	"fmt"
	"sync"

	"repro/internal/chaos"
	"repro/internal/lab"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The fitness layer scores a genome on a multi-objective simulation suite:
// every (world, chaos intensity) cell runs the genome's Lucid over the
// world's evaluation month and reports JCT, queuing and goodput; the score
// is a weighted sum of those metrics normalized by the paper-default
// genome's results on the identical cells, so 1.0 means "exactly as good as
// paper Lucid" and lower is better. Normalizing per cell keeps the
// objectives commensurable across worlds whose absolute JCTs differ by an
// order of magnitude (Saturn vs Venus).
//
// Evaluations are pure: worlds come from the process-wide cache
// (lab.GetWorld), every run clones its models and jobs, and chaos injectors
// are per-run — so a fitness value is a deterministic function of (genome,
// suite) and the population fan-out over lab's bounded worker pool is
// byte-identical to a serial sweep.

// Objective weights. JCT is the headline Table 4 metric and dominates — a
// winner must actually finish jobs faster, not buy queue wins with JCT
// losses; the queue terms protect the tail (p99.9 pain) and goodput guards
// the chaos cells (wasted GPU-time under faults). The weights are dyadic
// (exact in float64) and sum to 1, so the paper-default baseline scores
// exactly 1.0 — not 1±ulp — and "beats default" is a clean strict
// inequality.
const (
	weightJCT     = 0.75
	weightQueue   = 0.125
	weightTail    = 0.0625
	weightGoodput = 0.0625
)

// CellMetrics is one (world, chaos) cell of a fitness evaluation.
type CellMetrics struct {
	World        string  `json:"world"`
	ChaosMult    float64 `json:"chaos_mult"`
	AvgJCTSec    float64 `json:"avg_jct_sec"`
	AvgQueueSec  float64 `json:"avg_queue_sec"`
	P999QueueSec float64 `json:"p999_queue_sec"`
	GoodputPct   float64 `json:"goodput_pct"`
}

// Fitness is a genome's score plus the per-cell evidence behind it.
type Fitness struct {
	// Score is the weighted normalized objective: 1.0 = paper-default
	// Lucid on the same suite, lower is better.
	Score float64 `json:"score"`
	// Suite-wide means (across cells) in reporting units.
	AvgJCTHours    float64 `json:"avg_jct_hours"`
	AvgQueueHours  float64 `json:"avg_queue_hours"`
	P999QueueHours float64 `json:"p999_queue_hours"`
	GoodputPct     float64 `json:"goodput_pct"`

	Cells []CellMetrics `json:"cells,omitempty"`
}

// worldSpec resolves a suite world name to its generator spec.
func worldSpec(name string) (trace.GenSpec, error) {
	switch name {
	case "venus":
		return trace.Venus(), nil
	case "saturn":
		return trace.Saturn(), nil
	case "philly":
		return trace.Philly(), nil
	}
	return trace.GenSpec{}, fmt.Errorf("evolve: unknown world %q (want venus, saturn or philly)", name)
}

// Evaluator scores genomes against one fixed suite. It memoizes fitness by
// genome — re-scoring an elite or a duplicate child costs nothing — but the
// cache is a pure wall-clock optimization: evaluation is deterministic, so
// hits and misses return identical values.
type Evaluator struct {
	worldNames []string
	worlds     []*lab.World
	mults      []float64
	scale      float64

	baseline []CellMetrics // default genome, aligned with cells()
	baseFit  Fitness

	mu    sync.Mutex
	cache map[Genome]Fitness
}

// NewEvaluator builds (or fetches from the process cache) the suite's worlds
// and scores the paper-default genome to anchor normalization.
func NewEvaluator(worldNames []string, chaosMults []float64, scale float64) (*Evaluator, error) {
	if len(worldNames) == 0 || len(chaosMults) == 0 {
		return nil, fmt.Errorf("evolve: suite needs at least one world and one chaos level")
	}
	specs := make([]trace.GenSpec, len(worldNames))
	for i, name := range worldNames {
		spec, err := worldSpec(name)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	worlds, err := lab.GetWorlds(specs, scale)
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		worldNames: append([]string(nil), worldNames...),
		worlds:     worlds,
		mults:      append([]float64(nil), chaosMults...),
		scale:      scale,
		cache:      map[Genome]Fitness{},
	}
	base, err := e.runSuite(DefaultGenome())
	if err != nil {
		return nil, err
	}
	e.baseline = base
	e.baseFit = e.assemble(base)
	e.cache[DefaultGenome()] = e.baseFit
	return e, nil
}

// Baseline returns the paper-default genome's fitness (Score is 1 by
// construction).
func (e *Evaluator) Baseline() Fitness { return e.baseFit }

// Scale returns the suite's trace scale.
func (e *Evaluator) Scale() float64 { return e.scale }

// Worlds returns the suite's worlds (read-only; shared with the lab cache).
func (e *Evaluator) Worlds() []*lab.World { return e.worlds }

// cellCount is len(worlds) × len(mults); cells are ordered world-major.
func (e *Evaluator) cellCount() int { return len(e.worlds) * len(e.mults) }

// runCell executes one (genome, world, chaos) simulation.
func (e *Evaluator) runCell(g Genome, wi, mi int) (CellMetrics, error) {
	w := e.worlds[wi]
	opts := lab.LucidOpts(w.Spec)
	// The discrete-event engine is bit-identical to the tick engine (the
	// PR 6 parity suite) and materially faster on month-long traces, so
	// fitness evaluation — the search's inner loop — runs on it.
	opts.Engine = sim.EngineEvent
	if m := e.mults[mi]; m > 0 {
		opts.Chaos = chaos.NewInjector(lab.ChaosSweepSpec(m))
	}
	sched, err := w.NewLucidTuned(g.Config())
	if err != nil {
		return CellMetrics{}, err
	}
	res := sim.New(w.Eval, sched, opts).Run()
	return CellMetrics{
		World:        e.worldNames[wi],
		ChaosMult:    e.mults[mi],
		AvgJCTSec:    res.AvgJCTSec,
		AvgQueueSec:  res.AvgQueueSec,
		P999QueueSec: res.P999QueueSec,
		GoodputPct:   res.GoodputPct(),
	}, nil
}

// runSuite executes every cell for one genome, fanning across the lab pool.
func (e *Evaluator) runSuite(g Genome) ([]CellMetrics, error) {
	n := e.cellCount()
	cells := make([]CellMetrics, n)
	errs := make([]error, n)
	lab.ForEachPar(n, func(i int) {
		cells[i], errs[i] = e.runCell(g, i/len(e.mults), i%len(e.mults))
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// ratio compares a candidate metric to the baseline's, lower-is-better. The
// epsilon keeps near-zero baselines (an empty-queue cell at tiny scales)
// from exploding the term.
func ratio(cand, base float64) float64 {
	const eps = 1.0
	return (cand + eps) / (base + eps)
}

// assemble folds per-cell metrics into a Fitness, scoring against the
// baseline cells. Iteration order is fixed (cell index), so the float
// accumulation — and therefore the score — is deterministic.
func (e *Evaluator) assemble(cells []CellMetrics) Fitness {
	f := Fitness{Cells: cells}
	var score float64
	for i, c := range cells {
		var b CellMetrics
		if e.baseline != nil {
			b = e.baseline[i]
		} else {
			b = c // scoring the baseline itself: every ratio is 1
		}
		score += weightJCT*ratio(c.AvgJCTSec, b.AvgJCTSec) +
			weightQueue*ratio(c.AvgQueueSec, b.AvgQueueSec) +
			weightTail*ratio(c.P999QueueSec, b.P999QueueSec) +
			weightGoodput*ratio(b.GoodputPct, c.GoodputPct)
		f.AvgJCTHours += c.AvgJCTSec / 3600
		f.AvgQueueHours += c.AvgQueueSec / 3600
		f.P999QueueHours += c.P999QueueSec / 3600
		f.GoodputPct += c.GoodputPct
	}
	n := float64(len(cells))
	f.Score = score / n
	f.AvgJCTHours /= n
	f.AvgQueueHours /= n
	f.P999QueueHours /= n
	f.GoodputPct /= n
	return f
}

// Evaluate scores one genome (cached).
func (e *Evaluator) Evaluate(g Genome) (Fitness, error) {
	fits, err := e.EvaluateAll([]Genome{g})
	if err != nil {
		return Fitness{}, err
	}
	return fits[0], nil
}

// EvaluateAll scores a batch of genomes, running the unique uncached ones'
// suites concurrently as one flat (genome, cell) grid on the lab pool.
// Results return in input order.
func (e *Evaluator) EvaluateAll(gs []Genome) ([]Fitness, error) {
	// Collect unique uncached genomes in first-occurrence order.
	var todo []Genome
	seen := map[Genome]bool{}
	e.mu.Lock()
	for _, g := range gs {
		if _, hit := e.cache[g]; !hit && !seen[g] {
			seen[g] = true
			todo = append(todo, g)
		}
	}
	e.mu.Unlock()

	if len(todo) > 0 {
		nc := e.cellCount()
		cells := make([]CellMetrics, len(todo)*nc)
		errs := make([]error, len(todo)*nc)
		lab.ForEachPar(len(todo)*nc, func(i int) {
			ci := i % nc
			cells[i], errs[i] = e.runCell(todo[i/nc], ci/len(e.mults), ci%len(e.mults))
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		e.mu.Lock()
		for ti, g := range todo {
			e.cache[g] = e.assemble(cells[ti*nc : (ti+1)*nc])
		}
		e.mu.Unlock()
	}

	out := make([]Fitness, len(gs))
	e.mu.Lock()
	for i, g := range gs {
		out[i] = e.cache[g]
	}
	e.mu.Unlock()
	return out, nil
}
