package evolve

import "testing"

// FuzzParseGenomeSpec hammers the genome spec parser with arbitrary input.
// Properties: ParseGenomeSpec never panics; any genome it accepts validates
// clean (in particular, every gene is inside its declared bounds — the
// parser rejects, never clamps) and survives a String → ParseGenomeSpec
// round trip unchanged (the canonical-form contract checkpoints rely on).
func FuzzParseGenomeSpec(f *testing.F) {
	f.Add("")
	f.Add("default")
	f.Add("tprof=120,gss=3,aging=0.5")
	f.Add("tprof=30,nprof=1,gss=2,medium=0.85,tiny=0.95,update=604800,aging=0,fastjob=7200")
	f.Add("medium=0.5,tiny=1")
	f.Add("medium=0.97,tiny=0.9")
	f.Add("tprof=200.5")
	f.Add("tprof=-1")
	f.Add("update=2419200")
	f.Add("aging=1e300")
	f.Add("fastjob=NaN")
	f.Add(",,,")
	f.Add("tprof==3")
	f.Add("tprof=1,tprof=900")
	f.Fuzz(func(t *testing.T, text string) {
		g, err := ParseGenomeSpec(text)
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("ParseGenomeSpec(%q) accepted an invalid genome: %v", text, verr)
		}
		for i, d := range Genes {
			if g[i] < d.Min || g[i] > d.Max {
				t.Fatalf("ParseGenomeSpec(%q): gene %s=%g escaped [%g,%g]", text, d.Key, g[i], d.Min, d.Max)
			}
		}
		again, err := ParseGenomeSpec(g.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", g.String(), err)
		}
		if again != g {
			t.Fatalf("round trip diverged: %s != %s (via %q)", again, g, g.String())
		}
	})
}
