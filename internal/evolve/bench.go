package evolve

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"
)

// The -exp evolve benchmark: run a search to completion, explain the winner,
// and verify the tuned config head-to-head against paper-default Lucid on the
// suite. Results are emitted both as a text report and as BENCH_evolve.json
// for CI artifact archiving; the CI smoke gate greps the JSON for
// `"tuned_no_worse": true` — a tuned config that loses to the defaults it
// started from fails the build.

// BenchFile is where Bench writes its JSON artifact.
const BenchFile = "BENCH_evolve.json"

// EvolveBench is the full benchmark result (the BENCH_evolve.json schema).
type EvolveBench struct {
	Spec        string  `json:"spec"`
	Scale       float64 `json:"scale"`
	GeneratedAt string  `json:"generated_at"`
	Evals       int     `json:"evals"`
	WallSec     float64 `json:"wall_sec"`

	// Default is paper-default Lucid on the suite (Score 1 by construction);
	// Tuned is the search winner on the identical cells.
	Default Fitness `json:"default"`
	Tuned   Fitness `json:"tuned"`

	BestGenome string `json:"best_genome"`
	// TunedBeatsDefault is the headline claim: strictly better composite
	// score AND strictly better suite avg JCT (the Table 4 metric) than the
	// paper defaults. TunedNoWorse is the CI gate: at least a score tie (the
	// default genome is in the initial population, so anything worse means
	// the search is broken).
	TunedBeatsDefault bool `json:"tuned_beats_default"`
	TunedNoWorse      bool `json:"tuned_no_worse"`

	Explanation *Explanation `json:"explanation,omitempty"`
	Log         []string     `json:"log,omitempty"`
}

// Bench runs the full closed loop for a search spec: evaluate, search,
// explain, verify, archive. checkpointPath, when non-empty, receives a snap
// envelope after every search step (and is resumed from if it already holds
// a matching checkpoint).
func Bench(specText string, scale float64, checkpointPath string) (string, error) {
	spec, err := ParseSpec(specText)
	if err != nil {
		return "", err
	}
	t0 := time.Now()
	ev, err := NewEvaluator(spec.Worlds, spec.ChaosMults, scale)
	if err != nil {
		return "", err
	}

	var s *Search
	if checkpointPath != "" {
		if data, rerr := os.ReadFile(checkpointPath); rerr == nil {
			if s, err = LoadSearch(data, spec, ev); err != nil {
				return "", fmt.Errorf("evolve: resume %s: %w", checkpointPath, err)
			}
		}
	}
	if s == nil {
		s = NewSearch(spec, ev)
	}
	if err := s.Run(checkpointPath); err != nil {
		return "", err
	}

	ex, err := Explain(s.Best, s.BestFit, ev)
	if err != nil {
		return "", err
	}

	bench := &EvolveBench{
		Spec:              spec.String(),
		Scale:             scale,
		GeneratedAt:       time.Now().UTC().Format(time.RFC3339),
		Evals:             s.Evals,
		WallSec:           time.Since(t0).Seconds(),
		Default:           ev.Baseline(),
		Tuned:             s.BestFit,
		BestGenome:        s.Best.String(),
		TunedBeatsDefault: s.BestFit.Score < ev.Baseline().Score && s.BestFit.AvgJCTHours < ev.Baseline().AvgJCTHours,
		TunedNoWorse:      s.BestFit.Score <= ev.Baseline().Score,
		Explanation:       ex,
		Log:               s.Log,
	}
	raw, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(BenchFile, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return renderEvolveBench(bench), nil
}

func renderEvolveBench(b *EvolveBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Evolve: closed-loop knob tuning against the simulator\n")
	fmt.Fprintf(&sb, "spec: %s  scale: %g  evals: %d  wall: %.1fs\n\n", b.Spec, b.Scale, b.Evals, b.WallSec)

	fmt.Fprintf(&sb, "%-10s %10s %12s %14s %14s %10s\n", "config", "score", "avgJCT(h)", "avgQueue(h)", "p999Queue(h)", "goodput%")
	row := func(name string, f Fitness) {
		fmt.Fprintf(&sb, "%-10s %10.5f %12.3f %14.3f %14.3f %10.2f\n",
			name, f.Score, f.AvgJCTHours, f.AvgQueueHours, f.P999QueueHours, f.GoodputPct)
	}
	row("default", b.Default)
	row("tuned", b.Tuned)
	sb.WriteString("\nper-cell (world × chaos-mult):\n")
	fmt.Fprintf(&sb, "  %-8s %6s %14s %14s %16s %16s\n", "world", "chaos", "def JCT(h)", "tuned JCT(h)", "def queue(h)", "tuned queue(h)")
	for i, dc := range b.Default.Cells {
		tc := b.Tuned.Cells[i]
		fmt.Fprintf(&sb, "  %-8s %6g %14.3f %14.3f %16.3f %16.3f\n",
			dc.World, dc.ChaosMult, dc.AvgJCTSec/3600, tc.AvgJCTSec/3600, dc.AvgQueueSec/3600, tc.AvgQueueSec/3600)
	}
	sb.WriteString("\n")
	switch {
	case b.TunedBeatsDefault:
		fmt.Fprintf(&sb, "verdict: tuned beats default (score %.5f < 1, avg JCT %.3fh < %.3fh)\n\n",
			b.Tuned.Score, b.Tuned.AvgJCTHours, b.Default.AvgJCTHours)
	case b.TunedNoWorse && b.Tuned.Score < b.Default.Score:
		fmt.Fprintf(&sb, "verdict: tuned wins on composite score (%.5f < 1) but not on avg JCT (%.3fh vs %.3fh)\n\n",
			b.Tuned.Score, b.Tuned.AvgJCTHours, b.Default.AvgJCTHours)
	case b.TunedNoWorse:
		sb.WriteString("verdict: tuned ties default (explicit tie — search found nothing better)\n\n")
	default:
		sb.WriteString("verdict: TUNED LOST TO DEFAULT — search regression\n\n")
	}
	if b.Explanation != nil {
		sb.WriteString(b.Explanation.Render())
	}
	fmt.Fprintf(&sb, "\nartifact: %s\n", BenchFile)
	return sb.String()
}
