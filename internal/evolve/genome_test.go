package evolve

import (
	"strings"
	"testing"
)

func TestDefaultGenomeValid(t *testing.T) {
	g := DefaultGenome()
	if err := g.Validate(); err != nil {
		t.Fatalf("default genome invalid: %v", err)
	}
	for i, d := range Genes {
		if g[i] != d.Default {
			t.Fatalf("gene %s: default %g != table %g", d.Key, g[i], d.Default)
		}
	}
}

func TestGenomeStringRoundTrip(t *testing.T) {
	// The default, every single-gene extreme, and random points must all
	// survive String → ParseGenomeSpec unchanged.
	cases := []Genome{DefaultGenome()}
	for i := range Genes {
		lo, hi := DefaultGenome(), DefaultGenome()
		lo[i], hi[i] = Genes[i].Min, Genes[i].Max
		cases = append(cases, lo.repair(), hi.repair())
	}
	for k := 0; k < 50; k++ {
		cases = append(cases, randomGenome(rngFor(99, k, 0)))
	}
	for _, g := range cases {
		if err := g.Validate(); err != nil {
			t.Fatalf("case genome invalid: %v (%s)", err, g)
		}
		back, err := ParseGenomeSpec(g.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", g.String(), err)
		}
		if back != g {
			t.Fatalf("round trip diverged: %s != %s", back, g)
		}
	}
}

func TestParseGenomeSpecDefaults(t *testing.T) {
	for _, text := range []string{"", "default", " default "} {
		g, err := ParseGenomeSpec(text)
		if err != nil {
			t.Fatalf("ParseGenomeSpec(%q): %v", text, err)
		}
		if g != DefaultGenome() {
			t.Fatalf("ParseGenomeSpec(%q) = %s, want defaults", text, g)
		}
	}
	// Partial specs keep unset genes at their defaults.
	g, err := ParseGenomeSpec("tprof=120,gss=3")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultGenome()
	want[GeneTprof], want[GeneGSS] = 120, 3
	if g != want {
		t.Fatalf("partial spec = %s, want %s", g, want)
	}
}

func TestParseGenomeSpecRejects(t *testing.T) {
	cases := []struct{ text, wantSub string }{
		{"bogus=1", "unknown gene"},
		{"tprof", "not key=value"},
		{"tprof=abc", "bad value"},
		{"tprof=10", "outside"},            // below min — never clamped
		{"tprof=1e6", "outside"},           // above max
		{"tprof=200.5", "integral"},        // integer gene
		{"medium=0.97,tiny=0.9", "medium"}, // ordering violation
		{"aging=NaN", "aging"},
	}
	for _, c := range cases {
		if _, err := ParseGenomeSpec(c.text); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseGenomeSpec(%q) err = %v, want substring %q", c.text, err, c.wantSub)
		}
	}
}

func TestRepairProducesValid(t *testing.T) {
	for k := 0; k < 200; k++ {
		rng := rngFor(7, k, 1)
		var g Genome
		for i := range g {
			g[i] = rng.Range(-1e7, 1e7)
		}
		if err := g.repair().Validate(); err != nil {
			t.Fatalf("repair produced invalid genome: %v", err)
		}
	}
}

func TestMutateCrossoverValid(t *testing.T) {
	a, b := DefaultGenome(), randomGenome(rngFor(3, 0, 1))
	for k := 0; k < 100; k++ {
		rng := rngFor(5, k, 2)
		child := crossover(rng, a, b).mutate(rng, 0.9, 0.5)
		if err := child.Validate(); err != nil {
			t.Fatalf("bred genome invalid: %v", err)
		}
	}
}

func TestRngForStateless(t *testing.T) {
	// Streams are pure functions of their coordinates: re-deriving gives the
	// same draws, and distinct coordinates give distinct streams.
	a1, a2 := rngFor(1, 2, 3), rngFor(1, 2, 3)
	if a1.Uint64() != a2.Uint64() {
		t.Fatal("same coordinates, different streams")
	}
	if rngFor(1, 2, 3).Uint64() == rngFor(1, 2, 4).Uint64() &&
		rngFor(1, 2, 3).Uint64() == rngFor(1, 3, 3).Uint64() {
		t.Fatal("distinct coordinates collide")
	}
}

func TestGenomeConfigValidates(t *testing.T) {
	// Every point in the gene box maps to a config core accepts: bounds were
	// chosen so Validate holds by construction.
	for k := 0; k < 100; k++ {
		g := randomGenome(rngFor(11, k, 0))
		cfg := g.Config().Normalized()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("genome %s maps to invalid config: %v", g, err)
		}
	}
}
