package lab

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// -update-golden rewrites testdata/golden_digests.txt from the current run.
// Use it after an intentional engine or policy change, and inspect the diff:
// a digest change means the decision sequence changed.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_digests.txt from the current run")

const goldenFile = "testdata/golden_digests.txt"

// goldenSpec is a deliberately small Venus-shaped workload: big enough to
// exercise queueing, packing and profiling, small enough that ten full
// simulations (five schedulers × two runs) stay fast.
func goldenSpec() trace.GenSpec {
	spec := trace.Venus()
	spec.Name = "golden"
	spec.Nodes = 8
	spec.NumVCs = 2
	spec.NumJobs = 600
	spec.AvgDuration = 3000
	spec.Days = 3
	return spec
}

// goldenWorld trains the Lucid models once for the whole test binary
// (training is the slow part; the models are read-only during scheduling).
var goldenOnce struct {
	sync.Once
	eval   *trace.Trace
	models *core.Models
	err    error
}

func goldenWorld(t *testing.T) (*trace.Trace, *core.Models) {
	t.Helper()
	goldenOnce.Do(func() {
		spec := goldenSpec()
		g := trace.NewGenerator(spec)
		hist := g.Emit(600)
		goldenOnce.eval = g.Emit(450)
		goldenOnce.models, goldenOnce.err = core.TrainModels(hist, core.DefaultConfig())
	})
	if goldenOnce.err != nil {
		t.Fatal(goldenOnce.err)
	}
	return goldenOnce.eval, goldenOnce.models
}

// goldenSchedulers returns constructors (not instances: schedulers carry
// state across a run, so every run needs a fresh one) for the golden set.
// QSSF uses the oracle estimator so the golden digest depends only on
// engine+policy code, not on GBDT training.
func goldenSchedulers(models *core.Models) []struct {
	name string
	mk   func() (sim.Scheduler, sim.Options)
} {
	spec := goldenSpec()
	return []struct {
		name string
		mk   func() (sim.Scheduler, sim.Options)
	}{
		{"FIFO", func() (sim.Scheduler, sim.Options) { return sched.NewFIFO(), SimOpts() }},
		{"SJF", func() (sim.Scheduler, sim.Options) { return sched.NewSJF(), SimOpts() }},
		{"QSSF", func() (sim.Scheduler, sim.Options) { return sched.NewQSSF(sched.OracleEstimator{}), SimOpts() }},
		{"Tiresias", func() (sim.Scheduler, sim.Options) { return sched.NewTiresias(), SimOpts() }},
		// Clone: each run must start from pristine model state, or the Update
		// Engine's refits and the forecaster's observations leak across runs.
		{"Lucid", func() (sim.Scheduler, sim.Options) {
			return core.New(models.Clone(), core.DefaultConfig()), LucidOpts(spec)
		}},
		// Chaos scenario: FIFO under a heavy deterministic fault schedule.
		// Pins the whole fault→kill→requeue→recover pipeline to a golden
		// digest; a fresh injector per mk() call keeps repeat runs identical.
		{"FIFO-chaos", func() (sim.Scheduler, sim.Options) {
			opts := SimOpts()
			cs := chaos.DefaultSpec()
			cs.NodeFailPerDay = 4
			cs.GPUFailPerDay = 0.5
			cs.JobCrashPerDay = 6
			cs.MaxRetries = 3
			cs.BackoffSec = 120
			opts.Chaos = chaos.NewInjector(cs)
			return sched.NewFIFO(), opts
		}},
	}
}

// runTraced executes one traced, invariant-checked simulation and returns
// the trace digest plus the metric summary line.
func runTraced(t *testing.T, eval *trace.Trace, name string,
	mk func() (sim.Scheduler, sim.Options)) (digest, summary string, events int64) {
	t.Helper()
	s, opts := mk()
	rec := dtrace.New()
	rec.SetKeep(0) // digest + counters only; the events themselves can be large
	opts.DecisionTrace = rec
	opts.Invariants = sim.NewInvariantChecker(true) // panic on any violation
	res := sim.New(eval, s, opts).Run()
	if res.Violations > 0 {
		t.Fatalf("%s: %d invariant violations: %v", name, res.Violations, res.ViolationSamples)
	}
	sum := rec.Summary()
	if sum.Total == 0 {
		t.Fatalf("%s: empty decision trace", name)
	}
	return rec.Digest(), res.Summary(), sum.Total
}

// TestGoldenTraceDeterminism runs every scheduler twice over the same
// trace and demands byte-identical decision traces (same FNV digest over
// the canonical JSONL stream) and identical aggregate metrics, then checks
// the digests against the committed golden file. Any nondeterminism —
// map-iteration ordering, unsorted retirement, unstable float accumulation
// — shows up here as a digest mismatch.
//
// The committed digests assume one architecture (CI's): Go permits FMA
// contraction on some platforms, which can perturb float low bits. The
// run-vs-run half of the test is architecture-independent.
func TestGoldenTraceDeterminism(t *testing.T) {
	eval, models := goldenWorld(t)

	var lines []string
	for _, gs := range goldenSchedulers(models) {
		d1, m1, n1 := runTraced(t, eval, gs.name, gs.mk)
		d2, m2, n2 := runTraced(t, eval, gs.name, gs.mk)
		if d1 != d2 {
			t.Errorf("%s: trace digest differs across identical runs: %s vs %s (%d vs %d events)",
				gs.name, d1, d2, n1, n2)
		}
		if m1 != m2 {
			t.Errorf("%s: metrics differ across identical runs:\n  %s\n  %s", gs.name, m1, m2)
		}
		lines = append(lines, fmt.Sprintf("%-8s %s", gs.name, d1))
		t.Logf("%s: %d events, digest %s", gs.name, n1, d1)
	}
	got := strings.Join(lines, "\n") + "\n"

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenFile)
		return
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("read golden file (run with -update-golden to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden digests changed — the decision sequence is different.\ngot:\n%swant:\n%s"+
			"If intentional, re-run with -update-golden and commit the new file.", got, want)
	}
}
