package lab

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// BinderThresholdStudy reproduces §4.5(2): sweep the (Medium, Tiny)
// classifier thresholds and show average JCT is robust (<3.6 % spread in
// the paper) because Indolent Packing prioritizes non-interfering jobs
// regardless of the exact cut points.
func BinderThresholdStudy(scale float64) (spreadPct float64, report string, err error) {
	w, err := GetWorld(trace.Venus(), scale)
	if err != nil {
		return 0, "", err
	}
	ths := []workload.Thresholds{
		{Medium: 0.75, Tiny: 0.90},
		{Medium: 0.80, Tiny: 0.93},
		{Medium: 0.85, Tiny: 0.95}, // the default
		{Medium: 0.85, Tiny: 0.97},
	}
	type cell struct {
		res *sim.Result
		err error
	}
	cells := collectPar(len(ths), func(i int) cell {
		cfg := core.DefaultConfig()
		cfg.Thresholds = ths[i]
		// The analyzer is threshold-dependent; retrain it for the variant.
		// Clone the shared world's models before swapping it in.
		analyzer, err := core.TrainPackingAnalyzer(ths[i])
		if err != nil {
			return cell{nil, err}
		}
		models := w.Models.Clone()
		models.Analyzer = analyzer
		return cell{w.Run(NamedRun{"Lucid", core.New(models, cfg), LucidOpts(w.Spec)}), nil}
	})
	var tb [][]string
	var lo, hi float64
	for i, th := range ths {
		if cells[i].err != nil {
			return 0, "", cells[i].err
		}
		res := cells[i].res
		jct := res.AvgJCTSec
		if lo == 0 || jct < lo {
			lo = jct
		}
		if jct > hi {
			hi = jct
		}
		tb = append(tb, []string{
			fmt.Sprintf("(%.2f, %.2f)", th.Medium, th.Tiny),
			fmt.Sprintf("%.0f", jct),
			fmt.Sprintf("%.0f", res.AvgQueueSec),
			fmt.Sprintf("%d", res.SharedStarts)})
	}
	if lo > 0 {
		spreadPct = (hi - lo) / lo * 100
	}
	report = "§4.5(2) — binder threshold sensitivity on Venus (paper: <3.6% JCT spread)\n" +
		table([]string{"(Medium, Tiny)", "avg JCT(s)", "avg queue(s)", "packed"}, tb) +
		fmt.Sprintf("JCT spread: %.1f%%\n", spreadPct)
	return spreadPct, report, nil
}

// GuidedTuningStudy reproduces §4.6's System Adjustment: tune the profiler
// on last month's trace via simulation (the System Tuner), then compare the
// tuned configuration against the heuristic default on the next month.
func GuidedTuningStudy(scale float64) (string, error) {
	spec := trace.Venus()
	w, err := GetWorld(spec, scale)
	if err != nil {
		return "", err
	}
	base := core.DefaultConfig()

	// Tune on the *history* month (what an operator has), pick the winner.
	tuneOpts := LucidOpts(w.Spec)
	tuneOpts.Tick = 120 // coarse replays are fine for ranking configs
	cands := core.TuneProfiler(w.History, w.Models, base,
		[]int64{100, 200, 400}, []int{4, 8}, tuneOpts)
	best := cands[0]

	// Evaluate default vs tuned on the evaluation month.
	tuned := base
	tuned.TprofSec = best.TprofSec
	tuned.Nprof = best.Nprof
	res := w.RunMany([]NamedRun{
		{"default", w.NewLucid(base), LucidOpts(w.Spec)},
		{"tuned", w.NewLucid(tuned), LucidOpts(w.Spec)},
	})
	defRes, tunedRes := res[0], res[1]

	return fmt.Sprintf(`§4.6 — guided system tuning (System Tuner over last month's trace)
candidates ranked on history:
%s
default  (Tprof=%d, Nprof=%d): avg queue %.0f s, avg JCT %.0f s
tuned    (Tprof=%d, Nprof=%d): avg queue %.0f s, avg JCT %.0f s
`, core.RenderTuning(cands),
		base.TprofSec, base.Nprof, defRes.AvgQueueSec, defRes.AvgJCTSec,
		best.TprofSec, best.Nprof, tunedRes.AvgQueueSec, tunedRes.AvgJCTSec), nil
}

// MonotonicConstraintStudy reproduces the §4.6 model-troubleshooting claim:
// posing a monotonic constraint on the gpu_num shape function changes the
// estimator's held-out R². (The paper reports +2.6 % R² and −3.9 % queueing
// on Venus.)
func MonotonicConstraintStudy(scale float64) (string, error) {
	spec := trace.Venus()
	n := int(float64(spec.NumJobs) * scale)
	if n < 2000 {
		n = 2000
	}
	g := trace.NewGenerator(spec)
	hist := g.Emit(n)
	next := g.Emit(n)

	plain, err := core.TrainWorkloadEstimatorUnconstrained(hist.Jobs)
	if err != nil {
		return "", err
	}
	mono, err := core.TrainWorkloadEstimator(hist.Jobs)
	if err != nil {
		return "", err
	}
	r2Plain := plain.EvalR2(next.Jobs)
	r2Mono := mono.EvalR2(next.Jobs)
	return fmt.Sprintf(`§4.6 — monotonic constraint on gpu_num (PAV projection)
unconstrained R²: %.3f
constrained   R²: %.3f (paper: +2.6%% from the constraint)
`, r2Plain, r2Mono), nil
}
