package lab

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

// TestFigRSerialParallelIdentical drives the failure sweep serially and on
// the worker pool over one golden world and demands identical reports —
// each grid cell is shared-nothing (fresh scheduler, fresh injector), so
// parallel execution must be invisible. It also asserts the sweep is not
// vacuous: the clean column sees zero faults while nonzero multipliers
// actually kill jobs.
func TestFigRSerialParallelIdentical(t *testing.T) {
	eval, models := goldenWorld(t)
	w := &World{Spec: goldenSpec(), Eval: eval, Models: models,
		Estimator: sched.OracleEstimator{}}
	mults := []float64{0, 8}

	SetParallelism(1)
	serialCells, serialRep := figRGrid(w, mults)
	SetParallelism(len(serialCells))
	parCells, parRep := figRGrid(w, mults)
	SetParallelism(0)

	if serialRep != parRep {
		t.Errorf("FigR report differs serial vs parallel:\n%s\nvs\n%s", serialRep, parRep)
	}
	if !strings.HasPrefix(serialRep, "Fig R:") {
		t.Fatalf("report header missing:\n%s", serialRep)
	}
	kills := 0
	for i := range serialCells {
		s, p := serialCells[i], parCells[i]
		if s.Res.Summary() != p.Res.Summary() {
			t.Errorf("%s ×%g: metrics differ serial vs parallel:\n  %s\n  %s",
				s.Name, s.Mult, s.Res.Summary(), p.Res.Summary())
		}
		if s.Mult == 0 {
			if s.Res.JobKills != 0 || s.Res.NodeFailures != 0 || s.Res.FailedJobs != 0 {
				t.Errorf("%s: clean column saw faults: %s", s.Name, s.Res.Summary())
			}
		} else {
			kills += s.Res.JobKills
		}
	}
	if kills == 0 {
		t.Fatal("failure sweep never injected a fault — the experiment is vacuous")
	}
}
