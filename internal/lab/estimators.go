package lab

import (
	"sync"

	"repro/internal/feat"
	"repro/internal/job"
	"repro/internal/ml/gbdt"
	"repro/internal/trace"
)

// GBDTEstimator is the black-box duration model behind QSSF (Helios pairs
// it with LightGBM) and Horus. It uses the trace features only — no
// profiled resource features, which is part of Lucid's edge (§4.8).
//
// One instance is shared by every scheduler run over a world (QSSF and
// Horus, possibly concurrent under the parallel harness); the prediction
// cache is therefore mutex-guarded. The cached value per job ID is a pure
// function of submit-time features, so concurrent fills are idempotent and
// results stay deterministic regardless of interleaving.
type GBDTEstimator struct {
	feat  *feat.DurationFeaturizer
	model *gbdt.Model

	mu    sync.Mutex
	cache map[int]float64
}

// NewGBDTEstimator trains the model on a history trace.
func NewGBDTEstimator(hist *trace.Trace) (*GBDTEstimator, error) {
	f := feat.NewDurationFeaturizer(hist.Jobs, false)
	m, err := gbdt.Fit(f.Dataset(hist.Jobs), gbdt.LightGBMStyle())
	if err != nil {
		return nil, err
	}
	return &GBDTEstimator{feat: f, model: m, cache: map[int]float64{}}, nil
}

// EstimateSec implements sched.Estimator.
func (e *GBDTEstimator) EstimateSec(j *job.Job) float64 {
	e.mu.Lock()
	if v, ok := e.cache[j.ID]; ok {
		e.mu.Unlock()
		return v
	}
	e.mu.Unlock()
	v := e.model.Predict(e.feat.Features(j))
	if v < 60 {
		v = 60
	}
	e.mu.Lock()
	e.cache[j.ID] = v
	e.mu.Unlock()
	return v
}
