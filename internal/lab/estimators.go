package lab

import (
	"repro/internal/feat"
	"repro/internal/job"
	"repro/internal/ml/gbdt"
	"repro/internal/trace"
)

// GBDTEstimator is the black-box duration model behind QSSF (Helios pairs
// it with LightGBM) and Horus. It uses the trace features only — no
// profiled resource features, which is part of Lucid's edge (§4.8).
type GBDTEstimator struct {
	feat  *feat.DurationFeaturizer
	model *gbdt.Model
	cache map[int]float64
}

// NewGBDTEstimator trains the model on a history trace.
func NewGBDTEstimator(hist *trace.Trace) (*GBDTEstimator, error) {
	f := feat.NewDurationFeaturizer(hist.Jobs, false)
	m, err := gbdt.Fit(f.Dataset(hist.Jobs), gbdt.LightGBMStyle())
	if err != nil {
		return nil, err
	}
	return &GBDTEstimator{feat: f, model: m, cache: map[int]float64{}}, nil
}

// EstimateSec implements sched.Estimator.
func (e *GBDTEstimator) EstimateSec(j *job.Job) float64 {
	if v, ok := e.cache[j.ID]; ok {
		return v
	}
	v := e.model.Predict(e.feat.Features(j))
	if v < 60 {
		v = 60
	}
	e.cache[j.ID] = v
	return v
}
