package lab

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/sched"
	"repro/internal/sim"
)

// readGoldenDigests parses testdata/golden_digests.txt into name → digest.
func readGoldenDigests(t *testing.T) map[string]string {
	t.Helper()
	raw, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("read golden file: %v", err)
	}
	out := map[string]string{}
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 {
			out[fields[0]] = fields[1]
		}
	}
	return out
}

// tracedRun builds one traced, invariant-checked simulation.
func tracedRun(mk func() (sim.Scheduler, sim.Options)) (*sim.Sim, *dtrace.Recorder) {
	s, opts := mk()
	rec := dtrace.New()
	rec.SetKeep(0)
	opts.DecisionTrace = rec
	opts.Invariants = sim.NewInvariantChecker(true)
	return sim.New(goldenOnce.eval, s, opts), rec
}

// TestSnapshotResumeMatchesGolden is the tentpole's bit-exactness proof:
// for FIFO (stateless), Lucid (model caches, binder mode, profiler state)
// and FIFO-chaos (down-node clocks, retry counters), running N ticks,
// snapshotting, restoring into fresh scheduler+recorder instances and
// running to completion must reproduce the *committed* golden trace digest
// — the digest of an uninterrupted run — along with identical aggregate
// metrics. It also locks in that Snapshot is canonical (same state → same
// bytes) and read-only (the snapshotted run continues to the same digest).
func TestSnapshotResumeMatchesGolden(t *testing.T) {
	eval, models := goldenWorld(t)
	_ = eval
	golden := readGoldenDigests(t)
	const cut = 86400 // snapshot one simulated day in: queues, packs and faults in flight

	for _, gs := range goldenSchedulers(models) {
		switch gs.name {
		case "FIFO", "Lucid", "FIFO-chaos":
		default:
			continue
		}
		want, ok := golden[gs.name]
		if !ok {
			t.Fatalf("%s: no golden digest line", gs.name)
		}

		// Uninterrupted reference run (for the metric summary).
		refSim, refRec := tracedRun(gs.mk)
		refRes := refSim.Run()
		if got := refRec.Digest(); got != want {
			t.Fatalf("%s: uninterrupted digest %s does not match golden %s", gs.name, got, want)
		}

		// Prefix run to the cut point, snapshot twice (canonical-bytes check).
		preSim, preRec := tracedRun(gs.mk)
		if done := preSim.RunUntil(cut); done {
			t.Fatalf("%s: run completed before the cut at %d", gs.name, cut)
		}
		var snap1, snap2 bytes.Buffer
		if err := preSim.Snapshot(&snap1); err != nil {
			t.Fatalf("%s: snapshot: %v", gs.name, err)
		}
		if err := preSim.Snapshot(&snap2); err != nil {
			t.Fatalf("%s: second snapshot: %v", gs.name, err)
		}
		if !bytes.Equal(snap1.Bytes(), snap2.Bytes()) {
			t.Errorf("%s: snapshotting the same state twice produced different bytes", gs.name)
		}

		// Restore into a completely fresh scheduler + recorder and finish.
		s2, opts2 := gs.mk()
		rec2 := dtrace.New()
		rec2.SetKeep(0)
		opts2.DecisionTrace = rec2
		opts2.Invariants = sim.NewInvariantChecker(true)
		resumed, err := sim.Resume(goldenOnce.eval, s2, opts2, bytes.NewReader(snap1.Bytes()))
		if err != nil {
			t.Fatalf("%s: resume: %v", gs.name, err)
		}
		res2 := resumed.Run()
		if got := rec2.Digest(); got != want {
			t.Errorf("%s: run %d ticks → snapshot → restore → run produced digest %s, golden is %s",
				gs.name, cut, got, want)
		}
		if res2.Summary() != refRes.Summary() {
			t.Errorf("%s: resumed metrics differ from uninterrupted run:\n  %s\n  %s",
				gs.name, res2.Summary(), refRes.Summary())
		}

		// Snapshot must be read-only: the snapshotted run, continued in
		// place, reaches the identical golden digest.
		preSim.Run()
		if got := preRec.Digest(); got != want {
			t.Errorf("%s: continuing after Snapshot produced digest %s, golden is %s",
				gs.name, got, want)
		}
		t.Logf("%s: prefix+resume digest %s matches golden", gs.name, want)
	}
}

// TestSnapshotResumeWithModelRefit covers the Update Engine path: with a
// short refit interval the estimator is retrained mid-run, so the snapshot
// must embed the refit model bundle. Prefix+resume must still equal the
// uninterrupted run exactly.
func TestSnapshotResumeWithModelRefit(t *testing.T) {
	_, models := goldenWorld(t)
	spec := goldenSpec()
	mk := func() (sim.Scheduler, sim.Options) {
		cfg := core.DefaultConfig()
		cfg.UpdateIntervalSec = 43200 // 12 h: several refits inside the 3-day trace
		return core.New(models.Clone(), cfg), LucidOpts(spec)
	}

	refSim, refRec := tracedRun(mk)
	refRes := refSim.Run()

	preLucid, preOpts := mk()
	preRec := dtrace.New()
	preRec.SetKeep(0)
	preOpts.DecisionTrace = preRec
	preOpts.Invariants = sim.NewInvariantChecker(true)
	preSim := sim.New(goldenOnce.eval, preLucid, preOpts)
	const cut = 2 * 86400 // past at least one refit with ≥200 finished jobs
	if done := preSim.RunUntil(cut); done {
		t.Fatalf("run completed before the cut at %d", cut)
	}
	if !preLucid.(*core.Lucid).ModelsRefit() {
		t.Fatal("test setup: no Update Engine refit happened before the cut — the bundle path is not exercised")
	}
	var buf bytes.Buffer
	if err := preSim.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	s2, opts2 := mk()
	rec2 := dtrace.New()
	rec2.SetKeep(0)
	opts2.DecisionTrace = rec2
	opts2.Invariants = sim.NewInvariantChecker(true)
	resumed, err := sim.Resume(goldenOnce.eval, s2, opts2, &buf)
	if err != nil {
		t.Fatal(err)
	}
	res2 := resumed.Run()
	if got, want := rec2.Digest(), refRec.Digest(); got != want {
		t.Errorf("resumed digest %s differs from uninterrupted %s", got, want)
	}
	if res2.Summary() != refRes.Summary() {
		t.Errorf("resumed metrics differ:\n  %s\n  %s", res2.Summary(), refRes.Summary())
	}
}

// TestForkWhatIf exercises the time-travel fork: run a FIFO prefix, fork
// the world into SJF mid-flight, and finish both runs. The fork gets fresh
// policy state over the restored world; both must complete cleanly, and the
// original must still match its golden digest.
func TestForkWhatIf(t *testing.T) {
	_, models := goldenWorld(t)
	golden := readGoldenDigests(t)

	base, baseRec := tracedRun(goldenSchedulers(models)[0].mk) // FIFO
	if done := base.RunUntil(86400); done {
		t.Fatal("run completed before the fork point")
	}

	opts := SimOpts()
	rec := dtrace.New()
	rec.SetKeep(0)
	opts.DecisionTrace = rec
	opts.Invariants = sim.NewInvariantChecker(true)
	fork, err := base.Fork(sched.NewSJF(), opts)
	if err != nil {
		t.Fatalf("fork: %v", err)
	}
	forkRes := fork.Run()
	if forkRes.Violations > 0 {
		t.Fatalf("forked SJF run: %d invariant violations: %v", forkRes.Violations, forkRes.ViolationSamples)
	}
	if rec.Summary().Total == 0 {
		t.Fatal("forked run recorded no decisions")
	}

	base.Run()
	if got, want := baseRec.Digest(), golden["FIFO"]; got != want {
		t.Errorf("original run after fork produced digest %s, golden is %s", got, want)
	}
}
