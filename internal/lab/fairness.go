package lab

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// FairnessStudy evaluates the §6 fairness extension: Lucid with priority
// aging versus stock Lucid, reporting Jain's index over per-user slowdowns,
// the worst user's slowdown, and the tail queueing delay. The expected
// trade: aging trims the tail and lifts fairness for a small average-JCT
// cost.
func FairnessStudy(scale float64) (string, error) {
	w, err := GetWorld(trace.Venus(), scale)
	if err != nil {
		return "", err
	}
	cases := []struct {
		name  string
		aging float64
	}{
		{"Lucid (no aging)", 0},
		{"Lucid (aging 0.5)", 0.5},
		{"Lucid (aging 2.0)", 2.0},
	}
	runs := make([]NamedRun, len(cases))
	for i, c := range cases {
		cfg := core.DefaultConfig()
		cfg.FairnessAgingSec = c.aging
		runs[i] = NamedRun{c.name, w.NewLucid(cfg), LucidOpts(w.Spec)}
	}
	results := w.RunMany(runs)
	var tb [][]string
	for i, c := range cases {
		res := results[i]
		_, worst := res.WorstUserSlowdown()
		tb = append(tb, []string{c.name,
			fmt.Sprintf("%.0f", res.AvgJCTSec),
			fmt.Sprintf("%.0f", res.P999QueueSec),
			fmt.Sprintf("%.3f", res.FairnessIndex()),
			fmt.Sprintf("%.1f", worst)})
	}
	return "§6 extension — fairness via priority aging on Venus\n" +
		table([]string{"variant", "avg JCT(s)", "p99.9 queue(s)", "Jain index", "worst-user slowdown"}, tb), nil
}
