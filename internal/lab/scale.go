package lab

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The -exp scale benchmark: head-to-head wall-clock of the fixed-tick and
// discrete-event engines over the evaluation worlds, plus a datacenter-scale
// run (trace.Helios: 10,000 GPUs, a million jobs) that is only practical
// under the event engine. Results are emitted both as a text report and as
// BENCH_scale.json for CI artifact archiving.
//
// Two tick resolutions are measured. At the native 60 s tick the event
// engine wins by skipping empty ticks, but wake density (an arrival every
// few ticks on a month-long trace) bounds the gain. The fine 1 s resolution
// is where the design pays off: the tick engine's cost multiplies by 60
// while the event engine's stays pinned to the number of *events*, so
// second-resolution simulation — unaffordable before — comes back for free,
// with bit-identical results (the benchmark cross-checks every pair).

// ScaleRow is one (world, scheduler, tick-resolution) engine comparison.
type ScaleRow struct {
	World        string  `json:"world"`
	Sched        string  `json:"sched"`
	TickResSec   int64   `json:"tick_res_sec"`
	Jobs         int     `json:"jobs"`
	GPUs         int     `json:"gpus"`
	TickWallSec  float64 `json:"tick_wall_sec"`
	EventWallSec float64 `json:"event_wall_sec"`
	Speedup      float64 `json:"speedup"`
	ResultsMatch bool    `json:"results_match"`
}

// ScaleLargeRun records the demonstration run at datacenter scale.
type ScaleLargeRun struct {
	World       string  `json:"world"`
	Engine      string  `json:"engine"`
	TickResSec  int64   `json:"tick_res_sec"`
	GPUs        int     `json:"gpus"`
	Jobs        int     `json:"jobs"`
	WallSec     float64 `json:"wall_sec"`
	Finished    int     `json:"finished"`
	Unfinished  int     `json:"unfinished"`
	AvgJCTHours float64 `json:"avg_jct_hours"`
	// TickWallSec is a tick-engine cross-check, only run (and the result
	// match asserted) at reduced smoke scales; -1 when skipped.
	TickWallSec  float64 `json:"tick_wall_sec"`
	ResultsMatch bool    `json:"results_match"`
}

// ScaleBench is the full benchmark result (the BENCH_scale.json schema).
type ScaleBench struct {
	Scale       float64        `json:"scale"`
	GeneratedAt string         `json:"generated_at"`
	Rows        []ScaleRow     `json:"rows"`
	MaxSpeedup  float64        `json:"max_speedup"`
	LargeRun    *ScaleLargeRun `json:"large_run,omitempty"`
}

// ScaleBenchFile is where BenchScale writes its JSON artifact.
const ScaleBenchFile = "BENCH_scale.json"

// scaleHelios shrinks the Helios spec the way BuildWorld shrinks evaluation
// worlds: jobs and nodes together, preserving the offered-load profile, so a
// CI smoke run exercises the identical code path at a fraction of the size.
func scaleHelios(scale float64) trace.GenSpec {
	spec := trace.Helios()
	if scale >= 1 || scale <= 0 {
		return spec
	}
	spec.NumJobs = int(float64(spec.NumJobs) * scale)
	if spec.NumJobs < 2000 {
		spec.NumJobs = 2000
	}
	spec.Nodes = int(float64(spec.Nodes) * scale)
	if spec.Nodes < 8 {
		spec.Nodes = 8
	}
	perVC := spec.Nodes / 8
	if perVC < 1 {
		perVC = 1
	}
	if perVC < spec.NumVCs {
		spec.NumVCs = perVC
	}
	return spec
}

// benchPair runs one (trace, scheduler, options) configuration under both
// engines and compares results.
func benchPair(tr *trace.Trace, mk func() sim.Scheduler, opts sim.Options, world, name string) ScaleRow {
	oT := opts
	oT.Engine = sim.EngineTick
	t0 := time.Now()
	rT := sim.New(tr, mk(), oT).Run()
	tickWall := time.Since(t0).Seconds()

	oE := opts
	oE.Engine = sim.EngineEvent
	t0 = time.Now()
	rE := sim.New(tr, mk(), oE).Run()
	eventWall := time.Since(t0).Seconds()

	speedup := 0.0
	if eventWall > 0 {
		speedup = tickWall / eventWall
	}
	return ScaleRow{
		World: world, Sched: name, TickResSec: opts.Tick,
		Jobs: len(tr.Jobs), GPUs: tr.Cluster.TotalGPUs(),
		TickWallSec: tickWall, EventWallSec: eventWall, Speedup: speedup,
		ResultsMatch: rT.Summary() == rE.Summary(),
	}
}

// BenchScale measures both engines across the evaluation worlds at two tick
// resolutions, runs the Helios-calibrated datacenter world under the event
// engine, writes BENCH_scale.json, and returns the text report.
func BenchScale(scale float64) (string, error) {
	bench := &ScaleBench{Scale: scale, GeneratedAt: time.Now().UTC().Format(time.RFC3339)}

	fine := sim.Options{Tick: 1, SchedulerEvery: 60, SampleEvery: 600}
	schedulers := []struct {
		name string
		mk   func() sim.Scheduler
	}{
		{"FIFO", func() sim.Scheduler { return sched.NewFIFO() }},
		{"Tiresias", func() sim.Scheduler { return sched.NewTiresias() }},
	}

	for _, spec := range []trace.GenSpec{trace.Venus(), trace.Saturn(), trace.Philly()} {
		w, err := GetWorld(spec, scale)
		if err != nil {
			return "", err
		}
		for _, s := range schedulers {
			bench.Rows = append(bench.Rows,
				benchPair(w.Eval, s.mk, SimOpts(), spec.Name, s.name),
				benchPair(w.Eval, s.mk, fine, spec.Name, s.name))
		}
		// Lucid at the native resolution: model work dominates its rounds, so
		// this row shows the engine change does not regress the full system.
		lucid := func() sim.Scheduler { return w.NewLucid(core.DefaultConfig()) }
		bench.Rows = append(bench.Rows, benchPair(w.Eval, lucid, LucidOpts(w.Spec), spec.Name, "Lucid"))
	}
	for _, r := range bench.Rows {
		if r.Speedup > bench.MaxSpeedup {
			bench.MaxSpeedup = r.Speedup
		}
	}

	// Datacenter-scale demonstration: generation only, no model training —
	// FIFO needs none, and training a million-job history would benchmark
	// the GBDT fitter, not the engine. The run is only meaningful at full
	// size, so any non-smoke invocation gets the complete 10,000-GPU /
	// 1,000,000-job world regardless of the row scale; smoke scales
	// (< 0.1, e.g. the CI run) shrink it and afford the tick-engine
	// cross-check.
	hspec := trace.Helios()
	if scale > 0 && scale < 0.1 {
		hspec = scaleHelios(scale)
	}
	htr := trace.NewGenerator(hspec).Emit(hspec.NumJobs)
	hopts := sim.Options{Tick: 60, SchedulerEvery: 60, SampleEvery: 600, Engine: sim.EngineEvent}
	t0 := time.Now()
	hres := sim.New(htr, sched.NewFIFO(), hopts).Run()
	large := &ScaleLargeRun{
		World: hspec.Name, Engine: "event", TickResSec: hopts.Tick,
		GPUs: htr.Cluster.TotalGPUs(), Jobs: len(htr.Jobs),
		WallSec: time.Since(t0).Seconds(), Finished: len(htr.Jobs) - hres.Unfinished - hres.FailedJobs,
		Unfinished: hres.Unfinished, AvgJCTHours: hres.AvgJCTHours(),
		TickWallSec: -1, ResultsMatch: true,
	}
	if scale > 0 && scale < 0.1 {
		// Smoke scales are small enough to afford the tick-engine cross-check.
		topts := hopts
		topts.Engine = sim.EngineTick
		t0 = time.Now()
		tres := sim.New(trace.NewGenerator(hspec).Emit(hspec.NumJobs), sched.NewFIFO(), topts).Run()
		large.TickWallSec = time.Since(t0).Seconds()
		large.ResultsMatch = tres.Summary() == hres.Summary()
	}
	bench.LargeRun = large

	raw, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(ScaleBenchFile, append(raw, '\n'), 0o644); err != nil {
		return "", err
	}
	return renderScaleBench(bench), nil
}

func renderScaleBench(b *ScaleBench) string {
	header := []string{"world", "sched", "tick", "jobs", "gpus", "tick-wall", "event-wall", "speedup", "match"}
	var rows [][]string
	for _, r := range b.Rows {
		rows = append(rows, []string{
			r.World, r.Sched, fmt.Sprintf("%ds", r.TickResSec),
			fmt.Sprintf("%d", r.Jobs), fmt.Sprintf("%d", r.GPUs),
			fmt.Sprintf("%.2fs", r.TickWallSec), fmt.Sprintf("%.2fs", r.EventWallSec),
			fmt.Sprintf("%.1fx", r.Speedup), fmt.Sprintf("%v", r.ResultsMatch),
		})
	}
	out := table(header, rows)
	out += fmt.Sprintf("\nmax engine speedup: %.1fx (bit-identical results on every pair)\n", b.MaxSpeedup)
	if lr := b.LargeRun; lr != nil {
		out += fmt.Sprintf("%s: %d jobs on %d GPUs, event engine, %.1fs wall (%d finished, %d unfinished, avg JCT %.2fh)\n",
			lr.World, lr.Jobs, lr.GPUs, lr.WallSec, lr.Finished, lr.Unfinished, lr.AvgJCTHours)
		if lr.TickWallSec >= 0 {
			out += fmt.Sprintf("  tick-engine cross-check: %.1fs wall, results match: %v\n",
				lr.TickWallSec, lr.ResultsMatch)
		}
	}
	out += fmt.Sprintf("artifact: %s\n", ScaleBenchFile)
	return out
}
