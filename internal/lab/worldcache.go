package lab

import (
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// The world cache memoizes BuildWorld process-wide. Building a world —
// emitting two trace months and training the GA²M/GBDT models — dominates
// the wall-clock of every end-to-end experiment, and the suite rebuilds
// identical worlds constantly (tab4, tab5, fig8 and fig9 all want the same
// three; eight studies all want Venus at the same scale). A cached World
// is shared across experiments and across goroutines, which is safe
// because a World is read-only after construction: runs clone the trace's
// jobs (sim.New) and the models (World.NewLucid / Schedulers), and the
// GBDT estimator's internal cache is mutex-guarded.
//
// GenSpec is a flat comparable struct, so (spec, scale) keys directly.
type worldKey struct {
	spec  trace.GenSpec
	scale float64
}

type worldEntry struct {
	once sync.Once
	w    *World
	err  error
}

var (
	worldCache  sync.Map // worldKey → *worldEntry
	worldBuilds atomic.Int64
	worldHits   atomic.Int64
)

// GetWorld returns the memoized world for (spec, scale), building it on
// first use. Concurrent callers for the same key block on one build;
// callers for distinct keys build in parallel. The returned World must be
// treated as immutable — run schedulers against clones only.
func GetWorld(spec trace.GenSpec, scale float64) (*World, error) {
	k := worldKey{spec: spec, scale: scale}
	e, loaded := worldCache.LoadOrStore(k, &worldEntry{})
	ent := e.(*worldEntry)
	if loaded {
		worldHits.Add(1)
	}
	ent.once.Do(func() {
		worldBuilds.Add(1)
		ent.w, ent.err = BuildWorld(spec, scale)
	})
	return ent.w, ent.err
}

// GetWorlds builds (or fetches) one world per spec in parallel, preserving
// input order. The first error (by spec order) wins.
func GetWorlds(specs []trace.GenSpec, scale float64) ([]*World, error) {
	worlds := make([]*World, len(specs))
	errs := make([]error, len(specs))
	parallelEach(len(specs), func(i int) {
		worlds[i], errs[i] = GetWorld(specs[i], scale)
	})
	if err := firstErr(errs); err != nil {
		return nil, err
	}
	return worlds, nil
}

// WorldCacheStats reports lifetime cache traffic: worlds built from
// scratch vs. requests served from the cache.
func WorldCacheStats() (builds, hits int64) {
	return worldBuilds.Load(), worldHits.Load()
}

// ResetWorldCache drops every cached world and memoized Table 4 sweep
// (benchmarks use it to measure cold builds; long-lived processes can use
// it to bound memory).
func ResetWorldCache() {
	worldCache.Range(func(k, _ any) bool {
		worldCache.Delete(k)
		return true
	})
	sweepCache.Range(func(k, _ any) bool {
		sweepCache.Delete(k)
		return true
	})
}
