package lab

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dtrace"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runTracedE is runTraced without the *testing.T: safe to call from worker
// goroutines (t.Fatalf must not be called off the test goroutine).
func runTracedE(eval *trace.Trace, name string,
	mk func() (sim.Scheduler, sim.Options)) (digest, summary string, err error) {
	s, opts := mk()
	rec := dtrace.New()
	rec.SetKeep(0)
	opts.DecisionTrace = rec
	opts.Invariants = sim.NewInvariantChecker(true)
	res := sim.New(eval, s, opts).Run()
	if res.Violations > 0 {
		return "", "", fmt.Errorf("%s: %d invariant violations: %v", name, res.Violations, res.ViolationSamples)
	}
	if rec.Summary().Total == 0 {
		return "", "", fmt.Errorf("%s: empty decision trace", name)
	}
	return rec.Digest(), res.Summary(), nil
}

// TestParallelMatchesSerial is the harness's core equivalence claim: the
// golden scheduler set produces byte-identical decision-trace digests and
// metric summaries whether the runs execute one at a time or all at once
// on the worker pool. Run under -race in CI, it also shakes out data races
// between concurrent simulations (shared models, estimator caches, the
// pair-speed memo table).
func TestParallelMatchesSerial(t *testing.T) {
	eval, models := goldenWorld(t)
	set := goldenSchedulers(models)

	type out struct {
		digest, summary string
		err             error
	}
	sweep := func(workers int) []out {
		SetParallelism(workers)
		defer SetParallelism(0)
		res := make([]out, len(set))
		parallelEach(len(set), func(i int) {
			d, s, err := runTracedE(eval, set[i].name, set[i].mk)
			res[i] = out{d, s, err}
		})
		return res
	}

	serial := sweep(1)
	parallel := sweep(len(set))
	for i, gs := range set {
		if serial[i].err != nil {
			t.Fatalf("serial %s: %v", gs.name, serial[i].err)
		}
		if parallel[i].err != nil {
			t.Fatalf("parallel %s: %v", gs.name, parallel[i].err)
		}
		if serial[i].digest != parallel[i].digest {
			t.Errorf("%s: digest differs serial vs parallel: %s vs %s",
				gs.name, serial[i].digest, parallel[i].digest)
		}
		if serial[i].summary != parallel[i].summary {
			t.Errorf("%s: metrics differ serial vs parallel:\n  %s\n  %s",
				gs.name, serial[i].summary, parallel[i].summary)
		}
	}
}

// TestRunAllSerialParallelIdentical drives the production RunAll path (the
// full six-scheduler set, Horus and GBDT-backed QSSF included) serially and
// in parallel over one world and demands identical metrics.
func TestRunAllSerialParallelIdentical(t *testing.T) {
	eval, models := goldenWorld(t)
	w := &World{Spec: goldenSpec(), Eval: eval, Models: models,
		Estimator: sched.OracleEstimator{}}

	SetParallelism(1)
	serial := w.RunAll()
	SetParallelism(len(SchedulerOrder))
	parallel := w.RunAll()
	SetParallelism(0)

	if len(serial) != len(SchedulerOrder) || len(parallel) != len(SchedulerOrder) {
		t.Fatalf("result sets incomplete: %d and %d of %d",
			len(serial), len(parallel), len(SchedulerOrder))
	}
	for _, name := range SchedulerOrder {
		s, p := serial[name], parallel[name]
		if s == nil || p == nil {
			t.Fatalf("%s: missing result", name)
		}
		if s.Summary() != p.Summary() {
			t.Errorf("%s: metrics differ serial vs parallel:\n  %s\n  %s",
				name, s.Summary(), p.Summary())
		}
	}
}

// TestWorldCacheCoherence checks that GetWorld memoizes (same pointer back,
// hit counted) and that concurrent first requests for one key share a
// single build.
func TestWorldCacheCoherence(t *testing.T) {
	spec := goldenSpec()
	spec.NumJobs = 500 // floor; keeps the build cheap
	ResetWorldCache()

	b0, _ := WorldCacheStats()
	const callers = 4
	worlds := make([]*World, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worlds[i], errs[i] = GetWorld(spec, 0.5)
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if worlds[i] != worlds[0] {
			t.Fatal("GetWorld returned distinct worlds for one key")
		}
	}
	if b1, _ := WorldCacheStats(); b1 != b0+1 {
		t.Fatalf("concurrent GetWorld built %d worlds, want 1", b1-b0)
	}

	again, err := GetWorld(spec, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if again != worlds[0] {
		t.Fatal("repeat GetWorld missed the cache")
	}
	if other, err := GetWorld(spec, 0.7); err != nil {
		t.Fatal(err)
	} else if other == worlds[0] {
		t.Fatal("distinct scale collided in the cache")
	}
	ResetWorldCache()
}
