package lab

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Fig2a reproduces Figure 2a: accumulated GPU utilization of colocated
// jobpairs against average speeds, plus the least-squares fit. Returns the
// fitted curve's value at 100 % (the paper annotates ≈0.92) and a rendered
// series.
func Fig2a() (at100 float64, report string) {
	ms := workload.MeasureAllPairs()
	c0, c1, c2 := workload.FitQuadratic(ms)
	at100 = c0 + c1 + c2

	// Bucket the point cloud for a textual profile of the scatter.
	type bucket struct {
		sum float64
		n   int
	}
	buckets := map[int]*bucket{}
	for _, m := range ms {
		b := int(m.AccumUtil) / 20 * 20
		if buckets[b] == nil {
			buckets[b] = &bucket{}
		}
		buckets[b].sum += m.AvgSpeed
		buckets[b].n++
	}
	var keys []int
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var rows [][]string
	for _, k := range keys {
		b := buckets[k]
		rows = append(rows, []string{
			fmt.Sprintf("%d-%d%%", k, k+20),
			fmt.Sprintf("%d", b.n),
			fmt.Sprintf("%.3f", b.sum/float64(b.n)),
			fmt.Sprintf("%.3f", workload.FittedCurve(float64(k)+10)),
		})
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 2a — pair speed vs accumulated GPU utilization (%d pairs)\n", len(ms))
	fmt.Fprintf(&sb, "fit: speed = %.3f + %.3f·u + %.3f·u²  →  speed(100%%) = %.3f (paper: ≈0.92)\n",
		c0, c1, c2, at100)
	sb.WriteString(table([]string{"accum util", "pairs", "avg speed", "model curve"}, rows))
	return at100, sb.String()
}

// Fig2b reproduces Figure 2b: average packing speed by batch size with and
// without mixed precision. Returns speed[batch][amp] and a report.
func Fig2b() (map[int][2]float64, string) {
	out := map[int][2]float64{}
	for _, batch := range []int{32, 64, 128} {
		for ampIdx, amp := range []bool{false, true} {
			var sum float64
			var n int
			for _, a := range workload.AllConfigs() {
				// Restrict both pools to AMP-capable models so the AMP=0
				// column is not inflated by the AMP-less RL workloads.
				if a.BatchSize != batch || a.AMP != amp || !a.Model.AMPAllowed() {
					continue
				}
				for _, b := range workload.AllConfigs() {
					if b.BatchSize != batch || b.AMP != amp || !b.Model.AMPAllowed() {
						continue
					}
					sa, sb := workload.PairSpeed(a, b)
					sum += (sa + sb) / 2
					n++
				}
			}
			if n > 0 {
				v := out[batch]
				v[ampIdx] = sum / float64(n)
				out[batch] = v
			}
		}
	}
	var rows [][]string
	for _, batch := range []int{32, 64, 128} {
		rows = append(rows, []string{
			fmt.Sprintf("%d", batch),
			fmt.Sprintf("%.3f", out[batch][0]),
			fmt.Sprintf("%.3f", out[batch][1]),
		})
	}
	return out, "Figure 2b — packing speed by batch size and AMP\n" +
		table([]string{"batch", "AMP=0", "AMP=1"}, rows)
}

// Fig3Pair is one row of Figure 3a.
type Fig3Pair struct {
	Partner        string
	SpeedRN, Speed float64 // ResNet-18's speed and the partner's speed
}

// Fig3a reproduces Figure 3a: ResNet-18 (batch 64, AMP off) colocated with
// representative partners.
func Fig3a() ([]Fig3Pair, string) {
	rn18, _ := workload.ConfigByName("ResNet-18", 64, false)
	partners := []struct {
		name  string
		batch int
	}{
		{"PointNet", 64}, {"PPO", 64}, {"LSTM", 64}, {"DCGAN", 64}, {"ResNet-18", 64},
	}
	var out []Fig3Pair
	var rows [][]string
	for _, p := range partners {
		cfg, ok := workload.ConfigByName(p.name, p.batch, false)
		if !ok {
			continue
		}
		sRN, sP := workload.PairSpeed(rn18, cfg)
		out = append(out, Fig3Pair{Partner: p.name, SpeedRN: sRN, Speed: sP})
		rows = append(rows, []string{p.name, fmt.Sprintf("%.2f", sRN), fmt.Sprintf("%.2f", sP)})
	}
	return out, "Figure 3a — ResNet-18 colocations (batch 64, AMP=0)\n" +
		table([]string{"partner", "ResNet-18 speed", "partner speed"}, rows)
}

// Fig3b reproduces Figure 3b: identical jobs packed at 1/2/4/8 GPUs keep
// scale-independent packing behaviour (per-GPU batch held constant).
func Fig3b() (map[string][4]float64, string) {
	heavy, _ := workload.ConfigByName("ResNet-50", 64, false)
	light, _ := workload.ConfigByName("EfficientNet", 64, false)
	out := map[string][4]float64{}
	var rows [][]string
	for _, c := range []struct {
		name string
		cfg  workload.Config
	}{{"ImageNet(ResNet-50)", heavy}, {"CIFAR-10(EfficientNet)", light}} {
		var speeds [4]float64
		for i := range speeds {
			// The interference model is per-GPU: with equal per-GPU batch the
			// pair speed is scale-invariant by construction, matching the
			// paper's single-node observation.
			sa, _ := workload.PairSpeed(c.cfg, c.cfg)
			speeds[i] = sa
		}
		out[c.name] = speeds
		rows = append(rows, []string{c.name,
			fmt.Sprintf("%.2f", speeds[0]), fmt.Sprintf("%.2f", speeds[1]),
			fmt.Sprintf("%.2f", speeds[2]), fmt.Sprintf("%.2f", speeds[3])})
	}
	return out, "Figure 3b — same-job packing across GPU scales (1/2/4/8)\n" +
		table([]string{"workload", "1 GPU", "2 GPU", "4 GPU", "8 GPU"}, rows)
}

// Fig5Stats summarizes the Indolent Packing decision quality (Figure 5).
type Fig5Stats struct {
	TotalPairs            int
	PackablePairs         int     // GSS sum ≤ 2, hard rules pass
	PackableInterferFree  float64 // fraction of packable pairs ≥ 0.85 speed
	OpportunitiesCaptured float64 // packable / all interference-free pairs
}

// Fig5 reproduces Figure 5: classify every Table 1 jobpair with the Packing
// Analyze Model and the GSS rule, then score the decisions against the
// measured speeds. The paper reports 98.1 % of packable pairs interference-
// free and 87.0 % of opportunities captured.
func Fig5() (Fig5Stats, string, error) {
	analyzer, err := core.TrainPackingAnalyzer(workload.DefaultThresholds)
	if err != nil {
		return Fig5Stats{}, "", err
	}
	var st Fig5Stats
	var interFree, packableAndFree int
	for _, m := range workload.MeasureAllPairs() {
		st.TotalPairs++
		sa := analyzer.Score(m.A.Profile())
		sb := analyzer.Score(m.B.Profile())
		packable := int(sa)+int(sb) <= 2 && !m.WouldOOM
		if m.InterferenceFree {
			interFree++
		}
		if packable {
			st.PackablePairs++
			if m.InterferenceFree {
				packableAndFree++
			}
		}
	}
	if st.PackablePairs > 0 {
		st.PackableInterferFree = float64(packableAndFree) / float64(st.PackablePairs)
	}
	if interFree > 0 {
		st.OpportunitiesCaptured = float64(packableAndFree) / float64(interFree)
	}
	report := fmt.Sprintf(`Figure 5 — Indolent Packing decisions over %d jobpairs
packable pairs (GSS ≤ 2, no OOM): %d
interference-free among packable:  %.1f%% (paper: 98.1%%)
packing opportunities captured:    %.1f%% (paper: 87.0%%)
`, st.TotalPairs, st.PackablePairs, st.PackableInterferFree*100, st.OpportunitiesCaptured*100)
	return st, report, nil
}

// Fig6 reproduces Figure 6: the learned Packing Analyze Model and its
// feature importances.
func Fig6() (string, error) {
	a, err := core.TrainPackingAnalyzer(workload.DefaultThresholds)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 6 — Packing Analyze Model\n\n")
	sb.WriteString(a.Render())
	sb.WriteString("\nGini feature importances:\n")
	imp := a.FeatureImportances()
	for i, name := range a.FeatureNames() {
		fmt.Fprintf(&sb, "  %-36s %.3f\n", name, imp[i])
	}
	fmt.Fprintf(&sb, "\nclassification accuracy: %.1f%% (paper: 94.1%%)\n", a.Accuracy()*100)
	return sb.String(), nil
}

// Fig14b reproduces Figure 14b: EfficientNet validation accuracy with and
// without Pollux-style adaptive training.
func Fig14b(seed uint64) (bestLucid, bestPollux float64, report string) {
	rngA, rngB := xrand.New(seed), xrand.New(seed)
	plain := workload.EfficientNetCurve.Generate(200, false, 1, rngA)
	adaptive := workload.EfficientNetCurve.Generate(200, true, 4, rngB)
	bestLucid = workload.Best(plain)
	bestPollux = workload.Best(adaptive)
	report = fmt.Sprintf(`Figure 14b — EfficientNet validation accuracy over 200 epochs
Lucid  (no adaptation): best %.2f%% (paper: 89.84%%)
Pollux (adaptive batch): best %.2f%% (paper: 87.63%%)
degradation: %.2f points (paper: >2)
`, bestLucid, bestPollux, bestLucid-bestPollux)
	return bestLucid, bestPollux, report
}
