package lab

import (
	"fmt"
	"time"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// WarmStartStudy measures what the snapshot/fork machinery buys a what-if
// sweep. The question an operator asks mid-month is "if I switched policy
// right now, what would the rest of the month look like?" for each candidate
// policy. Answering it cold re-simulates the shared history once per
// candidate; answering it warm simulates the history once, then forks the
// world in memory for every candidate.
//
// Both paths run the identical (prefix, fork, suffix) computation per
// candidate — Fork restores from a canonical snapshot either way — so the
// study also asserts the outcomes match candidate by candidate, making it a
// correctness check that happens to carry a stopwatch.
//
// Lucid is not a candidate here: the FIFO base world has no profiling
// partition, and a fork keeps the world's cluster shape (resuming into
// profiler-bearing options is rejected).
func WarmStartStudy(scale float64) (string, error) {
	w, err := GetWorld(trace.Venus(), scale)
	if err != nil {
		return "", err
	}
	forkAt := int64(w.Spec.Days) * 86400 / 2 // mid-month decision point

	candidates := func() []NamedRun {
		var out []NamedRun
		for _, nr := range w.Schedulers() {
			if nr.Name == "Lucid" {
				continue
			}
			out = append(out, nr)
		}
		return out
	}

	newBase := func() *sim.Sim { return sim.New(w.Eval, sched.NewFIFO(), SimOpts()) }
	prefix := func() (*sim.Sim, error) {
		base := newBase()
		if done := base.RunUntil(forkAt); done {
			return nil, fmt.Errorf("warmstart: FIFO prefix finished before t=%d; use a larger scale", forkAt)
		}
		return base, nil
	}

	// Cold: every candidate pays for its own prefix simulation.
	coldT0 := time.Now()
	coldRes := map[string]string{}
	for _, nr := range candidates() {
		base, err := prefix()
		if err != nil {
			return "", err
		}
		fk, err := base.Fork(nr.Sched, nr.Opts)
		if err != nil {
			return "", fmt.Errorf("warmstart: cold fork into %s: %w", nr.Name, err)
		}
		coldRes[nr.Name] = fk.Run().Summary()
	}
	coldWall := time.Since(coldT0)

	// Warm: one prefix, then an in-memory fork per candidate.
	warmT0 := time.Now()
	base, err := prefix()
	if err != nil {
		return "", err
	}
	warmRes := map[string]string{}
	var names []string
	for _, nr := range candidates() {
		fk, err := base.Fork(nr.Sched, nr.Opts)
		if err != nil {
			return "", fmt.Errorf("warmstart: warm fork into %s: %w", nr.Name, err)
		}
		warmRes[nr.Name] = fk.Run().Summary()
		names = append(names, nr.Name)
	}
	warmWall := time.Since(warmT0)

	rows := make([][]string, 0, len(names))
	for _, name := range names {
		match := "identical"
		if coldRes[name] != warmRes[name] {
			match = "MISMATCH"
		}
		rows = append(rows, []string{name, match, warmRes[name]})
	}
	out := fmt.Sprintf("Warm-started what-if sweep — Venus, %d candidates forked from a FIFO prefix at t=%dh\n\n",
		len(names), forkAt/3600)
	out += table([]string{"candidate", "cold-vs-warm", "suffix outcome"}, rows)
	out += fmt.Sprintf("\ncold sweep (prefix re-simulated per candidate): %6.2fs wall\n", coldWall.Seconds())
	out += fmt.Sprintf("warm sweep (one prefix, in-memory forks):       %6.2fs wall\n", warmWall.Seconds())
	if warmWall > 0 {
		out += fmt.Sprintf("speedup: %.2fx\n", coldWall.Seconds()/warmWall.Seconds())
	}
	for _, name := range names {
		if coldRes[name] != warmRes[name] {
			return out, fmt.Errorf("warmstart: cold and warm outcomes diverged for %s", name)
		}
	}
	return out, nil
}
