package lab

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// HeterogeneityStudy evaluates the §6 GPU-generation extension: a Venus
// cluster where 30 % of every VC's nodes carry a 1.6× faster generation
// (roughly A100 vs V100), scheduled by Lucid with and without
// generation-aware placement. Awareness should put the long jobs on fast
// silicon and cut average JCT.
func HeterogeneityStudy(scale float64) (string, error) {
	w, err := GetWorld(trace.Venus(), scale)
	if err != nil {
		return "", err
	}
	// Make the evaluation cluster heterogeneous. The shallow World copy is
	// private to this study; the cached world's own Eval is left untouched.
	hetero := *w.Eval
	hetero.Cluster.FastNodesFrac = 0.3
	hetero.Cluster.FastSpeed = 1.6
	heteroWorld := *w
	heteroWorld.Eval = &hetero

	cases := []struct {
		name  string
		aware bool
	}{{"Lucid (generation-blind)", false}, {"Lucid (generation-aware)", true}}
	runs := make([]NamedRun, len(cases))
	for i, c := range cases {
		cfg := core.DefaultConfig()
		cfg.HeterogeneityAware = c.aware
		runs[i] = NamedRun{c.name, heteroWorld.NewLucid(cfg), LucidOpts(w.Spec)}
	}
	results := heteroWorld.RunMany(runs)
	var tb [][]string
	for i, c := range cases {
		res := results[i]
		lj, _, sj, _ := res.ScaleStats()
		tb = append(tb, []string{c.name,
			fmt.Sprintf("%.0f", res.AvgJCTSec),
			fmt.Sprintf("%.0f", res.AvgQueueSec),
			fmt.Sprintf("%.0f", lj),
			fmt.Sprintf("%.0f", sj)})
	}
	return "§6 extension — heterogeneous GPU generations (30% of nodes at 1.6×)\n" +
		table([]string{"variant", "avg JCT(s)", "avg queue(s)", "large-job JCT(s)", "small-job JCT(s)"}, tb), nil
}
