package lab

import (
	"strings"
	"testing"
)

func TestBinderThresholdStudy(t *testing.T) {
	spread, rep, err := BinderThresholdStudy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports <3.6 % spread at full scale; small-scale noise gets
	// a wider band, but the knob must not be load-bearing.
	if spread > 30 {
		t.Fatalf("threshold spread %.1f%% — thresholds should not dominate", spread)
	}
	if !strings.Contains(rep, "Tiny") {
		t.Fatal("report malformed")
	}
}

func TestMonotonicConstraintStudy(t *testing.T) {
	rep, err := MonotonicConstraintStudy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "constrained") {
		t.Fatal("report malformed")
	}
}

func TestFairnessStudy(t *testing.T) {
	rep, err := FairnessStudy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "Jain index") {
		t.Fatal("report malformed")
	}
}

func TestHeterogeneityStudy(t *testing.T) {
	rep, err := HeterogeneityStudy(tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "generation-aware") {
		t.Fatal("report malformed")
	}
}

func TestGuidedTuningStudy(t *testing.T) {
	rep, err := GuidedTuningStudy(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "tuned") {
		t.Fatal("report malformed")
	}
}
