package lab

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Table3 reproduces §4.2: the testbed comparison of FIFO/SJF/Tiresias/Lucid
// on the 100-job static trace (makespan) and the 120-job continuous trace
// (average JCT), under a fine-grained 1 s engine standing in for the
// physical cluster and the coarse 30 s engine used by the large-scale
// simulations — the fidelity check.
type Table3Row struct {
	Scheduler         string
	StaticPhysicalHrs float64
	StaticSimHrs      float64
	ContPhysicalHrs   float64
	ContSimHrs        float64
	MakespanErrPct    float64
	JCTErrPct         float64
}

// Table3 runs the fidelity experiment.
func Table3(seed uint64) ([]Table3Row, string, error) {
	// Models for Lucid, trained on a Venus-like history scaled down.
	spec := trace.Venus()
	spec.NumJobs = 4000
	hist := trace.NewGenerator(spec).Emit(0)
	cfg := core.DefaultConfig()
	// §4.2: "Lucid profiles each job for at most 60 seconds" on the testbed.
	cfg.TprofSec = 60
	models, err := core.TrainModels(hist, cfg)
	if err != nil {
		return nil, "", err
	}

	fine := sim.Options{Tick: 1, SchedulerEvery: 5}
	coarse := sim.Options{Tick: 30, SchedulerEvery: 30}
	fineL, coarseL := fine, coarse
	fineL.ProfilerNodes, coarseL.ProfilerNodes = 1, 1

	mkSched := func(name string) (sim.Scheduler, bool) {
		switch name {
		case "FIFO":
			return sched.NewFIFO(), false
		case "SJF":
			return sched.NewSJF(), false
		case "Tiresias":
			return sched.NewTiresias(), false
		default:
			return core.New(models, cfg), true
		}
	}

	// Makespan of one 100-job replay is a tail statistic dominated by the
	// last straggler, so average each cell over several trace draws.
	const draws = 3

	var rows []Table3Row
	var tb [][]string
	for _, name := range []string{"FIFO", "SJF", "Tiresias", "Lucid"} {
		row := Table3Row{Scheduler: name}
		for d := uint64(0); d < draws; d++ {
			static := trace.StaticTestbed(100, seed+2*d)
			cont := trace.ContinuousTestbed(120, 240, seed+2*d+1)
			for i, engine := range []struct {
				opts, lopts sim.Options
			}{{fine, fineL}, {coarse, coarseL}} {
				s, isLucid := mkSched(name)
				o := engine.opts
				if isLucid {
					o = engine.lopts
				}
				stRes := sim.New(static, s, o).Run()
				s2, isLucid2 := mkSched(name)
				o2 := engine.opts
				if isLucid2 {
					o2 = engine.lopts
				}
				coRes := sim.New(cont, s2, o2).Run()
				if i == 0 {
					row.StaticPhysicalHrs += stRes.MakespanHours() / draws
					row.ContPhysicalHrs += coRes.AvgJCTHours() / draws
				} else {
					row.StaticSimHrs += stRes.MakespanHours() / draws
					row.ContSimHrs += coRes.AvgJCTHours() / draws
				}
			}
		}
		row.MakespanErrPct = errPct(row.StaticSimHrs, row.StaticPhysicalHrs)
		row.JCTErrPct = errPct(row.ContSimHrs, row.ContPhysicalHrs)
		rows = append(rows, row)
		tb = append(tb, []string{name,
			fmt.Sprintf("%.2f", row.StaticPhysicalHrs), fmt.Sprintf("%.2f", row.StaticSimHrs),
			fmt.Sprintf("%.2f", row.ContPhysicalHrs), fmt.Sprintf("%.2f", row.ContSimHrs),
			fmt.Sprintf("%.1f%%", row.MakespanErrPct), fmt.Sprintf("%.1f%%", row.JCTErrPct)})
	}
	report := "Table 3 — physical (1 s engine) vs simulation (30 s engine)\n" +
		table([]string{"scheduler", "static/fine(h)", "static/sim(h)",
			"cont/fine(h)", "cont/sim(h)", "makespan err", "JCT err"}, tb)
	return rows, report, nil
}

func errPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b * 100
	if d < 0 {
		d = -d
	}
	return d
}

// Table4Row is one (cluster, scheduler) cell block of Table 4.
type Table4Row struct {
	Cluster, Scheduler string
	AvgJCTHrs          float64
	AvgQueueHrs        float64
	P999QueueHrs       float64
	UtilPct, MemPct    float64
}

// Table4 runs the end-to-end large-scale evaluation (also yielding the raw
// results for Figures 8 and 9). The returned map holds every Result for
// downstream reuse.
func Table4(specs []trace.GenSpec, scale float64) ([]Table4Row, map[string]map[string]*sim.Result, string, error) {
	var rows []Table4Row
	results := map[string]map[string]*sim.Result{}
	var tb [][]string
	for _, spec := range specs {
		w, err := BuildWorld(spec, scale)
		if err != nil {
			return nil, nil, "", err
		}
		res := w.RunAll()
		results[spec.Name] = res
		for _, name := range SchedulerOrder {
			r := res[name]
			rows = append(rows, Table4Row{
				Cluster: spec.Name, Scheduler: name,
				AvgJCTHrs:    r.AvgJCTHours(),
				AvgQueueHrs:  r.AvgQueueHours(),
				P999QueueHrs: r.P999QueueHours(),
				UtilPct:      r.AvgGPUUtilPct,
				MemPct:       r.AvgGPUMemPct,
			})
			tb = append(tb, []string{spec.Name, name,
				fmt.Sprintf("%.2f", r.AvgJCTHours()),
				fmt.Sprintf("%.2f", r.AvgQueueHours()),
				fmt.Sprintf("%.2f", r.P999QueueHours()),
				fmt.Sprintf("%.1f", r.AvgGPUUtilPct),
				fmt.Sprintf("%d", r.Unfinished)})
		}
	}
	report := "Table 4 — average JCT / queue / P99.9 queue (hours)\n" +
		table([]string{"cluster", "scheduler", "avg JCT", "avg queue", "p99.9 queue", "util%", "unfinished"}, tb)
	return rows, results, report, nil
}

// Fig8 renders JCT CDF checkpoints from Table 4's results.
func Fig8(results map[string]map[string]*sim.Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 8 — JCT CDF checkpoints (seconds at given percentile)\n")
	pcts := []float64{0.25, 0.5, 0.75, 0.9, 0.99}
	for _, cluster := range sortedKeys(results) {
		fmt.Fprintf(&sb, "\n[%s]\n", cluster)
		var tb [][]string
		for _, name := range SchedulerOrder {
			r := results[cluster][name]
			if r == nil {
				continue
			}
			jcts := r.JCTs()
			row := []string{name}
			for _, p := range pcts {
				row = append(row, fmt.Sprintf("%.0f", sim.Percentile(jcts, p)))
			}
			tb = append(tb, row)
		}
		sb.WriteString(table([]string{"scheduler", "p25", "p50", "p75", "p90", "p99"}, tb))
	}
	return sb.String()
}

// Fig9 renders per-VC average queuing delay (top-8 VCs by delay, plus the
// whole cluster, as the paper plots).
func Fig9(results map[string]map[string]*sim.Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 9 — average queuing delay per VC (seconds)\n")
	for _, cluster := range sortedKeys(results) {
		byName := results[cluster]
		// Rank VCs by FIFO delay (the paper picks the 8 busiest).
		ref := byName["FIFO"]
		if ref == nil {
			continue
		}
		type vcd struct {
			vc string
			d  float64
		}
		var vcs []vcd
		for vc, d := range ref.PerVCQueueSec {
			vcs = append(vcs, vcd{vc, d})
		}
		sort.Slice(vcs, func(i, j int) bool { return vcs[i].d > vcs[j].d })
		if len(vcs) > 8 {
			vcs = vcs[:8]
		}
		fmt.Fprintf(&sb, "\n[%s]\n", cluster)
		header := []string{"scheduler"}
		for _, v := range vcs {
			header = append(header, v.vc)
		}
		header = append(header, "all")
		var tb [][]string
		for _, name := range SchedulerOrder {
			r := byName[name]
			if r == nil {
				continue
			}
			row := []string{name}
			for _, v := range vcs {
				row = append(row, fmt.Sprintf("%.0f", r.PerVCQueueSec[v.vc]))
			}
			row = append(row, fmt.Sprintf("%.0f", r.AvgQueueSec))
			tb = append(tb, row)
		}
		sb.WriteString(table(header, tb))
	}
	return sb.String()
}

// Table5 reproduces the large-vs-small job breakdown on Venus.
func Table5(results map[string]*sim.Result) string {
	var tb [][]string
	for _, name := range []string{"FIFO", "Tiresias", "Lucid"} {
		r := results[name]
		if r == nil {
			continue
		}
		lj, lq, sj, sq := r.ScaleStats()
		tb = append(tb, []string{name,
			fmt.Sprintf("%.2f", lj/3600), fmt.Sprintf("%.2f", lq/3600),
			fmt.Sprintf("%.2f", sj/3600), fmt.Sprintf("%.2f", sq/3600)})
	}
	return "Table 5 — large (>8 GPU) vs small (≤8 GPU) jobs in Venus (hours)\n" +
		table([]string{"scheduler", "large JCT", "large queue", "small JCT", "small queue"}, tb)
}

// Fig12 reproduces the workload-distribution sensitivity: Venus-L/M/H
// traces under Lucid vs Tiresias.
func Fig12(scale float64) (string, error) {
	var tb [][]string
	for _, util := range []trace.UtilLevel{trace.UtilLow, trace.UtilMedium, trace.UtilHigh} {
		spec := trace.Venus()
		spec.Util = util
		w, err := BuildWorld(spec, scale)
		if err != nil {
			return "", err
		}
		cfg := core.DefaultConfig()
		lucid := w.Run(NamedRun{"Lucid", core.New(w.Models, cfg), LucidOpts(spec)})
		tir := w.Run(NamedRun{"Tiresias", sched.NewTiresias(), SimOpts()})
		tb = append(tb, []string{"Venus-" + util.String(),
			fmt.Sprintf("%.2f", lucid.AvgJCTHours()), fmt.Sprintf("%.0f", lucid.AvgQueueSec),
			fmt.Sprintf("%.2f", tir.AvgJCTHours()), fmt.Sprintf("%.0f", tir.AvgQueueSec)})
	}
	return "Figure 12 — sensitivity to workload utilization distribution\n" +
		table([]string{"trace", "Lucid JCT(h)", "Lucid queue(s)", "Tiresias JCT(h)", "Tiresias queue(s)"}, tb), nil
}

// Fig14a reproduces the Pollux comparison under workload intensity scaling.
func Fig14a(intensities []float64, seed uint64) (string, error) {
	spec := trace.Venus()
	spec.NumJobs = 4000
	hist := trace.NewGenerator(spec).Emit(0)
	cfg := core.DefaultConfig()
	models, err := core.TrainModels(hist, cfg)
	if err != nil {
		return "", err
	}
	var tb [][]string
	for _, in := range intensities {
		tr := trace.PolluxTrace(in, seed)
		lopts := sim.Options{Tick: 30, SchedulerEvery: 30, ProfilerNodes: 1}
		opts := sim.Options{Tick: 30, SchedulerEvery: 30}
		lucid := sim.New(tr, core.New(models, cfg), lopts).Run()
		pollux := sim.New(tr, sched.NewPollux(), opts).Run()
		tir := sim.New(tr, sched.NewTiresias(), opts).Run()
		tb = append(tb, []string{fmt.Sprintf("%.1fx", in),
			fmt.Sprintf("%.2f", lucid.AvgJCTHours()),
			fmt.Sprintf("%.2f", pollux.AvgJCTHours()),
			fmt.Sprintf("%.2f", tir.AvgJCTHours())})
	}
	return "Figure 14a — avg JCT (hours) under workload intensity\n" +
		table([]string{"intensity", "Lucid", "Pollux", "Tiresias"}, tb), nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
