package lab

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Table3 reproduces §4.2: the testbed comparison of FIFO/SJF/Tiresias/Lucid
// on the 100-job static trace (makespan) and the 120-job continuous trace
// (average JCT), under a fine-grained 1 s engine standing in for the
// physical cluster and the coarse 30 s engine used by the large-scale
// simulations — the fidelity check.
type Table3Row struct {
	Scheduler         string
	StaticPhysicalHrs float64
	StaticSimHrs      float64
	ContPhysicalHrs   float64
	ContSimHrs        float64
	MakespanErrPct    float64
	JCTErrPct         float64
}

// Table3 runs the fidelity experiment.
func Table3(seed uint64) ([]Table3Row, string, error) {
	// Models for Lucid, trained on a Venus-like history scaled down.
	spec := trace.Venus()
	spec.NumJobs = 4000
	hist := trace.NewGenerator(spec).Emit(0)
	cfg := core.DefaultConfig()
	// §4.2: "Lucid profiles each job for at most 60 seconds" on the testbed.
	cfg.TprofSec = 60
	models, err := core.TrainModels(hist, cfg)
	if err != nil {
		return nil, "", err
	}

	fine := sim.Options{Tick: 1, SchedulerEvery: 5}
	coarse := sim.Options{Tick: 30, SchedulerEvery: 30}
	fineL, coarseL := fine, coarse
	fineL.ProfilerNodes, coarseL.ProfilerNodes = 1, 1

	// mkSched builds a fresh scheduler per cell; Lucid runs clone the models
	// so no Update Engine state leaks between cells (they may run
	// concurrently).
	mkSched := func(name string) (sim.Scheduler, bool) {
		switch name {
		case "FIFO":
			return sched.NewFIFO(), false
		case "SJF":
			return sched.NewSJF(), false
		case "Tiresias":
			return sched.NewTiresias(), false
		default:
			return core.New(models.Clone(), cfg), true
		}
	}

	// Makespan of one 100-job replay is a tail statistic dominated by the
	// last straggler, so average each cell over several trace draws.
	const draws = 3

	// Flatten scheduler × draw × engine into one work list for the pool;
	// every cell regenerates its traces (deterministic per seed), so cells
	// share nothing.
	schedNames := []string{"FIFO", "SJF", "Tiresias", "Lucid"}
	engines := []struct {
		opts, lopts sim.Options
	}{{fine, fineL}, {coarse, coarseL}}
	type t3out struct{ staticHrs, contHrs float64 }
	nCells := len(schedNames) * draws * len(engines)
	cells := collectPar(nCells, func(i int) t3out {
		name := schedNames[i/(draws*len(engines))]
		d := uint64(i / len(engines) % draws)
		engine := engines[i%len(engines)]
		static := trace.StaticTestbed(100, seed+2*d)
		cont := trace.ContinuousTestbed(120, 240, seed+2*d+1)
		s, isLucid := mkSched(name)
		o := engine.opts
		if isLucid {
			o = engine.lopts
		}
		stRes := sim.New(static, s, o).Run()
		s2, isLucid2 := mkSched(name)
		o2 := engine.opts
		if isLucid2 {
			o2 = engine.lopts
		}
		coRes := sim.New(cont, s2, o2).Run()
		return t3out{stRes.MakespanHours(), coRes.AvgJCTHours()}
	})

	var rows []Table3Row
	var tb [][]string
	for si, name := range schedNames {
		row := Table3Row{Scheduler: name}
		for d := 0; d < draws; d++ {
			for ei := range engines {
				c := cells[si*draws*len(engines)+d*len(engines)+ei]
				if ei == 0 {
					row.StaticPhysicalHrs += c.staticHrs / draws
					row.ContPhysicalHrs += c.contHrs / draws
				} else {
					row.StaticSimHrs += c.staticHrs / draws
					row.ContSimHrs += c.contHrs / draws
				}
			}
		}
		row.MakespanErrPct = errPct(row.StaticSimHrs, row.StaticPhysicalHrs)
		row.JCTErrPct = errPct(row.ContSimHrs, row.ContPhysicalHrs)
		rows = append(rows, row)
		tb = append(tb, []string{name,
			fmt.Sprintf("%.2f", row.StaticPhysicalHrs), fmt.Sprintf("%.2f", row.StaticSimHrs),
			fmt.Sprintf("%.2f", row.ContPhysicalHrs), fmt.Sprintf("%.2f", row.ContSimHrs),
			fmt.Sprintf("%.1f%%", row.MakespanErrPct), fmt.Sprintf("%.1f%%", row.JCTErrPct)})
	}
	report := "Table 3 — physical (1 s engine) vs simulation (30 s engine)\n" +
		table([]string{"scheduler", "static/fine(h)", "static/sim(h)",
			"cont/fine(h)", "cont/sim(h)", "makespan err", "JCT err"}, tb)
	return rows, report, nil
}

func errPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b * 100
	if d < 0 {
		d = -d
	}
	return d
}

// Table4Row is one (cluster, scheduler) cell block of Table 4.
type Table4Row struct {
	Cluster, Scheduler string
	AvgJCTHrs          float64
	AvgQueueHrs        float64
	P999QueueHrs       float64
	UtilPct, MemPct    float64
}

// sweepEntry memoizes one full Table 4 sweep. Table 5, Figure 8 and
// Figure 9 are render-only views over the same results, and lucidbench
// `-exp all` requests each of them separately — without the memo the
// dominant end-to-end sweep re-simulates up to four times per suite.
// Results are shared read-only; ResetWorldCache drops this cache too.
type sweepEntry struct {
	once    sync.Once
	rows    []Table4Row
	results map[string]map[string]*sim.Result
	report  string
	err     error
}

var sweepCache sync.Map // "%+v|%g"-formatted (specs, scale) → *sweepEntry

// Table4 runs the end-to-end large-scale evaluation (also yielding the raw
// results for Figures 8 and 9). The returned map holds every Result for
// downstream reuse; treat it as read-only — repeated calls for the same
// (specs, scale) return the memoized sweep.
func Table4(specs []trace.GenSpec, scale float64) ([]Table4Row, map[string]map[string]*sim.Result, string, error) {
	key := fmt.Sprintf("%+v|%g", specs, scale)
	e, _ := sweepCache.LoadOrStore(key, &sweepEntry{})
	ent := e.(*sweepEntry)
	ent.once.Do(func() {
		ent.rows, ent.results, ent.report, ent.err = table4Sweep(specs, scale)
	})
	return ent.rows, ent.results, ent.report, ent.err
}

// table4Sweep does the real work. Worlds come from the process-wide cache
// (GetWorld) and the full cluster × scheduler grid runs as one flat work
// list on the harness pool, so a slow cluster's runs don't serialize
// behind a fast one. Rows are rendered from the assembled results in
// canonical (spec, SchedulerOrder) order, never in completion order.
func table4Sweep(specs []trace.GenSpec, scale float64) ([]Table4Row, map[string]map[string]*sim.Result, string, error) {
	worlds, err := GetWorlds(specs, scale)
	if err != nil {
		return nil, nil, "", err
	}
	type cell struct {
		wi int
		nr NamedRun
	}
	var cells []cell
	for wi, w := range worlds {
		for _, nr := range w.Schedulers() {
			cells = append(cells, cell{wi, nr})
		}
	}
	cellRes := collectPar(len(cells), func(i int) *sim.Result {
		return worlds[cells[i].wi].Run(cells[i].nr)
	})
	results := map[string]map[string]*sim.Result{}
	for i, c := range cells {
		name := specs[c.wi].Name
		if results[name] == nil {
			results[name] = map[string]*sim.Result{}
		}
		results[name][c.nr.Name] = cellRes[i]
	}

	var rows []Table4Row
	var tb [][]string
	for _, spec := range specs {
		res := results[spec.Name]
		for _, name := range SchedulerOrder {
			r := res[name]
			rows = append(rows, Table4Row{
				Cluster: spec.Name, Scheduler: name,
				AvgJCTHrs:    r.AvgJCTHours(),
				AvgQueueHrs:  r.AvgQueueHours(),
				P999QueueHrs: r.P999QueueHours(),
				UtilPct:      r.AvgGPUUtilPct,
				MemPct:       r.AvgGPUMemPct,
			})
			tb = append(tb, []string{spec.Name, name,
				fmt.Sprintf("%.2f", r.AvgJCTHours()),
				fmt.Sprintf("%.2f", r.AvgQueueHours()),
				fmt.Sprintf("%.2f", r.P999QueueHours()),
				fmt.Sprintf("%.1f", r.AvgGPUUtilPct),
				fmt.Sprintf("%d", r.Unfinished)})
		}
	}
	report := "Table 4 — average JCT / queue / P99.9 queue (hours)\n" +
		table([]string{"cluster", "scheduler", "avg JCT", "avg queue", "p99.9 queue", "util%", "unfinished"}, tb)
	return rows, results, report, nil
}

// Fig8 renders JCT CDF checkpoints from Table 4's results.
func Fig8(results map[string]map[string]*sim.Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 8 — JCT CDF checkpoints (seconds at given percentile)\n")
	pcts := []float64{0.25, 0.5, 0.75, 0.9, 0.99}
	for _, cluster := range sortedKeys(results) {
		fmt.Fprintf(&sb, "\n[%s]\n", cluster)
		var tb [][]string
		for _, name := range SchedulerOrder {
			r := results[cluster][name]
			if r == nil {
				continue
			}
			jcts := r.JCTs()
			row := []string{name}
			for _, p := range pcts {
				row = append(row, fmt.Sprintf("%.0f", sim.Percentile(jcts, p)))
			}
			tb = append(tb, row)
		}
		sb.WriteString(table([]string{"scheduler", "p25", "p50", "p75", "p90", "p99"}, tb))
	}
	return sb.String()
}

// Fig9 renders per-VC average queuing delay (top-8 VCs by delay, plus the
// whole cluster, as the paper plots).
func Fig9(results map[string]map[string]*sim.Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 9 — average queuing delay per VC (seconds)\n")
	for _, cluster := range sortedKeys(results) {
		byName := results[cluster]
		// Rank VCs by FIFO delay (the paper picks the 8 busiest).
		ref := byName["FIFO"]
		if ref == nil {
			continue
		}
		type vcd struct {
			vc string
			d  float64
		}
		var vcs []vcd
		for vc, d := range ref.PerVCQueueSec {
			vcs = append(vcs, vcd{vc, d})
		}
		sort.Slice(vcs, func(i, j int) bool { return vcs[i].d > vcs[j].d })
		if len(vcs) > 8 {
			vcs = vcs[:8]
		}
		fmt.Fprintf(&sb, "\n[%s]\n", cluster)
		header := []string{"scheduler"}
		for _, v := range vcs {
			header = append(header, v.vc)
		}
		header = append(header, "all")
		var tb [][]string
		for _, name := range SchedulerOrder {
			r := byName[name]
			if r == nil {
				continue
			}
			row := []string{name}
			for _, v := range vcs {
				row = append(row, fmt.Sprintf("%.0f", r.PerVCQueueSec[v.vc]))
			}
			row = append(row, fmt.Sprintf("%.0f", r.AvgQueueSec))
			tb = append(tb, row)
		}
		sb.WriteString(table(header, tb))
	}
	return sb.String()
}

// Table5 reproduces the large-vs-small job breakdown on Venus.
func Table5(results map[string]*sim.Result) string {
	var tb [][]string
	for _, name := range []string{"FIFO", "Tiresias", "Lucid"} {
		r := results[name]
		if r == nil {
			continue
		}
		lj, lq, sj, sq := r.ScaleStats()
		tb = append(tb, []string{name,
			fmt.Sprintf("%.2f", lj/3600), fmt.Sprintf("%.2f", lq/3600),
			fmt.Sprintf("%.2f", sj/3600), fmt.Sprintf("%.2f", sq/3600)})
	}
	return "Table 5 — large (>8 GPU) vs small (≤8 GPU) jobs in Venus (hours)\n" +
		table([]string{"scheduler", "large JCT", "large queue", "small JCT", "small queue"}, tb)
}

// Fig12 reproduces the workload-distribution sensitivity: Venus-L/M/H
// traces under Lucid vs Tiresias. The three worlds build in parallel
// (distinct cache keys) and the 3×2 run grid is flattened onto the pool.
func Fig12(scale float64) (string, error) {
	utils := []trace.UtilLevel{trace.UtilLow, trace.UtilMedium, trace.UtilHigh}
	specs := make([]trace.GenSpec, len(utils))
	for i, util := range utils {
		specs[i] = trace.Venus()
		specs[i].Util = util
	}
	worlds, err := GetWorlds(specs, scale)
	if err != nil {
		return "", err
	}
	res := collectPar(len(worlds)*2, func(i int) *sim.Result {
		w := worlds[i/2]
		if i%2 == 0 {
			return w.Run(NamedRun{"Lucid", w.NewLucid(core.DefaultConfig()), LucidOpts(w.Spec)})
		}
		return w.Run(NamedRun{"Tiresias", sched.NewTiresias(), SimOpts()})
	})
	var tb [][]string
	for i, util := range utils {
		lucid, tir := res[2*i], res[2*i+1]
		tb = append(tb, []string{"Venus-" + util.String(),
			fmt.Sprintf("%.2f", lucid.AvgJCTHours()), fmt.Sprintf("%.0f", lucid.AvgQueueSec),
			fmt.Sprintf("%.2f", tir.AvgJCTHours()), fmt.Sprintf("%.0f", tir.AvgQueueSec)})
	}
	return "Figure 12 — sensitivity to workload utilization distribution\n" +
		table([]string{"trace", "Lucid JCT(h)", "Lucid queue(s)", "Tiresias JCT(h)", "Tiresias queue(s)"}, tb), nil
}

// Fig14a reproduces the Pollux comparison under workload intensity scaling.
func Fig14a(intensities []float64, seed uint64) (string, error) {
	spec := trace.Venus()
	spec.NumJobs = 4000
	hist := trace.NewGenerator(spec).Emit(0)
	cfg := core.DefaultConfig()
	models, err := core.TrainModels(hist, cfg)
	if err != nil {
		return "", err
	}
	// Flatten intensity × scheduler onto the pool. Each cell regenerates
	// its trace (deterministic per seed) and Lucid cells clone the models,
	// so cells share nothing.
	lopts := sim.Options{Tick: 30, SchedulerEvery: 30, ProfilerNodes: 1}
	opts := sim.Options{Tick: 30, SchedulerEvery: 30}
	const kinds = 3 // Lucid, Pollux, Tiresias
	res := collectPar(len(intensities)*kinds, func(i int) *sim.Result {
		tr := trace.PolluxTrace(intensities[i/kinds], seed)
		switch i % kinds {
		case 0:
			return sim.New(tr, core.New(models.Clone(), cfg), lopts).Run()
		case 1:
			return sim.New(tr, sched.NewPollux(), opts).Run()
		default:
			return sim.New(tr, sched.NewTiresias(), opts).Run()
		}
	})
	var tb [][]string
	for i, in := range intensities {
		lucid, pollux, tir := res[kinds*i], res[kinds*i+1], res[kinds*i+2]
		tb = append(tb, []string{fmt.Sprintf("%.1fx", in),
			fmt.Sprintf("%.2f", lucid.AvgJCTHours()),
			fmt.Sprintf("%.2f", pollux.AvgJCTHours()),
			fmt.Sprintf("%.2f", tir.AvgJCTHours())})
	}
	return "Figure 14a — avg JCT (hours) under workload intensity\n" +
		table([]string{"intensity", "Lucid", "Pollux", "Tiresias"}, tb), nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
