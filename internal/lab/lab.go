// Package lab is the experiment harness: one function per table and figure
// of the paper's evaluation (§4), each regenerating the artifact's rows or
// series from this repository's substrates. cmd/lucidbench and the root
// bench_test.go are thin wrappers over this package; EXPERIMENTS.md records
// the outputs next to the paper's numbers.
//
// Every experiment accepts a Scale in (0, 1] that subsamples the trace job
// counts so the full suite can run quickly in CI (Scale 1.0 reproduces the
// Table 2 workload sizes).
package lab

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// World is a prepared evaluation context for one cluster: a history month
// (model training data), an evaluation month, and the trained Lucid models.
type World struct {
	Spec    trace.GenSpec
	History *trace.Trace
	Eval    *trace.Trace
	Models  *core.Models
	// Estimator is the black-box GBDT duration model QSSF and Horus use
	// (their papers use LightGBM-family models).
	Estimator sched.Estimator
}

// BuildWorld generates traces and trains models for one trace spec at the
// given scale. Scaling shrinks the job count AND the cluster together, so
// the offered-load profile — and therefore the queueing behaviour the
// schedulers differ on — matches the full-size trace. Scale 1.0 reproduces
// the Table 2 configuration exactly.
func BuildWorld(spec trace.GenSpec, scale float64) (*World, error) {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	n := int(float64(spec.NumJobs) * scale)
	if n < 500 {
		n = 500
	}
	if scale < 1 {
		nodes := int(float64(spec.Nodes) * float64(n) / float64(spec.NumJobs))
		if nodes < 4 {
			nodes = 4
		}
		// Preserve the nodes-per-VC ratio so scaled VCs keep realistic
		// capacity for multi-GPU jobs.
		perVC := spec.Nodes / spec.NumVCs
		if perVC < 1 {
			perVC = 1
		}
		// Keep enough VCs for the load skew that drives queueing; a
		// single-VC original (Philly) stays single-VC.
		minVCs := spec.NumVCs
		if minVCs > 4 {
			minVCs = 4
		}
		spec.Nodes = nodes
		spec.NumVCs = nodes / perVC
		if spec.NumVCs < minVCs {
			spec.NumVCs = minVCs
		}
		if spec.NumVCs > nodes/2 {
			spec.NumVCs = nodes / 2
		}
		if spec.NumVCs < 1 {
			spec.NumVCs = 1
		}
	}
	g := trace.NewGenerator(spec)
	hist := g.Emit(n)
	eval := g.Emit(n)

	cfg := core.DefaultConfig()
	models, err := core.TrainModels(hist, cfg)
	if err != nil {
		return nil, fmt.Errorf("lab: %s: %w", spec.Name, err)
	}
	est, err := NewGBDTEstimator(hist)
	if err != nil {
		return nil, fmt.Errorf("lab: %s: %w", spec.Name, err)
	}
	return &World{Spec: spec, History: hist, Eval: eval, Models: models, Estimator: est}, nil
}

// SimOpts are the standard large-scale simulation options.
func SimOpts() sim.Options {
	return sim.Options{Tick: 60, SchedulerEvery: 60}
}

// LucidOpts adds the profiling partition (scaled with the cluster: ~2 % of
// nodes, at least 2).
func LucidOpts(spec trace.GenSpec) sim.Options {
	o := SimOpts()
	o.ProfilerNodes = spec.Nodes / 33
	if o.ProfilerNodes < 2 {
		o.ProfilerNodes = 2
	}
	return o
}

// Schedulers instantiates the §4.1 baseline set plus Lucid for a world, in
// the paper's presentation order.
func (w *World) Schedulers() []NamedRun {
	cfg := core.DefaultConfig()
	return []NamedRun{
		{"FIFO", sched.NewFIFO(), SimOpts()},
		{"SJF", sched.NewSJF(), SimOpts()},
		{"QSSF", sched.NewQSSF(w.Estimator), SimOpts()},
		{"Horus", sched.NewHorus(w.Estimator, w.Spec.Seed), SimOpts()},
		{"Tiresias", sched.NewTiresias(), SimOpts()},
		// Clone: Lucid's Update Engine and online forecaster mutate model
		// state; a clone keeps repeated Schedulers() calls independent.
		{"Lucid", core.New(w.Models.Clone(), cfg), LucidOpts(w.Spec)},
	}
}

// NamedRun pairs a scheduler with its simulation options.
type NamedRun struct {
	Name  string
	Sched sim.Scheduler
	Opts  sim.Options
}

// NewLucid builds a Lucid scheduler over a private clone of the world's
// models. Worlds may be cached (GetWorld) and shared across experiments
// and goroutines, and Lucid's Update Engine and online forecaster mutate
// model state in place — every run must therefore start from a clone, or
// one run's updates leak into the next and results depend on execution
// order.
func (w *World) NewLucid(cfg core.Config) sim.Scheduler {
	return core.New(w.Models.Clone(), cfg)
}

// NewLucidTuned builds a Lucid whose config may carry non-default classifier
// thresholds. The Packing Analyze Model is threshold-dependent — its labeled
// dataset is cut at (Medium, Tiny) — so the world's cached analyzer (trained
// at the defaults) would silently ignore a tuned cut point; this retrains it
// on the variant thresholds, exactly as BinderThresholdStudy does. With
// default thresholds it is NewLucid. internal/evolve routes every genome
// through here so the threshold genes actually steer behaviour.
func (w *World) NewLucidTuned(cfg core.Config) (sim.Scheduler, error) {
	cfg = cfg.Normalized()
	if cfg.Thresholds == workload.DefaultThresholds {
		return w.NewLucid(cfg), nil
	}
	analyzer, err := core.TrainPackingAnalyzer(cfg.Thresholds)
	if err != nil {
		return nil, err
	}
	models := w.Models.Clone()
	models.Analyzer = analyzer
	return core.New(models, cfg), nil
}

// Run executes one scheduler over the world's evaluation trace.
func (w *World) Run(nr NamedRun) *sim.Result {
	return sim.New(w.Eval, nr.Sched, nr.Opts).Run()
}

// RunAll executes the full scheduler set, fanning the runs out across the
// harness worker pool (see parallel.go). Each run is shared-nothing:
// sim.New clones the evaluation jobs and Schedulers() builds fresh policy
// instances, so the results are identical to a serial sweep.
func (w *World) RunAll() map[string]*sim.Result {
	runs := w.Schedulers()
	results := w.RunMany(runs)
	out := make(map[string]*sim.Result, len(runs))
	for i, nr := range runs {
		out[nr.Name] = results[i]
	}
	return out
}

// SchedulerOrder is the canonical presentation order.
var SchedulerOrder = []string{"FIFO", "SJF", "QSSF", "Horus", "Tiresias", "Lucid"}

// table renders a simple aligned text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}
