package lab

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// tinyScale keeps end-to-end lab tests quick; shape assertions stay loose at
// this size (the benches run larger).
const tinyScale = 0.04

func TestFig2a(t *testing.T) {
	at100, rep := Fig2a()
	if at100 < 0.8 || at100 > 0.98 {
		t.Fatalf("fit at 100%% = %v", at100)
	}
	if !strings.Contains(rep, "speed(100%)") {
		t.Fatalf("report malformed:\n%s", rep)
	}
}

func TestFig2b(t *testing.T) {
	vals, rep := Fig2b()
	for _, batch := range []int{32, 64, 128} {
		v := vals[batch]
		if v[1] <= v[0] {
			t.Fatalf("AMP should improve packing at batch %d: %v", batch, v)
		}
	}
	if !strings.Contains(rep, "AMP=1") {
		t.Fatal("report malformed")
	}
}

func TestFig3(t *testing.T) {
	pairs, rep := Fig3a()
	if len(pairs) != 5 {
		t.Fatalf("want 5 pairs, got %d", len(pairs))
	}
	// PointNet pairing keeps ResNet-18 near full speed; the self-pair hurts.
	var pn, self Fig3Pair
	for _, p := range pairs {
		switch p.Partner {
		case "PointNet":
			pn = p
		case "ResNet-18":
			self = p
		}
	}
	if pn.SpeedRN < 0.9 || self.SpeedRN > 0.85 {
		t.Fatalf("Figure 3a shape broken: PointNet=%v self=%v", pn.SpeedRN, self.SpeedRN)
	}
	_, repB := Fig3b()
	if !strings.Contains(rep, "ResNet-18") || !strings.Contains(repB, "8 GPU") {
		t.Fatal("reports malformed")
	}
}

func TestFig5(t *testing.T) {
	st, rep, err := Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if st.PackablePairs == 0 || st.TotalPairs == 0 {
		t.Fatal("no pairs classified")
	}
	// Paper: 98.1 % interference-free among packable; we require ≥90 %.
	if st.PackableInterferFree < 0.90 {
		t.Fatalf("only %.1f%% of packable pairs are interference-free", st.PackableInterferFree*100)
	}
	// Paper: 87 % of opportunities captured; we require ≥60 %.
	if st.OpportunitiesCaptured < 0.60 {
		t.Fatalf("only %.1f%% of packing opportunities captured", st.OpportunitiesCaptured*100)
	}
	if !strings.Contains(rep, "packable") {
		t.Fatal("report malformed")
	}
}

func TestFig6(t *testing.T) {
	rep, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"GPU Utilization", "accuracy"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("missing %q:\n%s", want, rep)
		}
	}
}

func TestFig14b(t *testing.T) {
	lucid, pollux, rep := Fig14b(7)
	if lucid-pollux < 1 {
		t.Fatalf("adaptive training degradation %v too small", lucid-pollux)
	}
	if !strings.Contains(rep, "Pollux") {
		t.Fatal("report malformed")
	}
}

func TestBuildWorldAndSchedulers(t *testing.T) {
	w, err := BuildWorld(trace.Venus(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Eval.Jobs) < 500 {
		t.Fatalf("eval too small: %d", len(w.Eval.Jobs))
	}
	scheds := w.Schedulers()
	if len(scheds) != len(SchedulerOrder) {
		t.Fatalf("scheduler lineup %d", len(scheds))
	}
	for i, nr := range scheds {
		if nr.Name != SchedulerOrder[i] {
			t.Fatalf("order mismatch at %d: %s", i, nr.Name)
		}
	}
}

func TestTable4SmallScale(t *testing.T) {
	// A mini cluster keeps the load profile (and therefore contention)
	// realistic at test scale.
	spec := trace.Venus()
	spec.Nodes = 20
	spec.NumVCs = 4
	spec.NumJobs = 4000
	rows, results, rep, err := Table4([]trace.GenSpec{spec}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(SchedulerOrder) {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Scheduler] = r
	}
	// Even at tiny scale FIFO must not beat Lucid.
	if byName["FIFO"].AvgJCTHrs < byName["Lucid"].AvgJCTHrs {
		t.Fatalf("FIFO (%v) beat Lucid (%v)", byName["FIFO"].AvgJCTHrs, byName["Lucid"].AvgJCTHrs)
	}
	// Downstream renderers consume the same results.
	if s := Fig8(results); !strings.Contains(s, "p50") {
		t.Fatal("Fig8 malformed")
	}
	if s := Fig9(results); !strings.Contains(s, "scheduler") {
		t.Fatal("Fig9 malformed")
	}
	if s := Table5(results["Venus"]); !strings.Contains(s, "large JCT") {
		t.Fatal("Table5 malformed")
	}
	if !strings.Contains(rep, "avg JCT") {
		t.Fatal("Table4 report malformed")
	}
	// Repeat calls are served from the sweep memo (tab5/fig8/fig9 share
	// one simulation pass): the same Result pointers come back.
	_, again, _, err := Table4([]trace.GenSpec{spec}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if again["Venus"]["Lucid"] != results["Venus"]["Lucid"] {
		t.Fatal("second Table4 call re-simulated instead of hitting the sweep memo")
	}
}

func TestFig10a(t *testing.T) {
	w, err := BuildWorld(trace.Venus(), tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	lat, rep, err := Fig10a(w, []int{128, 512})
	if err != nil {
		t.Fatal(err)
	}
	// The claim is milliseconds; allow a generous CI budget of 250 ms.
	for n, d := range lat {
		if d.Milliseconds() > 250 {
			t.Fatalf("scheduling %d jobs took %v", n, d)
		}
	}
	if !strings.Contains(rep, "latency") {
		t.Fatal("report malformed")
	}
}

func TestTable7(t *testing.T) {
	res, rep, err := Table7(0.08)
	if err != nil {
		t.Fatal(err)
	}
	// Lucid's GA²M must be competitive: not the worst on either task.
	worstMAE, worstR2 := 0.0, 2.0
	for _, m := range table7Models {
		if res.ThroughputMAE[m] > worstMAE {
			worstMAE = res.ThroughputMAE[m]
		}
		if res.DurationR2[m] < worstR2 {
			worstR2 = res.DurationR2[m]
		}
	}
	if res.ThroughputMAE["Lucid"] >= worstMAE && len(table7Models) > 1 {
		t.Fatalf("Lucid has the worst throughput MAE: %v", res.ThroughputMAE)
	}
	if res.DurationR2["Lucid"] <= worstR2 && len(table7Models) > 1 {
		t.Fatalf("Lucid has the worst duration R²: %v", res.DurationR2)
	}
	if res.PackingAccuracy < 0.85 {
		t.Fatalf("packing accuracy %v", res.PackingAccuracy)
	}
	if !strings.Contains(rep, "LightGBM") {
		t.Fatal("report malformed")
	}
}

func TestGBDTEstimator(t *testing.T) {
	spec := trace.Venus()
	spec.NumJobs = 1500
	g := trace.NewGenerator(spec)
	hist := g.Emit(0)
	est, err := NewGBDTEstimator(hist)
	if err != nil {
		t.Fatal(err)
	}
	j := g.Emit(10).Jobs[0]
	v1 := est.EstimateSec(j)
	if v1 < 60 {
		t.Fatalf("estimate %v below floor", v1)
	}
	if v2 := est.EstimateSec(j); v2 != v1 {
		t.Fatal("estimate not cached/deterministic")
	}
}

func TestTable3Fidelity(t *testing.T) {
	rows, rep, err := Table3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.JCTErrPct > 15 {
			t.Errorf("%s continuous-JCT fidelity error %.1f%%", r.Scheduler, r.JCTErrPct)
		}
	}
	if !strings.Contains(rep, "makespan err") {
		t.Fatal("report malformed")
	}
}

func TestFig7Interpretations(t *testing.T) {
	rep, err := Fig7(0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hour", "intercept", "shape function"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("Fig7 missing %q", want)
		}
	}
}

func TestFig13Predictions(t *testing.T) {
	rep, err := Fig13(0.02)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"real", "predicted", "overall R²"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("Fig13 missing %q", want)
		}
	}
}

func TestFig10bTrainingTimes(t *testing.T) {
	rep, err := Fig10b([]trace.GenSpec{trace.Venus()}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "Workload Estimate") {
		t.Fatal("report malformed")
	}
}

func TestFig14aCrossover(t *testing.T) {
	rep, err := Fig14a([]float64{0.5, 2.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep, "Pollux") {
		t.Fatal("report malformed")
	}
}
