package lab

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FigR — "goodput under failure rate" — is this repository's chaos
// extension to the paper's evaluation: the Table 4 scheduler set replayed
// over the Venus evaluation month while the fault injector sweeps failure
// intensity from none to 16× the Hu et al.-calibrated baseline (node
// crashes, GPU faults and job crashes scale together). For every
// (scheduler, intensity) cell the grid reports average JCT, goodput (the
// fraction of charged GPU-time that produced finished work), jobs lost to
// retry exhaustion, and the kill/requeue counters — then the JCT
// degradation relative to the fault-free column.
//
// Every cell runs shared-nothing — a fresh scheduler instance and a fresh
// injector over the cached world — so the grid parallelizes across the
// harness worker pool, and serial vs parallel execution is byte-identical.
func FigR(scale float64) (string, error) {
	w, err := GetWorld(trace.Venus(), scale)
	if err != nil {
		return "", err
	}
	_, report := figRGrid(w, []float64{0, 1, 4, 16})
	return report, nil
}

// ChaosSweepSpec scales the calibrated fault rates by mult. The recovery
// knobs (repair window, retry budget, backoff, restore cost) stay fixed:
// the sweep varies how often faults strike, not how recovery behaves.
// Shared with internal/evolve, whose fitness suite scores genomes under the
// same fault intensities Fig R sweeps.
func ChaosSweepSpec(mult float64) chaos.Spec {
	s := chaos.DefaultSpec()
	s.NodeFailPerDay *= mult
	s.GPUFailPerDay *= mult
	s.JobCrashPerDay *= mult
	return s
}

// figRCell is one (scheduler, failure-rate multiplier) grid entry.
type figRCell struct {
	Name string
	Mult float64
	Res  *sim.Result
}

// figRGrid runs the sweep and renders the report. Exposed separately from
// FigR so tests can assert on the raw results.
func figRGrid(w *World, mults []float64) ([]figRCell, string) {
	runs := w.Schedulers()
	type cellSpec struct {
		run  int
		mult int
	}
	var cells []cellSpec
	for ri := range runs {
		for mi := range mults {
			cells = append(cells, cellSpec{ri, mi})
		}
	}
	results := collectPar(len(cells), func(i int) figRCell {
		c := cells[i]
		// Fresh scheduler per cell: Schedulers() rebuilds every policy (and
		// clones the Lucid models), so cells never share mutable state.
		nr := w.Schedulers()[c.run]
		if m := mults[c.mult]; m > 0 {
			nr.Opts.Chaos = chaos.NewInjector(ChaosSweepSpec(m))
		}
		return figRCell{Name: nr.Name, Mult: mults[c.mult], Res: w.Run(nr)}
	})
	at := func(ri, mi int) *sim.Result { return results[ri*len(mults)+mi].Res }

	header := []string{"Scheduler", "×rate", "AvgJCT(h)", "Goodput%", "Failed", "Kills", "Requeues", "NodeFail", "JCT vs clean"}
	var rows [][]string
	for ri, nr := range runs {
		clean := at(ri, 0)
		for mi, m := range mults {
			r := at(ri, mi)
			degr := "—"
			if mi > 0 && clean.AvgJCTSec > 0 {
				degr = fmt.Sprintf("%+.1f%%", (r.AvgJCTSec/clean.AvgJCTSec-1)*100)
			}
			rows = append(rows, []string{
				nr.Name,
				fmt.Sprintf("%g", m),
				fmt.Sprintf("%.2f", r.AvgJCTHours()),
				fmt.Sprintf("%.1f", r.GoodputPct()),
				fmt.Sprintf("%d", r.FailedJobs),
				fmt.Sprintf("%d", r.JobKills),
				fmt.Sprintf("%d", r.Requeues),
				fmt.Sprintf("%d", r.NodeFailures),
				degr,
			})
		}
	}
	out := "Fig R: goodput and JCT under failure-rate sweep (multiples of the calibrated rates;\n" +
		"base: " + chaos.DefaultSpec().String() + ")\n\n"
	return results, out + table(header, rows)
}
