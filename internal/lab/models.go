package lab

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/feat"
	"repro/internal/job"
	"repro/internal/ml/dtree"
	"repro/internal/ml/forest"
	"repro/internal/ml/gam"
	"repro/internal/ml/gbdt"
	"repro/internal/ml/mlmodel"
	"repro/internal/ml/nn"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Table7Result holds the model-comparison scores.
type Table7Result struct {
	// ThroughputMAE by model name (lower is better).
	ThroughputMAE map[string]float64
	// DurationR2 by model name (higher is better).
	DurationR2 map[string]float64
	// PackingAccuracy of the decision tree (§4.6 reports 94.1 %).
	PackingAccuracy float64
}

// table7Models is the baseline lineup of Table 7.
var table7Models = []string{"RF", "LightGBM", "XGBoost", "DNN", "Lucid"}

// Table7 trains RF / LightGBM / XGBoost / DNN / Lucid(GA²M) on the same
// Venus features and scores them: MAE for throughput forecasting, R² for
// duration estimation.
func Table7(scale float64) (*Table7Result, string, error) {
	spec := trace.Venus()
	n := int(float64(spec.NumJobs) * scale)
	if n < 2000 {
		n = 2000
	}
	g := trace.NewGenerator(spec)
	hist := g.Emit(n)
	next := g.Emit(n)
	core.EnsureProfiles(hist.Jobs)
	core.EnsureProfiles(next.Jobs)

	out := &Table7Result{ThroughputMAE: map[string]float64{}, DurationR2: map[string]float64{}}

	// --- Throughput forecasting (hourly submissions, chronological split).
	trainSeries := feat.HourlySubmissions(hist.Jobs, hist.Days)
	testSeries := feat.HourlySubmissions(next.Jobs, next.Days)
	trainDS := feat.ThroughputDataset(trainSeries)
	testDS := feat.ThroughputDataset(testSeries)
	// GA²M hyperparameters are task-tuned like every baseline's defaults
	// are: coarse bins and no interactions for the short noisy hourly
	// series, finer bins plus pairwise terms for the richer duration
	// features.
	tpParams := gam.Params{MaxBins: 10, Rounds: 300, LearningRate: 0.04}
	for _, name := range table7Models {
		m, err := fitNamed(name, trainDS, tpParams)
		if err != nil {
			return nil, "", err
		}
		out.ThroughputMAE[name] = mlmodel.MAE(mlmodel.PredictAll(m, testDS.X), testDS.Y)
	}

	// --- Duration estimation (profile-inclusive features, next-month test).
	fz := feat.NewDurationFeaturizer(hist.Jobs, true)
	durTrain := fz.Dataset(hist.Jobs)
	durTest := fz.Dataset(next.Jobs)
	durParams := gam.Params{MaxBins: 64, Rounds: 300, LearningRate: 0.05}
	for _, name := range table7Models {
		m, err := fitNamed(name, durTrain, durParams)
		if err != nil {
			return nil, "", err
		}
		out.DurationR2[name] = mlmodel.R2(mlmodel.PredictAll(m, durTest.X), durTest.Y)
	}

	// --- Packing Analyze accuracy.
	analyzer, err := core.TrainPackingAnalyzer(workload.DefaultThresholds)
	if err != nil {
		return nil, "", err
	}
	out.PackingAccuracy = analyzer.Accuracy()

	var tb [][]string
	for _, name := range table7Models {
		tb = append(tb, []string{name,
			fmt.Sprintf("%.3f", out.ThroughputMAE[name]),
			fmt.Sprintf("%.3f", out.DurationR2[name])})
	}
	report := "Table 7 — model comparison on Venus (Throughput MAE ↓, Duration R² ↑)\n" +
		table([]string{"model", "Throughput MAE", "Duration R²"}, tb) +
		fmt.Sprintf("Packing Analyze decision tree accuracy: %.1f%% (paper: 94.1%%)\n",
			out.PackingAccuracy*100)
	return out, report, nil
}

// fitNamed trains one of the Table 7 baselines on a dataset; gamParams
// configure the Lucid (GA²M) entry.
func fitNamed(name string, ds *mlmodel.Dataset, gamParams gam.Params) (mlmodel.Regressor, error) {
	switch name {
	case "RF":
		return forest.FitRegressor(ds, forest.Params{NumTrees: 60, MaxDepth: 12, Seed: 11})
	case "LightGBM":
		return gbdt.Fit(ds, gbdt.LightGBMStyle())
	case "XGBoost":
		return gbdt.Fit(ds, gbdt.XGBoostStyle())
	case "DNN":
		return nn.Fit(ds, nn.Params{Epochs: 30, Seed: 12})
	case "Lucid":
		return gam.Fit(ds, gamParams)
	case "DT":
		return dtree.FitRegressor(ds, dtree.Params{MaxDepth: 8, MinSamplesLeaf: 5})
	default:
		return nil, fmt.Errorf("lab: unknown model %q", name)
	}
}

// Fig7 renders the interpretability artifacts: the throughput model's
// global importances and hour shape (Saturn), and a local explanation of
// one Venus duration prediction.
func Fig7(scale float64) (string, error) {
	var sb strings.Builder

	// (a, b) — Saturn throughput model.
	sSpec := trace.Saturn()
	n := int(float64(sSpec.NumJobs) * scale)
	if n < 4000 {
		n = 4000
	}
	sHist := trace.NewGenerator(sSpec).Emit(n)
	tp, err := core.TrainThroughputModel(sHist.Jobs, sHist.Days)
	if err != nil {
		return "", err
	}
	sb.WriteString("Figure 7a — Throughput Predict Model global importance (Saturn)\n")
	imp := tp.GlobalImportance()
	names := tp.FeatureNames()
	for i, nm := range names {
		fmt.Fprintf(&sb, "  %-16s %8.3f\n", nm, imp[i])
	}
	sb.WriteString("\nFigure 7b — learned shape function of `hour`\n")
	for _, pt := range tp.HourShape() {
		fmt.Fprintf(&sb, "  hour ≤ %5.1f → score %+8.3f (n=%d)\n", pt.UpperEdge, pt.Score, pt.Count)
	}

	// (c) — one local explanation from Venus.
	vSpec := trace.Venus()
	vn := int(float64(vSpec.NumJobs) * scale)
	if vn < 2000 {
		vn = 2000
	}
	vg := trace.NewGenerator(vSpec)
	vHist := vg.Emit(vn)
	est, err := core.TrainWorkloadEstimator(vHist.Jobs)
	if err != nil {
		return "", err
	}
	probe := vg.Emit(50).Jobs[0]
	core.EnsureProfiles([]*job.Job{probe})
	intercept, contribs := est.Explain(probe)
	fmt.Fprintf(&sb, "\nFigure 7c — local explanation for %s (predicted %.0f s, true %d s)\n",
		probe.Name, est.EstimateSec(probe), probe.Duration)
	fmt.Fprintf(&sb, "  intercept %+10.1f\n", intercept)
	for _, c := range contribs {
		fmt.Fprintf(&sb, "  %-14s %+10.1f (value %.1f)\n", c.Name, c.Score, c.Value)
	}
	return sb.String(), nil
}

// Fig13 visualizes prediction quality: throughput forecast vs reality on
// Saturn, and duration estimates vs truth on Venus.
func Fig13(scale float64) (string, error) {
	var sb strings.Builder

	// (a) Saturn daily submission prediction.
	sSpec := trace.Saturn()
	n := int(float64(sSpec.NumJobs) * scale)
	if n < 4000 {
		n = 4000
	}
	sg := trace.NewGenerator(sSpec)
	sHist := sg.Emit(n)
	sNext := sg.Emit(n)
	tp, err := core.TrainThroughputModel(sHist.Jobs, sHist.Days)
	if err != nil {
		return "", err
	}
	series := feat.HourlySubmissions(sNext.Jobs, sNext.Days)
	ds := feat.ThroughputDataset(series)
	pred := mlmodel.PredictAll(modelOf(tp), ds.X)
	sb.WriteString("Figure 13a — Saturn daily submissions, real vs predicted\n")
	// Aggregate hourly → daily for the visualization.
	days := sNext.Days
	warm := feat.ThroughputWarmup()
	realDay := make([]float64, days)
	predDay := make([]float64, days)
	for i := range ds.Y {
		d := (i + warm) / 24
		if d < days {
			realDay[d] += ds.Y[i]
			predDay[d] += pred[i]
		}
	}
	for d := 1; d < days; d++ {
		fmt.Fprintf(&sb, "  day %2d: real %6.0f  predicted %6.0f\n", d+1, realDay[d], predDay[d])
	}
	fmt.Fprintf(&sb, "  hourly MAE: %.2f\n", mlmodel.MAE(pred, ds.Y))

	// (b) Venus duration estimation: bucket jobs by true duration.
	vSpec := trace.Venus()
	vn := int(float64(vSpec.NumJobs) * scale)
	if vn < 2000 {
		vn = 2000
	}
	vg := trace.NewGenerator(vSpec)
	vHist := vg.Emit(vn)
	vNext := vg.Emit(vn)
	est, err := core.TrainWorkloadEstimator(vHist.Jobs)
	if err != nil {
		return "", err
	}
	core.EnsureProfiles(vNext.Jobs)
	sb.WriteString("\nFigure 13b — Venus duration estimation by true-duration bucket\n")
	type agg struct {
		truth, pred float64
		n           int
	}
	buckets := []struct {
		name   string
		lo, hi int64
	}{
		{"debug (≤15 min)", 0, 900},
		{"short (≤1 h)", 901, 3600},
		{"medium (≤6 h)", 3601, 6 * 3600},
		{"long (≤1 d)", 6*3600 + 1, 86400},
		{"huge (>1 d)", 86401, 1 << 62},
	}
	aggs := make([]agg, len(buckets))
	for _, j := range vNext.Jobs {
		for bi, b := range buckets {
			if j.Duration >= b.lo && j.Duration <= b.hi {
				aggs[bi].truth += float64(j.Duration)
				aggs[bi].pred += est.EstimateSec(j)
				aggs[bi].n++
				break
			}
		}
	}
	for bi, b := range buckets {
		if aggs[bi].n == 0 {
			continue
		}
		fmt.Fprintf(&sb, "  %-16s n=%5d  true mean %8.0f s  predicted mean %8.0f s\n",
			b.name, aggs[bi].n, aggs[bi].truth/float64(aggs[bi].n), aggs[bi].pred/float64(aggs[bi].n))
	}
	fmt.Fprintf(&sb, "  overall R²: %.3f (paper: 0.413)\n", est.EvalR2(vNext.Jobs))
	return sb.String(), nil
}

// modelOf adapts a ThroughputModel for batch scoring: it exposes the inner
// GA²M through the Regressor interface via a tiny wrapper.
func modelOf(t *core.ThroughputModel) mlmodel.Regressor { return throughputRegressor{t} }

type throughputRegressor struct{ t *core.ThroughputModel }

func (r throughputRegressor) Predict(x []float64) float64 {
	return r.t.PredictRow(x)
}
