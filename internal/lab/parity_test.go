package lab

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dtrace"
	"repro/internal/sched"
	"repro/internal/sim"
)

// The event engine's design constraint is bit-identical parity with the
// fixed-tick engine (internal/sim/engine.go). These tests enforce it from
// three angles:
//
//   - compat mode (decision tracing on): the engine wakes at every cadence
//     point, so traced event runs must reproduce the *committed* golden
//     digests byte-for-byte;
//   - fast mode (tracing off, EventAware elision active): end-state parity —
//     every job's float accumulators must match the tick engine to the last
//     bit, across schedulers, cadence configurations and chaos;
//   - snapshot interop: compat-mode snapshots are engine-independent bytes,
//     and a fast-mode event prefix resumes to the tick engine's end state.

// withEngine wraps a scheduler constructor to force an engine choice.
func withEngine(mk func() (sim.Scheduler, sim.Options), k sim.EngineKind) func() (sim.Scheduler, sim.Options) {
	return func() (sim.Scheduler, sim.Options) {
		s, o := mk()
		o.Engine = k
		return s, o
	}
}

// fingerprint captures every per-job field the engines mutate, with float
// accumulators rendered as raw IEEE-754 bits: a single ULP of drift in any
// job's arithmetic replay shows up as a diff, not a rounding coincidence.
func fingerprint(r *sim.Result) string {
	var sb strings.Builder
	for _, j := range r.Jobs {
		fmt.Fprintf(&sb, "%d st=%d fs=%d fin=%d pre=%d rst=%d ne=%d rt=%x ag=%x rem=%x cs=%x cw=%x\n",
			j.ID, j.State, j.FirstStart, j.Finish, j.Preemptions, j.Restarts, j.NextEligible,
			math.Float64bits(j.RunTime), math.Float64bits(j.AttainedGPUT),
			math.Float64bits(j.RemainingWork), math.Float64bits(j.ColdStart),
			math.Float64bits(j.CheckpointedWork))
	}
	return sb.String()
}

// diffFingerprints returns the first few differing lines for a readable
// failure message.
func diffFingerprints(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	var out []string
	for i := 0; i < n && len(out) < 5; i++ {
		if la[i] != lb[i] {
			out = append(out, fmt.Sprintf("  tick:  %s\n  event: %s", la[i], lb[i]))
		}
	}
	if len(la) != len(lb) {
		out = append(out, fmt.Sprintf("  (job counts differ: %d vs %d)", len(la), len(lb)))
	}
	return strings.Join(out, "\n")
}

// TestEventEngineGoldenParity runs every golden scheduler under the event
// engine with decision tracing attached and demands the committed golden
// digest — the exact decision sequence the tick engine produces. This is the
// issue's headline acceptance criterion: all pre-existing digests must be
// byte-identical under the new engine.
func TestEventEngineGoldenParity(t *testing.T) {
	eval, models := goldenWorld(t)
	golden := readGoldenDigests(t)

	for _, gs := range goldenSchedulers(models) {
		want, ok := golden[gs.name]
		if !ok {
			t.Fatalf("%s: no golden digest line", gs.name)
		}
		d, _, n := runTraced(t, eval, gs.name, withEngine(gs.mk, sim.EngineEvent))
		if d != want {
			t.Errorf("%s: event-engine digest %s does not match golden %s", gs.name, d, want)
		}
		t.Logf("%s: event engine reproduced golden digest %s (%d events)", gs.name, want, n)
	}
}

// TestEventEngineFastParity is the fast-mode (elision-active) sweep: the
// golden set plus Horus (cached noisy predictions — the RNG-position half of
// the EventAware contract), plus configurations the golden worlds do not
// cover: a scheduler cadence coarser than the tick, a cadence that is not a
// multiple of the tick, and chaos under a coarse cadence (backoff expiries
// between cadence points).
func TestEventEngineFastParity(t *testing.T) {
	eval, models := goldenWorld(t)
	spec := goldenSpec()

	coarse := func() sim.Options { return sim.Options{Tick: 60, SchedulerEvery: 300} }
	ragged := func() sim.Options { return sim.Options{Tick: 60, SchedulerEvery: 290} }
	// fine reproduces the pending-decision regression: at 1-second ticks with
	// 600-second sampling, sampling wake-ups land between scheduler cadence
	// points, so a Tiresias quantum expiring in that gap must stay pending
	// (filtered against LastSchedulerRun, not Now) or its eviction slips.
	fine := func() sim.Options { return sim.Options{Tick: 1, SchedulerEvery: 60, SampleEvery: 600} }
	chaosOpts := func(base sim.Options) sim.Options {
		cs := chaos.DefaultSpec()
		cs.NodeFailPerDay = 4
		cs.GPUFailPerDay = 0.5
		cs.JobCrashPerDay = 6
		cs.MaxRetries = 3
		cs.BackoffSec = 120
		base.Chaos = chaos.NewInjector(cs)
		return base
	}

	cases := []struct {
		name string
		mk   func() (sim.Scheduler, sim.Options)
	}{
		{"FIFO", func() (sim.Scheduler, sim.Options) { return sched.NewFIFO(), SimOpts() }},
		{"SJF", func() (sim.Scheduler, sim.Options) { return sched.NewSJF(), SimOpts() }},
		{"QSSF", func() (sim.Scheduler, sim.Options) { return sched.NewQSSF(sched.OracleEstimator{}), SimOpts() }},
		{"Horus", func() (sim.Scheduler, sim.Options) {
			return sched.NewHorus(sched.OracleEstimator{}, spec.Seed), SimOpts()
		}},
		{"Tiresias", func() (sim.Scheduler, sim.Options) { return sched.NewTiresias(), SimOpts() }},
		{"Lucid", func() (sim.Scheduler, sim.Options) {
			return core.New(models.Clone(), core.DefaultConfig()), LucidOpts(spec)
		}},
		{"FIFO-coarse", func() (sim.Scheduler, sim.Options) { return sched.NewFIFO(), coarse() }},
		{"Tiresias-coarse", func() (sim.Scheduler, sim.Options) { return sched.NewTiresias(), coarse() }},
		{"FIFO-ragged", func() (sim.Scheduler, sim.Options) { return sched.NewFIFO(), ragged() }},
		{"Tiresias-fine", func() (sim.Scheduler, sim.Options) { return sched.NewTiresias(), fine() }},
		{"FIFO-chaos", func() (sim.Scheduler, sim.Options) { return sched.NewFIFO(), chaosOpts(SimOpts()) }},
		{"FIFO-chaos-coarse", func() (sim.Scheduler, sim.Options) { return sched.NewFIFO(), chaosOpts(coarse()) }},
		{"Tiresias-chaos", func() (sim.Scheduler, sim.Options) { return sched.NewTiresias(), chaosOpts(coarse()) }},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			sT, oT := withEngine(tc.mk, sim.EngineTick)()
			resT := sim.New(eval, sT, oT).Run()
			sE, oE := withEngine(tc.mk, sim.EngineEvent)()
			resE := sim.New(eval, sE, oE).Run()

			fT, fE := fingerprint(resT), fingerprint(resE)
			if fT != fE {
				t.Errorf("per-job end state diverged:\n%s", diffFingerprints(fT, fE))
			}
			if resT.Summary() != resE.Summary() {
				t.Errorf("summaries diverged:\n  tick:  %s\n  event: %s", resT.Summary(), resE.Summary())
			}
			if resT.Requeues != resE.Requeues || resT.JobKills != resE.JobKills ||
				resT.NodeFailures != resE.NodeFailures || resT.GPUFailures != resE.GPUFailures ||
				resT.FailedJobs != resE.FailedJobs {
				t.Errorf("chaos accounting diverged: tick {fail=%d node=%d gpu=%d kill=%d rq=%d} event {fail=%d node=%d gpu=%d kill=%d rq=%d}",
					resT.FailedJobs, resT.NodeFailures, resT.GPUFailures, resT.JobKills, resT.Requeues,
					resE.FailedJobs, resE.NodeFailures, resE.GPUFailures, resE.JobKills, resE.Requeues)
			}
		})
	}
}

// TestEventEngineSnapshotParity covers the durable-state interactions:
//
//  1. compat mode: a snapshot taken mid-run is a property of the simulated
//     state, not the engine that produced it — tick and event prefixes must
//     serialize to identical bytes, and a tick-engine prefix must resume
//     under the event engine (and vice versa) to the committed golden digest;
//  2. fast mode: an event-engine prefix snapshot resumed under the event
//     engine must land on the tick engine's bit-exact end state, proving the
//     prediction heap and live window rebuild correctly from a snapshot.
func TestEventEngineSnapshotParity(t *testing.T) {
	eval, models := goldenWorld(t)
	golden := readGoldenDigests(t)
	const cut = 86400

	// --- compat mode, FIFO-chaos (the richest state: down nodes, backoff).
	var mkChaos func() (sim.Scheduler, sim.Options)
	for _, gs := range goldenSchedulers(models) {
		if gs.name == "FIFO-chaos" {
			mkChaos = gs.mk
		}
	}
	snapAt := func(mk func() (sim.Scheduler, sim.Options)) []byte {
		s, opts := mk()
		rec := dtrace.New()
		rec.SetKeep(0)
		opts.DecisionTrace = rec
		sm := sim.New(eval, s, opts)
		if done := sm.RunUntil(cut); done {
			t.Fatal("run completed before the cut")
		}
		var buf bytes.Buffer
		if err := sm.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	tickBytes := snapAt(withEngine(mkChaos, sim.EngineTick))
	eventBytes := snapAt(withEngine(mkChaos, sim.EngineEvent))
	if !bytes.Equal(tickBytes, eventBytes) {
		t.Error("compat-mode snapshots differ across engines: the event engine's mid-run state drifted")
	}

	// Cross-engine resume: tick prefix → event finish, against the golden
	// digest of an uninterrupted run.
	s2, opts2 := withEngine(mkChaos, sim.EngineEvent)()
	rec2 := dtrace.New()
	rec2.SetKeep(0)
	opts2.DecisionTrace = rec2
	resumed, err := sim.Resume(eval, s2, opts2, bytes.NewReader(tickBytes))
	if err != nil {
		t.Fatalf("resume tick snapshot under event engine: %v", err)
	}
	resumed.Run()
	if got, want := rec2.Digest(), golden["FIFO-chaos"]; got != want {
		t.Errorf("tick prefix + event finish digest %s, golden is %s", got, want)
	}

	// --- fast mode: event prefix → snapshot → event finish vs tick full run.
	mkFast := func() (sim.Scheduler, sim.Options) {
		opts := SimOpts()
		cs := chaos.DefaultSpec()
		cs.NodeFailPerDay = 4
		cs.JobCrashPerDay = 6
		cs.MaxRetries = 3
		cs.BackoffSec = 120
		opts.Chaos = chaos.NewInjector(cs)
		return sched.NewFIFO(), opts
	}
	sT, oT := withEngine(mkFast, sim.EngineTick)()
	refFP := fingerprint(sim.New(eval, sT, oT).Run())

	sP, oP := withEngine(mkFast, sim.EngineEvent)()
	pre := sim.New(eval, sP, oP)
	if done := pre.RunUntil(cut); done {
		t.Fatal("fast run completed before the cut")
	}
	var buf bytes.Buffer
	if err := pre.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	sR, oR := withEngine(mkFast, sim.EngineEvent)()
	res2, err := sim.Resume(eval, sR, oR, &buf)
	if err != nil {
		t.Fatalf("fast-mode resume: %v", err)
	}
	got := fingerprint(res2.Run())
	if got != refFP {
		t.Errorf("fast event prefix+resume end state differs from tick run:\n%s", diffFingerprints(refFP, got))
	}
}
