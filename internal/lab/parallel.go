package lab

import (
	"runtime"
	"sync"

	"repro/internal/sim"
)

// The parallel harness fans independent simulation runs out across a
// bounded worker pool. Every run is shared-nothing by construction —
// sim.New clones the trace's jobs, each scheduler instance is freshly
// built, and Lucid runs get a private Models.Clone() — so parallel and
// serial execution produce byte-identical results (metrics and decision-
// trace digests; TestParallelMatchesSerial proves it under -race).
// Determinism comes from indexing: workers write results into their own
// slot of a pre-sized slice, and reports are rendered from that slice in
// canonical order, never from completion order.

var (
	parMu sync.RWMutex
	parN  int // 0 = GOMAXPROCS
)

// SetParallelism bounds the number of concurrent simulation runs across
// the experiment harness. n ≤ 0 restores the default (GOMAXPROCS).
func SetParallelism(n int) {
	parMu.Lock()
	parN = n
	parMu.Unlock()
}

// Parallelism reports the current worker bound.
func Parallelism() int {
	parMu.RLock()
	n := parN
	parMu.RUnlock()
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// parallelEach runs fn(i) for every i in [0, n) on at most Parallelism()
// goroutines. fn must confine its writes to per-index state.
func parallelEach(n int, fn func(i int)) {
	workers := Parallelism()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
}

// ForEachPar runs fn(i) for every i in [0, n) on the harness worker pool —
// the exported face of parallelEach for sibling packages (internal/evolve
// fans fitness evaluations through it). The same contract applies: fn must
// confine its writes to per-index state, and because results are assembled
// by index, serial (-parallel 1) and parallel execution are byte-identical.
func ForEachPar(n int, fn func(i int)) { parallelEach(n, fn) }

// collectPar evaluates fn over [0, n) in parallel and returns the results
// in index order.
func collectPar[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	parallelEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// firstErr returns the lowest-index non-nil error, so the reported failure
// is independent of scheduling order.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunMany executes the named runs over the world concurrently, returning
// results in input order. Schedulers are constructed by the caller (one
// fresh instance per run); the world itself is only read.
func (w *World) RunMany(runs []NamedRun) []*sim.Result {
	return collectPar(len(runs), func(i int) *sim.Result { return w.Run(runs[i]) })
}
