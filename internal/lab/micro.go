package lab

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ml/gam"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fig10aLatency measures the Resource Orchestrator's decision latency for a
// queue of n jobs — the §4.4 scalability claim (≤3 ms at 2048 jobs). The
// measurement drives the real Lucid scheduler over a one-shot burst trace
// where all n jobs are simultaneously queued, timing a single Tick. Best
// of three fresh runs: a lone timed tick lands on a GC pause often enough
// to distort the table.
func Fig10aLatency(n int, w *World) (time.Duration, error) {
	// Burst trace: n jobs, all at t=0, on the world's cluster.
	spec := w.Spec
	g := trace.NewGenerator(spec)
	burst := g.Emit(n)
	for _, j := range burst.Jobs {
		j.Submit = 0
	}
	cfg := core.DefaultConfig()
	cfg.UpdateIntervalSec = 0
	var best time.Duration
	for rep := 0; rep < 3; rep++ {
		lucid := w.NewLucid(cfg) // clone: worlds are cached and shared
		s := sim.New(burst, lucid, LucidOpts(spec))

		// First step admits arrivals and fills the profiler; the timed
		// second step exercises the orchestrator over the full queue (the
		// latency claim is about the allocation decision, estimator
		// inference included).
		s.StepOnce()
		start := time.Now()
		s.StepOnce()
		if d := time.Since(start); rep == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// Fig10a sweeps queue sizes and reports per-decision latency.
func Fig10a(w *World, sizes []int) (map[int]time.Duration, string, error) {
	out := map[int]time.Duration{}
	var tb [][]string
	for _, n := range sizes {
		d, err := Fig10aLatency(n, w)
		if err != nil {
			return nil, "", err
		}
		out[n] = d
		tb = append(tb, []string{fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", float64(d.Microseconds())/1000)})
	}
	return out, "Figure 10a — scheduling latency vs queued jobs (paper: <3 ms @ 2048)\n" +
		table([]string{"jobs", "latency (ms)"}, tb), nil
}

// Fig10b measures interpretable-model training time on each cluster's
// history (paper: seconds for Throughput Predict, up to ~11 min for
// Workload Estimate on million-scale data; Packing Analyze <1 s).
func Fig10b(specs []trace.GenSpec, scale float64) (string, error) {
	var tb [][]string
	for _, spec := range specs {
		n := int(float64(spec.NumJobs) * scale)
		if n < 500 {
			n = 500
		}
		hist := trace.NewGenerator(spec).Emit(n)

		t0 := time.Now()
		if _, err := core.TrainWorkloadEstimator(hist.Jobs); err != nil {
			return "", err
		}
		tEst := time.Since(t0)

		t0 = time.Now()
		if _, err := core.TrainThroughputModel(hist.Jobs, hist.Days); err != nil {
			return "", err
		}
		tTp := time.Since(t0)

		t0 = time.Now()
		if _, err := core.TrainPackingAnalyzer(core.DefaultConfig().Thresholds); err != nil {
			return "", err
		}
		tPa := time.Since(t0)

		tb = append(tb, []string{spec.Name, fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", tEst.Seconds()),
			fmt.Sprintf("%.2f", tTp.Seconds()),
			fmt.Sprintf("%.3f", tPa.Seconds())})
	}
	return "Figure 10b — model training time (seconds)\n" +
		table([]string{"cluster", "history jobs", "Workload Estimate", "Throughput Predict", "Packing Analyze"}, tb), nil
}

// Fig11a runs the component ablations on Venus: full Lucid, w/o Binder
// (naive packing), w/o Estimator (runtime-agnostic), w/o Sharing, vs QSSF
// and the no-queueing Optimal bound.
func Fig11a(scale float64) (map[string]*sim.Result, string, error) {
	w, err := GetWorld(trace.Venus(), scale)
	if err != nil {
		return nil, "", err
	}
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"Lucid", func(c *core.Config) {}},
		{"Lucid(w/o Binder)", func(c *core.Config) { c.DisableBinder = true }},
		{"Lucid(w/o Estimator)", func(c *core.Config) { c.DisableEstimator = true }},
		{"Lucid(w/o Sharing)", func(c *core.Config) { c.DisableSharing = true }},
	}
	runs := make([]NamedRun, 0, len(variants)+1)
	for _, v := range variants {
		cfg := core.DefaultConfig()
		v.mut(&cfg)
		runs = append(runs, NamedRun{v.name, w.NewLucid(cfg), LucidOpts(w.Spec)})
	}
	runs = append(runs, NamedRun{"QSSF", sched.NewQSSF(w.Estimator), SimOpts()})
	results := w.RunMany(runs)
	out := map[string]*sim.Result{}
	var tb [][]string
	for i, nr := range runs {
		out[nr.Name] = results[i]
		tb = append(tb, []string{nr.Name,
			fmt.Sprintf("%.0f", results[i].AvgJCTSec), fmt.Sprintf("%.0f", results[i].AvgQueueSec)})
	}
	qssf := out["QSSF"]
	// Optimal bound: average JCT with zero queueing (paper: JCT of the
	// non-intrusive policies minus their queueing delay).
	optimal := qssf.AvgJCTSec - qssf.AvgQueueSec
	tb = append(tb, []string{"Optimal(no queueing)", fmt.Sprintf("%.0f", optimal), "0"})
	return out, "Figure 11a — ablation study on Venus (seconds)\n" +
		table([]string{"variant", "avg JCT", "avg queue"}, tb), nil
}

// Fig11b compares Space-aware Profiling against the naive FIFO profiler
// (Tprof = 500 s, Nprof 8, Time-aware Scaling off, per §4.5) across the
// three clusters, reporting profiling-stage queueing.
func Fig11b(specs []trace.GenSpec, scale float64) (string, error) {
	worlds, err := GetWorlds(specs, scale)
	if err != nil {
		return "", err
	}
	// Flat spec×{naive, space-aware} grid, one run per cell.
	const modes = 2
	res := collectPar(len(worlds)*modes, func(i int) *sim.Result {
		w := worlds[i/modes]
		cfg := core.DefaultConfig()
		cfg.TprofSec = 500
		cfg.DisableTimeAware = true
		cfg.DisableSpaceAware = i%modes == 0
		return w.Run(NamedRun{"Lucid", w.NewLucid(cfg), LucidOpts(w.Spec)})
	})
	var tb [][]string
	for i, spec := range specs {
		tb = append(tb, []string{spec.Name,
			fmt.Sprintf("%.0f", res[modes*i].AvgQueueSec),
			fmt.Sprintf("%.0f", res[modes*i+1].AvgQueueSec)})
	}
	return "Figure 11b — space-aware profiling vs naive (avg queue, seconds; Tprof=500s)\n" +
		table([]string{"cluster", "w/o S.A.", "Lucid"}, tb), nil
}

// Table6 sweeps the profiling time limit on Venus.
func Table6(scale float64) (string, error) {
	w, err := GetWorld(trace.Venus(), scale)
	if err != nil {
		return "", err
	}
	tprofs := []int64{100, 200, 300, 600}
	res := collectPar(len(tprofs), func(i int) *sim.Result {
		cfg := core.DefaultConfig()
		cfg.TprofSec = tprofs[i]
		cfg.DisableTimeAware = true // isolate the knob, as Table 6 does
		return w.Run(NamedRun{"Lucid", w.NewLucid(cfg), LucidOpts(w.Spec)})
	})
	var tb [][]string
	for i, tprof := range tprofs {
		// Profiling-stage finish rate: finished jobs whose duration fit the
		// window (they never needed the main cluster).
		finishedInProf := 0
		total := 0
		for _, j := range res[i].Jobs {
			if j.Finish < 0 {
				continue
			}
			total++
			if j.Duration <= tprof && j.GPUs <= core.DefaultConfig().Nprof {
				finishedInProf++
			}
		}
		rate := 0.0
		if total > 0 {
			rate = float64(finishedInProf) / float64(total) * 100
		}
		tb = append(tb, []string{fmt.Sprintf("%d", tprof),
			fmt.Sprintf("%.1f%%", rate),
			fmt.Sprintf("%.0f", res[i].AvgJCTSec),
			fmt.Sprintf("%.0f", res[i].AvgQueueSec)})
	}
	return "Table 6 — sensitivity to Tprof on Venus\n" +
		table([]string{"Tprof(s)", "finish in profiler", "avg JCT(s)", "avg queue(s)"}, tb), nil
}

// UpdateIntervalStudy reproduces §4.5(3): static model vs weekly vs daily
// Update Engine refits.
func UpdateIntervalStudy(scale float64) (string, error) {
	w, err := GetWorld(trace.Venus(), scale)
	if err != nil {
		return "", err
	}
	cases := []struct {
		name     string
		interval int64
	}{{"static", 0}, {"weekly", 7 * 86400}, {"daily", 86400}}
	res := collectPar(len(cases), func(i int) *sim.Result {
		cfg := core.DefaultConfig()
		cfg.UpdateIntervalSec = cases[i].interval
		return w.Run(NamedRun{"Lucid", w.NewLucid(cfg), LucidOpts(w.Spec)})
	})
	var tb [][]string
	for i, c := range cases {
		tb = append(tb, []string{c.name,
			fmt.Sprintf("%.0f", res[i].AvgJCTSec), fmt.Sprintf("%.0f", res[i].AvgQueueSec)})
	}
	return "§4.5(3) — model update interval on Venus\n" +
		table([]string{"update", "avg JCT(s)", "avg queue(s)"}, tb), nil
}

// keep gam referenced for the Fig7 helpers living in models.go
var _ = gam.Params{}
