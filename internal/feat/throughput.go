// Package feat is the feature-engineering layer behind Lucid's two GA²M
// models (§3.5.2–§3.5.3): time-series features for the Throughput Predict
// Model (trend, seasonality, rolling statistics of hourly submission
// counts) and job features for the Workload Estimate Model (categorical
// encodings, Levenshtein + affinity-propagation name buckets, historical
// mean-duration encodings, and the profiled resource features that
// distinguish Lucid's estimator from QSSF's).
package feat

import (
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/ml/mlmodel"
)

// HourlySubmissions buckets job submissions into hours over the window
// [0, days·24).
func HourlySubmissions(jobs []*job.Job, days int) []float64 {
	out := make([]float64, days*24)
	for _, j := range jobs {
		h := int(j.Submit / 3600)
		if h >= 0 && h < len(out) {
			out[h]++
		}
	}
	return out
}

// HourlyGPUDemand buckets total requested GPUs of submissions per hour.
func HourlyGPUDemand(jobs []*job.Job, days int) []float64 {
	out := make([]float64, days*24)
	for _, j := range jobs {
		h := int(j.Submit / 3600)
		if h >= 0 && h < len(out) {
			out[h] += float64(j.GPUs)
		}
	}
	return out
}

// throughputFeatureNames mirrors the Figure 7a feature inventory: calendar
// encodings plus shifted/rolling/soft-sum statistics over the recent series.
var throughputFeatureNames = []string{
	"hour", "day", "dayofweek",
	"shift_1h", "shift_2h", "shift_1d",
	"roll_mean_3h", "roll_median_6h", "roll_mean_1d",
	"soft_1h", "soft_3h", "soft_1d",
}

// ThroughputFeatureNames returns a copy of the feature name list.
func ThroughputFeatureNames() []string {
	return append([]string(nil), throughputFeatureNames...)
}

// throughputHistoryHours is how much history each feature row needs.
const throughputHistoryHours = 24

// ThroughputFeatures computes one feature row predicting series[t] from
// series[:t]. t must be ≥ ThroughputWarmup().
func ThroughputFeatures(series []float64, t int) []float64 {
	window := func(k int) []float64 { return series[t-k : t] }
	return []float64{
		float64(t % 24),
		float64(t / 24),
		float64((t / 24) % 7),
		series[t-1],
		series[t-2],
		series[t-24],
		mlmodel.Mean(window(3)),
		median(window(6)),
		mlmodel.Mean(window(24)),
		softSum(window(6), 1.0),
		softSum(window(12), 3.0),
		softSum(window(24), 24.0),
	}
}

// ThroughputWarmup returns the minimum t for which features exist.
func ThroughputWarmup() int { return throughputHistoryHours }

// ThroughputDataset converts an hourly series into a supervised dataset:
// features at t → series[t].
func ThroughputDataset(series []float64) *mlmodel.Dataset {
	var x [][]float64
	var y []float64
	for t := ThroughputWarmup(); t < len(series); t++ {
		x = append(x, ThroughputFeatures(series, t))
		y = append(y, series[t])
	}
	ds, err := mlmodel.NewDataset(x, y, ThroughputFeatureNames())
	if err != nil {
		panic("feat: internal shape error: " + err.Error())
	}
	return ds
}

// softSum is an exponentially decayed sum over the window (most recent last)
// with time constant tau hours — the paper's "weighted soft summation".
func softSum(window []float64, tau float64) float64 {
	s := 0.0
	n := len(window)
	for i, v := range window {
		age := float64(n - 1 - i)
		s += v * math.Exp(-age/tau)
	}
	return s
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}
