package feat

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/job"
	"repro/internal/ml/affprop"
	"repro/internal/ml/mlmodel"
	"repro/internal/ml/textdist"
)

// DurationFeaturizer turns a job into the Workload Estimate Model's feature
// row (§3.5.3). It is fit on historical completed jobs:
//
//   - job names are reduced to template bases, the most frequent bases are
//     clustered with Levenshtein similarity + affinity propagation, and
//     every job maps to its nearest exemplar bucket;
//   - users and templates get historical mean-duration encodings (the §3.4
//     fallbacks: a new job inherits its user's history, a new user inherits
//     the mean duration of jobs with the same GPU demand);
//   - temporal features (hour, day-of-week) expose the submission rhythm;
//   - optionally, the profiled resource features — this is the information
//     edge Lucid's estimator has over QSSF's.
type DurationFeaturizer struct {
	// IncludeProfile appends GPU util / memory / mem-util / AMP features.
	IncludeProfile bool
	// MaxNameExemplars caps the affinity-propagation input size.
	MaxNameExemplars int

	exemplars []string
	// baseBucket memoizes nearest-exemplar lookups for bases unseen at fit
	// time. One featurizer is shared by estimator clones across concurrent
	// scheduler runs (the fitted state is read-only; this memo is the one
	// exception), so it is mutex-guarded. The memoized value is a pure
	// function of the base, so concurrent fills stay deterministic.
	bucketMu   sync.Mutex
	baseBucket map[string]int
	userMean   map[string]float64
	tmplMean   map[string]float64
	tmplCount  map[string]float64
	gpuMean    map[int]float64
	globalMean float64
}

// TemplateBase strips the per-submission suffix ("-v17") from a job name,
// recovering the recurring template identity.
func TemplateBase(name string) string {
	if i := strings.LastIndex(name, "-v"); i > 0 {
		// Only strip when the suffix is numeric-ish.
		suffix := name[i+2:]
		numeric := len(suffix) > 0
		for _, r := range suffix {
			if r < '0' || r > '9' {
				numeric = false
				break
			}
		}
		if numeric {
			return name[:i]
		}
	}
	return name
}

// NewDurationFeaturizer fits the encoder on completed history jobs.
func NewDurationFeaturizer(history []*job.Job, includeProfile bool) *DurationFeaturizer {
	f := &DurationFeaturizer{
		IncludeProfile:   includeProfile,
		MaxNameExemplars: 150,
		baseBucket:       map[string]int{},
		userMean:         map[string]float64{},
		tmplMean:         map[string]float64{},
		tmplCount:        map[string]float64{},
		gpuMean:          map[int]float64{},
	}
	f.fit(history)
	return f
}

func (f *DurationFeaturizer) fit(history []*job.Job) {
	userSum, userN := map[string]float64{}, map[string]float64{}
	tmplSum := map[string]float64{}
	gpuSum, gpuN := map[int]float64{}, map[int]float64{}
	baseFreq := map[string]int{}
	var total, n float64

	for _, j := range history {
		d := float64(j.Duration)
		base := TemplateBase(j.Name)
		baseFreq[base]++
		userSum[j.User] += d
		userN[j.User]++
		tmplSum[base] += d
		f.tmplCount[base]++
		gpuSum[j.GPUs] += d
		gpuN[j.GPUs]++
		total += d
		n++
	}
	if n > 0 {
		f.globalMean = total / n
	}
	for u, s := range userSum {
		f.userMean[u] = s / userN[u]
	}
	for b, s := range tmplSum {
		f.tmplMean[b] = s / f.tmplCount[b]
	}
	for g, s := range gpuSum {
		f.gpuMean[g] = s / gpuN[g]
	}

	// Cluster the most frequent template bases by name similarity.
	type bf struct {
		base string
		freq int
	}
	var bases []bf
	for b, c := range baseFreq {
		bases = append(bases, bf{b, c})
	}
	sort.Slice(bases, func(i, k int) bool {
		if bases[i].freq != bases[k].freq {
			return bases[i].freq > bases[k].freq
		}
		return bases[i].base < bases[k].base
	})
	k := len(bases)
	if k > f.MaxNameExemplars {
		k = f.MaxNameExemplars
	}
	if k == 0 {
		return
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = bases[i].base
	}
	sim := make([][]float64, k)
	minSim := 1.0
	for i := range sim {
		sim[i] = make([]float64, k)
		for j := range sim[i] {
			sim[i][j] = textdist.Similarity(names[i], names[j])
			if i != j && sim[i][j] < minSim {
				minSim = sim[i][j]
			}
		}
	}
	// A low preference (the minimum similarity) biases toward coarse
	// buckets: recurring name families collapse onto one exemplar.
	assign := affprop.Cluster(sim, affprop.Params{Preference: minSim, HasPref: true})
	// Exemplar list in first-seen order; bucket id = exemplar rank.
	exIdx := map[int]int{}
	for _, e := range assign {
		if _, ok := exIdx[e]; !ok {
			exIdx[e] = len(f.exemplars)
			f.exemplars = append(f.exemplars, names[e])
		}
	}
	for i, e := range assign {
		f.baseBucket[names[i]] = exIdx[e]
	}
}

// bucketOf maps a template base to its name bucket, assigning unseen bases
// to the nearest exemplar (cached).
func (f *DurationFeaturizer) bucketOf(base string) int {
	f.bucketMu.Lock()
	b, ok := f.baseBucket[base]
	f.bucketMu.Unlock()
	if ok {
		return b
	}
	if len(f.exemplars) == 0 {
		return 0
	}
	best, bi := -1.0, 0
	for i, ex := range f.exemplars {
		if s := textdist.Similarity(base, ex); s > best {
			best, bi = s, i
		}
	}
	f.bucketMu.Lock()
	f.baseBucket[base] = bi
	f.bucketMu.Unlock()
	return bi
}

// durationFeatureNames is the model's feature inventory (profile features
// appended when enabled).
var durationFeatureNames = []string{
	"gpu_num", "hour", "dayofweek",
	"name_bucket", "tmpl_mean", "tmpl_count", "user_mean", "gpu_mean",
}

var profileFeatureNames = []string{"gpu_util", "gpu_mem_mb", "gpu_mem_util", "amp"}

// Names returns the feature names for this featurizer's configuration.
func (f *DurationFeaturizer) Names() []string {
	out := append([]string(nil), durationFeatureNames...)
	if f.IncludeProfile {
		out = append(out, profileFeatureNames...)
	}
	return out
}

// Features encodes one job. Fallback chain for the mean encodings follows
// §3.4: template history → user history → same-GPU-demand mean → global.
func (f *DurationFeaturizer) Features(j *job.Job) []float64 {
	base := TemplateBase(j.Name)
	tm, ok := f.tmplMean[base]
	if !ok {
		if um, uok := f.userMean[j.User]; uok {
			tm = um
		} else if gm, gok := f.gpuMean[j.GPUs]; gok {
			tm = gm
		} else {
			tm = f.globalMean
		}
	}
	um, ok := f.userMean[j.User]
	if !ok {
		if gm, gok := f.gpuMean[j.GPUs]; gok {
			um = gm
		} else {
			um = f.globalMean
		}
	}
	gm, ok := f.gpuMean[j.GPUs]
	if !ok {
		gm = f.globalMean
	}
	row := []float64{
		float64(j.GPUs),
		float64((j.Submit / 3600) % 24),
		float64((j.Submit / 86400) % 7),
		float64(f.bucketOf(base)),
		tm,
		f.tmplCount[base],
		um,
		gm,
	}
	if f.IncludeProfile {
		amp := 0.0
		if j.Profile.AMP || j.AMP {
			amp = 1
		}
		row = append(row, j.Profile.GPUUtil, j.Profile.GPUMemMB, j.Profile.GPUMemUtil, amp)
	}
	return row
}

// Dataset builds the supervised table (target: duration in seconds).
func (f *DurationFeaturizer) Dataset(jobs []*job.Job) *mlmodel.Dataset {
	x := make([][]float64, len(jobs))
	y := make([]float64, len(jobs))
	for i, j := range jobs {
		x[i] = f.Features(j)
		y[i] = float64(j.Duration)
	}
	ds, err := mlmodel.NewDataset(x, y, f.Names())
	if err != nil {
		panic("feat: internal shape error: " + err.Error())
	}
	return ds
}
