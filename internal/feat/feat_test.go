package feat

import (
	"math"
	"testing"

	"repro/internal/job"
	"repro/internal/ml/gam"
	"repro/internal/ml/mlmodel"
	"repro/internal/trace"
	"repro/internal/workload"
)

func venusSample(n int) *trace.Trace {
	s := trace.Venus()
	s.NumJobs = n
	return trace.NewGenerator(s).Emit(0)
}

func TestHourlySubmissions(t *testing.T) {
	tr := venusSample(2000)
	series := HourlySubmissions(tr.Jobs, tr.Days)
	if len(series) != tr.Days*24 {
		t.Fatalf("series length %d", len(series))
	}
	total := 0.0
	for _, v := range series {
		total += v
	}
	if int(total) != len(tr.Jobs) {
		t.Fatalf("series sums to %v, want %d", total, len(tr.Jobs))
	}
	gpu := HourlyGPUDemand(tr.Jobs, tr.Days)
	var gpuTotal float64
	for _, v := range gpu {
		gpuTotal += v
	}
	var want float64
	for _, j := range tr.Jobs {
		want += float64(j.GPUs)
	}
	if gpuTotal != want {
		t.Fatalf("GPU series sums to %v, want %v", gpuTotal, want)
	}
}

func TestThroughputFeaturesShape(t *testing.T) {
	series := make([]float64, 100)
	for i := range series {
		series[i] = float64(i)
	}
	row := ThroughputFeatures(series, 50)
	if len(row) != len(ThroughputFeatureNames()) {
		t.Fatalf("feature row %d names %d", len(row), len(ThroughputFeatureNames()))
	}
	// shift_1h is series[49].
	if row[3] != 49 {
		t.Fatalf("shift_1h = %v", row[3])
	}
	// shift_1d is series[26].
	if row[5] != 26 {
		t.Fatalf("shift_1d = %v", row[5])
	}
	if row[0] != 50%24 {
		t.Fatalf("hour = %v", row[0])
	}
}

func TestThroughputDatasetPredictsDiurnal(t *testing.T) {
	// GA²M on the engineered features must forecast a synthetic diurnal
	// series well — the substance of Figure 13a.
	// With n jobs/hour the Poisson sampling noise bounds achievable R²; use
	// enough jobs that the diurnal signal dominates.
	tr := venusSample(20000)
	series := HourlySubmissions(tr.Jobs, tr.Days)
	ds := ThroughputDataset(series)
	train, test := ds.Split(0.75)
	m, err := gam.Fit(train, gam.Params{Rounds: 150})
	if err != nil {
		t.Fatal(err)
	}
	pred := mlmodel.PredictAll(m, test.X)
	r2 := mlmodel.R2(pred, test.Y)
	if r2 < 0.55 {
		t.Fatalf("throughput forecast R2 = %v, diurnal structure not learned", r2)
	}
}

func TestTemplateBase(t *testing.T) {
	cases := map[string]string{
		"vc00-user01-ResNet-18-t12-v7": "vc00-user01-ResNet-18-t12",
		"plain":                        "plain",
		"a-vx":                         "a-vx", // non-numeric suffix stays
		"x-v123":                       "x",
	}
	for in, want := range cases {
		if got := TemplateBase(in); got != want {
			t.Errorf("TemplateBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestDurationFeaturizerFallbacks(t *testing.T) {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	history := []*job.Job{
		job.New(1, "tmplA-v1", "alice", "vc", 1, 0, 1000, cfg),
		job.New(2, "tmplA-v2", "alice", "vc", 1, 100, 2000, cfg),
		job.New(3, "tmplB-v1", "bob", "vc", 4, 200, 8000, cfg),
	}
	f := NewDurationFeaturizer(history, false)
	names := f.Names()

	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		t.Fatalf("feature %q missing", name)
		return -1
	}

	// Known template → template mean.
	row := f.Features(job.New(4, "tmplA-v3", "alice", "vc", 1, 300, 0, cfg))
	if got := row[idx("tmpl_mean")]; got != 1500 {
		t.Fatalf("tmpl_mean = %v, want 1500", got)
	}
	// New template, known user → user mean.
	row = f.Features(job.New(5, "tmplC-v1", "bob", "vc", 4, 300, 0, cfg))
	if got := row[idx("tmpl_mean")]; got != 8000 {
		t.Fatalf("new-template fallback = %v, want bob's mean 8000", got)
	}
	// New user → same-GPU-demand mean (§3.4).
	row = f.Features(job.New(6, "tmplD-v1", "carol", "vc", 4, 300, 0, cfg))
	if got := row[idx("tmpl_mean")]; got != 8000 {
		t.Fatalf("new-user fallback = %v, want gpu-4 mean 8000", got)
	}
	// New user, unseen GPU demand → global mean.
	row = f.Features(job.New(7, "tmplE-v1", "dave", "vc", 2, 300, 0, cfg))
	want := (1000.0 + 2000 + 8000) / 3
	if got := row[idx("tmpl_mean")]; math.Abs(got-want) > 1e-9 {
		t.Fatalf("global fallback = %v, want %v", got, want)
	}
}

func TestProfileFeaturesToggle(t *testing.T) {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	history := []*job.Job{job.New(1, "a-v1", "u", "vc", 1, 0, 100, cfg)}
	plain := NewDurationFeaturizer(history, false)
	prof := NewDurationFeaturizer(history, true)
	if len(prof.Names()) != len(plain.Names())+4 {
		t.Fatalf("profile featurizer adds %d features", len(prof.Names())-len(plain.Names()))
	}
	j := job.New(2, "a-v2", "u", "vc", 1, 0, 100, cfg)
	j.Profiled = true
	j.Profile = cfg.Profile()
	row := prof.Features(j)
	if row[len(row)-4] != j.Profile.GPUUtil {
		t.Fatal("profile util feature wrong")
	}
}

func TestNameBucketsClusterRecurrences(t *testing.T) {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	var history []*job.Job
	id := 1
	for _, base := range []string{"train-resnet", "train-resnet2", "bert-finetune", "bert-finetun2"} {
		for v := 1; v <= 5; v++ {
			history = append(history, job.New(id, base+"-v1", "u", "vc", 1, 0, 100, cfg))
			id++
		}
	}
	f := NewDurationFeaturizer(history, false)
	b1 := f.bucketOf("train-resnet")
	b2 := f.bucketOf("train-resnet2")
	b3 := f.bucketOf("bert-finetune")
	if b1 != b2 {
		t.Fatalf("similar names in different buckets: %d vs %d", b1, b2)
	}
	if b1 == b3 {
		t.Fatal("dissimilar names share a bucket")
	}
	// Unseen name lands with its nearest exemplar.
	if f.bucketOf("train-resnet3") != b1 {
		t.Fatal("unseen similar name not bucketed with exemplar")
	}
}

func TestDurationModelLearnsFromHistory(t *testing.T) {
	// End-to-end: GA²M on featurized history must outperform the global-mean
	// baseline on the next month (R² > 0).
	s := trace.Venus()
	s.NumJobs = 4000
	g := trace.NewGenerator(s)
	hist := g.Emit(0)
	next := g.Emit(0)
	for _, j := range hist.Jobs {
		j.Profile = j.Config.Profile()
		j.Profiled = true
	}
	for _, j := range next.Jobs {
		j.Profile = j.Config.Profile()
		j.Profiled = true
	}
	f := NewDurationFeaturizer(hist.Jobs, true)
	m, err := gam.Fit(f.Dataset(hist.Jobs), gam.Params{Rounds: 120})
	if err != nil {
		t.Fatal(err)
	}
	test := f.Dataset(next.Jobs)
	pred := mlmodel.PredictAll(m, test.X)
	r2 := mlmodel.R2(pred, test.Y)
	if r2 < 0.1 {
		t.Fatalf("duration model R2 = %v on the next month", r2)
	}
}
