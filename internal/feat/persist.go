package feat

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON persistence for the duration featurizer: the fitted encoder (name
// buckets, historical mean encodings) ships with the model it was fitted
// for, so a deployed scheduler can score jobs without the training logs.

// durationFeaturizerDTO is the on-disk layout.
type durationFeaturizerDTO struct {
	IncludeProfile   bool               `json:"include_profile"`
	MaxNameExemplars int                `json:"max_name_exemplars"`
	Exemplars        []string           `json:"exemplars"`
	BaseBucket       map[string]int     `json:"base_bucket"`
	UserMean         map[string]float64 `json:"user_mean"`
	TmplMean         map[string]float64 `json:"tmpl_mean"`
	TmplCount        map[string]float64 `json:"tmpl_count"`
	GPUMean          map[int]float64    `json:"gpu_mean"`
	GlobalMean       float64            `json:"global_mean"`
}

// Save writes the fitted featurizer as JSON.
func (f *DurationFeaturizer) Save(w io.Writer) error {
	dto := durationFeaturizerDTO{
		IncludeProfile:   f.IncludeProfile,
		MaxNameExemplars: f.MaxNameExemplars,
		Exemplars:        f.exemplars,
		BaseBucket:       f.baseBucket,
		UserMean:         f.userMean,
		TmplMean:         f.tmplMean,
		TmplCount:        f.tmplCount,
		GPUMean:          f.gpuMean,
		GlobalMean:       f.globalMean,
	}
	return json.NewEncoder(w).Encode(dto)
}

// LoadDurationFeaturizer reads a featurizer written by Save.
func LoadDurationFeaturizer(r io.Reader) (*DurationFeaturizer, error) {
	var dto durationFeaturizerDTO
	if err := json.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("feat: load featurizer: %w", err)
	}
	f := &DurationFeaturizer{
		IncludeProfile:   dto.IncludeProfile,
		MaxNameExemplars: dto.MaxNameExemplars,
		exemplars:        dto.Exemplars,
		baseBucket:       dto.BaseBucket,
		userMean:         dto.UserMean,
		tmplMean:         dto.TmplMean,
		tmplCount:        dto.TmplCount,
		gpuMean:          dto.GPUMean,
		globalMean:       dto.GlobalMean,
	}
	// Maps must be non-nil for the lookup paths.
	if f.baseBucket == nil {
		f.baseBucket = map[string]int{}
	}
	if f.userMean == nil {
		f.userMean = map[string]float64{}
	}
	if f.tmplMean == nil {
		f.tmplMean = map[string]float64{}
	}
	if f.tmplCount == nil {
		f.tmplCount = map[string]float64{}
	}
	if f.gpuMean == nil {
		f.gpuMean = map[int]float64{}
	}
	return f, nil
}
