package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/chaos"
	"repro/internal/job"
)

// quietChaos builds an injector that never fires spontaneously (all rates
// zero) but still supplies retry/backoff policy, so tests can invoke killJob
// deterministically.
func quietChaos(backoffSec int64) *chaos.Injector {
	return chaos.NewInjector(chaos.Spec{
		MaxRetries:    10,
		BackoffSec:    backoffSec,
		MaxBackoffSec: backoffSec,
	})
}

// TestBackoffExpiryWakesScheduler is the satellite-2 regression test: a
// requeued job whose backoff expires between scheduler cadence points must
// start on its eligibility tick, not idle until the next cadence boundary.
// Runs under both engines — the wake-up is a first-class event in each.
func TestBackoffExpiryWakesScheduler(t *testing.T) {
	for _, eng := range []EngineKind{EngineTick, EngineEvent} {
		t.Run(eng.String(), func(t *testing.T) {
			tr := mkTrace(mkJob(1, 1, 0, 1000))
			s := New(tr, fifoLike{}, Options{
				Tick: 10, SchedulerEvery: 100, Engine: eng,
				Chaos: quietChaos(330),
			})
			if done := s.RunUntil(20); done {
				t.Fatal("finished before the kill point")
			}
			j := s.byID[1]
			if j.State != job.Running {
				t.Fatalf("state at t=20: %v, want Running", j.State)
			}
			// Kill at t=20: NextEligible = 20+330 = 350. The scheduler grid
			// (lastSched=10, cadence 100) next fires at 410; only the backoff
			// wake-up event gets the job started at 350.
			s.killJob(j, "test-kill")
			if j.NextEligible != 350 {
				t.Fatalf("NextEligible = %d, want 350", j.NextEligible)
			}
			res := s.Run()
			if res.Unfinished != 0 || j.State != job.Finished {
				t.Fatalf("job did not finish: state=%v", j.State)
			}
			// Restart-from-zero at t=350 + 1000s of work → finish at 1350. A
			// cadence-boundary start (the pre-fix behaviour) would finish at
			// 1410.
			if j.Finish != 1350 {
				t.Errorf("finish = %d, want 1350 (restart on the eligibility tick, not the cadence boundary)",
					j.Finish)
			}
		})
	}
}

// TestStepOnceDelegatesToStepTick pins the satellite-1 fix: StepOnce must be
// the real engine tick with the scheduler gate forced, not a drifted copy —
// it advances the clock, clears the dirty flag, runs the scheduler, and
// performs due sampling exactly like a Run tick would.
func TestStepOnceDelegatesToStepTick(t *testing.T) {
	tr := mkTrace(mkJob(1, 1, 0, 500), mkJob(2, 1, 0, 500))
	s := New(tr, fifoLike{}, Options{Tick: 10, SchedulerEvery: 1000, SampleEvery: 20})
	s.dirty = true
	s.StepOnce()
	if s.now != 10 {
		t.Fatalf("now = %d after one step, want 10", s.now)
	}
	if s.dirty {
		t.Error("dirty flag survived a forced scheduler round")
	}
	if len(s.running) != 2 {
		t.Fatalf("%d jobs running after forced round, want 2 (gate must be bypassed)", len(s.running))
	}
	if s.lastSched != 10 {
		t.Errorf("lastSched = %d, want 10", s.lastSched)
	}
	s.StepOnce()
	if s.lastSample != 20 {
		t.Errorf("lastSample = %d after 20s with SampleEvery=20, want 20", s.lastSample)
	}
	if s.utilSamples == 0 {
		t.Error("no utilization samples recorded")
	}
}

// TestEvheapDeterministicOrder is the satellite-4 property test: whatever
// order events are pushed in, the heap pops them sorted by (at, id, gen) —
// ties on the timestamp never depend on insertion order, so the engine's
// wake sequence is deterministic.
func TestEvheapDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		evs := make([]tickEvent, n)
		for i := range evs {
			// Small domains force plenty of at and (at,id) collisions.
			evs[i] = tickEvent{
				at:  int64(rng.Intn(5)) * 10,
				id:  rng.Intn(6),
				gen: uint64(rng.Intn(3)),
			}
		}
		want := append([]tickEvent(nil), evs...)
		sort.SliceStable(want, func(i, k int) bool { return evLess(want[i], want[k]) })

		var h evheap
		for _, e := range evs {
			h.push(e)
		}
		for i := 0; i < n; i++ {
			got := h.pop()
			// Equal elements are interchangeable; compare by ordering key.
			if evLess(got, want[i]) || evLess(want[i], got) {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got, want[i])
			}
		}
		if len(h) != 0 {
			t.Fatalf("trial %d: heap not empty after %d pops", trial, n)
		}
	}
}

// refTickAdvance replays exactly one advanceSet inner-loop iteration for a
// non-completing job — the reference advanceJobTicks must match bit-for-bit.
func refTickAdvance(j *job.Job, sp, dt float64) {
	eff := dt
	if j.ColdStart > 0 {
		if j.ColdStart >= eff {
			j.ColdStart -= eff
			j.RunTime += dt
			j.AttainedGPUT += dt * float64(j.GPUs)
			return
		}
		eff -= j.ColdStart
		j.ColdStart = 0
	}
	j.RunTime += dt
	j.AttainedGPUT += dt * float64(j.GPUs)
	j.RemainingWork -= sp * eff
}

// TestAdvanceJobTicksBitExact drives advanceJobTicks against a literal
// per-tick replay over randomized (remaining, cold-start, speed, span)
// states, demanding bit-identical float accumulators — the property the
// skipped-span fast path rests on.
func TestAdvanceJobTicksBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const dt = 60.0
	for trial := 0; trial < 500; trial++ {
		rem := float64(60 + rng.Intn(100000))
		if rng.Intn(2) == 0 {
			rem += rng.Float64() // non-integral remaining work
		}
		var cs float64
		switch rng.Intn(3) {
		case 1:
			cs = float64(rng.Intn(200))
		case 2:
			cs = rng.Float64() * 200
		}
		sp := 1.0
		if rng.Intn(2) == 0 {
			sp = 0.5 + rng.Float64()*0.7 // packed/straggler slowdown
		}
		k := int64(1 + rng.Intn(50))

		a := &job.Job{GPUs: 1 + rng.Intn(8), RemainingWork: rem, ColdStart: cs}
		b := &job.Job{GPUs: a.GPUs, RemainingWork: rem, ColdStart: cs}

		// Only spans with no completion inside are ever bulk-advanced; skip
		// states where the reference would finish within k ticks.
		if fin := ticksToFinish(rem, cs, sp, dt, 1<<40); fin <= k {
			k = fin - 1
			if k <= 0 {
				continue
			}
		}
		advanceJobTicks(a, sp, k, dt)
		for i := int64(0); i < k; i++ {
			refTickAdvance(b, sp, dt)
		}
		if math.Float64bits(a.RemainingWork) != math.Float64bits(b.RemainingWork) ||
			math.Float64bits(a.RunTime) != math.Float64bits(b.RunTime) ||
			math.Float64bits(a.AttainedGPUT) != math.Float64bits(b.AttainedGPUT) ||
			math.Float64bits(a.ColdStart) != math.Float64bits(b.ColdStart) {
			t.Fatalf("trial %d (rem=%v cs=%v sp=%v k=%d): bulk %+v vs loop %+v",
				trial, rem, cs, sp, k, a, b)
		}
	}
}

// TestTicksToFinishMatchesLoop checks the completion predictor against the
// literal per-tick engine rule (progress >= remaining retires the job on
// that tick) over randomized states.
func TestTicksToFinishMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const dt = 60.0
	for trial := 0; trial < 500; trial++ {
		rem := float64(1 + rng.Intn(20000))
		if rng.Intn(2) == 0 {
			rem += rng.Float64()
		}
		var cs float64
		if rng.Intn(2) == 0 {
			cs = rng.Float64() * 300
		}
		sp := 1.0
		if rng.Intn(2) == 0 {
			sp = 0.4 + rng.Float64()
		}

		j := &job.Job{GPUs: 1, RemainingWork: rem, ColdStart: cs}
		var want int64
		for want = 1; ; want++ {
			eff := dt
			if j.ColdStart > 0 {
				if j.ColdStart >= eff {
					j.ColdStart -= eff
					continue
				}
				eff -= j.ColdStart
				j.ColdStart = 0
			}
			if sp*eff >= j.RemainingWork {
				break
			}
			j.RemainingWork -= sp * eff
		}
		if got := ticksToFinish(rem, cs, sp, dt, 1<<40); got != want {
			t.Fatalf("trial %d (rem=%v cs=%v sp=%v): ticksToFinish=%d, per-tick loop=%d",
				trial, rem, cs, sp, got, want)
		}
	}
}

// TestEventEngineHorizonParity: both engines must truncate an endless run at
// the same tick with identical partial accounting.
func TestEventEngineHorizonParity(t *testing.T) {
	run := func(eng EngineKind) *job.Job {
		tr := mkTrace(mkJob(1, 1, 0, 1_000_000))
		s := New(tr, fifoLike{}, Options{Tick: 10, MaxHorizon: 505, Engine: eng})
		s.Run()
		return s.byID[1]
	}
	a, b := run(EngineTick), run(EngineEvent)
	if math.Float64bits(a.RunTime) != math.Float64bits(b.RunTime) ||
		math.Float64bits(a.RemainingWork) != math.Float64bits(b.RemainingWork) {
		t.Fatalf("horizon truncation differs: tick %+v vs event %+v", a, b)
	}
	if a.Finish != -1 || b.Finish != -1 {
		t.Fatal("job should not have finished before the horizon")
	}
}
