package sim

import (
	"repro/internal/dtrace"
	"repro/internal/job"
)

// Decision-trace plumbing: the engine records what physically happened
// (placements, packs, preemptions, profile transitions, retirements) on the
// recorder in Options.DecisionTrace, and schedulers annotate why via
// Env.Annotate — the annotation is folded into the next engine event for
// that job, so one decision yields one event carrying both the state
// transition and the policy's reasoning plus counterfactual.
//
// Everything here is a no-op when Options.DecisionTrace is nil; the hot
// path pays a single nil check.

// annotation is a pending policy-side explanation for a job's next engine
// event.
type annotation struct {
	reason string
	score  float64
	regret float64
	alts   []dtrace.Alternative
}

// trace records one engine event, consuming any pending annotation for the
// job.
func (s *Sim) trace(act dtrace.Action, j *job.Job, reason string, partner int) {
	rec := s.opts.DecisionTrace
	if rec == nil {
		return
	}
	ev := dtrace.Event{
		Tick: s.now, Job: j.ID, Action: act, Reason: reason,
		VC: j.VC, GPUs: j.GPUs, Partner: partner,
	}
	if ann, ok := s.pendAnn[j.ID]; ok {
		delete(s.pendAnn, j.ID)
		if ann.reason != "" {
			ev.Reason = ann.reason
		}
		ev.Score = ann.score
		ev.Regret = ann.regret
		ev.Alternatives = ann.alts
	}
	rec.Record(ev)
}

// Trace returns the decision-trace recorder (nil when tracing is off).
// Schedulers use it to record policy-level events (ordering, pack
// rejections, steering) and to gate building alternative lists on
// Trace().Enabled().
func (e *Env) Trace() *dtrace.Recorder { return e.s.opts.DecisionTrace }

// Annotate attaches a policy-side explanation — the deciding rule, the
// chosen option's score, the regret, and the top-K unchosen alternatives —
// to the next engine event recorded for the job (typically the placement
// the scheduler is about to request). No-op when tracing is off; stale
// annotations are discarded at the end of the scheduler invocation.
func (e *Env) Annotate(jobID int, reason string, score, regret float64, alts []dtrace.Alternative) {
	if e.s.opts.DecisionTrace == nil {
		return
	}
	if e.s.pendAnn == nil {
		e.s.pendAnn = make(map[int]annotation)
	}
	e.s.pendAnn[jobID] = annotation{reason: reason, score: score, regret: regret, alts: alts}
}
