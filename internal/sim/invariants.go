package sim

import (
	"fmt"

	"repro/internal/job"
)

// InvariantChecker machine-checks the engine's physical invariants after
// every tick (enable via Options.Invariants):
//
//   - per-GPU capacity: at most two jobs per GPU and reserved memory within
//     device capacity (the substrate half, cluster.Audit);
//   - allocation consistency: the running/profiling sets, job states, and
//     cluster allocation records agree in both directions;
//   - causality: no job runs before its submission or after its retirement,
//     and retired jobs hold no GPUs;
//   - non-intrusiveness: a job leaving the profiler restarts from zero
//     progress (checked at the StopProfiling transition).
//
// With Fatal set, the first violation panics — the property tests run this
// way so a broken engine fails loudly. Otherwise violations are counted and
// sampled onto Result.Violations / Result.ViolationSamples.
type InvariantChecker struct {
	// Fatal panics on the first violation (tests).
	Fatal bool
	// MaxSamples bounds the retained violation descriptions.
	MaxSamples int

	count   int
	samples []string
}

// NewInvariantChecker returns a checker; fatal selects panic-on-violation.
func NewInvariantChecker(fatal bool) *InvariantChecker {
	return &InvariantChecker{Fatal: fatal, MaxSamples: 8}
}

// Count returns the number of violations observed so far.
func (c *InvariantChecker) Count() int { return c.count }

// Samples returns up to MaxSamples violation descriptions.
func (c *InvariantChecker) Samples() []string {
	return append([]string(nil), c.samples...)
}

func (c *InvariantChecker) violate(format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	if c.Fatal {
		panic("sim: invariant violation: " + msg)
	}
	c.count++
	if len(c.samples) < c.MaxSamples {
		c.samples = append(c.samples, msg)
	}
}

// checkInvariants validates the whole engine state against the checker.
// Called once per tick when Options.Invariants is set; never on the
// default path.
func (s *Sim) checkInvariants() {
	c := s.opts.Invariants
	if c == nil {
		return
	}
	for _, v := range s.main.Audit() {
		c.violate("tick %d: main cluster: %s", s.now, v)
	}
	if s.profiler != nil {
		for _, v := range s.profiler.Audit() {
			c.violate("tick %d: profiler cluster: %s", s.now, v)
		}
	}

	for id, j := range s.running {
		if j.State != job.Running {
			c.violate("tick %d: job %d in running set with state %v", s.now, id, j.State)
		}
		if !s.main.Allocated(id) {
			c.violate("tick %d: job %d running without a main-cluster allocation", s.now, id)
		} else {
			want := j.GPUs
			if alloc, ok := s.elastic[id]; ok {
				want = alloc
			}
			if got := len(s.main.GPUsOf(id)); got != want {
				c.violate("tick %d: job %d holds %d GPUs, expected %d", s.now, id, got, want)
			}
		}
		if j.Submit > s.now {
			c.violate("tick %d: job %d runs before its submission at %d", s.now, id, j.Submit)
		}
		if j.FirstStart >= 0 && j.FirstStart < j.Submit {
			c.violate("tick %d: job %d first start %d precedes submission %d",
				s.now, id, j.FirstStart, j.Submit)
		}
		if j.Finish >= 0 {
			c.violate("tick %d: job %d runs after its retirement at %d", s.now, id, j.Finish)
		}
		if _, also := s.profiling[id]; also {
			c.violate("tick %d: job %d on both clusters at once", s.now, id)
		}
	}

	for id, j := range s.profiling {
		if j.State != job.Profiling {
			c.violate("tick %d: job %d in profiling set with state %v", s.now, id, j.State)
		}
		if s.profiler == nil || !s.profiler.Allocated(id) {
			c.violate("tick %d: job %d profiling without a profiler allocation", s.now, id)
		}
		if s.main.Allocated(id) {
			c.violate("tick %d: profiling job %d also holds main-cluster GPUs", s.now, id)
		}
		if j.Submit > s.now {
			c.violate("tick %d: job %d profiles before its submission at %d", s.now, id, j.Submit)
		}
	}

	for i, j := range s.jobs {
		if i >= s.arriveIdx {
			// Not yet submitted: the scheduler must never have touched it.
			if j.State != job.Pending || j.FirstStart >= 0 || s.main.Allocated(j.ID) {
				c.violate("tick %d: job %d touched before submission (state %v)",
					s.now, j.ID, j.State)
			}
			continue
		}
		switch j.State {
		case job.Running:
			if _, ok := s.running[j.ID]; !ok {
				c.violate("tick %d: job %d state Running but not in the running set", s.now, j.ID)
			}
		case job.Profiling:
			if _, ok := s.profiling[j.ID]; !ok {
				c.violate("tick %d: job %d state Profiling but not in the profiling set", s.now, j.ID)
			}
		case job.Finished:
			if s.main.Allocated(j.ID) || (s.profiler != nil && s.profiler.Allocated(j.ID)) {
				c.violate("tick %d: retired job %d still holds GPUs", s.now, j.ID)
			}
			if j.Finish < j.Submit {
				c.violate("tick %d: job %d finished at %d before submission %d",
					s.now, j.ID, j.Finish, j.Submit)
			}
			if j.RemainingWork != 0 {
				c.violate("tick %d: retired job %d has %.1f s of work left",
					s.now, j.ID, j.RemainingWork)
			}
		case job.Failed:
			// Retries exhausted (fault injection): terminal, so it must hold
			// no GPUs and must actually have been killed at least once.
			if s.main.Allocated(j.ID) || (s.profiler != nil && s.profiler.Allocated(j.ID)) {
				c.violate("tick %d: failed job %d still holds GPUs", s.now, j.ID)
			}
			if j.Restarts == 0 {
				c.violate("tick %d: job %d marked Failed without any fault kill", s.now, j.ID)
			}
			if j.Finish >= 0 {
				c.violate("tick %d: job %d both Failed and finished at %d", s.now, j.ID, j.Finish)
			}
		default: // Pending, Queued
			if s.main.Allocated(j.ID) {
				c.violate("tick %d: job %d state %v but holds main-cluster GPUs",
					s.now, j.ID, j.State)
			}
			// Non-intrusiveness: a Queued job has either never run on the
			// main cluster or was returned by the profiler — either way no
			// checkpoint exists, so its remaining work must be the full
			// duration. The two legal progress-preserving paths both leave a
			// marker: preemption parks jobs with ColdStart > 0, and a
			// fault-kill restore keeps CheckpointedWork > 0.
			if j.State == job.Queued && j.ColdStart == 0 && j.CheckpointedWork == 0 &&
				j.RemainingWork != float64(j.Duration) {
				c.violate("tick %d: queued job %d kept %.1f s of progress across a restart",
					s.now, j.ID, float64(j.Duration)-j.RemainingWork)
			}
		}
	}
}
