package sim_test

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/dtrace"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// The Options.DecisionTrace=nil hot path must cost one pointer check —
// compare BenchmarkSimTracingOff against BenchmarkSimTracingOn (in-memory
// recorder) and BenchmarkSimInvariantsOn (per-tick checker):
//
//	go test ./internal/sim/ -run '^$' -bench BenchmarkSim -count 5
func benchSim(b *testing.B, mkOpts func() sim.Options) {
	tr := randomTrace(xrand.New(7), 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.New(tr, sched.NewFIFO(), mkOpts()).Run()
		if res.Violations > 0 {
			b.Fatalf("violations: %v", res.ViolationSamples)
		}
	}
}

func BenchmarkSimTracingOff(b *testing.B) {
	benchSim(b, func() sim.Options { return sim.Options{Tick: 30, SchedulerEvery: 60} })
}

func BenchmarkSimTracingOn(b *testing.B) {
	benchSim(b, func() sim.Options {
		rec := dtrace.New()
		rec.SetKeep(0)
		return sim.Options{Tick: 30, SchedulerEvery: 60, DecisionTrace: rec}
	})
}

func BenchmarkSimInvariantsOn(b *testing.B) {
	benchSim(b, func() sim.Options {
		return sim.Options{Tick: 30, SchedulerEvery: 60,
			Invariants: sim.NewInvariantChecker(false)}
	})
}

// The Options.Chaos=nil hot path must likewise cost one pointer check per
// tick: compare BenchmarkSimChaosOff (no injector — should match
// BenchmarkSimTracingOff) against BenchmarkSimChaosOn (armed injector
// sampling every fault class at the calibrated rates).
func BenchmarkSimChaosOff(b *testing.B) {
	benchSim(b, func() sim.Options {
		return sim.Options{Tick: 30, SchedulerEvery: 60}
	})
}

func BenchmarkSimChaosOn(b *testing.B) {
	benchSim(b, func() sim.Options {
		return sim.Options{Tick: 30, SchedulerEvery: 60,
			Chaos: chaos.NewInjector(chaos.DefaultSpec())}
	})
}

// drainTrace emits n short jobs at an offered load the 32-GPU property
// cluster can absorb, so the trace fully drains well inside the horizon —
// unlike randomTrace, which deliberately overloads it.
func drainTrace(r *xrand.RNG, n int) *trace.Trace {
	tr := randomTrace(r, n)
	submit := int64(0)
	for _, j := range tr.Jobs {
		submit += r.Int63n(80)
		j.Submit = submit
		j.GPUs = 1 + int(r.Int63n(4))
		j.Duration = 30 + r.Int63n(600)
	}
	return tr
}

// BenchmarkSimLongTracePending runs a full long trace; the scheduler scans
// the queue every tick, so queue-scan cost is part of the end-to-end figure.
//
//	go test ./internal/sim/ -run '^$' -bench 'BenchmarkSimLongTracePending|BenchmarkPendingAfterLongRun'
func BenchmarkSimLongTracePending(b *testing.B) {
	tr := drainTrace(xrand.New(11), 2500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.New(tr, sched.NewFIFO(), sim.Options{Tick: 30, SchedulerEvery: 30}).Run()
		if res.Violations > 0 {
			b.Fatalf("violations: %v", res.ViolationSamples)
		}
	}
}

// envCapture keeps the Env the engine hands the scheduler, so a benchmark
// can probe Env methods against end-of-run state.
type envCapture struct {
	inner sim.Scheduler
	env   *sim.Env
}

func (c *envCapture) Name() string { return c.inner.Name() }
func (c *envCapture) Tick(env *sim.Env) {
	c.env = env
	c.inner.Tick(env)
}

// BenchmarkPendingAfterLongRun isolates the Env.Pending scan once a long
// trace has drained. Every submitted job is finished, which is the worst
// case for a naive rescan: O(total submitted) work per call to return an
// empty queue. The finished-prefix skip makes it O(still-waiting) — here
// ~2500× less work, the asymptotic gap that compounds over a run's tens of
// thousands of scheduler ticks.
func BenchmarkPendingAfterLongRun(b *testing.B) {
	cap := &envCapture{inner: sched.NewFIFO()}
	res := sim.New(drainTrace(xrand.New(11), 2500), cap, sim.Options{Tick: 30, SchedulerEvery: 30}).Run()
	if res.Unfinished != 0 {
		b.Fatalf("unfinished: %d", res.Unfinished)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := len(cap.env.Pending()); n != 0 {
			b.Fatalf("pending = %d on a drained cluster", n)
		}
	}
}

// The Options.Metrics=nil hot path must likewise cost one pointer check per
// phase: compare BenchmarkSimMetricsOff (should match BenchmarkSimTracingOff)
// against BenchmarkSimMetricsOn (live registry, atomic histogram cells).
func BenchmarkSimMetricsOff(b *testing.B) {
	benchSim(b, func() sim.Options {
		return sim.Options{Tick: 30, SchedulerEvery: 60}
	})
}

func BenchmarkSimMetricsOn(b *testing.B) {
	benchSim(b, func() sim.Options {
		return sim.Options{Tick: 30, SchedulerEvery: 60, Metrics: metrics.New()}
	})
}
