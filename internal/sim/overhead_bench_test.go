package sim_test

import (
	"testing"

	"repro/internal/dtrace"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// The Options.DecisionTrace=nil hot path must cost one pointer check —
// compare BenchmarkSimTracingOff against BenchmarkSimTracingOn (in-memory
// recorder) and BenchmarkSimInvariantsOn (per-tick checker):
//
//	go test ./internal/sim/ -run '^$' -bench BenchmarkSim -count 5
func benchSim(b *testing.B, mkOpts func() sim.Options) {
	tr := randomTrace(xrand.New(7), 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.New(tr, sched.NewFIFO(), mkOpts()).Run()
		if res.Violations > 0 {
			b.Fatalf("violations: %v", res.ViolationSamples)
		}
	}
}

func BenchmarkSimTracingOff(b *testing.B) {
	benchSim(b, func() sim.Options { return sim.Options{Tick: 30, SchedulerEvery: 60} })
}

func BenchmarkSimTracingOn(b *testing.B) {
	benchSim(b, func() sim.Options {
		rec := dtrace.New()
		rec.SetKeep(0)
		return sim.Options{Tick: 30, SchedulerEvery: 60, DecisionTrace: rec}
	})
}

func BenchmarkSimInvariantsOn(b *testing.B) {
	benchSim(b, func() sim.Options {
		return sim.Options{Tick: 30, SchedulerEvery: 60,
			Invariants: sim.NewInvariantChecker(false)}
	})
}
