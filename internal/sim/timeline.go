package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// Timeline recording: an optional per-job event log (start/preempt/finish,
// profiling transitions, packing) for post-hoc analysis — Gantt charts,
// per-VC occupancy plots, preemption storms. Enable with
// Options.RecordTimeline; the log is on Result.Timeline and exports as CSV.

// EventKind labels one timeline entry.
type EventKind string

// Timeline event kinds.
const (
	EvStart        EventKind = "start"         // exclusive placement
	EvStartShared  EventKind = "start-shared"  // packed placement
	EvStartElastic EventKind = "start-elastic" // elastic placement
	EvPreempt      EventKind = "preempt"
	EvProfileStart EventKind = "profile-start"
	EvProfileStop  EventKind = "profile-stop"
	EvFinish       EventKind = "finish"
	EvKill         EventKind = "kill" // fault-injection kill (internal/chaos)
)

// TimelineEvent is one entry of the log.
type TimelineEvent struct {
	Time  int64
	JobID int
	Kind  EventKind
	GPUs  int
	VC    string
}

// record appends an event when recording is enabled.
func (s *Sim) record(kind EventKind, jobID int, gpus int, vc string) {
	if !s.opts.RecordTimeline {
		return
	}
	s.timeline = append(s.timeline, TimelineEvent{
		Time: s.now, JobID: jobID, Kind: kind, GPUs: gpus, VC: vc,
	})
}

// WriteTimelineCSV exports a recorded timeline.
func WriteTimelineCSV(w io.Writer, events []TimelineEvent) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time", "job", "event", "gpus", "vc"}); err != nil {
		return err
	}
	for _, e := range events {
		rec := []string{
			strconv.FormatInt(e.Time, 10),
			strconv.Itoa(e.JobID),
			string(e.Kind),
			strconv.Itoa(e.GPUs),
			e.VC,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTimelineCSV parses a timeline written by WriteTimelineCSV.
func ReadTimelineCSV(r io.Reader) ([]TimelineEvent, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 || rows[0][0] != "time" {
		return nil, fmt.Errorf("sim: malformed timeline CSV")
	}
	out := make([]TimelineEvent, 0, len(rows)-1)
	for i, rec := range rows[1:] {
		if len(rec) != 5 {
			return nil, fmt.Errorf("sim: timeline row %d has %d fields", i+2, len(rec))
		}
		tm, err1 := strconv.ParseInt(rec[0], 10, 64)
		id, err2 := strconv.Atoi(rec[1])
		gpus, err3 := strconv.Atoi(rec[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("sim: timeline row %d unparseable", i+2)
		}
		out = append(out, TimelineEvent{Time: tm, JobID: id, Kind: EventKind(rec[2]), GPUs: gpus, VC: rec[4]})
	}
	return out, nil
}
