package sim

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/snap"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SnapshotKind is the envelope kind for a full simulator world.
const SnapshotKind = "sim-world"

// SchedulerState is implemented by schedulers that carry mutable policy
// state across ticks (LAS clocks, model caches, RNG positions). Stateless
// schedulers (FIFO, SJF, QSSF) simply don't implement it. SnapshotState
// must return a self-contained blob that RestoreState on a *fresh* instance
// of the same scheduler turns into the exact captured state.
type SchedulerState interface {
	SnapshotState() ([]byte, error)
	RestoreState([]byte) error
}

// jobSnap is one job's runtime state. Static identity (name, VC, demand,
// ground-truth duration) lives in the trace and is not repeated here; ID
// keys the snapshot back to the trace's job.
type jobSnap struct {
	ID               int              `json:"id"`
	State            job.State        `json:"state"`
	RemainingWork    float64          `json:"rem"`
	FirstStart       int64            `json:"first_start"`
	Finish           int64            `json:"finish"`
	RunTime          float64          `json:"run_time"`
	Preemptions      int              `json:"preemptions,omitempty"`
	ColdStart        float64          `json:"cold_start,omitempty"`
	AttainedGPUT     float64          `json:"attained_gput"`
	Profiled         bool             `json:"profiled,omitempty"`
	Profile          workload.Profile `json:"profile"`
	Restarts         int              `json:"restarts,omitempty"`
	NextEligible     int64            `json:"next_eligible,omitempty"`
	CheckpointedWork float64          `json:"ckpt_work,omitempty"`
}

// worldSnap is the complete serializable state of a Sim between two ticks.
// Deliberately NOT persisted (all reconstructible or replaceable): the trace
// itself (fingerprinted instead), the speeds map (a pure function of
// placement, rebuilt by recomputeSpeeds), the pending-annotation buffer
// (always empty at tick boundaries), retained dtrace events and the trace
// sink (the digest and counters carry the continuation), and the chaos
// straggler set (a pure function of seed and cluster shape).
type worldSnap struct {
	TraceFP   uint64 `json:"trace_fp"`
	SchedName string `json:"sched"`
	Tick      int64  `json:"tick"`

	Now         int64   `json:"now"`
	ArriveIdx   int     `json:"arrive_idx"`
	Finished    int     `json:"finished"`
	LastSched   int64   `json:"last_sched"`
	LastSample  int64   `json:"last_sample"`
	UtilSum     float64 `json:"util_sum"`
	MemSum      float64 `json:"mem_sum"`
	UtilSamples int     `json:"util_samples"`
	Dirty       bool    `json:"dirty,omitempty"`

	SharedStarts int     `json:"shared_starts,omitempty"`
	SharedGPUSum float64 `json:"shared_gpu_sum,omitempty"`
	NodeFailures int     `json:"node_failures,omitempty"`
	GPUFailures  int     `json:"gpu_failures,omitempty"`
	JobKills     int     `json:"job_kills,omitempty"`
	Requeues     int     `json:"requeues,omitempty"`
	Exhausted    int     `json:"exhausted,omitempty"`

	Jobs     []jobSnap          `json:"jobs"`
	Main     cluster.SnapState  `json:"main"`
	Profiler *cluster.SnapState `json:"profiler,omitempty"`

	ProfileStart map[int]int64   `json:"profile_start,omitempty"`
	Elastic      map[int]int     `json:"elastic,omitempty"`
	GenSpeed     map[int]float64 `json:"gen_speed,omitempty"`
	ChaosDown    map[int]int64   `json:"chaos_down,omitempty"`

	Recorder   *dtrace.State   `json:"recorder,omitempty"`
	InvCount   int             `json:"inv_count,omitempty"`
	InvSamples []string        `json:"inv_samples,omitempty"`
	Timeline   []TimelineEvent `json:"timeline,omitempty"`

	SchedState []byte `json:"sched_state,omitempty"`
}

// TraceFingerprint digests the identity of a trace — every job's static
// fields plus the cluster shape — so Resume can refuse a snapshot taken
// against a different world.
func TraceFingerprint(tr *trace.Trace) uint64 {
	var buf bytes.Buffer
	num := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		buf.Write(b[:])
	}
	num(int64(tr.Days))
	num(int64(tr.Cluster.GPUsPerNode))
	for _, vc := range tr.Cluster.VCs {
		buf.WriteString(vc.Name)
		num(int64(vc.Nodes))
	}
	for _, j := range tr.Jobs {
		num(int64(j.ID))
		num(j.Submit)
		num(j.Duration)
		num(int64(j.GPUs))
		buf.WriteString(j.VC)
		buf.WriteString(j.Name)
		buf.WriteString(j.User)
		num(int64(j.Config.Model))
		num(int64(j.Config.BatchSize))
		if j.Config.AMP {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	return snap.Digest(buf.Bytes())
}

// Snapshot serializes the complete world state into a versioned,
// digest-protected envelope. It must be called at a tick boundary (between
// Run/RunUntil steps) — the only point at which the engine's state is
// consistent and the pending-annotation buffer is empty.
func (s *Sim) Snapshot(w io.Writer) error {
	dto := worldSnap{
		TraceFP:      TraceFingerprint(s.tr),
		SchedName:    s.sched.Name(),
		Tick:         s.opts.Tick,
		Now:          s.now,
		ArriveIdx:    s.arriveIdx,
		Finished:     s.finished,
		LastSched:    s.lastSched,
		LastSample:   s.lastSample,
		UtilSum:      s.utilSum,
		MemSum:       s.memSum,
		UtilSamples:  s.utilSamples,
		Dirty:        s.dirty,
		SharedStarts: s.sharedStarts,
		SharedGPUSum: s.sharedGPUSum,
		NodeFailures: s.nodeFailures,
		GPUFailures:  s.gpuFailures,
		JobKills:     s.jobKills,
		Requeues:     s.requeues,
		Exhausted:    s.exhausted,
		Main:         s.main.SnapState(),
		Timeline:     s.timeline,
	}
	if s.profiler != nil {
		ps := s.profiler.SnapState()
		dto.Profiler = &ps
	}
	dto.Jobs = make([]jobSnap, len(s.jobs))
	for i, j := range s.jobs {
		dto.Jobs[i] = jobSnap{
			ID:               j.ID,
			State:            j.State,
			RemainingWork:    j.RemainingWork,
			FirstStart:       j.FirstStart,
			Finish:           j.Finish,
			RunTime:          j.RunTime,
			Preemptions:      j.Preemptions,
			ColdStart:        j.ColdStart,
			AttainedGPUT:     j.AttainedGPUT,
			Profiled:         j.Profiled,
			Profile:          j.Profile,
			Restarts:         j.Restarts,
			NextEligible:     j.NextEligible,
			CheckpointedWork: j.CheckpointedWork,
		}
	}
	if len(s.profileStart) > 0 {
		dto.ProfileStart = copyMap(s.profileStart)
	}
	if len(s.elastic) > 0 {
		dto.Elastic = copyMap(s.elastic)
	}
	if len(s.genSpeed) > 0 {
		dto.GenSpeed = copyMap(s.genSpeed)
	}
	if inj := s.opts.Chaos; inj != nil {
		dto.ChaosDown = inj.DownState()
	}
	if rec := s.opts.DecisionTrace; rec != nil {
		st := rec.SnapState()
		dto.Recorder = &st
	}
	if c := s.opts.Invariants; c != nil {
		dto.InvCount = c.count
		dto.InvSamples = append([]string(nil), c.samples...)
	}
	if ss, ok := s.sched.(SchedulerState); ok {
		blob, err := ss.SnapshotState()
		if err != nil {
			return fmt.Errorf("sim: snapshot scheduler %s: %w", s.sched.Name(), err)
		}
		dto.SchedState = blob
	}
	payload, err := json.Marshal(dto)
	if err != nil {
		return fmt.Errorf("sim: encode snapshot: %w", err)
	}
	return snap.WriteEnvelope(w, SnapshotKind, payload)
}

// Resume reconstructs a mid-run simulation from a snapshot. tr must be the
// identical trace the snapshot was taken against (verified by fingerprint);
// sched and opts are the caller's — pass the same scheduler type to continue
// the interrupted run bit-exactly, or a different one to fork a what-if.
//
// Scheduler policy state is restored only when sched.Name() matches the
// snapshot's scheduler; a different scheduler starts with fresh policy state
// over the restored world (that is the time-travel fork semantics). A
// matching stateful scheduler that cannot restore is an error, because the
// continuation would silently diverge.
func Resume(tr *trace.Trace, sched Scheduler, opts Options, r io.Reader) (*Sim, error) {
	kind, payload, err := snap.ReadEnvelope(r)
	if err != nil {
		return nil, err
	}
	if kind != SnapshotKind {
		return nil, fmt.Errorf("sim: snapshot kind %q, want %q", kind, SnapshotKind)
	}
	var dto worldSnap
	if err := json.Unmarshal(payload, &dto); err != nil {
		return nil, fmt.Errorf("sim: decode snapshot: %w", err)
	}
	if fp := TraceFingerprint(tr); fp != dto.TraceFP {
		return nil, fmt.Errorf("sim: snapshot was taken against a different trace (fingerprint %s, want %s)",
			snap.DigestString(dto.TraceFP), snap.DigestString(fp))
	}

	s := New(tr, sched, opts)
	if s.opts.Tick != dto.Tick {
		return nil, fmt.Errorf("sim: snapshot tick %ds differs from options tick %ds", dto.Tick, s.opts.Tick)
	}
	if len(dto.Jobs) != len(s.jobs) {
		return nil, fmt.Errorf("sim: snapshot has %d jobs, trace has %d", len(dto.Jobs), len(s.jobs))
	}

	s.now = dto.Now
	s.arriveIdx = dto.ArriveIdx
	s.finished = dto.Finished
	s.lastSched = dto.LastSched
	s.lastSample = dto.LastSample
	s.utilSum = dto.UtilSum
	s.memSum = dto.MemSum
	s.utilSamples = dto.UtilSamples
	s.dirty = dto.Dirty
	s.sharedStarts = dto.SharedStarts
	s.sharedGPUSum = dto.SharedGPUSum
	s.nodeFailures = dto.NodeFailures
	s.gpuFailures = dto.GPUFailures
	s.jobKills = dto.JobKills
	s.requeues = dto.Requeues
	s.exhausted = dto.Exhausted
	s.timeline = dto.Timeline

	for _, js := range dto.Jobs {
		j, ok := s.byID[js.ID]
		if !ok {
			return nil, fmt.Errorf("sim: snapshot job %d not in trace", js.ID)
		}
		j.State = js.State
		j.RemainingWork = js.RemainingWork
		j.FirstStart = js.FirstStart
		j.Finish = js.Finish
		j.RunTime = js.RunTime
		j.Preemptions = js.Preemptions
		j.ColdStart = js.ColdStart
		j.AttainedGPUT = js.AttainedGPUT
		j.Profiled = js.Profiled
		j.Profile = js.Profile
		j.Restarts = js.Restarts
		j.NextEligible = js.NextEligible
		j.CheckpointedWork = js.CheckpointedWork
		switch js.State {
		case job.Running:
			s.running[js.ID] = j
		case job.Profiling:
			if s.profiler == nil {
				return nil, fmt.Errorf("sim: snapshot job %d is profiling but options configure no profiler cluster", js.ID)
			}
			s.profiling[js.ID] = j
		}
	}

	// The live window and the backoff heap are pure functions of restored
	// job state — rebuild rather than serialize. Window order is identical
	// to a continuous run's: both append in index (= admission) order.
	for i := 0; i < s.arriveIdx; i++ {
		if !s.jobs[i].State.Terminal() {
			s.win.push(i)
		}
	}
	for _, j := range s.jobs[:s.arriveIdx] {
		if (j.State == job.Pending || j.State == job.Queued) && j.NextEligible > s.now {
			s.pushBackoff(j)
		}
	}

	if err := s.main.Restore(dto.Main); err != nil {
		return nil, fmt.Errorf("sim: restore main cluster: %w", err)
	}
	if dto.Profiler != nil {
		if s.profiler == nil {
			return nil, fmt.Errorf("sim: snapshot has a profiler cluster but options configure none (set ProfilerNodes)")
		}
		if err := s.profiler.Restore(*dto.Profiler); err != nil {
			return nil, fmt.Errorf("sim: restore profiler cluster: %w", err)
		}
	}

	s.profileStart = copyOrEmpty(dto.ProfileStart)
	s.genSpeed = copyOrEmpty(dto.GenSpeed)
	if len(dto.Elastic) > 0 {
		s.elastic = copyMap(dto.Elastic)
	}

	if len(dto.ChaosDown) > 0 && s.opts.Chaos == nil {
		return nil, fmt.Errorf("sim: snapshot has %d nodes under repair but options configure no chaos injector", len(dto.ChaosDown))
	}
	if s.opts.Chaos != nil {
		s.opts.Chaos.SetDownState(dto.ChaosDown)
	}
	if rec := s.opts.DecisionTrace; rec != nil && dto.Recorder != nil {
		rec.SetState(*dto.Recorder)
	}
	if c := s.opts.Invariants; c != nil {
		c.count = dto.InvCount
		c.samples = append([]string(nil), dto.InvSamples...)
	}

	if len(dto.SchedState) > 0 && sched.Name() == dto.SchedName {
		ss, ok := sched.(SchedulerState)
		if !ok {
			return nil, fmt.Errorf("sim: scheduler %s carries snapshot state but does not implement SchedulerState", dto.SchedName)
		}
		if err := ss.RestoreState(dto.SchedState); err != nil {
			return nil, fmt.Errorf("sim: restore scheduler %s: %w", dto.SchedName, err)
		}
	}

	// speeds is a pure function of placement + colocation + generation
	// factors, all just restored — rebuild rather than serialize.
	s.recomputeSpeeds()
	return s, nil
}

// Fork clones this simulation's complete current state into a new run under
// a (possibly different) scheduler — the warm-start primitive: simulate the
// shared prefix once, then fork per scheduler where the policies diverge.
func (s *Sim) Fork(sched Scheduler, opts Options) (*Sim, error) {
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		return nil, err
	}
	return Resume(s.tr, sched, opts, &buf)
}

func copyMap[K comparable, V any](m map[K]V) map[K]V {
	out := make(map[K]V, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyOrEmpty[K comparable, V any](m map[K]V) map[K]V {
	if m == nil {
		return make(map[K]V)
	}
	return copyMap(m)
}
