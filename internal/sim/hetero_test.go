package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fastPrefSched starts every job preferring fast nodes.
type fastPrefSched struct{ pref cluster.Preference }

func (f fastPrefSched) Name() string { return "test-hetero" }
func (f fastPrefSched) Tick(env *Env) {
	for _, j := range env.Pending() {
		env.StartExclusivePrefer(j, f.pref)
	}
}

func heteroTrace(jobs ...*job.Job) *trace.Trace {
	return &trace.Trace{
		Name: "hetero",
		Cluster: cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
			FastNodesFrac: 0.5, FastSpeed: 2.0,
			VCs: []cluster.VCSpec{{Name: "vc", Nodes: 2}}},
		Jobs: jobs,
		Days: 1,
	}
}

func TestFastNodeSpeedsUpJob(t *testing.T) {
	j := mkJob(1, 2, 0, 1000)
	res := New(heteroTrace(j), fastPrefSched{cluster.PreferFast}, Options{Tick: 10}).Run()
	if res.Unfinished != 0 {
		t.Fatal("unfinished")
	}
	// 2× generation → JCT ≈ 500.
	if jct := res.Jobs[0].JCT(); jct < 450 || jct > 600 {
		t.Fatalf("fast-node JCT = %d, want ≈500", jct)
	}
}

func TestSlowNodeRunsAtBaseSpeed(t *testing.T) {
	j := mkJob(1, 2, 0, 1000)
	res := New(heteroTrace(j), fastPrefSched{cluster.PreferSlow}, Options{Tick: 10}).Run()
	if jct := res.Jobs[0].JCT(); jct < 950 || jct > 1100 {
		t.Fatalf("slow-node JCT = %d, want ≈1000", jct)
	}
}

func TestDistributedJobPacedBySlowestNode(t *testing.T) {
	// A 16-GPU job spans both nodes (one fast, one slow): paced by the slow
	// one.
	j := mkJob(1, 16, 0, 1000)
	res := New(heteroTrace(j), fastPrefSched{cluster.PreferFast}, Options{Tick: 10}).Run()
	if jct := res.Jobs[0].JCT(); jct < 950 {
		t.Fatalf("mixed-generation job JCT = %d; must be paced by the slow node", jct)
	}
}

func TestFairnessMetrics(t *testing.T) {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	ja := job.New(1, "a", "alice", "vc", 8, 0, 1000, cfg)
	jb := job.New(2, "b", "bob", "vc", 8, 0, 1000, cfg)
	tr := mkTrace(ja, jb)
	res := New(tr, fifoLike{}, Options{Tick: 10}).Run()

	slow := res.UserSlowdowns()
	if len(slow) != 2 {
		t.Fatalf("users = %d", len(slow))
	}
	// Alice ran immediately (slowdown ≈1); Bob waited a full job (≈2).
	if slow["alice"] > 1.1 || slow["bob"] < 1.8 {
		t.Fatalf("slowdowns: %v", slow)
	}
	fi := res.FairnessIndex()
	if fi <= 0 || fi >= 1 {
		t.Fatalf("Jain index = %v, want strictly inside (0,1) for unequal users", fi)
	}
	user, worst := res.WorstUserSlowdown()
	if user != "bob" || worst < 1.8 {
		t.Fatalf("worst user = %s (%v)", user, worst)
	}
}

func TestFairnessIndexPerfectlyFair(t *testing.T) {
	cfg := workload.Config{Model: workload.PointNet, BatchSize: 64}
	ja := job.New(1, "a", "alice", "vc", 2, 0, 500, cfg)
	jb := job.New(2, "b", "bob", "vc", 2, 0, 500, cfg)
	tr := mkTrace(ja, jb)
	res := New(tr, fifoLike{}, Options{Tick: 10}).Run()
	// Both ran immediately on an empty cluster: equal slowdowns → index ≈ 1.
	if fi := res.FairnessIndex(); fi < 0.999 {
		t.Fatalf("Jain index = %v for identical users", fi)
	}
}
