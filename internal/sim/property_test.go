// Property tests: randomized workloads through every in-tree scheduler with
// the engine's InvariantChecker in fatal mode. The checker validates per-GPU
// capacity, sharing limits, lifecycle ordering and non-intrusive restart
// semantics after every tick, so any scheduler or engine bug that bends the
// cluster's physics fails loudly here.
//
// External test package: the schedulers (sched, core) import sim, so these
// tests cannot live in package sim.
package sim_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// propSpec is the property-test cluster: 2 VCs × 2 nodes × 8 GPUs.
func propSpec() cluster.Spec {
	return cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "vc0", Nodes: 2}, {Name: "vc1", Nodes: 2}}}
}

// randomTrace emits n jobs with adversarial variety: GPU demands from 1 to
// 16 (16 = distributed), durations from sub-tick to hours, bursty submits.
func randomTrace(r *xrand.RNG, n int) *trace.Trace {
	cfgs := workload.AllConfigs()
	demands := []int{1, 1, 2, 2, 4, 8, 16}
	vcs := []string{"vc0", "vc1"}
	jobs := make([]*job.Job, n)
	submit := int64(0)
	for i := 0; i < n; i++ {
		submit += r.Int63n(900) // bursty: many same-tick arrivals
		dur := 30 + r.Int63n(20000)
		cfg := cfgs[r.Intn(len(cfgs))]
		j := job.New(i+1, fmt.Sprintf("job-%d", i+1), "u", vcs[r.Intn(len(vcs))],
			demands[r.Intn(len(demands))], submit, dur, cfg)
		jobs[i] = j
	}
	return &trace.Trace{Name: "prop", Cluster: propSpec(), Jobs: jobs, Days: 1}
}

// propModels trains Lucid's models once for the whole test binary.
var propModels struct {
	sync.Once
	m   *core.Models
	err error
}

func lucidModels(t *testing.T) *core.Models {
	t.Helper()
	propModels.Do(func() {
		spec := trace.Venus()
		spec.Name = "prop"
		spec.Nodes = 4
		spec.NumVCs = 2
		spec.NumJobs = 600
		spec.Days = 3
		hist := trace.NewGenerator(spec).Emit(600)
		propModels.m, propModels.err = core.TrainModels(hist, core.DefaultConfig())
	})
	if propModels.err != nil {
		t.Fatal(propModels.err)
	}
	return propModels.m
}

// propSchedulers builds a fresh instance of every in-tree scheduler.
func propSchedulers(t *testing.T) []struct {
	name string
	mk   func() (sim.Scheduler, sim.Options)
} {
	opts := sim.Options{Tick: 30, SchedulerEvery: 60}
	lucidOpts := opts
	lucidOpts.ProfilerNodes = 1
	models := lucidModels(t)
	return []struct {
		name string
		mk   func() (sim.Scheduler, sim.Options)
	}{
		{"FIFO", func() (sim.Scheduler, sim.Options) { return sched.NewFIFO(), opts }},
		{"SJF", func() (sim.Scheduler, sim.Options) { return sched.NewSJF(), opts }},
		{"QSSF", func() (sim.Scheduler, sim.Options) { return sched.NewQSSF(sched.OracleEstimator{}), opts }},
		{"Tiresias", func() (sim.Scheduler, sim.Options) { return sched.NewTiresias(), opts }},
		{"Lucid", func() (sim.Scheduler, sim.Options) {
			return core.New(models.Clone(), core.DefaultConfig()), lucidOpts
		}},
	}
}

// TestSchedulerInvariants drives every scheduler over several randomized
// workloads with the fatal invariant checker armed.
func TestSchedulerInvariants(t *testing.T) {
	for _, ps := range propSchedulers(t) {
		ps := ps
		t.Run(ps.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				r := xrand.New(seed)
				tr := randomTrace(r, 120)
				s, opts := ps.mk()
				opts.Invariants = sim.NewInvariantChecker(true)
				res := sim.New(tr, s, opts).Run()
				if res.Violations > 0 {
					t.Fatalf("seed %d: %d violations: %v", seed, res.Violations, res.ViolationSamples)
				}
				if res.Unfinished > 0 {
					t.Logf("seed %d: %d jobs unfinished at horizon (allowed)", seed, res.Unfinished)
				}
			}
		})
	}
}

// TestEmptyTrace: a trace with no jobs must terminate immediately with
// clean aggregates, not hang or divide by zero.
func TestEmptyTrace(t *testing.T) {
	tr := &trace.Trace{Name: "empty", Cluster: propSpec(), Days: 1}
	opts := sim.Options{Tick: 30, Invariants: sim.NewInvariantChecker(true)}
	res := sim.New(tr, sched.NewFIFO(), opts).Run()
	if res.Violations > 0 || res.Unfinished != 0 || len(res.Jobs) != 0 {
		t.Fatalf("empty trace: %+v", res)
	}
}

// TestOverCapacityDemand: a job demanding more GPUs than the cluster has can
// never run; the engine must neither place it nor violate invariants, and
// the run must still terminate (at the horizon) with the job unfinished.
func TestOverCapacityDemand(t *testing.T) {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	over := job.New(1, "giant", "u", "vc0", 64, 0, 600, cfg) // cluster has 32
	ok := job.New(2, "small", "u", "vc0", 2, 0, 600, cfg)
	tr := &trace.Trace{Name: "over", Cluster: propSpec(),
		Jobs: []*job.Job{over, ok}, Days: 1}
	for _, ps := range propSchedulers(t) {
		s, opts := ps.mk()
		opts.MaxHorizon = 7200
		opts.Invariants = sim.NewInvariantChecker(true)
		res := sim.New(tr, s, opts).Run()
		if res.Violations > 0 {
			t.Fatalf("%s: violations: %v", ps.name, res.ViolationSamples)
		}
		for _, j := range res.Jobs {
			if j.ID == 1 && j.State == job.Finished {
				t.Fatalf("%s: 64-GPU job finished on a 32-GPU cluster", ps.name)
			}
		}
	}
}

// TestZeroGPUDemand: a malformed zero-GPU job must not corrupt cluster
// accounting whatever the scheduler does with it.
func TestZeroGPUDemand(t *testing.T) {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	zero := job.New(1, "zero", "u", "vc0", 0, 0, 600, cfg)
	ok := job.New(2, "small", "u", "vc0", 1, 0, 600, cfg)
	tr := &trace.Trace{Name: "zero", Cluster: propSpec(),
		Jobs: []*job.Job{zero, ok}, Days: 1}
	for _, ps := range propSchedulers(t) {
		s, opts := ps.mk()
		opts.MaxHorizon = 7200
		opts.Invariants = sim.NewInvariantChecker(true)
		res := sim.New(tr, s, opts).Run()
		if res.Violations > 0 {
			t.Fatalf("%s: violations: %v", ps.name, res.ViolationSamples)
		}
	}
}

// TestArrivalAfterHorizon: a job submitted beyond MaxHorizon must never
// enter the system — it stays Pending with no start and no allocation.
func TestArrivalAfterHorizon(t *testing.T) {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	early := job.New(1, "early", "u", "vc0", 1, 0, 300, cfg)
	late := job.New(2, "late", "u", "vc0", 1, 50_000, 300, cfg)
	tr := &trace.Trace{Name: "late", Cluster: propSpec(),
		Jobs: []*job.Job{early, late}, Days: 1}
	opts := sim.Options{Tick: 30, MaxHorizon: 3600,
		Invariants: sim.NewInvariantChecker(true)}
	res := sim.New(tr, sched.NewFIFO(), opts).Run()
	if res.Violations > 0 {
		t.Fatalf("violations: %v", res.ViolationSamples)
	}
	if res.Unfinished != 1 {
		t.Fatalf("unfinished = %d, want 1 (the post-horizon job)", res.Unfinished)
	}
	for _, j := range res.Jobs {
		if j.ID == 2 && (j.State != job.Pending || j.FirstStart >= 0) {
			t.Fatalf("post-horizon job entered the system: %+v", j)
		}
	}
}
