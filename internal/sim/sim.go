// Package sim is the trace-driven GPU-cluster simulator behind every
// large-scale experiment in the paper's §4.3–§4.7 (the authors likewise
// derive all large-scale results from a simulator whose fidelity §4.2
// validates — our Table 3 experiment performs the same validation between a
// 1-second fine-grained engine and the coarse event loop used at scale).
//
// The engine advances in fixed ticks. Each tick it (1) integrates the
// progress of running jobs under the colocation interference model,
// (2) retires finished jobs with sub-tick completion timestamps,
// (3) releases newly submitted jobs to the scheduler, (4) invokes the
// scheduler, and (5) recomputes execution speeds from the resulting
// placement. Schedulers drive placement exclusively through Env, which also
// exposes the decoupled profiling cluster Lucid's Non-intrusive Job Profiler
// manages (§3.2).
//
// Non-intrusiveness is a simulation rule, not just a slogan: a job moved off
// the profiling cluster restarts from zero progress (no checkpoints exist
// unless a scheduler is explicitly intrusive), whereas the intrusive
// Preempt used by Tiresias checkpoints remaining work at the cost of a
// cold-start overhead on resume.
package sim

import (
	"sort"

	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Scheduler is the policy interface. Tick is invoked whenever cluster state
// may have changed (arrivals, completions) and at least every
// Options.SchedulerEvery seconds.
type Scheduler interface {
	Name() string
	Tick(env *Env)
}

// Options tunes the engine.
type Options struct {
	// Engine selects the advancement strategy. EngineTick (the default)
	// steps every fixed tick; EngineEvent jumps the clock between wake-up
	// events (arrivals, predicted completions, backoff expiries, chaos
	// fires, cadence and sampling timers) and replays the skipped ticks'
	// arithmetic in closed form, reproducing tick-engine results
	// bit-identically (see engine.go).
	Engine EngineKind

	Tick           int64 // seconds per step (default 30)
	SchedulerEvery int64 // max seconds between scheduler invocations (default 300)
	SampleEvery    int64 // utilization sampling period (default 600)
	MaxHorizon     int64 // hard stop, seconds (default 6× the trace window)

	// ProfilerNodes adds a decoupled profiling cluster of this many 8-GPU
	// nodes (0 = none). Only Lucid uses it.
	ProfilerNodes int

	// RecordTimeline keeps a per-job event log on the Result (see
	// timeline.go). Off by default: large runs emit millions of events.
	RecordTimeline bool

	// DecisionTrace records every scheduling decision — engine state
	// transitions plus scheduler-annotated reasoning and counterfactuals —
	// on the given flight recorder (see internal/dtrace). Nil (the
	// default) disables tracing; the engine then pays only a nil check.
	DecisionTrace *dtrace.Recorder

	// Invariants validates the engine's physical invariants after every
	// tick (see InvariantChecker). Nil (the default) disables checking;
	// violations otherwise surface on Result.Violations.
	Invariants *InvariantChecker

	// Chaos injects node/GPU/job faults each tick (see internal/chaos and
	// chaos.go in this package). Nil (the default) disables injection; the
	// engine then pays only a nil check. Injectors hold per-run mutable
	// state — give every run its own.
	Chaos *chaos.Injector

	// Metrics records per-tick phase timings and scheduler-decision latency
	// histograms on the given registry (see metrics.go in this package). Nil
	// (the default) disables recording; the engine then pays only nil
	// checks. Timings are observational only — they never alter simulation
	// state, so decision-trace digests are identical with metrics on or off.
	Metrics *metrics.Registry
}

func (o Options) normalized(traceDays int) Options {
	if o.Tick <= 0 {
		o.Tick = 30
	}
	if o.SchedulerEvery <= 0 {
		o.SchedulerEvery = 300
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 600
	}
	if o.MaxHorizon <= 0 {
		days := traceDays
		if days <= 0 {
			days = 1
		}
		o.MaxHorizon = int64(days) * 86400 * 6
	}
	return o
}

// Sim is one simulation run.
type Sim struct {
	opts     Options
	tr       *trace.Trace // retained for Snapshot fingerprinting and Fork
	jobs     []*job.Job
	byID     map[int]*job.Job
	main     *cluster.Cluster
	profiler *cluster.Cluster
	sched    Scheduler

	now        int64
	arriveIdx  int
	win        *liveWindow      // submitted non-terminal jobs (Pending scan window)
	idxOf      map[int]int      // job ID → index in jobs (window maintenance)
	backoff    evheap           // requeue-backoff expiry ticks (chaos wake-ups)
	running    map[int]*job.Job // on the main cluster
	profiling  map[int]*job.Job // on the profiling cluster
	speeds     map[int]float64
	finished   int
	lastSched  int64
	lastSample int64

	utilSum, memSum float64
	utilSamples     int

	profileStart map[int]int64 // when each job started its current profiling run

	// dirty records completions/preemptions since the last scheduler call,
	// forcing an extra invocation so freed capacity is reused promptly.
	dirty bool

	// elastic maps job ID → current GPU allocation for elastically scheduled
	// jobs (Pollux baseline); see elastic.go.
	elastic map[int]int

	// genSpeed caches each running job's GPU-generation speed factor (the
	// minimum across its nodes — a distributed job goes at its slowest
	// worker's pace). 1.0 on homogeneous clusters.
	genSpeed map[int]float64

	// timeline is the optional event log (Options.RecordTimeline).
	timeline []TimelineEvent

	// pendAnn holds scheduler-provided explanations awaiting their engine
	// event (decision tracing only; see dtrace.go).
	pendAnn map[int]annotation

	// sharedStarts counts successful packed placements, and sharedGPUSum
	// accumulates shared-GPU counts at sampling instants (packing-efficacy
	// metrics for the §4.3 utilization claims).
	sharedStarts int
	sharedGPUSum float64

	// Fault-injection counters (Options.Chaos; see chaos.go).
	nodeFailures int
	gpuFailures  int
	jobKills     int
	requeues     int
	exhausted    int

	// met holds the pre-resolved engine instruments (Options.Metrics; see
	// metrics.go). Nil when metrics are off.
	met *simMetrics

	// Event-engine state (Options.Engine == EngineEvent; see engine.go):
	// predicted completion ticks, their validity bookkeeping, and a
	// placement-generation counter bumped on every (re)start so stale
	// predictions are recognized even across same-tick kill-and-restart.
	completions evheap
	preds       map[int]predInfo
	jobGen      map[int]uint64
	predSeq     uint64
}

// New prepares a run of the scheduler over the trace.
func New(tr *trace.Trace, sched Scheduler, opts Options) *Sim {
	opts = opts.normalized(tr.Days)
	s := &Sim{
		opts:         opts,
		tr:           tr,
		main:         cluster.New(tr.Cluster),
		sched:        sched,
		running:      make(map[int]*job.Job),
		profiling:    make(map[int]*job.Job),
		speeds:       make(map[int]float64),
		byID:         make(map[int]*job.Job),
		profileStart: make(map[int]int64),
		genSpeed:     make(map[int]float64),
		met:          newSimMetrics(opts.Metrics),
		preds:        make(map[int]predInfo),
		jobGen:       make(map[int]uint64),
	}
	if opts.ProfilerNodes > 0 {
		s.profiler = cluster.New(cluster.Spec{
			GPUsPerNode: 8,
			GPUMemMB:    workload.GPUMemMBCap,
			VCs:         []cluster.VCSpec{{Name: "profiler", Nodes: opts.ProfilerNodes}},
		})
	}
	// Fresh runtime state per run: clone the jobs so a trace can be replayed
	// under several schedulers.
	s.jobs = make([]*job.Job, len(tr.Jobs))
	s.win = newLiveWindow(len(tr.Jobs))
	s.idxOf = make(map[int]int, len(tr.Jobs))
	for i, j := range tr.Jobs {
		s.idxOf[j.ID] = i
		cp := *j
		cp.State = job.Pending
		cp.RemainingWork = float64(j.Duration)
		cp.FirstStart = -1
		cp.Finish = -1
		cp.RunTime = 0
		cp.Preemptions = 0
		cp.ColdStart = 0
		cp.AttainedGPUT = 0
		cp.Profiled = false
		cp.Restarts = 0
		cp.NextEligible = 0
		cp.CheckpointedWork = 0
		s.jobs[i] = &cp
		s.byID[cp.ID] = &cp
	}
	if opts.Chaos != nil {
		// (Re)bind resets the injector's mutable fault state, so a reused
		// injector replays the identical schedule on a fresh run.
		opts.Chaos.Bind(s.main.NumNodes(), s.main.Spec().GPUsPerNode)
	}
	return s
}

// live reports whether the simulation still has work within the horizon.
func (s *Sim) live() bool {
	return s.finished < len(s.jobs) && s.now < s.opts.MaxHorizon
}

// stepTick executes exactly one tick of the engine loop. Run, RunUntil and
// a resumed run all drive this same body, so a snapshot taken between ticks
// continues with the identical decision sequence an uninterrupted run would
// have produced. force bypasses the scheduler gate (StepOnce's semantics:
// benchmark callers time exactly one decision, so one must happen).
func (s *Sim) stepTick(env *Env, force bool) {
	m := s.met
	s.now += s.opts.Tick

	t := m.time(timeAdvance)
	s.advance(float64(s.opts.Tick))
	t.Stop()

	t = m.time(timeChaos)
	s.applyChaos()
	t.Stop()

	arrived := s.admitArrivals()
	// A requeue backoff expiring counts as an arrival: the job just became
	// schedulable, so the scheduler must run now, not at the next cadence
	// boundary with the capacity sitting idle.
	if s.drainBackoff() {
		arrived = true
	}
	if force || arrived || s.now-s.lastSched >= s.opts.SchedulerEvery || s.dirty {
		s.dirty = false
		t = m.time(timeDecide)
		s.sched.Tick(env)
		t.Stop()
		if m != nil {
			m.schedRuns.Inc()
			s.observeSchedState()
		}
		s.lastSched = s.now
		// Unconsumed annotations would mislabel a later, unrelated
		// event; a scheduler round's explanations die with the round.
		if len(s.pendAnn) > 0 {
			clear(s.pendAnn)
		}
	}

	t = m.time(timeSpeeds)
	s.recomputeSpeeds()
	t.Stop()
	if m != nil {
		m.ticks.Inc()
	}
	s.checkInvariants()

	if s.now-s.lastSample >= s.opts.SampleEvery {
		s.sample()
		s.lastSample = s.now
	}
}

// Run executes the simulation to completion (all jobs finished) or the
// horizon, returning aggregate metrics.
func (s *Sim) Run() *Result {
	if s.opts.Engine == EngineEvent {
		return s.runEvent()
	}
	env := &Env{s: s}
	for s.live() {
		s.stepTick(env, false)
	}
	return s.collect()
}

// RunUntil executes ticks until the clock reaches at least t (or the run
// completes) and reports whether the simulation is done. It leaves the
// engine at a tick boundary — the consistent point Snapshot serializes —
// after which Run picks up exactly where an uninterrupted run would be.
func (s *Sim) RunUntil(t int64) bool {
	if s.opts.Engine == EngineEvent {
		return s.runEventUntil(t)
	}
	env := &Env{s: s}
	for s.live() && s.now < t {
		s.stepTick(env, false)
	}
	return !s.live()
}

// advance integrates dt seconds of execution for running and profiling
// jobs, retiring completions.
func (s *Sim) advance(dt float64) {
	s.advanceSet(s.running, s.main, dt)
	if s.profiler != nil {
		s.advanceSet(s.profiling, s.profiler, dt)
	}
}

func (s *Sim) advanceSet(set map[int]*job.Job, cl *cluster.Cluster, dt float64) {
	var done []*job.Job
	for id, j := range set {
		eff := dt
		if j.ColdStart > 0 {
			// Checkpoint-restore overhead: wall clock passes, no progress —
			// but the GPUs stay occupied, so attained service accrues just
			// like run time does. Tiresias's LAS priority must see the same
			// GPU-time the cluster actually charged, or the jobs it preempts
			// (the only ones that pay cold starts) get undercounted and jump
			// the queue on resume.
			if j.ColdStart >= eff {
				j.ColdStart -= eff
				j.RunTime += dt
				j.AttainedGPUT += dt * float64(j.GPUs)
				continue
			}
			eff -= j.ColdStart
			j.ColdStart = 0
		}
		speed := s.speeds[id]
		if speed <= 0 {
			speed = 1
		}
		progress := speed * eff
		j.RunTime += dt
		j.AttainedGPUT += dt * float64(j.GPUs)
		if progress >= j.RemainingWork {
			// Sub-tick completion timestamp.
			used := j.RemainingWork / speed
			j.Finish = s.now - int64(dt) + int64(dt-eff+used+0.5)
			j.RemainingWork = 0
			done = append(done, j)
			continue
		}
		j.RemainingWork -= progress
	}
	// done was collected in map-iteration order; retire in ID order so the
	// event stream (and therefore the decision-trace digest) is identical
	// across same-seed runs.
	sort.Slice(done, func(i, k int) bool { return done[i].ID < done[k].ID })
	retireReason := "finished"
	if cl == s.profiler {
		retireReason = "finished-while-profiling"
	}
	for _, j := range done {
		cl.Free(j.ID)
		delete(set, j.ID)
		delete(s.speeds, j.ID)
		delete(s.profileStart, j.ID)
		delete(s.elastic, j.ID)
		delete(s.genSpeed, j.ID)
		j.State = job.Finished
		s.win.remove(s.idxOf[j.ID])
		s.record(EvFinish, j.ID, j.GPUs, j.VC)
		s.trace(dtrace.ActRetire, j, retireReason, 0)
		s.finished++
		s.dirty = true
	}
}

// admitArrivals releases jobs whose submit time has come.
func (s *Sim) admitArrivals() bool {
	any := false
	for s.arriveIdx < len(s.jobs) && s.jobs[s.arriveIdx].Submit <= s.now {
		// State stays Pending; schedulers decide what Pending means.
		s.trace(dtrace.ActRelease, s.jobs[s.arriveIdx], "submitted", 0)
		s.win.push(s.arriveIdx)
		s.arriveIdx++
		any = true
	}
	return any
}

// pushBackoff registers a future wake-up at the first tick on which the
// job's requeue backoff will have elapsed. Without it, a job whose
// NextEligible expires between scheduler rounds sits invisible-but-eligible
// until the next cadence boundary even with free capacity (the satellite-2
// bug); with it, expiry gates a scheduler round exactly like an arrival.
func (s *Sim) pushBackoff(j *job.Job) {
	at := firstTickGE(j.NextEligible, s.opts.Tick)
	s.backoff.push(tickEvent{at: at, id: j.ID})
}

// firstTickGE returns the first multiple of tick at or after t.
func firstTickGE(t, tick int64) int64 {
	return (t + tick - 1) / tick * tick
}

// drainBackoff pops every backoff entry due by now and reports whether any
// of them woke a job that is actually schedulable (stale entries — the job
// re-ran and died again, or turned terminal — are discarded).
func (s *Sim) drainBackoff() bool {
	woke := false
	for {
		top, ok := s.backoff.peek()
		if !ok || top.at > s.now {
			return woke
		}
		s.backoff.pop()
		j := s.byID[top.id]
		if (j.State == job.Pending || j.State == job.Queued) && j.NextEligible <= s.now {
			woke = true
		}
	}
}

// recomputeSpeeds refreshes execution speed for every main-cluster job from
// its current colocation, and pins profiling jobs at full speed (the
// profiler allocates exclusively).
func (s *Sim) recomputeSpeeds() {
	for id, j := range s.running {
		gen := s.genSpeed[id]
		if gen <= 0 {
			gen = 1
		}
		if alloc, ok := s.elastic[id]; ok {
			s.speeds[id] = elasticSpeed(alloc, j.GPUs) * gen
			continue
		}
		partner := s.main.PartnerOf(id)
		sp := 1.0
		if partner >= 0 {
			pj := s.byID[partner]
			sa, _ := workload.PairSpeed(j.Config, pj.Config)
			sp = sa
			if j.Distributed() {
				sp *= workload.CrossNodePenalty
			}
		}
		s.speeds[id] = sp * gen
	}
	for id := range s.profiling {
		s.speeds[id] = 1
	}
}

// sample records cluster-wide GPU utilization and memory occupancy from the
// profiles of resident jobs.
func (s *Sim) sample() {
	total := float64(s.main.TotalGPUs())
	if total == 0 {
		return
	}
	var util, mem float64
	// Accumulate in sorted ID order: float addition is not associative, so
	// map-iteration order would make the low bits of the utilization
	// metrics differ between same-seed runs.
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		j := s.running[id]
		p := j.Config.Profile()
		sp := s.speeds[id]
		n := float64(j.GPUs)
		util += p.GPUUtil * sp * n
		mem += p.GPUMemMB * n
	}
	maxUtil := total * 100
	if util > maxUtil {
		util = maxUtil
	}
	// Clamp memory like utilization: packed jobs that were placed unprofiled
	// bypass the allocator's memory guard (it reserves 0 for them), so their
	// true profile footprints can sum past physical capacity. The hardware
	// cannot hold more than 100% — without the clamp AvgGPUMemPct drifts
	// above it under packing-heavy schedules.
	maxMem := total * workload.GPUMemMBCap
	if mem > maxMem {
		mem = maxMem
	}
	s.utilSum += util / maxUtil * 100
	s.memSum += mem / maxMem * 100
	_, shared := s.main.Occupancy()
	s.sharedGPUSum += float64(shared)
	s.utilSamples++
}

// Now returns the simulation clock (exposed for white-box tests).
func (s *Sim) Now() int64 { return s.now }

// Jobs exposes the simulation's job set (shared, not a copy) so parity
// tooling and tests can inspect mid-run state between RunUntil calls.
// Callers must treat it as read-only.
func (s *Sim) Jobs() []*job.Job { return s.jobs }

// StepOnce advances exactly one tick, invoking the scheduler once — used by
// the Figure 10a latency benchmark to time a single scheduling decision
// over a controlled queue. It delegates to the real engine body with the
// scheduler gate forced open; a hand-rolled copy here had drifted (it never
// cleared dirty, skipped the ticks metric and the sampling cadence), so
// snapshots taken after it diverged from a genuine run.
func (s *Sim) StepOnce() {
	s.stepTick(&Env{s: s}, true)
}

// Env is the scheduler's handle on the simulation.
type Env struct {
	s *Sim
}

// Now returns the simulation time in seconds.
func (e *Env) Now() int64 { return e.s.now }

// LastSchedulerRun returns the time of the most recent scheduler round
// (including no-op cadence rounds the event engine certified and elided).
// EventAware implementations use it to decide whether a past decision time
// is still pending: a time-gated action (a preemption quantum expiring, a
// starvation promotion crossing) stays due until a round has run at or after
// it — the simulation clock passing it is not enough, because between two
// cadence points the clock can advance on unrelated wake-ups (sampling,
// arrivals in other VCs) without the scheduler ever acting.
func (e *Env) LastSchedulerRun() int64 { return e.s.lastSched }

// Pending returns submitted jobs not yet running or finished, in
// (submit, id) order. It includes both Pending (never profiled) and Queued
// (profiled, awaiting the main cluster) jobs; schedulers distinguish by
// State.
func (e *Env) Pending() []*job.Job {
	s := e.s
	// The live window holds exactly the submitted non-terminal jobs in
	// submit order (see window.go), so this scan is O(live jobs) no matter
	// how out-of-order completions land — the old terminal-prefix cursor
	// stalled on the first long-running job and degraded to O(total jobs).
	var out []*job.Job
	for i := s.win.head; i >= 0; i = s.win.next[i] {
		j := s.jobs[i]
		// NextEligible hides fault-killed jobs until their requeue backoff
		// elapses (always 0 without chaos).
		if (j.State == job.Pending || j.State == job.Queued) && j.NextEligible <= s.now {
			out = append(out, j)
		}
	}
	return out
}

// Running returns jobs executing on the main cluster, in id order.
func (e *Env) Running() []*job.Job {
	out := make([]*job.Job, 0, len(e.s.running))
	for _, j := range e.s.running {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Profiling returns jobs on the profiling cluster, in id order.
func (e *Env) Profiling() []*job.Job {
	out := make([]*job.Job, 0, len(e.s.profiling))
	for _, j := range e.s.profiling {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Cluster exposes the main cluster for capacity queries.
func (e *Env) Cluster() *cluster.Cluster { return e.s.main }

// ProfilerCluster exposes the profiling cluster (nil if not configured).
func (e *Env) ProfilerCluster() *cluster.Cluster { return e.s.profiler }

// StartExclusive places the job consolidated-and-exclusive on the main
// cluster. Returns false if capacity is lacking.
func (e *Env) StartExclusive(j *job.Job) bool {
	return e.StartExclusivePrefer(j, cluster.PreferAny)
}

// StartExclusivePrefer is StartExclusive with a GPU-generation preference —
// the §6 heterogeneity-aware placement extension.
func (e *Env) StartExclusivePrefer(j *job.Job, pref cluster.Preference) bool {
	if reason, bad := unplaceable(j); bad {
		e.s.trace(dtrace.ActPlaceFail, j, reason, 0)
		return false
	}
	mem := 0.0
	if j.Profiled {
		mem = j.Profile.GPUMemMB
	}
	gpus, err := e.s.main.AllocatePrefer(j.ID, j.VC, j.GPUs, mem, pref)
	if err != nil {
		e.s.trace(dtrace.ActPlaceFail, j, "no-capacity", 0)
		return false
	}
	e.s.recordGenSpeed(j.ID, gpus)
	e.s.startOn(j, e.s.running)
	e.s.record(EvStart, j.ID, j.GPUs, j.VC)
	e.s.trace(dtrace.ActPlace, j, placeReason(pref), 0)
	return true
}

// unplaceable rejects every state a placement request must not act on: only
// Pending and Queued jobs may be (re)started on the main cluster. The guard
// previously checked Running||Finished alone, which let a buggy scheduler
// resurrect a terminal Failed job — its retries were exhausted for good — or
// double-place a job currently on the profiling cluster, corrupting both
// clusters' accounting.
func unplaceable(j *job.Job) (string, bool) {
	switch {
	case j.State == job.Running:
		return "already-placed", true
	case j.State.Terminal():
		return "terminal-state", true
	case j.State == job.Profiling:
		return "still-profiling", true
	}
	return "", false
}

// placeReason labels an exclusive placement with its generation
// preference.
func placeReason(pref cluster.Preference) string {
	switch pref {
	case cluster.PreferFast:
		return "exclusive-prefer-fast"
	case cluster.PreferSlow:
		return "exclusive-prefer-slow"
	default:
		return "exclusive"
	}
}

// recordGenSpeed caches the slowest generation factor across the job's
// placement.
func (s *Sim) recordGenSpeed(jobID int, gpus []cluster.GPUID) {
	min := 0.0
	for _, g := range gpus {
		sp := s.main.SpeedOf(g)
		if inj := s.opts.Chaos; inj != nil {
			// Straggler nodes run degraded; like the generation factor, the
			// whole job goes at its slowest worker's pace.
			sp *= inj.SpeedFactor(g.Node)
		}
		if min == 0 || sp < min {
			min = sp
		}
	}
	if min <= 0 {
		min = 1
	}
	s.genSpeed[jobID] = min
}

// StartShared packs the job onto partner's GPUs. The caller is responsible
// for policy (GSS budgets, equal demand, …); the cluster enforces only the
// two-job cap and the memory guard.
func (e *Env) StartShared(j, partner *job.Job) bool {
	if reason, bad := unplaceable(j); bad {
		e.s.trace(dtrace.ActPackReject, j, reason, partner.ID)
		return false
	}
	if partner.State != job.Running {
		e.s.trace(dtrace.ActPackReject, j, "partner-not-running", partner.ID)
		return false
	}
	if j.GPUs != partner.GPUs {
		e.s.trace(dtrace.ActPackReject, j, "demand-mismatch", partner.ID)
		return false
	}
	mem := 0.0
	if j.Profiled {
		mem = j.Profile.GPUMemMB
	}
	gpus, err := e.s.main.AllocateShared(j.ID, partner.ID, mem)
	if err != nil {
		e.s.trace(dtrace.ActPackReject, j, "no-share-capacity", partner.ID)
		return false
	}
	e.s.recordGenSpeed(j.ID, gpus)
	e.s.startOn(j, e.s.running)
	e.s.sharedStarts++
	e.s.record(EvStartShared, j.ID, j.GPUs, j.VC)
	e.s.trace(dtrace.ActPack, j, "packed", partner.ID)
	return true
}

func (s *Sim) startOn(j *job.Job, set map[int]*job.Job) {
	j.State = job.Running
	if j.FirstStart < 0 {
		j.FirstStart = s.now
	}
	set[j.ID] = j
	s.speeds[j.ID] = 1
	s.jobGen[j.ID]++ // new trajectory: any cached completion prediction is stale
}

// Preempt checkpoints a running job back to the queue (intrusive — Tiresias
// only): remaining work is preserved, and overheadSec of cold-start cost is
// charged when it next runs. Per §4.8 the paper measures 62 s per
// preemption.
func (e *Env) Preempt(j *job.Job, overheadSec float64) bool {
	if j.State != job.Running {
		return false
	}
	e.s.main.Free(j.ID)
	delete(e.s.running, j.ID)
	delete(e.s.speeds, j.ID)
	delete(e.s.elastic, j.ID)
	delete(e.s.genSpeed, j.ID)
	j.State = job.Pending
	j.Preemptions++
	j.ColdStart += overheadSec
	// The checkpoint is durable: if a fault later kills this job, it resumes
	// from here rather than from zero (see killJob in chaos.go).
	j.CheckpointedWork = float64(j.Duration) - j.RemainingWork
	e.s.record(EvPreempt, j.ID, j.GPUs, j.VC)
	e.s.trace(dtrace.ActPreempt, j, "checkpointed", 0)
	e.s.dirty = true
	return true
}

// StartProfiling places the job exclusively on the profiling cluster.
func (e *Env) StartProfiling(j *job.Job) bool {
	if e.s.profiler == nil || j.State != job.Pending {
		return false
	}
	if _, err := e.s.profiler.Allocate(j.ID, "profiler", j.GPUs, 0); err != nil {
		return false
	}
	j.State = job.Profiling
	if j.FirstStart < 0 {
		j.FirstStart = e.s.now
	}
	e.s.profiling[j.ID] = j
	e.s.speeds[j.ID] = 1
	e.s.jobGen[j.ID]++ // new trajectory: stale any cached completion prediction
	e.s.profileStart[j.ID] = e.s.now
	e.s.record(EvProfileStart, j.ID, j.GPUs, j.VC)
	e.s.trace(dtrace.ActProfileStart, j, "admitted", 0)
	return true
}

// ProfilingElapsed returns seconds the job has spent in its current
// profiling run (0 if not profiling).
func (e *Env) ProfilingElapsed(j *job.Job) int64 {
	start, ok := e.s.profileStart[j.ID]
	if !ok {
		return 0
	}
	return e.s.now - start
}

// StopProfiling ends the job's profiling run: the measured profile is
// attached, the job restarts from zero progress (non-intrusive — no
// checkpoint exists), and it joins the main queue as Queued.
func (e *Env) StopProfiling(j *job.Job) {
	if j.State != job.Profiling {
		return
	}
	e.s.profiler.Free(j.ID)
	delete(e.s.profiling, j.ID)
	delete(e.s.speeds, j.ID)
	delete(e.s.profileStart, j.ID)
	j.State = job.Queued
	j.Profiled = true
	j.Profile = j.Config.Profile()
	j.RemainingWork = float64(j.Duration) // restart: profiling work is lost
	// Restart-from-zero also voids any checkpoint debt: a job preempted
	// before profiling would otherwise pay a phantom checkpoint-restore on
	// its next start even though no checkpoint exists anymore.
	j.ColdStart = 0
	j.CheckpointedWork = 0
	e.s.record(EvProfileStop, j.ID, j.GPUs, j.VC)
	e.s.trace(dtrace.ActProfileStop, j, "restart-from-zero", 0)
	e.s.dirty = true
}

// AllJobs returns every job that has been submitted so far (any state), in
// submit order. The Update Engine mines this for completed-job history.
func (e *Env) AllJobs() []*job.Job {
	return e.s.jobs[:e.s.arriveIdx]
}

// Admit moves a Pending job straight to Queued, bypassing the profiler —
// used for jobs above the profiler's scale limit (§3.2) after their metrics
// are observed on the fly.
func (e *Env) Admit(j *job.Job) {
	if j.State == job.Pending {
		j.State = job.Queued
	}
}

// ObserveOnTheFly attaches the job's profile without a profiling run —
// §3.2: "Lucid collects the metrics of those large jobs on the fly". The
// simulator grants the measurement immediately; in reality it converges
// within the first minutes of execution.
func (e *Env) ObserveOnTheFly(j *job.Job) {
	j.Profiled = true
	j.Profile = j.Config.Profile()
}
