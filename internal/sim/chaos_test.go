package sim

import (
	"testing"

	"repro/internal/chaos"
	"repro/internal/dtrace"
	"repro/internal/job"
)

// quietSpec is a chaos spec with every fault rate zeroed — the injector is
// armed (so killJob has recovery parameters) but fires nothing on its own,
// letting tests inject kills at exact moments.
func quietSpec() chaos.Spec {
	s := chaos.DefaultSpec()
	s.NodeFailPerDay, s.GPUFailPerDay, s.JobCrashPerDay = 0, 0, 0
	s.MaxRetries = -1
	s.BackoffSec = 0
	return s
}

func newChaosSim(t *testing.T, spec chaos.Spec, jobs ...*job.Job) *Sim {
	t.Helper()
	tr := mkTrace(jobs...)
	return New(tr, fifoLike{}, Options{Tick: 10, SchedulerEvery: 10,
		Chaos: chaos.NewInjector(spec), Invariants: NewInvariantChecker(true)})
}

// TestChaosKillVoidsPhantomColdStart is the Preempt-mirror of the
// StopProfiling fix: Preempt charges ColdStart unconditionally, so a job
// preempted before making any checkpointable progress carries restore debt
// with an empty checkpoint. When a fault then kills it, it restarts from
// zero — the debt must be voided, not paid a second time for a checkpoint
// that never existed.
func TestChaosKillVoidsPhantomColdStart(t *testing.T) {
	s := newChaosSim(t, quietSpec(), mkJob(1, 2, 0, 1000))
	env := &Env{s: s}
	s.StepOnce()
	j := s.byID[1]
	if j.State != job.Running {
		t.Fatalf("setup: state = %v, want Running", j.State)
	}
	// Preempt before any progress: the tick's advance ran before placement,
	// so RemainingWork is still the full duration.
	if !env.Preempt(j, 62) {
		t.Fatal("setup: preempt failed")
	}
	if j.ColdStart != 62 || j.CheckpointedWork != 0 {
		t.Fatalf("after zero-progress preempt: ColdStart=%v CheckpointedWork=%v, want 62/0",
			j.ColdStart, j.CheckpointedWork)
	}
	s.StepOnce() // scheduler re-places the job, debt still pending
	if j.State != job.Running {
		t.Fatalf("setup: job not re-placed (state %v)", j.State)
	}
	s.killJob(j, "node-crash")
	if j.ColdStart != 0 {
		t.Fatalf("ColdStart = %v after no-checkpoint kill, want 0 (phantom restore)", j.ColdStart)
	}
	if j.RemainingWork != float64(j.Duration) {
		t.Fatalf("RemainingWork = %v, want full duration %d", j.RemainingWork, j.Duration)
	}
	if j.Restarts != 1 || j.State != job.Pending {
		t.Fatalf("Restarts=%d State=%v, want 1/Pending", j.Restarts, j.State)
	}
	res := s.Run()
	if res.Unfinished != 0 || res.Violations > 0 {
		t.Fatalf("post-kill run: %s", res.Summary())
	}
}

// TestChaosKillRestoresCheckpoint: a job the intrusive path checkpointed
// resumes from the checkpoint after a fault kill, losing only the work since
// the checkpoint and paying the configured restore overhead.
func TestChaosKillRestoresCheckpoint(t *testing.T) {
	spec := quietSpec()
	spec.RestoreSec = 62
	s := newChaosSim(t, spec, mkJob(1, 2, 0, 1000))
	env := &Env{s: s}
	for i := 0; i < 20; i++ { // place, then make real progress
		s.StepOnce()
	}
	j := s.byID[1]
	if j.State != job.Running || j.RemainingWork >= float64(j.Duration) {
		t.Fatalf("setup: state=%v remaining=%v", j.State, j.RemainingWork)
	}
	cw := float64(j.Duration) - j.RemainingWork
	if !env.Preempt(j, 62) {
		t.Fatal("setup: preempt failed")
	}
	if j.CheckpointedWork != cw {
		t.Fatalf("CheckpointedWork = %v, want %v", j.CheckpointedWork, cw)
	}
	s.StepOnce() // re-place; advance ran before placement, so no new progress
	if j.State != job.Running {
		t.Fatalf("setup: job not re-placed (state %v)", j.State)
	}
	s.killJob(j, "gpu-fault")
	if j.RemainingWork != float64(j.Duration)-cw {
		t.Fatalf("RemainingWork = %v after restore, want %v (checkpoint lost)",
			j.RemainingWork, float64(j.Duration)-cw)
	}
	if j.ColdStart != 62 {
		t.Fatalf("ColdStart = %v, want restore overhead 62", j.ColdStart)
	}
	res := s.Run()
	if res.Unfinished != 0 || res.Violations > 0 {
		t.Fatalf("post-kill run: %s", res.Summary())
	}
}

// TestChaosRetryExhaustion: with a zero retry budget the first kill is
// terminal — the job ends Failed, counts as FailedJobs (not Unfinished),
// and the run terminates without it.
func TestChaosRetryExhaustion(t *testing.T) {
	spec := quietSpec()
	spec.MaxRetries = 0
	s := newChaosSim(t, spec, mkJob(1, 2, 0, 100000))
	s.StepOnce()
	j := s.byID[1]
	s.killJob(j, "node-crash")
	if j.State != job.Failed {
		t.Fatalf("state = %v, want Failed", j.State)
	}
	res := s.Run()
	if res.FailedJobs != 1 || res.Unfinished != 0 {
		t.Fatalf("FailedJobs=%d Unfinished=%d, want 1/0", res.FailedJobs, res.Unfinished)
	}
	if res.JobKills != 1 || res.Requeues != 0 {
		t.Fatalf("JobKills=%d Requeues=%d, want 1/0", res.JobKills, res.Requeues)
	}
	if j.JCT() != -1 {
		t.Fatalf("failed job reports JCT %d", j.JCT())
	}
}

// TestChaosBackoffDelaysRequeue: a killed job is hidden from Env.Pending
// until its backoff elapses, then reruns to completion.
func TestChaosBackoffDelaysRequeue(t *testing.T) {
	spec := quietSpec()
	spec.BackoffSec = 500
	spec.MaxBackoffSec = 500
	s := newChaosSim(t, spec, mkJob(1, 2, 0, 300))
	env := &Env{s: s}
	s.StepOnce()
	j := s.byID[1]
	killedAt := s.now
	s.killJob(j, "job-crash")
	if j.NextEligible != killedAt+500 {
		t.Fatalf("NextEligible = %d, want %d", j.NextEligible, killedAt+500)
	}
	if got := env.Pending(); len(got) != 0 {
		t.Fatalf("Pending returned %d jobs during backoff", len(got))
	}
	res := s.Run()
	if res.Unfinished != 0 || res.Violations > 0 {
		t.Fatalf("run: %s", res.Summary())
	}
	// Kill + 500 s backoff + 300 s rerun: the JCT must include the backoff.
	if jct := j.JCT(); jct < killedAt+500+300-j.Submit {
		t.Fatalf("JCT = %d, backoff not observed", jct)
	}
}

// TestChaosNodeFailureEndToEnd drives a real fault schedule through Run:
// node crashes fire, resident jobs are killed and recovered, the fatal
// invariant checker stays silent, and the kill ledger balances
// (every kill is either a requeue or a terminal exhaustion).
func TestChaosNodeFailureEndToEnd(t *testing.T) {
	spec := chaos.DefaultSpec()
	spec.Seed = 11
	spec.NodeFailPerDay = 200 // a crash roughly every 7 min per node
	spec.RepairSec = 300
	spec.GPUFailPerDay = 20
	spec.JobCrashPerDay = 10
	spec.MaxRetries = 2
	spec.BackoffSec = 60
	var jobs []*job.Job
	for i := 1; i <= 12; i++ {
		jobs = append(jobs, mkJob(i, 1+i%4, int64(i*200), 3000))
	}
	s := newChaosSim(t, spec, jobs...)
	res := s.Run()
	if res.Violations > 0 {
		t.Fatalf("violations: %v", res.ViolationSamples)
	}
	if res.NodeFailures == 0 || res.JobKills == 0 {
		t.Fatalf("fault schedule never fired: %s", res.Summary())
	}
	if res.JobKills != res.Requeues+res.FailedJobs {
		t.Fatalf("kill ledger unbalanced: kills=%d requeues=%d failed=%d",
			res.JobKills, res.Requeues, res.FailedJobs)
	}
	// No lost jobs: every job is terminal or still legitimately waiting.
	for _, j := range res.Jobs {
		switch j.State {
		case job.Finished, job.Failed, job.Pending, job.Queued:
		default:
			t.Fatalf("job %d ended in state %v", j.ID, j.State)
		}
	}
	if res.GoodputPct() >= 100 {
		t.Fatalf("goodput = %v%% despite %d kills", res.GoodputPct(), res.JobKills)
	}
}

// TestChaosStragglerSlowsJob: a 100%-straggler cluster at 0.5× speed must
// roughly double an uncontended job's JCT.
func TestChaosStragglerSlowsJob(t *testing.T) {
	spec := quietSpec()
	spec.StragglerFrac = 1
	spec.StragglerSlowdown = 0.5
	s := newChaosSim(t, spec, mkJob(1, 2, 0, 600))
	res := s.Run()
	if res.Unfinished != 0 {
		t.Fatal("unfinished")
	}
	if jct := res.Jobs[0].JCT(); jct < 1150 || jct > 1300 {
		t.Fatalf("straggler JCT = %d, want ≈1200 (0.5× speed)", jct)
	}
}

// TestChaosOffMatchesNilInjector: an injector whose spec disables every
// fault must leave the decision trace byte-identical to running with no
// injector at all — the "chaos disabled costs only a nil check" claim,
// verified at the event-stream level.
func TestChaosOffMatchesNilInjector(t *testing.T) {
	run := func(inj *chaos.Injector) string {
		rec := dtrace.New()
		tr := mkTrace(mkJob(1, 2, 0, 500), mkJob(2, 8, 100, 700), mkJob(3, 4, 200, 300))
		res := New(tr, fifoLike{}, Options{Tick: 10, Chaos: inj, DecisionTrace: rec,
			Invariants: NewInvariantChecker(true)}).Run()
		if res.Violations > 0 {
			t.Fatalf("violations: %v", res.ViolationSamples)
		}
		return rec.Digest()
	}
	off, err := chaos.ParseSpec("off")
	if err != nil {
		t.Fatal(err)
	}
	if a, b := run(nil), run(chaos.NewInjector(off)); a != b {
		t.Fatalf("digest differs: nil=%s off=%s", a, b)
	}
}
