package sim

import (
	"bytes"
	"strings"
	"testing"
)

func TestTimelineRecordsLifecycle(t *testing.T) {
	tr := mkTrace(mkJob(1, 2, 0, 300), mkJob(2, 2, 0, 300))
	res := New(tr, sharingSched{}, Options{Tick: 10, RecordTimeline: true}).Run()
	if len(res.Timeline) == 0 {
		t.Fatal("timeline empty")
	}
	kinds := map[EventKind]int{}
	for _, e := range res.Timeline {
		kinds[e.Kind]++
	}
	if kinds[EvStart] != 1 || kinds[EvStartShared] != 1 {
		t.Fatalf("start events wrong: %v", kinds)
	}
	if kinds[EvFinish] != 2 {
		t.Fatalf("finish events wrong: %v", kinds)
	}
	// Chronological order.
	for i := 1; i < len(res.Timeline); i++ {
		if res.Timeline[i].Time < res.Timeline[i-1].Time {
			t.Fatal("timeline not chronological")
		}
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	tr := mkTrace(mkJob(1, 2, 0, 100))
	res := New(tr, fifoLike{}, Options{Tick: 10}).Run()
	if len(res.Timeline) != 0 {
		t.Fatal("timeline recorded without opt-in")
	}
}

func TestTimelineRecordsPreemptionAndProfiling(t *testing.T) {
	tr := mkTrace(mkJob(1, 8, 0, 1000), mkJob(2, 8, 300, 300))
	res := New(tr, &preemptSched{}, Options{Tick: 10, RecordTimeline: true}).Run()
	saw := map[EventKind]bool{}
	for _, e := range res.Timeline {
		saw[e.Kind] = true
	}
	if !saw[EvPreempt] {
		t.Fatal("preemption not recorded")
	}

	tr2 := mkTrace(mkJob(1, 1, 0, 500))
	res2 := New(tr2, &profSched{tprof: 100}, Options{
		Tick: 10, SchedulerEvery: 10, ProfilerNodes: 1, RecordTimeline: true}).Run()
	saw2 := map[EventKind]bool{}
	for _, e := range res2.Timeline {
		saw2[e.Kind] = true
	}
	if !saw2[EvProfileStart] || !saw2[EvProfileStop] {
		t.Fatalf("profiling transitions missing: %v", saw2)
	}
}

func TestTimelineCSVRoundTrip(t *testing.T) {
	events := []TimelineEvent{
		{Time: 10, JobID: 1, Kind: EvStart, GPUs: 4, VC: "vc0"},
		{Time: 20, JobID: 1, Kind: EvFinish, GPUs: 4, VC: "vc0"},
	}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTimelineCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != events[0] || back[1] != events[1] {
		t.Fatalf("round trip mismatch: %v", back)
	}
}

func TestReadTimelineCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadTimelineCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ReadTimelineCSV(strings.NewReader("a,b,c,d,e\n1,2,3,4,5\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	bad := "time,job,event,gpus,vc\nx,1,start,2,vc0\n"
	if _, err := ReadTimelineCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric time accepted")
	}
}
