// Engine metrics tests: Options.Metrics must observe the run without
// influencing it. External test package — uses real schedulers, which
// import sim.
package sim_test

import (
	"strings"
	"testing"

	"repro/internal/dtrace"
	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// TestMetricsDoNotPerturbDecisions is the acceptance gate for the metrics
// layer: timings are wall-clock observations that never feed back into
// simulation state, so the decision-trace digest must be byte-identical
// with metrics on or off.
func TestMetricsDoNotPerturbDecisions(t *testing.T) {
	run := func(reg *metrics.Registry) string {
		rec := dtrace.New()
		tr := randomTrace(xrand.New(11), 150)
		sim.New(tr, sched.NewFIFO(), sim.Options{
			Tick: 30, SchedulerEvery: 60, DecisionTrace: rec, Metrics: reg,
		}).Run()
		return rec.Digest()
	}
	off, on := run(nil), run(metrics.New())
	if off != on {
		t.Fatalf("metrics perturbed decisions: digest %s (off) vs %s (on)", off, on)
	}
}

// TestSimMetricsExposition runs a small trace with a registry attached and
// checks every engine instrument shows up in the Prometheus text dump with
// sane values.
func TestSimMetricsExposition(t *testing.T) {
	reg := metrics.New()
	tr := drainTrace(xrand.New(3), 40)
	res := sim.New(tr, sched.NewFIFO(), sim.Options{
		Tick: 30, SchedulerEvery: 60, Metrics: reg,
	}).Run()
	if res.Unfinished > 0 {
		t.Fatalf("drain trace did not drain: %d unfinished", res.Unfinished)
	}
	out := reg.Render()
	for _, want := range []string{
		"# TYPE sim_ticks_total counter",
		"# TYPE sim_sched_invocations_total counter",
		`sim_phase_seconds_bucket{phase="advance",le="+Inf"}`,
		`sim_phase_seconds_bucket{phase="chaos",le="+Inf"}`,
		`sim_phase_seconds_bucket{phase="speeds",le="+Inf"}`,
		"sim_sched_decision_seconds_count",
		"sim_queue_depth",
		"sim_running_jobs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Re-registration is idempotent, so looking instruments up again returns
	// the engine's own (histograms must re-state the engine's buckets).
	ticks := reg.Counter("sim_ticks_total", "")
	decide := reg.Histogram("sim_sched_decision_seconds", "", metrics.ExpBuckets(1e-7, 2, 22))
	if ticks.Value() <= 0 {
		t.Error("no ticks counted")
	}
	if decide.Count() == 0 {
		t.Error("no scheduler decisions timed")
	}
	// All jobs drained: the running gauge must have settled back to 0.
	if g := reg.Gauge("sim_running_jobs", ""); g.Value() != 0 {
		t.Errorf("sim_running_jobs = %v after drain, want 0", g.Value())
	}
}
