package sim

// tickEvent is a future engine wake-up bound to a job: a predicted
// completion or a requeue-backoff expiry, quantized to the tick grid. gen
// is a generation counter for lazy invalidation — the event engine bumps a
// job's generation whenever its trajectory changes (speed change, preempt,
// kill), so stale predictions pop harmlessly. The backoff heap leaves gen 0.
type tickEvent struct {
	at  int64
	id  int
	gen uint64
}

// evheap is a binary min-heap of tickEvents ordered by (at, id, gen).
// Ordering is total over distinct events, so pop order — and therefore
// every downstream decision sequence — is deterministic no matter what
// order equal-timestamp events were pushed in. (container/heap would work
// too; a concrete type keeps the hot path free of interface calls.)
type evheap []tickEvent

func evLess(a, b tickEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.id != b.id {
		return a.id < b.id
	}
	return a.gen < b.gen
}

func (h *evheap) push(e tickEvent) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !evLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

// peek returns the minimum without removing it; ok=false when empty.
func (h evheap) peek() (tickEvent, bool) {
	if len(h) == 0 {
		return tickEvent{}, false
	}
	return h[0], true
}

func (h *evheap) pop() tickEvent {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && evLess((*h)[l], (*h)[small]) {
			small = l
		}
		if r < n && evLess((*h)[r], (*h)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}
