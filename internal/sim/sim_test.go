package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/trace"
	"repro/internal/workload"
)

// fifoLike is a minimal greedy scheduler for engine tests.
type fifoLike struct{}

func (fifoLike) Name() string { return "test-greedy" }
func (fifoLike) Tick(env *Env) {
	for _, j := range env.Pending() {
		env.StartExclusive(j)
	}
}

func tinySpec() cluster.Spec {
	return cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "vc", Nodes: 1}}}
}

func mkJob(id int, gpus int, submit, dur int64) *job.Job {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	return job.New(id, "j", "u", "vc", gpus, submit, dur, cfg)
}

func mkTrace(jobs ...*job.Job) *trace.Trace {
	return &trace.Trace{Name: "t", Cluster: tinySpec(), Jobs: jobs, Days: 1}
}

func TestSingleJobLifecycle(t *testing.T) {
	tr := mkTrace(mkJob(1, 2, 0, 600))
	res := New(tr, fifoLike{}, Options{Tick: 10}).Run()
	if res.Unfinished != 0 {
		t.Fatal("job did not finish")
	}
	j := res.Jobs[0]
	if j.State != job.Finished {
		t.Fatalf("state = %v", j.State)
	}
	// JCT ≈ duration (+ tick slop).
	if jct := j.JCT(); jct < 600 || jct > 640 {
		t.Fatalf("JCT = %d, want ≈600", jct)
	}
	if q := j.QueueDelay(); q > 30 {
		t.Fatalf("queue delay = %d for an empty cluster", q)
	}
}

func TestQueueingWhenFull(t *testing.T) {
	// Two 8-GPU jobs on an 8-GPU cluster: the second must wait for the
	// first.
	tr := mkTrace(mkJob(1, 8, 0, 1000), mkJob(2, 8, 0, 1000))
	res := New(tr, fifoLike{}, Options{Tick: 10}).Run()
	if res.Unfinished != 0 {
		t.Fatal("jobs did not finish")
	}
	j2 := res.Jobs[1]
	if q := j2.QueueDelay(); q < 900 {
		t.Fatalf("second job queue delay = %d, want ≈1000", q)
	}
	if res.MakespanSec < 1900 {
		t.Fatalf("makespan = %d, want ≈2000", res.MakespanSec)
	}
}

func TestResultAggregates(t *testing.T) {
	tr := mkTrace(mkJob(1, 8, 0, 500), mkJob(2, 8, 0, 500))
	res := New(tr, fifoLike{}, Options{Tick: 10}).Run()
	if res.AvgJCTSec <= 0 || res.AvgQueueSec <= 0 {
		t.Fatalf("aggregates: %+v", res)
	}
	if len(res.JCTs()) != 2 || len(res.QueueDelays()) != 2 {
		t.Fatal("per-job series wrong")
	}
	if res.PerVCQueueSec["vc"] <= 0 {
		t.Fatal("per-VC queue missing")
	}
}

// sharingSched packs job 2 with job 1.
type sharingSched struct{}

func (sharingSched) Name() string { return "test-sharing" }
func (sharingSched) Tick(env *Env) {
	pend := env.Pending()
	for _, j := range pend {
		if j.ID == 1 {
			env.StartExclusive(j)
		}
	}
	running := env.Running()
	for _, j := range pend {
		if j.ID == 2 && len(running) > 0 {
			env.ObserveOnTheFly(j)
			env.StartShared(j, running[0])
		}
	}
}

func TestSharedJobsRunSlower(t *testing.T) {
	// Two identical ResNet-18 jobs (a Figure 3a "hard" pair) sharing GPUs
	// must both take visibly longer than exclusive duration.
	tr := mkTrace(mkJob(1, 2, 0, 1000), mkJob(2, 2, 0, 1000))
	res := New(tr, sharingSched{}, Options{Tick: 10}).Run()
	if res.Unfinished != 0 {
		t.Fatalf("unfinished: %d", res.Unfinished)
	}
	j1 := res.Jobs[0]
	if jct := j1.JCT(); jct < 1200 {
		t.Fatalf("shared ResNet-18 JCT = %d, want ≥1200 (interference)", jct)
	}
	// But far less than serial execution.
	if jct := res.Jobs[1].JCT(); jct > 1900 {
		t.Fatalf("shared JCT %d worse than serializing", jct)
	}
}

func TestSharedSpeedRecoversAfterPartnerExit(t *testing.T) {
	// Job 1 is short; once it exits, job 2 should speed back up. Total JCT
	// of job 2 must be < fully-shared estimate.
	tr := mkTrace(mkJob(1, 2, 0, 200), mkJob(2, 2, 0, 2000))
	res := New(tr, sharingSched{}, Options{Tick: 10}).Run()
	j2 := res.Jobs[1]
	if j2.Finish < 0 {
		t.Fatal("job 2 unfinished")
	}
	// Shared-throughout at ~0.7 speed would take ~2860 s; partner exits
	// after ~290 s, so expect ≈2100-2300.
	if jct := j2.JCT(); jct > 2600 {
		t.Fatalf("job 2 JCT = %d; speed did not recover after partner exit", jct)
	}
}

// preemptSched starts job 1 then preempts it when job 2 arrives.
type preemptSched struct{ preempted bool }

func (p *preemptSched) Name() string { return "test-preempt" }
func (p *preemptSched) Tick(env *Env) {
	pend := env.Pending() // captured before preemption: excludes the victim
	for _, j := range pend {
		if j.ID == 2 && !p.preempted {
			for _, r := range env.Running() {
				if r.ID == 1 {
					env.Preempt(r, 62)
					p.preempted = true
				}
			}
		}
	}
	for _, j := range pend {
		env.StartExclusive(j)
	}
	if p.preempted {
		// Victim restarts only once the cluster frees up.
		for _, j := range env.Pending() {
			env.StartExclusive(j)
		}
	}
}

func TestPreemptionPreservesWorkWithOverhead(t *testing.T) {
	tr := mkTrace(mkJob(1, 8, 0, 1000), mkJob(2, 8, 300, 300))
	res := New(tr, &preemptSched{}, Options{Tick: 10}).Run()
	j1, j2 := res.Jobs[0], res.Jobs[1]
	if j1.Finish < 0 || j2.Finish < 0 {
		t.Fatal("unfinished jobs")
	}
	if j1.Preemptions != 1 {
		t.Fatalf("preemptions = %d", j1.Preemptions)
	}
	// Job 1: ran ~300 s, preempted, job 2 runs 300 s, then job 1 resumes
	// with 62 s cold start and ~700 s remaining → JCT ≈ 300+300+62+700.
	if jct := j1.JCT(); jct < 1300 || jct > 1500 {
		t.Fatalf("preempted job JCT = %d, want ≈1362", jct)
	}
}

// profSched profiles every job for up to 100 s, then runs it exclusively.
type profSched struct{ tprof int64 }

func (p *profSched) Name() string { return "test-profiler" }
func (p *profSched) Tick(env *Env) {
	for _, j := range env.Profiling() {
		if env.ProfilingElapsed(j) >= p.tprof {
			env.StopProfiling(j)
		}
	}
	for _, j := range env.Pending() {
		switch j.State {
		case job.Pending:
			env.StartProfiling(j)
		case job.Queued:
			env.StartExclusive(j)
		}
	}
}

func TestProfilingLifecycle(t *testing.T) {
	// Short job finishes inside the profiler; long job is profiled, evicted,
	// restarted on the main cluster.
	tr := mkTrace(mkJob(1, 1, 0, 50), mkJob(2, 1, 0, 500))
	// SchedulerEvery must be tight enough to enforce the profiling timeout
	// promptly (Lucid runs configure this too).
	s := New(tr, &profSched{tprof: 100}, Options{Tick: 10, SchedulerEvery: 10, ProfilerNodes: 1})
	res := s.Run()
	if res.Unfinished != 0 {
		t.Fatalf("unfinished: %d", res.Unfinished)
	}
	j1, j2 := res.Jobs[0], res.Jobs[1]
	// Debug job: immediate feedback, JCT ≈ duration.
	if jct := j1.JCT(); jct > 100 {
		t.Fatalf("debug job JCT = %d, want ≈50", jct)
	}
	if j1.Profiled {
		t.Fatal("job finishing inside the profiler never gets a profile")
	}
	if !j2.Profiled {
		t.Fatal("long job should carry a profile")
	}
	// Long job restarts after profiling: JCT ≈ Tprof + duration.
	if jct := j2.JCT(); jct < 580 || jct > 700 {
		t.Fatalf("profiled job JCT = %d, want ≈600 (100 profiling + 500 rerun)", jct)
	}
	if j2.Profile.GPUUtil <= 0 {
		t.Fatal("profile not attached")
	}
}

func TestDistributedJobCrossNodePenaltyWhenPacked(t *testing.T) {
	// Same pair on a 16-GPU job (2 nodes): packed speed must be lower than
	// the single-node pair speed by the cross-node penalty.
	spec := cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "vc", Nodes: 4}}}
	j1 := mkJob(1, 16, 0, 1000)
	j2 := mkJob(2, 16, 0, 1000)
	tr := &trace.Trace{Name: "t", Cluster: spec, Jobs: []*job.Job{j1, j2}, Days: 1}
	res := New(tr, sharingSched{}, Options{Tick: 10}).Run()
	pairSpeed, _ := workload.PairSpeed(j1.Config, j2.Config)
	wantMin := 1000 / (pairSpeed * workload.CrossNodePenalty) * 0.9
	if jct := float64(res.Jobs[0].JCT()); jct < wantMin {
		t.Fatalf("distributed packed JCT %v; cross-node penalty not applied (want ≥ %v)", jct, wantMin)
	}
}

func TestHorizonStopsRunaway(t *testing.T) {
	// A job that can never be placed (too many GPUs) must not hang Run.
	tr := mkTrace(mkJob(1, 9, 0, 100)) // 9 > 8 per node, 1 node
	res := New(tr, fifoLike{}, Options{Tick: 60, MaxHorizon: 3600}).Run()
	if res.Unfinished != 1 {
		t.Fatalf("unfinished = %d, want 1", res.Unfinished)
	}
}

func TestElasticScheduling(t *testing.T) {
	// One elastic job at half allocation runs at (0.5)^0.85 speed.
	j := mkJob(1, 8, 0, 1000)
	tr := mkTrace(j)
	s := New(tr, elasticHalf{}, Options{Tick: 10})
	res := s.Run()
	if res.Unfinished != 0 {
		t.Fatal("unfinished")
	}
	want := 1000 / elasticSpeed(4, 8)
	got := float64(res.Jobs[0].JCT())
	if got < want*0.95 || got > want*1.1 {
		t.Fatalf("elastic JCT = %v, want ≈%v", got, want)
	}
}

type elasticHalf struct{}

func (elasticHalf) Name() string { return "test-elastic" }
func (elasticHalf) Tick(env *Env) {
	for _, j := range env.Pending() {
		env.StartElastic(j, j.GPUs/2)
	}
}

func TestUtilizationSampling(t *testing.T) {
	tr := mkTrace(mkJob(1, 8, 0, 4000))
	res := New(tr, fifoLike{}, Options{Tick: 10, SampleEvery: 100}).Run()
	if res.AvgGPUUtilPct <= 0 || res.AvgGPUMemPct <= 0 {
		t.Fatalf("no utilization samples: %+v", res)
	}
	if res.AvgGPUUtilPct > 100 || res.AvgGPUMemPct > 100 {
		t.Fatalf("utilization out of range: %+v", res)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 1); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 0.5); p != 5 && p != 6 {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %v", p)
	}
}

func TestCDFShape(t *testing.T) {
	vals, frac := CDF([]float64{3, 1, 2})
	if vals[0] != 1 || vals[2] != 3 {
		t.Fatalf("CDF vals = %v", vals)
	}
	if frac[2] != 1 {
		t.Fatalf("CDF frac = %v", frac)
	}
}

func TestRunIsRepeatable(t *testing.T) {
	mk := func() *Result {
		tr := mkTrace(mkJob(1, 2, 0, 500), mkJob(2, 4, 100, 700), mkJob(3, 8, 200, 300))
		return New(tr, fifoLike{}, Options{Tick: 10}).Run()
	}
	a, b := mk(), mk()
	if a.AvgJCTSec != b.AvgJCTSec || a.MakespanSec != b.MakespanSec {
		t.Fatal("simulation not deterministic")
	}
}

func TestColdStartAccruesAttainedService(t *testing.T) {
	// Regression: while a resumed job pays its checkpoint-restore cold
	// start, wall clock passes on occupied GPUs — RunTime and AttainedGPUT
	// must accrue together. The bug charged RunTime but not AttainedGPUT,
	// so preempted jobs looked younger to Tiresias's LAS than the GPU-time
	// the cluster actually spent on them.
	tr := mkTrace(mkJob(1, 8, 0, 1000), mkJob(2, 8, 300, 300))
	res := New(tr, &preemptSched{}, Options{Tick: 10}).Run()
	j1 := res.Jobs[0]
	if j1.Preemptions != 1 || j1.Finish < 0 {
		t.Fatalf("scenario broken: preemptions=%d finish=%d", j1.Preemptions, j1.Finish)
	}
	for _, j := range res.Jobs {
		want := float64(j.RunTime) * float64(j.GPUs)
		if diff := j.AttainedGPUT - want; diff < -1e-6 || diff > 1e-6 {
			t.Fatalf("job %d: AttainedGPUT = %v, want RunTime*GPUs = %v (cold-start ticks dropped)",
				j.ID, j.AttainedGPUT, want)
		}
	}
}

// preemptProfSched preempts a running job, then routes it through the
// profiler before letting it back onto the main cluster: the preempt →
// profile → run lifecycle.
type preemptProfSched struct {
	ticks     int
	preempted bool
}

func (p *preemptProfSched) Name() string { return "test-preempt-profile" }
func (p *preemptProfSched) Tick(env *Env) {
	p.ticks++
	if !p.preempted {
		if p.ticks <= 10 {
			for _, j := range env.Pending() {
				env.StartExclusive(j)
			}
			return
		}
		for _, r := range env.Running() {
			// Overhead larger than the profiling window, so part of the
			// checkpoint debt survives the profiling run — exactly the
			// stale state StopProfiling must clear.
			env.Preempt(r, 300)
			p.preempted = true
		}
		return
	}
	for _, j := range env.Profiling() {
		if env.ProfilingElapsed(j) >= 100 {
			env.StopProfiling(j)
		}
	}
	for _, j := range env.Pending() {
		switch j.State {
		case job.Pending:
			env.StartProfiling(j)
		case job.Queued:
			env.StartExclusive(j)
		}
	}
}

func TestStopProfilingClearsCheckpointDebt(t *testing.T) {
	// Regression: a job preempted with checkpoint overhead and then sent
	// through the profiler restarts from zero — no checkpoint exists any
	// more, so StopProfiling must void the pending ColdStart. The bug kept
	// it, charging a phantom checkpoint-restore on the post-profiling start.
	tr := mkTrace(mkJob(1, 1, 0, 500))
	res := New(tr, &preemptProfSched{}, Options{Tick: 10, SchedulerEvery: 10, ProfilerNodes: 1}).Run()
	j := res.Jobs[0]
	if res.Unfinished != 0 || j.Preemptions != 1 || !j.Profiled {
		t.Fatalf("scenario broken: unfinished=%d preemptions=%d profiled=%v",
			res.Unfinished, j.Preemptions, j.Profiled)
	}
	if j.ColdStart != 0 {
		t.Fatalf("ColdStart = %v after profiling restart, want 0", j.ColdStart)
	}
	// ~100 s initial run + ~100 s profiling + 500 s restart-from-zero. The
	// stale 200 s of checkpoint debt would push this toward 900.
	if jct := j.JCT(); jct < 680 || jct > 740 {
		t.Fatalf("JCT = %d, want ≈700 (no phantom checkpoint-restore)", jct)
	}
}

func TestPendingSkipsFinishedJobs(t *testing.T) {
	// Pending must keep returning every waiting job while the live window
	// unlinks terminal ones. A burst of short jobs finishes first; the late
	// arrival must still be scheduled, and once everything completes the
	// window must be empty — terminal jobs never linger in the scan.
	jobs := []*job.Job{}
	for i := 1; i <= 6; i++ {
		jobs = append(jobs, mkJob(i, 1, 0, 50))
	}
	jobs = append(jobs, mkJob(7, 8, 2000, 100))
	tr := mkTrace(jobs...)
	s := New(tr, fifoLike{}, Options{Tick: 10})
	res := s.Run()
	if res.Unfinished != 0 {
		t.Fatalf("unfinished: %d", res.Unfinished)
	}
	if n := s.win.count(); n != 0 {
		t.Fatalf("live window holds %d jobs after all finished, want 0", n)
	}
	if late := res.Jobs[6]; late.Finish < 0 || late.QueueDelay() > 30 {
		t.Fatalf("late job mishandled: finish=%d queue=%d", late.Finish, late.QueueDelay())
	}
}

func TestPendingWindowUnlinksOutOfOrder(t *testing.T) {
	// The old terminal-*prefix* cursor stalled permanently on the first
	// non-terminal job: one long-running early job kept every later
	// (finished) job inside the scan window forever. The live window must
	// unlink terminal jobs individually, regardless of completion order.
	jobs := []*job.Job{
		mkJob(1, 1, 0, 100000), // long-running head, still alive at the end
	}
	for i := 2; i <= 5; i++ {
		jobs = append(jobs, mkJob(i, 1, 0, 50)) // short, finish early
	}
	tr := mkTrace(jobs...)
	s := New(tr, fifoLike{}, Options{Tick: 10, MaxHorizon: 2000})
	s.Run()
	if got := s.byID[1].State; got != job.Running {
		t.Fatalf("head job state = %v, want still Running", got)
	}
	if n := s.win.count(); n != 1 {
		t.Fatalf("live window holds %d jobs, want 1 (only the running head)", n)
	}
}

func TestTraceReusableAcrossRuns(t *testing.T) {
	// New() clones jobs, so running twice from one trace must not corrupt
	// the second run.
	tr := mkTrace(mkJob(1, 8, 0, 500), mkJob(2, 8, 0, 500))
	r1 := New(tr, fifoLike{}, Options{Tick: 10}).Run()
	r2 := New(tr, fifoLike{}, Options{Tick: 10}).Run()
	if r1.AvgJCTSec != r2.AvgJCTSec {
		t.Fatal("trace state leaked between runs")
	}
	for _, j := range tr.Jobs {
		if j.State != job.Pending || j.Finish != -1 {
			t.Fatal("original trace jobs mutated")
		}
	}
}

// TestPercentileCeilNearestRank pins the ceil-based nearest-rank definition
// on 100 known values. Regression: the old truncating index int(p·(n−1))
// rounded the rank down, so p99.9 of a 100-sample distribution returned the
// 99th-smallest value instead of the maximum — tail-latency reports
// (P999QueueSec, Fig. 8) silently understated the worst case on any run
// with fewer than 1000 finished jobs.
func TestPercentileCeilNearestRank(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(100 - i) // reversed; Percentile sorts its own copy
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1},
		{0.001, 1},
		{0.01, 1},
		{0.25, 25},
		{0.5, 50},
		{0.9, 90},
		{0.99, 99},
		{0.999, 100}, // the regression: truncation gave 99
		{1, 100},
	} {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(1..100, %v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile([]float64{7}, 0.999); got != 7 {
		t.Errorf("single-sample p99.9 = %v, want 7", got)
	}
}

// packUnprofiledSched packs job 2 onto job 1 WITHOUT ObserveOnTheFly: the
// allocator's memory guard sees a 0 MB reservation for both, so their true
// profile footprints can sum past physical GPU memory.
type packUnprofiledSched struct{}

func (packUnprofiledSched) Name() string { return "test-pack-unprofiled" }
func (packUnprofiledSched) Tick(env *Env) {
	pend := env.Pending()
	for _, j := range pend {
		if j.ID == 1 {
			env.StartExclusive(j)
		}
	}
	running := env.Running()
	for _, j := range pend {
		if j.ID == 2 && len(running) > 0 {
			env.StartShared(j, running[0])
		}
	}
}

// TestSampleMemoryCappedUnderPacking is the sample() clamp regression: two
// unprofiled BERT jobs packed across the whole cluster have a combined
// footprint of ~25.6 GB per 24 GB GPU, so before the clamp AvgGPUMemPct
// reported >106% — hardware that does not exist.
func TestSampleMemoryCappedUnderPacking(t *testing.T) {
	cfg := workload.Config{Model: workload.BERT, BatchSize: 32}
	combined := 2 * cfg.Profile().GPUMemMB
	if combined <= workload.GPUMemMBCap {
		t.Fatalf("scenario broken: combined footprint %v fits in %v", combined, workload.GPUMemMBCap)
	}
	j1 := job.New(1, "a", "u", "vc", 8, 0, 2000, cfg)
	j2 := job.New(2, "b", "u", "vc", 8, 0, 2000, cfg)
	res := New(mkTrace(j1, j2), packUnprofiledSched{}, Options{Tick: 10, SampleEvery: 10}).Run()
	if res.SharedStarts == 0 {
		t.Fatal("scenario broken: nothing was packed")
	}
	if res.AvgGPUMemPct > 100 {
		t.Fatalf("AvgGPUMemPct = %v, must be clamped to 100", res.AvgGPUMemPct)
	}
	if res.AvgGPUMemPct < 90 {
		t.Fatalf("AvgGPUMemPct = %v: packed phase did not dominate, scenario no longer exercises the overflow", res.AvgGPUMemPct)
	}
}

// TestPlacementGuardsRejectIneligibleStates pins the unplaceable() guard:
// placement APIs must refuse Failed (terminal — retries exhausted for good)
// and Profiling (currently occupying the profiling cluster) jobs, and must
// say why in the decision trace. The old guard only checked
// Running||Finished, so a buggy scheduler could resurrect a Failed job or
// double-place a profiling one, corrupting both clusters' accounting.
func TestPlacementGuardsRejectIneligibleStates(t *testing.T) {
	rec := dtrace.New()
	jFail := mkJob(1, 2, 0, 100)
	jProf := mkJob(2, 2, 0, 100)
	partner := mkJob(3, 2, 0, 1000)
	s := New(mkTrace(jFail, jProf, partner), fifoLike{}, Options{Tick: 10, DecisionTrace: rec})
	env := &Env{s: s}
	// New() clones trace jobs; act on the clones.
	jFail, jProf, partner = s.jobs[0], s.jobs[1], s.jobs[2]

	if !env.StartExclusive(partner) {
		t.Fatal("scenario broken: partner did not place")
	}
	jFail.State = job.Failed
	jProf.State = job.Profiling
	for _, tc := range []struct {
		name   string
		place  bool
		reason string
	}{
		{"exclusive-failed", env.StartExclusivePrefer(jFail, cluster.PreferAny), "terminal-state"},
		{"shared-failed", env.StartShared(jFail, partner), "terminal-state"},
		{"exclusive-profiling", env.StartExclusivePrefer(jProf, cluster.PreferAny), "still-profiling"},
		{"shared-profiling", env.StartShared(jProf, partner), "still-profiling"},
	} {
		if tc.place {
			t.Fatalf("%s: placement succeeded on an ineligible job", tc.name)
		}
		found := false
		for _, ev := range rec.Events() {
			if ev.Reason == tc.reason &&
				(ev.Action == dtrace.ActPlaceFail || ev.Action == dtrace.ActPackReject) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: no trace event with reason %q", tc.name, tc.reason)
		}
	}
	if jFail.State != job.Failed || jProf.State != job.Profiling {
		t.Fatal("rejected placements mutated job state")
	}
}
