package sim

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/job"
)

// The discrete-event engine (§3g in DESIGN.md). The fixed-tick loop touches
// every live job and GPU on every tick even when nothing can possibly
// happen; at datacenter scale (10k GPUs, a million jobs) that is almost all
// of the work. This engine instead maintains a set of *wake-up sources* —
// the next arrival, the earliest predicted completion, requeue-backoff
// expiries, chaos fault/repair fires, the sampling timer, and the scheduler
// cadence — and jumps the clock straight to the earliest one, replaying the
// skipped ticks' per-job arithmetic in closed form.
//
// Bit-identical parity with the tick engine is the design constraint, not an
// aspiration. Three rules deliver it:
//
//  1. Every wake-up time is quantized to the tick grid before use, because
//     the tick engine can only observe an event on the first tick at or
//     after it happens.
//  2. The wake tick itself executes the *real* stepTick body — real advance,
//     chaos application, admission, scheduler gate, speed recompute,
//     sampling. The event machinery decides only *which* ticks run; what a
//     tick does is shared code. A spuriously early wake is therefore
//     harmless (the tick simply finds nothing to do), and only a *missed*
//     wake could break parity.
//  3. Skipped spans replay the identical floating-point operation sequence
//     the per-tick loop would have performed (see advanceJobTicks): integer-
//     valued accumulators use exact closed forms, and anything else falls
//     back to a literal per-tick subtraction loop.
//
// Scheduler rounds are elided only for policies implementing EventAware and
// only when decision tracing is off; with a recorder attached the engine
// wakes at every cadence point, so traced runs reproduce tick-engine digests
// byte-for-byte by construction.

// EngineKind selects the advancement strategy (Options.Engine).
type EngineKind int

const (
	// EngineTick is the classic fixed-tick loop: every tick executes.
	EngineTick EngineKind = iota
	// EngineEvent jumps between wake-up events, executing only ticks on
	// which something observable can happen.
	EngineEvent
)

func (k EngineKind) String() string {
	if k == EngineEvent {
		return "event"
	}
	return "tick"
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (EngineKind, error) {
	switch s {
	case "", "tick":
		return EngineTick, nil
	case "event":
		return EngineEvent, nil
	}
	return EngineTick, fmt.Errorf("sim: unknown engine %q (want tick or event)", s)
}

// NoWake is the EventAware sentinel for "no time-driven decision pending".
const NoWake = int64(math.MaxInt64)

// EventAware is implemented by schedulers that can tell the event engine
// when their next *time-driven* decision is due, allowing the engine to
// elide provably no-op cadence rounds in between. The contract: given no
// external change (no arrival, completion, kill, backoff expiry or capacity
// change — all of which wake the engine regardless), calling Tick strictly
// before the returned time performs no engine action and leaves the
// scheduler's internal state (including any RNG position) unchanged.
//
// Return NoWake when no such decision is pending. Returning a time at or
// before env.Now() demands a round at every cadence point (polling).
// Conservative over-waking is always safe; under-waking is not.
type EventAware interface {
	NextWake(env *Env) int64
}

// predInfo records the trajectory a completion prediction was computed
// from. A prediction stays valid while the job's placement generation and
// speed are unchanged — advance then follows the predicted trajectory
// exactly, so the predicted retire tick cannot move.
type predInfo struct {
	seq   uint64  // identifies this prediction's heap entry
	gen   uint64  // jobGen at prediction time
	speed float64 // effective speed the prediction assumed
}

// runEvent is Run's body under EngineEvent.
func (s *Sim) runEvent() *Result {
	s.eventLoop(&Env{s: s}, s.opts.MaxHorizon)
	return s.collect()
}

// runEventUntil is RunUntil's body under EngineEvent. Like the tick loop it
// stops at the first tick boundary at or after t, the consistent point
// Snapshot serializes.
func (s *Sim) runEventUntil(t int64) bool {
	s.eventLoop(&Env{s: s}, t)
	return !s.live()
}

// eventLoop drives the engine until the clock reaches until, the horizon, or
// every job is terminal.
func (s *Sim) eventLoop(env *Env, until int64) {
	if until > s.opts.MaxHorizon {
		until = s.opts.MaxHorizon
	}
	_, isEventAware := s.sched.(EventAware)
	elide := isEventAware && s.opts.DecisionTrace == nil

	// A resumed (or freshly started) run has no predictions yet; running
	// jobs restored from a snapshot need theirs before the first jump.
	s.refreshPredictions()

	for s.live() && s.now < until {
		w := s.nextWake(env, until, elide)
		if skip := (w-s.now)/s.opts.Tick - 1; skip > 0 {
			s.bulkAdvance(skip)
		}
		if elide {
			s.catchUpCadence(w)
		}
		s.stepTick(env, false)
		s.refreshPredictions()
	}
}

// nextWake returns the next tick the engine must execute: the earliest
// quantized wake-up across every event source, never past the loop limit.
func (s *Sim) nextWake(env *Env, until int64, elide bool) int64 {
	tick := s.opts.Tick
	floor := s.now + tick

	// The loop limit is itself a wake: the tick engine keeps ticking until
	// the clock passes it, so the last executed tick is firstTickGE(limit).
	best := firstTickGE(until, tick)
	if best < floor {
		best = floor
	}
	consider := func(at int64) {
		if at < floor {
			at = floor
		}
		if at < best {
			best = at
		}
	}

	// Completions/preemptions since the last round force a scheduler call on
	// the very next tick (the dirty re-invocation rule).
	if s.dirty {
		return floor
	}

	// Next arrival.
	if s.arriveIdx < len(s.jobs) {
		consider(firstTickGE(s.jobs[s.arriveIdx].Submit, tick))
	}

	// Earliest requeue-backoff expiry.
	if top, ok := s.backoff.peek(); ok {
		consider(top.at)
	}

	// Earliest still-valid predicted completion. Stale entries (the job was
	// re-placed, resized or killed since) pop lazily here.
	for {
		top, ok := s.completions.peek()
		if !ok {
			break
		}
		if p, live := s.preds[top.id]; live && p.seq == top.gen {
			consider(top.at)
			break
		}
		s.completions.pop()
	}

	// Utilization sampling cadence.
	consider(firstTickGE(s.lastSample+s.opts.SampleEvery, tick))

	// Scheduler cadence: with an EventAware policy (and tracing off) the
	// engine wakes only at the policy's own quantized request; otherwise at
	// every cadence point.
	if elide {
		if nw := s.sched.(EventAware).NextWake(env); nw != NoWake {
			consider(s.schedWakeTick(nw, best))
		}
	} else {
		consider(firstTickGE(s.lastSched+s.opts.SchedulerEvery, tick))
	}

	// Earliest chaos fire strictly before best (a fire at best is handled
	// by that tick's own applyChaos).
	if s.opts.Chaos != nil {
		consider(s.chaosNext(best))
	}
	return best
}

// schedWakeTick maps a scheduler's requested wake time onto the tick the
// tick engine would first act on it: up to the tick grid, then forward to
// the first point of the virtual cadence grid — the sequence of rounds the
// tick engine would have executed (all no-ops, per the EventAware contract)
// since the last real one.
func (s *Sim) schedWakeTick(nw int64, cap int64) int64 {
	tick, se := s.opts.Tick, s.opts.SchedulerEvery
	t := firstTickGE(nw, tick)
	if t <= s.now { // polling request: next cadence point
		t = s.now + 1
	}
	g := firstTickGE(s.lastSched+se, tick)
	if se%tick == 0 {
		// Regular grid: lastSched is tick-aligned, so every step lands on
		// the grid and the walk collapses to one division.
		if g < t {
			g += (t - g + se - 1) / se * se
		}
		return g
	}
	for g < t && g < cap {
		g = firstTickGE(g+se, tick)
	}
	return g
}

// catchUpCadence replays the virtual cadence grid up to (but excluding) the
// wake tick w: rounds the tick engine executed there were no-ops under the
// EventAware contract, but each one still advanced its lastSched clock, and
// the gate arithmetic at w must see the same value or it would fire rounds
// the tick engine never ran.
func (s *Sim) catchUpCadence(w int64) {
	tick, se := s.opts.Tick, s.opts.SchedulerEvery
	g := firstTickGE(s.lastSched+se, tick)
	if se%tick == 0 {
		if g < w {
			last := g + (w-1-g)/se*se
			s.lastSched = last
		}
		return
	}
	for g < w {
		s.lastSched = g
		g = firstTickGE(g+se, tick)
	}
}

// bulkAdvance advances the clock k ticks during which, by construction of
// nextWake, nothing observable happens: no completion, arrival, expiry,
// chaos fire, sample point or scheduler round. Only running/profiling-job
// arithmetic needs replaying.
func (s *Sim) bulkAdvance(k int64) {
	dt := float64(s.opts.Tick)
	for id, j := range s.running {
		sp := s.speeds[id]
		if sp <= 0 {
			sp = 1
		}
		advanceJobTicks(j, sp, k, dt)
	}
	for _, j := range s.profiling {
		advanceJobTicks(j, 1, k, dt)
	}
	s.now += k * s.opts.Tick
	if s.met != nil {
		s.met.ticks.Add(float64(k))
	}
}

// advanceJobTicks replays k per-tick advance iterations for one job at
// constant speed, producing bit-identical state to k calls of the advanceSet
// inner loop. The caller guarantees no completion occurs within the span.
// RunTime/AttainedGPUT accumulate integer quanta, so their closed forms are
// exact; RemainingWork uses a closed form only when both it and the per-tick
// progress are integer-valued (then every subtraction in the sequence is
// exact), and otherwise replays the literal subtraction loop — float
// subtraction does not distribute, and parity beats elegance.
func advanceJobTicks(j *job.Job, sp float64, k int64, dt float64) {
	j.RunTime += float64(k) * dt
	j.AttainedGPUT += float64(k) * dt * float64(j.GPUs)

	i := k
	for j.ColdStart >= dt && i > 0 { // cold-start-only ticks: no progress
		j.ColdStart -= dt
		i--
	}
	if i == 0 {
		return
	}
	if j.ColdStart > 0 { // transition tick: partial cold start, partial work
		eff := dt - j.ColdStart
		j.ColdStart = 0
		progress := sp * eff
		j.RemainingWork -= progress
		i--
	} else {
		progress := sp * dt
		j.RemainingWork -= progress
		i--
	}
	if i == 0 {
		return
	}
	p := sp * dt
	if isIntegral(j.RemainingWork) && isIntegral(p) {
		j.RemainingWork -= float64(i) * p
		return
	}
	for ; i > 0; i-- {
		j.RemainingWork -= p
	}
}

func isIntegral(x float64) bool { return x == math.Trunc(x) }

// ticksToFinish computes how many ticks from now until the job's completion
// tick (the tick on which advanceSet would retire it), replicating the
// per-tick arithmetic exactly. Returns -1 if completion is beyond limit
// ticks.
func ticksToFinish(rem, cs, sp, dt float64, limit int64) int64 {
	if sp <= 0 {
		sp = 1
	}
	var k int64
	for cs >= dt {
		cs -= dt
		k++
		if k > limit {
			return -1
		}
	}
	eff := dt - cs // full dt when no cold start remains
	if p := sp * eff; p >= rem {
		return k + 1
	} else {
		rem -= p
	}
	k++
	p := sp * dt
	if isIntegral(rem) && isIntegral(p) && p >= 1 {
		// Exact integer trajectory: ceil(rem/p) further ticks.
		ri, pi := int64(rem), int64(p)
		n := (ri + pi - 1) / pi
		if n < 1 {
			n = 1
		}
		if k+n > limit {
			return -1
		}
		return k + n
	}
	for {
		if p >= rem {
			return k + 1
		}
		rem -= p
		k++
		if k > limit {
			return -1
		}
	}
}

// refreshPredictions reconciles the completion heap with the current
// running/profiling population after an executed tick. A job needs a fresh
// prediction when it (re)entered a cluster (jobGen bumped by startOn /
// StartProfiling — this also catches same-tick kill-and-restart, where the
// membership set never saw it leave) or when recomputeSpeeds changed its
// effective speed (packing partner change, elastic resize, chaos straggler).
func (s *Sim) refreshPredictions() {
	for id := range s.preds {
		if _, ok := s.running[id]; ok {
			continue
		}
		if _, ok := s.profiling[id]; ok {
			continue
		}
		delete(s.preds, id)
	}
	for id, j := range s.running {
		sp := s.speeds[id]
		if sp <= 0 {
			sp = 1
		}
		if p, ok := s.preds[id]; ok && p.speed == sp && p.gen == s.jobGen[id] {
			continue
		}
		s.predictJob(j, sp)
	}
	for id, j := range s.profiling {
		if p, ok := s.preds[id]; ok && p.speed == 1 && p.gen == s.jobGen[id] {
			continue
		}
		s.predictJob(j, 1)
	}
}

// predictJob computes the job's retire tick under its current trajectory and
// registers the wake-up. Predictions beyond the horizon are recorded (so the
// refresh scan stays cheap) but get no heap entry — the run ends first, and
// any speed change re-predicts.
func (s *Sim) predictJob(j *job.Job, sp float64) {
	tick := s.opts.Tick
	limit := (firstTickGE(s.opts.MaxHorizon, tick) - s.now) / tick
	s.predSeq++
	s.preds[j.ID] = predInfo{seq: s.predSeq, gen: s.jobGen[j.ID], speed: sp}
	k := ticksToFinish(j.RemainingWork, j.ColdStart, sp, float64(tick), limit)
	if k > 0 {
		s.completions.push(tickEvent{at: s.now + k*tick, id: j.ID, gen: s.predSeq})
	}
}

// chaosNext scans the injector's deterministic schedule for the first tick
// in (now, bound) with an *observable* fault — one applyChaos would act on.
// The scan is read-only (peek APIs; see internal/chaos): at the returned
// tick the real applyChaos runs verbatim and draws the same samples. The
// resident-job and node-down sets are constant over the scanned span — every
// action that changes them happens on an executed tick, and repairs (which
// would re-arm crashed nodes) bound the scan themselves.
func (s *Sim) chaosNext(bound int64) int64 {
	inj := s.opts.Chaos
	tick := s.opts.Tick

	if until, ok := inj.MinDownUntil(); ok {
		if at := firstTickGE(until, tick); at < bound {
			bound = at // repairs are always observable
		}
	}

	rollJobs := inj.Spec().JobCrashPerDay > 0 && len(s.running)+len(s.profiling) > 0
	var ids []int
	if rollJobs {
		ids = s.residentIDs()
	}
	observable := func(g cluster.GPUID) bool {
		return !s.main.NodeDown(g.Node) && len(s.main.JobsOnGPU(g)) > 0
	}
	for t := s.now + tick; t < bound; t += tick {
		if inj.AnyNodeCrash(t, tick) {
			return t
		}
		if inj.AnyGPUFailure(t, tick, observable) {
			return t
		}
		if rollJobs && inj.AnyJobCrash(t, tick, ids) {
			return t
		}
	}
	return bound
}

// residentIDs returns running+profiling job ids sorted — the same population
// applyChaos samples crash-on-step faults over.
func (s *Sim) residentIDs() []int {
	ids := make([]int, 0, len(s.running)+len(s.profiling))
	for id := range s.running {
		ids = append(ids, id)
	}
	for id := range s.profiling {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
