package sim

import (
	"math"

	"repro/internal/dtrace"
	"repro/internal/job"
)

// Elastic-scheduling support for the Pollux-style baseline (§4.7). Elastic
// schedulers are intrusive by definition: they resize a job's GPU allocation
// below (or up to) its demand and adapt training to match. The simulator
// models the resulting speed as a sublinear function of the allocated
// fraction — Pollux's goodput exhibits diminishing returns — and charges a
// small restart cost on every resize.

// elasticScalingExp is the speedup exponent: speed = (alloc/demand)^exp.
const elasticScalingExp = 1.0

// ElasticResizeOverheadSec is the no-progress cost of one resize.
const ElasticResizeOverheadSec = 30

// StartElastic places the job with an allocation of gpus (which may be below
// its demand) and registers elastic speed scaling for it.
func (e *Env) StartElastic(j *job.Job, gpus int) bool {
	if j.State == job.Running || j.State == job.Finished || gpus <= 0 {
		return false
	}
	if gpus > j.GPUs {
		gpus = j.GPUs
	}
	placed, err := e.s.main.Allocate(j.ID, j.VC, gpus, 0)
	if err != nil {
		return false
	}
	e.s.recordGenSpeed(j.ID, placed)
	if e.s.elastic == nil {
		e.s.elastic = make(map[int]int)
	}
	e.s.elastic[j.ID] = gpus
	e.s.startOn(j, e.s.running)
	e.s.record(EvStartElastic, j.ID, gpus, j.VC)
	e.s.trace(dtrace.ActPlaceElastic, j, "elastic", 0)
	return true
}

// ResizeElastic changes a running elastic job's allocation, charging the
// resize overhead. Returns false (leaving the job running at its old size)
// if the new allocation cannot be placed.
func (e *Env) ResizeElastic(j *job.Job, gpus int) bool {
	if j.State != job.Running {
		return false
	}
	old, ok := e.s.elastic[j.ID]
	if !ok || gpus == old || gpus <= 0 {
		return false
	}
	if gpus > j.GPUs {
		gpus = j.GPUs
	}
	e.s.main.Free(j.ID)
	if _, err := e.s.main.Allocate(j.ID, j.VC, gpus, 0); err != nil {
		// Roll back to the old allocation; the cluster was just holding it,
		// so this cannot fail.
		if _, err2 := e.s.main.Allocate(j.ID, j.VC, old, 0); err2 != nil {
			// Defensive: if fragmentation somehow blocks the rollback, park
			// the job back in the queue.
			delete(e.s.running, j.ID)
			delete(e.s.elastic, j.ID)
			j.State = job.Pending
		}
		return false
	}
	e.s.elastic[j.ID] = gpus
	j.ColdStart += ElasticResizeOverheadSec
	return true
}

// ElasticAlloc returns the job's current elastic allocation (0 if the job is
// not elastically scheduled).
func (e *Env) ElasticAlloc(j *job.Job) int { return e.s.elastic[j.ID] }

// elasticSpeed converts an allocation fraction into execution speed.
func elasticSpeed(alloc, demand int) float64 {
	if alloc >= demand {
		return 1
	}
	return math.Pow(float64(alloc)/float64(demand), elasticScalingExp)
}
