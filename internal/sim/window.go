package sim

// liveWindow is an order-preserving set of submitted, non-terminal job
// indexes — the scan window behind Env.Pending. It replaces the old
// terminal-*prefix* cursor (pendLow), which stalled permanently on the first
// long-lived job: one early straggler kept every later job in the scan
// window for the rest of the run, making late scheduler calls O(total jobs).
// The window instead unlinks each job individually the moment it turns
// terminal (retired or retry-exhausted), so Pending scans exactly the live
// jobs regardless of completion order.
//
// Implementation: an intrusive doubly-linked list over job indexes. Jobs are
// appended at admission (admitArrivals walks the submit-sorted trace in
// index order) and never reordered, so iteration order is identical to the
// slice scan it replaces.
type liveWindow struct {
	head, tail int
	next, prev []int
	in         []bool
}

func newLiveWindow(n int) *liveWindow {
	w := &liveWindow{
		head: -1,
		tail: -1,
		next: make([]int, n),
		prev: make([]int, n),
		in:   make([]bool, n),
	}
	for i := range w.next {
		w.next[i] = -1
		w.prev[i] = -1
	}
	return w
}

// push appends index i at the tail. Idempotent: re-pushing a member is a
// no-op, preserving order.
func (w *liveWindow) push(i int) {
	if w.in[i] {
		return
	}
	w.in[i] = true
	w.prev[i] = w.tail
	w.next[i] = -1
	if w.tail >= 0 {
		w.next[w.tail] = i
	} else {
		w.head = i
	}
	w.tail = i
}

// remove unlinks index i. Idempotent for non-members.
func (w *liveWindow) remove(i int) {
	if !w.in[i] {
		return
	}
	w.in[i] = false
	if w.prev[i] >= 0 {
		w.next[w.prev[i]] = w.next[i]
	} else {
		w.head = w.next[i]
	}
	if w.next[i] >= 0 {
		w.prev[w.next[i]] = w.prev[i]
	} else {
		w.tail = w.prev[i]
	}
	w.next[i] = -1
	w.prev[i] = -1
}

// len reports the number of members (O(n) — test/debug helper only).
func (w *liveWindow) count() int {
	n := 0
	for i := w.head; i >= 0; i = w.next[i] {
		n++
	}
	return n
}
