package sim

import (
	"sort"

	"repro/internal/dtrace"
	"repro/internal/job"
)

// Fault application: the engine half of internal/chaos. The injector decides
// *which* faults fire each tick (deterministically, from its seed); this
// file owns *what they mean* — revoking node capacity, killing resident
// jobs, and the recovery path: checkpoint-vs-restart-from-zero semantics,
// retry budgets, and exponential-backoff requeue.
//
// Everything here is a no-op when Options.Chaos is nil; the tick loop pays a
// single nil check.

// applyChaos runs once per tick, after progress integration and before
// arrivals and the scheduler — so the scheduler always observes the
// post-fault cluster. Ordering within the tick is fixed (repairs, node
// crashes, GPU faults, job crashes, each in ascending entity order) so the
// event stream is identical across same-seed runs.
func (s *Sim) applyChaos() {
	inj := s.opts.Chaos
	if inj == nil {
		return
	}
	now, dt := s.now, s.opts.Tick

	// Repairs first: a node that crashed RepairSec ago returns to service
	// this tick and is immediately eligible for placement.
	for _, n := range inj.Repairs(now) {
		s.main.RepairNode(n)
		s.chaosNodeEvent(dtrace.ActNodeRepair, "repair-window-elapsed", n)
		s.dirty = true
	}

	// Node crashes: capacity revoked for the repair window, every resident
	// job killed. Distributed jobs touching the node die with it (their
	// allocations on other nodes are freed by killJob).
	for _, n := range inj.NodeCrashes(now, dt) {
		victims := s.main.FailNode(n)
		s.nodeFailures++
		s.chaosNodeEvent(dtrace.ActNodeFail, "node-crash", n)
		for _, id := range victims {
			s.killJob(s.byID[id], "node-crash")
		}
		s.dirty = true
	}

	// Transient GPU faults: residents killed, no capacity revoked. Faults on
	// idle GPUs have no observable effect and are not counted, keeping the
	// stats meaningful.
	for _, g := range inj.GPUFailures(now, dt) {
		if s.main.NodeDown(g.Node) {
			continue
		}
		victims := s.main.JobsOnGPU(g)
		if len(victims) == 0 {
			continue
		}
		s.gpuFailures++
		s.chaosNodeEvent(dtrace.ActGPUFail, "gpu-fault", g.Node)
		for _, id := range victims {
			// A node crash above may already have killed a co-resident.
			if s.byID[id].State == job.Running {
				s.killJob(s.byID[id], "gpu-fault")
			}
		}
		s.dirty = true
	}

	// Job crash-on-step: sampled over running and profiling jobs in ID
	// order. Each (job, tick) trial is an independent hash, so the sample
	// does not depend on which other jobs exist.
	if len(s.running)+len(s.profiling) > 0 {
		ids := make([]int, 0, len(s.running)+len(s.profiling))
		for id := range s.running {
			ids = append(ids, id)
		}
		for id := range s.profiling {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range inj.JobCrashes(now, dt, ids) {
			s.killJob(s.byID[id], "job-crash")
			s.dirty = true
		}
	}
}

// killJob removes a running or profiling job from its cluster and applies
// recovery semantics:
//
//   - out of retries → Failed, terminal;
//   - a durable checkpoint exists (intrusive Preempt wrote one) → resume
//     from it, paying the restore cold-start;
//   - no checkpoint → restart from zero with ColdStart voided. This is the
//     non-intrusive rule: Lucid never forced a checkpoint on the job, so
//     there is nothing to restore — charging a restore overhead here would
//     be the same phantom-debt bug StopProfiling fixes for the profiler
//     path.
//
// Requeued jobs are hidden from Env.Pending until an exponential backoff
// elapses. AttainedGPUT and RunTime are deliberately untouched: the cluster
// really did spend that GPU-time, which is exactly what the goodput metric
// measures.
func (s *Sim) killJob(j *job.Job, cause string) {
	if j == nil {
		return
	}
	switch j.State {
	case job.Running:
		s.main.Free(j.ID)
		delete(s.running, j.ID)
	case job.Profiling:
		if s.profiler != nil {
			s.profiler.Free(j.ID)
		}
		delete(s.profiling, j.ID)
	default:
		return
	}
	delete(s.speeds, j.ID)
	delete(s.profileStart, j.ID)
	delete(s.elastic, j.ID)
	delete(s.genSpeed, j.ID)
	s.jobKills++
	s.record(EvKill, j.ID, j.GPUs, j.VC)

	spec := s.opts.Chaos.Spec()
	j.Restarts++
	if spec.MaxRetries >= 0 && j.Restarts > spec.MaxRetries {
		j.State = job.Failed
		j.RemainingWork = 0
		j.ColdStart = 0
		s.win.remove(s.idxOf[j.ID])
		s.exhausted++
		s.finished++ // terminal: leaves the system, like Finished
		s.trace(dtrace.ActExhaust, j, cause, 0)
		return
	}

	if j.CheckpointedWork > 0 {
		j.RemainingWork = float64(j.Duration) - j.CheckpointedWork
		j.ColdStart = spec.RestoreSec
		s.trace(dtrace.ActRequeue, j, cause+"/restore-checkpoint", 0)
	} else {
		j.RemainingWork = float64(j.Duration)
		j.ColdStart = 0
		s.trace(dtrace.ActRequeue, j, cause+"/restart-from-zero", 0)
	}
	if j.Profiled {
		j.State = job.Queued
	} else {
		j.State = job.Pending
	}
	j.NextEligible = s.now + spec.Backoff(j.Restarts)
	s.pushBackoff(j)
	s.requeues++
}

// chaosNodeEvent records a node-level fault event (no subject job). Node ids
// are 1-based on the wire so node 0 survives omitempty.
func (s *Sim) chaosNodeEvent(act dtrace.Action, reason string, node int) {
	rec := s.opts.DecisionTrace
	if rec == nil {
		return
	}
	rec.Record(dtrace.Event{Tick: s.now, Action: act, Reason: reason, Node: node + 1})
}
