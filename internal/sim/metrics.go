package sim

import (
	"repro/internal/job"
	"repro/internal/metrics"
)

// Engine observability: when Options.Metrics is set, every tick records its
// phase timings (progress integration, fault injection, scheduler
// invocation, speed recompute) and every scheduler call its decision
// latency — the live, scrapeable counterpart of the paper's Figure 10a
// latency distributions. Like Options.DecisionTrace and Options.Chaos, a nil
// registry costs the hot path only nil checks: timings are wall-clock
// observations and never feed back into simulation state, so golden
// decision-trace digests are byte-identical with metrics on or off
// (TestMetricsDoNotPerturbDecisions pins this).

// simMetrics holds the engine's pre-registered instruments, resolved once in
// New so the tick loop never touches the registry's maps.
type simMetrics struct {
	reg *metrics.Registry

	ticks     *metrics.Counter // sim_ticks_total
	schedRuns *metrics.Counter // sim_sched_invocations_total

	advance *metrics.Histogram // sim_phase_seconds{phase="advance"}
	chaos   *metrics.Histogram // sim_phase_seconds{phase="chaos"}
	speeds  *metrics.Histogram // sim_phase_seconds{phase="speeds"}
	decide  *metrics.Histogram // sim_sched_decision_seconds

	queueDepth *metrics.Gauge // sim_queue_depth (pending+queued at last sched call)
	runningNow *metrics.Gauge // sim_running_jobs
}

// phaseBuckets spans 100ns–~400ms: a tick phase on even the largest traces
// sits well inside it, and sub-microsecond resolution keeps the cheap phases
// (chaos off, small clusters) distinguishable from zero.
func phaseBuckets() []float64 { return metrics.ExpBuckets(1e-7, 2, 22) }

// newSimMetrics resolves the engine instruments on reg (nil → nil).
func newSimMetrics(reg *metrics.Registry) *simMetrics {
	if reg == nil {
		return nil
	}
	phases := reg.HistogramVec("sim_phase_seconds",
		"Wall-clock seconds per engine tick phase.", phaseBuckets(), "phase")
	return &simMetrics{
		reg:       reg,
		ticks:     reg.Counter("sim_ticks_total", "Engine ticks executed."),
		schedRuns: reg.Counter("sim_sched_invocations_total", "Scheduler Tick calls."),
		advance:   phases.With("advance"),
		chaos:     phases.With("chaos"),
		speeds:    phases.With("speeds"),
		decide: reg.Histogram("sim_sched_decision_seconds",
			"Wall-clock latency of one scheduler invocation (Figure 10a).", phaseBuckets()),
		queueDepth: reg.Gauge("sim_queue_depth",
			"Schedulable jobs (Pending+Queued) observed at the last scheduler call."),
		runningNow: reg.Gauge("sim_running_jobs", "Jobs running on the main cluster."),
	}
}

// timedPhase selects which instrument a time() call feeds.
type timedPhase int

const (
	timeAdvance timedPhase = iota
	timeChaos
	timeSpeeds
	timeDecide
)

// time starts a timer for the phase. On a nil receiver (metrics off) it
// returns an inert Timer whose Stop is a no-op — the tick loop pays one nil
// check per phase and nothing else.
func (m *simMetrics) time(p timedPhase) metrics.Timer {
	if m == nil {
		return metrics.Timer{}
	}
	switch p {
	case timeAdvance:
		return m.reg.StartTimer(m.advance)
	case timeChaos:
		return m.reg.StartTimer(m.chaos)
	case timeSpeeds:
		return m.reg.StartTimer(m.speeds)
	default:
		return m.reg.StartTimer(m.decide)
	}
}

// observeSchedState updates the population gauges after a scheduler call.
// Counting the schedulable window reuses the same compacted scan Env.Pending
// does, but only when metrics are on.
func (s *Sim) observeSchedState() {
	m := s.met
	if m == nil {
		return
	}
	depth := 0
	for i := s.win.head; i >= 0; i = s.win.next[i] {
		if st := s.jobs[i].State; st == job.Pending || st == job.Queued {
			depth++
		}
	}
	m.queueDepth.Set(float64(depth))
	m.runningNow.Set(float64(len(s.running)))
}
