package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/job"
)

// Result aggregates one simulation run — the raw material for Tables 3–6 and
// Figures 8, 9, 11, 12 and 14a.
type Result struct {
	Scheduler string
	Jobs      []*job.Job

	AvgJCTSec     float64
	AvgQueueSec   float64
	P999QueueSec  float64
	MakespanSec   int64
	AvgGPUUtilPct float64
	AvgGPUMemPct  float64
	Unfinished    int

	// SharedStarts counts packed placements; AvgSharedGPUs is the mean
	// number of GPUs hosting two jobs at sampling instants.
	SharedStarts  int
	AvgSharedGPUs float64

	// PerVCQueueSec is the average queuing delay per VC (Figure 9).
	PerVCQueueSec map[string]float64

	// Timeline is the per-job event log (only when Options.RecordTimeline).
	Timeline []TimelineEvent

	// Violations counts engine-invariant violations observed during the run
	// (only when Options.Invariants is set and non-fatal);
	// ViolationSamples holds the first few descriptions.
	Violations       int
	ViolationSamples []string

	// Fault-injection outcome (all zero when Options.Chaos is nil).
	// FailedJobs counts jobs that exhausted their retry budget (terminal,
	// distinct from Unfinished: the cluster gave up, not the clock).
	FailedJobs   int
	NodeFailures int
	GPUFailures  int
	JobKills     int
	Requeues     int
}

func (s *Sim) collect() *Result {
	r := &Result{Scheduler: s.sched.Name(), Jobs: s.jobs, PerVCQueueSec: map[string]float64{}}
	var jctSum, queueSum float64
	var finished int
	var queues []float64
	vcSum := map[string]float64{}
	vcN := map[string]int{}
	var maxFinish int64
	var minSubmit int64 = math.MaxInt64

	for _, j := range s.jobs {
		if j.Submit < minSubmit {
			minSubmit = j.Submit
		}
		if j.State == job.Failed {
			r.FailedJobs++
			continue
		}
		if j.Finish < 0 {
			r.Unfinished++
			continue
		}
		finished++
		jctSum += float64(j.JCT())
		q := float64(j.QueueDelay())
		queueSum += q
		queues = append(queues, q)
		vcSum[j.VC] += q
		vcN[j.VC]++
		if j.Finish > maxFinish {
			maxFinish = j.Finish
		}
	}
	if finished > 0 {
		r.AvgJCTSec = jctSum / float64(finished)
		r.AvgQueueSec = queueSum / float64(finished)
		r.P999QueueSec = Percentile(queues, 0.999)
		r.MakespanSec = maxFinish - minSubmit
	}
	for vc, sum := range vcSum {
		r.PerVCQueueSec[vc] = sum / float64(vcN[vc])
	}
	if s.utilSamples > 0 {
		r.AvgGPUUtilPct = s.utilSum / float64(s.utilSamples)
		r.AvgGPUMemPct = s.memSum / float64(s.utilSamples)
		r.AvgSharedGPUs = s.sharedGPUSum / float64(s.utilSamples)
	}
	r.SharedStarts = s.sharedStarts
	r.Timeline = s.timeline
	if c := s.opts.Invariants; c != nil {
		r.Violations = c.Count()
		r.ViolationSamples = c.Samples()
	}
	r.NodeFailures = s.nodeFailures
	r.GPUFailures = s.gpuFailures
	r.JobKills = s.jobKills
	r.Requeues = s.requeues
	return r
}

// GoodputPct is the fraction of charged GPU-time that produced completed
// work: Σ over finished jobs of (Duration × GPUs) divided by Σ over all
// jobs of AttainedGPUT. Kills, requeues, restart-from-zero reruns, restore
// overheads and packing slowdowns all charge GPU-time without (fully)
// completing work, so this is the failure-sweep's degradation metric.
// Returns 100 when nothing was charged.
func (r *Result) GoodputPct() float64 {
	var useful, charged float64
	for _, j := range r.Jobs {
		charged += j.AttainedGPUT
		if j.Finish >= 0 {
			useful += float64(j.Duration) * float64(j.GPUs)
		}
	}
	if charged <= 0 {
		return 100
	}
	pct := useful / charged * 100
	if pct > 100 {
		pct = 100
	}
	return pct
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of xs by ceil-based
// nearest-rank on a sorted copy: the smallest value with at least p·n of the
// sample at or below it. Returns 0 for empty input.
//
// The previous truncating index, int(p·(n−1)), rounded the rank DOWN — on
// fewer than 1000 samples P999QueueSec silently degraded to ~p99 or lower
// (100 samples: index 98.9 → 98, the 99th-smallest value instead of the
// maximum the tail percentile must report).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p * float64(len(sorted)))) // 1-based nearest rank
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// JCTs returns finished jobs' completion times in seconds (for CDFs).
func (r *Result) JCTs() []float64 {
	var out []float64
	for _, j := range r.Jobs {
		if j.Finish >= 0 {
			out = append(out, float64(j.JCT()))
		}
	}
	return out
}

// QueueDelays returns finished jobs' queuing delays in seconds.
func (r *Result) QueueDelays() []float64 {
	var out []float64
	for _, j := range r.Jobs {
		if j.Finish >= 0 {
			out = append(out, float64(j.QueueDelay()))
		}
	}
	return out
}

// AvgJCTHours is the Table 4 unit.
func (r *Result) AvgJCTHours() float64 { return r.AvgJCTSec / 3600 }

// AvgQueueHours is the Table 4 unit.
func (r *Result) AvgQueueHours() float64 { return r.AvgQueueSec / 3600 }

// P999QueueHours is the Table 4 unit.
func (r *Result) P999QueueHours() float64 { return r.P999QueueSec / 3600 }

// MakespanHours is the Table 3 unit.
func (r *Result) MakespanHours() float64 { return float64(r.MakespanSec) / 3600 }

// ScaleStats splits finished jobs at the §4.3 boundary (Table 5): large
// (>8 GPUs) vs small (≤8), returning (avg JCT, avg queue) in seconds for
// each.
func (r *Result) ScaleStats() (largeJCT, largeQueue, smallJCT, smallQueue float64) {
	var lj, lq, sj, sq float64
	var ln, sn int
	for _, j := range r.Jobs {
		if j.Finish < 0 {
			continue
		}
		if j.GPUs > 8 {
			lj += float64(j.JCT())
			lq += float64(j.QueueDelay())
			ln++
		} else {
			sj += float64(j.JCT())
			sq += float64(j.QueueDelay())
			sn++
		}
	}
	if ln > 0 {
		largeJCT, largeQueue = lj/float64(ln), lq/float64(ln)
	}
	if sn > 0 {
		smallJCT, smallQueue = sj/float64(sn), sq/float64(sn)
	}
	return largeJCT, largeQueue, smallJCT, smallQueue
}

// ShortJobQueuedCount counts finished short jobs (duration ≤ cutoff) that
// waited longer than their own duration — the paper's "queuing short-term
// jobs" debugging-feedback metric (§4.3).
func (r *Result) ShortJobQueuedCount(cutoffSec int64) int {
	n := 0
	for _, j := range r.Jobs {
		if j.Finish < 0 || j.Duration > cutoffSec {
			continue
		}
		if j.QueueDelay() > j.Duration {
			n++
		}
	}
	return n
}

// CDF returns (sorted values, cumulative fraction) pairs suitable for
// plotting a Figure 8-style curve.
func CDF(xs []float64) (vals, frac []float64) {
	vals = append([]float64(nil), xs...)
	sort.Float64s(vals)
	frac = make([]float64, len(vals))
	for i := range vals {
		frac[i] = float64(i+1) / float64(len(vals))
	}
	return vals, frac
}

// Summary renders a one-line human-readable digest.
func (r *Result) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s avgJCT=%7.2fh avgQueue=%7.2fh p99.9Queue=%8.2fh makespan=%7.2fh util=%4.1f%% mem=%4.1f%% shared=%d",
		r.Scheduler, r.AvgJCTHours(), r.AvgQueueHours(), r.P999QueueHours(), r.MakespanHours(), r.AvgGPUUtilPct, r.AvgGPUMemPct, r.SharedStarts)
	if r.Unfinished > 0 {
		fmt.Fprintf(&sb, " UNFINISHED=%d", r.Unfinished)
	}
	if r.Violations > 0 {
		fmt.Fprintf(&sb, " VIOLATIONS=%d", r.Violations)
	}
	// Chaos block only when faults actually fired, so fault-free summaries
	// are byte-identical to the pre-chaos format.
	if r.JobKills > 0 || r.NodeFailures > 0 || r.FailedJobs > 0 {
		fmt.Fprintf(&sb, " goodput=%.1f%% kills=%d requeues=%d nodefail=%d gpufail=%d",
			r.GoodputPct(), r.JobKills, r.Requeues, r.NodeFailures, r.GPUFailures)
		if r.FailedJobs > 0 {
			fmt.Fprintf(&sb, " FAILED=%d", r.FailedJobs)
		}
	}
	return sb.String()
}
