package sim

import "sort"

// Fairness metrics — the paper's first future-work direction (§6:
// "supporting more scheduling objectives like fairness"). We quantify
// fairness the way the DL-scheduling fairness literature (Themis, ASTRAEA)
// does: per-user slowdown — a user's average JCT over ideal execution time
// — summarized by Jain's fairness index across users.

// UserSlowdowns returns each user's mean slowdown (JCT / exclusive
// duration, ≥1) over their finished jobs, keyed by user name.
func (r *Result) UserSlowdowns() map[string]float64 {
	sum := map[string]float64{}
	n := map[string]int{}
	for _, j := range r.Jobs {
		if j.Finish < 0 || j.Duration <= 0 {
			continue
		}
		s := float64(j.JCT()) / float64(j.Duration)
		if s < 1 {
			s = 1
		}
		sum[j.User] += s
		n[j.User]++
	}
	out := make(map[string]float64, len(sum))
	for u, s := range sum {
		out[u] = s / float64(n[u])
	}
	return out
}

// FairnessIndex returns Jain's index over per-user slowdowns:
// (Σx)² / (n·Σx²) ∈ (0, 1], where 1 means every user experiences the same
// slowdown. Returns 1 for fewer than two users.
func (r *Result) FairnessIndex() float64 {
	slow := r.UserSlowdowns()
	if len(slow) < 2 {
		return 1
	}
	var s, s2 float64
	for _, x := range slow {
		s += x
		s2 += x * x
	}
	if s2 == 0 {
		return 1
	}
	return s * s / (float64(len(slow)) * s2)
}

// WorstUserSlowdown returns the highest per-user slowdown (the user the
// scheduler treats worst) and that user's name.
func (r *Result) WorstUserSlowdown() (user string, slowdown float64) {
	slow := r.UserSlowdowns()
	// Deterministic tie-break by name.
	users := make([]string, 0, len(slow))
	for u := range slow {
		users = append(users, u)
	}
	sort.Strings(users)
	for _, u := range users {
		if slow[u] > slowdown {
			user, slowdown = u, slow[u]
		}
	}
	return user, slowdown
}
