package dtrace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(Event{Job: 1, Action: ActPlace}) // must not panic
	r.SetTopK(5)
	r.SetKeep(10)
	r.SetSink(&bytes.Buffer{})
	if r.Len() != 0 || r.Digest() != "" || r.Events() != nil || r.SinkErr() != nil {
		t.Fatal("nil recorder leaked state")
	}
	if s := r.Summary(); s.Total != 0 {
		t.Fatal("nil recorder summary non-empty")
	}
	if r.TopK() != 0 {
		t.Fatal("nil recorder TopK != 0")
	}
}

func TestDigestDeterminism(t *testing.T) {
	mk := func() *Recorder {
		r := New()
		for i := 0; i < 100; i++ {
			r.Record(Event{Tick: int64(i * 30), Job: i % 7, Action: ActPlace,
				Reason: "exclusive", VC: "vc0", GPUs: 1 + i%8, Score: float64(i) * 1.5})
		}
		return r
	}
	a, b := mk(), mk()
	if a.Digest() != b.Digest() {
		t.Fatalf("same event stream, different digests: %s vs %s", a.Digest(), b.Digest())
	}
	// Any divergence must change the digest.
	b.Record(Event{Job: 1, Action: ActRetire})
	if a.Digest() == b.Digest() {
		t.Fatal("digest insensitive to extra event")
	}
}

func TestJSONLRoundTripAndSummaryDigest(t *testing.T) {
	r := New()
	r.Record(Event{Tick: 30, Job: 1, Action: ActPack, Reason: "packed", Partner: 2,
		Score: 85, Regret: 0.5,
		Alternatives: []Alternative{{Job: 3, Score: 84.5, Reason: "candidate"}}})
	r.Record(Event{Tick: 60, Job: 4, Action: ActPackReject, Reason: "score-budget"})
	r.Record(Event{Tick: 90, Job: 4, Action: ActPlace, Reason: "exclusive", VC: "vc1", GPUs: 2})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("JSONL lines = %d, want 3", got)
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[0].Partner != 2 || events[1].Reason != "score-budget" {
		t.Fatalf("round trip mangled events: %+v", events)
	}
	// A replayed trace re-summarizes to the original digest.
	if s := SummarizeEvents(events); s.Digest != r.Digest() {
		t.Fatalf("replay digest %s != live digest %s", s.Digest, r.Digest())
	}
}

func TestSinkStreamingMatchesMemory(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetSink(&buf)
	r.SetKeep(1) // memory bounded; sink must still get everything
	for i := 0; i < 5; i++ {
		r.Record(Event{Job: i, Action: ActRelease, Reason: "submitted"})
	}
	if r.SinkErr() != nil {
		t.Fatal(r.SinkErr())
	}
	events, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("sink got %d events, want 5", len(events))
	}
	if len(r.Events()) != 1 {
		t.Fatalf("memory kept %d events, want 1", len(r.Events()))
	}
	s := r.Summary()
	if s.Total != 5 || s.Dropped != 4 {
		t.Fatalf("summary total/dropped = %d/%d, want 5/4", s.Total, s.Dropped)
	}
}

func TestTopKTruncationAndSanitize(t *testing.T) {
	r := New()
	r.SetTopK(2)
	alts := []Alternative{{Job: 1, Score: 1}, {Job: 2, Score: 2}, {Job: 3, Score: 3}}
	r.Record(Event{Job: 9, Action: ActPack, Score: math.NaN(), Regret: math.Inf(1), Alternatives: alts})
	ev := r.Events()[0]
	if len(ev.Alternatives) != 2 {
		t.Fatalf("alternatives = %d, want topK=2", len(ev.Alternatives))
	}
	if ev.Score != 0 || ev.Regret != 0 {
		t.Fatalf("non-finite scores not sanitized: %+v", ev)
	}
}

func TestRegret(t *testing.T) {
	alts := []Alternative{{Score: 5}, {Score: 3}}
	if got := Regret(4, alts, true); got != 1 {
		t.Fatalf("lower-better regret = %v, want 1", got)
	}
	if got := Regret(2, alts, true); got != 0 {
		t.Fatalf("optimal choice regret = %v, want 0", got)
	}
	if got := Regret(4, alts, false); got != 1 {
		t.Fatalf("higher-better regret = %v, want 1", got)
	}
	if got := Regret(7, nil, false); got != 0 {
		t.Fatalf("no-alternative regret = %v, want 0", got)
	}
}

func TestSummaryReport(t *testing.T) {
	r := New()
	r.Record(Event{Job: 1, Action: ActPlace, Reason: "exclusive"})
	r.Record(Event{Job: 2, Action: ActPlace, Reason: "exclusive"})
	r.Record(Event{Job: 2, Action: ActRetire, Reason: "finished", Regret: 2})
	s := r.Summary()
	if s.Actions["place"] != 2 || s.Reasons["place/exclusive"] != 2 {
		t.Fatalf("summary counters wrong: %+v", s)
	}
	if s.RegretN != 1 || s.RegretMean != 2 || s.RegretMax != 2 {
		t.Fatalf("regret stats wrong: %+v", s)
	}
	out := s.String()
	for _, want := range []string{"3 events", "place", "retire/finished", "regret"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := New()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				r.Record(Event{Job: g*1000 + i, Action: ActOrder})
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if r.Len() != 1600 {
		t.Fatalf("recorded %d events, want 1600", r.Len())
	}
	seen := map[int64]bool{}
	for _, ev := range r.Events() {
		if seen[ev.Seq] {
			t.Fatalf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
	}
}
