package dtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Summary is an aggregate view of a decision trace: how many decisions of
// each kind were taken, which rules fired how often, and the regret
// statistics of the counterfactuals — the trace-summary report cmd/lucidsim
// prints.
type Summary struct {
	Total   int64            `json:"total"`
	Dropped int64            `json:"dropped,omitempty"`
	Digest  string           `json:"digest"`
	Actions map[string]int64 `json:"actions"`
	Reasons map[string]int64 `json:"reasons,omitempty"`

	// RegretMean and RegretMax summarize decisions with positive regret;
	// RegretN counts them.
	RegretMean float64 `json:"regret_mean,omitempty"`
	RegretMax  float64 `json:"regret_max,omitempty"`
	RegretN    int64   `json:"regret_n,omitempty"`
}

// Summary snapshots the recorder's aggregate counters. It covers the whole
// trace even when a keep bound dropped events from memory.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Summary{
		Total:     r.seq,
		Dropped:   r.dropped,
		Digest:    fmt.Sprintf("%016x", r.digest),
		Actions:   map[string]int64{},
		Reasons:   map[string]int64{},
		RegretMax: r.regretMax,
		RegretN:   r.regretN,
	}
	for a, n := range r.counts {
		s.Actions[string(a)] = n
	}
	for k, n := range r.reasons {
		s.Reasons[k] = n
	}
	if r.regretN > 0 {
		s.RegretMean = r.regretSum / float64(r.regretN)
	}
	return s
}

// SummarizeEvents rebuilds a Summary from a replayed event list (e.g. one
// read back with ReadJSONL). The digest is recomputed from the canonical
// re-serialization, so it matches the original recorder's digest for a
// faithfully round-tripped trace.
func SummarizeEvents(events []Event) Summary {
	r := New()
	r.keep = 0
	r.topK = -1 // negative: Record keeps alternatives untouched
	for _, ev := range events {
		r.Record(ev)
	}
	return r.Summary()
}

// ReadJSONL parses a JSONL decision trace written by WriteJSONL or a sink.
func ReadJSONL(rd io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Event
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("dtrace: line %d: %w", lineNo, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dtrace: %w", err)
	}
	return out, nil
}

// String renders the summary as an aligned human-readable report.
func (s Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "decision trace: %d events (digest %s", s.Total, s.Digest)
	if s.Dropped > 0 {
		fmt.Fprintf(&sb, ", %d dropped from memory", s.Dropped)
	}
	sb.WriteString(")\n")

	keys := make([]string, 0, len(s.Actions))
	for k := range s.Actions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %-16s %8d\n", k, s.Actions[k])
	}

	if len(s.Reasons) > 0 {
		sb.WriteString("  top reasons:\n")
		type rc struct {
			k string
			n int64
		}
		rcs := make([]rc, 0, len(s.Reasons))
		for k, n := range s.Reasons {
			rcs = append(rcs, rc{k, n})
		}
		sort.Slice(rcs, func(i, j int) bool {
			if rcs[i].n != rcs[j].n {
				return rcs[i].n > rcs[j].n
			}
			return rcs[i].k < rcs[j].k
		})
		if len(rcs) > 10 {
			rcs = rcs[:10]
		}
		for _, r := range rcs {
			fmt.Fprintf(&sb, "    %-32s %8d\n", r.k, r.n)
		}
	}
	if s.RegretN > 0 {
		fmt.Fprintf(&sb, "  regret: %d decisions suboptimal under their own metric, mean %.3f max %.3f\n",
			s.RegretN, s.RegretMean, s.RegretMax)
	}
	return sb.String()
}

// Regret computes the regret of choosing an option scored chosen against a
// set of alternatives: how much better the best alternative scored (0 when
// the choice was optimal). lowerBetter selects the metric's direction.
func Regret(chosen float64, alts []Alternative, lowerBetter bool) float64 {
	best := chosen
	for _, a := range alts {
		if lowerBetter && a.Score < best {
			best = a.Score
		}
		if !lowerBetter && a.Score > best {
			best = a.Score
		}
	}
	if lowerBetter {
		return chosen - best
	}
	return best - chosen
}
