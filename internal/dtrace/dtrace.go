// Package dtrace is the decision-trace flight recorder: a zero-dependency
// structured log of every scheduling decision the simulator and the Lucid
// policy layer make. Where Result aggregates *outcomes* (JCT, queuing
// delay), dtrace captures *reasoning* — the paper's interpretability claim
// (§3.5, Figure 12) demands that an operator can ask "why was this job
// packed / delayed / profiled?", and the answer is an Event.
//
// Two layers feed the recorder:
//
//   - the engine (internal/sim) records what physically happened: place,
//     pack, preempt, profile transitions, retirement;
//   - the policy (internal/core) annotates why: the estimator ordering that
//     put a job at the head of the queue, the Indolent-packing rule that
//     rejected a partner, the profiler's admit/evict rationale, and the
//     heterogeneity steering preference — including a per-decision
//     counterfactual: the top-K unchosen alternatives with their scores and
//     a regret value.
//
// The recorder is deterministic by construction: events are serialized to
// canonical JSON in record order and folded into a running FNV-1a digest,
// so two runs of the same seeded simulation must produce byte-identical
// traces — the property the golden-trace regression tests lock in. All
// methods are safe on a nil *Recorder (no-ops), which is how the engine's
// hot path stays zero-overhead when tracing is off.
package dtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
)

// Action labels the kind of decision an Event records.
type Action string

// Decision kinds. Engine actions (place, pack, retire, …) record state
// transitions; policy actions (order, steer, pack-reject, profile-skip)
// record reasoning that did not necessarily change state.
const (
	ActRelease      Action = "release"       // job released to the scheduler queue
	ActPlace        Action = "place"         // exclusive placement on the main cluster
	ActPlaceFail    Action = "place-fail"    // exclusive placement attempt rejected
	ActPack         Action = "pack"          // shared (packed) placement accepted
	ActPackReject   Action = "pack-reject"   // packing considered and declined
	ActPlaceElastic Action = "place-elastic" // elastic placement (Pollux baseline)
	ActPreempt      Action = "preempt"       // intrusive checkpoint-preemption
	ActProfileStart Action = "profile-start" // admitted to the profiling cluster
	ActProfileStop  Action = "profile-stop"  // left the profiler (progress zeroed)
	ActProfileEvict Action = "profile-evict" // evicted: profiling time limit hit
	ActProfileSkip  Action = "profile-skip"  // oversized: metrics observed on the fly
	ActOrder        Action = "order"         // queue-ordering decision (estimator)
	ActSteer        Action = "steer"         // heterogeneity-aware generation steering
	ActRetire       Action = "retire"        // job finished and left the cluster

	// Fault-injection actions (internal/chaos): the failure half of the
	// trace, so recovery decisions are as explainable as placement ones.
	ActNodeFail   Action = "node-fail"         // node crashed (capacity revoked) or agent lost
	ActNodeRepair Action = "node-repair"       // node returned from its repair window
	ActGPUFail    Action = "gpu-fail"          // transient GPU failure (resident jobs killed)
	ActRequeue    Action = "requeue"           // killed job re-entered the queue
	ActExhaust    Action = "retries-exhausted" // killed job hit its retry limit (terminal)
)

// Alternative is one unchosen option of a decision — a counterfactual the
// operator can compare against what the scheduler actually did.
type Alternative struct {
	// Job identifies the alternative job (partner candidate, next-in-queue).
	Job int `json:"job,omitempty"`
	// Label carries non-job alternatives (a VC, a preference, a mode).
	Label string `json:"label,omitempty"`
	// Score is the alternative's value under the deciding metric.
	Score float64 `json:"score"`
	// Reason states why this alternative lost (or was never viable).
	Reason string `json:"reason,omitempty"`
}

// Event is one recorded scheduling decision.
type Event struct {
	// Seq is the record's position in the trace (assigned by the recorder).
	Seq int64 `json:"seq"`
	// Tick is the simulation clock in seconds (0 for live servers).
	Tick int64 `json:"tick"`
	// Job is the subject of the decision.
	Job int `json:"job"`
	// Action is the decision kind.
	Action Action `json:"action"`
	// Reason is the rule or rationale that fired, e.g. "score-budget",
	// "tprof-exceeded", "no-capacity".
	Reason string `json:"reason,omitempty"`
	// VC and GPUs locate the subject's demand.
	VC   string `json:"vc,omitempty"`
	GPUs int    `json:"gpus,omitempty"`
	// Partner is the co-located job for pack decisions.
	Partner int `json:"partner,omitempty"`
	// Node is the 1-based node id for node-level fault events (node-fail,
	// node-repair, gpu-fail); 0 means "not a node event" and is omitted, so
	// fault-free traces serialize exactly as before.
	Node int `json:"node,omitempty"`
	// Score is the chosen option's value under the deciding metric
	// (combined utilization for packs, priority for ordering).
	Score float64 `json:"score,omitempty"`
	// Regret is how much better the best unchosen alternative scored than
	// the chosen option (0 when the choice was optimal under the metric).
	Regret float64 `json:"regret,omitempty"`
	// Alternatives are the top-K unchosen options.
	Alternatives []Alternative `json:"alts,omitempty"`
}

// Recorder accumulates events, maintains a running digest and summary
// counters, and optionally streams JSONL to a sink. A nil *Recorder is the
// "tracing off" state: every method no-ops, so callers never branch.
type Recorder struct {
	mu      sync.Mutex
	topK    int
	keep    int // max events retained in memory; <0 = unlimited
	sink    io.Writer
	sinkErr error

	seq     int64
	events  []Event
	dropped int64
	digest  uint64 // running FNV-1a over the serialized trace

	counts    map[Action]int64
	reasons   map[string]int64 // "action/reason" → count
	regretSum float64
	regretMax float64
	regretN   int64
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// DefaultTopK is the default number of counterfactual alternatives kept per
// decision.
const DefaultTopK = 3

// New returns an enabled recorder retaining every event in memory.
func New() *Recorder {
	return &Recorder{
		topK:    DefaultTopK,
		keep:    -1,
		digest:  fnvOffset,
		counts:  map[Action]int64{},
		reasons: map[string]int64{},
	}
}

// Enabled reports whether events should be recorded; callers may use it to
// skip building expensive alternative lists.
func (r *Recorder) Enabled() bool { return r != nil }

// TopK returns how many alternatives a decision should carry (0 on nil).
func (r *Recorder) TopK() int {
	if r == nil {
		return 0
	}
	return r.topK
}

// SetTopK bounds the per-decision counterfactual size.
func (r *Recorder) SetTopK(k int) {
	if r == nil || k < 0 {
		return
	}
	r.mu.Lock()
	r.topK = k
	r.mu.Unlock()
}

// SetKeep bounds in-memory retention to the first n events (the digest and
// summary counters still cover the whole trace). n < 0 retains everything.
func (r *Recorder) SetKeep(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.keep = n
	r.mu.Unlock()
}

// SetSink streams every event to w as one JSON object per line, in record
// order. Write errors are sticky and reported by SinkErr.
func (r *Recorder) SetSink(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sink = w
	r.mu.Unlock()
}

// SinkErr returns the first sink write error, if any.
func (r *Recorder) SinkErr() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// sanitize replaces non-finite scores: NaN/Inf would poison the JSON
// encoding (and the digest) of the whole trace.
func sanitize(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// Record appends one event: assigns its sequence number, folds its
// canonical JSON into the digest, updates the summary counters, streams it
// to the sink, and retains it in memory subject to the keep bound.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	ev.Seq = r.seq
	r.seq++
	ev.Score = sanitize(ev.Score)
	ev.Regret = sanitize(ev.Regret)
	if r.topK >= 0 && len(ev.Alternatives) > r.topK {
		ev.Alternatives = ev.Alternatives[:r.topK]
	}
	for i := range ev.Alternatives {
		ev.Alternatives[i].Score = sanitize(ev.Alternatives[i].Score)
	}

	line, err := json.Marshal(ev)
	if err != nil {
		// Unreachable for this struct shape; keep the trace total anyway.
		line = []byte(fmt.Sprintf(`{"seq":%d,"action":"encode-error"}`, ev.Seq))
	}
	for _, b := range line {
		r.digest = (r.digest ^ uint64(b)) * fnvPrime
	}
	r.digest = (r.digest ^ uint64('\n')) * fnvPrime

	r.counts[ev.Action]++
	if ev.Reason != "" {
		r.reasons[string(ev.Action)+"/"+ev.Reason]++
	}
	if ev.Regret > 0 {
		r.regretSum += ev.Regret
		r.regretN++
		if ev.Regret > r.regretMax {
			r.regretMax = ev.Regret
		}
	}

	if r.sink != nil && r.sinkErr == nil {
		if _, err := r.sink.Write(append(line, '\n')); err != nil {
			r.sinkErr = err
		}
	}

	if r.keep < 0 || len(r.events) < r.keep {
		r.events = append(r.events, ev)
	} else {
		r.dropped++
	}
}

// Len returns the total number of events recorded (including any dropped
// from memory by the keep bound).
func (r *Recorder) Len() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Events returns a copy of the retained events.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Digest returns the FNV-1a hash of the serialized trace so far, as a
// 16-hex-digit string. Two same-seed runs must agree byte for byte, so
// their digests must match — the golden-trace determinism property.
func (r *Recorder) Digest() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprintf("%016x", r.digest)
}

// State is the recorder's cumulative position in a trace: everything needed
// for a restored simulation to continue the digest and summary counters as
// if recording had never stopped. Retained events and the sink are
// deliberately NOT part of the state — a resumed run re-attaches its own
// sink, and the digest covers the full trace regardless of retention.
type State struct {
	Seq       int64            `json:"seq"`
	Digest    uint64           `json:"digest"`
	Dropped   int64            `json:"dropped"`
	Counts    map[Action]int64 `json:"counts,omitempty"`
	Reasons   map[string]int64 `json:"reasons,omitempty"`
	RegretSum float64          `json:"regret_sum,omitempty"`
	RegretMax float64          `json:"regret_max,omitempty"`
	RegretN   int64            `json:"regret_n,omitempty"`
}

// SnapState captures the recorder's cumulative state (see State).
func (r *Recorder) SnapState() State {
	if r == nil {
		return State{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	st := State{
		Seq:       r.seq,
		Digest:    r.digest,
		Dropped:   r.dropped,
		RegretSum: r.regretSum,
		RegretMax: r.regretMax,
		RegretN:   r.regretN,
	}
	if len(r.counts) > 0 {
		st.Counts = make(map[Action]int64, len(r.counts))
		for k, v := range r.counts {
			st.Counts[k] = v
		}
	}
	if len(r.reasons) > 0 {
		st.Reasons = make(map[string]int64, len(r.reasons))
		for k, v := range r.reasons {
			st.Reasons[k] = v
		}
	}
	return st
}

// SetState overwrites the recorder's cumulative counters from a snapshot,
// so subsequent Record calls continue the interrupted trace's sequence
// numbers and digest exactly.
func (r *Recorder) SetState(st State) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq = st.Seq
	r.digest = st.Digest
	if r.digest == 0 {
		r.digest = fnvOffset // zero-value State means "fresh trace"
	}
	r.dropped = st.Dropped
	r.counts = make(map[Action]int64, len(st.Counts))
	for k, v := range st.Counts {
		r.counts[k] = v
	}
	r.reasons = make(map[string]int64, len(st.Reasons))
	for k, v := range st.Reasons {
		r.reasons[k] = v
	}
	r.regretSum, r.regretMax, r.regretN = st.RegretSum, st.RegretMax, st.RegretN
	r.events = nil
}

// WriteJSONL writes the retained events as JSON Lines. When a keep bound
// dropped events, prefer SetSink for a complete trace.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	for _, ev := range r.Events() {
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(line, '\n')); err != nil {
			return err
		}
	}
	return nil
}
