package cluster

import "testing"

func heteroCluster() *Cluster {
	// 4 nodes, first 25% (1 node) fast.
	return New(Spec{GPUsPerNode: 8, FastNodesFrac: 0.25, FastSpeed: 1.6,
		VCs: []VCSpec{{Name: "vc", Nodes: 4}}})
}

func TestSpeedOfGenerations(t *testing.T) {
	c := heteroCluster()
	fast, slow := 0, 0
	for n := 0; n < 4; n++ {
		switch c.SpeedOf(GPUID{Node: n}) {
		case 1.6:
			fast++
		case 1.0:
			slow++
		default:
			t.Fatalf("unexpected speed on node %d", n)
		}
	}
	if fast != 1 || slow != 3 {
		t.Fatalf("generation split %d fast / %d slow", fast, slow)
	}
}

func TestHomogeneousDefaultsToUnitSpeed(t *testing.T) {
	c := New(Spec{GPUsPerNode: 8, VCs: []VCSpec{{Name: "vc", Nodes: 2}}})
	if c.SpeedOf(GPUID{Node: 0}) != 1 || c.SpeedOf(GPUID{Node: 1}) != 1 {
		t.Fatal("homogeneous cluster must report unit speeds")
	}
}

func TestAllocatePreferFast(t *testing.T) {
	c := heteroCluster()
	gpus, err := c.AllocatePrefer(1, "vc", 2, 0, PreferFast)
	if err != nil {
		t.Fatal(err)
	}
	if c.SpeedOf(gpus[0]) != 1.6 {
		t.Fatal("PreferFast landed on a slow node with fast capacity free")
	}
	// Fill the fast node; the next fast-preferring job must fall back.
	if _, err := c.AllocatePrefer(2, "vc", 6, 0, PreferFast); err != nil {
		t.Fatal(err)
	}
	gpus3, err := c.AllocatePrefer(3, "vc", 4, 0, PreferFast)
	if err != nil {
		t.Fatal(err)
	}
	if c.SpeedOf(gpus3[0]) != 1.0 {
		t.Fatal("fallback should use slow nodes once fast is full")
	}
}

func TestAllocatePreferSlow(t *testing.T) {
	c := heteroCluster()
	gpus, err := c.AllocatePrefer(1, "vc", 2, 0, PreferSlow)
	if err != nil {
		t.Fatal(err)
	}
	if c.SpeedOf(gpus[0]) != 1.0 {
		t.Fatal("PreferSlow landed on the fast node")
	}
}

func TestPreferFastDistributed(t *testing.T) {
	// 16-GPU job with PreferFast should include the fast node as one of its
	// two whole nodes.
	c := heteroCluster()
	gpus, err := c.AllocatePrefer(1, "vc", 16, 0, PreferFast)
	if err != nil {
		t.Fatal(err)
	}
	sawFast := false
	for _, g := range gpus {
		if c.SpeedOf(g) == 1.6 {
			sawFast = true
		}
	}
	if !sawFast {
		t.Fatal("distributed PreferFast skipped the fast node")
	}
}

func TestPreferenceDoesNotBreakBestFit(t *testing.T) {
	// With PreferAny, behaviour matches plain Allocate (best fit).
	c := heteroCluster()
	if _, err := c.Allocate(1, "vc", 6, 0); err != nil {
		t.Fatal(err)
	}
	first := c.GPUsOf(1)[0].Node
	g2, err := c.AllocatePrefer(2, "vc", 2, 0, PreferAny)
	if err != nil {
		t.Fatal(err)
	}
	if g2[0].Node != first {
		t.Fatal("PreferAny no longer best-fits")
	}
}
