package cluster

import "fmt"

// GPUState is the serializable occupancy of one device. MemUsed is carried
// verbatim — it accumulates float residue over reserve/release cycles, so
// recomputing it from job records would not be bit-exact.
type GPUState struct {
	Jobs    []int   `json:"jobs,omitempty"`
	MemUsed float64 `json:"mem_used,omitempty"`
}

// NodeState is the serializable state of one server.
type NodeState struct {
	Down bool       `json:"down,omitempty"`
	GPUs []GPUState `json:"gpus"`
}

// SnapState is the complete mutable allocation state of a Cluster. The spec
// (shape, VC layout, generation speeds) is construction-time configuration
// and is deliberately not included: Restore applies a SnapState to a cluster
// rebuilt from the same spec, and validates the shapes agree.
type SnapState struct {
	Nodes   []NodeState     `json:"nodes"`
	JobGPUs map[int][]GPUID `json:"job_gpus,omitempty"`
	JobMem  map[int]float64 `json:"job_mem,omitempty"`
}

// SnapState captures the cluster's mutable state for a snapshot.
func (c *Cluster) SnapState() SnapState {
	st := SnapState{Nodes: make([]NodeState, len(c.nodes))}
	for i, nd := range c.nodes {
		ns := NodeState{Down: nd.down, GPUs: make([]GPUState, len(nd.gpus))}
		for g := range nd.gpus {
			ns.GPUs[g] = GPUState{
				Jobs:    append([]int(nil), nd.gpus[g].jobs...),
				MemUsed: nd.gpus[g].memUsed,
			}
		}
		st.Nodes[i] = ns
	}
	if len(c.jobGPUs) > 0 {
		st.JobGPUs = make(map[int][]GPUID, len(c.jobGPUs))
		for id, gpus := range c.jobGPUs {
			st.JobGPUs[id] = append([]GPUID(nil), gpus...)
		}
	}
	if len(c.jobMem) > 0 {
		st.JobMem = make(map[int]float64, len(c.jobMem))
		for id, m := range c.jobMem {
			st.JobMem[id] = m
		}
	}
	return st
}

// Restore overwrites the cluster's mutable state from a snapshot taken from
// a cluster of the identical spec. The shape must match exactly; a mismatch
// means the snapshot belongs to a different world and is rejected.
func (c *Cluster) Restore(st SnapState) error {
	if len(st.Nodes) != len(c.nodes) {
		return fmt.Errorf("cluster: snapshot has %d nodes, cluster has %d", len(st.Nodes), len(c.nodes))
	}
	for i, ns := range st.Nodes {
		if len(ns.GPUs) != len(c.nodes[i].gpus) {
			return fmt.Errorf("cluster: snapshot node %d has %d GPUs, cluster has %d",
				i, len(ns.GPUs), len(c.nodes[i].gpus))
		}
	}
	for i, ns := range st.Nodes {
		nd := c.nodes[i]
		nd.down = ns.Down
		for g := range nd.gpus {
			nd.gpus[g].jobs = append([]int(nil), ns.GPUs[g].Jobs...)
			nd.gpus[g].memUsed = ns.GPUs[g].MemUsed
		}
	}
	c.jobGPUs = make(map[int][]GPUID, len(st.JobGPUs))
	for id, gpus := range st.JobGPUs {
		c.jobGPUs[id] = append([]GPUID(nil), gpus...)
	}
	c.jobMem = make(map[int]float64, len(st.JobMem))
	for id, m := range st.JobMem {
		c.jobMem[id] = m
	}
	c.rebuildFreeIndex()
	if bad := c.Audit(); len(bad) > 0 {
		return fmt.Errorf("cluster: restored state fails audit: %s", bad[0])
	}
	return nil
}
