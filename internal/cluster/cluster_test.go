package cluster

import (
	"testing"
	"testing/quick"
)

func twoVC() *Cluster {
	return New(Spec{GPUsPerNode: 8, VCs: []VCSpec{{"vcA", 2}, {"vcB", 1}}})
}

func TestTotalsAndVCs(t *testing.T) {
	c := twoVC()
	if c.TotalGPUs() != 24 {
		t.Fatalf("total = %d", c.TotalGPUs())
	}
	if got := c.FreeGPUs("vcA"); got != 16 {
		t.Fatalf("vcA free = %d", got)
	}
	if got := c.FreeGPUs(""); got != 24 {
		t.Fatalf("cluster free = %d", got)
	}
	if names := c.VCNames(); len(names) != 2 || names[0] != "vcA" {
		t.Fatalf("VC names = %v", names)
	}
}

func TestExclusiveAllocationConsolidated(t *testing.T) {
	c := twoVC()
	gpus, err := c.Allocate(1, "vcA", 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(gpus) != 4 {
		t.Fatalf("got %d GPUs", len(gpus))
	}
	node := gpus[0].Node
	for _, g := range gpus {
		if g.Node != node {
			t.Fatal("single-node job split across nodes")
		}
	}
	if c.FreeGPUs("vcA") != 12 {
		t.Fatalf("free after alloc = %d", c.FreeGPUs("vcA"))
	}
}

func TestBestFitReducesFragmentation(t *testing.T) {
	c := twoVC()
	// Occupy 6 GPUs on some node of vcA.
	if _, err := c.Allocate(1, "vcA", 6, 0); err != nil {
		t.Fatal(err)
	}
	firstNode := c.GPUsOf(1)[0].Node
	// A 2-GPU job must best-fit onto the partially used node.
	if _, err := c.Allocate(2, "vcA", 2, 0); err != nil {
		t.Fatal(err)
	}
	if got := c.GPUsOf(2)[0].Node; got != firstNode {
		t.Fatalf("best fit chose node %d, want %d", got, firstNode)
	}
	// An 8-GPU job still fits on the untouched node.
	if _, err := c.Allocate(3, "vcA", 8, 0); err != nil {
		t.Fatal(err)
	}
}

func TestVCIsolation(t *testing.T) {
	c := twoVC()
	// vcB has one node = 8 GPUs; a 9th GPU must fail.
	if _, err := c.Allocate(1, "vcB", 8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(2, "vcB", 1, 0); err == nil {
		t.Fatal("allocation in full VC succeeded")
	}
	// vcA capacity is untouched.
	if !c.CanAllocate("vcA", 16) {
		t.Fatal("vcA should still be empty")
	}
}

func TestDistributedAllocation(t *testing.T) {
	c := New(Spec{GPUsPerNode: 8, VCs: []VCSpec{{"vc", 4}}})
	gpus, err := c.Allocate(1, "vc", 20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gpus) != 20 {
		t.Fatalf("got %d GPUs", len(gpus))
	}
	nodes := map[int]int{}
	for _, g := range gpus {
		nodes[g.Node]++
	}
	full := 0
	for _, cnt := range nodes {
		if cnt == 8 {
			full++
		}
	}
	if full != 2 {
		t.Fatalf("distributed job should take 2 whole nodes, took %d (%v)", full, nodes)
	}
}

func TestDistributedNeedsWholeFreeNodes(t *testing.T) {
	c := New(Spec{GPUsPerNode: 8, VCs: []VCSpec{{"vc", 2}}})
	// One GPU busy on each node → no whole free node remains.
	if _, err := c.Allocate(1, "vc", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(2, "vc", 8, 0); err != nil {
		t.Fatal(err) // 8 fits on the second node
	}
	if _, err := c.Allocate(3, "vc", 9, 0); err == nil {
		t.Fatal("9-GPU job fit without a whole free node")
	}
}

func TestSharing(t *testing.T) {
	c := twoVC()
	if _, err := c.Allocate(1, "vcA", 2, 8000); err != nil {
		t.Fatal(err)
	}
	if !c.CanShare(1, 8000) {
		t.Fatal("CanShare should allow a second 8 GB job on 24 GB GPUs")
	}
	gpus, err := c.AllocateShared(2, 1, 8000)
	if err != nil {
		t.Fatal(err)
	}
	// Same GPU set.
	g1 := c.GPUsOf(1)
	for i := range gpus {
		if gpus[i] != g1[i] {
			t.Fatal("shared job not on partner's GPUs")
		}
	}
	if p := c.PartnerOf(1); p != 2 {
		t.Fatalf("PartnerOf(1) = %d", p)
	}
	if p := c.PartnerOf(2); p != 1 {
		t.Fatalf("PartnerOf(2) = %d", p)
	}
	// A third job must be rejected (two-job cap).
	if c.CanShare(1, 100) {
		t.Fatal("three-way sharing allowed")
	}
	if _, err := c.AllocateShared(3, 1, 100); err == nil {
		t.Fatal("three-way sharing succeeded")
	}
}

func TestSharingOOMGuard(t *testing.T) {
	c := twoVC()
	if _, err := c.Allocate(1, "vcA", 1, 16000); err != nil {
		t.Fatal(err)
	}
	if c.CanShare(1, 10000) {
		t.Fatal("16+10 GB should exceed 24 GB")
	}
	if !c.CanShare(1, 7000) {
		t.Fatal("16+7 GB fits")
	}
}

func TestFreeRestoresState(t *testing.T) {
	c := twoVC()
	if _, err := c.Allocate(1, "vcA", 4, 5000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateShared(2, 1, 5000); err != nil {
		t.Fatal(err)
	}
	c.Free(1)
	if c.Allocated(1) {
		t.Fatal("job 1 still allocated")
	}
	// Job 2 now runs exclusively on those GPUs.
	if p := c.PartnerOf(2); p != -1 {
		t.Fatalf("partner after free = %d", p)
	}
	single, shared := c.Occupancy()
	if single != 4 || shared != 0 {
		t.Fatalf("occupancy = %d/%d", single, shared)
	}
	c.Free(2)
	if c.FreeGPUs("") != 24 {
		t.Fatal("GPUs leaked")
	}
	// Double free is a no-op.
	c.Free(2)
}

func TestDoubleAllocateRejected(t *testing.T) {
	c := twoVC()
	if _, err := c.Allocate(1, "vcA", 1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(1, "vcA", 1, 0); err == nil {
		t.Fatal("double allocation accepted")
	}
	if _, err := c.AllocateShared(1, 1, 0); err == nil {
		t.Fatal("self-share accepted")
	}
	if _, err := c.Allocate(2, "vcA", 0, 0); err == nil {
		t.Fatal("zero-GPU job accepted")
	}
}

func TestOccupancy(t *testing.T) {
	c := twoVC()
	c.Allocate(1, "vcA", 3, 0)
	c.Allocate(2, "vcA", 2, 0)
	c.AllocateShared(3, 2, 0)
	single, shared := c.Occupancy()
	if single != 3 || shared != 2 {
		t.Fatalf("occupancy = %d single %d shared", single, shared)
	}
}

func TestUniformSpec(t *testing.T) {
	spec := UniformSpec(10, 8, 3)
	if got := spec.TotalGPUs(); got != 80 {
		t.Fatalf("total = %d", got)
	}
	if len(spec.VCs) != 3 {
		t.Fatalf("VCs = %d", len(spec.VCs))
	}
	// 10 = 4+3+3.
	if spec.VCs[0].Nodes != 4 || spec.VCs[1].Nodes != 3 {
		t.Fatalf("node split = %+v", spec.VCs)
	}
	one := UniformSpec(5, 8, 1)
	if len(one.VCs) != 1 || one.VCs[0].Nodes != 5 {
		t.Fatalf("single-VC spec = %+v", one)
	}
}

func TestAllocateFreeInvariant(t *testing.T) {
	// Property: any sequence of allocations followed by freeing everything
	// returns the cluster to fully free.
	check := func(sizes []uint8) bool {
		c := New(Spec{GPUsPerNode: 8, VCs: []VCSpec{{"vc", 4}}})
		var placed []int
		id := 0
		for _, s := range sizes {
			n := int(s)%8 + 1
			id++
			if _, err := c.Allocate(id, "vc", n, 100); err == nil {
				placed = append(placed, id)
			}
		}
		for _, id := range placed {
			c.Free(id)
		}
		single, shared := c.Occupancy()
		return c.FreeGPUs("") == 32 && single == 0 && shared == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVCOf(t *testing.T) {
	c := twoVC()
	gpus, _ := c.Allocate(1, "vcB", 1, 0)
	if got := c.VCOf(gpus[0]); got != "vcB" {
		t.Fatalf("VCOf = %q", got)
	}
}

// TestAuditCleanAndCorrupt: Audit must stay silent on any state reachable
// through the public API and speak up when the books are cooked.
func TestAuditCleanAndCorrupt(t *testing.T) {
	c := twoVC()
	if _, err := c.Allocate(1, "vcA", 2, 1000); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocateShared(2, 1, 1000); err != nil {
		t.Fatal(err)
	}
	if probs := c.Audit(); len(probs) != 0 {
		t.Fatalf("clean cluster audits dirty: %v", probs)
	}

	// Cook the books: a GPU hosts a job the ledger has no record of.
	c.nodes[0].gpus[0].jobs = append(c.nodes[0].gpus[0].jobs, 99)
	probs := c.Audit()
	if len(probs) == 0 {
		t.Fatal("audit missed a ghost job on a GPU")
	}

	// And the reverse: the ledger claims a GPU the device list denies.
	c2 := twoVC()
	if _, err := c2.Allocate(1, "vcA", 1, 0); err != nil {
		t.Fatal(err)
	}
	held := c2.jobGPUs[1][0]
	c2.jobGPUs[1] = append(c2.jobGPUs[1], GPUID{Node: held.Node, Index: held.Index + 1})
	if probs := c2.Audit(); len(probs) == 0 {
		t.Fatal("audit missed a ledger overclaim")
	}

	// Over-capacity sharing: three jobs on one device busts maxShare.
	c3 := twoVC()
	c3.nodes[0].gpus[0].jobs = []int{1, 2, 3}
	c3.jobGPUs[1] = []GPUID{{0, 0}}
	c3.jobGPUs[2] = []GPUID{{0, 0}}
	c3.jobGPUs[3] = []GPUID{{0, 0}}
	if probs := c3.Audit(); len(probs) == 0 {
		t.Fatal("audit missed a maxShare violation")
	}
}
