// Package cluster is the GPU-cluster resource substrate: nodes of GPUs
// partitioned into virtual clusters (VCs, §2.1), with consolidated exclusive
// placement, two-job GPU sharing (the only sharing degree Lucid's Indolent
// Packing permits), memory accounting for the OOM guard, and occupancy
// statistics for the utilization experiments.
//
// The package is pure bookkeeping — it knows nothing about time or job
// semantics. The simulator drives it.
package cluster

import (
	"fmt"
	"sort"
)

// GPUID addresses one GPU.
type GPUID struct {
	Node  int
	Index int
}

// VCSpec describes one virtual cluster partition.
type VCSpec struct {
	Name  string
	Nodes int
}

// Spec describes a whole cluster.
type Spec struct {
	GPUsPerNode int // typically 8
	GPUMemMB    float64
	VCs         []VCSpec

	// Heterogeneous generations (the paper's §6 future-work extension):
	// the first FastNodesFrac of every VC's nodes carry a newer GPU
	// generation running FastSpeed× faster. Zero values mean a homogeneous
	// cluster (the paper's evaluated setting).
	FastNodesFrac float64
	FastSpeed     float64
}

// TotalGPUs returns the cluster-wide GPU count of the spec.
func (s Spec) TotalGPUs() int {
	n := 0
	for _, vc := range s.VCs {
		n += vc.Nodes * s.GPUsPerNode
	}
	return n
}

// gpu tracks the jobs resident on one device.
type gpu struct {
	jobs    []int // job IDs, ≤ maxShare
	memUsed float64
}

// node is one server.
type node struct {
	id    int
	vc    string
	speed float64 // GPU-generation speed factor (1.0 = baseline)
	down  bool    // crashed: capacity revoked until repaired
	gpus  []gpu
	// free is the count of completely idle GPUs, maintained incrementally
	// by commit/Free so placement never rescans the per-GPU job lists. It
	// tracks idleness regardless of down status; freeCount applies the
	// down mask.
	free int
}

// freeCount returns 0 for a down node, which is what keeps every placement
// path (best-fit, whole-node scan, FreeGPUs) away from revoked capacity
// without any of them knowing about failures.
func (n *node) freeCount() int {
	if n.down {
		return 0
	}
	return n.free
}

// Cluster is the mutable allocation state.
type Cluster struct {
	spec    Spec
	nodes   []*node
	vcNodes map[string][]*node
	jobGPUs map[int][]GPUID
	jobMem  map[int]float64 // per-GPU memory reserved by the job
	// vcFree counts idle GPUs on *up* nodes per VC, so FreeGPUs is O(1)
	// instead of a node scan (elastic schedulers call it per pending job).
	vcFree map[string]int

	maxShare int
}

// New builds a cluster from a spec. Every VC gets its own contiguous node
// range, mirroring production partitioning.
func New(spec Spec) *Cluster {
	if spec.GPUsPerNode <= 0 {
		spec.GPUsPerNode = 8
	}
	if spec.GPUMemMB <= 0 {
		spec.GPUMemMB = 24000
	}
	c := &Cluster{
		spec:     spec,
		vcNodes:  make(map[string][]*node),
		jobGPUs:  make(map[int][]GPUID),
		jobMem:   make(map[int]float64),
		vcFree:   make(map[string]int),
		maxShare: 2,
	}
	id := 0
	for _, vc := range spec.VCs {
		fast := int(float64(vc.Nodes) * spec.FastNodesFrac)
		for k := 0; k < vc.Nodes; k++ {
			speed := 1.0
			if k < fast && spec.FastSpeed > 0 {
				speed = spec.FastSpeed
			}
			n := &node{id: id, vc: vc.Name, speed: speed,
				gpus: make([]gpu, spec.GPUsPerNode), free: spec.GPUsPerNode}
			c.nodes = append(c.nodes, n)
			c.vcNodes[vc.Name] = append(c.vcNodes[vc.Name], n)
			c.vcFree[vc.Name] += spec.GPUsPerNode
			id++
		}
	}
	return c
}

// SpeedOf returns the GPU-generation speed factor of the node hosting g.
func (c *Cluster) SpeedOf(g GPUID) float64 {
	s := c.nodes[g.Node].speed
	if s <= 0 {
		return 1
	}
	return s
}

// Spec returns the construction spec.
func (c *Cluster) Spec() Spec { return c.spec }

// TotalGPUs returns the cluster-wide GPU count.
func (c *Cluster) TotalGPUs() int { return len(c.nodes) * c.spec.GPUsPerNode }

// VCNames lists the VCs in spec order.
func (c *Cluster) VCNames() []string {
	out := make([]string, 0, len(c.spec.VCs))
	for _, vc := range c.spec.VCs {
		out = append(out, vc.Name)
	}
	return out
}

// FreeGPUs returns the number of completely idle GPUs in the VC ("" = whole
// cluster). O(1) from the incrementally maintained per-VC index.
func (c *Cluster) FreeGPUs(vc string) int {
	if vc == "" {
		n := 0
		for _, v := range c.spec.VCs {
			n += c.vcFree[v.Name]
		}
		return n
	}
	return c.vcFree[vc]
}

func (c *Cluster) nodesOf(vc string) []*node {
	if vc == "" {
		return c.nodes
	}
	return c.vcNodes[vc]
}

// CanAllocate reports whether Allocate would succeed for an exclusive,
// consolidated placement of n GPUs in the VC.
func (c *Cluster) CanAllocate(vc string, n int) bool {
	return c.planExclusive(vc, n, PreferAny) != nil
}

// Preference biases node choice by GPU generation (heterogeneity-aware
// placement, the §6 extension).
type Preference int

// Placement preferences.
const (
	PreferAny  Preference = iota // pure best-fit (the paper's setting)
	PreferFast                   // newest generation first (long/heavy jobs)
	PreferSlow                   // oldest generation first (short jobs)
)

// Allocate places a job exclusively and consolidated: single-node jobs land
// on the best-fit node (fewest free GPUs that still fit, reducing
// fragmentation per §3.2); multi-node jobs take whole nodes plus a best-fit
// remainder. memPerGPU is reserved on each GPU for the OOM guard.
func (c *Cluster) Allocate(jobID int, vc string, n int, memPerGPU float64) ([]GPUID, error) {
	return c.AllocatePrefer(jobID, vc, n, memPerGPU, PreferAny)
}

// AllocatePrefer is Allocate with a GPU-generation preference.
func (c *Cluster) AllocatePrefer(jobID int, vc string, n int, memPerGPU float64, pref Preference) ([]GPUID, error) {
	if _, dup := c.jobGPUs[jobID]; dup {
		return nil, fmt.Errorf("cluster: job %d already allocated", jobID)
	}
	if n <= 0 {
		return nil, fmt.Errorf("cluster: job %d requests %d GPUs", jobID, n)
	}
	plan := c.planExclusive(vc, n, pref)
	if plan == nil {
		return nil, fmt.Errorf("cluster: no capacity for %d GPUs in VC %q", n, vc)
	}
	c.commit(jobID, plan, memPerGPU)
	return plan, nil
}

// better reports whether candidate nd beats the incumbent under the
// preference: generation first (when preferred), tighter fit second.
func better(pref Preference, nd *node, ndFree int, best *node, bestFree int) bool {
	if best == nil {
		return true
	}
	switch pref {
	case PreferFast:
		if nd.speed != best.speed {
			return nd.speed > best.speed
		}
	case PreferSlow:
		if nd.speed != best.speed {
			return nd.speed < best.speed
		}
	}
	return ndFree < bestFree
}

// planExclusive computes a consolidated placement or nil.
func (c *Cluster) planExclusive(vc string, n int, pref Preference) []GPUID {
	nodes := c.nodesOf(vc)
	per := c.spec.GPUsPerNode

	if n <= per {
		var best *node
		bestFree := per + 1
		for _, nd := range nodes {
			f := nd.freeCount()
			if f >= n && better(pref, nd, f, best, bestFree) {
				best, bestFree = nd, f
			}
		}
		if best == nil {
			return nil
		}
		return takeFree(best, n)
	}

	// Distributed job: whole free nodes first (generation-preferred, id
	// tie-broken for determinism), then a best-fit remainder.
	whole := n / per
	rem := n % per
	var fullFree []*node
	for _, nd := range nodes {
		if nd.freeCount() == per {
			fullFree = append(fullFree, nd)
		}
	}
	if len(fullFree) < whole {
		return nil
	}
	sort.Slice(fullFree, func(i, j int) bool {
		a, b := fullFree[i], fullFree[j]
		switch pref {
		case PreferFast:
			if a.speed != b.speed {
				return a.speed > b.speed
			}
		case PreferSlow:
			if a.speed != b.speed {
				return a.speed < b.speed
			}
		}
		return a.id < b.id
	})
	plan := make([]GPUID, 0, n)
	used := map[int]bool{}
	for _, nd := range fullFree[:whole] {
		plan = append(plan, takeFree(nd, per)...)
		used[nd.id] = true
	}
	if rem > 0 {
		var best *node
		bestFree := per + 1
		for _, nd := range nodes {
			if used[nd.id] {
				continue
			}
			f := nd.freeCount()
			if f >= rem && better(pref, nd, f, best, bestFree) {
				best, bestFree = nd, f
			}
		}
		if best == nil {
			return nil
		}
		plan = append(plan, takeFree(best, rem)...)
	}
	return plan
}

// takeFree lists the first n free GPU ids on a node (no mutation).
func takeFree(nd *node, n int) []GPUID {
	out := make([]GPUID, 0, n)
	for i := range nd.gpus {
		if len(nd.gpus[i].jobs) == 0 {
			out = append(out, GPUID{Node: nd.id, Index: i})
			if len(out) == n {
				return out
			}
		}
	}
	return nil
}

func (c *Cluster) commit(jobID int, plan []GPUID, memPerGPU float64) {
	for _, g := range plan {
		nd := c.nodes[g.Node]
		st := &nd.gpus[g.Index]
		if len(st.jobs) == 0 {
			nd.free--
			if !nd.down {
				c.vcFree[nd.vc]--
			}
		}
		st.jobs = append(st.jobs, jobID)
		st.memUsed += memPerGPU
	}
	c.jobGPUs[jobID] = plan
	c.jobMem[jobID] = memPerGPU
}

// CanShare reports whether AllocateShared would succeed: the partner is
// allocated, every one of its GPUs currently hosts only the partner, and
// memory headroom remains for memPerGPU more on each.
func (c *Cluster) CanShare(partnerID int, memPerGPU float64) bool {
	gpus, ok := c.jobGPUs[partnerID]
	if !ok {
		return false
	}
	for _, g := range gpus {
		st := &c.nodes[g.Node].gpus[g.Index]
		if len(st.jobs) >= c.maxShare {
			return false
		}
		if st.memUsed+memPerGPU > c.spec.GPUMemMB {
			return false
		}
	}
	return true
}

// AllocateShared packs jobID onto exactly the partner's GPU set (§3.3 rule 2
// forbids packing jobs with different GPU demands, so the sets coincide).
func (c *Cluster) AllocateShared(jobID, partnerID int, memPerGPU float64) ([]GPUID, error) {
	if _, dup := c.jobGPUs[jobID]; dup {
		return nil, fmt.Errorf("cluster: job %d already allocated", jobID)
	}
	if !c.CanShare(partnerID, memPerGPU) {
		return nil, fmt.Errorf("cluster: cannot share with job %d", partnerID)
	}
	plan := append([]GPUID(nil), c.jobGPUs[partnerID]...)
	c.commit(jobID, plan, memPerGPU)
	return plan, nil
}

// Free releases every GPU the job holds. Unknown jobs are a no-op.
func (c *Cluster) Free(jobID int) {
	gpus, ok := c.jobGPUs[jobID]
	if !ok {
		return
	}
	mem := c.jobMem[jobID]
	for _, g := range gpus {
		nd := c.nodes[g.Node]
		st := &nd.gpus[g.Index]
		st.memUsed -= mem
		if st.memUsed < 0 {
			st.memUsed = 0
		}
		for i, id := range st.jobs {
			if id == jobID {
				st.jobs = append(st.jobs[:i], st.jobs[i+1:]...)
				break
			}
		}
		if len(st.jobs) == 0 {
			nd.free++
			if !nd.down {
				c.vcFree[nd.vc]++
			}
		}
	}
	delete(c.jobGPUs, jobID)
	delete(c.jobMem, jobID)
}

// GPUsOf returns the job's GPU set (nil if not allocated).
func (c *Cluster) GPUsOf(jobID int) []GPUID { return c.jobGPUs[jobID] }

// Allocated reports whether the job holds GPUs.
func (c *Cluster) Allocated(jobID int) bool {
	_, ok := c.jobGPUs[jobID]
	return ok
}

// PartnerOf returns the job sharing jobID's GPUs, or -1. With maxShare = 2
// there is at most one.
func (c *Cluster) PartnerOf(jobID int) int {
	gpus, ok := c.jobGPUs[jobID]
	if !ok || len(gpus) == 0 {
		return -1
	}
	g := gpus[0]
	for _, id := range c.nodes[g.Node].gpus[g.Index].jobs {
		if id != jobID {
			return id
		}
	}
	return -1
}

// Occupancy returns how many GPUs host exactly one job and how many host
// two.
func (c *Cluster) Occupancy() (single, shared int) {
	for _, nd := range c.nodes {
		for i := range nd.gpus {
			switch len(nd.gpus[i].jobs) {
			case 1:
				single++
			case 2:
				shared++
			}
		}
	}
	return single, shared
}

// Audit validates the cluster's physical invariants and internal
// consistency, returning human-readable violation descriptions (empty =
// healthy). It is the substrate half of the simulator's InvariantChecker:
// per-GPU sharing never exceeds the two-job cap, reserved memory never
// exceeds device capacity, and the job→GPU index agrees with the per-GPU
// job lists in both directions.
func (c *Cluster) Audit() []string {
	var out []string
	held := map[int]int{} // job → GPUs referencing it in per-GPU lists
	upFree := map[string]int{}
	for _, nd := range c.nodes {
		idle := 0
		for i := range nd.gpus {
			if len(nd.gpus[i].jobs) == 0 {
				idle++
			}
		}
		if idle != nd.free {
			out = append(out, fmt.Sprintf(
				"node %d free index %d disagrees with %d actually idle GPUs", nd.id, nd.free, idle))
		}
		if !nd.down {
			upFree[nd.vc] += idle
		}
		for i := range nd.gpus {
			st := &nd.gpus[i]
			if nd.down && len(st.jobs) > 0 {
				out = append(out, fmt.Sprintf(
					"gpu %d/%d hosts %d jobs on a down node", nd.id, i, len(st.jobs)))
			}
			if len(st.jobs) > c.maxShare {
				out = append(out, fmt.Sprintf(
					"gpu %d/%d hosts %d jobs, cap %d", nd.id, i, len(st.jobs), c.maxShare))
			}
			// Tiny epsilon absorbs float accumulation from repeated
			// reserve/release cycles.
			if st.memUsed > c.spec.GPUMemMB+1e-6 {
				out = append(out, fmt.Sprintf(
					"gpu %d/%d memory %.1f MB exceeds capacity %.1f MB",
					nd.id, i, st.memUsed, c.spec.GPUMemMB))
			}
			seen := map[int]bool{}
			for _, id := range st.jobs {
				if seen[id] {
					out = append(out, fmt.Sprintf("gpu %d/%d lists job %d twice", nd.id, i, id))
				}
				seen[id] = true
				held[id]++
				if _, ok := c.jobGPUs[id]; !ok {
					out = append(out, fmt.Sprintf(
						"gpu %d/%d hosts job %d with no allocation record", nd.id, i, id))
				}
			}
		}
	}
	for id, gpus := range c.jobGPUs {
		if held[id] != len(gpus) {
			out = append(out, fmt.Sprintf(
				"job %d allocation records %d GPUs but %d GPUs host it", id, len(gpus), held[id]))
		}
		for _, g := range gpus {
			if g.Node < 0 || g.Node >= len(c.nodes) || g.Index < 0 || g.Index >= c.spec.GPUsPerNode {
				out = append(out, fmt.Sprintf("job %d holds out-of-range GPU %v", id, g))
				continue
			}
			found := false
			for _, jid := range c.nodes[g.Node].gpus[g.Index].jobs {
				if jid == id {
					found = true
					break
				}
			}
			if !found {
				out = append(out, fmt.Sprintf("job %d claims GPU %v which does not host it", id, g))
			}
		}
	}
	for _, vc := range c.spec.VCs {
		if c.vcFree[vc.Name] != upFree[vc.Name] {
			out = append(out, fmt.Sprintf(
				"vc %q free index %d disagrees with %d actually idle up-node GPUs",
				vc.Name, c.vcFree[vc.Name], upFree[vc.Name]))
		}
	}
	return out
}

// VCOf returns the VC that owns the node hosting g.
func (c *Cluster) VCOf(g GPUID) string { return c.nodes[g.Node].vc }

// NumNodes returns the node count.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// NodeDown reports whether the node's capacity is currently revoked.
func (c *Cluster) NodeDown(nodeID int) bool {
	if nodeID < 0 || nodeID >= len(c.nodes) {
		return false
	}
	return c.nodes[nodeID].down
}

// DownNodes lists revoked nodes in ascending id order.
func (c *Cluster) DownNodes() []int {
	var out []int
	for _, nd := range c.nodes {
		if nd.down {
			out = append(out, nd.id)
		}
	}
	return out
}

// JobsOn returns the sorted, deduplicated set of jobs resident on the node.
func (c *Cluster) JobsOn(nodeID int) []int {
	if nodeID < 0 || nodeID >= len(c.nodes) {
		return nil
	}
	seen := map[int]bool{}
	var out []int
	for i := range c.nodes[nodeID].gpus {
		for _, id := range c.nodes[nodeID].gpus[i].jobs {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// JobsOnGPU returns the sorted set of jobs resident on one GPU.
func (c *Cluster) JobsOnGPU(g GPUID) []int {
	if g.Node < 0 || g.Node >= len(c.nodes) || g.Index < 0 || g.Index >= c.spec.GPUsPerNode {
		return nil
	}
	out := append([]int(nil), c.nodes[g.Node].gpus[g.Index].jobs...)
	sort.Ints(out)
	return out
}

// FailNode revokes the node's capacity and returns the sorted set of jobs
// that were resident there (the caller — the chaos engine — is responsible
// for killing them and freeing their allocations, which may span other
// nodes for distributed jobs). Idempotent: failing a down node returns its
// current residents without other effect.
func (c *Cluster) FailNode(nodeID int) []int {
	if nodeID < 0 || nodeID >= len(c.nodes) {
		return nil
	}
	victims := c.JobsOn(nodeID)
	nd := c.nodes[nodeID]
	if !nd.down {
		nd.down = true
		c.vcFree[nd.vc] -= nd.free
	}
	return victims
}

// RepairNode returns a failed node's capacity to service. No-op on healthy
// or out-of-range nodes.
func (c *Cluster) RepairNode(nodeID int) {
	if nodeID < 0 || nodeID >= len(c.nodes) {
		return
	}
	nd := c.nodes[nodeID]
	if nd.down {
		nd.down = false
		c.vcFree[nd.vc] += nd.free
	}
}

// rebuildFreeIndex recomputes the per-node and per-VC idle-GPU counters from
// the ground-truth per-GPU job lists. The counters are maintained
// incrementally on every allocation path; this full rebuild exists for bulk
// state overwrites (snapshot Restore), where recomputing is simpler and
// cheaper than replaying the deltas.
func (c *Cluster) rebuildFreeIndex() {
	for vc := range c.vcFree {
		c.vcFree[vc] = 0
	}
	for _, nd := range c.nodes {
		idle := 0
		for i := range nd.gpus {
			if len(nd.gpus[i].jobs) == 0 {
				idle++
			}
		}
		nd.free = idle
		if !nd.down {
			c.vcFree[nd.vc] += idle
		}
	}
}

// UniformSpec is a convenience constructor: nodes evenly split across
// numVCs VCs named vc0..vc<n-1> (numVCs = 1 gives a single "all" VC,
// matching the Philly setup).
func UniformSpec(totalNodes, gpusPerNode, numVCs int) Spec {
	spec := Spec{GPUsPerNode: gpusPerNode}
	if numVCs <= 1 {
		spec.VCs = []VCSpec{{Name: "vc0", Nodes: totalNodes}}
		return spec
	}
	base := totalNodes / numVCs
	extra := totalNodes % numVCs
	for i := 0; i < numVCs; i++ {
		n := base
		if i < extra {
			n++
		}
		spec.VCs = append(spec.VCs, VCSpec{Name: fmt.Sprintf("vc%d", i), Nodes: n})
	}
	return spec
}
