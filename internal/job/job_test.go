package job

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func sample() *Job {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	return New(7, "train-v1", "alice", "vc0", 4, 100, 3600, cfg)
}

func TestNewInitializesSentinels(t *testing.T) {
	j := sample()
	if j.FirstStart != -1 || j.Finish != -1 {
		t.Fatal("sentinels not set")
	}
	if j.RemainingWork != 3600 {
		t.Fatalf("remaining work %v", j.RemainingWork)
	}
	if j.State != Pending {
		t.Fatalf("state %v", j.State)
	}
	if j.AMP != j.Config.AMP {
		t.Fatal("AMP flag not mirrored from config")
	}
}

func TestJCTAndQueueDelay(t *testing.T) {
	j := sample()
	if j.JCT() != -1 || j.QueueDelay() != -1 {
		t.Fatal("unfinished job must report -1")
	}
	j.Finish = 4000
	j.RunTime = 3600
	if got := j.JCT(); got != 3900 {
		t.Fatalf("JCT = %d", got)
	}
	if got := j.QueueDelay(); got != 300 {
		t.Fatalf("queue delay = %d", got)
	}
	// Queue delay never negative even with rounding slop.
	j.RunTime = 5000
	if got := j.QueueDelay(); got != 0 {
		t.Fatalf("negative queue delay leaked: %d", got)
	}
}

func TestDistributed(t *testing.T) {
	j := sample()
	if j.Distributed() {
		t.Fatal("4-GPU job flagged distributed")
	}
	j.GPUs = 16
	if !j.Distributed() {
		t.Fatal("16-GPU job not flagged distributed")
	}
	j.GPUs = 8
	if j.Distributed() {
		t.Fatal("8-GPU single-node job flagged distributed")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Pending: "Pending", Profiling: "Profiling", Queued: "Queued",
		Running: "Running", Finished: "Finished", State(99): "Unknown",
	}
	for s, str := range want {
		if s.String() != str {
			t.Fatalf("%d stringifies as %q", s, s.String())
		}
	}
}

func TestStringContainsIdentity(t *testing.T) {
	s := sample().String()
	for _, want := range []string{"job7", "alice", "train-v1", "gpus=4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
