// Package job defines the deep-learning training job model shared by the
// trace generators, the cluster simulator and every scheduler. A job carries
// two kinds of information:
//
//   - what a scheduler may observe non-intrusively: submission metadata
//     (name, user, VC, GPU demand, submit time) and — after Lucid's profiler
//     has run it briefly — the measured resource profile;
//   - ground truth the simulator alone uses to advance execution: the true
//     exclusive-execution duration and the underlying workload configuration
//     that drives the interference model.
//
// Baseline schedulers that "cheat" (SJF is explicitly an impractical oracle
// in the paper) read the ground-truth fields; honest schedulers must not.
package job

import (
	"fmt"

	"repro/internal/workload"
)

// State is a job's lifecycle position.
type State int

const (
	// Pending: submitted, not yet running anywhere.
	Pending State = iota
	// Profiling: running on the profiling cluster (Lucid only).
	Profiling
	// Queued: profiled (or profiling skipped) and waiting for the main
	// cluster.
	Queued
	// Running: executing on the main cluster.
	Running
	// Finished: completed.
	Finished
	// Failed: killed by fault injection and out of retries — terminal, never
	// rescheduled. (Appended after Finished so existing state values are
	// unchanged.)
	Failed
)

// Terminal reports whether the job has left the system for good.
func (s State) Terminal() bool { return s == Finished || s == Failed }

// String names the state.
func (s State) String() string {
	switch s {
	case Pending:
		return "Pending"
	case Profiling:
		return "Profiling"
	case Queued:
		return "Queued"
	case Running:
		return "Running"
	case Finished:
		return "Finished"
	case Failed:
		return "Failed"
	default:
		return "Unknown"
	}
}

// Job is one DL training job.
type Job struct {
	ID     int
	Name   string // job name; recurring jobs reuse names with small edits
	User   string
	VC     string
	GPUs   int   // GPU demand
	Submit int64 // submission time, seconds since trace start

	// AMP is user-declared (§3.5.1 lists mixed-precision as an optional
	// job-submission flag), so schedulers may read it pre-profiling.
	AMP bool

	// Ground truth — simulator only.
	Duration int64           // exclusive-execution duration in seconds
	Config   workload.Config // drives the interference model

	// Observable after profiling (or measured on the fly for jobs that skip
	// profiling).
	Profiled bool
	Profile  workload.Profile

	// Runtime accounting, maintained by the simulator.
	State         State
	RemainingWork float64 // seconds of exclusive-speed execution left
	FirstStart    int64   // first time the job ran anywhere (-1 = never)
	Finish        int64   // completion time (-1 = not finished)
	RunTime       float64 // accumulated wall-clock seconds spent running
	Preemptions   int     // times the job was preempted (Tiresias)
	ColdStart     float64 // seconds of no-progress overhead pending at next start
	AttainedGPUT  float64 // attained GPU-time service (for LAS schedulers)

	// Fault-injection accounting (internal/chaos).
	Restarts         int     // times the job was killed by a fault and requeued
	NextEligible     int64   // requeue backoff: not schedulable before this time
	CheckpointedWork float64 // exclusive-speed seconds durably checkpointed (0 = none)
}

// New returns a job initialized with runtime sentinels.
func New(id int, name, user, vc string, gpus int, submit, duration int64, cfg workload.Config) *Job {
	return &Job{
		ID:            id,
		Name:          name,
		User:          user,
		VC:            vc,
		GPUs:          gpus,
		Submit:        submit,
		AMP:           cfg.AMP,
		Duration:      duration,
		Config:        cfg,
		RemainingWork: float64(duration),
		FirstStart:    -1,
		Finish:        -1,
	}
}

// JCT returns the job completion time (finish − submit); -1 if unfinished.
func (j *Job) JCT() int64 {
	if j.Finish < 0 {
		return -1
	}
	return j.Finish - j.Submit
}

// QueueDelay returns the total time the job spent waiting: JCT minus time
// actually executing (profiling runs count as executing — the paper credits
// the profiler with giving debug jobs *immediate* feedback). -1 if
// unfinished.
func (j *Job) QueueDelay() int64 {
	if j.Finish < 0 {
		return -1
	}
	d := j.Finish - j.Submit - int64(j.RunTime+0.5)
	if d < 0 {
		return 0
	}
	return d
}

// Distributed reports whether the job spans more than one 8-GPU node.
func (j *Job) Distributed() bool { return j.GPUs > 8 }

// String renders a short identity line.
func (j *Job) String() string {
	return fmt.Sprintf("job%d(%s/%s gpus=%d dur=%ds)", j.ID, j.User, j.Name, j.GPUs, j.Duration)
}
