// Package xrand provides a small, deterministic random-number substrate used
// by every other package in this repository. All simulation and trace
// generation is seeded through xrand so experiment results are reproducible
// bit-for-bit across runs.
//
// The core generator is splitmix64, which is tiny, fast, passes BigCrush for
// the use we put it to, and — unlike math/rand's global state — is trivially
// forkable: every trace, cluster and model gets its own independent stream
// derived from a master seed.
package xrand

import "math"

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State exposes the generator's internal counter for snapshotting. Together
// with SetState it lets a restored simulation continue the exact random
// stream an interrupted run would have drawn.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's internal counter (see State).
func (r *RNG) SetState(s uint64) { r.state = s }

// Fork derives an independent generator from this one. The child's stream is
// decorrelated from the parent's by mixing in a large odd constant, so a
// trace generator can hand each subsystem its own stream without the streams
// marching in lockstep.
func (r *RNG) Fork() *RNG {
	return New(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits → uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("xrand: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the Box–Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has parameters mu and sigma. DL job durations are famously
// heavy-tailed; lognormal is the standard stand-in.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed value with the given mean
// (i.e. rate 1/mean). Used for Poisson inter-arrival gaps.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 60 {
		// Normal approximation, adequate for arrival bucketing.
		v := r.Norm(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Zipf returns a Zipf-distributed integer in [0, n) with exponent s > 0.
// Small ranks are most probable — used to pick which recurring job template
// a user resubmits (a few templates dominate, matching production traces).
func (r *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF over the (small) support; n is at most a few thousand in
	// our generators so the linear scan is fine and allocation-free with a
	// running harmonic normalizer would be overkill.
	target := r.Float64() * zipfNorm(n, s)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		if sum >= target {
			return k
		}
	}
	return n - 1
}

func zipfNorm(n int, s float64) float64 {
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), s)
	}
	return sum
}

// Choice returns a random index in [0, len(weights)) with probability
// proportional to weights[i]. Panics if weights is empty or sums to <= 0.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total <= 0 {
		panic("xrand: Choice needs positive total weight")
	}
	target := r.Float64() * total
	sum := 0.0
	for i, w := range weights {
		sum += w
		if sum >= target {
			return i
		}
	}
	return len(weights) - 1
}

// Shuffle permutes the first n elements using the provided swap function
// (Fisher–Yates).
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
