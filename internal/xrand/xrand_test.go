package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Fork()
	// Parent continues; child must not replay the parent's stream.
	p1 := parent.Uint64()
	c1 := child.Uint64()
	if p1 == c1 {
		t.Fatal("fork replayed parent stream")
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	n := 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(4)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(42)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-42)/42 > 0.02 {
		t.Fatalf("exponential mean = %v, want ~42", mean)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(8)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if r.Poisson(0) != 0 {
			t.Fatal("Poisson(0) != 0")
		}
		if r.Poisson(-1) != 0 {
			t.Fatal("Poisson(-1) != 0")
		}
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormal(5, 2); v <= 0 {
			t.Fatalf("LogNormal produced non-positive %v", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(13)
	counts := make([]int, 10)
	for i := 0; i < 50000; i++ {
		counts[r.Zipf(10, 1.2)]++
	}
	// Rank 0 must dominate rank 9 by a large factor.
	if counts[0] < 5*counts[9] {
		t.Fatalf("Zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("rank %d never sampled", i)
		}
	}
}

func TestZipfDegenerate(t *testing.T) {
	r := New(14)
	if r.Zipf(1, 1.0) != 0 {
		t.Fatal("Zipf(1) must return 0")
	}
	if r.Zipf(0, 1.0) != 0 {
		t.Fatal("Zipf(0) must return 0")
	}
}

func TestChoiceDistribution(t *testing.T) {
	r := New(15)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight-3 / weight-1 ratio = %v, want ~3", ratio)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBounds(t *testing.T) {
	check := func(seed uint64) bool {
		v := New(seed).Range(5, 10)
		return v >= 5 && v < 10
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
