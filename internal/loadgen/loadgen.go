// Package loadgen is a deterministic, seedable load generator for the lucidd
// control plane: it simulates a fleet of node agents spread across virtual
// clusters, heartbeating, submitting jobs, pushing NVIDIA-SMI-style samples
// and issuing tenant-scoped queue/agent queries, with a configurable op mix,
// worker ramp and duration. It drives either an in-process http.Handler
// (zero network overhead — the mode the shard benchmarks and soak tests use)
// or a live daemon over HTTP, and reports sustained req/s plus p50/p99/p999
// latency through the repo's own metrics registry. cmd/lucidload is the CLI.
//
// Determinism: every worker derives its op stream from a splitmix64-seeded
// RNG of (Seed, worker index), so a given configuration replays the same
// per-worker request sequence every run — what makes the soak test's
// "every acknowledged job survives" assertion exact rather than statistical.
package loadgen

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Op names (the {op} label on lucidload_request_seconds).
const (
	OpHeartbeat = "heartbeat"
	OpSample    = "sample"
	OpSubmit    = "submit"
	OpSchedule  = "schedule"
	OpAgents    = "agents"
	OpStatusz   = "statusz"
)

// Mix weighs the op types. Zero-valued fields never fire.
type Mix struct {
	Heartbeat int
	Sample    int
	Submit    int
	Schedule  int
	Agents    int
	Statusz   int
}

// DefaultMix is telemetry-dominated, the shape of a real control plane's
// traffic: heartbeats and samples dwarf submissions, with a steady trickle
// of tenant-scoped queue and agent queries (dashboards, pollers).
func DefaultMix() Mix {
	return Mix{Heartbeat: 8, Sample: 4, Submit: 1, Schedule: 1, Agents: 2, Statusz: 0}
}

// ParseMix parses "heartbeat=8,sample=4,submit=1,schedule=1,agents=2" style
// specs; omitted ops get weight 0.
func ParseMix(s string) (Mix, error) {
	var m Mix
	if strings.TrimSpace(s) == "" {
		return m, fmt.Errorf("loadgen: empty mix")
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("loadgen: bad mix term %q (want op=weight)", part)
		}
		w, err := strconv.Atoi(kv[1])
		if err != nil || w < 0 {
			return m, fmt.Errorf("loadgen: bad mix weight %q", part)
		}
		switch kv[0] {
		case OpHeartbeat:
			m.Heartbeat = w
		case OpSample:
			m.Sample = w
		case OpSubmit:
			m.Submit = w
		case OpSchedule:
			m.Schedule = w
		case OpAgents:
			m.Agents = w
		case OpStatusz:
			m.Statusz = w
		default:
			return m, fmt.Errorf("loadgen: unknown op %q in mix", kv[0])
		}
	}
	if m.total() == 0 {
		return m, fmt.Errorf("loadgen: mix has zero total weight")
	}
	return m, nil
}

func (m Mix) total() int {
	return m.Heartbeat + m.Sample + m.Submit + m.Schedule + m.Agents + m.Statusz
}

func (m Mix) String() string {
	return fmt.Sprintf("heartbeat=%d,sample=%d,submit=%d,schedule=%d,agents=%d,statusz=%d",
		m.Heartbeat, m.Sample, m.Submit, m.Schedule, m.Agents, m.Statusz)
}

// pick maps a roll in [0, total) onto an op name.
func (m Mix) pick(roll int) string {
	for _, c := range []struct {
		w  int
		op string
	}{
		{m.Heartbeat, OpHeartbeat}, {m.Sample, OpSample}, {m.Submit, OpSubmit},
		{m.Schedule, OpSchedule}, {m.Agents, OpAgents}, {m.Statusz, OpStatusz},
	} {
		if roll < c.w {
			return c.op
		}
		roll -= c.w
	}
	return OpHeartbeat
}

// Options configures one load run. Exactly one of Handler (in-process) or
// BaseURL (network) must be set.
type Options struct {
	Handler http.Handler
	BaseURL string

	Agents  int // simulated node agents, partitioned across workers
	VCs     int // virtual clusters vc-0 … vc-(N-1); agents and jobs spread across them
	Workers int // concurrent client goroutines

	// OpsPerWorker bounds each worker's op count; 0 means unbounded (stop
	// on Duration). Deterministic tests use OpsPerWorker with Duration 0.
	OpsPerWorker int
	Duration     time.Duration
	// Ramp staggers worker starts linearly across the window, so a run
	// climbs to full concurrency instead of stampeding.
	Ramp time.Duration

	Seed int64
	Mix  Mix

	// Stop, when non-nil, ends the run early when closed (soak tests use it
	// to stop workers after a mid-run drain).
	Stop <-chan struct{}

	// RetryAfterCap bounds how long a worker honors a server's Retry-After
	// hint (backpressure 429s, drain-gate 503s) before resuming its stream.
	// The server advertises whole seconds; a saturation harness that slept
	// the full hint would measure its own sleeping, so the default cap is
	// 50ms — long enough to let an overloaded shard drain, short enough to
	// keep probing it. 0 selects the default; negative disables the backoff.
	RetryAfterCap time.Duration

	// DialContext, when non-nil, replaces the network dialer in BaseURL
	// mode. The connection-reuse regression test counts physical dials
	// through it; production runs leave it nil.
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)
}

func (o Options) withDefaults() Options {
	if o.Agents <= 0 {
		o.Agents = 256
	}
	if o.VCs <= 0 {
		o.VCs = 8
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Mix.total() == 0 {
		o.Mix = DefaultMix()
	}
	if o.OpsPerWorker <= 0 && o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.RetryAfterCap == 0 {
		o.RetryAfterCap = 50 * time.Millisecond
	}
	return o
}

// OpStats summarizes one op type's outcomes.
type OpStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P99ms  float64 `json:"p99_ms"`
	P999ms float64 `json:"p999_ms"`
}

// Result is one load run's report.
type Result struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"` // transport failures + unexpected statuses
	// Rejected counts explicit, retryable server refusals — never errors, so
	// BENCH error gates stay meaningful under backpressure. It is the sum of
	// the two refusal classes below.
	Rejected    int64   `json:"rejected"`
	Rejected429 int64   `json:"rejected_429"` // ingest-queue backpressure
	Rejected503 int64   `json:"rejected_503"` // drain gate
	DurationSec float64 `json:"duration_sec"`
	ReqPerSec   float64 `json:"req_per_sec"`
	P50ms       float64 `json:"p50_ms"`
	P99ms       float64 `json:"p99_ms"`
	P999ms      float64 `json:"p999_ms"`

	PerOp map[string]OpStats `json:"per_op"`

	// AckedJobs are the job IDs the server acknowledged with 201, sorted —
	// the soak test's zero-dropped-acks ledger.
	AckedJobs []int `json:"-"`
}

// Summary renders the one-line human report the CLI prints (and CI greps).
func (r *Result) Summary() string {
	return fmt.Sprintf("lucidload: %d reqs in %.2fs = %.0f req/s; p50=%.3fms p99=%.3fms p999=%.3fms errors=%d rejected=%d rejected429=%d rejected503=%d",
		r.Requests, r.DurationSec, r.ReqPerSec, r.P50ms, r.P99ms, r.P999ms,
		r.Errors, r.Rejected, r.Rejected429, r.Rejected503)
}

// latencyBuckets resolves ~1µs to ~100s at ×1.35 granularity: fine enough
// that bucketed p99s are meaningful for sub-millisecond in-process calls.
func latencyBuckets() []float64 { return metrics.ExpBuckets(1e-6, 1.35, 62) }

// target abstracts in-process vs network delivery.
type target interface {
	// do issues one request. wantBody asks for the response body (submits
	// parse the acked job ID out of it); otherwise the body is discarded.
	// retryAfter carries the server's Retry-After hint (0 when absent), so
	// workers can honor backpressure without the target leaking headers.
	do(method, path, body string, wantBody bool) (status int, retryAfter time.Duration, respBody []byte, err error)
}

// Run executes one load run and blocks until every worker finishes.
func Run(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	var tgt target
	switch {
	case opts.Handler != nil && opts.BaseURL != "":
		return nil, fmt.Errorf("loadgen: set Handler or BaseURL, not both")
	case opts.Handler != nil:
		tgt = &handlerTarget{h: opts.Handler}
	case opts.BaseURL != "":
		// Connection reuse is load-bearing: every worker must keep one
		// persistent connection, or the harness measures TIME_WAIT churn and
		// ephemeral-port exhaustion instead of the server. The idle pool is
		// sized past the worker count on BOTH knobs (MaxIdleConnsPerHost
		// defaults to 2 — the classic silent dial storm against a single
		// host), idle conns outlive worker think-time, and response bodies
		// are always drained (see httpTarget.do) so the transport can
		// recycle them. TestNetworkModeReusesConnections counts dials.
		tr := &http.Transport{
			MaxIdleConns:        opts.Workers * 2,
			MaxIdleConnsPerHost: opts.Workers * 2,
			IdleConnTimeout:     90 * time.Second,
			// Tiny JSON bodies never win from gzip; skip the negotiation.
			DisableCompression: true,
		}
		if opts.DialContext != nil {
			tr.DialContext = opts.DialContext
		}
		tgt = &httpTarget{base: strings.TrimRight(opts.BaseURL, "/"), client: &http.Client{
			Timeout:   30 * time.Second,
			Transport: tr,
		}}
	default:
		return nil, fmt.Errorf("loadgen: no target (set Handler or BaseURL)")
	}

	reg := metrics.New()
	lat := reg.HistogramVec("lucidload_request_seconds",
		"Load-generator observed request latency by op.", latencyBuckets(), "op")
	all := reg.Histogram("lucidload_request_seconds_all",
		"Load-generator observed request latency, all ops.", latencyBuckets())

	workers := make([]*worker, opts.Workers)
	for w := range workers {
		workers[w] = newWorker(w, opts, tgt, lat, all)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for _, wk := range workers {
		wg.Add(1)
		go func(wk *worker) {
			defer wg.Done()
			wk.run(start)
		}(wk)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &Result{DurationSec: elapsed, PerOp: map[string]OpStats{}}
	perOpErr := map[string]int64{}
	for _, wk := range workers {
		res.Requests += wk.requests
		res.Errors += wk.errors
		res.Rejected429 += wk.rejected429
		res.Rejected503 += wk.rejected503
		res.AckedJobs = append(res.AckedJobs, wk.acked...)
		for op, n := range wk.opErrors {
			perOpErr[op] += n
		}
	}
	res.Rejected = res.Rejected429 + res.Rejected503
	sort.Ints(res.AckedJobs)
	if elapsed > 0 {
		res.ReqPerSec = float64(res.Requests) / elapsed
	}
	res.P50ms = all.Quantile(0.50) * 1000
	res.P99ms = all.Quantile(0.99) * 1000
	res.P999ms = all.Quantile(0.999) * 1000
	for _, op := range []string{OpHeartbeat, OpSample, OpSubmit, OpSchedule, OpAgents, OpStatusz} {
		h := lat.With(op)
		if h.Count() == 0 && perOpErr[op] == 0 {
			continue
		}
		res.PerOp[op] = OpStats{
			Count:  int64(h.Count()),
			Errors: perOpErr[op],
			P50ms:  h.Quantile(0.50) * 1000,
			P99ms:  h.Quantile(0.99) * 1000,
			P999ms: h.Quantile(0.999) * 1000,
		}
	}
	return res, nil
}

// worker drives one deterministic op stream.
type worker struct {
	idx  int
	opts Options
	tgt  target
	rng  *rand.Rand
	lat  *metrics.HistogramVec
	all  *metrics.Histogram

	agentLo, agentHi int // this worker's agent slice [lo, hi)
	nextAgent        int
	submitSeq        int

	requests    int64
	errors      int64
	rejected429 int64
	rejected503 int64
	opErrors    map[string]int64
	acked       []int
}

func newWorker(idx int, opts Options, tgt target, lat *metrics.HistogramVec, all *metrics.Histogram) *worker {
	lo := idx * opts.Agents / opts.Workers
	hi := (idx + 1) * opts.Agents / opts.Workers
	return &worker{
		idx: idx, opts: opts, tgt: tgt,
		rng: rand.New(rand.NewSource(int64(splitmix64(uint64(opts.Seed)*0x9e3779b97f4a7c15 + uint64(idx) + 1)))),
		lat: lat, all: all,
		agentLo: lo, agentHi: hi, nextAgent: lo,
		opErrors: map[string]int64{},
	}
}

// splitmix64 is the standard 64-bit mixer — one worker's stream is
// decorrelated from its neighbors even for adjacent seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (w *worker) vcName(i int) string { return "vc-" + strconv.Itoa(i) }

func (w *worker) run(start time.Time) {
	if w.opts.Ramp > 0 && w.opts.Workers > 1 {
		time.Sleep(w.opts.Ramp * time.Duration(w.idx) / time.Duration(w.opts.Workers))
	}
	var deadline time.Time
	if w.opts.Duration > 0 {
		deadline = start.Add(w.opts.Duration)
	}
	total := w.opts.Mix.total()
	for n := 0; w.opts.OpsPerWorker <= 0 || n < w.opts.OpsPerWorker; n++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
		if w.opts.Stop != nil {
			select {
			case <-w.opts.Stop:
				return
			default:
			}
		}
		w.step(w.opts.Mix.pick(w.rng.Intn(total)))
	}
}

// step issues one op. Agents are walked round-robin inside the worker's
// slice (every agent keeps heartbeating); jobs are sampled from the worker's
// own acked submissions, so samples never 404.
func (w *worker) step(op string) {
	switch op {
	case OpHeartbeat:
		agent := w.nextAgent
		w.nextAgent++
		if w.nextAgent >= w.agentHi {
			w.nextAgent = w.agentLo
		}
		vc := w.vcName(agent % w.opts.VCs)
		body := fmt.Sprintf(`{"name":"agent-%d","vc":"%s","node":%d}`, agent, vc, agent)
		w.issue(op, http.MethodPost, "/agents", body, false)
	case OpSample:
		if len(w.acked) == 0 {
			w.step(OpSubmit)
			return
		}
		id := w.acked[w.rng.Intn(len(w.acked))]
		body := fmt.Sprintf(`{"job":%d,"gpu_util":%d,"gpu_mem_mb":%d,"gpu_mem_util":%d}`,
			id, 20+w.rng.Intn(75), 1200+w.rng.Intn(14000), 5+w.rng.Intn(60))
		w.issue(op, http.MethodPost, "/metrics", body, false)
	case OpSubmit:
		vc := w.vcName(w.rng.Intn(w.opts.VCs))
		w.submitSeq++
		body := fmt.Sprintf(`{"name":"load-w%d-%d","user":"loadgen","vc":"%s","gpus":%d}`,
			w.idx, w.submitSeq, vc, 1<<w.rng.Intn(4))
		status, resp, err := w.issue(op, http.MethodPost, "/jobs", body, true)
		if err == nil && status == http.StatusCreated {
			if id := parseJobID(resp); id > 0 {
				w.acked = append(w.acked, id)
			}
		}
	case OpSchedule:
		w.issue(op, http.MethodGet, "/schedule?vc="+w.vcName(w.rng.Intn(w.opts.VCs)), "", false)
	case OpAgents:
		w.issue(op, http.MethodGet, "/agents?vc="+w.vcName(w.rng.Intn(w.opts.VCs)), "", false)
	case OpStatusz:
		w.issue(op, http.MethodGet, "/statusz", "", false)
	}
}

// issue sends one request, timing it and classifying the outcome. 2xx is
// success (200 sync ack or 202 async-ingest ack); 429 is ingest
// backpressure and 503 a drain rejection — both are explicit retryable
// refusals, counted as Rejected and honored with a capped Retry-After
// backoff, never errors; anything else, or a transport error, is an error.
func (w *worker) issue(op, method, path, body string, wantBody bool) (int, []byte, error) {
	t0 := time.Now()
	status, retryAfter, resp, err := w.tgt.do(method, path, body, wantBody)
	d := time.Since(t0).Seconds()
	w.requests++
	switch {
	case err != nil:
		w.errors++
		w.opErrors[op]++
	case status == http.StatusTooManyRequests:
		w.rejected429++
		w.backoff(retryAfter)
	case status == http.StatusServiceUnavailable:
		w.rejected503++
		w.backoff(retryAfter)
	case status >= 200 && status < 300:
		w.lat.With(op).Observe(d)
		w.all.Observe(d)
	default:
		w.errors++
		w.opErrors[op]++
	}
	return status, resp, err
}

// backoff honors a server Retry-After hint, capped by RetryAfterCap and cut
// short by Stop. No hint (0) means no sleep — a refusal without guidance
// should not slow the deterministic op stream.
func (w *worker) backoff(hint time.Duration) {
	if hint <= 0 || w.opts.RetryAfterCap < 0 {
		return
	}
	if hint > w.opts.RetryAfterCap {
		hint = w.opts.RetryAfterCap
	}
	if w.opts.Stop != nil {
		select {
		case <-w.opts.Stop:
		case <-time.After(hint):
		}
		return
	}
	time.Sleep(hint)
}

// parseJobID pulls the "id" field out of a 201 body without a full decode on
// the hot path.
func parseJobID(body []byte) int {
	i := bytes.Index(body, []byte(`"id":`))
	if i < 0 {
		return 0
	}
	i += len(`"id":`)
	id := 0
	for ; i < len(body) && body[i] >= '0' && body[i] <= '9'; i++ {
		id = id*10 + int(body[i]-'0')
	}
	return id
}

// handlerTarget delivers requests straight into an http.Handler — no
// sockets, no syscalls, pure control-plane cost. Used by the self-benchmark
// and the soak test.
type handlerTarget struct{ h http.Handler }

func (t *handlerTarget) do(method, path, body string, wantBody bool) (int, time.Duration, []byte, error) {
	// A nil body leaves req.Body nil, which is legal for clients but not for
	// handlers invoked directly — always hand the handler a real reader.
	req, err := http.NewRequest(method, "http://lucidd"+path, strings.NewReader(body))
	if err != nil {
		return 0, 0, nil, err
	}
	rw := &nullResponse{wantBody: wantBody, code: http.StatusOK}
	t.h.ServeHTTP(rw, req)
	return rw.code, parseRetryAfter(rw.hdr), rw.body.Bytes(), nil
}

// nullResponse is a minimal ResponseWriter: status captured, body retained
// only when the caller asked for it.
type nullResponse struct {
	wantBody bool
	code     int
	body     bytes.Buffer
	hdr      http.Header
}

func (r *nullResponse) Header() http.Header {
	if r.hdr == nil {
		r.hdr = http.Header{}
	}
	return r.hdr
}

func (r *nullResponse) WriteHeader(code int) { r.code = code }

func (r *nullResponse) Write(p []byte) (int, error) {
	if r.wantBody {
		return r.body.Write(p)
	}
	return len(p), nil
}

// httpTarget delivers requests over the network to a live daemon.
type httpTarget struct {
	base   string
	client *http.Client
}

func (t *httpTarget) do(method, path, body string, wantBody bool) (int, time.Duration, []byte, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, t.base+path, rd)
	if err != nil {
		return 0, 0, nil, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return 0, 0, nil, err
	}
	// Drain + close unconditionally: an undrained body poisons the
	// keep-alive pool and every poisoned response costs a fresh dial.
	defer resp.Body.Close()
	ra := parseRetryAfter(resp.Header)
	if wantBody {
		b, rerr := io.ReadAll(resp.Body)
		return resp.StatusCode, ra, b, rerr
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, ra, nil, nil
}

// parseRetryAfter reads a whole-seconds Retry-After header (the only form
// lucidd emits); absent or malformed values mean no hint.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	sec, err := strconv.Atoi(v)
	if err != nil || sec < 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}
