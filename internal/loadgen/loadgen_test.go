package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sync"
	"testing"
)

// recordingHandler is a stub control plane: it logs every request it sees
// and acks job submissions with sequential IDs, so tests can inspect the
// exact op stream a configuration produces.
type recordingHandler struct {
	mu     sync.Mutex
	seen   []string // "METHOD path body"
	nextID int
}

func (h *recordingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	h.mu.Lock()
	h.seen = append(h.seen, r.Method+" "+r.URL.RequestURI()+" "+string(body))
	isSubmit := r.Method == http.MethodPost && r.URL.Path == "/jobs"
	if isSubmit {
		h.nextID++
	}
	id := h.nextID
	h.mu.Unlock()
	if isSubmit {
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"id":%d,"name":"x"}`, id)
		return
	}
	w.Write([]byte(`{}`))
}

// TestParseMix covers the spec grammar and its rejects.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("heartbeat=8,sample=4,submit=1,schedule=1,agents=2")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Heartbeat: 8, Sample: 4, Submit: 1, Schedule: 1, Agents: 2}) {
		t.Errorf("parsed mix = %+v", m)
	}
	if _, err := ParseMix(m.String()); err != nil {
		t.Errorf("String() not re-parseable: %v", err)
	}
	for _, bad := range []string{"", "bogus=1", "heartbeat", "heartbeat=-1", "heartbeat=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestDeterministicStream is the contract the shard-parity and soak tests
// lean on: the same seed and budget produce the identical request sequence.
func TestDeterministicStream(t *testing.T) {
	stream := func(seed int64) ([]string, []int) {
		h := &recordingHandler{}
		res, err := Run(Options{
			Handler: h, Agents: 16, VCs: 4, Workers: 1,
			OpsPerWorker: 300, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("stub run had %d errors", res.Errors)
		}
		return h.seen, res.AckedJobs
	}
	a1, acked1 := stream(7)
	a2, acked2 := stream(7)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different op streams")
	}
	if !reflect.DeepEqual(acked1, acked2) {
		t.Fatalf("same seed produced different acks: %v vs %v", acked1, acked2)
	}
	b, _ := stream(8)
	if reflect.DeepEqual(a1, b) {
		t.Fatal("different seeds produced the identical op stream")
	}
}

// TestResultAccounting checks that every issued request lands in exactly one
// bucket and the per-op counts reconcile with the total.
func TestResultAccounting(t *testing.T) {
	h := &recordingHandler{}
	res, err := Run(Options{
		Handler: h, Agents: 32, VCs: 4, Workers: 4,
		OpsPerWorker: 250, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4 * 250); res.Requests != want {
		t.Errorf("requests = %d, want %d", res.Requests, want)
	}
	if res.Errors != 0 || res.Rejected != 0 {
		t.Errorf("errors=%d rejected=%d on a 2xx-only stub", res.Errors, res.Rejected)
	}
	var perOp int64
	for _, st := range res.PerOp {
		perOp += st.Count
	}
	if perOp != res.Requests {
		t.Errorf("per-op counts sum to %d, want %d", perOp, res.Requests)
	}
	if len(res.AckedJobs) == 0 {
		t.Error("no jobs acked by a mix containing submits")
	}
	for i := 1; i < len(res.AckedJobs); i++ {
		if res.AckedJobs[i] < res.AckedJobs[i-1] {
			t.Fatal("AckedJobs not sorted")
		}
	}
	if res.ReqPerSec <= 0 || res.DurationSec <= 0 {
		t.Errorf("rates unset: %+v", res)
	}
}

// TestRejectedClassification: 503s are drain rejections, not errors.
func TestRejectedClassification(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	res, err := Run(Options{Handler: h, Workers: 2, OpsPerWorker: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 100 || res.Errors != 0 {
		t.Errorf("rejected=%d errors=%d, want 100/0", res.Rejected, res.Errors)
	}
}

func TestParseJobID(t *testing.T) {
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"id":42,"name":"x"}`, 42},
		{`{"name":"x","id":7}`, 7},
		{`{"name":"x"}`, 0},
		{``, 0},
	} {
		if got := parseJobID([]byte(tc.body)); got != tc.want {
			t.Errorf("parseJobID(%q) = %d, want %d", tc.body, got, tc.want)
		}
	}
}
