package loadgen

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingHandler is a stub control plane: it logs every request it sees
// and acks job submissions with sequential IDs, so tests can inspect the
// exact op stream a configuration produces.
type recordingHandler struct {
	mu     sync.Mutex
	seen   []string // "METHOD path body"
	nextID int
}

func (h *recordingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	body, _ := io.ReadAll(r.Body)
	h.mu.Lock()
	h.seen = append(h.seen, r.Method+" "+r.URL.RequestURI()+" "+string(body))
	isSubmit := r.Method == http.MethodPost && r.URL.Path == "/jobs"
	if isSubmit {
		h.nextID++
	}
	id := h.nextID
	h.mu.Unlock()
	if isSubmit {
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"id":%d,"name":"x"}`, id)
		return
	}
	w.Write([]byte(`{}`))
}

// TestParseMix covers the spec grammar and its rejects.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("heartbeat=8,sample=4,submit=1,schedule=1,agents=2")
	if err != nil {
		t.Fatal(err)
	}
	if m != (Mix{Heartbeat: 8, Sample: 4, Submit: 1, Schedule: 1, Agents: 2}) {
		t.Errorf("parsed mix = %+v", m)
	}
	if _, err := ParseMix(m.String()); err != nil {
		t.Errorf("String() not re-parseable: %v", err)
	}
	for _, bad := range []string{"", "bogus=1", "heartbeat", "heartbeat=-1", "heartbeat=0"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted", bad)
		}
	}
}

// TestDeterministicStream is the contract the shard-parity and soak tests
// lean on: the same seed and budget produce the identical request sequence.
func TestDeterministicStream(t *testing.T) {
	stream := func(seed int64) ([]string, []int) {
		h := &recordingHandler{}
		res, err := Run(Options{
			Handler: h, Agents: 16, VCs: 4, Workers: 1,
			OpsPerWorker: 300, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Errors != 0 {
			t.Fatalf("stub run had %d errors", res.Errors)
		}
		return h.seen, res.AckedJobs
	}
	a1, acked1 := stream(7)
	a2, acked2 := stream(7)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("same seed produced different op streams")
	}
	if !reflect.DeepEqual(acked1, acked2) {
		t.Fatalf("same seed produced different acks: %v vs %v", acked1, acked2)
	}
	b, _ := stream(8)
	if reflect.DeepEqual(a1, b) {
		t.Fatal("different seeds produced the identical op stream")
	}
}

// TestResultAccounting checks that every issued request lands in exactly one
// bucket and the per-op counts reconcile with the total.
func TestResultAccounting(t *testing.T) {
	h := &recordingHandler{}
	res, err := Run(Options{
		Handler: h, Agents: 32, VCs: 4, Workers: 4,
		OpsPerWorker: 250, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4 * 250); res.Requests != want {
		t.Errorf("requests = %d, want %d", res.Requests, want)
	}
	if res.Errors != 0 || res.Rejected != 0 {
		t.Errorf("errors=%d rejected=%d on a 2xx-only stub", res.Errors, res.Rejected)
	}
	var perOp int64
	for _, st := range res.PerOp {
		perOp += st.Count
	}
	if perOp != res.Requests {
		t.Errorf("per-op counts sum to %d, want %d", perOp, res.Requests)
	}
	if len(res.AckedJobs) == 0 {
		t.Error("no jobs acked by a mix containing submits")
	}
	for i := 1; i < len(res.AckedJobs); i++ {
		if res.AckedJobs[i] < res.AckedJobs[i-1] {
			t.Fatal("AckedJobs not sorted")
		}
	}
	if res.ReqPerSec <= 0 || res.DurationSec <= 0 {
		t.Errorf("rates unset: %+v", res)
	}
}

// TestRejectedClassification: 503s (drain gate) and 429s (ingest
// backpressure) are retryable rejections — counted in their own subclasses
// summing into Rejected, never as errors — so BENCH error gates stay
// meaningful when a server sheds load.
func TestRejectedClassification(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	res, err := Run(Options{Handler: h, Workers: 2, OpsPerWorker: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 100 || res.Rejected503 != 100 || res.Errors != 0 {
		t.Errorf("rejected=%d rejected503=%d errors=%d, want 100/100/0",
			res.Rejected, res.Rejected503, res.Errors)
	}

	h429 := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	// RetryAfterCap 1ns: the hint is honored (code path runs) without the
	// test spending wall-clock sleeping.
	res, err = Run(Options{Handler: h429, Workers: 2, OpsPerWorker: 50, Seed: 1,
		RetryAfterCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 100 || res.Rejected429 != 100 || res.Errors != 0 {
		t.Errorf("rejected=%d rejected429=%d errors=%d, want 100/100/0",
			res.Rejected, res.Rejected429, res.Errors)
	}
}

// TestRetryAfterBackoffHonored: a Retry-After hint slows the stream (capped),
// and a refusal without the header does not sleep at all.
func TestRetryAfterBackoffHonored(t *testing.T) {
	withHint := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
	})
	start := time.Now()
	if _, err := Run(Options{Handler: withHint, Workers: 1, OpsPerWorker: 5, Seed: 1,
		RetryAfterCap: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got < 5*20*time.Millisecond {
		t.Errorf("5 hinted refusals finished in %v; want >= 100ms of honored backoff", got)
	}
	noHint := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	})
	start = time.Now()
	if _, err := Run(Options{Handler: noHint, Workers: 1, OpsPerWorker: 5, Seed: 1,
		RetryAfterCap: time.Second}); err != nil {
		t.Fatal(err)
	}
	if got := time.Since(start); got > 500*time.Millisecond {
		t.Errorf("5 hint-less refusals took %v; backoff must require a server hint", got)
	}
}

// TestNetworkModeReusesConnections is the connection-churn regression test:
// a network-mode run must reuse each worker's keep-alive connection, not
// dial per request. An undrained response body, a missing Content-Length, or
// the net/http default MaxIdleConnsPerHost=2 with more workers would all
// show up here as a dial count tracking the request count.
func TestNetworkModeReusesConnections(t *testing.T) {
	srv := httptest.NewServer(&recordingHandler{})
	defer srv.Close()
	const workers, ops = 4, 100
	var dials int64
	res, err := Run(Options{
		BaseURL: srv.URL, Workers: workers, OpsPerWorker: ops, Seed: 3,
		Agents: 16, VCs: 4,
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			atomic.AddInt64(&dials, 1)
			return (&net.Dialer{}).DialContext(ctx, network, addr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("network run had %d errors", res.Errors)
	}
	if want := int64(workers * ops); res.Requests != want {
		t.Fatalf("requests = %d, want %d", res.Requests, want)
	}
	if got := atomic.LoadInt64(&dials); got > workers {
		t.Errorf("%d requests from %d workers needed %d dials; want <= %d (one persistent conn per worker)",
			res.Requests, workers, got, workers)
	}
}

func TestParseJobID(t *testing.T) {
	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"id":42,"name":"x"}`, 42},
		{`{"name":"x","id":7}`, 7},
		{`{"name":"x"}`, 0},
		{``, 0},
	} {
		if got := parseJobID([]byte(tc.body)); got != tc.want {
			t.Errorf("parseJobID(%q) = %d, want %d", tc.body, got, tc.want)
		}
	}
}
