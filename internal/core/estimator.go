package core

import (
	"fmt"

	"repro/internal/feat"
	"repro/internal/job"
	"repro/internal/ml/gam"
	"repro/internal/ml/mlmodel"
)

// WorkloadEstimator is the Workload Estimate Model (§3.5.3): a GA²M over
// trace features plus — unlike QSSF — the profiled resource features,
// predicting job duration for the Resource Orchestrator's priority values.
// It satisfies sched.Estimator.
type WorkloadEstimator struct {
	feat  *feat.DurationFeaturizer
	model *gam.Model
	// cache avoids re-deriving an unchanged job's estimate on every
	// scheduler tick (the queue is re-sorted constantly).
	cache map[int]float64

	// MonotonicGPUNum applies the §3.6.1 System Tuner constraint: the
	// gpu_num shape function is forced non-decreasing at training time.
	MonotonicGPUNum bool

	params gam.Params
}

// estimatorGAMParams are sized so monthly refits stay in the seconds range
// (Figure 10b) on 10⁴–10⁵ job histories.
func estimatorGAMParams() gam.Params {
	return gam.Params{MaxBins: 64, Rounds: 300, LearningRate: 0.05}
}

// TrainWorkloadEstimator fits the model on completed history jobs. Histories
// come from simulation runs or trace months; profiles are attached if
// missing (a completed job's profile is always observable from its run).
func TrainWorkloadEstimator(history []*job.Job) (*WorkloadEstimator, error) {
	return trainWorkloadEstimator(history, true)
}

func trainWorkloadEstimator(history []*job.Job, monotonic bool) (*WorkloadEstimator, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("core: estimator needs history")
	}
	EnsureProfiles(history)
	w := &WorkloadEstimator{
		feat:            feat.NewDurationFeaturizer(history, true),
		cache:           map[int]float64{},
		MonotonicGPUNum: monotonic,
		params:          estimatorGAMParams(),
	}
	if err := w.refit(history); err != nil {
		return nil, err
	}
	return w, nil
}

// refit retrains the GA²M on the given jobs with the existing featurizer.
func (w *WorkloadEstimator) refit(history []*job.Job) error {
	ds := w.feat.Dataset(history)
	m, err := gam.Fit(ds, w.params)
	if err != nil {
		return fmt.Errorf("core: estimator fit: %w", err)
	}
	if w.MonotonicGPUNum {
		m.ApplyMonotonic(0, true) // feature 0 is gpu_num
	}
	w.model = m
	w.cache = map[int]float64{}
	return nil
}

// Update refits featurizer and model from an extended history — the Update
// Engine's periodic maintenance (§3.6.2).
func (w *WorkloadEstimator) Update(history []*job.Job) error {
	if len(history) == 0 {
		return fmt.Errorf("core: empty update history")
	}
	EnsureProfiles(history)
	w.feat = feat.NewDurationFeaturizer(history, true)
	return w.refit(history)
}

// EstimateSec implements sched.Estimator: predicted duration in seconds,
// floored at one minute (the profiler already filtered most sub-minute
// jobs).
func (w *WorkloadEstimator) EstimateSec(j *job.Job) float64 {
	if v, ok := w.cache[j.ID]; ok {
		return v
	}
	v := w.model.Predict(w.feat.Features(j))
	if v < 60 {
		v = 60
	}
	w.cache[j.ID] = v
	return v
}

// Invalidate clears a cached estimate (e.g. after profiling attached new
// features).
func (w *WorkloadEstimator) Invalidate(jobID int) { delete(w.cache, jobID) }

// Clone returns an estimator backed by the same fitted model but with its
// own cache and update lineage: Update on the clone refits the clone only.
// One training pass can then serve many independent scheduler runs without
// state from one run leaking into the next.
func (w *WorkloadEstimator) Clone() *WorkloadEstimator {
	cp := *w
	cp.cache = map[int]float64{}
	return &cp
}

// Explain returns the local interpretation of one prediction — Figure 7c.
func (w *WorkloadEstimator) Explain(j *job.Job) (intercept float64, contribs []gam.Contribution) {
	return w.model.Explain(w.feat.Features(j))
}

// GlobalImportance exposes the model's Figure 7a-style term importances,
// aligned with FeatureNames.
func (w *WorkloadEstimator) GlobalImportance() []float64 { return w.model.GlobalImportance() }

// FeatureNames lists the model's input features.
func (w *WorkloadEstimator) FeatureNames() []string { return w.feat.Names() }

// EvalR2 scores the estimator on a held-out job set (Table 7's metric).
func (w *WorkloadEstimator) EvalR2(jobs []*job.Job) float64 {
	EnsureProfiles(jobs)
	ds := w.feat.Dataset(jobs)
	pred := mlmodel.PredictAll(w.model, ds.X)
	return mlmodel.R2(pred, ds.Y)
}

// EnsureProfiles attaches the ground-truth profile to jobs missing one —
// legitimate for completed jobs (their run was observable) and for
// experiment setup.
func EnsureProfiles(jobs []*job.Job) {
	for _, j := range jobs {
		if !j.Profiled {
			j.Profile = j.Config.Profile()
			j.Profiled = true
		}
	}
}

// TrainWorkloadEstimatorUnconstrained fits the model without the §3.6.1
// monotonic constraint — the baseline of the System Tuner's
// model-troubleshooting comparison.
func TrainWorkloadEstimatorUnconstrained(history []*job.Job) (*WorkloadEstimator, error) {
	return trainWorkloadEstimator(history, false)
}
