package core

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// binderProbe is a harness scheduler: on every tick it asks the Binder for
// a partner for each waiting job (recording the outcome), then places the
// job exclusively so it becomes partner material for later arrivals.
type binderProbe struct {
	b      *Binder
	score  func(*job.Job) workload.SharingScore
	prof   workload.Profile
	found  map[int]int    // probe job → chosen partner
	reason map[int]string // probe job → rule that prevented packing
}

func newBinderProbe(b *Binder, score func(*job.Job) workload.SharingScore) *binderProbe {
	return &binderProbe{b: b, score: score,
		prof:  workload.Profile{GPUUtil: 0.3, GPUMemMB: 4000, GPUMemUtil: 0.2},
		found: map[int]int{}, reason: map[int]string{}}
}

func (bp *binderProbe) Name() string { return "binder-probe" }
func (bp *binderProbe) Tick(env *sim.Env) {
	for _, j := range env.Pending() {
		j.Profiled = true
		j.Profile = bp.prof
		ex := &PackExplain{}
		if p := bp.b.FindPartnerExplain(env, j, bp.score, nil, ex); p != nil {
			bp.found[j.ID] = p.ID
		} else {
			bp.reason[j.ID] = ex.Reason
		}
		env.StartExclusive(j)
	}
}

func probeSpec() cluster.Spec {
	return cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
		VCs: []cluster.VCSpec{{Name: "vc", Nodes: 1}}}
}

// probeTrace: job 1 arrives first (the future partner), job 2 probes it.
func probeTrace() *trace.Trace {
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	return &trace.Trace{Name: "probe", Cluster: probeSpec(), Days: 1,
		Jobs: []*job.Job{
			job.New(1, "a", "u", "vc", 1, 0, 8000, cfg),
			job.New(2, "b", "u", "vc", 1, 300, 8000, cfg),
		}}
}

func runProbe(t *testing.T, b *Binder, score func(*job.Job) workload.SharingScore) *binderProbe {
	t.Helper()
	bp := newBinderProbe(b, score)
	opts := sim.Options{Tick: 60, SchedulerEvery: 60, MaxHorizon: 3600,
		Invariants: sim.NewInvariantChecker(true)}
	res := sim.New(probeTrace(), bp, opts).Run()
	if res.Violations > 0 {
		t.Fatalf("violations: %v", res.ViolationSamples)
	}
	return bp
}

const constTiny, constMedium, constJumbo = workload.Tiny, workload.Medium, workload.Jumbo

func constScore(s workload.SharingScore) func(*job.Job) workload.SharingScore {
	return func(*job.Job) workload.SharingScore { return s }
}

// TestBinderGSSZero: GSS 0 is a legal, ultra-conservative budget — only
// score-0 (Tiny) pairs may share. core.New clamps GSS ≤ 0 to the default,
// so the field is driven directly.
func TestBinderGSSZero(t *testing.T) {
	b := NewBinder()
	b.GSS = 0

	// Tiny + Tiny = 0 ≤ 0: packs.
	bp := runProbe(t, b, constScore(constTiny))
	if bp.found[2] != 1 {
		t.Fatalf("Tiny pair must pack under GSS=0; outcome: found=%v reason=%v", bp.found, bp.reason)
	}

	// Medium scores 1 > 0: the job itself busts the budget before any
	// partner is examined.
	b2 := NewBinder()
	b2.GSS = 0
	bp = runProbe(t, b2, constScore(constMedium))
	if _, ok := bp.found[2]; ok {
		t.Fatal("Medium job packed under GSS=0")
	}
	if bp.reason[2] != "score-over-budget" {
		t.Fatalf("reason = %q, want score-over-budget", bp.reason[2])
	}
}

// TestBinderGSSWide: GSS 4 admits pairings the default budget forbids —
// two Jumbos sum to 4.
func TestBinderGSSWide(t *testing.T) {
	// Default GSS=2 rejects the Jumbo pair at the partner check.
	bp := runProbe(t, NewBinder(), constScore(constJumbo))
	if _, ok := bp.found[2]; ok {
		t.Fatal("Jumbo pair packed under default GSS=2")
	}

	b := NewBinder()
	b.GSS = 4
	bp = runProbe(t, b, constScore(constJumbo))
	if bp.found[2] != 1 {
		t.Fatalf("Jumbo pair must pack under GSS=4; reason=%v", bp.reason)
	}
}

// TestEstimatorNoRecurrence: a history where every job name and user is
// unique (zero recurring-job signal, the feature the estimator leans on
// most) must still train and produce sane positive estimates.
func TestEstimatorNoRecurrence(t *testing.T) {
	cfgs := workload.AllConfigs()
	jobs := make([]*job.Job, 300)
	for i := range jobs {
		j := job.New(i+1, fmt.Sprintf("unique-%d", i), fmt.Sprintf("solo-%d", i),
			"vc", 1<<(i%4), int64(i)*600, 500+int64(i%37)*977, cfgs[i%len(cfgs)])
		jobs[i] = j
	}
	est, err := TrainWorkloadEstimator(jobs)
	if err != nil {
		t.Fatalf("train on recurrence-free history: %v", err)
	}
	probe := job.New(9001, "never-seen", "new-user", "vc", 2, 0, 0,
		workload.Config{Model: workload.ResNet50, BatchSize: 64})
	EnsureProfiles([]*job.Job{probe})
	if got := est.EstimateSec(probe); got < 60 {
		t.Fatalf("estimate %v below the 60 s floor", got)
	}
}

// TestLucidWithoutProfilerPartition: ProfilerNodes=0 removes the profiling
// cluster entirely; every job must take the observe-on-the-fly path
// (visible in the decision trace), finish, and violate nothing.
func TestLucidWithoutProfilerPartition(t *testing.T) {
	spec := trace.Venus()
	spec.Name = "noprof"
	spec.Nodes = 4
	spec.NumVCs = 2
	spec.NumJobs = 600
	spec.Days = 3
	g := trace.NewGenerator(spec)
	hist := g.Emit(600)
	models, err := TrainModels(hist, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eval := g.Emit(120)

	rec := dtrace.New()
	rec.SetKeep(0)
	opts := sim.Options{Tick: 60, SchedulerEvery: 60, ProfilerNodes: 0,
		DecisionTrace: rec, Invariants: sim.NewInvariantChecker(true)}
	res := sim.New(eval, New(models, DefaultConfig()), opts).Run()
	if res.Violations > 0 {
		t.Fatalf("violations: %v", res.ViolationSamples)
	}
	if res.Unfinished > 0 {
		t.Fatalf("%d jobs unfinished without a profiler partition", res.Unfinished)
	}
	sum := rec.Summary()
	if sum.Reasons["profile-skip/no-profiler-partition"] == 0 {
		t.Fatalf("no on-the-fly profiling decisions recorded; reasons: %v", sum.Reasons)
	}
	if sum.Actions[string(dtrace.ActProfileStart)] > 0 {
		t.Fatalf("profiling started with no partition; actions: %v", sum.Actions)
	}
}
