package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestConfigValidateRejections: every out-of-range knob fails with an error
// naming the offending field, so a bad programmatically-generated config
// (e.g. an evolve search vector with a sign bug) is diagnosable at a glance.
func TestConfigValidateRejections(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"negative Tprof", func(c *Config) { c.TprofSec = -1 }, "TprofSec"},
		{"negative Nprof", func(c *Config) { c.Nprof = -8 }, "Nprof"},
		{"negative GSS", func(c *Config) { c.GSS = -2 }, "GSS"},
		{"Medium zero", func(c *Config) { c.Thresholds.Medium = 0 }, "Thresholds.Medium"},
		{"Medium above one", func(c *Config) { c.Thresholds.Medium = 1.2 }, "Thresholds.Medium"},
		{"Tiny negative", func(c *Config) { c.Thresholds.Tiny = -0.5 }, "Thresholds.Tiny"},
		{"Tiny above one", func(c *Config) { c.Thresholds.Tiny = 1.01 }, "Thresholds.Tiny"},
		{"Medium above Tiny", func(c *Config) {
			c.Thresholds = workload.Thresholds{Medium: 0.97, Tiny: 0.85}
		}, "Thresholds.Medium"},
		{"negative update interval", func(c *Config) { c.UpdateIntervalSec = -3600 }, "UpdateIntervalSec"},
		{"negative fairness aging", func(c *Config) { c.FairnessAgingSec = -0.5 }, "FairnessAgingSec"},
		{"negative fast-job threshold", func(c *Config) { c.FastJobThresholdSec = -1 }, "FastJobThresholdSec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Fatalf("error %q does not name field %s", err, tc.field)
			}
		})
	}
}

// TestConfigValidateAccepts: the defaults, the meaningful zeros
// (UpdateIntervalSec 0 = static-model ablation, FairnessAgingSec 0 = aging
// off) and the range edges all pass.
func TestConfigValidateAccepts(t *testing.T) {
	cfgs := map[string]func(*Config){
		"defaults":            func(*Config) {},
		"update disabled":     func(c *Config) { c.UpdateIntervalSec = 0 },
		"aging off":           func(c *Config) { c.FairnessAgingSec = 0 },
		"thresholds at edges": func(c *Config) { c.Thresholds = workload.Thresholds{Medium: 1, Tiny: 1} },
		"equal thresholds":    func(c *Config) { c.Thresholds = workload.Thresholds{Medium: 0.9, Tiny: 0.9} },
	}
	for name, mut := range cfgs {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s rejected: %v", name, err)
		}
	}
}

// TestConfigNormalizedFillsZeros: the zero value of each "0 = default" knob
// becomes its paper default, while meaningful zeros survive, so
// Normalized().Validate() is the canonical intake path for external configs.
func TestConfigNormalizedFillsZeros(t *testing.T) {
	n := Config{}.Normalized()
	def := DefaultConfig()
	if n.TprofSec != def.TprofSec || n.Nprof != def.Nprof || n.GSS != def.GSS {
		t.Fatalf("profiler/binder defaults not filled: %+v", n)
	}
	if n.Thresholds != workload.DefaultThresholds {
		t.Fatalf("thresholds not filled: %+v", n.Thresholds)
	}
	if n.FastJobThresholdSec != 2*3600 {
		t.Fatalf("fast-job threshold not filled: %g", n.FastJobThresholdSec)
	}
	if n.UpdateIntervalSec != 0 || n.FairnessAgingSec != 0 {
		t.Fatalf("meaningful zeros were overwritten: %+v", n)
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("normalized zero config must validate: %v", err)
	}
}

// TestNewPanicsOnInvalidConfig: the construction path rejects out-of-range
// knobs loudly instead of silently clamping them to defaults.
func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New accepted a negative TprofSec")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), "TprofSec") {
			t.Fatalf("panic %v does not name TprofSec", r)
		}
	}()
	cfg := DefaultConfig()
	cfg.TprofSec = -60
	New(&Models{}, cfg)
}
