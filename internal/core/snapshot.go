package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/workload"
)

// Lucid's sim.SchedulerState implementation. The captured state is every
// run-mutable field of the Figure 4 pipeline: the sharing-score and
// seen-arrival caches, the hourly throughput counter, the Binder's pack
// mode, the Profiler's Time-aware Scaling position, the estimator's
// per-job estimate cache (state, not memoization — entries cached before a
// job's profile attached are intentionally stale until Invalidate), and the
// forecaster's live observation window.
//
// The trained model weights are embedded (via Models.Save) only when the
// Update Engine has refit them mid-run: until then they are exactly the
// constructor-provided models, which the caller reproduces deterministically
// (lab.BuildWorld trains the same models for the same spec), so embedding
// them would only bloat every snapshot. History is never embedded — it is
// construction-time input, exactly as Models.Save documents.
type lucidState struct {
	Scores     map[int]workload.SharingScore `json:"scores,omitempty"`
	Seen       []int                         `json:"seen,omitempty"`
	HourCount  float64                       `json:"hour_count"`
	CurHour    int64                         `json:"cur_hour"`
	LastUpdate int64                         `json:"last_update"`

	BinderMode       PackMode `json:"binder_mode"`
	ProfCapacityFrac float64  `json:"prof_capacity_frac"`
	ProfTprofNow     int64    `json:"prof_tprof_now"`

	EstCache map[int]float64 `json:"est_cache,omitempty"`
	TPRecent []float64       `json:"tp_recent"`

	ModelsDirty bool            `json:"models_dirty,omitempty"`
	Bundle      json.RawMessage `json:"bundle,omitempty"`
}

// SnapshotState implements sim.SchedulerState.
func (l *Lucid) SnapshotState() ([]byte, error) {
	st := lucidState{
		Scores:           l.scores,
		HourCount:        l.hourCount,
		CurHour:          l.curHour,
		LastUpdate:       l.lastUpdate,
		BinderMode:       l.binder.Mode(),
		ProfCapacityFrac: l.profiler.capacityFrac,
		ProfTprofNow:     l.profiler.tprofNow,
		EstCache:         l.models.Estimator.cache,
		TPRecent:         append([]float64(nil), l.models.Throughput.recent...),
		ModelsDirty:      l.modelsDirty,
	}
	st.Seen = make([]int, 0, len(l.seen))
	for id := range l.seen {
		st.Seen = append(st.Seen, id)
	}
	sort.Ints(st.Seen)
	if l.modelsDirty {
		var buf bytes.Buffer
		if err := l.models.Save(&buf); err != nil {
			return nil, fmt.Errorf("core: snapshot refit models: %w", err)
		}
		st.Bundle = buf.Bytes()
	}
	return json.Marshal(st)
}

// RestoreState implements sim.SchedulerState. The receiver must be a fresh
// Lucid built with the same Config and the same trained Models the
// interrupted run started from; RestoreState overlays the run-mutable state
// (and, if the Update Engine had refit, the refit estimator and forecaster
// from the embedded bundle).
func (l *Lucid) RestoreState(blob []byte) error {
	var st lucidState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("core: decode lucid state: %w", err)
	}
	l.scores = make(map[int]workload.SharingScore, len(st.Scores))
	for id, s := range st.Scores {
		l.scores[id] = s
	}
	l.seen = make(map[int]bool, len(st.Seen))
	for _, id := range st.Seen {
		l.seen[id] = true
	}
	l.hourCount = st.HourCount
	l.curHour = st.CurHour
	l.lastUpdate = st.LastUpdate
	l.binder.SetMode(st.BinderMode)
	l.profiler.capacityFrac = st.ProfCapacityFrac
	l.profiler.tprofNow = st.ProfTprofNow

	l.modelsDirty = st.ModelsDirty
	if st.ModelsDirty {
		if len(st.Bundle) == 0 {
			return fmt.Errorf("core: lucid state says models were refit but carries no bundle")
		}
		loaded, err := LoadModels(bytes.NewReader(st.Bundle))
		if err != nil {
			return fmt.Errorf("core: restore refit models: %w", err)
		}
		// Keep the constructor's analyzer (never refit) and History (the
		// Update Engine's merge base); take the refit estimator + forecaster.
		l.models.Estimator = loaded.Estimator
		l.models.Throughput = loaded.Throughput
	}
	l.models.Estimator.cache = make(map[int]float64, len(st.EstCache))
	for id, v := range st.EstCache {
		l.models.Estimator.cache[id] = v
	}
	l.models.Throughput.recent = append([]float64(nil), st.TPRecent...)
	return nil
}
