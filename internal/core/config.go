package core

import (
	"fmt"

	"repro/internal/workload"
)

// Normalized fills every unset (zero-valued) knob with its paper default and
// returns the result. Zero means "use the default" for the knobs whose legal
// range excludes zero; it is a meaningful setting for UpdateIntervalSec
// (static-model ablation) and FairnessAgingSec (aging off), which are left
// alone. Normalized never repairs an out-of-range value — that is Validate's
// job, and the two compose as cfg.Normalized().Validate().
func (c Config) Normalized() Config {
	if c.TprofSec == 0 {
		c.TprofSec = 200
	}
	if c.Nprof == 0 {
		c.Nprof = 8
	}
	if c.GSS == 0 {
		c.GSS = 2
	}
	if c.Thresholds == (workload.Thresholds{}) {
		c.Thresholds = workload.DefaultThresholds
	}
	if c.FastJobThresholdSec == 0 {
		c.FastJobThresholdSec = 2 * 3600
	}
	return c
}

// Validate reports the first out-of-range knob as a named-field error, or
// nil. It expects a fully-specified config (apply Normalized first if zero
// values mean "default"): the classifier thresholds must lie in (0,1] with
// Medium ≤ Tiny — Medium is the *stricter* cut point on the normalized-speed
// axis (§3.5.1) — and every duration or rate knob must be non-negative.
//
// Configs used to be repaired silently (New clamped non-positive knobs to
// their defaults), which hid sign bugs in programmatically-generated configs;
// now that internal/evolve synthesizes configs from search vectors, a wrong
// knob must fail loudly at construction, not quietly become the default.
func (c Config) Validate() error {
	switch {
	case c.TprofSec < 0:
		return fmt.Errorf("core: config TprofSec %d < 0", c.TprofSec)
	case c.Nprof < 0:
		return fmt.Errorf("core: config Nprof %d < 0", c.Nprof)
	case c.GSS < 0:
		return fmt.Errorf("core: config GSS %d < 0", c.GSS)
	case c.Thresholds.Medium <= 0 || c.Thresholds.Medium > 1:
		return fmt.Errorf("core: config Thresholds.Medium %g outside (0,1]", c.Thresholds.Medium)
	case c.Thresholds.Tiny <= 0 || c.Thresholds.Tiny > 1:
		return fmt.Errorf("core: config Thresholds.Tiny %g outside (0,1]", c.Thresholds.Tiny)
	case c.Thresholds.Medium > c.Thresholds.Tiny:
		return fmt.Errorf("core: config Thresholds.Medium %g > Tiny %g",
			c.Thresholds.Medium, c.Thresholds.Tiny)
	case c.UpdateIntervalSec < 0:
		return fmt.Errorf("core: config UpdateIntervalSec %d < 0", c.UpdateIntervalSec)
	case c.FairnessAgingSec < 0:
		return fmt.Errorf("core: config FairnessAgingSec %g < 0", c.FairnessAgingSec)
	case c.FastJobThresholdSec < 0:
		return fmt.Errorf("core: config FastJobThresholdSec %g < 0", c.FastJobThresholdSec)
	}
	return nil
}
