package core

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config carries Lucid's operator-tunable knobs and the ablation switches
// the Figure 11 experiments flip.
type Config struct {
	// TprofSec is the profiling time limit (default 200, Table 6).
	TprofSec int64
	// Nprof is the profiling job-scale limit in GPUs (default 8).
	Nprof int
	// GSS is the GPU Sharing Capacity (default 2).
	GSS int
	// Thresholds are the (Medium, Tiny) classifier cut points (default
	// 0.85/0.95, §4.5).
	Thresholds workload.Thresholds
	// UpdateIntervalSec is the Update Engine refit period (default weekly;
	// 0 disables updates — the §4.5(3) "static model" ablation).
	UpdateIntervalSec int64

	// HeterogeneityAware enables the paper's §6 GPU-generation extension:
	// jobs with long estimated durations are steered to the newest (fastest)
	// nodes, short jobs to the oldest, so expensive silicon does the long
	// work. No effect on homogeneous clusters.
	HeterogeneityAware bool
	// FastJobThresholdSec is the estimated duration above which a job
	// prefers fast nodes (default 2 h).
	FastJobThresholdSec float64

	// FairnessAgingSec implements the paper's §6 fairness extension: each
	// second a job waits buys it this many seconds of priority credit, so
	// long-waiting jobs eventually overtake shorter newcomers. 0 disables
	// aging (the paper's baseline behaviour). Values around 0.5–2 trade a
	// little average JCT for much better tail/fairness.
	FairnessAgingSec float64

	// Ablations (Figure 11a/11b and §4.5):
	DisableSharing    bool // "w/o Sharing": never pack
	DisableBinder     bool // "w/o Binder": naive bin-packing, no Indolent rules
	DisableEstimator  bool // "w/o Estimator": runtime-agnostic ordering
	DisableSpaceAware bool // profiler FIFO instead of least-GPUs-first
	DisableTimeAware  bool // static profiler configuration
	DisableDynamic    bool // fixed GSS regardless of load
}

// DefaultConfig returns the paper's defaults.
func DefaultConfig() Config {
	return Config{
		TprofSec:          200,
		Nprof:             8,
		GSS:               2,
		Thresholds:        workload.DefaultThresholds,
		UpdateIntervalSec: 7 * 86400,
	}
}

// Models bundles Lucid's three interpretable models plus the history they
// were trained on (the Update Engine refits on history ∪ freshly finished
// jobs).
type Models struct {
	Analyzer   *PackingAnalyzer
	Estimator  *WorkloadEstimator
	Throughput *ThroughputModel
	History    []*job.Job
}

// TrainModels fits all three models from a history trace (past months of
// the same cluster) — the setup step the paper performs on April–August
// data.
func TrainModels(history *trace.Trace, cfg Config) (*Models, error) {
	analyzer, err := TrainPackingAnalyzer(cfg.Thresholds)
	if err != nil {
		return nil, err
	}
	est, err := TrainWorkloadEstimator(history.Jobs)
	if err != nil {
		return nil, err
	}
	tp, err := TrainThroughputModel(history.Jobs, history.Days)
	if err != nil {
		return nil, err
	}
	return &Models{Analyzer: analyzer, Estimator: est, Throughput: tp, History: history.Jobs}, nil
}

// Clone returns a Models whose run-mutable state (the estimator's cache and
// update lineage, the throughput model's live observation window) is
// private to the clone. The fitted model weights, the analyzer (pure at
// inference time) and the history slice (read-only) are shared. Every
// independent scheduler run should get its own clone — otherwise one run's
// online updates leak into the next and repeated runs diverge.
func (m *Models) Clone() *Models {
	return &Models{
		Analyzer:   m.Analyzer,
		Estimator:  m.Estimator.Clone(),
		Throughput: m.Throughput.Clone(),
		History:    m.History,
	}
}

// Lucid is the scheduler (Figure 4): Profiler → Binder → Orchestrator,
// maintained by the Update Engine and tuned by the System Tuner.
type Lucid struct {
	cfg      Config
	models   *Models
	profiler *Profiler
	binder   *Binder

	scores     map[int]workload.SharingScore
	seen       map[int]bool
	hourCount  float64
	curHour    int64
	lastUpdate int64

	// modelsDirty records whether the Update Engine has refit the estimator
	// since construction. A snapshot embeds the full model bundle only then;
	// otherwise the constructor-provided models are reproducible and the
	// snapshot stays small.
	modelsDirty bool
}

// New assembles Lucid from trained models and a config. Zero-valued knobs
// are filled with their paper defaults (Normalized); an out-of-range knob —
// a negative budget, thresholds outside (0,1] — is a programming error in
// the caller and panics with Validate's named-field message. Callers
// constructing configs from external input (flags, search vectors) should
// run cfg.Normalized().Validate() themselves first.
func New(models *Models, cfg Config) *Lucid {
	cfg = cfg.Normalized()
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := NewProfiler()
	p.TprofSec = cfg.TprofSec
	p.tprofNow = cfg.TprofSec
	p.Nprof = cfg.Nprof
	p.SpaceAware = !cfg.DisableSpaceAware
	p.TimeAware = !cfg.DisableTimeAware

	b := NewBinder()
	b.GSS = cfg.GSS
	b.Indolent = !cfg.DisableBinder
	b.TimeAwarePack = !cfg.DisableEstimator
	if cfg.DisableSharing {
		b.SetMode(PackDisabled)
	}

	return &Lucid{
		cfg:      cfg,
		models:   models,
		profiler: p,
		binder:   b,
		scores:   map[int]workload.SharingScore{},
		seen:     map[int]bool{},
	}
}

// Name implements sim.Scheduler.
func (l *Lucid) Name() string { return "Lucid" }

// Binder exposes the binder (tests and the packing-advisor example).
func (l *Lucid) Binder() *Binder { return l.binder }

// Profiler exposes the profiler (tests and benchmarks).
func (l *Lucid) Profiler() *Profiler { return l.profiler }

// ModelsRefit reports whether the Update Engine has retrained the estimator
// since construction (tests; snapshots embed the model bundle only then).
func (l *Lucid) ModelsRefit() bool { return l.modelsDirty }

// NextWake implements sim.EventAware: the earliest time-driven decision in
// the Figure 4 workflow. Lucid's time dependencies are all explicit clocks:
//
//   - hourly maintenance (throughput observation, tuner retune, pack-mode
//     selection) fires when the hour counter advances;
//   - the profiler evicts each profiling job when its run reaches the
//     current Tprof;
//   - the Update Engine refits UpdateIntervalSec after its last attempt.
//
// Everything else reacts to queue/cluster changes, which wake the engine on
// their own. The binder's time-aware packing rule (partner remaining time
// below MinRemainSec) only *removes* pack options as runtime accrues, and
// the fairness-aging priority only *reorders* a queue that the greedy
// orchestrator replays in full each round — neither can turn an idle round
// into an acting one, so neither needs a wake-up.
func (l *Lucid) NextWake(env *sim.Env) int64 {
	now := env.Now()
	next := (l.curHour + 1) * 3600
	consider := func(at int64) {
		if at > now && at < next {
			next = at
		}
	}
	if l.cfg.UpdateIntervalSec > 0 {
		consider(l.lastUpdate + l.cfg.UpdateIntervalSec)
	}
	tprof := l.profiler.CurrentTprof()
	for _, j := range env.Profiling() {
		consider(now + tprof - env.ProfilingElapsed(j))
	}
	if next <= now { // hour boundary already due: poll at the next round
		return now
	}
	return next
}

// Tick implements the full Figure 4 workflow.
func (l *Lucid) Tick(env *sim.Env) {
	l.observeArrivals(env)
	l.hourlyMaintenance(env)
	l.profiler.Step(env, func(j *job.Job) { l.onProfiled(j) })
	l.orchestrate(env)
	l.updateEngine(env)
}

// observeArrivals counts new submissions for the throughput model.
func (l *Lucid) observeArrivals(env *sim.Env) {
	for _, j := range env.Pending() {
		if !l.seen[j.ID] {
			l.seen[j.ID] = true
			l.hourCount++
		}
	}
}

// hourlyMaintenance rolls the submission counter into the throughput model
// and re-derives the Dynamic Strategy and Time-aware Scaling settings.
func (l *Lucid) hourlyMaintenance(env *sim.Env) {
	hour := env.Now() / 3600
	if hour == l.curHour {
		return
	}
	for h := l.curHour; h < hour; h++ {
		l.models.Throughput.Observe(l.hourCount)
		l.hourCount = 0
	}
	l.curHour = hour

	forecast := l.models.Throughput.ForecastNextHour(int(hour%24), int(hour/24))
	level := l.models.Throughput.Level(forecast)
	l.profiler.Retune(level)
	if !l.cfg.DisableSharing {
		if l.cfg.DisableDynamic {
			l.binder.SetMode(PackDefault)
		} else {
			l.binder.SetMode(ModeFromLoad(level))
		}
	}
}

// onProfiled classifies a freshly profiled job and refreshes its estimate
// (the profile adds features the estimator can use).
func (l *Lucid) onProfiled(j *job.Job) {
	l.scores[j.ID] = l.models.Analyzer.ScoreJob(j)
	l.models.Estimator.Invalidate(j.ID)
}

// priority implements Algorithm 2 line 4: GPU demand × estimated duration.
// With the estimator ablated, ordering degrades to submission order. The
// fairness extension subtracts an aging credit proportional to waiting
// time, bounding starvation of long/large jobs (§6 future work).
func (l *Lucid) priority(j *job.Job, now int64) float64 {
	if l.cfg.DisableEstimator {
		return float64(j.Submit)
	}
	p := float64(j.GPUs) * l.models.Estimator.EstimateSec(j)
	if l.cfg.FairnessAgingSec > 0 {
		p -= l.cfg.FairnessAgingSec * float64(now-j.Submit)
	}
	return p
}

// remainingEstimate is the binder's time-awareness hook: estimated duration
// minus observed runtime.
func (l *Lucid) remainingEstimate(j *job.Job) float64 {
	rem := l.models.Estimator.EstimateSec(j) - j.RunTime
	if rem < 0 {
		rem = 0
	}
	return rem
}

// score returns the cached Sharing Score (Jumbo when unknown).
func (l *Lucid) score(j *job.Job) workload.SharingScore {
	if s, ok := l.scores[j.ID]; ok {
		return s
	}
	s := l.models.Analyzer.ScoreJob(j)
	l.scores[j.ID] = s
	return s
}

// orchestrate is Algorithm 2: sort the queue by priority ascending, then
// place with sharing (if enabled) or exclusively.
func (l *Lucid) orchestrate(env *sim.Env) {
	var queued []*job.Job
	for _, j := range env.Pending() {
		if j.State == job.Queued {
			queued = append(queued, j)
		}
	}
	if len(queued) == 0 {
		return
	}
	now := env.Now()
	sort.SliceStable(queued, func(a, b int) bool {
		pa, pb := l.priority(queued[a], now), l.priority(queued[b], now)
		if pa != pb {
			return pa < pb
		}
		if queued[a].Submit != queued[b].Submit {
			return queued[a].Submit < queued[b].Submit
		}
		return queued[a].ID < queued[b].ID
	})

	rec := env.Trace()
	if rec.Enabled() {
		l.traceOrder(env, queued, now)
	}

	sharing := !l.cfg.DisableSharing && l.binder.SharingEnabled()
	var remaining func(*job.Job) float64
	if !l.cfg.DisableEstimator {
		remaining = l.remainingEstimate
	}
	for _, j := range queued {
		if sharing {
			var p *job.Job
			if rec.Enabled() {
				p = l.findPartnerTraced(env, j, remaining, now)
			} else {
				p = l.binder.FindPartner(env, j, l.score, remaining)
			}
			if p != nil {
				if env.StartShared(j, p) {
					continue
				}
			}
		}
		pref := l.placementPref(j)
		if rec.Enabled() && pref == cluster.PreferFast {
			// Heterogeneity steering (§6): explain why this job targets the
			// newest generation. The estimate is the deciding score.
			env.Annotate(j.ID, "steer-long-job-to-fast-generation",
				l.models.Estimator.EstimateSec(j), 0, nil)
		}
		env.StartExclusivePrefer(j, pref)
	}
}

// traceOrder records the Resource Orchestrator's queue-ordering decision:
// the job granted the head of the queue, its priority score, and the top-K
// jobs it was preferred over — Figure 12's "why does job A go before job
// B?" answer.
func (l *Lucid) traceOrder(env *sim.Env, queued []*job.Job, now int64) {
	head := queued[0]
	reason := "min-gpu-demand-x-estimate"
	switch {
	case l.cfg.DisableEstimator:
		reason = "submit-order"
	case l.cfg.FairnessAgingSec > 0:
		reason = "min-gpu-demand-x-estimate-aged"
	}
	k := env.Trace().TopK()
	var alts []dtrace.Alternative
	for _, j := range queued[1:] {
		if len(alts) >= k {
			break
		}
		alts = append(alts, dtrace.Alternative{
			Job: j.ID, Score: l.priority(j, now), Reason: "behind-in-queue"})
	}
	env.Trace().Record(dtrace.Event{
		Tick: now, Job: head.ID, Action: dtrace.ActOrder, Reason: reason,
		VC: head.VC, GPUs: head.GPUs, Score: l.priority(head, now),
		Alternatives: alts,
	})
}

// findPartnerTraced runs the Binder with an explanation collector and
// records the outcome: a pack annotation (consumed by the engine's pack
// event) carrying the counterfactual partner list and a regret score, or a
// pack-reject event naming the Indolent rule that fired.
func (l *Lucid) findPartnerTraced(env *sim.Env, j *job.Job,
	remaining func(*job.Job) float64, now int64) *job.Job {

	ex := &PackExplain{}
	p := l.binder.FindPartnerExplain(env, j, l.score, remaining, ex)
	if p == nil {
		// Only an explicit rule firing is a decision worth a record;
		// "no-viable-partner" with zero candidates just means an empty VC.
		if ex.Reason != "no-viable-partner" || len(ex.Candidates) > 0 {
			env.Trace().Record(dtrace.Event{
				Tick: now, Job: j.ID, Action: dtrace.ActPackReject, Reason: ex.Reason,
				VC: j.VC, GPUs: j.GPUs, Alternatives: ex.Candidates,
			})
		}
		return nil
	}
	// Regret over every examined pairing with a computable score, including
	// rule-rejected ones with a better (lower) combined utilization: a
	// positive value quantifies what the Indolent safety rules cost on this
	// decision. Scoreless candidates (unprofiled partners) are excluded —
	// their 0 is "unknown", not "idle".
	var scored []dtrace.Alternative
	for _, a := range ex.Candidates {
		if a.Score > 0 {
			scored = append(scored, a)
		}
	}
	regret := dtrace.Regret(ex.ChosenScore, scored, true)
	env.Annotate(j.ID, "indolent-pack", ex.ChosenScore, regret, ex.Candidates)
	return p
}

// placementPref steers long jobs to fast GPU generations (§6 extension).
func (l *Lucid) placementPref(j *job.Job) cluster.Preference {
	if !l.cfg.HeterogeneityAware || l.cfg.DisableEstimator {
		return cluster.PreferAny
	}
	thr := l.cfg.FastJobThresholdSec
	if thr <= 0 {
		thr = 2 * 3600
	}
	if l.models.Estimator.EstimateSec(j) >= thr {
		return cluster.PreferFast
	}
	// Short jobs stay indifferent: forcing them onto old nodes would idle
	// the fast generation whenever long jobs are scarce.
	return cluster.PreferAny
}

// updateEngine periodically refits the Workload Estimate Model on the
// accumulated finished jobs (§3.6.2).
func (l *Lucid) updateEngine(env *sim.Env) {
	if l.cfg.UpdateIntervalSec <= 0 {
		return
	}
	if env.Now()-l.lastUpdate < l.cfg.UpdateIntervalSec {
		return
	}
	l.lastUpdate = env.Now()
	var finished []*job.Job
	for _, j := range env.AllJobs() {
		if j.State == job.Finished {
			finished = append(finished, j)
		}
	}
	if len(finished) < 200 {
		return // not enough fresh signal to be worth a refit
	}
	merged := append(append([]*job.Job(nil), l.models.History...), finished...)
	// Refit errors leave the previous model in place — the Update Engine
	// must never take the scheduler down.
	if err := l.models.Estimator.Update(merged); err == nil {
		l.modelsDirty = true
	}
}
