package core

import (
	"fmt"

	"repro/internal/feat"
	"repro/internal/job"
	"repro/internal/ml/gam"
	"repro/internal/ml/mlmodel"
)

// ThroughputModel is the Throughput Predict Model (§3.5.2): a GA²M
// time-series forecaster over hourly job-submission counts. The Binder's
// Dynamic Strategy asks it whether load is about to rise (keep packing) or
// stay low (relax to Apathetic mode or disable sharing), and the Profiler's
// Time-aware Scaling uses the same forecast to grow or shrink the profiling
// partition.
type ThroughputModel struct {
	model *gam.Model

	// Online observation window: the most recent hourly counts, appended by
	// the scheduler as simulated time passes, so forecasts use live data.
	recent []float64
	// baseline is the training-series mean, defining "relatively low"
	// throughput (§3.3: a customizable notion).
	baseline float64
}

// TrainThroughputModel fits the forecaster on a history trace's hourly
// submission series.
func TrainThroughputModel(history []*job.Job, days int) (*ThroughputModel, error) {
	series := feat.HourlySubmissions(history, days)
	if len(series) <= feat.ThroughputWarmup() {
		return nil, fmt.Errorf("core: throughput history too short (%d hours)", len(series))
	}
	ds := feat.ThroughputDataset(series)
	m, err := gam.Fit(ds, gam.Params{MaxBins: 10, Rounds: 300, LearningRate: 0.04})
	if err != nil {
		return nil, fmt.Errorf("core: throughput fit: %w", err)
	}
	t := &ThroughputModel{model: m, baseline: mlmodel.Mean(series)}
	// Seed the live window with the tail of history so forecasting works
	// from the first simulated hour.
	warm := feat.ThroughputWarmup() + 2
	t.recent = append(t.recent, series[len(series)-warm:]...)
	return t, nil
}

// Observe appends one completed hour's submission count.
func (t *ThroughputModel) Observe(count float64) {
	t.recent = append(t.recent, count)
	// Bound the window: features need at most a day plus slack.
	if max := feat.ThroughputWarmup() * 4; len(t.recent) > max {
		t.recent = t.recent[len(t.recent)-max:]
	}
}

// Clone returns a forecaster sharing the fitted model but with its own
// live observation window, so independent scheduler runs don't feed each
// other's Observe calls.
func (t *ThroughputModel) Clone() *ThroughputModel {
	cp := *t
	cp.recent = append([]float64(nil), t.recent...)
	return &cp
}

// ForecastNextHour predicts the coming hour's submissions. hourOfDay and
// dayIndex anchor the calendar features to simulated time.
func (t *ThroughputModel) ForecastNextHour(hourOfDay, dayIndex int) float64 {
	n := len(t.recent)
	if n < feat.ThroughputWarmup() {
		return t.baseline
	}
	// Build the feature row against the live window, overriding the
	// calendar features with real simulated time.
	row := feat.ThroughputFeatures(t.recent, n)
	row[0] = float64(hourOfDay)
	row[1] = float64(dayIndex)
	row[2] = float64(dayIndex % 7)
	v := t.model.Predict(row)
	if v < 0 {
		v = 0
	}
	return v
}

// PredictRow scores one pre-built feature row (batch evaluation in the
// Figure 13 and Table 7 experiments).
func (t *ThroughputModel) PredictRow(row []float64) float64 { return t.model.Predict(row) }

// Baseline returns the training-mean throughput.
func (t *ThroughputModel) Baseline() float64 { return t.baseline }

// LoadLevel classifies the forecast relative to the baseline: below
// lowFrac·baseline is "low" (sharing can relax), above highFrac·baseline is
// "high".
type LoadLevel int

// Load levels for the Dynamic Strategy.
const (
	LoadLow LoadLevel = iota
	LoadNormal
	LoadHigh
)

// Level buckets a forecast.
func (t *ThroughputModel) Level(forecast float64) LoadLevel {
	switch {
	case forecast < 0.5*t.baseline:
		return LoadLow
	case forecast > 1.3*t.baseline:
		return LoadHigh
	default:
		return LoadNormal
	}
}

// GlobalImportance exposes Figure 7a's bars.
func (t *ThroughputModel) GlobalImportance() []float64 { return t.model.GlobalImportance() }

// HourShape returns the learned shape function of the hour feature —
// Figure 7b.
func (t *ThroughputModel) HourShape() []gam.ShapePoint { return t.model.ShapeFunction(0) }

// FeatureNames lists the forecaster's inputs.
func (t *ThroughputModel) FeatureNames() []string { return feat.ThroughputFeatureNames() }

// EvalMAE scores the forecaster on a fresh series (Table 7's metric).
func (t *ThroughputModel) EvalMAE(series []float64) float64 {
	ds := feat.ThroughputDataset(series)
	pred := mlmodel.PredictAll(t.model, ds.X)
	return mlmodel.MAE(pred, ds.Y)
}
