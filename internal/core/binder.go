package core

import (
	"sort"

	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PackMode is the Binder's Dynamic Strategy state (§3.3).
type PackMode int

// Packing modes: Default packs under GSS=2, Apathetic tightens to GSS=1,
// Disabled turns sharing off for faster completion at low load.
const (
	PackDefault PackMode = iota
	PackApathetic
	PackDisabled
)

// String names the mode.
func (m PackMode) String() string {
	switch m {
	case PackDefault:
		return "Default"
	case PackApathetic:
		return "Apathetic"
	case PackDisabled:
		return "Disabled"
	default:
		return "?"
	}
}

// Binder is the Affine-jobpair Binder (§3.3): Indolent Packing under a GPU
// Sharing Capacity budget, with the rule set of the paper:
//
//  1. hard memory limit (OOM guard),
//  2. never pack different GPU demands (straggler effect),
//  3. at most two jobs per GPU set,
//  4. evict on unstable utilization (moot here: profiles are stationary by
//     construction — documented substitution),
//  5. never pack distributed jobs (network contention).
type Binder struct {
	// GSS is the GPU Sharing Capacity in Default mode (paper default 2).
	GSS int
	// Indolent toggles the Sharing-Score discipline; disabling it (the
	// Figure 11a "w/o Binder" ablation) packs naively under only the hard
	// rules.
	Indolent bool
	// TimeAwarePack skips partners that are about to finish ("eliminate
	// jobs with little remaining runtime", Algorithm 2); needs the
	// estimator.
	TimeAwarePack bool
	// MinRemainSec is the partner-remaining-runtime floor for packing.
	MinRemainSec float64
	// MemMarginFrac keeps this fraction of GPU memory free as OOM headroom.
	MemMarginFrac float64

	mode PackMode
}

// NewBinder returns the paper-default binder.
func NewBinder() *Binder {
	return &Binder{GSS: 2, Indolent: true, TimeAwarePack: true,
		MinRemainSec: 600, MemMarginFrac: 0.08, mode: PackDefault}
}

// SetMode applies the Dynamic Strategy decision.
func (b *Binder) SetMode(m PackMode) { b.mode = m }

// Mode returns the current packing mode.
func (b *Binder) Mode() PackMode { return b.mode }

// ModeFromLoad maps a throughput forecast level to a packing mode: low
// predicted load relaxes packing (§3.3's Dynamic Strategy).
func ModeFromLoad(level LoadLevel) PackMode {
	switch level {
	case LoadLow:
		return PackApathetic
	default:
		return PackDefault
	}
}

// gssNow is the effective sharing budget under the current mode.
func (b *Binder) gssNow() int {
	switch b.mode {
	case PackApathetic:
		return b.GSS - 1
	case PackDisabled:
		return -1
	default:
		return b.GSS
	}
}

// SharingEnabled reports whether any packing can happen right now
// (Algorithm 2's CheckSharingStrategy).
func (b *Binder) SharingEnabled() bool { return b.mode != PackDisabled }

// PackExplain collects the Binder's reasoning for one packing decision —
// the interpretability payload of a pack/pack-reject decision-trace event.
type PackExplain struct {
	// Reason names the rule that prevented packing entirely (set when
	// FindPartnerExplain returns nil).
	Reason string
	// ChosenScore is the chosen pairing's combined GPU utilization (the
	// Binder's deciding metric; lower is better).
	ChosenScore float64
	// Candidates are the same-VC, same-demand running jobs the Binder
	// examined and did not choose, each with the rule that rejected it (or
	// "runner-up" for viable but worse-scored pairings) and, where the
	// partner is profiled, the pairing's combined utilization. Sorted
	// best-scored first (scoreless rejects last), so truncating to K keeps
	// the most informative counterfactuals.
	Candidates []dtrace.Alternative
}

// fail records the decision-killing rule (nil-safe).
func (ex *PackExplain) fail(reason string) {
	if ex != nil {
		ex.Reason = reason
	}
}

// add records an examined candidate (nil-safe).
func (ex *PackExplain) add(id int, score float64, reason string) {
	if ex != nil {
		ex.Candidates = append(ex.Candidates, dtrace.Alternative{Job: id, Score: score, Reason: reason})
	}
}

// FindPartner returns the best running job to pack j with, or nil
// (Algorithm 2's CheckAffineJobPair). score gives each job's Sharing Score;
// remaining estimates a running job's remaining seconds.
func (b *Binder) FindPartner(env *sim.Env, j *job.Job,
	score func(*job.Job) workload.SharingScore,
	remaining func(*job.Job) float64) *job.Job {
	return b.FindPartnerExplain(env, j, score, remaining, nil)
}

// FindPartnerExplain is FindPartner with an optional explanation collector
// for decision tracing. Passing nil costs nothing extra — the default
// FindPartner path.
func (b *Binder) FindPartnerExplain(env *sim.Env, j *job.Job,
	score func(*job.Job) workload.SharingScore,
	remaining func(*job.Job) float64, ex *PackExplain) *job.Job {

	if !b.SharingEnabled() {
		ex.fail("sharing-disabled")
		return nil
	}
	if !j.Profiled {
		ex.fail("unprofiled")
		return nil
	}
	if j.Distributed() {
		ex.fail("distributed") // rule 5
		return nil
	}
	gss := b.gssNow()
	sj := score(j)
	if b.Indolent && int(sj) > gss {
		ex.fail("score-over-budget") // a job too heavy for any partner under the budget
		return nil
	}

	memCap := workload.GPUMemMBCap * (1 - b.MemMarginFrac)
	var best *job.Job
	bestKey := 1e18
	for _, r := range env.Running() {
		if r.VC != j.VC || r.GPUs != j.GPUs {
			continue // rule 2 (same VC and demand); not a meaningful counterfactual
		}
		if r.Distributed() {
			ex.add(r.ID, 0, "distributed-partner") // rule 5
			continue
		}
		if !r.Profiled {
			ex.add(r.ID, 0, "unprofiled-partner")
			continue
		}
		key := j.Profile.GPUUtil + r.Profile.GPUUtil
		if env.Cluster().PartnerOf(r.ID) >= 0 {
			ex.add(r.ID, key, "has-partner") // rule 3: two jobs max
			continue
		}
		if j.Profile.GPUMemMB+r.Profile.GPUMemMB > memCap {
			ex.add(r.ID, key, "oom-guard") // rule 1: hard memory limit
			continue
		}
		if b.Indolent && int(sj)+int(score(r)) > gss {
			ex.add(r.ID, key, "score-budget") // Indolent Packing: sharing-score budget
			continue
		}
		if b.TimeAwarePack && remaining != nil {
			if rem := remaining(r); rem < b.MinRemainSec {
				ex.add(r.ID, key, "ending-soon") // partner about to exit; packing buys nothing
				continue
			}
		}
		// Prefer the least-contended pairing: lowest combined utilization.
		if key < bestKey {
			if best != nil {
				ex.add(best.ID, bestKey, "runner-up")
			}
			bestKey, best = key, r
		} else {
			ex.add(r.ID, key, "runner-up")
		}
	}
	if ex != nil {
		if best == nil {
			ex.fail("no-viable-partner")
		} else {
			ex.ChosenScore = bestKey
		}
		// Best-scored counterfactuals first; rejects without a computable
		// score sink to the end.
		sort.SliceStable(ex.Candidates, func(a, c int) bool {
			ca, cc := ex.Candidates[a], ex.Candidates[c]
			if (ca.Score > 0) != (cc.Score > 0) {
				return ca.Score > 0
			}
			return ca.Score < cc.Score
		})
	}
	return best
}
