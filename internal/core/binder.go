package core

import (
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/workload"
)

// PackMode is the Binder's Dynamic Strategy state (§3.3).
type PackMode int

// Packing modes: Default packs under GSS=2, Apathetic tightens to GSS=1,
// Disabled turns sharing off for faster completion at low load.
const (
	PackDefault PackMode = iota
	PackApathetic
	PackDisabled
)

// String names the mode.
func (m PackMode) String() string {
	switch m {
	case PackDefault:
		return "Default"
	case PackApathetic:
		return "Apathetic"
	case PackDisabled:
		return "Disabled"
	default:
		return "?"
	}
}

// Binder is the Affine-jobpair Binder (§3.3): Indolent Packing under a GPU
// Sharing Capacity budget, with the rule set of the paper:
//
//  1. hard memory limit (OOM guard),
//  2. never pack different GPU demands (straggler effect),
//  3. at most two jobs per GPU set,
//  4. evict on unstable utilization (moot here: profiles are stationary by
//     construction — documented substitution),
//  5. never pack distributed jobs (network contention).
type Binder struct {
	// GSS is the GPU Sharing Capacity in Default mode (paper default 2).
	GSS int
	// Indolent toggles the Sharing-Score discipline; disabling it (the
	// Figure 11a "w/o Binder" ablation) packs naively under only the hard
	// rules.
	Indolent bool
	// TimeAwarePack skips partners that are about to finish ("eliminate
	// jobs with little remaining runtime", Algorithm 2); needs the
	// estimator.
	TimeAwarePack bool
	// MinRemainSec is the partner-remaining-runtime floor for packing.
	MinRemainSec float64
	// MemMarginFrac keeps this fraction of GPU memory free as OOM headroom.
	MemMarginFrac float64

	mode PackMode
}

// NewBinder returns the paper-default binder.
func NewBinder() *Binder {
	return &Binder{GSS: 2, Indolent: true, TimeAwarePack: true,
		MinRemainSec: 600, MemMarginFrac: 0.08, mode: PackDefault}
}

// SetMode applies the Dynamic Strategy decision.
func (b *Binder) SetMode(m PackMode) { b.mode = m }

// Mode returns the current packing mode.
func (b *Binder) Mode() PackMode { return b.mode }

// ModeFromLoad maps a throughput forecast level to a packing mode: low
// predicted load relaxes packing (§3.3's Dynamic Strategy).
func ModeFromLoad(level LoadLevel) PackMode {
	switch level {
	case LoadLow:
		return PackApathetic
	default:
		return PackDefault
	}
}

// gssNow is the effective sharing budget under the current mode.
func (b *Binder) gssNow() int {
	switch b.mode {
	case PackApathetic:
		return b.GSS - 1
	case PackDisabled:
		return -1
	default:
		return b.GSS
	}
}

// SharingEnabled reports whether any packing can happen right now
// (Algorithm 2's CheckSharingStrategy).
func (b *Binder) SharingEnabled() bool { return b.mode != PackDisabled }

// FindPartner returns the best running job to pack j with, or nil
// (Algorithm 2's CheckAffineJobPair). score gives each job's Sharing Score;
// remaining estimates a running job's remaining seconds.
func (b *Binder) FindPartner(env *sim.Env, j *job.Job,
	score func(*job.Job) workload.SharingScore,
	remaining func(*job.Job) float64) *job.Job {

	if !b.SharingEnabled() || !j.Profiled {
		return nil
	}
	if j.Distributed() {
		return nil // rule 5
	}
	gss := b.gssNow()
	sj := score(j)
	if b.Indolent && int(sj) > gss {
		return nil // a job too heavy for any partner under the budget
	}

	memCap := workload.GPUMemMBCap * (1 - b.MemMarginFrac)
	var best *job.Job
	bestKey := 1e18
	for _, r := range env.Running() {
		if r.VC != j.VC || r.GPUs != j.GPUs || r.Distributed() {
			continue // rules 2 and 5 (same demand, no distributed partners)
		}
		if !r.Profiled {
			continue
		}
		if env.Cluster().PartnerOf(r.ID) >= 0 {
			continue // rule 3: two jobs max
		}
		if j.Profile.GPUMemMB+r.Profile.GPUMemMB > memCap {
			continue // rule 1: OOM guard
		}
		if b.Indolent && int(sj)+int(score(r)) > gss {
			continue // Indolent Packing: sharing-score budget
		}
		if b.TimeAwarePack && remaining != nil {
			if rem := remaining(r); rem < b.MinRemainSec {
				continue // partner about to exit; packing buys nothing
			}
		}
		// Prefer the least-contended pairing: lowest combined utilization.
		key := j.Profile.GPUUtil + r.Profile.GPUUtil
		if key < bestKey {
			bestKey, best = key, r
		}
	}
	return best
}
