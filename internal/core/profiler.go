package core

import (
	"fmt"
	"sort"

	"repro/internal/dtrace"
	"repro/internal/job"
	"repro/internal/sim"
)

// Profiler is the Non-intrusive Job Profiler (§3.2): it runs each incoming
// job briefly on a decoupled profiling partition, collecting GPU
// utilization, memory footprint and memory utilization via the simulated
// equivalent of NVIDIA-SMI/DCGM. Debug and test jobs — the majority of the
// trace — simply finish there, giving users immediate feedback; surviving
// jobs emerge with the profile the Binder and Estimator need.
//
// Two-dimensional optimization:
//
//   - Space-aware Profiling (Algorithm 1): the profiling queue is sorted
//     least-GPUs-first and allocated consolidated/exclusively, dissolving
//     HOL blocking inside the small profiling partition.
//   - Time-aware Scaling: the profiling time limit and usable capacity
//     breathe with the Throughput Predict Model's forecast — bursts shrink
//     T_prof and borrow capacity, quiet hours return it.
type Profiler struct {
	// TprofSec is the per-job profiling time limit (paper default 200 s,
	// Table 6 explores 100–600 s).
	TprofSec int64
	// Nprof is the job scale limit: jobs demanding more GPUs skip profiling
	// and are measured on the fly (§3.2).
	Nprof int
	// SpaceAware toggles Algorithm 1's least-GPU-first ordering (the
	// Figure 11b ablation disables it, falling back to FIFO order).
	SpaceAware bool
	// TimeAware toggles Time-aware Scaling.
	TimeAware bool

	// capacityFrac is the currently usable fraction of the profiling
	// partition, adjusted by Time-aware Scaling.
	capacityFrac float64
	// tprofNow is the current (possibly scaled-down) time limit.
	tprofNow int64
}

// NewProfiler returns the paper-default profiler: Tprof 200 s, Nprof 8,
// both optimizations on.
func NewProfiler() *Profiler {
	return &Profiler{TprofSec: 200, Nprof: 8, SpaceAware: true, TimeAware: true,
		capacityFrac: 0.75, tprofNow: 200}
}

// Retune applies Time-aware Scaling from the load forecast: bursts borrow
// the whole partition and halve T_prof; quiet hours shrink usable capacity
// (returning the loaned nodes) and restore the full limit.
func (p *Profiler) Retune(level LoadLevel) {
	if !p.TimeAware {
		p.capacityFrac = 0.75
		p.tprofNow = p.TprofSec
		return
	}
	switch level {
	case LoadHigh:
		p.capacityFrac = 1.0
		p.tprofNow = p.TprofSec / 2
		if p.tprofNow < 60 {
			p.tprofNow = 60
		}
	case LoadLow:
		p.capacityFrac = 0.5
		p.tprofNow = p.TprofSec
	default:
		p.capacityFrac = 0.75
		p.tprofNow = p.TprofSec
	}
}

// CurrentTprof returns the active profiling time limit.
func (p *Profiler) CurrentTprof() int64 {
	if p.tprofNow <= 0 {
		return p.TprofSec
	}
	return p.tprofNow
}

// Step runs one profiler round (Algorithm 1): evict overtime jobs, admit
// oversized jobs on the fly, then fill the partition least-GPUs-first.
// onProfiled is invoked for each job that leaves the profiler with a fresh
// profile.
func (p *Profiler) Step(env *sim.Env, onProfiled func(*job.Job)) {
	rec := env.Trace()

	// CheckRunningJobs: evict jobs that exceeded the limit.
	for _, j := range env.Profiling() {
		if elapsed := env.ProfilingElapsed(j); elapsed >= p.CurrentTprof() {
			if rec.Enabled() {
				// The engine's profile-stop event inherits this as its
				// reason: the Time-aware limit, not job completion, ended
				// the run.
				env.Annotate(j.ID, fmt.Sprintf("tprof-exceeded-%ds", p.CurrentTprof()),
					float64(elapsed), 0, nil)
			}
			env.StopProfiling(j)
			onProfiled(j)
		}
	}

	pc := env.ProfilerCluster()
	if pc == nil {
		// No profiling partition: everything is observed on the fly.
		for _, j := range env.Pending() {
			if j.State == job.Pending {
				if rec.Enabled() {
					rec.Record(dtrace.Event{Tick: env.Now(), Job: j.ID,
						Action: dtrace.ActProfileSkip, Reason: "no-profiler-partition",
						VC: j.VC, GPUs: j.GPUs})
				}
				env.ObserveOnTheFly(j)
				env.Admit(j)
				onProfiled(j)
			}
		}
		return
	}

	// Job scale limit: oversized jobs skip profiling (metrics on the fly).
	// The effective limit is the smaller of Nprof and what the partition's
	// current capacity budget can ever host — a job larger than the budget
	// would otherwise wait forever for a slot that cannot exist.
	budget := int(float64(pc.TotalGPUs()) * p.capacityFrac)
	effLimit := p.Nprof
	if budget < effLimit {
		effLimit = budget
	}
	var queue []*job.Job
	for _, j := range env.Pending() {
		if j.State != job.Pending {
			continue
		}
		if j.GPUs > effLimit {
			if rec.Enabled() {
				// §3.2: oversized jobs skip profiling, metrics on the fly.
				// Score carries the effective scale limit that excluded it.
				rec.Record(dtrace.Event{Tick: env.Now(), Job: j.ID,
					Action: dtrace.ActProfileSkip, Reason: "exceeds-scale-limit",
					VC: j.VC, GPUs: j.GPUs, Score: float64(effLimit)})
			}
			env.ObserveOnTheFly(j)
			env.Admit(j)
			onProfiled(j)
			continue
		}
		queue = append(queue, j)
	}

	// SortJobGPUNum: least GPUs first (space-aware); FIFO otherwise.
	if p.SpaceAware {
		sort.SliceStable(queue, func(a, b int) bool {
			if queue[a].GPUs != queue[b].GPUs {
				return queue[a].GPUs < queue[b].GPUs
			}
			if queue[a].Submit != queue[b].Submit {
				return queue[a].Submit < queue[b].Submit
			}
			return queue[a].ID < queue[b].ID
		})
	}

	// Consolidated allocation under the Time-aware capacity budget.
	used := pc.TotalGPUs() - pc.FreeGPUs("")
	for _, j := range queue {
		if used+j.GPUs > budget {
			break // capacity budget exhausted
		}
		if !env.StartProfiling(j) {
			break // Consolidate failed → later (larger) jobs cannot fit either
		}
		used += j.GPUs
	}
}
