package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// System Tuner (§3.6.1): because Lucid is data-driven and fully
// interpretable, operators can tune it by *simulating* candidate
// configurations on recent trace data instead of guessing. TuneProfiler
// implements the §4.6 guided adjustment of the Non-intrusive Job Profiler:
// it replays the previous window under a grid of (Tprof, Nprof) candidates
// and returns the configuration minimizing average queuing delay.
//
// The model-side tuning — posing monotonic constraints on learned shape
// functions via PAV — lives in WorkloadEstimator.MonotonicGPUNum and
// gam.ApplyMonotonic.

// TuneCandidate is one profiler configuration with its simulated outcome.
type TuneCandidate struct {
	TprofSec    int64
	Nprof       int
	AvgQueueSec float64
	AvgJCTSec   float64
}

// TuneProfiler grid-searches profiler settings over a replay of the recent
// trace (only the profiler knobs move between candidates). Each replay gets
// a private clone of the models: Lucid's forecaster mutates model state
// during a run, and a shared instance would let one candidate's replay bias
// the next — and mutate a caller's (possibly cached, shared) models.
// Returns candidates sorted best-first by average queuing delay.
func TuneProfiler(recent *trace.Trace, models *Models, base Config,
	tprofs []int64, nprofs []int, opts sim.Options) []TuneCandidate {

	var out []TuneCandidate
	for _, tp := range tprofs {
		for _, np := range nprofs {
			cfg := base
			cfg.TprofSec = tp
			cfg.Nprof = np
			cfg.UpdateIntervalSec = 0 // keep replays cheap and comparable
			res := sim.New(recent, New(models.Clone(), cfg), opts).Run()
			out = append(out, TuneCandidate{
				TprofSec:    tp,
				Nprof:       np,
				AvgQueueSec: res.AvgQueueSec,
				AvgJCTSec:   res.AvgJCTSec,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AvgQueueSec < out[j].AvgQueueSec })
	return out
}

// RenderTuning formats a tuning report for operators.
func RenderTuning(cands []TuneCandidate) string {
	var sb strings.Builder
	sb.WriteString("Tprof(s)  Nprof  avgQueue(s)  avgJCT(s)\n")
	for _, c := range cands {
		fmt.Fprintf(&sb, "%8d  %5d  %11.0f  %9.0f\n", c.TprofSec, c.Nprof, c.AvgQueueSec, c.AvgJCTSec)
	}
	return sb.String()
}
