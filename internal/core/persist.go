package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/feat"
	"repro/internal/ml/dtree"
	"repro/internal/ml/gam"
	"repro/internal/workload"
)

// Bundle persistence: a trained Models set serializes to one JSON document,
// so the models an operator trained offline (or a previous scheduler
// instance refined through the Update Engine) deploy without retraining —
// the low-integration-cost story of A2.

// bundleDTO is the on-disk layout; the three models and the estimator's
// featurizer are embedded as raw JSON produced by their own Save methods.
type bundleDTO struct {
	Thresholds    workload.Thresholds `json:"thresholds"`
	AnalyzerTree  json.RawMessage     `json:"analyzer_tree"`
	EstimatorGAM  json.RawMessage     `json:"estimator_gam"`
	Featurizer    json.RawMessage     `json:"featurizer"`
	ThroughputGAM json.RawMessage     `json:"throughput_gam"`
	TPBaseline    float64             `json:"throughput_baseline"`
	TPRecent      []float64           `json:"throughput_recent"`
	Monotonic     bool                `json:"monotonic_gpu_num"`
}

// Save serializes the bundle (History is not persisted — the Update Engine
// resumes from freshly finished jobs).
func (m *Models) Save(w io.Writer) error {
	raw := func(save func(io.Writer) error) (json.RawMessage, error) {
		var buf bytes.Buffer
		if err := save(&buf); err != nil {
			return nil, err
		}
		return json.RawMessage(buf.Bytes()), nil
	}
	dto := bundleDTO{
		Thresholds: m.Analyzer.thresholds,
		TPBaseline: m.Throughput.baseline,
		TPRecent:   m.Throughput.recent,
		Monotonic:  m.Estimator.MonotonicGPUNum,
	}
	var err error
	if dto.AnalyzerTree, err = raw(m.Analyzer.tree.Save); err != nil {
		return fmt.Errorf("core: save analyzer: %w", err)
	}
	if dto.EstimatorGAM, err = raw(m.Estimator.model.Save); err != nil {
		return fmt.Errorf("core: save estimator: %w", err)
	}
	if dto.Featurizer, err = raw(m.Estimator.feat.Save); err != nil {
		return fmt.Errorf("core: save featurizer: %w", err)
	}
	if dto.ThroughputGAM, err = raw(m.Throughput.model.Save); err != nil {
		return fmt.Errorf("core: save throughput: %w", err)
	}
	return json.NewEncoder(w).Encode(dto)
}

// LoadModels reads a bundle written by Save. Truncated, corrupted or
// wrong-format input is rejected with a descriptive error — a missing model
// section must never load as a silently zero-valued model that would then
// mis-score every job.
func LoadModels(r io.Reader) (*Models, error) {
	dec := json.NewDecoder(r)
	var dto bundleDTO
	if err := dec.Decode(&dto); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("core: load bundle: input empty or truncated: %w", err)
		}
		return nil, fmt.Errorf("core: load bundle: %w", err)
	}
	// A syntactically-valid document with an absent or null section would
	// otherwise hand an empty reader to the sub-loader — and a sub-loader
	// that tolerates `null` returns a zero-valued model. Reject up front,
	// naming the missing section.
	for _, sec := range []struct {
		name string
		raw  json.RawMessage
	}{
		{"analyzer_tree", dto.AnalyzerTree},
		{"estimator_gam", dto.EstimatorGAM},
		{"featurizer", dto.Featurizer},
		{"throughput_gam", dto.ThroughputGAM},
	} {
		trimmed := bytes.TrimSpace(sec.raw)
		if len(trimmed) == 0 || bytes.Equal(trimmed, []byte("null")) {
			return nil, fmt.Errorf("core: load bundle: missing %q section (truncated file or not a model bundle)", sec.name)
		}
	}
	// Anything after the document means the file is not a bundle (or two
	// bundles were concatenated); loading just the first silently would hide
	// the corruption.
	if tok, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("core: load bundle: trailing data after bundle document (next token %v)", tok)
	}
	tree, err := dtree.Load(bytes.NewReader(dto.AnalyzerTree))
	if err != nil {
		return nil, fmt.Errorf("core: load analyzer: %w", err)
	}
	estGAM, err := gam.Load(bytes.NewReader(dto.EstimatorGAM))
	if err != nil {
		return nil, fmt.Errorf("core: load estimator: %w", err)
	}
	fz, err := feat.LoadDurationFeaturizer(bytes.NewReader(dto.Featurizer))
	if err != nil {
		return nil, fmt.Errorf("core: load featurizer: %w", err)
	}
	tpGAM, err := gam.Load(bytes.NewReader(dto.ThroughputGAM))
	if err != nil {
		return nil, fmt.Errorf("core: load throughput: %w", err)
	}
	return &Models{
		Analyzer: &PackingAnalyzer{tree: tree, thresholds: dto.Thresholds},
		Estimator: &WorkloadEstimator{
			feat:            fz,
			model:           estGAM,
			cache:           map[int]float64{},
			MonotonicGPUNum: dto.Monotonic,
			params:          estimatorGAMParams(),
		},
		Throughput: &ThroughputModel{
			model:    tpGAM,
			baseline: dto.TPBaseline,
			recent:   dto.TPRecent,
		},
	}, nil
}
