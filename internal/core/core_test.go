package core

import (
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestPackingAnalyzerAccuracy(t *testing.T) {
	a, err := TrainPackingAnalyzer(workload.DefaultThresholds)
	if err != nil {
		t.Fatal(err)
	}
	// §4.6: "DT is sufficient to provide equivalent accuracy (94.1 %)".
	if acc := a.Accuracy(); acc < 0.88 {
		t.Fatalf("packing analyzer accuracy %v, want ≥0.88", acc)
	}
}

func TestPackingAnalyzerInterpretation(t *testing.T) {
	a, _ := TrainPackingAnalyzer(workload.DefaultThresholds)
	out := a.Render()
	for _, want := range []string{"GPU Utilization", "Tiny", "Jumbo"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, out)
		}
	}
	imp := a.FeatureImportances()
	// Figure 6: U_G (GPU utilization) dominates.
	for i := 1; i < len(imp); i++ {
		if imp[i] > imp[0] {
			t.Fatalf("feature %q (%.3f) outweighs GPU utilization (%.3f)",
				a.FeatureNames()[i], imp[i], imp[0])
		}
	}
}

func TestPackingAnalyzerUnprofiledIsJumbo(t *testing.T) {
	a, _ := TrainPackingAnalyzer(workload.DefaultThresholds)
	cfg := workload.Config{Model: workload.PPO, BatchSize: 64}
	j := job.New(1, "x", "u", "vc", 1, 0, 100, cfg)
	if s := a.ScoreJob(j); s != workload.Jumbo {
		t.Fatalf("unprofiled job scored %v, must be conservative Jumbo", s)
	}
	j.Profiled = true
	j.Profile = cfg.Profile()
	if s := a.ScoreJob(j); s != workload.Tiny {
		t.Fatalf("profiled PPO scored %v, want Tiny", s)
	}
}

func historyTrace(n int) (*trace.Trace, *trace.Generator) {
	s := trace.Venus()
	s.NumJobs = n
	g := trace.NewGenerator(s)
	return g.Emit(0), g
}

func TestWorkloadEstimatorEndToEnd(t *testing.T) {
	hist, g := historyTrace(4000)
	est, err := TrainWorkloadEstimator(hist.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	next := g.Emit(3000)
	if r2 := est.EvalR2(next.Jobs); r2 < 0.1 {
		t.Fatalf("estimator R² = %v on next month", r2)
	}
	// Explanations sum to the prediction.
	j := next.Jobs[0]
	EnsureProfiles([]*job.Job{j})
	intercept, contribs := est.Explain(j)
	sum := intercept
	for _, c := range contribs {
		sum += c.Score
	}
	got := est.EstimateSec(j)
	if got >= 61 && abs(sum-got) > 1e-6 {
		t.Fatalf("explanation sums to %v, estimate is %v", sum, got)
	}
	if len(est.FeatureNames()) == 0 || len(est.GlobalImportance()) != len(est.FeatureNames()) {
		t.Fatal("importance/name mismatch")
	}
}

func TestEstimatorCacheInvalidation(t *testing.T) {
	hist, g := historyTrace(2000)
	est, _ := TrainWorkloadEstimator(hist.Jobs)
	j := g.Emit(10).Jobs[0]
	v1 := est.EstimateSec(j)
	// Attaching a profile and invalidating may change the estimate; the
	// cache must at minimum be refreshed.
	j.Profiled = true
	j.Profile = j.Config.Profile()
	est.Invalidate(j.ID)
	v2 := est.EstimateSec(j)
	if v2 <= 0 {
		t.Fatalf("estimate after invalidation = %v", v2)
	}
	_ = v1
}

func TestThroughputModelForecast(t *testing.T) {
	hist, _ := historyTrace(8000)
	tp, err := TrainThroughputModel(hist.Jobs, hist.Days)
	if err != nil {
		t.Fatal(err)
	}
	// Night hours forecast below day hours (diurnal shape).
	night := tp.ForecastNextHour(3, 10)
	day := tp.ForecastNextHour(14, 10)
	if day <= night {
		t.Fatalf("diurnal forecast inverted: day=%v night=%v", day, night)
	}
	// Levels bucket sensibly.
	if tp.Level(0) != LoadLow {
		t.Fatal("zero forecast must be LoadLow")
	}
	if tp.Level(tp.Baseline()*2) != LoadHigh {
		t.Fatal("2× baseline must be LoadHigh")
	}
	if tp.Level(tp.Baseline()) != LoadNormal {
		t.Fatal("baseline must be LoadNormal")
	}
	// Observing keeps the window bounded.
	for i := 0; i < 500; i++ {
		tp.Observe(5)
	}
	if f := tp.ForecastNextHour(14, 20); f < 0 {
		t.Fatalf("forecast negative: %v", f)
	}
}

func TestBinderRules(t *testing.T) {
	b := NewBinder()
	cfgLight := workload.Config{Model: workload.PointNet, BatchSize: 64}
	cfgHeavy := workload.Config{Model: workload.BERT, BatchSize: 32}

	mk := func(id, gpus int, cfg workload.Config) *job.Job {
		j := job.New(id, "x", "u", "vc", gpus, 0, 10000, cfg)
		j.Profiled = true
		j.Profile = cfg.Profile()
		return j
	}
	score := func(j *job.Job) workload.SharingScore {
		if j.Config.Model == workload.BERT {
			return workload.Jumbo
		}
		return workload.Tiny
	}

	// Distributed jobs never pack (rule 5).
	jDist := mk(1, 16, cfgLight)
	if p := b.FindPartner(nil, jDist, score, nil); p != nil {
		t.Fatal("distributed job offered a partner")
	}
	// Jumbo job under Apathetic mode (GSS=1) cannot pack at all.
	b.SetMode(PackApathetic)
	jHeavy := mk(2, 1, cfgHeavy)
	if p := b.FindPartner(nil, jHeavy, score, nil); p != nil {
		t.Fatal("Jumbo job packed under GSS=1")
	}
	// Disabled mode packs nothing.
	b.SetMode(PackDisabled)
	if b.SharingEnabled() {
		t.Fatal("disabled binder claims sharing enabled")
	}
	// Mode helpers.
	if ModeFromLoad(LoadLow) != PackApathetic || ModeFromLoad(LoadHigh) != PackDefault {
		t.Fatal("ModeFromLoad mapping wrong")
	}
	if PackDefault.String() != "Default" || PackDisabled.String() != "Disabled" {
		t.Fatal("mode strings wrong")
	}
}

// runLucid executes Lucid end-to-end on a trace with models trained from a
// sibling history month.
func runLucid(t *testing.T, tr *trace.Trace, hist *trace.Trace, cfg Config) *sim.Result {
	t.Helper()
	models, err := TrainModels(hist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim.New(tr, New(models, cfg), sim.Options{
		Tick: 60, SchedulerEvery: 60, ProfilerNodes: 2,
	}).Run()
}

// miniVenus shrinks cluster and workload together so the load profile (and
// therefore queueing contention) matches the full-scale trace.
func miniVenus() trace.GenSpec {
	s := trace.Venus()
	s.Nodes = 20
	s.NumVCs = 4
	s.NumJobs = 4000
	return s
}

func TestLucidEndToEndBeatsFIFO(t *testing.T) {
	g := trace.NewGenerator(miniVenus())
	hist := g.Emit(0)
	eval := g.Emit(0)

	lucid := runLucid(t, eval, hist, DefaultConfig())
	if lucid.Unfinished > 0 {
		t.Fatalf("Lucid left %d jobs unfinished", lucid.Unfinished)
	}

	fifo := sim.New(eval, sched.NewFIFO(), sim.Options{Tick: 60, SchedulerEvery: 60}).Run()
	if lucid.AvgJCTSec >= fifo.AvgJCTSec {
		t.Fatalf("Lucid avgJCT %.0fs not better than FIFO %.0fs", lucid.AvgJCTSec, fifo.AvgJCTSec)
	}
	if lucid.AvgQueueSec >= fifo.AvgQueueSec {
		t.Fatalf("Lucid queue %.0fs not better than FIFO %.0fs", lucid.AvgQueueSec, fifo.AvgQueueSec)
	}
}

func TestLucidDebugFeedback(t *testing.T) {
	// Short jobs get near-immediate feedback via the profiler: their JCT is
	// close to their duration.
	s := trace.Venus()
	s.NumJobs = 2000
	g := trace.NewGenerator(s)
	hist := g.Emit(0)
	eval := g.Emit(0)
	res := runLucid(t, eval, hist, DefaultConfig())

	var shortJCT, shortDur float64
	var n int
	for _, j := range res.Jobs {
		if j.Finish >= 0 && j.Duration <= 60 {
			shortJCT += float64(j.JCT())
			shortDur += float64(j.Duration)
			n++
		}
	}
	if n == 0 {
		t.Skip("no sub-minute jobs in the sample")
	}
	// Average feedback delay for debug jobs under 10 minutes.
	if (shortJCT-shortDur)/float64(n) > 600 {
		t.Fatalf("debug jobs wait %.0fs on average", (shortJCT-shortDur)/float64(n))
	}
}

func TestLucidAblationOrdering(t *testing.T) {
	// Full Lucid must not be worse than the no-sharing ablation on queueing
	// (Figure 11a's direction), modulo small-scale noise tolerance.
	g := trace.NewGenerator(miniVenus())
	hist := g.Emit(0)
	eval := g.Emit(0)

	full := runLucid(t, eval, hist, DefaultConfig())

	noShare := DefaultConfig()
	noShare.DisableSharing = true
	ns := runLucid(t, eval, hist, noShare)

	if full.AvgQueueSec > ns.AvgQueueSec*1.25 {
		t.Fatalf("sharing hurt queueing badly: full=%.0fs no-share=%.0fs",
			full.AvgQueueSec, ns.AvgQueueSec)
	}

	noEst := DefaultConfig()
	noEst.DisableEstimator = true
	ne := runLucid(t, eval, hist, noEst)
	if full.AvgJCTSec > ne.AvgJCTSec*1.3 {
		t.Fatalf("estimator ablation outperformed full Lucid by >30%%: full=%.0f vs %.0f",
			full.AvgJCTSec, ne.AvgJCTSec)
	}
}

func TestTuneProfilerRanksConfigs(t *testing.T) {
	s := trace.Venus()
	s.NumJobs = 800
	g := trace.NewGenerator(s)
	hist := g.Emit(0)
	recent := g.Emit(600)
	cfg := DefaultConfig()
	models, err := TrainModels(hist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cands := TuneProfiler(recent, models, cfg,
		[]int64{100, 600}, []int{8}, sim.Options{Tick: 120, SchedulerEvery: 120, ProfilerNodes: 2})
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Sorted best-first.
	if cands[0].AvgQueueSec > cands[1].AvgQueueSec {
		t.Fatal("candidates not sorted by queue delay")
	}
	if !strings.Contains(RenderTuning(cands), "Tprof") {
		t.Fatal("tuning report malformed")
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
