// Package core implements Lucid itself — the paper's contribution (§3): the
// Non-intrusive Job Profiler with Space-aware Profiling and Time-aware
// Scaling, the Affine-jobpair Binder with Indolent Packing and its Dynamic
// Strategy, the Resource Orchestrator, the three interpretable models
// (Packing Analyze, Throughput Predict, Workload Estimate), and the system
// optimizers (Update Engine, System Tuner).
package core

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/ml/dtree"
	"repro/internal/ml/mlmodel"
	"repro/internal/workload"
)

// PackingAnalyzer is the Packing Analyze Model (§3.5.1): a pruned decision
// tree mapping a job's non-intrusive profile — GPU utilization, GPU memory,
// GPU memory utilization, and the optional user-declared AMP flag — to a
// ternary Sharing Score (Tiny / Medium / Jumbo). Figure 6 is its rendering.
type PackingAnalyzer struct {
	tree       *dtree.Tree
	thresholds workload.Thresholds
}

// packingFeatureNames follows Figure 6's notation: U_G, M_G, U_M, A.
var packingFeatureNames = []string{
	"GPU Utilization (%)",
	"GPU Memory Usage (MB)",
	"GPU Memory Utilization (%)",
	"Mixed Precision Training (binary)",
}

// packingClassNames index by SharingScore.
var packingClassNames = []string{"Tiny", "Medium", "Jumbo"}

// profileRow encodes a profile for the tree.
func profileRow(p workload.Profile) []float64 {
	amp := 0.0
	if p.AMP {
		amp = 1
	}
	return []float64{p.GPUUtil, p.GPUMemMB, p.GPUMemUtil, amp}
}

// TrainPackingAnalyzer fits the decision tree on the §2.3 characterization
// sweep (every Table 1 configuration labeled by its measured colocation
// influence) and prunes it with minimal cost-complexity pruning for a
// compact, interpretable tree.
func TrainPackingAnalyzer(th workload.Thresholds) (*PackingAnalyzer, error) {
	examples := workload.LabeledDataset(th)
	x := make([][]float64, len(examples))
	y := make([]float64, len(examples))
	for i, ex := range examples {
		x[i] = profileRow(ex.Profile)
		y[i] = float64(ex.Score)
	}
	ds, err := mlmodel.NewDataset(x, y, packingFeatureNames)
	if err != nil {
		return nil, err
	}
	tree, err := dtree.FitClassifier(ds, 3, dtree.Params{MaxDepth: 5, MinSamplesLeaf: 2})
	if err != nil {
		return nil, fmt.Errorf("core: packing analyzer: %w", err)
	}
	tree.PruneCCP(0.01)
	return &PackingAnalyzer{tree: tree, thresholds: th}, nil
}

// Score classifies one profile.
func (a *PackingAnalyzer) Score(p workload.Profile) workload.SharingScore {
	return workload.SharingScore(a.tree.PredictClass(profileRow(p)))
}

// ScoreJob classifies a profiled job; unprofiled jobs are conservatively
// Jumbo (never packed), keeping the non-intrusive guarantee: no packing
// decision without measurements.
func (a *PackingAnalyzer) ScoreJob(j *job.Job) workload.SharingScore {
	if !j.Profiled {
		return workload.Jumbo
	}
	return a.Score(j.Profile)
}

// Accuracy evaluates the tree against ground truth over the full catalog.
func (a *PackingAnalyzer) Accuracy() float64 {
	var pred, truth []int
	for _, ex := range workload.LabeledDataset(a.thresholds) {
		pred = append(pred, int(a.Score(ex.Profile)))
		truth = append(truth, int(ex.Score))
	}
	return mlmodel.Accuracy(pred, truth)
}

// Render prints the learned tree — the left panel of Figure 6.
func (a *PackingAnalyzer) Render() string { return a.tree.Render(packingClassNames) }

// FeatureImportances returns Gini importances — the right panel of
// Figure 6. Index order matches packingFeatureNames.
func (a *PackingAnalyzer) FeatureImportances() []float64 { return a.tree.FeatureImportances() }

// FeatureNames exposes the Figure 6 feature labels.
func (a *PackingAnalyzer) FeatureNames() []string {
	return append([]string(nil), packingFeatureNames...)
}
