package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func TestModelBundleRoundTrip(t *testing.T) {
	s := trace.Venus()
	s.NumJobs = 2000
	g := trace.NewGenerator(s)
	hist := g.Emit(0)
	cfg := DefaultConfig()
	models, err := TrainModels(hist, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := models.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Analyzer behaves identically.
	for _, ex := range probeProfiles() {
		if loaded.Analyzer.Score(ex) != models.Analyzer.Score(ex) {
			t.Fatal("analyzer drifted after round trip")
		}
	}
	if loaded.Analyzer.Accuracy() != models.Analyzer.Accuracy() {
		t.Fatal("analyzer accuracy drifted")
	}

	// Estimator predicts identically on fresh jobs.
	probe := g.Emit(50).Jobs
	EnsureProfiles(probe)
	for _, j := range probe[:20] {
		if loaded.Estimator.EstimateSec(j) != models.Estimator.EstimateSec(j) {
			t.Fatal("estimator drifted after round trip")
		}
	}

	// Throughput forecasts identically.
	if loaded.Throughput.ForecastNextHour(14, 3) != models.Throughput.ForecastNextHour(14, 3) {
		t.Fatal("throughput model drifted after round trip")
	}
	if loaded.Throughput.Baseline() != models.Throughput.Baseline() {
		t.Fatal("baseline drifted")
	}

	// A loaded bundle must be able to drive the scheduler.
	eval := g.Emit(800)
	lucid := New(loaded, cfg)
	if lucid == nil {
		t.Fatal("scheduler construction failed")
	}
	_ = eval
}

func TestLoadModelsRejectsGarbage(t *testing.T) {
	if _, err := LoadModels(strings.NewReader("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadModels(strings.NewReader(`{"analyzer_tree":{}}`)); err == nil {
		t.Fatal("empty tree accepted")
	}
}

// TestLoadModelsRejectsCorruption exhaustively feeds LoadModels the failure
// shapes a real deployment produces — empty files, torn writes, sections
// nulled by a partial serializer, concatenated bundles — and requires a
// descriptive error for each. A zero-valued model loading "successfully"
// would silently mis-score every job.
func TestLoadModelsRejectsCorruption(t *testing.T) {
	s := trace.Venus()
	s.NumJobs = 800
	models, err := TrainModels(trace.NewGenerator(s).Emit(0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := models.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := []struct {
		name, input, wantSub string
	}{
		{"empty file", "", "empty or truncated"},
		{"whitespace only", "  \n", "empty or truncated"},
		{"truncated mid-document", good[:len(good)/2], "truncated"},
		{"empty object", "{}", `missing "analyzer_tree"`},
		{"null analyzer", `{"analyzer_tree":null,"estimator_gam":{},"featurizer":{},"throughput_gam":{}}`,
			`missing "analyzer_tree"`},
		{"missing featurizer", `{"analyzer_tree":{},"estimator_gam":{},"throughput_gam":{}}`,
			`missing "featurizer"`},
		{"trailing garbage", strings.TrimRight(good, "\n") + "junk", "trailing data"},
		{"concatenated bundles", good + good, "trailing data"},
		{"wrong top-level type", `[1,2,3]`, "load bundle"},
	}
	for _, tc := range cases {
		m, err := LoadModels(strings.NewReader(tc.input))
		if err == nil {
			t.Errorf("%s: accepted (models=%v)", tc.name, m != nil)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}

	// The pristine bundle still loads after all that (Save's trailing
	// newline must not trip the trailing-data check).
	if _, err := LoadModels(strings.NewReader(good)); err != nil {
		t.Errorf("pristine bundle rejected: %v", err)
	}
}

// probeProfiles samples a few profiles across the catalog for behavioural
// equality checks.
func probeProfiles() []workload.Profile {
	var out []workload.Profile
	for i, c := range workload.AllConfigs() {
		if i%5 == 0 {
			out = append(out, c.Profile())
		}
	}
	return out
}
