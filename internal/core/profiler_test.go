package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestProfilerRetune(t *testing.T) {
	p := NewProfiler()
	p.TprofSec = 200

	p.Retune(LoadHigh)
	if p.CurrentTprof() != 100 {
		t.Fatalf("burst Tprof = %d, want halved", p.CurrentTprof())
	}
	if p.capacityFrac != 1.0 {
		t.Fatal("burst should borrow the full partition")
	}

	p.Retune(LoadLow)
	if p.CurrentTprof() != 200 || p.capacityFrac != 0.5 {
		t.Fatalf("idle retune wrong: Tprof=%d frac=%v", p.CurrentTprof(), p.capacityFrac)
	}

	// Time-aware scaling off → static settings regardless of load.
	p.TimeAware = false
	p.Retune(LoadHigh)
	if p.CurrentTprof() != 200 || p.capacityFrac != 0.75 {
		t.Fatal("static profiler must ignore load level")
	}
}

func TestProfilerTprofFloor(t *testing.T) {
	p := NewProfiler()
	p.TprofSec = 80
	p.Retune(LoadHigh)
	if p.CurrentTprof() < 60 {
		t.Fatalf("Tprof floor violated: %d", p.CurrentTprof())
	}
}

// profilerHarness builds a minimal sim whose scheduler only runs the
// profiler stage, for white-box queue-policy tests.
type profilerOnly struct {
	p        *Profiler
	profiled []int
}

func (po *profilerOnly) Name() string { return "profiler-only" }
func (po *profilerOnly) Tick(env *sim.Env) {
	po.p.Step(env, func(j *job.Job) { po.profiled = append(po.profiled, j.ID) })
}

func TestSpaceAwareOrdering(t *testing.T) {
	// An 8-GPU job and two 1-GPU jobs compete for an 8-GPU profiling
	// partition. Space-aware profiling runs the small jobs first.
	cfg := workload.Config{Model: workload.ResNet18, BatchSize: 64}
	big := job.New(1, "big", "u", "vc", 8, 0, 5000, cfg)
	small1 := job.New(2, "s1", "u", "vc", 1, 0, 5000, cfg)
	small2 := job.New(3, "s2", "u", "vc", 1, 0, 5000, cfg)
	tr := &trace.Trace{
		Name: "t",
		Cluster: cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
			VCs: []cluster.VCSpec{{Name: "vc", Nodes: 2}}},
		Jobs: []*job.Job{big, small1, small2},
		Days: 1,
	}
	po := &profilerOnly{p: NewProfiler()}
	po.p.TprofSec = 100
	po.p.capacityFrac = 1.0
	po.p.TimeAware = false
	s := sim.New(tr, po, sim.Options{Tick: 10, SchedulerEvery: 10, ProfilerNodes: 1})
	s.StepOnce()
	s.StepOnce()

	// Drive until the profiling timeout evicts the first batch; the order
	// in which jobs emerge profiled reveals the queue policy.
	for i := 0; i < 30; i++ {
		s.StepOnce()
	}
	if len(po.profiled) < 2 {
		t.Fatalf("profiled %d jobs, want ≥2", len(po.profiled))
	}
	// Small jobs finish profiling before the big one.
	firstTwo := map[int]bool{po.profiled[0]: true, po.profiled[1]: true}
	if !firstTwo[2] || !firstTwo[3] {
		t.Fatalf("space-aware order violated: %v", po.profiled)
	}
}

func TestOversizedJobsSkipProfiling(t *testing.T) {
	cfg := workload.Config{Model: workload.BERT, BatchSize: 32}
	big := job.New(1, "big", "u", "vc", 16, 0, 5000, cfg)
	tr := &trace.Trace{
		Name: "t",
		Cluster: cluster.Spec{GPUsPerNode: 8, GPUMemMB: workload.GPUMemMBCap,
			VCs: []cluster.VCSpec{{Name: "vc", Nodes: 4}}},
		Jobs: []*job.Job{big},
		Days: 1,
	}
	po := &profilerOnly{p: NewProfiler()} // Nprof = 8 < 16
	s := sim.New(tr, po, sim.Options{Tick: 10, SchedulerEvery: 10, ProfilerNodes: 1})
	s.StepOnce()
	s.StepOnce()
	if len(po.profiled) != 1 || po.profiled[0] != 1 {
		t.Fatalf("oversized job not admitted on the fly: %v", po.profiled)
	}
}

func TestLucidHeterogeneityAwarePlacesLongJobsFast(t *testing.T) {
	// Two long 8-GPU jobs and heterogeneous nodes: with awareness on, the
	// long jobs land on fast nodes and finish sooner.
	s := miniVenus()
	g := trace.NewGenerator(s)
	hist := g.Emit(2500)
	eval := g.Emit(2500)
	eval.Cluster.FastNodesFrac = 0.3
	eval.Cluster.FastSpeed = 1.6

	run := func(aware bool) float64 {
		cfg := DefaultConfig()
		cfg.HeterogeneityAware = aware
		models, err := TrainModels(hist, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res := sim.New(eval, New(models, cfg), sim.Options{
			Tick: 60, SchedulerEvery: 60, ProfilerNodes: 2}).Run()
		return res.AvgJCTSec
	}
	blind := run(false)
	aware := run(true)
	// Generation awareness must not hurt; it usually helps.
	if aware > blind*1.1 {
		t.Fatalf("generation-aware JCT %.0f worse than blind %.0f", aware, blind)
	}
}

func TestFairnessAgingImprovesTail(t *testing.T) {
	g := trace.NewGenerator(miniVenus())
	hist := g.Emit(3000)
	eval := g.Emit(3000)
	models, err := TrainModels(hist, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(aging float64) *sim.Result {
		cfg := DefaultConfig()
		cfg.FairnessAgingSec = aging
		return sim.New(eval, New(models, cfg), sim.Options{
			Tick: 60, SchedulerEvery: 60, ProfilerNodes: 2}).Run()
	}
	base := run(0)
	aged := run(2.0)
	// Aging must not blow up the average…
	if aged.AvgJCTSec > base.AvgJCTSec*1.5 {
		t.Fatalf("aging wrecked avg JCT: %.0f vs %.0f", aged.AvgJCTSec, base.AvgJCTSec)
	}
	// …and must not worsen the extreme tail materially.
	if aged.P999QueueSec > base.P999QueueSec*1.25 {
		t.Fatalf("aging worsened p99.9: %.0f vs %.0f", aged.P999QueueSec, base.P999QueueSec)
	}
}
